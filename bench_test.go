// The benchmark harness: one testing.B per table and figure of the
// paper's evaluation section, plus the ablation benches DESIGN.md
// calls out. Each benchmark regenerates its artifact (memoized per
// process — experiments share characterizations and application
// runs) and prints the reproduced table/figure once, so that
//
//	go test -bench=. -benchmem ./...
//
// emits the full reproduction. Wall-clock metrics of the *simulated*
// runs are attached as custom benchmark metrics where meaningful.
package ioeval

import (
	"fmt"
	"sync"
	"testing"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/experiments"
)

var printedArtifacts sync.Map

// report prints the artifact once per process and satisfies the
// benchmark contract.
func report(b *testing.B, a experiments.Artifact) {
	b.Helper()
	if _, dup := printedArtifacts.LoadOrStore(a.ID, true); !dup {
		fmt.Printf("\n%s\n", a)
	}
	for i := 0; i < b.N; i++ {
		// The artifact is memoized; iterations are free by design —
		// these benchmarks are experiment generators, not microbenches.
	}
}

// --- characterization figures ----------------------------------------

func BenchmarkFig5_IOzoneAohyper(b *testing.B)   { report(b, experiments.Fig5()) }
func BenchmarkFig6_IORAohyper(b *testing.B)      { report(b, experiments.Fig6()) }
func BenchmarkFig13_IOzoneClusterA(b *testing.B) { report(b, experiments.Fig13()) }
func BenchmarkFig14_IORClusterA(b *testing.B)    { report(b, experiments.Fig14()) }

// --- characterization shard plan ---------------------------------------

// The parallel-vs-sequential pair below times the Fig. 5
// characterization (Aohyper RAID5, the paper's parameters) end to end
// at fixed worker counts. Unlike the memoized figure generators above,
// every iteration builds a fresh session, so the measured wall clock
// is the real cost of the phase; the tables are byte-identical at any
// worker count, so the ratio between the two is pure speedup.
func benchmarkFig5Characterization(b *testing.B, workers int) {
	cfg := core.CharacterizeConfig{
		FSBlockSizes:  bench.DefaultBlockSizes(), // 32 KB … 16 MB
		FSModes:       []bench.Mode{bench.SeqWrite, bench.SeqRead, bench.RandWrite, bench.RandRead},
		RandomOps:     2048,
		LibProcs:      8,
		LibBlockSizes: bench.DefaultIORBlockSizes(), // 1 MB … 1024 MB
		LibTransfer:   256 << 10,
		LibFileSize:   32 << 30,
	}
	build := func() *cluster.Cluster { return cluster.Aohyper(cluster.RAID5) }
	for i := 0; i < b.N; i++ {
		sess := core.NewSession(build,
			core.WithCharacterizeConfig(cfg),
			core.WithCharacterizeWorkers(workers))
		if _, err := sess.Characterization(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5CharacterizationSequential(b *testing.B) { benchmarkFig5Characterization(b, 1) }
func BenchmarkFig5CharacterizationWorkers4(b *testing.B)   { benchmarkFig5Characterization(b, 4) }
func BenchmarkFig5CharacterizationWorkers8(b *testing.B)   { benchmarkFig5Characterization(b, 8) }

// --- NAS BT-IO ---------------------------------------------------------

func BenchmarkTable2_BTIOCharacterization16(b *testing.B) { report(b, experiments.Table2()) }
func BenchmarkTable5_BTIOCharacterization64(b *testing.B) { report(b, experiments.Table5()) }
func BenchmarkFig8_BTIOTimeline(b *testing.B)             { report(b, experiments.Fig8()) }

func BenchmarkTable3and4_BTIOUsedPercentAohyper(b *testing.B) {
	report(b, experiments.Table3())
	report(b, experiments.Table4())
}

func BenchmarkFig12_BTIOAohyper(b *testing.B) {
	rows := experiments.Fig12Data()
	for _, r := range rows {
		if r.Subtype == "FULL" && r.Label == "RAID5" {
			b.ReportMetric(r.ExecSec, "sim-exec-s")
			b.ReportMetric(r.IOSec, "sim-io-s")
		}
	}
	report(b, experiments.Fig12())
}

func BenchmarkTable6and7_BTIOUsedPercentClusterA(b *testing.B) {
	report(b, experiments.Table6())
	report(b, experiments.Table7())
}

func BenchmarkFig15_BTIOClusterA(b *testing.B) { report(b, experiments.Fig15()) }

// --- MADbench2 ---------------------------------------------------------

func BenchmarkTable8_MadBenchCharacterization(b *testing.B) { report(b, experiments.Table8()) }
func BenchmarkFig16_MadBenchTimeline(b *testing.B)          { report(b, experiments.Fig16()) }

func BenchmarkFig17_MadBenchAohyper(b *testing.B) { report(b, experiments.Fig17()) }

func BenchmarkTable9_MadBenchUsedPercentAohyper(b *testing.B) { report(b, experiments.Table9()) }

func BenchmarkFig18_MadBenchClusterA(b *testing.B) { report(b, experiments.Fig18()) }

func BenchmarkTable10and11_MadBenchUsedPercentClusterA(b *testing.B) {
	report(b, experiments.Table10())
	report(b, experiments.Table11())
}

// --- configuration sweep ----------------------------------------------

// BenchmarkSweepBTIOAohyper runs the ranked configuration sweep over
// the Aohyper organizations through the shared engine (same caches as
// the Table 3/4 and Fig. 12 generators). Engine-level speedup benches
// live in internal/sweep.
func BenchmarkSweepBTIOAohyper(b *testing.B) {
	report(b, experiments.SweepBTIOAohyper())
}

// --- ablations (design-choice sensitivity) -----------------------------

func BenchmarkAblationCollectiveBuffering(b *testing.B) {
	report(b, experiments.AblationCollectiveBuffering())
}
func BenchmarkAblationSharedNetwork(b *testing.B) { report(b, experiments.AblationSharedNetwork()) }
func BenchmarkAblationCachePolicy(b *testing.B)   { report(b, experiments.AblationCachePolicy()) }
func BenchmarkAblationStripeUnit(b *testing.B)    { report(b, experiments.AblationStripeUnit()) }
func BenchmarkAblationNFSTransferSize(b *testing.B) {
	report(b, experiments.AblationNFSTransferSize())
}
func BenchmarkAblationAggregators(b *testing.B) { report(b, experiments.AblationAggregators()) }
func BenchmarkAblationIONodes(b *testing.B)     { report(b, experiments.AblationIONodes()) }
func BenchmarkAblationDegradedRAID5(b *testing.B) {
	report(b, experiments.AblationDegradedRAID5())
}
func BenchmarkAblationSyncExport(b *testing.B) { report(b, experiments.AblationSyncExport()) }
