module ioeval

go 1.22
