package cache

import (
	"sort"

	"ioeval/internal/device"
	"ioeval/internal/ioreq"
	"ioeval/internal/telemetry"
)

var _ device.RunDev = (*Cache)(nil)

// ReadRuns implements device.RunDev: it services many extents with
// page-granular hit/miss logic but charges only one memory-copy sleep
// and issues merged device reads for the missing pages. This keeps
// the event count proportional to the number of *distinct missing
// page runs*, not the number of application operations.
func (c *Cache) ReadRuns(r *ioreq.Request, runs []device.Run) {
	if len(runs) == 0 {
		return
	}
	r.Push(telemetry.LevelCache, "cache:"+c.params.Name)
	defer r.Pop()
	c.Stats.ReadOps += int64(len(runs))
	ps := c.params.PageSize

	// Stream detection for read-ahead: the batch continues the
	// previous read and is itself contiguous and ascending.
	streaming := runs[0].Off == c.lastReadEnd
	for i := 1; i < len(runs); i++ {
		if runs[i].Off != runs[i-1].Off+runs[i-1].Len {
			streaming = false
			break
		}
	}
	lastRun := runs[len(runs)-1]
	c.lastReadEnd = lastRun.Off + lastRun.Len

	// Collect the missing page indices across all runs, counting hit
	// and miss bytes per run against resident pages.
	var missing []int64
	var totalBytes int64
	for _, run := range runs {
		if run.Len == 0 {
			continue
		}
		totalBytes += run.Len
		first, last := c.pageRange(run.Off, run.Len)
		allHit := true
		for idx := first; idx < last; idx++ {
			if pg, ok := c.pages[idx]; ok {
				c.touch(pg)
			} else {
				missing = append(missing, idx)
				allHit = false
			}
		}
		if allHit {
			c.Stats.HitBytes += run.Len
		} else {
			c.Stats.MissBytes += run.Len
		}
	}

	if len(missing) > 0 {
		sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
		// Dedup (two runs can touch the same page).
		uniq := missing[:1]
		for _, idx := range missing[1:] {
			if idx != uniq[len(uniq)-1] {
				uniq = append(uniq, idx)
			}
		}
		// Insert as resident before the fetch (models page I/O locking),
		// then fetch merged runs from the device.
		var devRuns []device.Run
		for _, idx := range uniq {
			c.insert(r, idx, false)
			off := idx * ps
			n := ps
			if off+n > c.under.Capacity() {
				n = c.under.Capacity() - off
			}
			devRuns = append(devRuns, device.Run{Off: off, Len: n})
		}
		devRuns = ioreq.Merge(devRuns)
		// Streaming batches extend the final fetch by the read-ahead
		// window.
		if streaming && c.params.ReadAhead > 0 && len(devRuns) > 0 {
			lastDev := &devRuns[len(devRuns)-1]
			if lastDev.Off+lastDev.Len >= lastRun.Off+lastRun.Len {
				extend := c.params.ReadAhead
				if lastDev.Off+lastDev.Len+extend > c.under.Capacity() {
					extend = c.under.Capacity() - lastDev.Off - lastDev.Len
				}
				if extend > 0 {
					first, last := c.pageRange(lastDev.Off+lastDev.Len, extend)
					for idx := first; idx < last; idx++ {
						c.insert(r, idx, false)
					}
					lastDev.Len += extend
					c.Stats.ReadAheadBytes += extend
				}
			}
		}
		device.ReadRuns(r, c.under, devRuns)
	}
	c.memCopy(r.Proc(), totalBytes)
}

// WriteRuns implements device.RunDev: pages covering all runs are
// dirtied (or written through) with a single memory-copy charge and a
// single throttle check.
func (c *Cache) WriteRuns(r *ioreq.Request, runs []device.Run) {
	if len(runs) == 0 {
		return
	}
	r.Push(telemetry.LevelCache, "cache:"+c.params.Name)
	defer r.Pop()
	c.Stats.WriteOps += int64(len(runs))
	var totalBytes int64
	dirty := c.params.Policy == WriteBack
	for _, run := range runs {
		if run.Len == 0 {
			continue
		}
		totalBytes += run.Len
		first, last := c.pageRange(run.Off, run.Len)
		for idx := first; idx < last; idx++ {
			c.insert(r, idx, dirty)
		}
	}
	c.memCopy(r.Proc(), totalBytes)
	if dirty {
		c.throttle(r)
		return
	}
	// Write-through: push the merged runs to the device.
	sorted := append([]device.Run{}, runs...)
	ioreq.Sort(sorted)
	device.WriteRuns(r, c.under, ioreq.Merge(sorted))
}
