package cache

import (
	"testing"
	"testing/quick"

	"ioeval/internal/device"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
)

func TestReadRunsHitMissAccounting(t *testing.T) {
	e := sim.NewEngine()
	c, d := newStack(e, 256*mb)
	run(e, func(p *sim.Proc) {
		// Populate the first 8 MB, then read a vec half inside.
		c.ReadAt(ioreq.Reader(p), 0, 8*mb)
		m0, h0 := c.Stats.MissBytes, c.Stats.HitBytes
		c.ReadRuns(ioreq.Reader(p), []device.Run{
			{Off: 0, Len: 4 * mb},        // hit
			{Off: 64 * mb, Len: 4 * mb},  // miss
			{Off: 128 * mb, Len: 2 * mb}, // miss
		})
		if c.Stats.HitBytes-h0 != 4*mb {
			t.Errorf("hit bytes = %d", c.Stats.HitBytes-h0)
		}
		if c.Stats.MissBytes-m0 != 6*mb {
			t.Errorf("miss bytes = %d", c.Stats.MissBytes-m0)
		}
	})
	if d.Stats.BytesRead < 14*mb {
		t.Fatalf("device read %d", d.Stats.BytesRead)
	}
}

func TestReadRunsMergesAdjacentMisses(t *testing.T) {
	e := sim.NewEngine()
	c, d := newStack(e, 256*mb)
	run(e, func(p *sim.Proc) {
		// 64 contiguous small runs: the device must see few large reads,
		// not 64 small ones.
		var runs []device.Run
		for i := int64(0); i < 64; i++ {
			runs = append(runs, device.Run{Off: i * 64 * kb, Len: 64 * kb})
		}
		c.ReadRuns(ioreq.Reader(p), runs)
	})
	if d.Stats.Reads > 2 {
		t.Fatalf("device ops = %d, want merged (≤2)", d.Stats.Reads)
	}
}

func TestWriteRunsDirtiesAndThrottles(t *testing.T) {
	e := sim.NewEngine()
	c, d := newStack(e, 64*mb)
	run(e, func(p *sim.Proc) {
		var runs []device.Run
		for i := int64(0); i < 512; i++ {
			runs = append(runs, device.Run{Off: i * 64 * kb, Len: 64 * kb}) // 32 MB
		}
		c.WriteRuns(ioreq.Writer(p), runs)
	})
	if c.Stats.WriteOps != 512 {
		t.Fatalf("write ops = %d", c.Stats.WriteOps)
	}
	// 32 MB dirtied through a 64 MB cache (12.8 MB dirty limit): the
	// throttle must have pushed data to the device.
	if d.Stats.BytesWritten == 0 {
		t.Fatal("no throttled write-back")
	}
}

func TestWriteRunsWriteThrough(t *testing.T) {
	e := sim.NewEngine()
	d := device.NewDisk(e, device.DefaultSATA("d", 150*gb, 100e6))
	params := DefaultParams("pc", 64*mb)
	params.Policy = WriteThrough
	c := New(e, params, d)
	run(e, func(p *sim.Proc) {
		c.WriteRuns(ioreq.Writer(p), []device.Run{{Off: 0, Len: mb}, {Off: mb, Len: mb}})
	})
	if d.Stats.BytesWritten != 2*mb {
		t.Fatalf("write-through device bytes = %d", d.Stats.BytesWritten)
	}
	if c.DirtyBytes() != 0 {
		t.Fatal("write-through left dirty pages")
	}
}

func TestInvalidateRange(t *testing.T) {
	e := sim.NewEngine()
	c, _ := newStack(e, 256*mb)
	run(e, func(p *sim.Proc) {
		c.WriteAt(ioreq.Writer(p), 0, 8*mb)
		c.ReadAt(ioreq.Reader(p), 16*mb, 8*mb)
		c.InvalidateRange(0, 8*mb) // drops the dirty range too
		if c.DirtyBytes() != 0 {
			t.Errorf("dirty after invalidate = %d", c.DirtyBytes())
		}
		m0 := c.Stats.MissBytes
		c.ReadAt(ioreq.Reader(p), 0, 8*mb)
		if c.Stats.MissBytes-m0 < 8*mb {
			t.Error("invalidated range still resident")
		}
		// The other range must still be cached.
		m0 = c.Stats.MissBytes
		c.ReadAt(ioreq.Reader(p), 16*mb, 8*mb)
		if c.Stats.MissBytes != m0 {
			t.Error("untouched range was invalidated")
		}
	})
}

func TestPopulate(t *testing.T) {
	e := sim.NewEngine()
	c, d := newStack(e, 256*mb)
	run(e, func(p *sim.Proc) {
		before := p.Now()
		c.Populate(ioreq.Writer(p), 0, 8*mb)
		if p.Now() != before {
			t.Error("populate must be free of simulated time")
		}
		m0 := c.Stats.MissBytes
		c.ReadAt(ioreq.Reader(p), 0, 8*mb)
		if c.Stats.MissBytes != m0 {
			t.Error("populated range missed")
		}
	})
	if d.Stats.BytesRead != 0 {
		t.Fatalf("populate touched the device: %d", d.Stats.BytesRead)
	}
}

func TestAccessors(t *testing.T) {
	e := sim.NewEngine()
	c, d := newStack(e, 64*mb)
	if c.Name() != "pc" || c.Under() != device.BlockDev(d) || c.Capacity() != d.Capacity() {
		t.Fatal("accessors broken")
	}
	if WriteBack.String() != "write-back" || WriteThrough.String() != "write-through" {
		t.Fatal("policy strings")
	}
}

// Property: ReadRuns over arbitrary run lists counts every requested
// byte exactly once as hit or miss.
func TestQuickReadRunsAccounting(t *testing.T) {
	f := func(raw []uint16) bool {
		e := sim.NewEngine()
		c, _ := newStack(e, 32*mb)
		ok := true
		e.Spawn("t", func(p *sim.Proc) {
			var runs []device.Run
			var total int64
			off := int64(0)
			for _, v := range raw {
				off += int64(v % 4096)
				l := int64(v)%(128*kb) + 1
				runs = append(runs, device.Run{Off: off, Len: l})
				off += l
				total += l
			}
			if len(runs) == 0 {
				return
			}
			c.ReadRuns(ioreq.Reader(p), runs)
			if c.Stats.HitBytes+c.Stats.MissBytes != total {
				ok = false
			}
		})
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
