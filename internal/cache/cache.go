// Package cache models an operating-system page/buffer cache sitting
// between a filesystem and a block device. It implements LRU
// replacement, write-back with dirty throttling (the Linux
// dirty_ratio mechanism), write-through mode, and sequential
// read-ahead. The cache is itself a device.BlockDev so it stacks
// transparently over a disk or RAID array.
//
// The cache is what produces the paper's two headline cache effects:
// characterization runs use files of twice RAM so that the cache
// thrashes and measured rates reflect the device, while applications
// whose working set fits in RAM exceed the characterized rates
// (used percentage > 100%).
package cache

import (
	"container/list"
	"fmt"
	"sort"

	"ioeval/internal/device"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
	"ioeval/internal/telemetry"
)

// Policy selects how writes propagate to the underlying device.
type Policy int

// Write policies.
const (
	// WriteBack buffers dirty pages and writes them out on eviction,
	// throttling, or Flush.
	WriteBack Policy = iota
	// WriteThrough writes to the device immediately while also
	// populating the cache for subsequent reads.
	WriteThrough
)

func (p Policy) String() string {
	if p == WriteBack {
		return "write-back"
	}
	return "write-through"
}

// Params configures a Cache.
type Params struct {
	Name     string
	Capacity int64 // bytes of cacheable memory
	PageSize int64 // bytes per page (power of two)
	Policy   Policy

	// MemRate is the memory-copy bandwidth (bytes/s) charged for
	// moving data between the cache and the requester.
	MemRate float64

	// ReadAhead is the extra bytes fetched past a missing run when the
	// access continues a sequential pattern. Zero disables read-ahead.
	ReadAhead int64

	// DirtyRatio is the fraction of capacity that may be dirty before
	// a writer is throttled into synchronous write-out (flushing down
	// to DirtyRatio/2). Zero means default 0.20.
	DirtyRatio float64
}

// DefaultParams returns a page-cache configuration typical of a Linux
// node with the given cacheable memory.
func DefaultParams(name string, capacity int64) Params {
	return Params{
		Name:       name,
		Capacity:   capacity,
		PageSize:   64 << 10,
		Policy:     WriteBack,
		MemRate:    2.5e9,
		ReadAhead:  512 << 10,
		DirtyRatio: 0.20,
	}
}

type page struct {
	idx   int64
	dirty bool
	elem  *list.Element
}

// Stats counts cache activity.
type Stats struct {
	HitBytes, MissBytes   int64
	ReadOps, WriteOps     int64
	WriteBackBytes        int64
	ReadAheadBytes        int64
	ThrottleStalls        int64
	Evictions, DirtyEvict int64
}

// Cache is an LRU page cache over a block device.
type Cache struct {
	eng    *sim.Engine
	params Params
	under  device.BlockDev
	pages  map[int64]*page
	lru    *list.List // front = most recent
	nDirty int64      // dirty pages

	// lastReadEnd is the byte after the most recent read; read-ahead
	// fires only when a read continues from here (Linux read-ahead
	// switches itself off for random access).
	lastReadEnd int64

	// Stats accumulates hit/miss and write-back counters.
	Stats Stats

	rec *telemetry.Recorder
}

var _ device.BlockDev = (*Cache)(nil)

// New builds a cache over the given device.
func New(e *sim.Engine, params Params, under device.BlockDev) *Cache {
	if params.PageSize <= 0 || params.PageSize&(params.PageSize-1) != 0 {
		panic(fmt.Sprintf("cache %q: page size %d not a power of two", params.Name, params.PageSize))
	}
	if params.Capacity < params.PageSize {
		panic(fmt.Sprintf("cache %q: capacity %d below one page", params.Name, params.Capacity))
	}
	if params.MemRate <= 0 {
		panic(fmt.Sprintf("cache %q: MemRate must be positive", params.Name))
	}
	if params.DirtyRatio == 0 {
		params.DirtyRatio = 0.20
	}
	return &Cache{
		eng:    e,
		params: params,
		under:  under,
		pages:  map[int64]*page{},
		lru:    list.New(),
		rec:    telemetry.NewRecorder(e, "cache:"+params.Name, telemetry.LevelCache, 1),
	}
}

// Telemetry returns the cache's telemetry probe.
func (c *Cache) Telemetry() *telemetry.Recorder { return c.rec }

// Name implements device.BlockDev.
func (c *Cache) Name() string { return c.params.Name }

// Capacity implements device.BlockDev (the capacity of the underlying
// device, not of the cache memory).
func (c *Cache) Capacity() int64 { return c.under.Capacity() }

// Under returns the wrapped device.
func (c *Cache) Under() device.BlockDev { return c.under }

// Params returns the cache configuration.
func (c *Cache) Params() Params { return c.params }

// CachedBytes returns the bytes currently resident.
func (c *Cache) CachedBytes() int64 { return int64(len(c.pages)) * c.params.PageSize }

// DirtyBytes returns the dirty bytes awaiting write-back.
func (c *Cache) DirtyBytes() int64 { return c.nDirty * c.params.PageSize }

func (c *Cache) maxPages() int64 { return c.params.Capacity / c.params.PageSize }

func (c *Cache) memCopy(p *sim.Proc, n int64) {
	p.Sleep(sim.Duration(float64(n) / c.params.MemRate * 1e9))
}

// touch moves pg to the MRU position.
func (c *Cache) touch(pg *page) { c.lru.MoveToFront(pg.elem) }

// insert adds a page, evicting as needed. Returns the page.
// Eviction of a dirty page synchronously writes it to the device.
func (c *Cache) insert(r *ioreq.Request, idx int64, dirty bool) *page {
	if pg, ok := c.pages[idx]; ok {
		if dirty && !pg.dirty {
			pg.dirty = true
			c.nDirty++
		}
		c.touch(pg)
		return pg
	}
	for int64(len(c.pages)) >= c.maxPages() {
		c.evictLRU(r)
	}
	// evictLRU may have slept (dirty write-back), letting another
	// process insert this very page meanwhile — re-check before
	// creating a duplicate (which would orphan an LRU entry).
	if pg, ok := c.pages[idx]; ok {
		if dirty && !pg.dirty {
			pg.dirty = true
			c.nDirty++
		}
		c.touch(pg)
		return pg
	}
	pg := &page{idx: idx, dirty: dirty}
	pg.elem = c.lru.PushFront(pg)
	c.pages[idx] = pg
	if dirty {
		c.nDirty++
	}
	return pg
}

func (c *Cache) evictLRU(r *ioreq.Request) {
	back := c.lru.Back()
	if back == nil {
		panic("cache: eviction with empty LRU")
	}
	pg := back.Value.(*page)
	c.Stats.Evictions++
	c.rec.Add("evictions", 1)
	if pg.dirty {
		c.Stats.DirtyEvict++
		c.rec.Add("dirty_evictions", 1)
		// Writing back a single page would be pathological on parity
		// arrays (one read-modify-write per 64 KB). Like the kernel
		// flusher, cluster the write-back: take the victim's whole
		// contiguous dirty neighbourhood in one I/O.
		idxs := []int64{pg.idx}
		for i := pg.idx - 1; ; i-- {
			if n, ok := c.pages[i]; ok && n.dirty {
				idxs = append(idxs, i)
			} else {
				break
			}
		}
		for i := pg.idx + 1; ; i++ {
			if n, ok := c.pages[i]; ok && n.dirty {
				idxs = append(idxs, i)
			} else {
				break
			}
		}
		c.writeOut(r, idxs)
	}
	// Always unlink the popped element (Remove is a no-op if a
	// concurrent eviction already did); only drop the map entry when
	// it still refers to this page object.
	c.lru.Remove(pg.elem)
	if cur, ok := c.pages[pg.idx]; ok && cur == pg {
		delete(c.pages, pg.idx)
	}
}

// writeOut writes the given page indices (merged into contiguous
// runs) to the underlying device. Pages are claimed — marked clean —
// *before* the device writes are issued, the analogue of the kernel's
// PG_writeback flag: a concurrent flusher that runs while this one is
// blocked in the device must not write the same pages again. Pages
// re-dirtied during the flight simply get written by a later flush.
func (c *Cache) writeOut(r *ioreq.Request, idxs []int64) {
	claimed := idxs[:0]
	for _, idx := range idxs {
		if pg, ok := c.pages[idx]; ok && pg.dirty {
			pg.dirty = false
			c.nDirty--
			claimed = append(claimed, idx)
		}
	}
	if len(claimed) == 0 {
		return
	}
	sort.Slice(claimed, func(i, j int) bool { return claimed[i] < claimed[j] })
	ps := c.params.PageSize
	runStart := claimed[0]
	runLen := int64(1)
	flushRun := func(start, count int64) {
		off := start * ps
		n := count * ps
		if off+n > c.under.Capacity() {
			n = c.under.Capacity() - off
		}
		c.under.WriteAt(r, off, n)
		c.Stats.WriteBackBytes += n
		c.rec.Add("writeback_bytes", n)
	}
	for _, idx := range claimed[1:] {
		if idx == runStart+runLen {
			runLen++
			continue
		}
		flushRun(runStart, runLen)
		runStart, runLen = idx, 1
	}
	flushRun(runStart, runLen)
}

// pageRange returns the first and one-past-last page index covering
// [off, off+n).
func (c *Cache) pageRange(off, n int64) (int64, int64) {
	ps := c.params.PageSize
	return off / ps, (off + n + ps - 1) / ps
}

// ReadAt implements device.BlockDev. Missing page runs are fetched
// from the underlying device (with read-ahead when the run is large
// enough to look sequential); resident pages cost memory-copy time.
func (c *Cache) ReadAt(r *ioreq.Request, off, n int64) {
	if n == 0 {
		return
	}
	r.Push(telemetry.LevelCache, "cache:"+c.params.Name)
	defer r.Pop()
	p := r.Proc()
	c.Stats.ReadOps++
	c.rec.Enter()
	start0 := p.Now()
	defer func() {
		c.rec.Observe(telemetry.ClassRead, 1, n, sim.Duration(p.Now()-start0))
		c.rec.Exit()
	}()
	first, last := c.pageRange(off, n)
	ps := c.params.PageSize
	streaming := off == c.lastReadEnd
	c.lastReadEnd = off + n

	// Identify missing runs.
	var missStart int64 = -1
	var runs [][2]int64
	for idx := first; idx < last; idx++ {
		if pg, ok := c.pages[idx]; ok {
			c.touch(pg)
			if missStart >= 0 {
				runs = append(runs, [2]int64{missStart, idx})
				missStart = -1
			}
		} else if missStart < 0 {
			missStart = idx
		}
	}
	if missStart >= 0 {
		runs = append(runs, [2]int64{missStart, last})
	}

	var missBytes int64
	for _, mr := range runs {
		start, end := mr[0], mr[1]
		// Read-ahead: extend the last run if it reaches the end of the
		// request and the request continues a sequential stream.
		extra := int64(0)
		if streaming && c.params.ReadAhead > 0 && end == last {
			extra = c.params.ReadAhead / ps
			maxPage := c.under.Capacity() / ps
			if end+extra > maxPage {
				extra = maxPage - end
			}
		}
		readOff := start * ps
		readN := (end + extra - start) * ps
		if readOff+readN > c.under.Capacity() {
			readN = c.under.Capacity() - readOff
		}
		// Mark pages resident before the device wait so a concurrent
		// reader does not double-fetch (models per-page I/O locking).
		for idx := start; idx < end+extra; idx++ {
			c.insert(r, idx, false)
		}
		c.under.ReadAt(r, readOff, readN)
		missBytes += (end - start) * ps
		c.Stats.ReadAheadBytes += extra * ps
	}

	hitBytes := n - min64(missBytes, n)
	c.Stats.HitBytes += hitBytes
	c.Stats.MissBytes += min64(missBytes, n)
	c.rec.Add("hit_bytes", hitBytes)
	c.rec.Add("miss_bytes", min64(missBytes, n))
	c.memCopy(p, n)
}

// WriteAt implements device.BlockDev.
func (c *Cache) WriteAt(r *ioreq.Request, off, n int64) {
	if n == 0 {
		return
	}
	r.Push(telemetry.LevelCache, "cache:"+c.params.Name)
	defer r.Pop()
	p := r.Proc()
	c.Stats.WriteOps++
	c.rec.Enter()
	start0 := p.Now()
	defer func() {
		c.rec.Observe(telemetry.ClassWrite, 1, n, sim.Duration(p.Now()-start0))
		c.rec.Exit()
	}()
	first, last := c.pageRange(off, n)
	c.memCopy(p, n)

	if c.params.Policy == WriteThrough {
		for idx := first; idx < last; idx++ {
			c.insert(r, idx, false)
		}
		c.under.WriteAt(r, off, n)
		return
	}

	for idx := first; idx < last; idx++ {
		c.insert(r, idx, true)
	}
	c.throttle(r)
}

// throttle enforces the dirty ratio: when dirty pages exceed the
// threshold the writer synchronously cleans down to half the
// threshold, exactly like a task stuck in balance_dirty_pages.
func (c *Cache) throttle(r *ioreq.Request) {
	limit := int64(float64(c.maxPages()) * c.params.DirtyRatio)
	if limit < 1 {
		limit = 1
	}
	if c.nDirty <= limit {
		return
	}
	c.Stats.ThrottleStalls++
	c.rec.Add("throttle_stalls", 1)
	target := limit / 2
	// Collect dirty pages from the LRU end (oldest first).
	var victims []int64
	for e := c.lru.Back(); e != nil && c.nDirty-int64(len(victims)) > target; e = e.Prev() {
		pg := e.Value.(*page)
		if pg.dirty {
			victims = append(victims, pg.idx)
		}
	}
	c.writeOut(r, victims)
}

// Flush implements device.BlockDev: write out every dirty page and
// flush the device below.
func (c *Cache) Flush(r *ioreq.Request) {
	r.Push(telemetry.LevelCache, "cache:"+c.params.Name)
	defer r.Pop()
	start0 := r.Now()
	defer func() {
		c.rec.Observe(telemetry.ClassMeta, 1, 0, sim.Duration(r.Now()-start0))
	}()
	var dirtyIdx []int64
	for idx, pg := range c.pages {
		if pg.dirty {
			dirtyIdx = append(dirtyIdx, idx)
		}
	}
	// Write back in page order: map iteration order must not reach
	// the device-level event sequence (run-to-run determinism).
	sort.Slice(dirtyIdx, func(i, j int) bool { return dirtyIdx[i] < dirtyIdx[j] })
	c.writeOut(r, dirtyIdx)
	c.under.Flush(r)
}

// DropCaches discards all clean pages and write-locks nothing — the
// simulation analogue of `echo 3 > /proc/sys/vm/drop_caches`, used to
// get cold-cache characterization runs. Dirty pages are written out
// first.
func (c *Cache) DropCaches(r *ioreq.Request) {
	c.Flush(r)
	c.pages = map[int64]*page{}
	c.lru = list.New()
	c.nDirty = 0
}

// InvalidateRange drops all pages covering [off, off+n), discarding
// dirty data (callers use it for cache-coherence invalidation, where
// the remote copy is authoritative).
func (c *Cache) InvalidateRange(off, n int64) {
	first, last := c.pageRange(off, n)
	for idx, pg := range c.pages {
		if idx >= first && idx < last {
			if pg.dirty {
				pg.dirty = false
				c.nDirty--
			}
			c.lru.Remove(pg.elem)
			delete(c.pages, idx)
		}
	}
}

// Populate inserts the range as clean resident pages without device
// traffic or copy charges — the caller already moved the data (e.g.
// an NFS client caching its own just-written bytes).
func (c *Cache) Populate(r *ioreq.Request, off, n int64) {
	if n <= 0 {
		return
	}
	first, last := c.pageRange(off, n)
	for idx := first; idx < last; idx++ {
		c.insert(r, idx, false)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
