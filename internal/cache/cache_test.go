package cache

import (
	"testing"
	"testing/quick"

	"ioeval/internal/device"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
)

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
	gb = int64(1) << 30
)

func newStack(e *sim.Engine, cacheBytes int64) (*Cache, *device.Disk) {
	d := device.NewDisk(e, device.DefaultSATA("d", 150*gb, 100e6))
	c := New(e, DefaultParams("pc", cacheBytes), d)
	return c, d
}

func run(e *sim.Engine, fn func(*sim.Proc)) sim.Duration {
	var dur sim.Duration
	e.Spawn("t", func(p *sim.Proc) {
		t0 := p.Now()
		fn(p)
		dur = sim.Duration(p.Now() - t0)
	})
	e.Run()
	return dur
}

func TestReadHitMuchFasterThanMiss(t *testing.T) {
	e := sim.NewEngine()
	c, _ := newStack(e, 256*mb)
	var tMiss, tHit sim.Duration
	e.Spawn("r", func(p *sim.Proc) {
		t0 := p.Now()
		c.ReadAt(ioreq.Reader(p), 0, 16*mb)
		tMiss = sim.Duration(p.Now() - t0)
		t0 = p.Now()
		c.ReadAt(ioreq.Reader(p), 0, 16*mb)
		tHit = sim.Duration(p.Now() - t0)
	})
	e.Run()
	if tHit*5 > tMiss {
		t.Fatalf("hit (%v) not ≫ faster than miss (%v)", tHit, tMiss)
	}
	if c.Stats.HitBytes < 16*mb {
		t.Fatalf("HitBytes = %d, want ≥16MB", c.Stats.HitBytes)
	}
}

func TestWriteBackDefersDeviceWrite(t *testing.T) {
	e := sim.NewEngine()
	c, d := newStack(e, 256*mb)
	run(e, func(p *sim.Proc) {
		c.WriteAt(ioreq.Writer(p), 0, 8*mb) // well under dirty threshold
		if d.Stats.BytesWritten != 0 {
			t.Errorf("device saw %d bytes before flush", d.Stats.BytesWritten)
		}
		if c.DirtyBytes() != 8*mb {
			t.Errorf("dirty = %d, want 8MB", c.DirtyBytes())
		}
		c.Flush(ioreq.Meta(p))
		if d.Stats.BytesWritten != 8*mb {
			t.Errorf("device wrote %d after flush, want 8MB", d.Stats.BytesWritten)
		}
		if c.DirtyBytes() != 0 {
			t.Errorf("dirty = %d after flush", c.DirtyBytes())
		}
	})
}

func TestWriteThroughHitsDeviceImmediately(t *testing.T) {
	e := sim.NewEngine()
	d := device.NewDisk(e, device.DefaultSATA("d", 150*gb, 100e6))
	params := DefaultParams("pc", 256*mb)
	params.Policy = WriteThrough
	c := New(e, params, d)
	run(e, func(p *sim.Proc) {
		c.WriteAt(ioreq.Writer(p), 0, 4*mb)
		if d.Stats.BytesWritten != 4*mb {
			t.Errorf("write-through device bytes = %d, want 4MB", d.Stats.BytesWritten)
		}
		if c.DirtyBytes() != 0 {
			t.Errorf("write-through left dirty pages: %d", c.DirtyBytes())
		}
	})
}

func TestDirtyThrottling(t *testing.T) {
	e := sim.NewEngine()
	c, d := newStack(e, 64*mb) // threshold = 12.8 MB dirty
	run(e, func(p *sim.Proc) {
		for off := int64(0); off < 40*mb; off += mb {
			c.WriteAt(ioreq.Writer(p), off, mb)
		}
	})
	if c.Stats.ThrottleStalls == 0 {
		t.Fatal("no throttle stalls despite writing 40MB through a 64MB cache")
	}
	if d.Stats.BytesWritten == 0 {
		t.Fatal("throttling produced no device write-back")
	}
	limit := int64(0.20 * float64(c.Params().Capacity))
	if c.DirtyBytes() > limit {
		t.Fatalf("dirty %d exceeds limit %d after throttled writes", c.DirtyBytes(), limit)
	}
}

func TestLRUEviction(t *testing.T) {
	e := sim.NewEngine()
	c, _ := newStack(e, 16*mb)
	run(e, func(p *sim.Proc) {
		c.ReadAt(ioreq.Reader(p), 0, 8*mb) // A
		c.ReadAt(ioreq.Reader(p), gb, 16*mb)
		// A must have been evicted; re-reading it must miss.
		miss0 := c.Stats.MissBytes
		c.ReadAt(ioreq.Reader(p), 0, 8*mb)
		if c.Stats.MissBytes-miss0 < 8*mb {
			t.Errorf("expected full miss on evicted range, got %d new miss bytes",
				c.Stats.MissBytes-miss0)
		}
	})
	if c.Stats.Evictions == 0 {
		t.Fatal("no evictions despite exceeding capacity")
	}
	if c.CachedBytes() > 16*mb {
		t.Fatalf("resident %d exceeds capacity", c.CachedBytes())
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	e := sim.NewEngine()
	d := device.NewDisk(e, device.DefaultSATA("d", 150*gb, 100e6))
	params := DefaultParams("pc", 16*mb)
	params.DirtyRatio = 2.0 // disable throttling; force evictions to do the cleaning
	c := New(e, params, d)
	run(e, func(p *sim.Proc) {
		for off := int64(0); off < 64*mb; off += mb {
			c.WriteAt(ioreq.Writer(p), off, mb)
		}
	})
	if c.Stats.DirtyEvict == 0 {
		t.Fatal("no dirty evictions")
	}
	if d.Stats.BytesWritten == 0 {
		t.Fatal("dirty evictions never reached the device")
	}
}

func TestFileLargerThanCacheThrashes(t *testing.T) {
	// The paper's characterization rule: file size = 2× RAM defeats the
	// cache; a second sequential pass must still miss everywhere.
	e := sim.NewEngine()
	c, _ := newStack(e, 128*mb)
	run(e, func(p *sim.Proc) {
		for pass := 0; pass < 2; pass++ {
			for off := int64(0); off < 256*mb; off += 4 * mb {
				c.ReadAt(ioreq.Reader(p), off, 4*mb)
			}
		}
	})
	hitFrac := float64(c.Stats.HitBytes) / float64(c.Stats.HitBytes+c.Stats.MissBytes)
	if hitFrac > 0.30 {
		t.Fatalf("hit fraction %.2f on a 2×cache file, want low (LRU thrash)", hitFrac)
	}
}

func TestFileSmallerThanCacheGetsCached(t *testing.T) {
	e := sim.NewEngine()
	c, _ := newStack(e, 256*mb)
	run(e, func(p *sim.Proc) {
		for pass := 0; pass < 4; pass++ {
			for off := int64(0); off < 64*mb; off += 4 * mb {
				c.ReadAt(ioreq.Reader(p), off, 4*mb)
			}
		}
	})
	hitFrac := float64(c.Stats.HitBytes) / float64(c.Stats.HitBytes+c.Stats.MissBytes)
	if hitFrac < 0.70 {
		t.Fatalf("hit fraction %.2f on in-cache file, want ≥0.70", hitFrac)
	}
}

func TestReadAhead(t *testing.T) {
	e := sim.NewEngine()
	c, _ := newStack(e, 256*mb)
	run(e, func(p *sim.Proc) {
		c.ReadAt(ioreq.Reader(p), 0, 64*kb)
		// The next sequential read should be partially or fully absorbed
		// by the read-ahead window (512 KB).
		m0 := c.Stats.MissBytes
		c.ReadAt(ioreq.Reader(p), 64*kb, 256*kb)
		if c.Stats.MissBytes != m0 {
			t.Errorf("sequential read after read-ahead missed %d bytes", c.Stats.MissBytes-m0)
		}
	})
	if c.Stats.ReadAheadBytes == 0 {
		t.Fatal("read-ahead never triggered")
	}
}

func TestDropCaches(t *testing.T) {
	e := sim.NewEngine()
	c, _ := newStack(e, 256*mb)
	run(e, func(p *sim.Proc) {
		c.WriteAt(ioreq.Writer(p), 0, 8*mb)
		c.ReadAt(ioreq.Reader(p), 16*mb, 8*mb)
		c.DropCaches(ioreq.Meta(p))
		if c.CachedBytes() != 0 || c.DirtyBytes() != 0 {
			t.Errorf("DropCaches left %d cached / %d dirty", c.CachedBytes(), c.DirtyBytes())
		}
		m0 := c.Stats.MissBytes
		c.ReadAt(ioreq.Reader(p), 0, 8*mb)
		if c.Stats.MissBytes-m0 < 8*mb {
			t.Error("read after DropCaches did not miss")
		}
	})
}

func TestBadParamsPanic(t *testing.T) {
	e := sim.NewEngine()
	d := device.NewDisk(e, device.DefaultSATA("d", gb, 100e6))
	for name, params := range map[string]Params{
		"pagesize-not-pow2": {Name: "x", Capacity: mb, PageSize: 3000, MemRate: 1e9},
		"tiny-capacity":     {Name: "x", Capacity: 1, PageSize: 4 * kb, MemRate: 1e9},
		"zero-memrate":      {Name: "x", Capacity: mb, PageSize: 4 * kb},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			New(e, params, d)
		}()
	}
}

// Property: after any sequence of writes followed by Flush, dirty
// bytes are zero and the device received at least the distinct page
// span written.
func TestQuickFlushCleansEverything(t *testing.T) {
	f := func(offs []uint16) bool {
		e := sim.NewEngine()
		c, _ := newStack(e, 32*mb)
		ok := true
		e.Spawn("w", func(p *sim.Proc) {
			for _, o := range offs {
				c.WriteAt(ioreq.Writer(p), int64(o)*4*kb, 4*kb)
			}
			c.Flush(ioreq.Meta(p))
			if c.DirtyBytes() != 0 {
				ok = false
			}
		})
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: resident bytes never exceed capacity after arbitrary
// read/write traffic.
func TestQuickResidencyBound(t *testing.T) {
	f := func(ops []uint32) bool {
		e := sim.NewEngine()
		c, _ := newStack(e, 8*mb)
		ok := true
		e.Spawn("rw", func(p *sim.Proc) {
			for _, op := range ops {
				off := int64(op%2048) * 16 * kb
				if op&1 == 0 {
					c.ReadAt(ioreq.Reader(p), off, 16*kb)
				} else {
					c.WriteAt(ioreq.Writer(p), off, 16*kb)
				}
				if c.CachedBytes() > 8*mb+c.Params().ReadAhead {
					ok = false
				}
			}
		})
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCachedRead(b *testing.B) {
	e := sim.NewEngine()
	c, _ := newStack(e, 256*mb)
	e.Spawn("r", func(p *sim.Proc) {
		c.ReadAt(ioreq.Reader(p), 0, 64*mb)
		for i := 0; i < b.N; i++ {
			c.ReadAt(ioreq.Reader(p), int64(i%16)*4*mb, 4*mb)
		}
	})
	b.ResetTimer()
	e.Run()
}
