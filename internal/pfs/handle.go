package pfs

import (
	"fmt"
	"sort"

	"ioeval/internal/fs"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
	"ioeval/internal/telemetry"
)

// pfsHandle is an open parallel file.
type pfsHandle struct {
	c      *Client
	path   string
	closed bool
}

var _ fs.Handle = (*pfsHandle)(nil)

func (h *pfsHandle) Path() string { return h.path }

func (h *pfsHandle) Size() int64 { return h.c.sys.sizes[h.path] }

func (h *pfsHandle) check() {
	if h.closed {
		panic(fmt.Sprintf("pfs: use of closed handle %q", h.path))
	}
}

// serverOp is the per-server share of a striped request: subfile
// extents plus the operation count it represents.
type serverOp struct {
	vecs  []fs.IOVec
	bytes int64
	ops   int64
}

// stripeMap splits logical extents into per-server subfile extents.
// Global chunk g lives on server g%N at subfile chunk g/N.
func (h *pfsHandle) stripeMap(vecs []fs.IOVec) []serverOp {
	sys := h.c.sys
	stripe := sys.params.StripeSize
	n := int64(len(sys.servers))
	out := make([]serverOp, n)
	for _, v := range vecs {
		off, length := v.Off, v.Len
		first := true
		for length > 0 {
			g := off / stripe
			within := off % stripe
			take := stripe - within
			if take > length {
				take = length
			}
			s := g % n
			local := (g/n)*stripe + within
			op := &out[s]
			// Merge physically adjacent subfile extents.
			if k := len(op.vecs); k > 0 && op.vecs[k-1].Off+op.vecs[k-1].Len == local {
				op.vecs[k-1].Len += take
			} else {
				op.vecs = append(op.vecs, fs.IOVec{Off: local, Len: take})
			}
			op.bytes += take
			if first {
				op.ops++ // each server charges one request per client op
				first = false
			}
			off += take
			length -= take
		}
	}
	// Every touched server charges at least one request per call.
	for i := range out {
		if out[i].bytes > 0 && out[i].ops == 0 {
			out[i].ops = 1
		}
	}
	return out
}

// transfer executes the striped request: all touched servers work
// concurrently; per server the client pays request envelopes, the
// wire carries the aggregate data, and the server performs the
// subfile I/O on its local stack.
func (h *pfsHandle) transfer(r *ioreq.Request, ops []serverOp, write bool) int64 {
	c := h.c
	sys := c.sys
	class := telemetry.ClassRead
	if write {
		class = telemetry.ClassWrite
	}
	start := r.Now()
	c.rec.Enter()
	defer c.rec.Exit()
	var fns []func(*sim.Proc)
	var total int64
	var errs []error
	for i := range ops {
		i := i
		op := ops[i]
		if op.bytes == 0 {
			continue
		}
		total += op.bytes
		srv := sys.servers[i]
		fns = append(fns, func(child *sim.Proc) {
			cr := r.WithProc(child)
			c.Stats.Requests += op.ops
			srv.Stats.Requests += op.ops
			req := rpcHeaderBytes * op.ops
			if write {
				req += op.bytes
			}
			c.net.Send(cr, c.node, srv.node, req)
			srvStart := child.Now()
			srv.rec.Enter()
			srv.threads.Acquire(child, 1)
			child.Sleep(sys.params.RPCCost * sim.Duration(op.ops))
			sh, err := sys.subfile(cr, i, h.path)
			if err != nil {
				errs = append(errs, err)
				srv.threads.Release(1)
				srv.rec.Exit()
				return
			}
			if write {
				sh.WriteVec(cr, op.vecs)
				srv.Stats.BytesWritten += op.bytes
			} else {
				sh.ReadVec(cr, op.vecs)
				srv.Stats.BytesRead += op.bytes
			}
			srv.threads.Release(1)
			srv.rec.Exit()
			srv.rec.Observe(class, op.ops, op.bytes, sim.Duration(child.Now()-srvStart))
			resp := rpcHeaderBytes * op.ops
			if !write {
				resp += op.bytes
			}
			c.net.Send(cr, srv.node, c.node, resp)
		})
	}
	sim.Fork(r.Proc(), "pfs-xfer", fns...)
	if len(errs) > 0 {
		panic(fmt.Sprintf("pfs: subfile error: %v", errs[0]))
	}
	if write {
		c.Stats.BytesWritten += total
	} else {
		c.Stats.BytesRead += total
	}
	c.rec.Observe(class, 1, total, sim.Duration(r.Now()-start))
	return total
}

// WriteAt implements fs.Handle.
func (h *pfsHandle) WriteAt(r *ioreq.Request, off, n int64) int64 {
	h.check()
	if n == 0 {
		return 0
	}
	h.c.span(r)
	defer r.Pop()
	put := h.transfer(r, h.stripeMap([]fs.IOVec{{Off: off, Len: n}}), true)
	h.grow(off + n)
	return put
}

// ReadAt implements fs.Handle.
func (h *pfsHandle) ReadAt(r *ioreq.Request, off, n int64) int64 {
	h.check()
	size := h.Size()
	if off >= size {
		return 0
	}
	if off+n > size {
		n = size - off
	}
	if n == 0 {
		return 0
	}
	h.c.span(r)
	defer r.Pop()
	return h.transfer(r, h.stripeMap([]fs.IOVec{{Off: off, Len: n}}), false)
}

// WriteVec implements fs.Handle.
func (h *pfsHandle) WriteVec(r *ioreq.Request, vecs []fs.IOVec) int64 {
	h.check()
	if len(vecs) == 0 {
		return 0
	}
	h.c.span(r)
	defer r.Pop()
	var maxEnd int64
	for _, v := range vecs {
		if end := v.Off + v.Len; end > maxEnd {
			maxEnd = end
		}
	}
	put := h.transfer(r, h.stripeMap(vecs), true)
	h.grow(maxEnd)
	return put
}

// ReadVec implements fs.Handle.
func (h *pfsHandle) ReadVec(r *ioreq.Request, vecs []fs.IOVec) int64 {
	h.check()
	size := h.Size()
	clamped := make([]fs.IOVec, 0, len(vecs))
	for _, v := range vecs {
		if v.Off >= size {
			continue
		}
		if v.Off+v.Len > size {
			v.Len = size - v.Off
		}
		if v.Len > 0 {
			clamped = append(clamped, v)
		}
	}
	if len(clamped) == 0 {
		return 0
	}
	h.c.span(r)
	defer r.Pop()
	sort.Slice(clamped, func(i, j int) bool { return clamped[i].Off < clamped[j].Off })
	return h.transfer(r, h.stripeMap(clamped), false)
}

// grow extends the metadata size (monotonic).
func (h *pfsHandle) grow(end int64) {
	if end > h.c.sys.sizes[h.path] {
		h.c.sys.sizes[h.path] = end
	}
}

// Sync implements fs.Handle.
func (h *pfsHandle) Sync(r *ioreq.Request) {
	h.check()
	h.c.Sync(r)
}

// Close implements fs.Handle (metadata release).
func (h *pfsHandle) Close(r *ioreq.Request) {
	h.check()
	h.closed = true
	h.c.span(r)
	defer r.Pop()
	// A nil-op metadata RPC cannot fail; fs.Handle.Close has no
	// error to propagate anyway.
	_ = h.c.metaRPC(r, nil)
}
