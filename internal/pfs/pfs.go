// Package pfs models a PVFS-like user-level parallel filesystem:
// files are striped round-robin across multiple I/O servers, clients
// talk to all servers concurrently, and there is no client-side data
// caching and no locking (PVFS semantics — MPI-IO/ROMIO runs on it
// without the byte-range locks NFS needs).
//
// The paper's configuration-analysis phase lists "number and
// placement of I/O nodes" among the configurable factors but its
// testbeds had a single NFS node; the authors point to simulation
// (SIMCAN) for exploring other architectures. This package is that
// exploration: it lets the methodology characterize and evaluate
// multi-I/O-node configurations on the same simulated substrate.
package pfs

import (
	"fmt"

	"ioeval/internal/fs"
	"ioeval/internal/ioreq"
	"ioeval/internal/netsim"
	"ioeval/internal/sim"
	"ioeval/internal/telemetry"
)

// rpcHeaderBytes approximates a PVFS request/response envelope.
const rpcHeaderBytes = 120

// Params configures a parallel filesystem deployment.
type Params struct {
	Name       string
	StripeSize int64 // bytes per stripe chunk (PVFS default: 64 KiB)
	// Threads per server (request concurrency limit).
	Threads int64
	// RPCCost is the server CPU charge per request.
	RPCCost sim.Duration
}

// DefaultParams mirrors a stock PVFS deployment.
func DefaultParams(name string) Params {
	return Params{
		Name:       name,
		StripeSize: 64 << 10,
		Threads:    16,
		RPCCost:    20 * sim.Microsecond,
	}
}

// Server is one I/O daemon: it stores the subfiles of its stripe
// column on a node-local filesystem.
type Server struct {
	eng     *sim.Engine
	node    string
	net     *netsim.Network
	backend fs.Interface
	threads *sim.Resource
	handles map[string]fs.Handle

	// Stats counts server traffic.
	Stats ServerStats

	rec *telemetry.Recorder
}

// ServerStats counts per-server activity.
type ServerStats struct {
	Requests                int64
	BytesRead, BytesWritten int64
}

// System is a deployed parallel filesystem: the server group plus
// shared metadata. Server 0 doubles as the metadata server, as in
// small PVFS deployments.
type System struct {
	params  Params
	servers []*Server
	sizes   map[string]int64 // logical file sizes (metadata)
}

// NewSystem deploys servers on the given nodes; backends[i] is the
// node-local filesystem of server i.
func NewSystem(e *sim.Engine, params Params, nodes []string, net *netsim.Network, backends []fs.Interface) *System {
	if len(nodes) == 0 || len(nodes) != len(backends) {
		panic(fmt.Sprintf("pfs %q: %d nodes, %d backends", params.Name, len(nodes), len(backends)))
	}
	if params.StripeSize <= 0 {
		panic(fmt.Sprintf("pfs %q: stripe size must be positive", params.Name))
	}
	if params.Threads <= 0 {
		params.Threads = 16
	}
	sys := &System{params: params, sizes: map[string]int64{}}
	for i, node := range nodes {
		sys.servers = append(sys.servers, &Server{
			eng:     e,
			node:    node,
			net:     net,
			backend: backends[i],
			threads: sim.NewResource(e, fmt.Sprintf("pfsd:%s:%d", params.Name, i), params.Threads),
			handles: map[string]fs.Handle{},
			rec: telemetry.NewRecorder(e, fmt.Sprintf("pfs-server:%s:%s", params.Name, node),
				telemetry.LevelGlobalFS, params.Threads),
		})
	}
	return sys
}

// Servers returns the I/O daemons (for statistics inspection).
func (sys *System) Servers() []*Server { return sys.servers }

// Backend returns the server's node-local filesystem (the methodology
// characterizes it as the "local FS" level of a PFS deployment).
func (s *Server) Backend() fs.Interface { return s.backend }

// Telemetry returns the server's telemetry probe.
func (s *Server) Telemetry() *telemetry.Recorder { return s.rec }

// Params returns the deployment parameters.
func (sys *System) Params() Params { return sys.params }

// subfile returns (opening/creating lazily) server i's subfile handle
// for a path.
func (sys *System) subfile(r *ioreq.Request, i int, path string) (fs.Handle, error) {
	srv := sys.servers[i]
	if h, ok := srv.handles[path]; ok {
		return h, nil
	}
	h, err := srv.backend.Open(r, fmt.Sprintf("/pvfs%s.s%d", path, i), fs.ORead|fs.OWrite|fs.OCreate)
	if err != nil {
		return nil, err
	}
	srv.handles[path] = h
	return h, nil
}

// Client is a node's view of the parallel filesystem. It implements
// fs.Interface. Note the absence of ByteRangeLocker and of any data
// cache: PVFS does neither.
type Client struct {
	eng  *sim.Engine
	node string
	net  *netsim.Network
	sys  *System

	// Stats counts client traffic.
	Stats ClientStats

	rec *telemetry.Recorder
}

// ClientStats counts client-side activity.
type ClientStats struct {
	Requests                int64
	BytesRead, BytesWritten int64
}

var _ fs.Interface = (*Client)(nil)

// NewClient attaches a compute node to the filesystem.
func NewClient(e *sim.Engine, node string, net *netsim.Network, sys *System) *Client {
	return &Client{
		eng:  e,
		node: node,
		net:  net,
		sys:  sys,
		rec: telemetry.NewRecorder(e, fmt.Sprintf("pfs-client:%s:%s", sys.params.Name, node),
			telemetry.LevelGlobalFS, 1),
	}
}

// Telemetry returns the client's telemetry probe.
func (c *Client) Telemetry() *telemetry.Recorder { return c.rec }

// Name implements fs.Interface.
func (c *Client) Name() string { return c.sys.params.Name }

// Node returns the client's network node.
func (c *Client) Node() string { return c.node }

// metaServer is the metadata daemon (server 0).
func (c *Client) metaServer() *Server { return c.sys.servers[0] }

// span opens the client's global-fs span on r.
func (c *Client) span(r *ioreq.Request) {
	r.Push(telemetry.LevelGlobalFS, "pfs:"+c.sys.params.Name)
}

// metaRPC performs a metadata request against server 0.
func (c *Client) metaRPC(r *ioreq.Request, fn func() error) error {
	srv := c.metaServer()
	p := r.Proc()
	c.Stats.Requests++
	srv.Stats.Requests++
	start := p.Now()
	c.net.Send(r, c.node, srv.node, rpcHeaderBytes)
	srvStart := p.Now()
	srv.rec.Enter()
	srv.threads.Acquire(p, 1)
	p.Sleep(c.sys.params.RPCCost)
	var err error
	if fn != nil {
		err = fn()
	}
	srv.threads.Release(1)
	srv.rec.Exit()
	srv.rec.Observe(telemetry.ClassMeta, 1, 0, sim.Duration(p.Now()-srvStart))
	c.net.Send(r, srv.node, c.node, rpcHeaderBytes)
	c.rec.Observe(telemetry.ClassMeta, 1, 0, sim.Duration(p.Now()-start))
	return err
}

// Open implements fs.Interface.
func (c *Client) Open(r *ioreq.Request, path string, flags int) (fs.Handle, error) {
	c.span(r)
	defer r.Pop()
	err := c.metaRPC(r, func() error {
		_, exists := c.sys.sizes[path]
		if !exists {
			if flags&fs.OCreate == 0 {
				return fmt.Errorf("open %q: %w", path, fs.ErrNotExist)
			}
			c.sys.sizes[path] = 0
		}
		if flags&fs.OTrunc != 0 {
			c.sys.sizes[path] = 0
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &pfsHandle{c: c, path: path}, nil
}

// Remove implements fs.Interface.
func (c *Client) Remove(r *ioreq.Request, path string) error {
	c.span(r)
	defer r.Pop()
	return c.metaRPC(r, func() error {
		if _, ok := c.sys.sizes[path]; !ok {
			return fmt.Errorf("remove %q: %w", path, fs.ErrNotExist)
		}
		delete(c.sys.sizes, path)
		for i, srv := range c.sys.servers {
			if h, ok := srv.handles[path]; ok {
				h.Close(r)
				delete(srv.handles, path)
				// The stripe file exists whenever a handle does; a
				// backend miss here is not a client-visible error.
				_ = srv.backend.Remove(r, fmt.Sprintf("/pvfs%s.s%d", path, i))
			}
		}
		return nil
	})
}

// Stat implements fs.Interface.
func (c *Client) Stat(r *ioreq.Request, path string) (fs.FileInfo, error) {
	c.span(r)
	defer r.Pop()
	var fi fs.FileInfo
	err := c.metaRPC(r, func() error {
		size, ok := c.sys.sizes[path]
		if !ok {
			return fmt.Errorf("stat %q: %w", path, fs.ErrNotExist)
		}
		fi = fs.FileInfo{Path: path, Size: size}
		return nil
	})
	return fi, err
}

// Sync implements fs.Interface: flush every server's backend.
func (c *Client) Sync(r *ioreq.Request) {
	c.span(r)
	defer r.Pop()
	fns := make([]func(*sim.Proc), len(c.sys.servers))
	for i := range c.sys.servers {
		srv := c.sys.servers[i]
		fns[i] = func(child *sim.Proc) {
			cr := r.WithProc(child)
			c.net.Send(cr, c.node, srv.node, rpcHeaderBytes)
			srvStart := child.Now()
			srv.rec.Enter()
			srv.threads.Acquire(child, 1)
			srv.backend.Sync(cr)
			srv.threads.Release(1)
			srv.rec.Exit()
			srv.rec.Observe(telemetry.ClassMeta, 1, 0, sim.Duration(child.Now()-srvStart))
			c.net.Send(cr, srv.node, c.node, rpcHeaderBytes)
		}
	}
	sim.Fork(r.Proc(), "pfs-sync", fns...)
}
