package pfs

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"ioeval/internal/cache"
	"ioeval/internal/device"
	"ioeval/internal/fs"
	"ioeval/internal/ioreq"
	"ioeval/internal/netsim"
	"ioeval/internal/sim"
)

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
	gb = int64(1) << 30
)

// rig builds nServers PFS servers and one client over GigE.
type rig struct {
	eng    *sim.Engine
	sys    *System
	client *Client
	disks  []*device.Disk
}

func newRig(nServers int) *rig {
	e := sim.NewEngine()
	net := netsim.New(e, netsim.GigabitEthernet("data"))
	nodes := make([]string, nServers)
	backends := make([]fs.Interface, nServers)
	r := &rig{eng: e}
	for i := range nodes {
		nodes[i] = fmt.Sprintf("io%d", i)
		net.Attach(nodes[i])
		d := device.NewDisk(e, device.DefaultSATA(fmt.Sprintf("d%d", i), 230*gb, 100e6))
		r.disks = append(r.disks, d)
		pc := cache.New(e, cache.DefaultParams(fmt.Sprintf("pc%d", i), 1*gb), d)
		backends[i] = fs.NewMount(e, fs.DefaultMountParams("ext4"), pc)
	}
	net.Attach("cl")
	r.sys = NewSystem(e, DefaultParams("pvfs"), nodes, net, backends)
	r.client = NewClient(e, "cl", net, r.sys)
	return r
}

func run(t *testing.T, e *sim.Engine, fn func(*sim.Proc)) {
	t.Helper()
	e.Spawn("t", func(p *sim.Proc) { fn(p) })
	e.Run()
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := newRig(4)
	run(t, r.eng, func(p *sim.Proc) {
		h, err := r.client.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.ORead|fs.OCreate)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if n := h.WriteAt(ioreq.Writer(p), 0, 8*mb); n != 8*mb {
			t.Fatalf("wrote %d", n)
		}
		if h.Size() != 8*mb {
			t.Fatalf("size = %d", h.Size())
		}
		if n := h.ReadAt(ioreq.Reader(p), 0, 8*mb); n != 8*mb {
			t.Fatalf("read %d", n)
		}
		h.Close(ioreq.Meta(p))
	})
}

func TestStripingDistributesEvenly(t *testing.T) {
	r := newRig(4)
	run(t, r.eng, func(p *sim.Proc) {
		h, _ := r.client.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.OCreate)
		h.WriteAt(ioreq.Writer(p), 0, 8*mb) // 128 chunks of 64 KiB over 4 servers
		h.Close(ioreq.Meta(p))
	})
	for i, srv := range r.sys.Servers() {
		if srv.Stats.BytesWritten != 2*mb {
			t.Fatalf("server %d got %d bytes, want 2MB", i, srv.Stats.BytesWritten)
		}
	}
}

func TestOpenMissingFails(t *testing.T) {
	r := newRig(2)
	run(t, r.eng, func(p *sim.Proc) {
		if _, err := r.client.Open(ioreq.Meta(p), "/ghost", fs.ORead); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestStatRemove(t *testing.T) {
	r := newRig(2)
	run(t, r.eng, func(p *sim.Proc) {
		h, _ := r.client.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.OCreate)
		h.WriteAt(ioreq.Writer(p), 0, 100*kb)
		h.Close(ioreq.Meta(p))
		fi, err := r.client.Stat(ioreq.Meta(p), "/f")
		if err != nil || fi.Size != 100*kb {
			t.Fatalf("stat = %+v, %v", fi, err)
		}
		if err := r.client.Remove(ioreq.Meta(p), "/f"); err != nil {
			t.Fatalf("remove: %v", err)
		}
		if _, err := r.client.Stat(ioreq.Meta(p), "/f"); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("stat after remove: %v", err)
		}
	})
}

func TestTruncateOnOpen(t *testing.T) {
	r := newRig(2)
	run(t, r.eng, func(p *sim.Proc) {
		h, _ := r.client.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.OCreate)
		h.WriteAt(ioreq.Writer(p), 0, mb)
		h.Close(ioreq.Meta(p))
		h2, _ := r.client.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.OTrunc)
		if h2.Size() != 0 {
			t.Fatalf("size after trunc = %d", h2.Size())
		}
		h2.Close(ioreq.Meta(p))
	})
}

func TestReadClampsToEOF(t *testing.T) {
	r := newRig(2)
	run(t, r.eng, func(p *sim.Proc) {
		h, _ := r.client.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.ORead|fs.OCreate)
		h.WriteAt(ioreq.Writer(p), 0, 100*kb)
		if n := h.ReadAt(ioreq.Reader(p), 50*kb, mb); n != 50*kb {
			t.Fatalf("short read = %d", n)
		}
		if n := h.ReadAt(ioreq.Reader(p), mb, kb); n != 0 {
			t.Fatalf("read past EOF = %d", n)
		}
		h.Close(ioreq.Meta(p))
	})
}

func TestMoreServersMoreThroughput(t *testing.T) {
	// The point of the architecture: aggregate bandwidth scales with
	// I/O nodes (until the client NIC binds).
	timeFor := func(nServers int) sim.Duration {
		r := newRig(nServers)
		var dur sim.Duration
		run(t, r.eng, func(p *sim.Proc) {
			h, _ := r.client.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.OCreate)
			t0 := p.Now()
			h.WriteAt(ioreq.Writer(p), 0, 256*mb)
			h.Sync(ioreq.Meta(p))
			dur = sim.Duration(p.Now() - t0)
			h.Close(ioreq.Meta(p))
		})
		return dur
	}
	t1, t4 := timeFor(1), timeFor(4)
	if t4 >= t1 {
		t.Fatalf("4 servers (%v) not faster than 1 (%v)", t4, t1)
	}
}

func TestVecTotals(t *testing.T) {
	r := newRig(3)
	run(t, r.eng, func(p *sim.Proc) {
		h, _ := r.client.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.ORead|fs.OCreate)
		var vecs []fs.IOVec
		for i := int64(0); i < 100; i++ {
			vecs = append(vecs, fs.IOVec{Off: i * 100 * kb, Len: 10 * kb})
		}
		if n := h.WriteVec(ioreq.Writer(p), vecs); n != 1000*kb {
			t.Fatalf("vec wrote %d", n)
		}
		if n := h.ReadVec(ioreq.Reader(p), vecs); n != 1000*kb {
			t.Fatalf("vec read %d", n)
		}
		h.Close(ioreq.Meta(p))
	})
}

func TestNoLockingInterface(t *testing.T) {
	// PVFS needs no byte-range locks: the client must NOT implement
	// the locking interface the mpiio layer probes for.
	type locker interface {
		LockUnlock(p *sim.Proc, count int64)
	}
	var c fs.Interface = newRig(1).client
	if _, ok := c.(locker); ok {
		t.Fatal("pfs.Client must not implement byte-range locking")
	}
}

// Property: stripe mapping preserves total bytes and every subfile
// extent is non-overlapping within its server.
func TestQuickStripeMapCoverage(t *testing.T) {
	r := newRig(5)
	h := &pfsHandle{c: r.client, path: "/q"}
	f := func(raw []uint16) bool {
		var vecs []fs.IOVec
		off := int64(0)
		var total int64
		for _, v := range raw {
			l := int64(v%5000) + 1
			gap := int64(v % 3000)
			off += gap
			vecs = append(vecs, fs.IOVec{Off: off, Len: l})
			off += l
			total += l
		}
		ops := h.stripeMap(vecs)
		var mapped int64
		for _, op := range ops {
			for i, v := range op.vecs {
				mapped += v.Len
				if i > 0 && v.Off < op.vecs[i-1].Off+op.vecs[i-1].Len {
					return false // overlap or disorder within a server
				}
			}
		}
		return mapped == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
