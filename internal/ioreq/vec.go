package ioreq

import "sort"

// Vec is one extent of a vectored request: a half-open byte range
// [Off, Off+Len). It is the single offset/length bookkeeping type of
// the whole stack: fs.IOVec and device.Run are aliases of it, so
// vectors flow from the MPI-IO library down to the disks without the
// per-layer conversion loops the stack used to carry.
type Vec struct {
	Off, Len int64
}

// End returns the exclusive upper bound of the extent.
func (v Vec) End() int64 { return v.Off + v.Len }

// Total returns the summed length of all extents.
func Total(vecs []Vec) int64 {
	var n int64
	for _, v := range vecs {
		n += v.Len
	}
	return n
}

// Sort orders extents by ascending offset (stable not required: equal
// offsets cannot both carry data in a well-formed vector).
func Sort(vecs []Vec) {
	sort.Slice(vecs, func(i, j int) bool { return vecs[i].Off < vecs[j].Off })
}

// Merge coalesces sorted extents that overlap or touch, returning a
// minimal cover. Input must be sorted by Off; the result aliases the
// input's backing array.
func Merge(vecs []Vec) []Vec {
	if len(vecs) <= 1 {
		return vecs
	}
	out := vecs[:1]
	for _, v := range vecs[1:] {
		last := &out[len(out)-1]
		if v.Off <= last.End() {
			if end := v.End(); end > last.End() {
				last.Len = end - last.Off
			}
		} else {
			out = append(out, v)
		}
	}
	return out
}
