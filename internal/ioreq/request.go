// Package ioreq defines the per-request context threaded through
// every layer of the simulated I/O stack. A Request carries what the
// bare (proc, offset, length) signatures could not: the operation
// class, the application-level access pattern, the originating rank
// and phase, fault tags, and — centrally — a span stack stamped on
// the simulated clock. Each layer pushes a span on entry and pops it
// on exit, so a completed request knows exactly how long it spent in
// the MPI-IO library, the global filesystem, the local filesystem,
// the page cache, the RAID organization, the disks, and the network.
//
// The paper's evaluation phase infers the binding I/O level
// indirectly (measured rate ÷ characterized rate per level, the
// used-% table); spans measure it directly. The two must agree —
// telemetry.PathProfile, aggregated from popped spans by a Collector,
// is the ground truth against which the used-% verdict is checked.
package ioreq

import (
	"fmt"

	"ioeval/internal/sim"
	"ioeval/internal/telemetry"
)

// Op is the request's operation class, fixed at creation: it names
// what the application asked for, so lower-layer work done on its
// behalf (a read-modify-write inside RAID-5, a writeback forced by a
// read's eviction) is attributed to the operation that caused it.
type Op int

// Request operation classes.
const (
	OpRead Op = iota
	OpWrite
	OpMeta
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpMeta:
		return "meta"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Class maps the op onto the telemetry operation class.
func (o Op) Class() telemetry.OpClass {
	switch o {
	case OpRead:
		return telemetry.ClassRead
	case OpWrite:
		return telemetry.ClassWrite
	default:
		return telemetry.ClassMeta
	}
}

// Mode is the application-level access pattern stamped on the
// request. It mirrors (but does not import) trace.AccessMode, so the
// layer packages need no dependency on the tracing plane.
type Mode int

// Access patterns.
const (
	ModeUnknown Mode = iota
	ModeSequential
	ModeStrided
	ModeRandom
)

func (m Mode) String() string {
	switch m {
	case ModeSequential:
		return "sequential"
	case ModeStrided:
		return "strided"
	case ModeRandom:
		return "random"
	}
	return "unknown"
}

// span is one open interval on a request's path. Spans form a tree:
// a child's [start, end] nests inside its parent's. covered/coverEnd
// incrementally accumulate the union of completed children, so the
// parent's self time (time not inside any child) is exact even when
// sim.Fork runs children in parallel.
type span struct {
	parent *span
	level  telemetry.Level
	comp   string
	start  sim.Time
	// remote marks spans opened beneath a global-filesystem span: work
	// a file server's backend stack (local fs, cache, RAID, disks)
	// performs on behalf of a remote request. The distinction keeps the
	// span verdict comparable to the characterization, which measures
	// the server-side stack as part of the network-FS level, not the
	// compute node's local-FS level.
	remote bool

	coverEnd sim.Time     // right edge of the children union so far
	covered  sim.Duration // total length of the children union
}

// shared is the per-request state common to every proc view.
type shared struct {
	op    Op
	mode  Mode
	block int64
	rank  int
	phase int
	col   *Collector
}

// Request is a per-request context. It wraps the simulated process
// executing the request, so layer methods take a *Request where they
// used to take a *sim.Proc. A Request is a lightweight view: WithProc
// creates sibling views over the same shared state for sim.Fork
// children, giving each proc its own strictly-LIFO span stack while
// all spans aggregate into one tree.
type Request struct {
	p   *sim.Proc
	d   *shared
	cur *span
}

// New creates a request executed by p.
func New(p *sim.Proc, op Op) *Request {
	if p == nil {
		panic("ioreq: New with nil proc")
	}
	return &Request{p: p, d: &shared{op: op, rank: -1, phase: -1}}
}

// Reader is shorthand for New(p, OpRead).
func Reader(p *sim.Proc) *Request { return New(p, OpRead) }

// Writer is shorthand for New(p, OpWrite).
func Writer(p *sim.Proc) *Request { return New(p, OpWrite) }

// Meta is shorthand for New(p, OpMeta).
func Meta(p *sim.Proc) *Request { return New(p, OpMeta) }

// SetPattern stamps the application-level access pattern and block
// size. Returns r for chaining at construction sites.
func (r *Request) SetPattern(mode Mode, block int64) *Request {
	r.d.mode = mode
	r.d.block = block
	return r
}

// SetOrigin stamps the originating MPI rank and workload phase.
func (r *Request) SetOrigin(rank, phase int) *Request {
	r.d.rank = rank
	r.d.phase = phase
	return r
}

// SetCollector attaches the aggregation target for popped spans and
// fault tags. A nil collector (the default) discards both.
func (r *Request) SetCollector(c *Collector) *Request {
	r.d.col = c
	return r
}

// Proc returns the simulated process executing this view of the
// request.
func (r *Request) Proc() *sim.Proc { return r.p }

// Now returns the current simulated time.
func (r *Request) Now() sim.Time { return r.p.Now() }

// Op returns the request's operation class.
func (r *Request) Op() Op { return r.d.op }

// Class returns the telemetry class of the request's op.
func (r *Request) Class() telemetry.OpClass { return r.d.op.Class() }

// Mode returns the access pattern stamped on the request.
func (r *Request) Mode() Mode { return r.d.mode }

// Block returns the application block size stamped on the request.
func (r *Request) Block() int64 { return r.d.block }

// Rank returns the originating MPI rank (-1 if not an MPI request).
func (r *Request) Rank() int { return r.d.rank }

// Phase returns the originating workload phase (-1 if unset).
func (r *Request) Phase() int { return r.d.phase }

// WithProc returns a view of the request executed by child. The view
// shares the request's identity and collector; its span stack starts
// at the caller's current span, so spans the child pushes nest under
// the span that was open when the fork happened. Use at every
// sim.Fork fan-out that continues a request on child procs.
func (r *Request) WithProc(child *sim.Proc) *Request {
	return &Request{p: child, d: r.d, cur: r.cur}
}

// Push opens a span at the given level. Every layer entry point calls
// Push and defers Pop, so the open-span chain at any instant is the
// request's current position on the I/O path.
func (r *Request) Push(level telemetry.Level, comp string) {
	remote := r.cur != nil && (r.cur.remote || r.cur.level == telemetry.LevelGlobalFS)
	r.cur = &span{parent: r.cur, level: level, comp: comp, start: r.p.Now(), remote: remote}
}

// Pop closes the current span, records it into the collector, and
// folds its interval into the parent's child-coverage union. Spans
// are strictly LIFO per proc view; the engine's one-runner-at-a-time
// handshake makes the shared parent update race-free.
func (r *Request) Pop() {
	s := r.cur
	if s == nil {
		panic("ioreq: Pop with no open span")
	}
	end := r.p.Now()
	dur := sim.Duration(end - s.start)
	self := dur - s.covered
	if self < 0 {
		// Cannot happen while children nest inside their parent; guard
		// so a future layer bug surfaces as a loud failure, not a
		// negative self time.
		panic(fmt.Sprintf("ioreq: span %s/%s self time negative", s.level, s.comp))
	}
	r.d.col.record(s.level, r.d.op.Class(), dur, self, s.parent == nil, s.remote)
	if par := s.parent; par != nil {
		if s.start >= par.coverEnd {
			par.covered += dur
		} else if end > par.coverEnd {
			par.covered += sim.Duration(end - par.coverEnd)
		}
		if end > par.coverEnd {
			par.coverEnd = end
		}
	}
	r.cur = s.parent
}

// Depth returns the number of open spans on this view's stack
// (diagnostics and tests).
func (r *Request) Depth() int {
	n := 0
	for s := r.cur; s != nil; s = s.parent {
		n++
	}
	return n
}

// Tag counts a named event against the request's collector — the
// fault plane uses it to mark requests that crossed a degraded
// component (slow disk, failed RAID member, stalled server, flapping
// link), so degraded-path traffic is visible in the PathProfile.
func (r *Request) Tag(name string) {
	r.d.col.tag(name)
}
