package ioreq

import (
	"ioeval/internal/sim"
	"ioeval/internal/telemetry"
)

// Collector aggregates the spans of completed requests into a
// telemetry.PathProfile. Like telemetry.Recorder it is strictly
// passive and nil-safe: a nil *Collector discards everything, so
// requests can be built without an aggregation plane (unit tests,
// MPI communication that is not I/O).
type Collector struct {
	prof telemetry.PathProfile
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// record folds one popped span into the profile.
func (c *Collector) record(level telemetry.Level, class telemetry.OpClass, busy, self sim.Duration, top, remote bool) {
	if c == nil {
		return
	}
	c.prof.Observe(level, class, busy, self, top, remote)
}

// tag counts a fault-plane mark.
func (c *Collector) tag(name string) {
	if c == nil {
		return
	}
	c.prof.AddTag(name)
}

// Profile returns a copy of the aggregated profile.
func (c *Collector) Profile() telemetry.PathProfile {
	if c == nil {
		return telemetry.PathProfile{}
	}
	out := c.prof
	if len(c.prof.Tags) > 0 {
		out.Tags = make(map[string]int64, len(c.prof.Tags))
		for k, v := range c.prof.Tags {
			out.Tags[k] = v
		}
	}
	return out
}

// Reset clears the aggregated profile (phase-interval measurement
// re-arms the collector between phases).
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.prof = telemetry.PathProfile{}
}
