package ioreq

import (
	"testing"

	"ioeval/internal/sim"
	"ioeval/internal/telemetry"
)

const ms = 1000 * sim.Microsecond

// TestSpanSelfTime checks the self-time arithmetic on a simple nest:
// a parent span whose child covers part of its interval attributes
// only the uncovered remainder to itself.
func TestSpanSelfTime(t *testing.T) {
	e := sim.NewEngine()
	col := NewCollector()
	e.Spawn("req", func(p *sim.Proc) {
		r := Writer(p).SetCollector(col)
		r.Push(telemetry.LevelLibrary, "lib")
		p.Sleep(2 * ms)
		r.Push(telemetry.LevelGlobalFS, "gfs")
		p.Sleep(5 * ms)
		r.Pop()
		p.Sleep(3 * ms)
		r.Pop()
		if d := r.Depth(); d != 0 {
			t.Errorf("depth after balanced pops = %d, want 0", d)
		}
	})
	e.Run()
	prof := col.Profile()
	lib := prof.Cell(telemetry.LevelLibrary, telemetry.ClassWrite)
	gfs := prof.Cell(telemetry.LevelGlobalFS, telemetry.ClassWrite)
	if lib.Busy != 10*ms || lib.Self != 5*ms {
		t.Errorf("library busy=%v self=%v, want 10ms/5ms", lib.Busy, lib.Self)
	}
	if gfs.Busy != 5*ms || gfs.Self != 5*ms {
		t.Errorf("global-fs busy=%v self=%v, want 5ms/5ms", gfs.Busy, gfs.Self)
	}
	if top := prof.TopBusy(telemetry.ClassWrite); top != 10*ms {
		t.Errorf("top busy = %v, want 10ms (root span only)", top)
	}
}

// TestForkCoverageUnion checks the parent's child-coverage union when
// sim.Fork runs children concurrently: overlapping child intervals
// must not be double-counted against the parent's self time.
func TestForkCoverageUnion(t *testing.T) {
	e := sim.NewEngine()
	col := NewCollector()
	e.Spawn("req", func(p *sim.Proc) {
		r := Reader(p).SetCollector(col)
		r.Push(telemetry.LevelGlobalFS, "gfs")
		// Two children overlap fully in [t, t+4ms) and one runs longer:
		// the union is 6ms, not the 10ms sum.
		sim.Fork(p, "xfer",
			func(c *sim.Proc) {
				cr := r.WithProc(c)
				cr.Push(telemetry.LevelNetwork, "net")
				c.Sleep(4 * ms)
				cr.Pop()
			},
			func(c *sim.Proc) {
				cr := r.WithProc(c)
				cr.Push(telemetry.LevelDevice, "disk")
				c.Sleep(6 * ms)
				cr.Pop()
			},
		)
		r.Pop()
	})
	e.Run()
	prof := col.Profile()
	gfs := prof.Cell(telemetry.LevelGlobalFS, telemetry.ClassRead)
	if gfs.Busy != 6*ms || gfs.Self != 0 {
		t.Errorf("parent busy=%v self=%v, want 6ms/0 (children union covers it)", gfs.Busy, gfs.Self)
	}
	if n := prof.Cell(telemetry.LevelNetwork, telemetry.ClassRead).Self; n != 4*ms {
		t.Errorf("network self = %v, want 4ms", n)
	}
	if d := prof.Cell(telemetry.LevelDevice, telemetry.ClassRead).Self; d != 6*ms {
		t.Errorf("device self = %v, want 6ms", d)
	}
}

// TestRemoteAttribution checks that spans opened beneath a global-FS
// span carry the remote mark, and that CharacterizedSelf folds their
// self time into the network-FS group instead of local-FS.
func TestRemoteAttribution(t *testing.T) {
	e := sim.NewEngine()
	col := NewCollector()
	e.Spawn("req", func(p *sim.Proc) {
		r := Writer(p).SetCollector(col)
		// Local write: cache span with no global-FS ancestor.
		r.Push(telemetry.LevelLocalFS, "local")
		r.Push(telemetry.LevelCache, "page")
		p.Sleep(2 * ms)
		r.Pop()
		r.Pop()
		// Remote write: the same lower levels beneath an NFS span.
		r.Push(telemetry.LevelGlobalFS, "nfs")
		r.Push(telemetry.LevelLocalFS, "backend")
		r.Push(telemetry.LevelCache, "page")
		p.Sleep(3 * ms)
		r.Pop()
		r.Pop()
		r.Pop()
	})
	e.Run()
	prof := col.Profile()
	if got := prof.RemoteSelfAt(telemetry.LevelCache); got != 3*ms {
		t.Errorf("remote cache self = %v, want 3ms", got)
	}
	cs := prof.CharacterizedSelf()
	if cs[telemetry.LevelLocalFS] != 2*ms {
		t.Errorf("characterized local-fs self = %v, want 2ms (local path only)", cs[telemetry.LevelLocalFS])
	}
	if cs[telemetry.LevelGlobalFS] != 3*ms {
		t.Errorf("characterized global-fs self = %v, want 3ms (remote backend folds in)", cs[telemetry.LevelGlobalFS])
	}
}

// TestNilCollectorSafe checks the collectorless path: spans and tags
// on a request without a collector are discarded, not a crash.
func TestNilCollectorSafe(t *testing.T) {
	e := sim.NewEngine()
	e.Spawn("req", func(p *sim.Proc) {
		r := Meta(p)
		r.Push(telemetry.LevelLibrary, "lib")
		r.Tag("slow_disk")
		p.Sleep(ms)
		r.Pop()
	})
	e.Run()
}

// TestPopWithoutPushPanics pins the stack-discipline guard.
func TestPopWithoutPushPanics(t *testing.T) {
	e := sim.NewEngine()
	e.Spawn("req", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Pop on an empty span stack did not panic")
			}
		}()
		Reader(p).Pop()
	})
	e.Run()
}

// TestRequestStamps checks the constructor chain carries op, pattern,
// origin, and defaults.
func TestRequestStamps(t *testing.T) {
	e := sim.NewEngine()
	e.Spawn("req", func(p *sim.Proc) {
		r := New(p, OpWrite).SetPattern(ModeStrided, 4096).SetOrigin(3, 7)
		if r.Op() != OpWrite || r.Class() != telemetry.ClassWrite {
			t.Errorf("op=%v class=%v, want write/write", r.Op(), r.Class())
		}
		if r.Mode() != ModeStrided || r.Block() != 4096 {
			t.Errorf("mode=%v block=%d, want strided/4096", r.Mode(), r.Block())
		}
		if r.Rank() != 3 || r.Phase() != 7 {
			t.Errorf("rank=%d phase=%d, want 3/7", r.Rank(), r.Phase())
		}
		if d := Reader(p); d.Rank() != -1 || d.Phase() != -1 {
			t.Errorf("default rank=%d phase=%d, want -1/-1", d.Rank(), d.Phase())
		}
	})
	e.Run()
}

// TestVecOps checks the shared vector bookkeeping: Total, Sort, and
// Merge's coalescing of overlapping and touching extents.
func TestVecOps(t *testing.T) {
	vecs := []Vec{{Off: 30, Len: 10}, {Off: 0, Len: 10}, {Off: 8, Len: 4}, {Off: 12, Len: 3}}
	if n := Total(vecs); n != 27 {
		t.Errorf("Total = %d, want 27", n)
	}
	Sort(vecs)
	for i := 1; i < len(vecs); i++ {
		if vecs[i].Off < vecs[i-1].Off {
			t.Fatalf("not sorted at %d: %+v", i, vecs)
		}
	}
	merged := Merge(vecs)
	want := []Vec{{Off: 0, Len: 15}, {Off: 30, Len: 10}}
	if len(merged) != len(want) {
		t.Fatalf("Merge = %+v, want %+v", merged, want)
	}
	for i := range want {
		if merged[i] != want[i] {
			t.Errorf("Merge[%d] = %+v, want %+v", i, merged[i], want[i])
		}
	}
}
