package store_test

import (
	"bytes"
	"testing"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/nfs"
	"ioeval/internal/store"
	"ioeval/internal/sweep"
	"ioeval/internal/workload"
	"ioeval/internal/workload/btio"
)

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
	gb = int64(1) << 30
)

func warmBase(name string, nodes int) cluster.Config {
	return cluster.Config{
		Name:         name,
		ComputeNodes: nodes,
		NodeRAM:      256 * mb,
		NodeDiskCap:  10 * gb,
		NodeDiskRate: 90e6,
		IONodeRAM:    256 * mb,
		IODiskCap:    20 * gb,
		IODiskRate:   100e6,
		Org:          cluster.JBOD,
		StripeUnit:   256 * kb,
		RAID5Disks:   5,
		NFSServer:    nfs.DefaultServerParams(name + "-nfs"),
		NFSClient:    nfs.DefaultClientParams(name + "-nfs"),
	}
}

func warmChar() core.CharacterizeConfig {
	return core.CharacterizeConfig{
		FSBlockSizes:   []int64{64 * kb, mb},
		FSModes:        []bench.Mode{bench.SeqWrite, bench.SeqRead},
		LocalFileSize:  64 * mb,
		GlobalFileSize: 64 * mb,
		LibProcs:       2,
		LibBlockSizes:  []int64{4 * mb},
		LibTransfer:    256 * kb,
		LibFileSize:    16 * mb,
		RandomOps:      128,
	}
}

func warmGrid() sweep.Grid {
	return sweep.GridSpec{
		Platforms: []cluster.Config{warmBase("gamma", 2)},
		Orgs:      []cluster.Organization{cluster.JBOD, cluster.RAID5},
		Char:      warmChar(),
		Apps: []sweep.AppSpec{{Name: "btio-quick", New: func() workload.App {
			return btio.New(btio.Config{
				Class: btio.Class{Name: "Q", N: 64, Steps: 20, WriteInterval: 5},
				Procs: 4, Subtype: btio.Full,
			})
		}}},
	}.Grid()
}

func runGrid(t testing.TB, dir string) (json []byte, engineAux, storeAux map[string]int64) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	eng := sweep.NewEngine(4)
	eng.SetStore(st)
	rep, err := eng.Run(warmGrid(), sweep.ByIOTime)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("report: %v", err)
	}
	return buf.Bytes(), eng.Snapshot().Counters.Aux, st.Snapshot().Counters.Aux
}

// TestSweepWarmStart is the acceptance test for the store plane: a
// cold sweep fills the store measuring each configuration once; a warm
// re-run — new engine, new store handle, same directory — performs
// zero characterizations and produces a byte-identical report.
func TestSweepWarmStart(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep grid skipped in -short mode")
	}
	dir := t.TempDir()

	cold, coldEng, coldStore := runGrid(t, dir)
	if coldEng["characterizations"] != 2 {
		t.Fatalf("cold characterizations = %d, want 2", coldEng["characterizations"])
	}
	if coldStore["misses"] != 2 || coldStore["puts"] != 2 {
		t.Fatalf("cold store counters = %v", coldStore)
	}

	warm, warmEng, warmStore := runGrid(t, dir)
	if warmEng["characterizations"] != 0 {
		t.Fatalf("warm characterizations = %d, want 0 (the store must satisfy them)", warmEng["characterizations"])
	}
	if warmStore["hits"] != 2 || warmStore["misses"] != 0 {
		t.Fatalf("warm store counters = %v", warmStore)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("warm report differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
}

// TestSessionWarmStart pins the same contract one layer down, through
// core.WithStore directly.
func TestSessionWarmStart(t *testing.T) {
	dir := t.TempDir()
	build := func() *cluster.Cluster { return cluster.New(warmBase("delta", 2)) }

	mk := func() (*core.Characterization, *store.Store) {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		sess := core.NewSession(build, core.WithCharacterizeConfig(warmChar()), core.WithStore(st))
		ch, err := sess.Characterization()
		if err != nil {
			t.Fatal(err)
		}
		return ch, st
	}

	_, coldStore := mk()
	if s := coldStore.Stats(); s.Misses != 1 || s.Puts != 1 {
		t.Fatalf("cold stats = %+v", s)
	}
	_, warmStore := mk()
	if s := warmStore.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("warm stats = %+v", s)
	}
}

// BenchmarkCharacterizationColdStore measures the store's overhead on
// a first-ever run: full measurement plus encode + write-back.
func BenchmarkCharacterizationColdStore(b *testing.B) {
	build := func() *cluster.Cluster { return cluster.New(warmBase("bench", 2)) }
	for i := 0; i < b.N; i++ {
		st, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		sess := core.NewSession(build, core.WithCharacterizeConfig(warmChar()), core.WithStore(st))
		if _, err := sess.Characterization(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharacterizationWarmStore measures a warm start: every
// iteration opens a fresh handle on a pre-filled store and reads the
// tables back instead of measuring.
func BenchmarkCharacterizationWarmStore(b *testing.B) {
	build := func() *cluster.Cluster { return cluster.New(warmBase("bench", 2)) }
	dir := b.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	sess := core.NewSession(build, core.WithCharacterizeConfig(warmChar()), core.WithStore(st))
	if _, err := sess.Characterization(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		sess := core.NewSession(build, core.WithCharacterizeConfig(warmChar()), core.WithStore(st))
		if _, err := sess.Characterization(); err != nil {
			b.Fatal(err)
		}
	}
}
