// Package store is a persistent, content-addressed characterization
// store. Entries are keyed by core.Fingerprint — a hash of everything
// that determines the measurement (cluster configuration plus
// normalized characterization parameters) — so a configuration is
// characterized once and every later session, sweep worker or CLI
// invocation that would measure the same thing reads the tables back
// instead. The paper treats characterization as the expensive,
// rarely-repeated phase; the store is what makes "rarely" true across
// process boundaries.
//
// Failure semantics: the store is a cache, never an authority. A
// corrupt, truncated or mismatched entry is treated as a miss, moved
// into a quarantine/ subdirectory for inspection, and recomputed; a
// failed write-back is counted and ignored. No store problem is ever
// fatal to an evaluation.
//
// Determinism: on a miss the computed characterization is encoded,
// persisted, and the *decoded* copy is returned — cold and warm runs
// both see tables that made one round trip through the persistence
// format, so a warm-started run is byte-identical to the cold run
// that filled the store.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"ioeval/internal/core"
	"ioeval/internal/telemetry"
)

const (
	entryFormat   = "ioeval-store-entry"
	entryVersion  = 1
	entryExt      = ".json"
	tmpPrefix     = ".tmp-"
	quarantineDir = "quarantine"
)

// entry is the on-disk envelope around one persisted characterization.
// The payload is the core persistence format
// ("ioeval-characterization"); the checksum covers the compacted
// payload bytes — a canonical form, since the envelope encoder re-flows
// the payload's whitespace — so bit rot inside the payload is caught
// before the payload's own decoder runs.
type entry struct {
	Format      string          `json:"format"`
	Version     int             `json:"version"`
	Fingerprint string          `json:"fingerprint"`
	Checksum    string          `json:"checksum_sha256"`
	Payload     json.RawMessage `json:"payload"`
}

// Option configures a Store at Open.
type Option func(*Store)

// WithMaxBytes bounds the store's entry bytes on disk: after every
// write-back, oldest entries (mtime ascending, name as tiebreak) are
// evicted until the total fits. Zero (the default) disables GC.
func WithMaxBytes(n int64) Option {
	return func(s *Store) { s.maxBytes = n }
}

// Stats are the store's monotonic counters.
type Stats struct {
	// Hits is the number of lookups served from disk; MemHits the
	// number served from this process's memo (an earlier hit or
	// write-back in the same process).
	Hits    int64
	MemHits int64
	// Misses counts lookups that had to characterize.
	Misses int64
	// Puts counts successful write-backs.
	Puts int64
	// Evictions counts entries removed by the size-bounded GC.
	Evictions int64
	// Quarantined counts corrupt/mismatched entries moved aside.
	Quarantined int64

	BytesRead    int64
	BytesWritten int64
}

// Store is an on-disk characterization store rooted at one directory.
// It is safe for concurrent use; a missing entry requested by many
// goroutines at once is computed exactly once (in-process
// single-flight).
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	flights map[string]*flight
	memo    map[string]*core.Characterization
	stats   Stats
}

// flight is one in-progress fill; waiters block on done.
type flight struct {
	done chan struct{}
	ch   *core.Characterization
	err  error
}

// Open opens (creating if needed) the store rooted at dir. Leftover
// temporary files from a crashed writer are removed.
func Open(dir string, opts ...Option) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:     dir,
		flights: map[string]*flight{},
		memo:    map[string]*core.Characterization{},
	}
	for _, opt := range opts {
		opt(s)
	}
	// Crash recovery: a writer that died between CreateTemp and rename
	// leaves a tmp file no reader will ever match; sweep them.
	if names, err := os.ReadDir(dir); err == nil {
		for _, de := range names {
			if strings.HasPrefix(de.Name(), tmpPrefix) {
				_ = os.Remove(filepath.Join(dir, de.Name()))
			}
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a copy of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// validFingerprint guards the fingerprint's use as a file name.
func validFingerprint(fp string) error {
	if fp == "" {
		return fmt.Errorf("store: empty fingerprint")
	}
	for _, r := range fp {
		ok := r >= '0' && r <= '9' || r >= 'a' && r <= 'f' || r >= 'A' && r <= 'F'
		if !ok {
			return fmt.Errorf("store: fingerprint %q is not hex", fp)
		}
	}
	return nil
}

// GetOrCompute returns the characterization stored under fingerprint,
// filling the entry via compute on a miss. Concurrent callers for the
// same fingerprint share one compute call; every caller receives the
// same round-tripped characterization. Implements core.CharStore.
func (s *Store) GetOrCompute(fp string, compute func() (*core.Characterization, error)) (*core.Characterization, error) {
	if err := validFingerprint(fp); err != nil {
		return nil, err
	}
	ch, theirs, mine := s.lookup(fp)
	if mine == nil {
		if theirs == nil {
			return ch, nil // in-process memo hit
		}
		<-theirs.done
		return theirs.ch, theirs.err
	}
	mine.ch, mine.err = s.fill(fp, compute)
	s.land(fp, mine)
	close(mine.done)
	return mine.ch, mine.err
}

// lookup resolves one fingerprint under the lock: a memo hit, an
// in-progress flight to wait on, or a fresh flight registered for this
// caller to fill (exactly one of the three is non-nil/non-zero).
func (s *Store) lookup(fp string) (ch *core.Characterization, theirs, mine *flight) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ch, ok := s.memo[fp]; ok {
		s.stats.MemHits++
		return ch, nil, nil
	}
	if f, ok := s.flights[fp]; ok {
		return nil, f, nil
	}
	f := &flight{done: make(chan struct{})}
	s.flights[fp] = f
	return nil, nil, f
}

// land deregisters a completed flight, memoizing its result on
// success (a failed compute must stay retryable).
func (s *Store) land(fp string, f *flight) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.flights, fp)
	if f.err == nil {
		s.memo[fp] = f.ch
	}
}

// memoize records a disk hit in the in-process memo.
func (s *Store) memoize(fp string, ch *core.Characterization) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.memo[fp] = ch
}

// memoized consults the in-process memo only.
func (s *Store) memoized(fp string) (*core.Characterization, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch, ok := s.memo[fp]
	if ok {
		s.stats.MemHits++
	}
	return ch, ok
}

// Get returns the stored characterization for fingerprint, or false
// on a miss. It never computes.
func (s *Store) Get(fp string) (*core.Characterization, bool) {
	if validFingerprint(fp) != nil {
		return nil, false
	}
	if ch, ok := s.memoized(fp); ok {
		return ch, true
	}
	ch, ok := s.load(fp)
	if ok {
		s.memoize(fp, ch)
	}
	return ch, ok
}

// fill resolves one missing memo slot: disk first, compute on a miss,
// write-back best-effort.
func (s *Store) fill(fp string, compute func() (*core.Characterization, error)) (*core.Characterization, error) {
	if ch, ok := s.load(fp); ok {
		return ch, nil
	}
	s.addStat(func(st *Stats) { st.Misses++ })
	ch, err := compute()
	if err != nil {
		return nil, err
	}
	// Encode once; persist the bytes and return their decoding, so the
	// caller sees exactly what a warm run will read back.
	var payload bytes.Buffer
	if err := ch.WriteJSON(&payload); err != nil {
		// Unencodable tables cannot be stored; serve the computed copy.
		return ch, nil
	}
	rt, err := core.ReadCharacterizationJSON(bytes.NewReader(payload.Bytes()))
	if err != nil {
		return ch, nil
	}
	s.put(fp, payload.Bytes())
	return rt, nil
}

// load reads and verifies one entry. Every failure mode — unreadable
// file, bad envelope, wrong format/version/fingerprint, checksum
// mismatch, undecodable payload — quarantines the file and reports a
// miss.
func (s *Store) load(fp string) (*core.Characterization, bool) {
	path := filepath.Join(s.dir, fp+entryExt)
	raw, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			s.quarantine(path)
		}
		return nil, false
	}
	ch, err := decodeEntry(fp, raw)
	if err != nil {
		s.quarantine(path)
		return nil, false
	}
	s.addStat(func(st *Stats) {
		st.Hits++
		st.BytesRead += int64(len(raw))
	})
	return ch, true
}

func decodeEntry(fp string, raw []byte) (*core.Characterization, error) {
	var e entry
	if err := json.Unmarshal(raw, &e); err != nil {
		return nil, fmt.Errorf("store: entry %s: %w", fp, err)
	}
	if e.Format != entryFormat {
		return nil, fmt.Errorf("store: entry %s: unexpected format %q", fp, e.Format)
	}
	if e.Version != entryVersion {
		return nil, fmt.Errorf("store: entry %s: unsupported version %d", fp, e.Version)
	}
	if e.Fingerprint != fp {
		return nil, fmt.Errorf("store: entry %s: fingerprint mismatch (%s)", fp, e.Fingerprint)
	}
	sum, err := payloadChecksum(e.Payload)
	if err != nil {
		return nil, fmt.Errorf("store: entry %s: %w", fp, err)
	}
	if sum != e.Checksum {
		return nil, fmt.Errorf("store: entry %s: checksum mismatch", fp)
	}
	ch, err := core.ReadCharacterizationJSON(bytes.NewReader(e.Payload))
	if err != nil {
		return nil, fmt.Errorf("store: entry %s: %w", fp, err)
	}
	return ch, nil
}

// payloadChecksum hashes the payload in its compacted (canonical)
// form, so the checksum survives the whitespace re-flow the envelope
// encoder applies to nested raw JSON.
func payloadChecksum(payload []byte) (string, error) {
	var compact bytes.Buffer
	if err := json.Compact(&compact, payload); err != nil {
		return "", err
	}
	sum := sha256.Sum256(compact.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// put writes one entry atomically (temp file + rename) and runs GC.
// Write failures are dropped: the store is a cache, and a session
// that could not persist its tables still evaluated correctly.
func (s *Store) put(fp string, payload []byte) {
	sum, err := payloadChecksum(payload)
	if err != nil {
		return // non-JSON payloads cannot be stored
	}
	e := entry{
		Format:      entryFormat,
		Version:     entryVersion,
		Fingerprint: fp,
		Checksum:    sum,
		Payload:     json.RawMessage(payload),
	}
	raw, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return
	}
	raw = append(raw, '\n')
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(raw); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, fp+entryExt)); err != nil {
		_ = os.Remove(tmp.Name())
		return
	}
	s.addStat(func(st *Stats) {
		st.Puts++
		st.BytesWritten += int64(len(raw))
	})
	s.gc(fp)
}

// gc evicts oldest entries (mtime ascending, name ascending on ties —
// a fully deterministic order) until the store fits maxBytes. The
// entry named keep — the one just written — is never evicted, so a
// put always survives its own GC pass.
func (s *Store) gc(keep string) {
	if s.maxBytes <= 0 {
		return
	}
	type ent struct {
		name  string
		size  int64
		mtime int64
	}
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	var ents []ent
	var total int64
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, entryExt) || strings.HasPrefix(name, tmpPrefix) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		ents = append(ents, ent{name: name, size: info.Size(), mtime: info.ModTime().UnixNano()})
		total += info.Size()
	}
	if total <= s.maxBytes {
		return
	}
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].mtime != ents[j].mtime {
			return ents[i].mtime < ents[j].mtime
		}
		return ents[i].name < ents[j].name
	})
	for _, e := range ents {
		if total <= s.maxBytes {
			break
		}
		if e.name == keep+entryExt {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, e.name)); err != nil {
			continue
		}
		total -= e.size
		s.addStat(func(st *Stats) { st.Evictions++ })
	}
}

// quarantine moves a bad entry aside (removing it if the move fails)
// so it never shadows a recomputation, while staying available for
// inspection.
func (s *Store) quarantine(path string) {
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if err := os.Rename(path, filepath.Join(qdir, filepath.Base(path))); err != nil {
			_ = os.Remove(path)
		}
	} else {
		_ = os.Remove(path)
	}
	s.addStat(func(st *Stats) { st.Quarantined++ })
}

func (s *Store) addStat(f func(*Stats)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(&s.stats)
}

// Snapshot exposes the store as a telemetry probe on LevelStore:
// lookups served land in the read class, write-backs in the write
// class, and the cache-behaviour counters (hits split by source,
// misses, evictions, quarantined entries) ride in Aux.
func (s *Store) Snapshot() telemetry.Snapshot {
	st := s.Stats()
	return telemetry.Snapshot{
		Component: "char-store",
		Level:     telemetry.LevelStore,
		Units:     1,
		Counters: telemetry.Counters{
			Read:  telemetry.OpCounters{Ops: st.Hits, Bytes: st.BytesRead},
			Write: telemetry.OpCounters{Ops: st.Puts, Bytes: st.BytesWritten},
			Aux: map[string]int64{
				"hits":        st.Hits,
				"mem_hits":    st.MemHits,
				"misses":      st.Misses,
				"puts":        st.Puts,
				"evictions":   st.Evictions,
				"quarantined": st.Quarantined,
			},
		},
	}
}
