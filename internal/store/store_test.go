package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/nfs"
	"ioeval/internal/telemetry"
)

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
	gb = int64(1) << 30
)

// tinyCluster is a minimal platform whose characterization runs in
// milliseconds.
func tinyCluster() *cluster.Cluster {
	return cluster.New(cluster.Config{
		Name:         "store-test",
		ComputeNodes: 2,
		NodeRAM:      256 * mb,
		NodeDiskCap:  10 * gb,
		NodeDiskRate: 90e6,
		IONodeRAM:    256 * mb,
		IODiskCap:    20 * gb,
		IODiskRate:   100e6,
		Org:          cluster.JBOD,
		StripeUnit:   256 * kb,
		RAID5Disks:   5,
		NFSServer:    nfs.DefaultServerParams("store-test-nfs"),
		NFSClient:    nfs.DefaultClientParams("store-test-nfs"),
	})
}

// quickChar keeps the characterization phase minimal.
func quickChar() core.CharacterizeConfig {
	return core.CharacterizeConfig{
		FSBlockSizes:   []int64{64 * kb, mb},
		FSModes:        []bench.Mode{bench.SeqWrite, bench.SeqRead},
		LocalFileSize:  64 * mb,
		GlobalFileSize: 64 * mb,
		LibProcs:       2,
		LibBlockSizes:  []int64{4 * mb},
		LibTransfer:    256 * kb,
		LibFileSize:    16 * mb,
		RandomOps:      128,
	}
}

// testChar computes one real characterization (and its content
// fingerprint) once per test process; every test that needs a payload
// shares it.
var (
	charOnce sync.Once
	charFP   string
	charVal  *core.Characterization
	charErr  error
)

func testChar(t *testing.T) (string, *core.Characterization) {
	t.Helper()
	charOnce.Do(func() {
		charFP, charErr = core.Fingerprint(tinyCluster, quickChar())
		if charErr != nil {
			return
		}
		sess := core.NewSession(tinyCluster, core.WithCharacterizeConfig(quickChar()))
		charVal, charErr = sess.Characterization()
	})
	if charErr != nil {
		t.Fatalf("shared characterization: %v", charErr)
	}
	return charFP, charVal
}

// charBytes is the canonical persisted form of a characterization.
func charBytes(t *testing.T, ch *core.Characterization) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ch.WriteJSON(&buf); err != nil {
		t.Fatalf("encode characterization: %v", err)
	}
	return buf.Bytes()
}

func open(t *testing.T, dir string, opts ...Option) *Store {
	t.Helper()
	s, err := Open(dir, opts...)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return s
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") must fail")
	}
}

func TestInvalidFingerprintRejected(t *testing.T) {
	s := open(t, t.TempDir())
	if _, err := s.GetOrCompute("../escape", nil); err == nil {
		t.Fatal("non-hex fingerprint must be rejected")
	}
	if _, err := s.GetOrCompute("", nil); err == nil {
		t.Fatal("empty fingerprint must be rejected")
	}
	if _, ok := s.Get("zz"); ok {
		t.Fatal("Get with invalid fingerprint must miss")
	}
}

func TestOpenSweepsTmpFiles(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, tmpPrefix+"crashed")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	open(t, dir)
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("leftover temp file survived Open: %v", err)
	}
}

// TestColdThenWarm pins the store's central contract: the cold call
// computes once, persists, and returns the round-tripped tables; a
// fresh store on the same directory serves the identical bytes from
// disk without computing.
func TestColdThenWarm(t *testing.T) {
	fp, ch := testChar(t)
	dir := t.TempDir()

	cold := open(t, dir)
	var computes atomic.Int64
	got, err := cold.GetOrCompute(fp, func() (*core.Characterization, error) {
		computes.Add(1)
		return ch, nil
	})
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if computes.Load() != 1 {
		t.Fatalf("cold computes = %d, want 1", computes.Load())
	}
	if st := cold.Stats(); st.Misses != 1 || st.Puts != 1 || st.Hits != 0 {
		t.Fatalf("cold stats = %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, fp+entryExt)); err != nil {
		t.Fatalf("entry file missing after put: %v", err)
	}

	warm := open(t, dir)
	wgot, err := warm.GetOrCompute(fp, func() (*core.Characterization, error) {
		t.Fatal("warm store must not compute")
		return nil, nil
	})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if st := warm.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("warm stats = %+v", st)
	}
	// Byte identity: cold (round-tripped) and warm (loaded) encode the
	// same persisted form.
	if !bytes.Equal(charBytes(t, got), charBytes(t, wgot)) {
		t.Fatal("cold and warm characterizations differ")
	}

	// Second lookup on the same store is a memo hit, not a disk read.
	if _, err := warm.GetOrCompute(fp, nil); err != nil {
		t.Fatalf("memo: %v", err)
	}
	if st := warm.Stats(); st.MemHits != 1 || st.Hits != 1 {
		t.Fatalf("memo stats = %+v", st)
	}
}

// TestGetNeverComputes pins Get's read-only contract.
func TestGetNeverComputes(t *testing.T) {
	fp, ch := testChar(t)
	dir := t.TempDir()
	s := open(t, dir)
	if _, ok := s.Get(fp); ok {
		t.Fatal("Get on an empty store must miss")
	}
	if _, err := s.GetOrCompute(fp, func() (*core.Characterization, error) { return ch, nil }); err != nil {
		t.Fatal(err)
	}
	warm := open(t, dir)
	got, ok := warm.Get(fp)
	if !ok || got == nil {
		t.Fatal("Get after a put must hit")
	}
}

// TestSingleFlight hammers one fingerprint from many goroutines: the
// compute must run exactly once and every caller must observe the same
// result (run with -race).
func TestSingleFlight(t *testing.T) {
	fp, ch := testChar(t)
	s := open(t, t.TempDir())

	var computes atomic.Int64
	const callers = 16
	results := make([]*core.Characterization, callers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			got, err := s.GetOrCompute(fp, func() (*core.Characterization, error) {
				computes.Add(1)
				return ch, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = got
		}(i)
	}
	close(start)
	wg.Wait()
	if computes.Load() != 1 {
		t.Fatalf("computes = %d, want 1 (single-flight)", computes.Load())
	}
	for i, got := range results {
		if got != results[0] {
			t.Fatalf("caller %d saw a different characterization pointer", i)
		}
	}
	st := s.Stats()
	if st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFailedComputeRetryable: a compute error must not poison the memo.
func TestFailedComputeRetryable(t *testing.T) {
	fp, ch := testChar(t)
	s := open(t, t.TempDir())
	boom := func() (*core.Characterization, error) { return nil, os.ErrPermission }
	if _, err := s.GetOrCompute(fp, boom); err == nil {
		t.Fatal("compute error must surface")
	}
	got, err := s.GetOrCompute(fp, func() (*core.Characterization, error) { return ch, nil })
	if err != nil || got == nil {
		t.Fatalf("retry after failed compute: %v", err)
	}
}

// TestCorruptEntriesQuarantined covers every on-disk failure mode: the
// damaged entry must read as a miss, move to quarantine/, and be
// transparently recomputed and re-persisted.
func TestCorruptEntriesQuarantined(t *testing.T) {
	fp, ch := testChar(t)
	damage := map[string]func(t *testing.T, path string){
		"truncated": func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"bit-flip": func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Flip a byte inside the payload body, past the envelope keys.
			i := bytes.Index(raw, []byte(`"payload"`)) + 64
			raw[i] ^= 0xff
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"not-json": func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"wrong-version": func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw = bytes.Replace(raw, []byte(`"version": 1`), []byte(`"version": 99`), 1)
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"empty": func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, corrupt := range damage {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir)
			if _, err := s.GetOrCompute(fp, func() (*core.Characterization, error) { return ch, nil }); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, fp+entryExt)
			corrupt(t, path)

			warm := open(t, dir)
			var computes atomic.Int64
			got, err := warm.GetOrCompute(fp, func() (*core.Characterization, error) {
				computes.Add(1)
				return ch, nil
			})
			if err != nil || got == nil {
				t.Fatalf("corrupt entry must never be fatal: %v", err)
			}
			if computes.Load() != 1 {
				t.Fatalf("computes = %d, want 1 (corrupt entry is a miss)", computes.Load())
			}
			st := warm.Stats()
			if st.Quarantined != 1 || st.Hits != 0 || st.Misses != 1 {
				t.Fatalf("stats = %+v", st)
			}
			if _, err := os.Stat(filepath.Join(dir, quarantineDir, fp+entryExt)); err != nil {
				t.Fatalf("damaged entry not quarantined: %v", err)
			}
			// The recompute re-persisted a good entry: the next store hits.
			again := open(t, dir)
			if _, ok := again.Get(fp); !ok {
				t.Fatal("entry not re-persisted after quarantine")
			}
		})
	}
}

// TestFingerprintMismatchQuarantined: an entry stored under the wrong
// name (e.g. a mis-copied store directory) must not be served.
func TestFingerprintMismatchQuarantined(t *testing.T) {
	fp, ch := testChar(t)
	dir := t.TempDir()
	s := open(t, dir)
	if _, err := s.GetOrCompute(fp, func() (*core.Characterization, error) { return ch, nil }); err != nil {
		t.Fatal(err)
	}
	other := strings.Repeat("ab", 32)
	if err := os.Rename(filepath.Join(dir, fp+entryExt), filepath.Join(dir, other+entryExt)); err != nil {
		t.Fatal(err)
	}
	warm := open(t, dir)
	if _, ok := warm.Get(other); ok {
		t.Fatal("entry with mismatched fingerprint must miss")
	}
	if st := warm.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestGCDeterministic drives the size-bounded GC through put directly:
// eviction order is mtime-ascending with name-ascending tie-break, and
// the just-written entry always survives.
func TestGCDeterministic(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(`"` + strings.Repeat("x", 1000) + `"`)
	// Entry overhead (envelope + checksum) is ~200 bytes; three entries
	// land around 3.6 KB, so a 2.6 KB budget keeps exactly two.
	s := open(t, dir, WithMaxBytes(2600))

	names := []string{"aa11", "bb22", "cc33"}
	s.put(names[0], payload)
	s.put(names[1], payload)
	// Age both below any later write; equal mtimes force the name
	// tie-break.
	old := time.Unix(1_000_000_000, 0)
	for _, n := range names[:2] {
		if err := os.Chtimes(filepath.Join(dir, n+entryExt), old, old); err != nil {
			t.Fatal(err)
		}
	}
	s.put(names[2], payload)

	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if _, err := os.Stat(filepath.Join(dir, "aa11"+entryExt)); !os.IsNotExist(err) {
		t.Fatal("aa11 (oldest mtime, smallest name) must be evicted first")
	}
	for _, keep := range []string{"bb22", "cc33"} {
		if _, err := os.Stat(filepath.Join(dir, keep+entryExt)); err != nil {
			t.Fatalf("%s must survive: %v", keep, err)
		}
	}
}

// TestGCNeverEvictsJustWritten: even a budget smaller than one entry
// must keep the entry just written.
func TestGCNeverEvictsJustWritten(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, WithMaxBytes(10))
	s.put("dd44", []byte(`"`+strings.Repeat("y", 500)+`"`))
	if _, err := os.Stat(filepath.Join(dir, "dd44"+entryExt)); err != nil {
		t.Fatalf("just-written entry evicted by its own GC pass: %v", err)
	}
}

// TestSnapshotProbe pins the telemetry mapping.
func TestSnapshotProbe(t *testing.T) {
	fp, ch := testChar(t)
	dir := t.TempDir()
	s := open(t, dir)
	if _, err := s.GetOrCompute(fp, func() (*core.Characterization, error) { return ch, nil }); err != nil {
		t.Fatal(err)
	}
	warm := open(t, dir)
	if _, err := warm.GetOrCompute(fp, nil); err != nil {
		t.Fatal(err)
	}
	snap := warm.Snapshot()
	if snap.Component != "char-store" || snap.Level != telemetry.LevelStore {
		t.Fatalf("snapshot identity = %+v", snap)
	}
	if snap.Counters.Read.Ops != 1 || snap.Counters.Read.Bytes == 0 {
		t.Fatalf("read counters = %+v", snap.Counters.Read)
	}
	aux := snap.Counters.Aux
	if aux["hits"] != 1 || aux["misses"] != 0 || aux["quarantined"] != 0 {
		t.Fatalf("aux = %v", aux)
	}
}
