package sweep

import (
	"fmt"

	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/fault"
	"ioeval/internal/mpiio"
	"ioeval/internal/workload"
	"ioeval/internal/workload/synth"
)

// Grid is the cross-product a sweep evaluates: every configuration ×
// every workload. Configs may come from a GridSpec expansion, from
// hand-built entries with custom Build functions, or both.
type Grid struct {
	Configs []Config
	Apps    []AppSpec
}

// GridSpec declares a sweep grid along the methodology's
// configuration-analysis axes: base platforms, device organizations
// on the I/O node, and parallel-filesystem I/O-node counts. The
// expansion is the full cross-product.
type GridSpec struct {
	// Platforms are the base cluster configurations (the platform
	// axis). Each must have a unique Name.
	Platforms []cluster.Config
	// Orgs is the device-organization axis; empty keeps each
	// platform's own organization.
	Orgs []cluster.Organization
	// PFSIONodes is the I/O-node-count axis: 0 evaluates the
	// platform's NFS path, n > 0 deploys a PVFS-like parallel FS over
	// n dedicated I/O nodes and characterizes/evaluates against it.
	// Empty keeps each platform's own setting.
	PFSIONodes []int
	// Char parameterizes characterization for every expanded config
	// (UsePFS is set per cell from the I/O-node axis).
	Char core.CharacterizeConfig
	// Scenarios is the fault-scenario axis: each plan adds a degraded
	// variant of every cell, evaluated under the plan against the
	// healthy cell's characterization (shared automatically — both
	// cells fingerprint identically). An
	// empty (zero) plan in the list stands for the healthy run; when
	// the list omits it, the healthy cell is still emitted first.
	// Plans that require redundancy (disk failures) are skipped on
	// JBOD configurations, where no degraded mode exists.
	Scenarios []fault.Plan
	// Apps is the workload axis.
	Apps []AppSpec
	// Specs extends the workload axis with declarative synthetic
	// workloads (internal/workload/synth): each spec becomes one cell
	// column, compiled freshly per evaluation. An invalid spec fails
	// its cells with the compiler's structured error rather than
	// aborting grid expansion.
	Specs []*synth.Spec
}

// specApp adapts one synthetic spec to the workload axis, deferring
// compilation to evaluation time (cells run concurrently; Compile is
// cheap and yields an independent App per call).
type specApp struct{ spec *synth.Spec }

func (a specApp) Name() string {
	if a.spec.Name != "" {
		return a.spec.Name
	}
	return "synthetic"
}

func (a specApp) Procs() int { return a.spec.Procs }

func (a specApp) Run(c *cluster.Cluster, tr mpiio.Tracer) (workload.Result, error) {
	app, err := synth.Compile(a.spec)
	if err != nil {
		return workload.Result{}, err
	}
	return app.Run(c, tr)
}

// Grid expands the spec into the explicit configuration × workload
// grid. Config names are "<platform>/<org>" plus "/pfs-<n>" on
// parallel-FS cells, so rankings read as the paper's configuration
// labels.
func (s GridSpec) Grid() Grid {
	g := Grid{Apps: append([]AppSpec(nil), s.Apps...)}
	for _, sp := range s.Specs {
		app := specApp{spec: sp}
		g.Apps = append(g.Apps, AppSpec{
			Name: app.Name(),
			New:  func() workload.App { return app },
		})
	}
	for _, base := range s.Platforms {
		orgs := s.Orgs
		if len(orgs) == 0 {
			orgs = []cluster.Organization{base.Org}
		}
		ioNodes := s.PFSIONodes
		if len(ioNodes) == 0 {
			ioNodes = []int{base.PFSIONodes}
		}
		for _, org := range orgs {
			for _, n := range ioNodes {
				cfg := base
				cfg.Org = org
				cfg.PFSIONodes = n
				name := fmt.Sprintf("%s/%s", cfg.Name, org)
				if n > 0 {
					name = fmt.Sprintf("%s/pfs-%d", name, n)
				}
				char := s.Char
				char.UsePFS = n > 0
				build := func() *cluster.Cluster { return cluster.New(cfg) }
				healthy := Config{
					Name:  name,
					Build: build,
					Char:  char,
				}
				g.Configs = append(g.Configs, healthy)
				for _, sc := range s.Scenarios {
					if sc.Empty() {
						continue // the healthy cell above covers it
					}
					if sc.RequiresRedundancy() && org == cluster.JBOD {
						continue // no degraded mode to evaluate
					}
					sc := sc
					// Scenario cells share the healthy cell's characterization
					// automatically: the fault plan is evaluation-side, so both
					// cells carry the same content fingerprint.
					g.Configs = append(g.Configs, Config{
						Name:  fmt.Sprintf("%s/%s", name, sc.Name),
						Build: build,
						Char:  char,
						Fault: &sc,
					})
				}
			}
		}
	}
	return g
}
