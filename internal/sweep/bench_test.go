package sweep

import (
	"runtime"
	"testing"

	"ioeval/internal/core"
)

// The acceptance benches: the engine must beat a sequential per-cell
// baseline. The win has two parts — one characterization per unique
// configuration instead of one per (configuration, workload) cell,
// and worker-pool fan-out across cells on multicore hosts.

// BenchmarkSweepSequentialBaseline reproduces the pre-engine loop:
// every cell characterizes its own configuration and evaluates, one
// cell at a time, nothing shared.
func BenchmarkSweepSequentialBaseline(b *testing.B) {
	grid := testGrid()
	for i := 0; i < b.N; i++ {
		for _, cfg := range grid.Configs {
			for _, app := range grid.Apps {
				sess := core.NewSession(cfg.Build, core.WithCharacterizeConfig(cfg.Char))
				if _, err := sess.Evaluate(app.New()); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func benchEngine(b *testing.B, workers int) {
	grid := testGrid()
	for i := 0; i < b.N; i++ {
		eng := NewEngine(workers) // fresh engine: cold caches every iteration
		if _, err := eng.Run(grid, ByIOTime); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepEngine1Worker isolates the characterization-sharing
// win (no parallelism).
func BenchmarkSweepEngine1Worker(b *testing.B) { benchEngine(b, 1) }

// BenchmarkSweepEngineParallel adds worker fan-out on top.
func BenchmarkSweepEngineParallel(b *testing.B) {
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	benchEngine(b, 0)
}
