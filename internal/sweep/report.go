package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"ioeval/internal/core"
	"ioeval/internal/sim"
	"ioeval/internal/stats"
	"ioeval/internal/telemetry"
)

// Metric selects the ranking order of a sweep report.
type Metric int

// Ranking metrics. I/O time ranks ascending (fastest configuration
// first); used-% and transfer rate rank descending (the configuration
// the application exploits hardest / moves the most bytes through
// first). Ties break on config name, then app name, so reports are
// deterministic.
const (
	ByIOTime Metric = iota
	ByUsedPct
	ByThroughput
)

func (m Metric) String() string {
	switch m {
	case ByIOTime:
		return "io-time"
	case ByUsedPct:
		return "used-pct"
	case ByThroughput:
		return "throughput"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// ParseMetric parses a ranking-metric name as printed by String.
func ParseMetric(s string) (Metric, error) {
	for _, m := range []Metric{ByIOTime, ByUsedPct, ByThroughput} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("sweep: unknown ranking metric %q", s)
}

// LevelSummary aggregates one telemetry level's component snapshots
// over a cell's run: how many components sit on the level and the
// ops, bytes and busy time they accumulated.
type LevelSummary struct {
	Level      telemetry.Level `json:"level"`
	Components int             `json:"components"`
	Ops        int64           `json:"ops"`
	Bytes      int64           `json:"bytes"`
	Busy       sim.Duration    `json:"busy_ns"`
}

// Cell is one evaluated (configuration, workload) pair of a sweep.
type Cell struct {
	Config string `json:"config"`
	App    string `json:"app"`
	// Scenario names the fault plan the cell ran under ("" = healthy).
	Scenario string `json:"scenario,omitempty"`

	ExecTime   sim.Duration `json:"exec_time_ns"`
	IOTime     sim.Duration `json:"io_time_ns"`
	IOPct      float64      `json:"io_pct"` // I/O time as % of execution
	Throughput float64      `json:"throughput_bps"`
	UsedPct    float64      `json:"used_pct"` // max used-% over characterized levels

	// Levels carries the per-level measured-vs-characterized rows the
	// evaluation produced (the Fig. 10 used-% inputs).
	Levels []telemetry.LevelRate `json:"levels,omitempty"`
	// Path is the cell's span-side report: per-request time-in-level
	// attribution, the slowest-level verdict and its agreement with the
	// used-% inference, and the conservation check.
	Path *core.PathReport `json:"path,omitempty"`
	// Telemetry summarizes the cell's per-component registry snapshots
	// by I/O-path level.
	Telemetry []LevelSummary `json:"telemetry,omitempty"`

	// Eval is the full evaluation behind the cell (omitted from JSON;
	// the summary fields above are the exported view).
	Eval *core.Evaluation `json:"-"`
}

func newCell(config, app string, ev *core.Evaluation) *Cell {
	res := ev.Result()
	c := &Cell{
		Config:     config,
		App:        app,
		Scenario:   ev.Scenario(),
		ExecTime:   res.ExecTime,
		IOTime:     res.IOTime,
		Throughput: res.Throughput(),
		Eval:       ev,
	}
	if res.ExecTime > 0 {
		c.IOPct = 100 * float64(res.IOTime) / float64(res.ExecTime)
	}
	for _, u := range ev.Used() {
		if !u.CharAvailable {
			continue
		}
		if u.UsedPct > c.UsedPct {
			c.UsedPct = u.UsedPct
		}
	}
	c.Levels = ev.TelemetryReport().Levels
	pr := ev.PathReport()
	c.Path = &pr
	c.Telemetry = summarizeByLevel(ev.Components())
	return c
}

// summarizeByLevel folds component snapshots into per-level totals,
// in fixed level order so output is deterministic.
func summarizeByLevel(snaps []telemetry.Snapshot) []LevelSummary {
	if len(snaps) == 0 {
		return nil
	}
	byLevel := telemetry.ByLevel(snaps)
	var out []LevelSummary
	for _, level := range []telemetry.Level{
		telemetry.LevelLibrary, telemetry.LevelGlobalFS, telemetry.LevelLocalFS,
		telemetry.LevelCache, telemetry.LevelBlock, telemetry.LevelDevice,
		telemetry.LevelNetwork, telemetry.LevelFault, telemetry.LevelStore,
	} {
		group := byLevel[level]
		if len(group) == 0 {
			continue
		}
		s := LevelSummary{Level: level, Components: len(group)}
		for _, snap := range group {
			s.Ops += snap.Counters.TotalOps()
			s.Bytes += snap.Counters.TotalBytes()
			s.Busy += snap.Counters.TotalBusy()
		}
		out = append(out, s)
	}
	return out
}

// BestPick is the recommended configuration for one application.
type BestPick struct {
	App    string `json:"app"`
	Config string `json:"config"`
}

// ReportFormat and ReportVersion are the sweep report's versioned
// envelope, stamped by WriteJSON and checked by ReadReportJSON.
const (
	ReportFormat  = "ioeval-sweep-report"
	ReportVersion = 1
)

// Report is the deterministic, ranked outcome of one sweep.
type Report struct {
	Format   string     `json:"format,omitempty"`
	Version  int        `json:"version,omitempty"`
	Configs  []string   `json:"configs"` // grid order
	Apps     []string   `json:"apps"`    // grid order
	RankedBy string     `json:"ranked_by"`
	Cells    []*Cell    `json:"cells"` // ranked best-first
	Best     []BestPick `json:"best"`  // per app, app-name order
}

func newReport(grid Grid, rank Metric, cells []*Cell) *Report {
	r := &Report{RankedBy: rank.String(), Cells: cells}
	for _, cfg := range grid.Configs {
		r.Configs = append(r.Configs, cfg.Name)
	}
	for _, app := range grid.Apps {
		r.Apps = append(r.Apps, app.Name)
	}
	sort.SliceStable(r.Cells, func(i, j int) bool { return cellLess(rank, r.Cells[i], r.Cells[j]) })

	bestByApp := map[string]string{}
	for _, c := range r.Cells { // ranked order: first hit per app wins
		if _, ok := bestByApp[c.App]; !ok {
			bestByApp[c.App] = c.Config
		}
	}
	// Emit per-app picks by iterating the grid's app list sorted —
	// never the map — so Best ordering is deterministic by
	// construction, not by a post-hoc sort of map keys.
	apps := append([]string(nil), r.Apps...)
	sort.Strings(apps)
	for _, app := range apps {
		if len(r.Best) > 0 && r.Best[len(r.Best)-1].App == app {
			continue // duplicate app name in the grid
		}
		if cfg, ok := bestByApp[app]; ok {
			r.Best = append(r.Best, BestPick{App: app, Config: cfg})
		}
	}
	return r
}

func cellLess(rank Metric, a, b *Cell) bool {
	switch rank {
	case ByUsedPct:
		if a.UsedPct != b.UsedPct {
			return a.UsedPct > b.UsedPct
		}
	case ByThroughput:
		if a.Throughput != b.Throughput {
			return a.Throughput > b.Throughput
		}
	default:
		if a.IOTime != b.IOTime {
			return a.IOTime < b.IOTime
		}
	}
	if a.Config != b.Config {
		return a.Config < b.Config
	}
	return a.App < b.App
}

// String renders the ranked report as a table plus the per-application
// recommendation.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sweep report — %d configurations × %d workloads, ranked by %s\n",
		len(r.Configs), len(r.Apps), r.RankedBy)
	var tb stats.Table
	tb.AddRow("rank", "config", "app", "exec time", "I/O time", "I/O %", "throughput", "used%")
	for i, c := range r.Cells {
		tb.AddRow(fmt.Sprint(i+1), c.Config, c.App,
			fmt.Sprintf("%.2f s", c.ExecTime.Seconds()),
			fmt.Sprintf("%.2f s", c.IOTime.Seconds()),
			fmt.Sprintf("%.1f", c.IOPct),
			stats.MBs(c.Throughput),
			fmt.Sprintf("%.1f", c.UsedPct))
	}
	b.WriteString(tb.String())
	b.WriteString("Best configuration per application:\n")
	for _, p := range r.Best {
		fmt.Fprintf(&b, "  %-20s -> %s\n", p.App, p.Config)
	}
	return b.String()
}

// WriteJSON writes the report as indented JSON under the versioned
// envelope.
func (r *Report) WriteJSON(w io.Writer) error {
	out := *r
	out.Format = ReportFormat
	out.Version = ReportVersion
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&out); err != nil {
		return fmt.Errorf("sweep: encode report: %w", err)
	}
	return nil
}

// ReadReportJSON parses a report written by WriteJSON, rejecting
// documents whose envelope names another format or version.
func ReadReportJSON(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("sweep: decode report: %w", err)
	}
	if r.Format != ReportFormat {
		return nil, fmt.Errorf("sweep: unexpected format %q", r.Format)
	}
	if r.Version != ReportVersion {
		return nil, fmt.Errorf("sweep: unsupported version %d", r.Version)
	}
	return &r, nil
}

// WriteFile writes the report to path as JSON.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		_ = f.Close() // the encode error takes precedence
		return err
	}
	return f.Close()
}
