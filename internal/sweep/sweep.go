// Package sweep is a concurrent configuration-sweep engine for the
// paper's three-phase methodology: it takes a declarative grid of
// candidate I/O configurations (platform × device organization ×
// I/O-node count, plus user-supplied Build functions) and a set of
// workloads, evaluates every (configuration, workload) cell on a
// bounded worker pool, and aggregates the results deterministically
// into a ranked report — the Phase 2/3 "what-if" loop of the
// methodology, scaled out.
//
// Characterization (the expensive, per-configuration phase) is
// memoized per content fingerprint (core.Fingerprint — a hash of the
// cluster configuration plus normalized characterization parameters)
// with single-flight semantics: distinct configurations characterize
// in parallel, identical ones — even under different grid names —
// are characterized exactly once no matter how many workloads are
// evaluated against them. Evaluations are memoized the same way, so
// table/figure generators sharing an Engine (see internal/experiments)
// pay for each cell once per process. With a persistent store attached
// (SetStore), characterizations additionally survive the process: a
// warm re-run of a grid performs zero characterizations.
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/fault"
	"ioeval/internal/telemetry"
	"ioeval/internal/workload"
)

// Config is one candidate I/O configuration of a sweep.
type Config struct {
	// Name identifies the configuration in reports; it must be unique
	// within a grid (it is the ranking tie-break key).
	Name string
	// Build returns a fresh cluster of this configuration. It must be
	// safe to call from multiple goroutines (each call builds an
	// independent simulation).
	Build func() *cluster.Cluster
	// Char parameterizes the characterization phase.
	Char core.CharacterizeConfig
	// Fault, when non-nil, arms the plan on the evaluation cluster: the
	// cell measures the configuration under failure, against the
	// healthy characterization. Scenario cells share the healthy cell's
	// characterization automatically — the fault plan is evaluation-side
	// and not part of the content fingerprint.
	Fault *fault.Plan
}

// AppSpec is one workload of a sweep. New must return a fresh App per
// call: evaluations run concurrently and an App instance must not be
// shared across cells.
type AppSpec struct {
	Name string
	New  func() workload.App
}

// Engine evaluates sweep cells on a bounded worker pool, sharing
// memoized characterizations and evaluations across calls.
type Engine struct {
	workers int
	store   core.CharStore
	// charPool bounds concurrent characterization measurement units
	// engine-wide: cells share one pool instead of nesting a pool per
	// characterization, so total simulation concurrency stays bounded
	// by it no matter how many cells characterize at once. Safe — cell
	// workers hold no pool token while waiting on a characterization.
	charPool *core.CharPool

	mu    sync.Mutex
	fps   map[string]*fpEntry
	chars map[string]*charEntry
	evals map[string]*evalEntry

	nChar    atomic.Int64
	nCharHit atomic.Int64
	nEval    atomic.Int64
	nEvalHit atomic.Int64
}

type fpEntry struct {
	once sync.Once
	fp   string
	err  error
}

type charEntry struct {
	once sync.Once
	ch   *core.Characterization
	err  error
}

type evalEntry struct {
	once sync.Once
	ev   *core.Evaluation
	err  error
}

// NewEngine returns an engine with the given worker-pool size;
// workers <= 0 sizes the pool to runtime.GOMAXPROCS(0).
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		workers:  workers,
		charPool: core.NewCharPool(workers),
		fps:      map[string]*fpEntry{},
		chars:    map[string]*charEntry{},
		evals:    map[string]*evalEntry{},
	}
}

// Workers returns the worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// SetCharWorkers resizes the engine-wide characterization pool (the
// -char-workers CLI knob): n <= 0 sizes it to GOMAXPROCS, n == 1 makes
// every characterization sequential. Reports stay byte-identical at
// any size. Set it before the first Characterization/Run call.
func (e *Engine) SetCharWorkers(n int) { e.charPool = core.NewCharPool(n) }

// CharWorkers returns the characterization pool's concurrency bound.
func (e *Engine) CharWorkers() int { return e.charPool.Workers() }

// SetStore attaches a persistent characterization store: missing
// characterizations are looked up there before being measured and
// written back after. Set it before the first Characterization/Run
// call; a nil store keeps the engine purely in-memory.
func (e *Engine) SetStore(st core.CharStore) { e.store = st }

// fingerprintFor returns the memoized content fingerprint of cfg
// (single-flight per configuration name — computing one builds a
// probe cluster, so it is worth sharing across the config's cells).
func (e *Engine) fingerprintFor(cfg Config) (string, error) {
	ent := e.fpEntryFor(cfg.Name)
	ent.once.Do(func() {
		ent.fp, ent.err = core.Fingerprint(cfg.Build, cfg.Char)
	})
	return ent.fp, ent.err
}

// fpEntryFor returns (creating if needed) the fingerprint entry for
// one configuration name, under the same locking discipline as
// charEntryFor.
func (e *Engine) fpEntryFor(name string) *fpEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	ent, ok := e.fps[name]
	if !ok {
		ent = &fpEntry{}
		e.fps[name] = ent
	}
	return ent
}

// charEntryFor returns (creating if needed) the single-flight entry
// for one characterization fingerprint. The lock scopes exactly this
// map access — the expensive work runs outside it, on the entry's
// sync.Once.
func (e *Engine) charEntryFor(fingerprint string) *charEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	ent, ok := e.chars[fingerprint]
	if !ok {
		ent = &charEntry{}
		e.chars[fingerprint] = ent
	}
	return ent
}

// evalEntryFor returns (creating if needed) the single-flight entry
// for one (config, app) cell key, under the same locking discipline
// as charEntryFor.
func (e *Engine) evalEntryFor(key string) *evalEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	ent, ok := e.evals[key]
	if !ok {
		ent = &evalEntry{}
		e.evals[key] = ent
	}
	return ent
}

// Characterization returns the memoized characterization of cfg.
// Single-flight per content fingerprint: concurrent callers whose
// configs would measure identical tables block on one computation;
// distinct fingerprints proceed in parallel (the engine holds no lock
// across the measurement). With a store attached, the measurement is
// replaced by a store lookup when the entry exists — only actual
// measurements count toward the "characterizations" counter.
func (e *Engine) Characterization(cfg Config) (*core.Characterization, error) {
	if cfg.Build == nil {
		return nil, fmt.Errorf("sweep: config %q needs a Build function", cfg.Name)
	}
	fp, err := e.fingerprintFor(cfg)
	if err != nil {
		return nil, fmt.Errorf("sweep: fingerprint %s: %w", cfg.Name, err)
	}
	ent := e.charEntryFor(fp)
	hit := true
	ent.once.Do(func() {
		hit = false
		compute := func() (*core.Characterization, error) {
			e.nChar.Add(1)
			sess := core.NewSession(cfg.Build,
				core.WithCharacterizeConfig(cfg.Char),
				core.WithCharacterizePool(e.charPool))
			return sess.Characterization()
		}
		if e.store != nil {
			ent.ch, ent.err = e.store.GetOrCompute(fp, compute)
			return
		}
		ent.ch, ent.err = compute()
	})
	if hit {
		e.nCharHit.Add(1)
	}
	if ent.err != nil {
		return nil, fmt.Errorf("sweep: characterize %s: %w", cfg.Name, ent.err)
	}
	return ent.ch, nil
}

// Evaluate returns the memoized evaluation of one (config, app) cell,
// characterizing the configuration first if no cached table set
// exists. Single-flight per cell key.
func (e *Engine) Evaluate(cfg Config, app AppSpec) (*core.Evaluation, error) {
	if app.New == nil {
		return nil, fmt.Errorf("sweep: app %q needs a New function", app.Name)
	}
	ent := e.evalEntryFor(cfg.Name + "\x00" + app.Name)
	hit := true
	ent.once.Do(func() {
		hit = false
		e.nEval.Add(1)
		ch, err := e.Characterization(cfg)
		if err != nil {
			ent.err = err
			return
		}
		opts := []core.SessionOption{core.WithCharacterization(ch)}
		if cfg.Fault != nil && !cfg.Fault.Empty() {
			opts = append(opts, core.WithFaultPlan(*cfg.Fault))
			sess := core.NewSession(cfg.Build, opts...)
			ent.ev, ent.err = sess.EvaluateScenario(app.New())
			return
		}
		sess := core.NewSession(cfg.Build, opts...)
		ent.ev, ent.err = sess.Evaluate(app.New())
	})
	if hit {
		e.nEvalHit.Add(1)
	}
	if ent.err != nil {
		return nil, fmt.Errorf("sweep: evaluate %s on %s: %w", app.Name, cfg.Name, ent.err)
	}
	return ent.ev, nil
}

var _ telemetry.Probe = (*Engine)(nil)

// Snapshot implements telemetry.Probe: the engine's own counters —
// characterizations and evaluations actually computed vs. served from
// cache — as auxiliary counters, so sweeps can assert (and reports can
// show) that each unique configuration was characterized exactly once.
func (e *Engine) Snapshot() telemetry.Snapshot {
	return telemetry.Snapshot{
		Component: "sweep-engine",
		Level:     telemetry.LevelLibrary,
		Units:     int64(e.workers),
		Counters: telemetry.Counters{
			Aux: map[string]int64{
				"characterizations": e.nChar.Load(),
				"char_cache_hits":   e.nCharHit.Load(),
				"evaluations":       e.nEval.Load(),
				"eval_cache_hits":   e.nEvalHit.Load(),
			},
		},
	}
}

// Run evaluates every (config, app) cell of the grid on the worker
// pool and aggregates the results into a ranked report. The report is
// deterministic: identical grids produce byte-identical reports
// regardless of worker count or completion order. Any cell failure
// fails the run with all cell errors joined.
func (e *Engine) Run(grid Grid, rank Metric) (*Report, error) {
	if len(grid.Configs) == 0 {
		return nil, errors.New("sweep: grid has no configurations")
	}
	if len(grid.Apps) == 0 {
		return nil, errors.New("sweep: grid has no workloads")
	}
	seen := map[string]bool{}
	for _, cfg := range grid.Configs {
		if seen[cfg.Name] {
			return nil, fmt.Errorf("sweep: duplicate configuration name %q", cfg.Name)
		}
		seen[cfg.Name] = true
	}

	nApps := len(grid.Apps)
	cells := make([]*Cell, len(grid.Configs)*nApps)
	errs := make([]error, len(cells))
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := e.workers
	if workers > len(cells) {
		workers = len(cells)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				cfg, app := grid.Configs[idx/nApps], grid.Apps[idx%nApps]
				ev, err := e.Evaluate(cfg, app)
				if err != nil {
					errs[idx] = err
					continue
				}
				cells[idx] = newCell(cfg.Name, app.Name, ev)
			}
		}()
	}
	for idx := range cells {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return newReport(grid, rank, cells), nil
}
