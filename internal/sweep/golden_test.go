package sweep

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ioeval/internal/cluster"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestSweepReportGolden pins the sweep report formats — ranked JSON
// document and rendered table — on a fixed four-configuration grid.
// Any diff is a real format or model change: inspect it, then rerun
// with -update to accept.
func TestSweepReportGolden(t *testing.T) {
	grid := GridSpec{
		Platforms:  []cluster.Config{tinyBase("golden", 2)},
		Orgs:       []cluster.Organization{cluster.JBOD, cluster.RAID5},
		PFSIONodes: []int{0, 2},
		Char:       quickChar(),
		Apps:       testApps(),
	}.Grid()
	rep, err := NewEngine(4).Run(grid, ByIOTime)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatalf("encode: %v", err)
	}
	compareGolden(t, filepath.Join("testdata", "sweep_report.golden.json"), js.Bytes())
	compareGolden(t, filepath.Join("testdata", "sweep_report.golden.txt"), []byte(rep.String()))
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden output; diff the file and rerun with -update if intended.\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}
