package sweep

import (
	"bytes"
	"strings"
	"testing"

	"ioeval/internal/cluster"
	"ioeval/internal/fault"
)

// scenarioGrid expands a spec with a fault-scenario axis: one
// platform, JBOD and RAID 5, three scenarios (the explicit healthy
// plan, a slow disk, and a disk failure).
func scenarioGrid(t *testing.T) Grid {
	t.Helper()
	slow, err := fault.Builtin("slow-disk")
	if err != nil {
		t.Fatal(err)
	}
	stall, err := fault.Builtin("nfs-stall")
	if err != nil {
		t.Fatal(err)
	}
	df, err := fault.Builtin("disk-fail")
	if err != nil {
		t.Fatal(err)
	}
	return GridSpec{
		Platforms: []cluster.Config{tinyBase("alpha", 2)},
		Orgs:      []cluster.Organization{cluster.JBOD, cluster.RAID5},
		Char:      quickChar(),
		Scenarios: []fault.Plan{{}, slow, stall, df},
		Apps:      testApps()[:1],
	}.Grid()
}

// TestScenarioGridExpansion pins the fault axis's expansion rules:
// the healthy cell always comes first, the zero plan adds nothing,
// scenario cells are named after their plan, and disk failures are
// skipped on JBOD.
func TestScenarioGridExpansion(t *testing.T) {
	grid := scenarioGrid(t)
	var names []string
	for _, c := range grid.Configs {
		names = append(names, c.Name)
	}
	want := []string{
		"alpha/JBOD",
		"alpha/JBOD/slow-disk",
		"alpha/JBOD/nfs-stall",
		"alpha/RAID5",
		"alpha/RAID5/slow-disk",
		"alpha/RAID5/nfs-stall",
		"alpha/RAID5/disk-fail",
	}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Fatalf("expanded configs = %v, want %v", names, want)
	}
	for _, c := range grid.Configs {
		if c.Fault == nil {
			continue
		}
		if !strings.HasSuffix(c.Name, "/"+c.Fault.Name) {
			t.Errorf("scenario cell name %q does not end in plan %q", c.Name, c.Fault.Name)
		}
	}
}

// TestScenarioSweepDeterminism runs the fault-axis grid on 1 and 8
// workers: reports must be byte-identical, scenario cells must reuse
// the healthy characterizations (2, not 7), and degraded cells must
// rank with their scenario recorded.
func TestScenarioSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep grid skipped in -short mode")
	}
	grid := scenarioGrid(t)

	type run struct {
		workers int
		json    []byte
		text    []byte
	}
	runs := []*run{{workers: 1}, {workers: 8}}
	for _, r := range runs {
		eng := NewEngine(r.workers)
		rep, err := eng.Run(grid, ByIOTime)
		if err != nil {
			t.Fatalf("run (%d workers): %v", r.workers, err)
		}
		r.json, r.text = reportBytes(t, rep)

		aux := eng.Snapshot().Counters.Aux
		if aux["characterizations"] != 2 {
			t.Errorf("%d workers: %d characterizations, want 2 (scenario cells share the healthy one)",
				r.workers, aux["characterizations"])
		}
		if aux["evaluations"] != int64(len(grid.Configs)) {
			t.Errorf("%d workers: %d evaluations, want %d",
				r.workers, aux["evaluations"], len(grid.Configs))
		}

		healthy := map[string]*Cell{}
		for _, cell := range rep.Cells {
			if cell.Scenario == "" {
				healthy[cell.Config] = cell
			}
		}
		if len(healthy) != 2 {
			t.Fatalf("%d workers: %d healthy cells, want 2", r.workers, len(healthy))
		}
		for _, cell := range rep.Cells {
			if cell.Scenario == "" {
				continue
			}
			base := strings.TrimSuffix(cell.Config, "/"+cell.Scenario)
			h, ok := healthy[base]
			if !ok {
				t.Fatalf("no healthy cell for %q", cell.Config)
			}
			if cell.IOTime < h.IOTime {
				t.Errorf("%q I/O time %v below healthy %v", cell.Config, cell.IOTime, h.IOTime)
			}
		}
	}
	if !bytes.Equal(runs[0].json, runs[1].json) {
		t.Errorf("JSON reports differ between 1 and 8 workers:\n--- 1 worker ---\n%s\n--- 8 workers ---\n%s",
			runs[0].json, runs[1].json)
	}
	if !bytes.Equal(runs[0].text, runs[1].text) {
		t.Errorf("text reports differ between 1 and 8 workers")
	}
}
