package sweep

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"ioeval/internal/cluster"
	"ioeval/internal/fault"
	"ioeval/internal/workload"
	"ioeval/internal/workload/btio"
	"ioeval/internal/workload/synth"
)

// synthGrid puts the same BT-IO workload on the grid twice — once
// hand-coded via Apps, once as a declarative spec via Specs — across
// two organizations and a degraded scenario, so the sweep itself
// becomes a differential harness.
func synthGrid(t *testing.T) (Grid, string) {
	t.Helper()
	slow, err := fault.Builtin("slow-disk")
	if err != nil {
		t.Fatal(err)
	}
	cfg := btio.Config{Class: quickClass, Procs: 4, Subtype: btio.Full}
	spec := synth.BTIOSpec(cfg)
	spec.Name = "btio-synth"
	grid := GridSpec{
		Platforms: []cluster.Config{tinyBase("alpha", 2)},
		Orgs:      []cluster.Organization{cluster.JBOD, cluster.RAID5},
		Char:      quickChar(),
		Scenarios: []fault.Plan{slow},
		Apps: []AppSpec{{Name: "btio-hand", New: func() workload.App {
			return btio.New(cfg)
		}}},
		Specs: []*synth.Spec{spec},
	}.Grid()
	return grid, spec.Name
}

// TestSynthSweepDeterminism is the sweep acceptance for the synthetic
// plane: a spec-driven cell runs end to end through the engine —
// healthy and under a fault scenario — with byte-identical reports on
// 1 and 8 workers, and produces exactly the hand-coded app's numbers
// in every cell it shares a configuration with.
func TestSynthSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep grid skipped in -short mode")
	}
	grid, synthName := synthGrid(t)
	if len(grid.Apps) != 2 {
		t.Fatalf("grid apps = %d, want 2 (hand + spec)", len(grid.Apps))
	}

	type run struct {
		workers int
		json    []byte
		text    []byte
	}
	runs := []*run{{workers: 1}, {workers: 8}}
	for _, r := range runs {
		eng := NewEngine(r.workers)
		rep, err := eng.Run(grid, ByIOTime)
		if err != nil {
			t.Fatalf("run (%d workers): %v", r.workers, err)
		}
		r.json, r.text = reportBytes(t, rep)

		// Differential: per configuration, the synthetic cell must be
		// indistinguishable from the hand-coded one.
		hand := map[string]*Cell{}
		for _, cell := range rep.Cells {
			if cell.App == "btio-hand" {
				hand[cell.Config] = cell
			}
		}
		nSynth := 0
		for _, cell := range rep.Cells {
			if cell.App != synthName {
				continue
			}
			nSynth++
			h, ok := hand[cell.Config]
			if !ok {
				t.Fatalf("%d workers: no hand cell for config %q", r.workers, cell.Config)
			}
			if cell.IOTime != h.IOTime || cell.ExecTime != h.ExecTime {
				t.Errorf("%d workers: %q synth (io %v, exec %v) != hand (io %v, exec %v)",
					r.workers, cell.Config, cell.IOTime, cell.ExecTime, h.IOTime, h.ExecTime)
			}
		}
		// 2 orgs × (healthy + slow-disk) = 4 synth cells, one of them degraded.
		if nSynth != 4 {
			t.Errorf("%d workers: %d synthetic cells, want 4", r.workers, nSynth)
		}
		degraded := 0
		for _, cell := range rep.Cells {
			if cell.App == synthName && cell.Scenario != "" {
				degraded++
				if !strings.HasSuffix(cell.Config, "/"+cell.Scenario) {
					t.Errorf("degraded synth cell %q lacks scenario suffix", cell.Config)
				}
			}
		}
		if degraded != 2 {
			t.Errorf("%d workers: %d degraded synthetic cells, want 2", r.workers, degraded)
		}
	}
	if !bytes.Equal(runs[0].json, runs[1].json) {
		t.Errorf("JSON reports differ between 1 and 8 workers:\n--- 1 worker ---\n%s\n--- 8 workers ---\n%s",
			runs[0].json, runs[1].json)
	}
	if !bytes.Equal(runs[0].text, runs[1].text) {
		t.Errorf("text reports differ between 1 and 8 workers")
	}
}

// TestSynthSweepInvalidSpec: an invalid spec must fail its cells with
// the compiler's structured error, not panic the expansion or the
// worker pool.
func TestSynthSweepInvalidSpec(t *testing.T) {
	bad := &synth.Spec{Name: "bad", Procs: 0}
	grid := GridSpec{
		Platforms: []cluster.Config{tinyBase("alpha", 2)},
		Char:      quickChar(),
		Specs:     []*synth.Spec{bad},
	}.Grid()
	if len(grid.Apps) != 1 {
		t.Fatalf("grid apps = %d, want 1", len(grid.Apps))
	}
	_, err := NewEngine(2).Run(grid, ByIOTime)
	if err == nil {
		t.Fatal("sweep accepted an invalid spec")
	}
	var se *synth.Error
	if !errors.As(err, &se) {
		t.Fatalf("error %v does not wrap the compiler's *synth.Error", err)
	}
}
