package sweep

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/nfs"
	"ioeval/internal/workload"
	"ioeval/internal/workload/btio"
	"ioeval/internal/workload/flashio"
)

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
	gb = int64(1) << 30
)

// tinyBase is a small platform whose characterization runs in
// milliseconds, so sweeps over many configurations stay cheap.
func tinyBase(name string, nodes int) cluster.Config {
	return cluster.Config{
		Name:         name,
		ComputeNodes: nodes,
		NodeRAM:      256 * mb,
		NodeDiskCap:  10 * gb,
		NodeDiskRate: 90e6,
		IONodeRAM:    256 * mb,
		IODiskCap:    20 * gb,
		IODiskRate:   100e6,
		Org:          cluster.JBOD,
		StripeUnit:   256 * kb,
		RAID5Disks:   5,
		NFSServer:    nfs.DefaultServerParams(name + "-nfs"),
		NFSClient:    nfs.DefaultClientParams(name + "-nfs"),
	}
}

// quickChar keeps the characterization phase minimal.
func quickChar() core.CharacterizeConfig {
	return core.CharacterizeConfig{
		FSBlockSizes:   []int64{64 * kb, mb},
		FSModes:        []bench.Mode{bench.SeqWrite, bench.SeqRead},
		LocalFileSize:  64 * mb,
		GlobalFileSize: 64 * mb,
		LibProcs:       2,
		LibBlockSizes:  []int64{4 * mb},
		LibTransfer:    256 * kb,
		LibFileSize:    16 * mb,
		RandomOps:      128,
	}
}

var quickClass = btio.Class{Name: "Q", N: 64, Steps: 20, WriteInterval: 5}

func testApps() []AppSpec {
	return []AppSpec{
		{Name: "btio-full", New: func() workload.App {
			return btio.New(btio.Config{Class: quickClass, Procs: 4, Subtype: btio.Full})
		}},
		{Name: "flashio", New: func() workload.App {
			return flashio.New(flashio.Config{Procs: 4, BlocksPerProc: 8})
		}},
	}
}

// testGrid expands to 8 configurations (2 platforms × 2 organizations
// × 2 I/O-node counts) × 2 workloads — the acceptance grid.
func testGrid() Grid {
	return GridSpec{
		Platforms:  []cluster.Config{tinyBase("alpha", 4), tinyBase("beta", 2)},
		Orgs:       []cluster.Organization{cluster.JBOD, cluster.RAID5},
		PFSIONodes: []int{0, 2},
		Char:       quickChar(),
		Apps:       testApps(),
	}.Grid()
}

func reportBytes(t *testing.T, r *Report) ([]byte, []byte) {
	t.Helper()
	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatalf("json: %v", err)
	}
	return js.Bytes(), []byte(r.String())
}

// TestSweepDeterminism is the acceptance check: the same grid on 1
// and 8 workers must produce byte-identical ranked reports (JSON and
// text), and each engine must characterize each unique configuration
// exactly once — asserted via the engine's telemetry counters. Run
// under -race in CI, this also exercises the shared characterization
// cache for data races.
func TestSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep grid skipped in -short mode")
	}
	grid := testGrid()
	if len(grid.Configs) != 8 || len(grid.Apps) != 2 {
		t.Fatalf("grid = %d configs × %d apps, want 8 × 2", len(grid.Configs), len(grid.Apps))
	}

	type run struct {
		workers int
		json    []byte
		text    []byte
	}
	runs := []*run{{workers: 1}, {workers: 8}}
	for _, r := range runs {
		eng := NewEngine(r.workers)
		rep, err := eng.Run(grid, ByIOTime)
		if err != nil {
			t.Fatalf("run (%d workers): %v", r.workers, err)
		}
		r.json, r.text = reportBytes(t, rep)

		aux := eng.Snapshot().Counters.Aux
		if aux["characterizations"] != int64(len(grid.Configs)) {
			t.Errorf("%d workers: %d characterizations, want %d (exactly once per unique config)",
				r.workers, aux["characterizations"], len(grid.Configs))
		}
		if aux["evaluations"] != int64(len(grid.Configs)*len(grid.Apps)) {
			t.Errorf("%d workers: %d evaluations, want %d",
				r.workers, aux["evaluations"], len(grid.Configs)*len(grid.Apps))
		}
		if len(rep.Cells) != len(grid.Configs)*len(grid.Apps) {
			t.Fatalf("%d workers: %d cells", r.workers, len(rep.Cells))
		}
		// Span aggregation rides in every cell: the byte-compare below
		// only proves spans deterministic if they are actually there.
		for i, c := range rep.Cells {
			if c.Path == nil || !c.Path.HasSpans {
				t.Fatalf("%d workers: cell %d has no span data; the determinism check would be vacuous", r.workers, i)
			}
			if !c.Path.Conserved {
				t.Errorf("%d workers: cell %d violates span conservation (drift %v)", r.workers, i, c.Path.Drift)
			}
		}
	}
	if !bytes.Equal(runs[0].json, runs[1].json) {
		t.Errorf("JSON reports differ between 1 and 8 workers:\n--- 1 worker ---\n%s\n--- 8 workers ---\n%s",
			runs[0].json, runs[1].json)
	}
	if !bytes.Equal(runs[0].text, runs[1].text) {
		t.Errorf("text reports differ between 1 and 8 workers:\n--- 1 worker ---\n%s\n--- 8 workers ---\n%s",
			runs[0].text, runs[1].text)
	}
}

// TestRankingOrders checks every metric yields a correctly ordered,
// deterministically tie-broken report.
func TestRankingOrders(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep grid skipped in -short mode")
	}
	grid := Grid{
		Configs: []Config{
			{Name: "a/jbod", Build: buildFn(tinyBase("a", 2)), Char: quickChar()},
			{Name: "a/raid5", Build: buildFn(with(tinyBase("a", 2), cluster.RAID5)), Char: quickChar()},
		},
		Apps: testApps()[:1],
	}
	eng := NewEngine(4)
	for _, metric := range []Metric{ByIOTime, ByUsedPct, ByThroughput} {
		rep, err := eng.Run(grid, metric)
		if err != nil {
			t.Fatalf("%v: %v", metric, err)
		}
		for i := 1; i < len(rep.Cells); i++ {
			a, b := rep.Cells[i-1], rep.Cells[i]
			if cellLess(metric, b, a) {
				t.Errorf("%v: cells %d/%d out of order: %+v before %+v", metric, i-1, i, a, b)
			}
		}
		if rep.RankedBy != metric.String() {
			t.Errorf("RankedBy = %q, want %q", rep.RankedBy, metric)
		}
		if len(rep.Best) != 1 || rep.Best[0].Config != rep.Cells[0].Config {
			t.Errorf("%v: best = %+v, want top-ranked %q", metric, rep.Best, rep.Cells[0].Config)
		}
	}
}

func buildFn(cfg cluster.Config) func() *cluster.Cluster {
	return func() *cluster.Cluster { return cluster.New(cfg) }
}

func with(cfg cluster.Config, org cluster.Organization) cluster.Config {
	cfg.Org = org
	return cfg
}

// TestSharedFingerprint: configs measuring the same cluster with the
// same parameters carry the same content fingerprint — even under
// different grid names — and share one characterization.
func TestSharedFingerprint(t *testing.T) {
	base := tinyBase("fp", 2)
	grid := Grid{
		Configs: []Config{
			{Name: "fp/one", Build: buildFn(base), Char: quickChar()},
			{Name: "fp/two", Build: buildFn(base), Char: quickChar()},
		},
		Apps: testApps()[1:],
	}
	eng := NewEngine(4)
	if _, err := eng.Run(grid, ByIOTime); err != nil {
		t.Fatalf("run: %v", err)
	}
	aux := eng.Snapshot().Counters.Aux
	if aux["characterizations"] != 1 {
		t.Errorf("characterizations = %d, want 1 (shared fingerprint)", aux["characterizations"])
	}
	if aux["evaluations"] != 2 {
		t.Errorf("evaluations = %d, want 2", aux["evaluations"])
	}
}

// TestCharacterizationSingleFlight: concurrent callers for one
// fingerprint trigger exactly one Characterize; callers for distinct
// fingerprints make progress in parallel (no engine-wide lock across
// the characterize call — a handshake between two Build functions
// would deadlock if characterizations serialized).
func TestCharacterizationSingleFlight(t *testing.T) {
	eng := NewEngine(4)

	var builds atomic.Int64
	base := tinyBase("sf", 2)
	cfg := Config{Name: "sf", Char: quickChar(), Build: func() *cluster.Cluster {
		builds.Add(1)
		return cluster.New(base)
	}}
	var wg sync.WaitGroup
	chs := make([]*core.Characterization, 8)
	for i := 0; i < len(chs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ch, err := eng.Characterization(cfg)
			if err != nil {
				t.Errorf("characterize: %v", err)
			}
			chs[i] = ch
		}(i)
	}
	wg.Wait()
	for _, ch := range chs[1:] {
		if ch != chs[0] {
			t.Fatal("concurrent callers saw different characterizations")
		}
	}
	// Characterization builds one cluster per shard-plan unit (the
	// probe doubles as the first unit's cluster: quickChar has two FS
	// block sizes × two filesystem levels + one library point = 5
	// units), and the content fingerprint builds one more probe.
	if got := eng.Snapshot().Counters.Aux["characterizations"]; got != 1 {
		t.Fatalf("characterizations = %d, want 1", got)
	}
	if builds.Load() > 6 {
		t.Fatalf("Build called %d times for one characterization", builds.Load())
	}

	// Distinct fingerprints characterize concurrently: each Build
	// waits for the other side to start, which deadlocks if the
	// engine serializes first-time characterizations.
	started := make(chan string, 2)
	release := make(chan struct{})
	gate := func(name string, base cluster.Config) Config {
		var first atomic.Bool // Build runs concurrently (shard-plan workers)
		return Config{Name: name, Char: quickChar(), Build: func() *cluster.Cluster {
			if first.CompareAndSwap(false, true) {
				started <- name
				<-release
			}
			return cluster.New(base)
		}}
	}
	cfgA := gate("gate-a", tinyBase("ga", 2))
	cfgB := gate("gate-b", tinyBase("gb", 2))
	var wg2 sync.WaitGroup
	for _, c := range []Config{cfgA, cfgB} {
		wg2.Add(1)
		go func(c Config) {
			defer wg2.Done()
			if _, err := eng.Characterization(c); err != nil {
				t.Errorf("characterize %s: %v", c.Name, err)
			}
		}(c)
	}
	// Both first Builds must start before either characterization
	// completes — concurrent progress across configurations.
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		seen[<-started] = true
	}
	if !seen["gate-a"] || !seen["gate-b"] {
		t.Fatalf("both characterizations should be in flight, got %v", seen)
	}
	close(release)
	wg2.Wait()
}

// TestRunErrors: grid validation and cell failures surface as errors.
func TestRunErrors(t *testing.T) {
	eng := NewEngine(2)
	if _, err := eng.Run(Grid{}, ByIOTime); err == nil {
		t.Error("empty grid accepted")
	}
	dup := Grid{
		Configs: []Config{{Name: "x", Build: buildFn(tinyBase("x", 2))}, {Name: "x", Build: buildFn(tinyBase("x", 2))}},
		Apps:    testApps()[:1],
	}
	if _, err := eng.Run(dup, ByIOTime); err == nil {
		t.Error("duplicate config names accepted")
	}
	noBuild := Grid{Configs: []Config{{Name: "nb"}}, Apps: testApps()[:1]}
	if _, err := eng.Run(noBuild, ByIOTime); err == nil {
		t.Error("config without Build accepted")
	}
}

func TestParseMetric(t *testing.T) {
	for _, m := range []Metric{ByIOTime, ByUsedPct, ByThroughput} {
		got, err := ParseMetric(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMetric(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMetric("nope"); err == nil {
		t.Error("unknown metric accepted")
	}
}

func ExampleGridSpec_Grid() {
	grid := GridSpec{
		Platforms:  []cluster.Config{tinyBase("demo", 2)},
		Orgs:       []cluster.Organization{cluster.JBOD, cluster.RAID1},
		PFSIONodes: []int{0, 2},
	}.Grid()
	for _, c := range grid.Configs {
		fmt.Println(c.Name)
	}
	// Output:
	// demo/JBOD
	// demo/JBOD/pfs-2
	// demo/RAID1
	// demo/RAID1/pfs-2
}
