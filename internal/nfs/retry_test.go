package nfs

import (
	"testing"

	"ioeval/internal/fs"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
)

// TestRetryBackoffArithmetic pins the retry loop against the injected
// sim clock: a server stalled for 2.5 s with the default 1 s timeout
// and 100 ms → doubling backoff yields exactly three timeout/retry
// rounds (attempts end at 1.0, 2.1, 3.3 s; backoffs land at 1.1, 2.3,
// 3.7 s), and the RPC proceeds at 3.7 s.
func TestRetryBackoffArithmetic(t *testing.T) {
	r := newRig(1, 64*mb)
	c := r.clients[0]

	// Create the file while the server is healthy.
	run(t, r.eng, func(p *sim.Proc) {
		h, err := c.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.OCreate)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		h.WriteVec(ioreq.Writer(p), []fs.IOVec{{Off: 0, Len: mb}})
		h.Close(ioreq.Meta(p))
	})

	r.srv.Stall(2500 * sim.Millisecond)
	if r.srv.DownUntil() == 0 {
		t.Fatal("DownUntil not set")
	}
	start := r.eng.Now()
	var opened sim.Time
	run(t, r.eng, func(p *sim.Proc) {
		h, err := c.Open(ioreq.Meta(p), "/f", fs.ORead)
		if err != nil {
			t.Errorf("open under stall: %v", err)
			return
		}
		opened = p.Now()
		h.ReadVec(ioreq.Reader(p), []fs.IOVec{{Off: 0, Len: mb}})
		h.Close(ioreq.Meta(p))
	})

	if c.Stats.Timeouts != 3 || c.Stats.Retries != 3 {
		t.Fatalf("timeouts=%d retries=%d, want 3/3", c.Stats.Timeouts, c.Stats.Retries)
	}
	if got := c.Telemetry().AuxVal("timeouts"); got != 3 {
		t.Fatalf("telemetry timeouts = %d", got)
	}
	if got := c.Telemetry().AuxVal("retries"); got != 3 {
		t.Fatalf("telemetry retries = %d", got)
	}
	// Attempt 1: 1 s timeout + 100 ms backoff → 1.1 s.
	// Attempt 2: +1 s + 200 ms → 2.3 s. Attempt 3: +1 s + 400 ms → 3.7 s.
	wantWait := sim.Duration(3700 * sim.Millisecond)
	if got := sim.Duration(opened - start); got < wantWait || got > wantWait+sim.Second/2 {
		t.Fatalf("open completed after %v, want ≥ %v (stall + retries)", got, wantWait)
	}
}

// TestBackoffCapsAtMax verifies the doubling backoff saturates at
// RetryBackoffMax instead of growing unboundedly across a long outage.
func TestBackoffCapsAtMax(t *testing.T) {
	r := newRig(1, 64*mb)
	c := r.clients[0]
	c.params.RetryTimeout = 100 * sim.Millisecond
	c.params.RetryBackoff = 100 * sim.Millisecond
	c.params.RetryBackoffMax = 200 * sim.Millisecond

	r.srv.Stall(2 * sim.Second)
	run(t, r.eng, func(p *sim.Proc) {
		if _, err := c.Open(ioreq.Meta(p), "/g", fs.OWrite|fs.OCreate); err != nil {
			t.Errorf("open: %v", err)
		}
	})
	// Rounds: 0.2, 0.5, 0.8, 1.1, 1.4, 1.7, 2.0, 2.3 s — with the cap,
	// each round after the first costs 0.3 s, so 7 rounds; without it,
	// doubling would finish in 5.
	if c.Stats.Retries != 7 {
		t.Fatalf("retries = %d, want 7 (capped backoff)", c.Stats.Retries)
	}
}

// TestHealthyPathCountsNothing pins that the retry plane is free when
// no fault is armed.
func TestHealthyPathCountsNothing(t *testing.T) {
	r := newRig(1, 64*mb)
	c := r.clients[0]
	run(t, r.eng, func(p *sim.Proc) {
		h, _ := c.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.OCreate)
		h.WriteVec(ioreq.Writer(p), []fs.IOVec{{Off: 0, Len: 4 * mb}})
		h.Close(ioreq.Meta(p))
	})
	if c.Stats.Timeouts != 0 || c.Stats.Retries != 0 {
		t.Fatalf("healthy run counted timeouts=%d retries=%d", c.Stats.Timeouts, c.Stats.Retries)
	}
}

// TestStallCoversDataPath: reads and writes issued mid-outage wait the
// outage out rather than completing at healthy speed.
func TestStallCoversDataPath(t *testing.T) {
	healthy := func() sim.Duration {
		r := newRig(1, 64*mb)
		var d sim.Duration
		run(t, r.eng, func(p *sim.Proc) {
			h, _ := r.clients[0].Open(ioreq.Meta(p), "/f", fs.OWrite|fs.OCreate)
			t0 := p.Now()
			h.WriteVec(ioreq.Writer(p), []fs.IOVec{{Off: 0, Len: 8 * mb}})
			d = sim.Duration(p.Now() - t0)
			h.Close(ioreq.Meta(p))
		})
		return d
	}()

	r := newRig(1, 64*mb)
	var d sim.Duration
	run(t, r.eng, func(p *sim.Proc) {
		h, _ := r.clients[0].Open(ioreq.Meta(p), "/f", fs.OWrite|fs.OCreate)
		r.srv.Stall(3 * sim.Second)
		t0 := p.Now()
		h.WriteVec(ioreq.Writer(p), []fs.IOVec{{Off: 0, Len: 8 * mb}})
		d = sim.Duration(p.Now() - t0)
		h.Close(ioreq.Meta(p))
	})
	if d < healthy+2*sim.Second {
		t.Fatalf("stalled write took %v, healthy %v — outage not observed", d, healthy)
	}
}

func TestInvalidateCaches(t *testing.T) {
	r := newRig(1, 64*mb)
	c := r.clients[0]
	run(t, r.eng, func(p *sim.Proc) {
		h, _ := c.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.OCreate)
		h.WriteVec(ioreq.Writer(p), []fs.IOVec{{Off: 0, Len: mb}})
		h.Close(ioreq.Meta(p))
		if _, err := c.Stat(ioreq.Meta(p), "/f"); err != nil {
			t.Errorf("stat: %v", err)
		}
	})
	if len(c.attrCache) == 0 {
		t.Fatal("attr cache empty before invalidation")
	}
	c.InvalidateCaches()
	if len(c.attrCache) != 0 || len(c.validGen) != 0 {
		t.Fatal("caches survived InvalidateCaches")
	}
	if got := c.Telemetry().AuxVal("cache_invalidations"); got != 1 {
		t.Fatalf("cache_invalidations = %d", got)
	}
}
