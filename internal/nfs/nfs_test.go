package nfs

import (
	"errors"
	"fmt"
	"testing"

	"ioeval/internal/cache"
	"ioeval/internal/device"
	"ioeval/internal/fs"
	"ioeval/internal/ioreq"
	"ioeval/internal/netsim"
	"ioeval/internal/sim"
)

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
	gb = int64(1) << 30
)

// rig is a one-server, n-client NFS setup over GigE.
type rig struct {
	eng     *sim.Engine
	net     *netsim.Network
	srv     *Server
	clients []*Client
	disk    *device.Disk
	srvFS   *fs.Mount
}

func newRig(nClients int, serverCacheBytes int64) *rig {
	e := sim.NewEngine()
	net := netsim.New(e, netsim.GigabitEthernet("data"))
	net.Attach("srv")
	d := device.NewDisk(e, device.DefaultSATA("sd", 917*gb, 100e6))
	pc := cache.New(e, cache.DefaultParams("srv-pc", serverCacheBytes), d)
	backend := fs.NewMount(e, fs.DefaultMountParams("ext4"), pc)
	srv := NewServer(e, DefaultServerParams("nfs"), "srv", net, backend)
	r := &rig{eng: e, net: net, srv: srv, disk: d, srvFS: backend}
	for i := 0; i < nClients; i++ {
		node := fmt.Sprintf("c%d", i)
		net.Attach(node)
		r.clients = append(r.clients, NewClient(e, DefaultClientParams("nfs"), node, net, srv))
	}
	return r
}

func run(t *testing.T, e *sim.Engine, fn func(*sim.Proc)) {
	t.Helper()
	e.Spawn("t", func(p *sim.Proc) { fn(p) })
	e.Run()
}

func TestRemoteWriteReadRoundTrip(t *testing.T) {
	r := newRig(1, 256*mb)
	run(t, r.eng, func(p *sim.Proc) {
		c := r.clients[0]
		h, err := c.Open(ioreq.Meta(p), "/shared", fs.OWrite|fs.OCreate)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if n := h.WriteAt(ioreq.Writer(p), 0, 4*mb); n != 4*mb {
			t.Fatalf("wrote %d", n)
		}
		if n := h.ReadAt(ioreq.Reader(p), 0, 4*mb); n != 4*mb {
			t.Fatalf("read %d", n)
		}
		h.Close(ioreq.Meta(p))
	})
	if r.srv.Stats.BytesWritten != 4*mb || r.srv.Stats.BytesRead != 4*mb {
		t.Fatalf("server stats: %+v", r.srv.Stats)
	}
}

func TestOpenMissingFails(t *testing.T) {
	r := newRig(1, 64*mb)
	run(t, r.eng, func(p *sim.Proc) {
		_, err := r.clients[0].Open(ioreq.Meta(p), "/ghost", fs.ORead)
		if !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestThroughputBoundedByNetwork(t *testing.T) {
	r := newRig(1, 4*gb)
	var dur sim.Duration
	run(t, r.eng, func(p *sim.Proc) {
		c := r.clients[0]
		h, _ := c.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.OCreate)
		t0 := p.Now()
		h.WriteAt(ioreq.Writer(p), 0, 512*mb)
		dur = sim.Duration(p.Now() - t0)
		h.Close(ioreq.Meta(p))
	})
	rate := float64(512*mb) / dur.Seconds() / 1e6
	// GigE effective ~117 MB/s; with RPC overheads we must land below
	// that but within reach of it (server disk is faster than wire for
	// sequential writes into cache).
	if rate > 117 {
		t.Fatalf("NFS write rate %.1f MB/s exceeds wire speed", rate)
	}
	if rate < 60 {
		t.Fatalf("NFS write rate %.1f MB/s unreasonably low", rate)
	}
}

func TestSharedFileVisibleAcrossClients(t *testing.T) {
	r := newRig(2, 256*mb)
	run(t, r.eng, func(p *sim.Proc) {
		h0, _ := r.clients[0].Open(ioreq.Meta(p), "/f", fs.OWrite|fs.OCreate)
		h0.WriteAt(ioreq.Writer(p), 0, mb)
		h0.Close(ioreq.Meta(p))
		h1, err := r.clients[1].Open(ioreq.Meta(p), "/f", fs.ORead)
		if err != nil {
			t.Fatalf("client1 open: %v", err)
		}
		if n := h1.ReadAt(ioreq.Reader(p), 0, 2*mb); n != mb {
			t.Fatalf("client1 read %d, want %d", n, mb)
		}
		h1.Close(ioreq.Meta(p))
	})
}

func TestAttrCache(t *testing.T) {
	r := newRig(1, 64*mb)
	run(t, r.eng, func(p *sim.Proc) {
		c := r.clients[0]
		h, _ := c.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.OCreate)
		h.WriteAt(ioreq.Writer(p), 0, kb)
		h.Close(ioreq.Meta(p))
		c.Stat(ioreq.Meta(p), "/f")
		t0 := p.Now()
		c.Stat(ioreq.Meta(p), "/f") // cached: free and no RPC
		if p.Now() != t0 {
			t.Error("cached stat cost time")
		}
		if c.Stats.AttrCacheHits != 1 {
			t.Errorf("attr cache hits = %d", c.Stats.AttrCacheHits)
		}
		// A write invalidates the attribute cache.
		h2, _ := c.Open(ioreq.Meta(p), "/f", fs.OWrite)
		h2.WriteAt(ioreq.Writer(p), 0, kb)
		h2.Close(ioreq.Meta(p))
		meta0 := c.Stats.MetaRPCs
		c.Stat(ioreq.Meta(p), "/f")
		if c.Stats.MetaRPCs != meta0+1 {
			t.Error("stat after write did not go to server")
		}
	})
}

func TestSmallOpsDominatedByPerOpCost(t *testing.T) {
	// The BT-IO "simple" effect: the same bytes in tiny strided
	// operations must be far slower than one big operation.
	r := newRig(1, 4*gb)
	var tBig, tSmall sim.Duration
	run(t, r.eng, func(p *sim.Proc) {
		c := r.clients[0]
		h, _ := c.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.OCreate)
		t0 := p.Now()
		h.WriteAt(ioreq.Writer(p), 0, 10*mb)
		tBig = sim.Duration(p.Now() - t0)

		var vecs []fs.IOVec
		rec := int64(1600)
		for i := int64(0); i < 6561; i++ {
			vecs = append(vecs, fs.IOVec{Off: i * rec * 16, Len: rec})
		}
		t0 = p.Now()
		h.WriteVec(ioreq.Writer(p), vecs) // ~10.5 MB in 6561 ops
		tSmall = sim.Duration(p.Now() - t0)
		h.Close(ioreq.Meta(p))
	})
	if tSmall < 5*tBig {
		t.Fatalf("small strided writes (%v) not ≫ slower than bulk (%v)", tSmall, tBig)
	}
}

func TestVecBatchingKeepsEventCountBounded(t *testing.T) {
	// 100k tiny reads must complete quickly in *wall-clock* terms —
	// this is a regression test for the event-explosion problem.
	r := newRig(1, 4*gb)
	run(t, r.eng, func(p *sim.Proc) {
		c := r.clients[0]
		h, _ := c.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.OCreate)
		h.WriteAt(ioreq.Writer(p), 0, 200*mb)
		vecs := make([]fs.IOVec, 100000)
		for i := range vecs {
			vecs[i] = fs.IOVec{Off: int64(i) * 2 * kb, Len: kb}
		}
		if n := h.ReadVec(ioreq.Reader(p), vecs); n != 100000*kb {
			t.Fatalf("vec read returned %d", n)
		}
		h.Close(ioreq.Meta(p))
	})
	if r.clients[0].Stats.ReadRPCs != 100000 {
		t.Fatalf("RPC accounting: %+v", r.clients[0].Stats)
	}
}

func TestConcurrentClientsContendOnServer(t *testing.T) {
	// One client moving X bytes vs four clients each moving X bytes:
	// aggregate time must grow (shared server NIC).
	soloTime := func() sim.Duration {
		r := newRig(1, 4*gb)
		var d sim.Duration
		run(t, r.eng, func(p *sim.Proc) {
			h, _ := r.clients[0].Open(ioreq.Meta(p), "/f0", fs.OWrite|fs.OCreate)
			t0 := p.Now()
			h.WriteAt(ioreq.Writer(p), 0, 128*mb)
			d = sim.Duration(p.Now() - t0)
			h.Close(ioreq.Meta(p))
		})
		return d
	}()

	r := newRig(4, 4*gb)
	var slowest sim.Duration
	done := sim.NewCompletion(r.eng, 4)
	for i, c := range r.clients {
		i, c := i, c
		r.eng.Spawn("cl", func(p *sim.Proc) {
			h, _ := c.Open(ioreq.Meta(p), fmt.Sprintf("/f%d", i), fs.OWrite|fs.OCreate)
			t0 := p.Now()
			h.WriteAt(ioreq.Writer(p), 0, 128*mb)
			if d := sim.Duration(p.Now() - t0); d > slowest {
				slowest = d
			}
			h.Close(ioreq.Meta(p))
			done.Done()
		})
	}
	r.eng.Run()
	if slowest < 3*soloTime {
		t.Fatalf("4-way contention: slowest %v vs solo %v, want ≥3x", slowest, soloTime)
	}
}

func TestServerCacheMakesRereadFast(t *testing.T) {
	// Write then re-read with a warm server cache vs a cold one.
	r := newRig(1, 4*gb)
	var warm sim.Duration
	run(t, r.eng, func(p *sim.Proc) {
		h, _ := r.clients[0].Open(ioreq.Meta(p), "/f", fs.OWrite|fs.OCreate)
		h.WriteAt(ioreq.Writer(p), 0, 64*mb)
		t0 := p.Now()
		h.ReadAt(ioreq.Reader(p), 0, 64*mb)
		warm = sim.Duration(p.Now() - t0)
		h.Close(ioreq.Meta(p))
	})
	// Warm-cache NFS reads are network-bound: ≥80 MB/s.
	rate := float64(64*mb) / warm.Seconds() / 1e6
	if rate < 80 {
		t.Fatalf("warm re-read rate %.1f MB/s, want network-bound ≥80", rate)
	}
}

func TestRemoveInvalidatesServerHandle(t *testing.T) {
	r := newRig(1, 64*mb)
	run(t, r.eng, func(p *sim.Proc) {
		c := r.clients[0]
		h, _ := c.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.OCreate)
		h.WriteAt(ioreq.Writer(p), 0, kb)
		h.Close(ioreq.Meta(p))
		if err := c.Remove(ioreq.Meta(p), "/f"); err != nil {
			t.Fatalf("remove: %v", err)
		}
		if _, err := c.Open(ioreq.Meta(p), "/f", fs.ORead); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("open after remove: %v", err)
		}
	})
}

func BenchmarkNFSWrite(b *testing.B) {
	r := newRig(1, 4*gb)
	r.eng.Spawn("w", func(p *sim.Proc) {
		h, _ := r.clients[0].Open(ioreq.Meta(p), "/f", fs.OWrite|fs.OCreate)
		for i := 0; i < b.N; i++ {
			h.WriteAt(ioreq.Writer(p), int64(i%512)*mb, 256*kb)
		}
		h.Close(ioreq.Meta(p))
	})
	b.ResetTimer()
	r.eng.Run()
}
