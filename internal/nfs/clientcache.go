package nfs

import (
	"fmt"

	"ioeval/internal/device"
	"ioeval/internal/ioreq"
)

// Client-side data caching.
//
// A real NFS client caches file data in its page cache under
// close-to-open consistency: pages are valid as long as the file's
// attributes have not changed since they were fetched, and validity
// is re-checked at open time. MPI-IO (ROMIO) disables this cache —
// via byte-range locking — whenever a file is opened by a
// communicator with more than one process, because close-to-open is
// too weak for concurrently shared files. The mpiio layer therefore
// switches handles of shared files to direct I/O (SetDirectIO);
// single-process opens (e.g. MADbench2 UNIQUE file-per-process) keep
// the cache, which is what lets the paper's 64-process UNIQUE reads
// run "on buffer/cache and not physically on the disk".
//
// The cache is implemented as a cache.Cache over a virtual address
// space in which every path gets a fixed-size slot; the device under
// it turns page fetches into read RPCs.

// slotBytes is the virtual address-space slot per cached file. Files
// larger than a slot simply bypass the cache beyond it (none of the
// workloads approach it).
const slotBytes = int64(1) << 40

// clientDev adapts the RPC path to device.BlockDev for the cache.
type clientDev struct {
	c *Client
}

var _ device.BlockDev = (*clientDev)(nil)

func (d *clientDev) Name() string         { return d.c.params.Name + ":remote" }
func (d *clientDev) Capacity() int64      { return slotBytes * (1 << 20) }
func (d *clientDev) Flush(*ioreq.Request) {}

// ReadAt fetches a virtual range via read RPCs against the slot's
// server handle, clamped to the current file size.
func (d *clientDev) ReadAt(r *ioreq.Request, off, n int64) {
	c := d.c
	slot := off / slotBytes
	path, ok := c.slotPaths[slot]
	if !ok {
		panic(fmt.Sprintf("nfs %q: read from unmapped cache slot %d", c.params.Name, slot))
	}
	h, ok := c.srv.handles[path]
	if !ok {
		panic(fmt.Sprintf("nfs %q: cached path %q has no server handle", c.params.Name, path))
	}
	foff := off % slotBytes
	if foff >= h.Size() {
		return
	}
	if foff+n > h.Size() {
		n = h.Size() - foff
	}
	c.rpcRead(r, h, foff, n)
}

// WriteAt flushes dirty client pages: UNSTABLE write RPCs in WSize
// chunks (the commit happens at Sync/Close), clamped to the written
// extent of the file.
func (d *clientDev) WriteAt(r *ioreq.Request, off, n int64) {
	c := d.c
	slot := off / slotBytes
	path, ok := c.slotPaths[slot]
	if !ok {
		panic(fmt.Sprintf("nfs %q: write-back from unmapped cache slot %d", c.params.Name, slot))
	}
	h, ok := c.srv.handles[path]
	if !ok {
		panic(fmt.Sprintf("nfs %q: cached path %q has no server handle", c.params.Name, path))
	}
	foff := off % slotBytes
	// Page-granular flushing may overhang the written extent; clamp.
	if end := c.sizes[path]; foff+n > end {
		if foff >= end {
			return
		}
		n = end - foff
	}
	c.rpcWriteUnstable(r, h, foff, n)
	c.srv.gen[path]++
	c.validGen[path] = c.srv.gen[path]
}

// slot returns (mapping if needed) the cache slot of a path.
func (c *Client) slot(path string) int64 {
	if s, ok := c.pathSlots[path]; ok {
		return s
	}
	s := int64(len(c.pathSlots))
	c.pathSlots[path] = s
	c.slotPaths[s] = path
	return s
}

// revalidate implements close-to-open consistency: called at open
// time, it drops the path's cached pages when the server-side change
// generation moved since this client last validated.
func (c *Client) revalidate(path string) {
	if c.dataCache == nil {
		return
	}
	gen := c.srv.gen[path]
	if last, ok := c.validGen[path]; ok && last == gen {
		return
	}
	c.invalidatePath(path)
	c.validGen[path] = gen
}

// invalidatePath drops all cached pages of one path.
func (c *Client) invalidatePath(path string) {
	s, ok := c.pathSlots[path]
	if !ok {
		return
	}
	base := s * slotBytes
	c.dataCache.InvalidateRange(base, slotBytes)
}

// noteOwnWrite keeps the writer's own cache valid: the server
// generation advanced because of us, so re-sync the validation mark.
// If another client wrote in between, its data is picked up at the
// next open — exactly NFS close-to-open staleness.
func (c *Client) noteOwnWrite(path string) {
	if c.dataCache == nil {
		return
	}
	c.validGen[path] = c.srv.gen[path]
}

// DropCaches empties the client's data cache (characterization runs
// use it to measure cold paths).
func (c *Client) DropCaches(r *ioreq.Request) {
	if c.dataCache != nil {
		c.dataCache.DropCaches(r)
		c.validGen = map[string]int64{}
	}
}

// cachedRead serves a read through the client cache; returns false if
// the handle must fall back to direct RPCs.
func (h *remoteHandle) cachedRead(r *ioreq.Request, off, n int64) (int64, bool) {
	c := h.c
	if c.dataCache == nil || h.direct {
		return 0, false
	}
	size := h.Size() // client view: includes write-behind data
	if off >= size {
		return 0, true
	}
	if off+n > size {
		n = size - off
	}
	if off+n > slotBytes {
		return 0, false // beyond the slot: bypass
	}
	base := c.slot(h.path) * slotBytes
	c.dataCache.ReadAt(r, base+off, n)
	c.Stats.BytesRead += n
	return n, true
}

// cachedWrite absorbs a write into the client cache (write-behind):
// pages are dirtied and flushed by throttling, Sync or Close — the
// behaviour of a buffered write() on a real NFS mount. Returns false
// when the handle must fall back to synchronous RPCs.
func (h *remoteHandle) cachedWrite(r *ioreq.Request, off, n int64) (int64, bool) {
	c := h.c
	if c.dataCache == nil || h.direct || off+n > slotBytes {
		return 0, false
	}
	if end := off + n; end > c.sizes[h.path] {
		c.sizes[h.path] = end
	}
	base := c.slot(h.path) * slotBytes
	c.dataCache.WriteAt(r, base+off, n)
	c.noteOwnWrite(h.path)
	c.Stats.BytesWritten += n
	delete(c.attrCache, h.path)
	return n, true
}

// flushAndCommit writes out the client's dirty pages and issues a
// COMMIT (close-to-open flush-on-close / fsync semantics).
func (h *remoteHandle) flushAndCommit(r *ioreq.Request) {
	c := h.c
	if c.dataCache == nil || h.direct {
		return
	}
	c.dataCache.Flush(r)
	c.srv.commit(r.Proc(), 1)
}

// SetDirectIO disables client-side caching for this handle (used by
// the MPI-IO layer for concurrently shared files). Dirty data
// buffered before the switch is not flushed — callers switch modes
// immediately after open.
func (h *remoteHandle) SetDirectIO(direct bool) { h.direct = direct }
