// Package nfs models a network filesystem: a server exporting a local
// filesystem (fs.Mount) on an I/O node, and per-node clients that
// satisfy fs.Interface by issuing RPCs over a netsim.Network.
//
// The client caches attributes (the NFS attribute cache) and — when
// ClientParams.CacheBytes is set — file data under close-to-open
// consistency (clientcache.go). MPI-IO (ROMIO) disables the data
// cache for files shared by more than one process (SetDirectIO), as
// close-to-open is too weak there; single-process opens such as
// MADbench2's UNIQUE file-per-process keep it, which is how
// applications can exceed the characterized NFS rates when their
// working set fits in RAM. Server-side caching arises naturally from
// the exported fs.Mount's page cache.
package nfs

import (
	"fmt"

	"ioeval/internal/cache"
	"ioeval/internal/fs"
	"ioeval/internal/ioreq"
	"ioeval/internal/netsim"
	"ioeval/internal/sim"
	"ioeval/internal/telemetry"
)

// rpcHeaderBytes approximates the on-wire size of an NFS RPC header.
const rpcHeaderBytes = 150

// ServerParams configures an NFS server.
type ServerParams struct {
	Name string
	// Threads is the number of nfsd threads: the server-side
	// concurrency limit for RPC processing.
	Threads int64
	// RPCCost is the server CPU cost to process one RPC.
	RPCCost sim.Duration
	// SyncExport models the Linux default `sync` export option: every
	// application-level write must be committed to stable storage
	// before the reply, costing CommitCost on a server thread. Large
	// streaming writes amortize it (the client uses UNSTABLE chunk
	// writes plus one COMMIT per application call), but small-record
	// workloads pay it per operation — a large part of why NAS BT-IO
	// "simple" collapses on NFS.
	SyncExport bool
	// CommitCost is the stable-storage commit charge per committed
	// write (journal commit + RAID controller write-back cache ack).
	CommitCost sim.Duration
	// LockCost is the lockd (NLM) processing charge per byte-range
	// lock/unlock pair, on top of the wire round trips. MPI-IO pays it
	// per operation on shared files.
	LockCost sim.Duration
}

// DefaultServerParams mirrors a stock Linux nfsd configuration with a
// sync export backed by a write-back-cached array.
func DefaultServerParams(name string) ServerParams {
	return ServerParams{
		Name:       name,
		Threads:    8,
		RPCCost:    30 * sim.Microsecond,
		SyncExport: true,
		CommitCost: 1300 * sim.Microsecond,
		LockCost:   800 * sim.Microsecond,
	}
}

// Server exports a local filesystem over the network.
type Server struct {
	eng     *sim.Engine
	params  ServerParams
	node    string
	net     *netsim.Network
	backend fs.Interface
	threads *sim.Resource
	handles map[string]fs.Handle
	gen     map[string]int64 // per-path change generation (attr cache / close-to-open)

	// downUntil marks the server unresponsive until this simulated
	// time (fault injection: a crashed or stalled nfsd). Clients ride
	// it out through their retry/timeout machinery (awaitServer).
	downUntil sim.Time

	// Stats counts RPCs served by kind.
	Stats ServerStats

	rec *telemetry.Recorder
}

// ServerStats counts server-side RPC activity.
type ServerStats struct {
	ReadRPCs, WriteRPCs, MetaRPCs int64
	BytesRead, BytesWritten       int64
}

// NewServer creates a server on the given node exporting backend.
func NewServer(e *sim.Engine, params ServerParams, node string, net *netsim.Network, backend fs.Interface) *Server {
	if params.Threads <= 0 {
		panic(fmt.Sprintf("nfs %q: need at least one server thread", params.Name))
	}
	return &Server{
		eng:     e,
		params:  params,
		node:    node,
		net:     net,
		backend: backend,
		threads: sim.NewResource(e, "nfsd:"+params.Name, params.Threads),
		handles: map[string]fs.Handle{},
		gen:     map[string]int64{},
		rec:     telemetry.NewRecorder(e, "nfs-server:"+params.Name, telemetry.LevelGlobalFS, params.Threads),
	}
}

// Telemetry returns the server's telemetry probe.
func (s *Server) Telemetry() *telemetry.Recorder { return s.rec }

// Node returns the server's network node name.
func (s *Server) Node() string { return s.node }

// Backend returns the exported filesystem.
func (s *Server) Backend() fs.Interface { return s.backend }

// Stall makes the server unresponsive for d of simulated time from
// now: new RPCs park in the clients' retry loops until it returns.
// Overlapping stalls extend each other (the later deadline wins).
func (s *Server) Stall(d sim.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("nfs %q: negative stall", s.params.Name))
	}
	until := s.eng.Now() + sim.Time(d)
	if until > s.downUntil {
		s.downUntil = until
	}
	s.rec.Add("stalls", 1)
}

// DownUntil returns the time the server next accepts RPCs (zero when
// it never stalled).
func (s *Server) DownUntil() sim.Time { return s.downUntil }

// handle returns (opening if needed) the server-side handle for path.
func (s *Server) handle(r *ioreq.Request, path string, flags int) (fs.Handle, error) {
	if h, ok := s.handles[path]; ok {
		return h, nil
	}
	h, err := s.backend.Open(r, path, flags)
	if err != nil {
		return nil, err
	}
	s.handles[path] = h
	return h, nil
}

// serve charges server-side RPC processing: a server thread is held
// for the CPU cost of nRPCs plus the backend work done inside fn.
func (s *Server) serve(p *sim.Proc, nRPCs int64, fn func()) {
	s.rec.Enter()
	s.threads.Acquire(p, 1)
	p.Sleep(s.params.RPCCost * sim.Duration(nRPCs))
	if fn != nil {
		fn()
	}
	s.threads.Release(1)
	s.rec.Exit()
}

// commit charges the stable-storage commit cost for n application
// writes on a sync export (no-op for async exports).
func (s *Server) commit(p *sim.Proc, n int64) {
	if !s.params.SyncExport || n == 0 {
		return
	}
	start := p.Now()
	s.rec.Enter()
	s.threads.Acquire(p, 1)
	p.Sleep(s.params.CommitCost * sim.Duration(n))
	s.threads.Release(1)
	s.rec.Exit()
	s.rec.Observe(telemetry.ClassMeta, n, 0, sim.Duration(p.Now()-start))
	s.rec.Add("commits", n)
}

// ClientParams configures an NFS client mount.
type ClientParams struct {
	Name  string
	RSize int64 // read chunk size per RPC
	WSize int64 // write chunk size per RPC
	// CacheBytes is the client-side page-cache budget for NFS data
	// (close-to-open consistency; see clientcache.go). Zero disables
	// client data caching.
	CacheBytes int64

	// Retry machinery (the mount's timeo/retrans knobs), exercised
	// when the server stalls: an RPC attempt times out after
	// RetryTimeout, then the client backs off — starting at
	// RetryBackoff and doubling up to RetryBackoffMax — before
	// retransmitting. Zero values take the defaults (1s timeout,
	// 100ms initial backoff, 10s cap).
	RetryTimeout    sim.Duration
	RetryBackoff    sim.Duration
	RetryBackoffMax sim.Duration
}

// DefaultClientParams mirrors a common rsize/wsize=256K mount.
func DefaultClientParams(name string) ClientParams {
	return ClientParams{
		Name: name, RSize: 256 << 10, WSize: 256 << 10,
		RetryTimeout:    sim.Second,
		RetryBackoff:    100 * sim.Millisecond,
		RetryBackoffMax: 10 * sim.Second,
	}
}

// Client is a node's NFS mount of a Server. It implements
// fs.Interface.
type Client struct {
	eng    *sim.Engine
	params ClientParams
	node   string
	net    *netsim.Network
	srv    *Server

	attrCache map[string]fs.FileInfo

	// Client data cache (nil when disabled); see clientcache.go.
	dataCache *cache.Cache
	pathSlots map[string]int64
	slotPaths map[int64]string
	validGen  map[string]int64
	sizes     map[string]int64 // client view of file sizes (write-behind)

	// Stats counts client-side RPC activity.
	Stats ClientStats

	rec *telemetry.Recorder
}

// ClientStats counts client-side traffic.
type ClientStats struct {
	ReadRPCs, WriteRPCs, MetaRPCs int64
	BytesRead, BytesWritten       int64
	AttrCacheHits                 int64
	Timeouts, Retries             int64 // RPC attempts timed out / retransmits sent
}

var _ fs.Interface = (*Client)(nil)

// NewClient mounts srv on the given client node.
func NewClient(e *sim.Engine, params ClientParams, node string, net *netsim.Network, srv *Server) *Client {
	if params.RSize <= 0 || params.WSize <= 0 {
		panic(fmt.Sprintf("nfs client %q: rsize/wsize must be positive", params.Name))
	}
	if params.RetryTimeout <= 0 {
		params.RetryTimeout = sim.Second
	}
	if params.RetryBackoff <= 0 {
		params.RetryBackoff = 100 * sim.Millisecond
	}
	if params.RetryBackoffMax <= 0 {
		params.RetryBackoffMax = 10 * sim.Second
	}
	c := &Client{
		eng:       e,
		params:    params,
		node:      node,
		net:       net,
		srv:       srv,
		attrCache: map[string]fs.FileInfo{},
		pathSlots: map[string]int64{},
		slotPaths: map[int64]string{},
		validGen:  map[string]int64{},
		sizes:     map[string]int64{},
		rec:       telemetry.NewRecorder(e, "nfs-client:"+params.Name+":"+node, telemetry.LevelGlobalFS, 1),
	}
	if params.CacheBytes > 0 {
		cp := cache.DefaultParams(params.Name+":"+node+":datacache", params.CacheBytes)
		c.dataCache = cache.New(e, cp, &clientDev{c: c})
	}
	return c
}

// Name implements fs.Interface.
func (c *Client) Name() string { return c.params.Name }

// Telemetry returns the client's telemetry probe.
func (c *Client) Telemetry() *telemetry.Recorder { return c.rec }

// Node returns the client's network node.
func (c *Client) Node() string { return c.node }

// Server returns the mounted server.
func (c *Client) Server() *Server { return c.srv }

// awaitServer models the client's RPC retransmit machinery while the
// server is stalled: the in-flight attempt waits out RetryTimeout,
// then the client backs off — doubling from RetryBackoff up to
// RetryBackoffMax — and retransmits, until the server is back. Pure
// sim-clock arithmetic, so recovery timing is fully deterministic.
func (c *Client) awaitServer(r *ioreq.Request) {
	p := r.Proc()
	if p.Now() < c.srv.downUntil {
		r.Tag("server_stall")
	}
	backoff := c.params.RetryBackoff
	for p.Now() < c.srv.downUntil {
		p.Sleep(c.params.RetryTimeout) // in-flight attempt times out
		c.Stats.Timeouts++
		c.rec.Add("timeouts", 1)
		p.Sleep(backoff) // back off before retransmitting
		backoff *= 2
		if backoff > c.params.RetryBackoffMax {
			backoff = c.params.RetryBackoffMax
		}
		c.Stats.Retries++
		c.rec.Add("retries", 1)
	}
}

// InvalidateCaches drops the client's attribute cache and
// close-to-open validity tokens, as remounting after a server restart
// does: every path revalidates (and re-fetches data) on next open.
func (c *Client) InvalidateCaches() {
	c.attrCache = map[string]fs.FileInfo{}
	c.validGen = map[string]int64{}
	c.rec.Add("cache_invalidations", 1)
}

// metaRPC performs a small request/response exchange plus server CPU.
func (c *Client) metaRPC(r *ioreq.Request, fn func()) {
	p := r.Proc()
	c.awaitServer(r)
	c.Stats.MetaRPCs++
	c.srv.Stats.MetaRPCs++
	start := p.Now()
	c.net.Send(r, c.node, c.srv.node, rpcHeaderBytes)
	srvStart := p.Now()
	c.srv.serve(p, 1, fn)
	c.srv.rec.Observe(telemetry.ClassMeta, 1, 0, sim.Duration(p.Now()-srvStart))
	c.net.Send(r, c.srv.node, c.node, rpcHeaderBytes)
	c.rec.Observe(telemetry.ClassMeta, 1, 0, sim.Duration(p.Now()-start))
}

// span opens the client's global-fs span on r.
func (c *Client) span(r *ioreq.Request) {
	r.Push(telemetry.LevelGlobalFS, "nfs:"+c.params.Name)
}

// Open implements fs.Interface.
func (c *Client) Open(r *ioreq.Request, path string, flags int) (fs.Handle, error) {
	c.span(r)
	defer r.Pop()
	var h fs.Handle
	var err error
	c.metaRPC(r, func() {
		h, err = c.srv.handle(r, path, flags)
		if err == nil && flags&fs.OTrunc != 0 {
			c.srv.gen[path]++
		}
	})
	if err != nil {
		return nil, err
	}
	if flags&fs.OTrunc != 0 {
		delete(c.attrCache, path)
		c.sizes[path] = 0
	}
	c.revalidate(path)
	return &remoteHandle{c: c, path: path, srvHandle: h}, nil
}

// Remove implements fs.Interface.
func (c *Client) Remove(r *ioreq.Request, path string) error {
	c.span(r)
	defer r.Pop()
	var err error
	c.metaRPC(r, func() {
		if h, ok := c.srv.handles[path]; ok {
			h.Close(r)
			delete(c.srv.handles, path)
		}
		err = c.srv.backend.Remove(r, path)
		c.srv.gen[path]++
	})
	delete(c.attrCache, path)
	c.invalidatePath(path)
	return err
}

// Stat implements fs.Interface, consulting the attribute cache first.
func (c *Client) Stat(r *ioreq.Request, path string) (fs.FileInfo, error) {
	if fi, ok := c.attrCache[path]; ok {
		c.Stats.AttrCacheHits++
		return fi, nil
	}
	c.span(r)
	defer r.Pop()
	var fi fs.FileInfo
	var err error
	c.metaRPC(r, func() { fi, err = c.srv.backend.Stat(r, path) })
	if err == nil {
		c.attrCache[path] = fi
	}
	return fi, err
}

// Sync implements fs.Interface: a COMMIT RPC plus a server-side sync.
func (c *Client) Sync(r *ioreq.Request) {
	c.span(r)
	defer r.Pop()
	c.metaRPC(r, func() { c.srv.backend.Sync(r) })
}

// LockUnlock charges the cost of count byte-range lock/unlock pairs.
// MPI-IO (ROMIO) brackets every operation on an NFS file with fcntl
// locks to get shared-file consistency; each pair is two synchronous
// RPCs. The mpiio layer calls this for mounts that support it.
func (c *Client) LockUnlock(r *ioreq.Request, count int64) {
	if count <= 0 {
		return
	}
	c.span(r)
	defer r.Pop()
	p := r.Proc()
	c.awaitServer(r)
	c.Stats.MetaRPCs += 2 * count
	c.srv.Stats.MetaRPCs += 2 * count
	c.rec.Add("lock_pairs", count)
	start := p.Now()
	// Two round trips per pair plus the lockd (NLM) processing cost,
	// pipelined with the op stream: charged serially on the client,
	// plus server CPU on a thread.
	p.Sleep(sim.Duration(count) * (4*c.net.Params().Latency + c.srv.params.LockCost))
	srvStart := p.Now()
	c.srv.serve(p, 2*count, nil)
	c.srv.rec.Observe(telemetry.ClassMeta, 2*count, 0, sim.Duration(p.Now()-srvStart))
	c.rec.Observe(telemetry.ClassMeta, 2*count, 0, sim.Duration(p.Now()-start))
}

type remoteHandle struct {
	c         *Client
	path      string
	srvHandle fs.Handle
	closed    bool
	direct    bool // bypass the client data cache (MPI-IO shared files)
}

func (h *remoteHandle) Path() string { return h.path }

// Size returns the client's view of the file size: the server size
// extended by any not-yet-flushed write-behind data.
func (h *remoteHandle) Size() int64 {
	if sz := h.c.sizes[h.path]; sz > h.srvHandle.Size() {
		return sz
	}
	return h.srvHandle.Size()
}

func (h *remoteHandle) check() {
	if h.closed {
		panic(fmt.Sprintf("nfs: use of closed handle %q", h.path))
	}
}

// rpcRead fetches a range in RSize chunks, each a synchronous RPC.
func (c *Client) rpcRead(r *ioreq.Request, srvHandle fs.Handle, off, n int64) int64 {
	p := r.Proc()
	var got int64
	for n > 0 {
		chunk := n
		if chunk > c.params.RSize {
			chunk = c.params.RSize
		}
		c.awaitServer(r)
		c.Stats.ReadRPCs++
		c.srv.Stats.ReadRPCs++
		c.net.Send(r, c.node, c.srv.node, rpcHeaderBytes)
		var nr int64
		srvStart := p.Now()
		c.srv.serve(p, 1, func() { nr = srvHandle.ReadAt(r, off, chunk) })
		c.srv.rec.Observe(telemetry.ClassRead, 1, nr, sim.Duration(p.Now()-srvStart))
		c.net.Send(r, c.srv.node, c.node, rpcHeaderBytes+nr)
		got += nr
		off += chunk
		n -= chunk
		if nr < chunk {
			break // EOF
		}
	}
	c.srv.Stats.BytesRead += got
	return got
}

// ReadAt implements fs.Handle: served from the client data cache when
// close-to-open validity allows, otherwise in RSize RPC chunks.
func (h *remoteHandle) ReadAt(r *ioreq.Request, off, n int64) int64 {
	h.check()
	c := h.c
	c.span(r)
	defer r.Pop()
	p := r.Proc()
	c.rec.Enter()
	start := p.Now()
	defer c.rec.Exit()
	if got, ok := h.cachedRead(r, off, n); ok {
		c.rec.Add("cache_read_bytes", got)
		c.rec.Observe(telemetry.ClassRead, 1, got, sim.Duration(p.Now()-start))
		return got
	}
	got := c.rpcRead(r, h.srvHandle, off, n)
	c.Stats.BytesRead += got
	c.rec.Observe(telemetry.ClassRead, 1, got, sim.Duration(p.Now()-start))
	return got
}

// rpcWriteUnstable pushes a range in WSize chunks of UNSTABLE write
// RPCs (no commit — callers decide when to commit).
func (c *Client) rpcWriteUnstable(r *ioreq.Request, srvHandle fs.Handle, off, n int64) int64 {
	p := r.Proc()
	var put int64
	for n > 0 {
		chunk := n
		if chunk > c.params.WSize {
			chunk = c.params.WSize
		}
		c.awaitServer(r)
		c.Stats.WriteRPCs++
		c.srv.Stats.WriteRPCs++
		c.net.Send(r, c.node, c.srv.node, rpcHeaderBytes+chunk)
		srvStart := p.Now()
		c.srv.serve(p, 1, func() { srvHandle.WriteAt(r, off, chunk) })
		c.srv.rec.Observe(telemetry.ClassWrite, 1, chunk, sim.Duration(p.Now()-srvStart))
		c.net.Send(r, c.srv.node, c.node, rpcHeaderBytes)
		put += chunk
		off += chunk
		n -= chunk
	}
	c.srv.Stats.BytesWritten += put
	return put
}

// WriteAt implements fs.Handle. Buffered handles absorb the write
// into the client cache (write-behind); direct handles issue
// synchronous RPCs with a stable commit per call, as MPI-IO requires
// on NFS.
func (h *remoteHandle) WriteAt(r *ioreq.Request, off, n int64) int64 {
	h.check()
	c := h.c
	c.span(r)
	defer r.Pop()
	p := r.Proc()
	c.rec.Enter()
	start := p.Now()
	defer c.rec.Exit()
	if put, ok := h.cachedWrite(r, off, n); ok {
		c.rec.Add("cache_write_bytes", put)
		c.rec.Observe(telemetry.ClassWrite, 1, put, sim.Duration(p.Now()-start))
		return put
	}
	put := c.rpcWriteUnstable(r, h.srvHandle, off, n)
	c.srv.commit(p, 1)
	c.srv.gen[h.path]++
	c.Stats.BytesWritten += put
	delete(c.attrCache, h.path)
	c.rec.Observe(telemetry.ClassWrite, 1, put, sim.Duration(p.Now()-start))
	return put
}

// ReadVec implements fs.Handle. Many small operations are batched:
// the wire carries one aggregate request and one aggregate response,
// while per-operation latency and server CPU are charged for every
// element — so op-count penalties survive without one simulation
// event per operation.
func (h *remoteHandle) ReadVec(r *ioreq.Request, vecs []fs.IOVec) int64 {
	h.check()
	if len(vecs) == 0 {
		return 0
	}
	c := h.c
	c.span(r)
	defer r.Pop()
	p := r.Proc()
	c.rec.Enter()
	start := p.Now()
	defer c.rec.Exit()
	if c.dataCache != nil && !h.direct {
		var got int64
		for _, v := range vecs {
			n, ok := h.cachedRead(r, v.Off, v.Len)
			if !ok {
				n = c.rpcRead(r, h.srvHandle, v.Off, v.Len)
				c.Stats.BytesRead += n
			}
			got += n
		}
		c.rec.Observe(telemetry.ClassRead, int64(len(vecs)), got, sim.Duration(p.Now()-start))
		return got
	}
	count := int64(len(vecs))
	c.awaitServer(r)
	c.Stats.ReadRPCs += count
	c.srv.Stats.ReadRPCs += count
	// Request stream: headers only (one per op).
	c.net.Send(r, c.node, c.srv.node, rpcHeaderBytes*count)
	// Per-RPC round-trip latencies beyond the first pipeline poorly for
	// synchronous clients: charge them serially.
	extra := count - 1
	p.Sleep(sim.Duration(extra) * 2 * c.net.Params().Latency)
	var got int64
	srvStart := p.Now()
	c.srv.serve(p, count, func() { got = h.srvHandle.ReadVec(r, vecs) })
	c.srv.rec.Observe(telemetry.ClassRead, count, got, sim.Duration(p.Now()-srvStart))
	c.net.Send(r, c.srv.node, c.node, rpcHeaderBytes*count+got)
	c.Stats.BytesRead += got
	c.srv.Stats.BytesRead += got
	c.rec.Observe(telemetry.ClassRead, count, got, sim.Duration(p.Now()-start))
	return got
}

// WriteVec implements fs.Handle; see ReadVec for the batching model.
func (h *remoteHandle) WriteVec(r *ioreq.Request, vecs []fs.IOVec) int64 {
	h.check()
	if len(vecs) == 0 {
		return 0
	}
	c := h.c
	c.span(r)
	defer r.Pop()
	p := r.Proc()
	c.rec.Enter()
	start := p.Now()
	defer c.rec.Exit()
	if c.dataCache != nil && !h.direct {
		var put int64
		for _, v := range vecs {
			n, ok := h.cachedWrite(r, v.Off, v.Len)
			if !ok {
				n = c.rpcWriteUnstable(r, h.srvHandle, v.Off, v.Len)
				c.srv.commit(p, 1)
				c.srv.gen[h.path]++
				c.Stats.BytesWritten += n
			}
			put += n
		}
		c.rec.Observe(telemetry.ClassWrite, int64(len(vecs)), put, sim.Duration(p.Now()-start))
		return put
	}
	count := int64(len(vecs))
	var total int64
	for _, v := range vecs {
		total += v.Len
	}
	c.awaitServer(r)
	c.Stats.WriteRPCs += count
	c.srv.Stats.WriteRPCs += count
	c.net.Send(r, c.node, c.srv.node, rpcHeaderBytes*count+total)
	extra := count - 1
	p.Sleep(sim.Duration(extra) * 2 * c.net.Params().Latency)
	var put int64
	srvStart := p.Now()
	c.srv.serve(p, count, func() { put = h.srvHandle.WriteVec(r, vecs) })
	c.srv.rec.Observe(telemetry.ClassWrite, count, put, sim.Duration(p.Now()-srvStart))
	c.srv.commit(p, count)
	c.srv.gen[h.path]++
	c.net.Send(r, c.srv.node, c.node, rpcHeaderBytes*count)
	c.Stats.BytesWritten += put
	c.srv.Stats.BytesWritten += put
	delete(c.attrCache, h.path)
	c.rec.Observe(telemetry.ClassWrite, count, put, sim.Duration(p.Now()-start))
	return put
}

// Sync implements fs.Handle: flush write-behind data, then COMMIT.
func (h *remoteHandle) Sync(r *ioreq.Request) {
	h.check()
	h.c.span(r)
	defer r.Pop()
	h.flushAndCommit(r)
	h.c.metaRPC(r, func() { h.srvHandle.Sync(r) })
}

// Close implements fs.Handle. Per close-to-open consistency the
// client flushes write-behind data and commits; the server-side
// handle stays open for other clients (it is reference-counted by
// path on the server).
func (h *remoteHandle) Close(r *ioreq.Request) {
	h.check()
	h.c.span(r)
	defer r.Pop()
	h.flushAndCommit(r)
	h.closed = true
	h.c.metaRPC(r, nil)
}
