package nfs

import (
	"testing"

	"ioeval/internal/fs"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
)

// cachedRig builds a rig whose clients have a data cache.
func cachedRig(nClients int, clientCacheBytes int64) *rig {
	r := newRig(nClients, 4*gb)
	// Rebuild clients with caching enabled.
	for i, c := range r.clients {
		params := c.params
		params.CacheBytes = clientCacheBytes
		r.clients[i] = NewClient(r.eng, params, c.node, r.net, r.srv)
	}
	return r
}

func TestClientCacheRereadIsMemorySpeed(t *testing.T) {
	r := cachedRig(1, 512*mb)
	run(t, r.eng, func(p *sim.Proc) {
		c := r.clients[0]
		h, _ := c.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.ORead|fs.OCreate)
		h.WriteAt(ioreq.Writer(p), 0, 64*mb)
		t0 := p.Now()
		h.ReadAt(ioreq.Reader(p), 0, 64*mb) // own writes: cached
		d := sim.Duration(p.Now() - t0)
		h.Close(ioreq.Meta(p))
		// 64 MB at memory-copy speed ≈ 26 ms; the wire would need ~0.55 s.
		if d > 100*sim.Millisecond {
			t.Fatalf("cached re-read took %v, want memory speed", d)
		}
	})
	if r.clients[0].Stats.ReadRPCs != 0 {
		t.Fatalf("cached re-read issued %d read RPCs", r.clients[0].Stats.ReadRPCs)
	}
}

func TestWriteBehindDefersRPCs(t *testing.T) {
	r := cachedRig(1, 512*mb)
	run(t, r.eng, func(p *sim.Proc) {
		c := r.clients[0]
		h, _ := c.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.OCreate)
		h.WriteAt(ioreq.Writer(p), 0, 8*mb) // absorbed by write-behind
		if c.Stats.WriteRPCs != 0 {
			t.Errorf("write-behind issued %d RPCs before flush", c.Stats.WriteRPCs)
		}
		if r.srv.Stats.BytesWritten != 0 {
			t.Errorf("server saw %d bytes before flush", r.srv.Stats.BytesWritten)
		}
		h.Close(ioreq.Meta(p)) // close-to-open: flush
		if r.srv.Stats.BytesWritten != 8*mb {
			t.Errorf("server saw %d bytes after close, want 8MB", r.srv.Stats.BytesWritten)
		}
	})
}

func TestCloseToOpenStaleness(t *testing.T) {
	// Client 0 caches the file; client 1 overwrites it; client 0 sees
	// stale data until it re-opens (then its cache is invalidated and
	// the read goes to the server).
	r := cachedRig(2, 512*mb)
	run(t, r.eng, func(p *sim.Proc) {
		c0, c1 := r.clients[0], r.clients[1]
		h0, _ := c0.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.ORead|fs.OCreate)
		h0.WriteAt(ioreq.Writer(p), 0, 4*mb)
		h0.Sync(ioreq.Meta(p)) // make it visible server-side

		// Client 0 reads: now cached.
		h0.ReadAt(ioreq.Reader(p), 0, 4*mb)
		rpc0 := c0.Stats.ReadRPCs

		// Client 1 rewrites the file through the server.
		h1, _ := c1.Open(ioreq.Meta(p), "/f", fs.OWrite)
		h1.WriteAt(ioreq.Writer(p), 0, 4*mb)
		h1.Close(ioreq.Meta(p))

		// Before re-open: client 0 still serves from its (stale) cache.
		h0.ReadAt(ioreq.Reader(p), 0, 4*mb)
		if c0.Stats.ReadRPCs != rpc0 {
			t.Errorf("read before re-open went to the server (close-to-open allows staleness)")
		}
		h0.Close(ioreq.Meta(p))

		// After re-open: revalidation sees the new generation and
		// invalidates; the read must hit the server.
		h0b, _ := c0.Open(ioreq.Meta(p), "/f", fs.ORead)
		h0b.ReadAt(ioreq.Reader(p), 0, 4*mb)
		if c0.Stats.ReadRPCs == rpc0 {
			t.Errorf("read after re-open did not revalidate against the server")
		}
		h0b.Close(ioreq.Meta(p))
	})
}

func TestDirectIOBypassesCache(t *testing.T) {
	r := cachedRig(1, 512*mb)
	run(t, r.eng, func(p *sim.Proc) {
		c := r.clients[0]
		h, _ := c.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.ORead|fs.OCreate)
		h.(*remoteHandle).SetDirectIO(true)
		h.WriteAt(ioreq.Writer(p), 0, 4*mb)
		if c.Stats.WriteRPCs == 0 {
			t.Error("direct write did not issue RPCs")
		}
		rpc0 := c.Stats.ReadRPCs
		h.ReadAt(ioreq.Reader(p), 0, 4*mb)
		if c.Stats.ReadRPCs == rpc0 {
			t.Error("direct read did not issue RPCs")
		}
		h.Close(ioreq.Meta(p))
	})
}

func TestWriteBehindSizeVisibleBeforeFlush(t *testing.T) {
	r := cachedRig(1, 512*mb)
	run(t, r.eng, func(p *sim.Proc) {
		c := r.clients[0]
		h, _ := c.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.ORead|fs.OCreate)
		h.WriteAt(ioreq.Writer(p), 0, 3*mb)
		if h.Size() != 3*mb {
			t.Errorf("client size view = %d before flush", h.Size())
		}
		if n := h.ReadAt(ioreq.Reader(p), 0, 4*mb); n != 3*mb {
			t.Errorf("read %d of buffered data", n)
		}
		h.Close(ioreq.Meta(p))
	})
}

func TestDropCachesForcesRefetch(t *testing.T) {
	r := cachedRig(1, 512*mb)
	run(t, r.eng, func(p *sim.Proc) {
		c := r.clients[0]
		h, _ := c.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.ORead|fs.OCreate)
		h.WriteAt(ioreq.Writer(p), 0, 4*mb)
		h.Sync(ioreq.Meta(p))
		h.ReadAt(ioreq.Reader(p), 0, 4*mb)
		c.DropCaches(ioreq.Meta(p))
		rpc0 := c.Stats.ReadRPCs
		h.ReadAt(ioreq.Reader(p), 0, 4*mb)
		if c.Stats.ReadRPCs == rpc0 {
			t.Error("read after DropCaches did not refetch")
		}
		h.Close(ioreq.Meta(p))
	})
}

func TestCacheThrashWhenFileExceedsBudget(t *testing.T) {
	// File twice the client cache: sequential re-reads keep missing
	// (the characterization stress rule works at the client too).
	r := cachedRig(1, 64*mb)
	run(t, r.eng, func(p *sim.Proc) {
		c := r.clients[0]
		h, _ := c.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.ORead|fs.OCreate)
		for off := int64(0); off < 128*mb; off += 8 * mb {
			h.WriteAt(ioreq.Writer(p), off, 8*mb)
		}
		h.Sync(ioreq.Meta(p))
		rpc0 := c.Stats.ReadRPCs
		for off := int64(0); off < 128*mb; off += 8 * mb {
			h.ReadAt(ioreq.Reader(p), off, 8*mb)
		}
		if c.Stats.ReadRPCs == rpc0 {
			t.Error("2x-cache file served entirely from client cache")
		}
		h.Close(ioreq.Meta(p))
	})
}
