package core

import (
	"fmt"

	"ioeval/internal/cluster"
	"ioeval/internal/mpiio"
	"ioeval/internal/sim"
	"ioeval/internal/telemetry"
	"ioeval/internal/trace"
	"ioeval/internal/workload"
)

// Measurement is one application-side observation: the transfer rate
// the application achieved for an operation type, with the access
// pattern metadata the table search needs (the inputs of Fig. 10).
type Measurement struct {
	Op        OpType
	BlockSize int64
	Access    AccessType
	Mode      trace.AccessMode
	Rate      float64 // aggregate bytes/second across ranks
	Ops       int64
	Bytes     int64
}

// MeasurementsFromTrace derives per-operation-type measurements from
// a captured trace: for each direction, the dominant block size and
// access mode, and the aggregate rate (total bytes over the slowest
// rank's cumulative time in that direction — ranks run in parallel).
func MeasurementsFromTrace(tr *trace.Tracer, access AccessType) []Measurement {
	type acc struct {
		bytes   int64
		ops     int64
		perRank map[int]sim.Duration
		sizes   map[int64]int64
		modes   map[trace.AccessMode]int64
	}
	newAcc := func() *acc {
		return &acc{perRank: map[int]sim.Duration{}, sizes: map[int64]int64{}, modes: map[trace.AccessMode]int64{}}
	}
	accs := map[OpType]*acc{Read: newAcc(), Write: newAcc()}

	ranks := map[int]bool{}
	for _, ev := range tr.Events() {
		ranks[ev.Rank] = true
	}
	for rank := range ranks {
		for _, ph := range tr.Phases(rank) {
			op := Write
			if ph.Kind == mpiio.OpRead {
				op = Read
			}
			a := accs[op]
			a.bytes += ph.Bytes
			a.ops += ph.Ops
			a.perRank[rank] += ph.Duration()
			if ph.Ops > 0 {
				a.sizes[ph.Bytes/ph.Ops] += ph.Ops
			}
			a.modes[ph.Mode] += ph.Ops
		}
	}

	var out []Measurement
	for _, op := range []OpType{Write, Read} {
		a := accs[op]
		if a.ops == 0 {
			continue
		}
		var worst sim.Duration
		for _, d := range a.perRank {
			if d > worst {
				worst = d
			}
		}
		m := Measurement{
			Op:        op,
			Access:    access,
			BlockSize: dominantKey(a.sizes),
			Mode:      dominantMode(a.modes),
			Ops:       a.ops,
			Bytes:     a.bytes,
		}
		if s := worst.Seconds(); s > 0 {
			m.Rate = float64(a.bytes) / s
		}
		out = append(out, m)
	}
	return out
}

func dominantKey(m map[int64]int64) int64 {
	var best int64
	var bestN int64 = -1
	for k, n := range m {
		if n > bestN || (n == bestN && k > best) {
			best, bestN = k, n
		}
	}
	return best
}

func dominantMode(m map[trace.AccessMode]int64) trace.AccessMode {
	best := trace.Sequential
	var bestN int64 = -1
	for k, n := range m {
		if n > bestN {
			best, bestN = k, n
		}
	}
	return best
}

// UsedRow is one row of the used-percentage table (Tables III, IV,
// VI, VII, IX, X, XI): how much of a level's characterized capacity
// the application obtained.
type UsedRow struct {
	Level         Level
	Op            OpType
	BlockSize     int64
	Mode          trace.AccessMode
	MeasuredRate  float64
	CharRate      float64
	LookupMode    trace.AccessMode // mode actually found in the table
	UsedPct       float64
	CharAvailable bool
}

// UsedTable implements the generation algorithm of Fig. 10: for every
// application measurement and every characterized I/O-path level,
// search the level's performance table (Fig. 11) and compute the used
// percentage. Values above 100% mean the application was not limited
// by that level (characterization stresses a single path; the
// application may exploit caches or parallelism) — then the next
// level in the path explains the behaviour.
func UsedTable(ms []Measurement, ch *Characterization) []UsedRow {
	var out []UsedRow
	for _, m := range ms {
		for _, level := range Levels() {
			t := ch.Tables[level]
			if t == nil {
				continue
			}
			row := UsedRow{
				Level:        level,
				Op:           m.Op,
				BlockSize:    m.BlockSize,
				Mode:         m.Mode,
				MeasuredRate: m.Rate,
			}
			// Levels characterized for global access only (library,
			// NFS) are searched with Global regardless of where the
			// application ran; the local-FS level with Local.
			access := Global
			if level == LevelLocalFS {
				access = Local
			}
			if rate, usedMode, ok := t.Lookup(m.Op, m.BlockSize, access, m.Mode); ok && rate > 0 {
				row.CharRate = rate
				row.LookupMode = usedMode
				row.UsedPct = m.Rate / rate * 100
				row.CharAvailable = true
			}
			out = append(out, row)
		}
	}
	return out
}

// Evaluation is the output of the methodology's third phase for one
// application on one configuration. It is a read-only report surface:
// every field is reached through an accessor, and an Evaluation never
// changes once produced — reports built from it cannot drift.
type Evaluation struct {
	appName  string
	config   string
	scenario string // fault scenario the run was taken under ("" = healthy)
	result   workload.Result
	profile  trace.Profile
	meas     []Measurement
	used     []UsedRow
	trace    *trace.Tracer // the captured trace (timelines, phases)

	// Telemetry plane: final per-component snapshots and per-phase
	// interval deltas (nil on clusters without a telemetry registry).
	components []telemetry.Snapshot
	phases     []telemetry.PhaseInterval

	// Span plane: the per-request path profile aggregated over the run
	// (zero value on clusters without a span collector).
	path telemetry.PathProfile
}

// AppName returns the evaluated application's name.
func (e *Evaluation) AppName() string { return e.appName }

// Config returns the characterized configuration's name.
func (e *Evaluation) Config() string { return e.config }

// Scenario returns the fault scenario the run was taken under, or ""
// for a healthy run.
func (e *Evaluation) Scenario() string { return e.scenario }

// Result returns the workload outcome (times, bytes, phase rates).
func (e *Evaluation) Result() workload.Result { return e.result }

// Profile returns the application characterization (Tables II/V/VIII).
func (e *Evaluation) Profile() trace.Profile { return e.profile }

// Measurements returns the application-side rate observations.
func (e *Evaluation) Measurements() []Measurement { return e.meas }

// Used returns the used-percentage rows (measured vs. characterized
// per I/O-path level).
func (e *Evaluation) Used() []UsedRow { return e.used }

// Trace returns the captured trace.
func (e *Evaluation) Trace() *trace.Tracer { return e.trace }

// Components returns the final per-component telemetry snapshots.
func (e *Evaluation) Components() []telemetry.Snapshot { return e.components }

// Phases returns the per-phase telemetry interval deltas.
func (e *Evaluation) Phases() []telemetry.PhaseInterval { return e.phases }

// PathProfile returns the run's span aggregation (per-request
// time-in-level attribution).
func (e *Evaluation) PathProfile() telemetry.PathProfile { return e.path }

// evaluate runs the application on the cluster under a tracer and
// produces the evaluation against the configuration's
// characterization. The cluster must be fresh (unused engine).
// Reached through Session.Evaluate (the exported surface).
func evaluate(c *cluster.Cluster, app workload.App, ch *Characterization) (*Evaluation, error) {
	return evaluateScenario(c, app, ch, "")
}

// evaluateScenario is evaluate for a run taken under a named fault
// scenario: the caller has already armed a fault plan on the cluster
// (fault.Apply), and the evaluation is labeled with the scenario so
// degraded-mode rows are distinguishable from healthy ones in every
// report. Reached through Session.EvaluateScenario.
func evaluateScenario(c *cluster.Cluster, app workload.App, ch *Characterization, scenario string) (*Evaluation, error) {
	tr := trace.New()
	var runTracer mpiio.Tracer = tr
	var ps *trace.PhaseSnapshotter
	if c.Telemetry != nil {
		// Rank 0's phase boundaries drive the per-phase snapshots —
		// BT-IO and MadBench phases are globally synchronized, so one
		// observer rank suffices.
		ps = trace.NewPhaseSnapshotter(c.Eng, c.Telemetry, tr, 0)
		runTracer = ps
	}
	// The span collector may hold characterization-phase spans; the
	// evaluation profile covers exactly this run.
	c.Path.Reset()
	res, err := app.Run(c, runTracer)
	if err != nil {
		return nil, fmt.Errorf("evaluate %s: %w", app.Name(), err)
	}
	ms := MeasurementsFromTrace(tr, Global)
	ev := &Evaluation{
		appName:  app.Name(),
		config:   ch.Config,
		scenario: scenario,
		result:   res,
		profile:  tr.Profile(),
		meas:     ms,
		used:     UsedTable(ms, ch),
		trace:    tr,
	}
	if ps != nil {
		ev.phases = ps.Finish()
		ev.components = c.Telemetry.Snapshots()
	}
	ev.path = c.Path.Profile()
	return ev, nil
}

// TelemetryReport packages the evaluation as a structured, exportable
// report: the final per-component counters, one LevelRate row per
// used-table entry (MeasuredRate/CharRate/UsedPct copied verbatim, so
// the JSON export and the used-percentage analysis cannot diverge),
// and the per-phase interval snapshots.
func (e *Evaluation) TelemetryReport() *telemetry.Report {
	r := &telemetry.Report{
		App:        e.appName,
		Config:     e.config,
		At:         sim.Time(e.result.ExecTime),
		Components: e.components,
		Phases:     e.phases,
	}
	for _, u := range e.used {
		r.Levels = append(r.Levels, telemetry.LevelRate{
			Level:         u.Level.TelemetryLevel(),
			Op:            u.Op.String(),
			BlockSize:     u.BlockSize,
			Mode:          u.Mode.String(),
			MeasuredRate:  u.MeasuredRate,
			CharRate:      u.CharRate,
			UsedPct:       u.UsedPct,
			CharAvailable: u.CharAvailable,
		})
	}
	return r
}

// IOPS returns the application-level I/O operations per second of
// I/O time (one of the paper's five evaluation metrics).
func (e *Evaluation) IOPS() float64 {
	d := e.result.IOTime.Seconds()
	if d <= 0 {
		return 0
	}
	return float64(e.profile.NumReads+e.profile.NumWrites) / d
}

// MeanLatency returns the mean per-operation latency over the run's
// I/O time.
func (e *Evaluation) MeanLatency() sim.Duration {
	ops := e.profile.NumReads + e.profile.NumWrites
	if ops == 0 {
		return 0
	}
	return e.result.IOTime / sim.Duration(ops)
}

// UsedFor returns the used percentage for (level, op), or -1 when the
// evaluation has no such row.
func (e *Evaluation) UsedFor(level Level, op OpType) float64 {
	for _, u := range e.used {
		if u.Level == level && u.Op == op && u.CharAvailable {
			return u.UsedPct
		}
	}
	return -1
}
