package core

import (
	"sync"
	"testing"

	"ioeval/internal/cluster"
	"ioeval/internal/telemetry"
	"ioeval/internal/workload/btio"
)

// A real BT-IO run: the per-phase interval deltas must tile the run
// and, component by component, sum exactly to the final counters —
// the invariant that makes per-phase rates trustworthy.
func TestEvaluatePhaseDeltasSumToTotals(t *testing.T) {
	c := cluster.Aohyper(cluster.RAID5)
	quick := btio.Class{Name: "Q", N: 64, Steps: 20, WriteInterval: 5}
	app := btio.New(btio.Config{Class: quick, Procs: 4, Subtype: btio.Full})
	ev, err := evaluate(c, app, &Characterization{Config: "test"})
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	if len(ev.Phases()) < 2 {
		t.Fatalf("phases = %d, want several (BT-IO dumps + read-back)", len(ev.Phases()))
	}
	if len(ev.Components()) == 0 {
		t.Fatal("no component snapshots")
	}

	// Contiguous tiling from t=0.
	if ev.Phases()[0].Start != 0 {
		t.Fatalf("first phase starts at %v", ev.Phases()[0].Start)
	}
	for i := 1; i < len(ev.Phases()); i++ {
		if ev.Phases()[i].Start != ev.Phases()[i-1].End {
			t.Fatalf("gap before phase %d: %v != %v", i, ev.Phases()[i-1].End, ev.Phases()[i].Start)
		}
	}

	// Sum deltas per component and compare to the final snapshots.
	type tot struct{ readOps, readBytes, writeOps, writeBytes, metaOps int64 }
	sums := map[string]*tot{}
	for _, ph := range ev.Phases() {
		for _, s := range ph.Snaps {
			c := s.Counters
			for _, o := range []telemetry.OpCounters{c.Read, c.Write, c.Meta} {
				if o.Ops < 0 || o.Bytes < 0 || o.Busy < 0 || o.Lat.Total() < 0 {
					t.Fatalf("negative counters in phase %q component %q: %+v", ph.Label, s.Component, c)
				}
			}
			a := sums[s.Component]
			if a == nil {
				a = &tot{}
				sums[s.Component] = a
			}
			a.readOps += c.Read.Ops
			a.readBytes += c.Read.Bytes
			a.writeOps += c.Write.Ops
			a.writeBytes += c.Write.Bytes
			a.metaOps += c.Meta.Ops
		}
	}
	for _, s := range ev.Components() {
		a := sums[s.Component]
		if a == nil {
			t.Fatalf("component %q missing from phase snapshots", s.Component)
		}
		c := s.Counters
		if a.readOps != c.Read.Ops || a.readBytes != c.Read.Bytes ||
			a.writeOps != c.Write.Ops || a.writeBytes != c.Write.Bytes ||
			a.metaOps != c.Meta.Ops {
			t.Fatalf("component %q: phase deltas %+v do not sum to totals read=%+v write=%+v meta=%+v",
				s.Component, *a, c.Read, c.Write, c.Meta)
		}
	}

	// The library-level snapshot must reflect the application's I/O.
	var lib *telemetry.Snapshot
	for i := range ev.Components() {
		if ev.Components()[i].Level == telemetry.LevelLibrary {
			lib = &ev.Components()[i]
		}
	}
	if lib == nil {
		t.Fatal("no library-level component")
	}
	if lib.Counters.Write.Bytes != ev.Result().BytesWritten {
		t.Fatalf("library write bytes %d != result %d", lib.Counters.Write.Bytes, ev.Result().BytesWritten)
	}
	if lib.Counters.Read.Bytes != ev.Result().BytesRead {
		t.Fatalf("library read bytes %d != result %d", lib.Counters.Read.Bytes, ev.Result().BytesRead)
	}
}

// The JSON report's per-level rows must carry exactly the numbers the
// used-percentage analysis computed (the report cannot diverge from
// the evaluation).
func TestTelemetryReportLevelsMatchUsed(t *testing.T) {
	build := func() *cluster.Cluster { return cluster.Aohyper(cluster.RAID5) }
	ch, err := characterize(build, quickCharCfg(), nil)
	if err != nil {
		t.Fatalf("characterize: %v", err)
	}
	quick := btio.Class{Name: "Q", N: 64, Steps: 20, WriteInterval: 5}
	ev, err := evaluate(build(), btio.New(btio.Config{Class: quick, Procs: 4, Subtype: btio.Full}), ch)
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	rep := ev.TelemetryReport()
	if len(rep.Levels) != len(ev.Used()) {
		t.Fatalf("levels = %d, used rows = %d", len(rep.Levels), len(ev.Used()))
	}
	for i, u := range ev.Used() {
		l := rep.Levels[i]
		if l.Level != u.Level.TelemetryLevel() || l.Op != u.Op.String() ||
			l.BlockSize != u.BlockSize || l.Mode != u.Mode.String() ||
			l.MeasuredRate != u.MeasuredRate || l.CharRate != u.CharRate ||
			l.UsedPct != u.UsedPct || l.CharAvailable != u.CharAvailable {
			t.Fatalf("level row %d = %+v diverges from used row %+v", i, l, u)
		}
	}
	if len(rep.Components) == 0 || len(rep.Phases) == 0 {
		t.Fatalf("report incomplete: %d components, %d phases", len(rep.Components), len(rep.Phases))
	}
}

func TestLevelTelemetryMapping(t *testing.T) {
	want := map[Level]telemetry.Level{
		LevelIOLib:   telemetry.LevelLibrary,
		LevelNFS:     telemetry.LevelGlobalFS,
		LevelLocalFS: telemetry.LevelLocalFS,
	}
	for l, tl := range want {
		if got := l.TelemetryLevel(); got != tl {
			t.Fatalf("%v maps to %v, want %v", l, got, tl)
		}
	}
}

// Characterization memoization must be safe under concurrent first
// use (run with -race): exactly one characterization is computed and
// every caller sees the same pointer.
func TestSessionCharacterizationConcurrent(t *testing.T) {
	cfg := quickCharCfg()
	cfg.FSBlockSizes = cfg.FSBlockSizes[:1]
	cfg.FSModes = cfg.FSModes[:2]
	cfg.LibBlockSizes = cfg.LibBlockSizes[:1]
	m := NewSession(
		func() *cluster.Cluster { return cluster.Aohyper(cluster.RAID5) },
		WithCharacterizeConfig(cfg),
	)
	const n = 8
	chans := make([]*Characterization, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ch, err := m.Characterization()
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			chans[i] = ch
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if chans[i] != chans[0] {
			t.Fatalf("goroutine %d got a different characterization", i)
		}
	}
}
