package core

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"ioeval/internal/cluster"
	"ioeval/internal/fault"
	"ioeval/internal/nfs"
	"ioeval/internal/sim"
	"ioeval/internal/workload/btio"
	"ioeval/internal/workload/madbench"
)

func quickGoldenBTIO() *btio.App {
	quick := btio.Class{Name: "Q", N: 64, Steps: 5, WriteInterval: 5}
	return btio.New(btio.Config{Class: quick, Procs: 4, Subtype: btio.Full})
}

// pathReportJSON marshals a PathReport the way the export surfaces do.
func pathReportJSON(t *testing.T, pr PathReport) []byte {
	t.Helper()
	b, err := json.MarshalIndent(pr, "", "  ")
	if err != nil {
		t.Fatalf("marshal path report: %v", err)
	}
	return append(b, '\n')
}

// TestPathReportGolden pins the healthy-run span report: the full
// per-level profile, the slowest-level verdict, and the conservation
// numbers on a fixed cluster and workload. Simulation and JSON
// rendering are deterministic, so any diff is a real change; inspect,
// then rerun with -update to accept.
func TestPathReportGolden(t *testing.T) {
	ch, err := characterize(goldenCluster, goldenCharCfg(), nil)
	if err != nil {
		t.Fatalf("characterize: %v", err)
	}
	ev, err := evaluate(goldenCluster(), quickGoldenBTIO(), ch)
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	pr := ev.PathReport()
	if !pr.HasSpans {
		t.Fatal("no data spans recorded")
	}
	if !pr.Conserved {
		t.Errorf("conservation violated: root spans %v vs trace I/O %v (drift %v)",
			pr.TopBusy, pr.TraceIO, pr.Drift)
	}
	// Acceptance: the span verdict must name the same binding level as
	// the used-% inference on the BT-IO scenario.
	if !pr.Agree {
		t.Errorf("span verdict %q disagrees with used-%% verdict %q",
			pr.SlowestName, pr.UsedSlowestName)
	}
	compareGolden(t, filepath.Join("testdata", "path_report.golden.json"), pathReportJSON(t, pr))
}

// writeThroughGolden is goldenCluster with write-through page caches,
// so application writes reach the RAID array inside the issuing
// request instead of lingering dirty in the 192 MB I/O cache — the
// quick fixture workload is far too small to force evictions, and
// without array traffic a disk failure cannot mark any request.
func writeThroughGolden() *cluster.Cluster {
	return cluster.New(cluster.Config{
		Name:         "golden-wt",
		ComputeNodes: 2,
		NodeRAM:      256 * mb,
		NodeDiskCap:  10 * gb,
		NodeDiskRate: 90e6,
		IONodeRAM:    256 * mb,
		IODiskCap:    20 * gb,
		IODiskRate:   100e6,
		Org:          cluster.RAID5,
		StripeUnit:   256 * kb,
		RAID5Disks:   5,
		WriteThrough: true,
		NFSServer:    nfs.DefaultServerParams("golden-nfs"),
		NFSClient:    nfs.DefaultClientParams("golden-nfs"),
	})
}

// TestPathReportDegradedGolden pins the span report of a RAID-5
// disk-failure run: the conservation invariant must hold under an
// armed fault plan (degraded reads fork reconstruction requests whose
// spans still nest), and the profile must carry degraded-path tags.
func TestPathReportDegradedGolden(t *testing.T) {
	plan, err := fault.Builtin("disk-fail")
	if err != nil {
		t.Fatal(err)
	}
	// Land the failure inside the short fixture run's I/O window.
	plan.Events[0].At = 100 * sim.Millisecond
	sess := NewSession(writeThroughGolden,
		WithCharacterizeConfig(goldenCharCfg()),
		WithFaultPlan(plan),
	)
	rep, err := sess.Run(quickGoldenBTIO())
	if err != nil {
		t.Fatalf("session run: %v", err)
	}
	if rep.Degraded == nil {
		t.Fatal("no degraded evaluation")
	}
	pr := rep.Degraded.PathReport()
	if !pr.HasSpans {
		t.Fatal("no data spans recorded")
	}
	if !pr.Conserved {
		t.Errorf("conservation violated under fault plan: root spans %v vs trace I/O %v (drift %v)",
			pr.TopBusy, pr.TraceIO, pr.Drift)
	}
	if pr.Profile.Tags["raid_degraded"] == 0 {
		t.Errorf("no raid_degraded tags in degraded profile: %v", pr.Profile.Tags)
	}
	compareGolden(t, filepath.Join("testdata", "path_report_degraded.golden.json"), pathReportJSON(t, pr))
}

// TestPathReportMadBench checks the acceptance criteria on the second
// workload: conservation and verdict agreement on a MadBench2 run.
func TestPathReportMadBench(t *testing.T) {
	ch, err := characterize(goldenCluster, goldenCharCfg(), nil)
	if err != nil {
		t.Fatalf("characterize: %v", err)
	}
	app := madbench.New(madbench.Config{Procs: 4, KPix: 4, Bins: 4, FileType: madbench.Shared})
	ev, err := evaluate(goldenCluster(), app, ch)
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	pr := ev.PathReport()
	if !pr.HasSpans {
		t.Fatal("no data spans recorded")
	}
	if !pr.Conserved {
		t.Errorf("conservation violated: root spans %v vs trace I/O %v (drift %v)",
			pr.TopBusy, pr.TraceIO, pr.Drift)
	}
	if !pr.Agree {
		t.Errorf("span verdict %q disagrees with used-%% verdict %q",
			pr.SlowestName, pr.UsedSlowestName)
	}
}
