package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"ioeval/internal/sim"
	"ioeval/internal/telemetry"
)

// conservationTolerance bounds the allowed difference between summed
// root-span wall time and summed trace I/O time: 1 ns (1e-9 s). The
// two are stamped on the same simulated clock reads, so any larger
// drift means a layer opened or closed a span outside its trace
// window — a bug, not rounding.
const conservationTolerance = sim.Duration(1)

// usedTieMargin is the relative band within which two used-% rows are
// considered tied. The used-% inference cannot separate levels whose
// characterized rates are bound by the same resource (an MPI-IO
// characterization on a network-bound cluster tracks the network-FS
// row within a fraction of a percent); inside the band the span
// verdict is the tie-breaker, not a contradiction.
const usedTieMargin = 0.98

// PathLevelSelf is one characterized level's span-measured self time.
type PathLevelSelf struct {
	Level  Level        `json:"-"`
	Name   string       `json:"level"`
	SelfNS sim.Duration `json:"self_ns"`
}

// PathReportFormat and PathReportVersion are the path report's
// versioned envelope when exported standalone. WriteJSON stamps them
// and ReadPathReportJSON checks them; a PathReport nested inside
// another document (a sweep cell) stays unstamped — the outer
// envelope covers it.
const (
	PathReportFormat  = "ioeval-path-report"
	PathReportVersion = 1
)

// PathReport is the span side of the evaluation verdict: where
// requests actually spent their time, aggregated from the per-request
// span trees, cross-checked against the used-% table's indirect
// inference and against the trace (the conservation invariant).
type PathReport struct {
	Format  string `json:"format,omitempty"`
	Version int    `json:"version,omitempty"`

	// Profile is the full 8-level × 3-class span aggregation.
	Profile telemetry.PathProfile `json:"profile"`

	// Self lists span-measured self time folded onto the paper's three
	// characterized levels, in path order (CharacterizedSelf).
	Self []PathLevelSelf `json:"self"`

	// Slowest is the span verdict: the characterized level with the
	// most self time. Valid only when HasSpans.
	Slowest     Level  `json:"-"`
	SlowestName string `json:"slowest_level"`
	HasSpans    bool   `json:"has_spans"`

	// UsedSlowest is the used-% verdict: the level whose used
	// percentage is highest (the level the application came closest to
	// saturating). Valid only when HasUsed.
	UsedSlowest     Level  `json:"-"`
	UsedSlowestName string `json:"used_slowest_level"`
	HasUsed         bool   `json:"has_used"`

	// Agree reports whether the two verdicts name the same level —
	// spans can falsify the used-% inference.
	Agree bool `json:"agree"`

	// Conservation invariant: TopBusy is summed root-span wall time of
	// data requests; TraceIO is summed trace I/O event time. Drift is
	// their difference; Conserved means |Drift| <= 1 ns.
	TopBusy   sim.Duration `json:"top_busy_ns"`
	TraceIO   sim.Duration `json:"trace_io_ns"`
	Drift     sim.Duration `json:"drift_ns"`
	Conserved bool         `json:"conserved"`
}

// PathReport builds the span-side verdict for this evaluation.
func (e *Evaluation) PathReport() PathReport {
	pr := PathReport{Profile: e.path}

	cs := e.path.CharacterizedSelf()
	var bestSelf sim.Duration = -1
	for _, l := range Levels() {
		self := cs[l.TelemetryLevel()]
		pr.Self = append(pr.Self, PathLevelSelf{Level: l, Name: l.String(), SelfNS: self})
		if self > bestSelf {
			pr.Slowest, bestSelf = l, self
		}
	}
	_, pr.HasSpans = e.path.SlowestLevel()
	pr.SlowestName = pr.Slowest.String()

	bestPct := -1.0
	levelPct := map[Level]float64{}
	for _, u := range e.used {
		if !u.CharAvailable {
			continue
		}
		if u.UsedPct > levelPct[u.Level] {
			levelPct[u.Level] = u.UsedPct
		}
		if u.UsedPct > bestPct {
			pr.UsedSlowest, bestPct = u.Level, u.UsedPct
			pr.HasUsed = true
		}
	}
	pr.UsedSlowestName = pr.UsedSlowest.String()
	// The verdicts agree when they name the same level, or when the
	// span-named level's used-% is tied (within usedTieMargin) with the
	// table maximum — the indirect inference cannot rank inside a tie,
	// the spans can.
	pr.Agree = pr.HasSpans && pr.HasUsed &&
		(pr.Slowest == pr.UsedSlowest || levelPct[pr.Slowest] >= usedTieMargin*bestPct)

	pr.TopBusy = e.path.TopBusy(telemetry.ClassRead, telemetry.ClassWrite)
	if e.trace != nil {
		for _, ev := range e.trace.Events() {
			if ev.Op.IsIO() {
				pr.TraceIO += sim.Duration(ev.T1 - ev.T0)
			}
		}
	}
	pr.Drift = pr.TopBusy - pr.TraceIO
	if pr.Drift < 0 {
		pr.Drift = -pr.Drift
	}
	pr.Conserved = pr.Drift <= conservationTolerance
	return pr
}

// WriteJSON writes the path report as indented JSON under the
// versioned envelope.
func (pr PathReport) WriteJSON(w io.Writer) error {
	pr.Format = PathReportFormat
	pr.Version = PathReportVersion
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(pr); err != nil {
		return fmt.Errorf("core: encode path report: %w", err)
	}
	return nil
}

// ReadPathReportJSON parses a standalone path report written by
// WriteJSON, rejecting documents whose envelope names another format
// or version.
func ReadPathReportJSON(rd io.Reader) (*PathReport, error) {
	var pr PathReport
	if err := json.NewDecoder(rd).Decode(&pr); err != nil {
		return nil, fmt.Errorf("core: decode path report: %w", err)
	}
	if pr.Format != PathReportFormat {
		return nil, fmt.Errorf("core: unexpected format %q", pr.Format)
	}
	if pr.Version != PathReportVersion {
		return nil, fmt.Errorf("core: unsupported version %d", pr.Version)
	}
	return &pr, nil
}

// FormatPathReport renders the span attribution and its cross-checks
// as a text table.
func FormatPathReport(pr PathReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Span attribution (per-request time in level)\n")
	fmt.Fprintf(&b, "%-12s %14s\n", "level", "self time")
	for _, s := range pr.Self {
		fmt.Fprintf(&b, "%-12s %14s\n", s.Name, s.SelfNS)
	}
	if pr.HasSpans {
		fmt.Fprintf(&b, "span verdict: slowest level = %s\n", pr.SlowestName)
	} else {
		fmt.Fprintf(&b, "span verdict: no data spans recorded\n")
	}
	if pr.HasUsed {
		agree := "DISAGREE"
		if pr.Agree {
			agree = "agree"
		}
		fmt.Fprintf(&b, "used-%% verdict: %s (%s)\n", pr.UsedSlowestName, agree)
	}
	status := "holds"
	if !pr.Conserved {
		status = "VIOLATED"
	}
	fmt.Fprintf(&b, "conservation: root spans %s vs trace I/O %s (drift %s, %s)\n",
		pr.TopBusy, pr.TraceIO, pr.Drift, status)
	if len(pr.Profile.Tags) > 0 {
		fmt.Fprintf(&b, "fault tags: %s\n", formatTags(pr.Profile.Tags))
	}
	return b.String()
}

// formatTags renders tag counts deterministically (sorted by name).
func formatTags(tags map[string]int64) string {
	names := make([]string, 0, len(tags))
	for n := range tags {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", n, tags[n]))
	}
	return strings.Join(parts, " ")
}
