package core

import (
	"fmt"
	"strings"

	"ioeval/internal/stats"
)

// Requirements captures what the user needs from the I/O system — the
// paper's framing: "to efficiently use the I/O system it is necessary
// to know its performance capacity to determine if it fulfills the
// I/O requirements of applications".
type Requirements struct {
	// MinWriteRate / MinReadRate are the aggregate application-level
	// transfer rates required, in bytes/second (0 = no requirement).
	MinWriteRate float64
	MinReadRate  float64
	// MaxIOFraction is the largest acceptable share of execution time
	// spent in I/O (0 = no requirement).
	MaxIOFraction float64
}

// RequirementCheck is one verdict.
type RequirementCheck struct {
	Name      string
	Required  string
	Observed  string
	Satisfied bool
}

// CheckEvaluation tests an executed evaluation against requirements.
func CheckEvaluation(req Requirements, ev *Evaluation) []RequirementCheck {
	var out []RequirementCheck
	rates := map[OpType]float64{}
	for _, m := range ev.Measurements() {
		rates[m.Op] = m.Rate
	}
	if req.MinWriteRate > 0 {
		out = append(out, RequirementCheck{
			Name:      "write rate",
			Required:  "≥ " + stats.MBs(req.MinWriteRate),
			Observed:  stats.MBs(rates[Write]),
			Satisfied: rates[Write] >= req.MinWriteRate,
		})
	}
	if req.MinReadRate > 0 {
		out = append(out, RequirementCheck{
			Name:      "read rate",
			Required:  "≥ " + stats.MBs(req.MinReadRate),
			Observed:  stats.MBs(rates[Read]),
			Satisfied: rates[Read] >= req.MinReadRate,
		})
	}
	if res := ev.Result(); req.MaxIOFraction > 0 && res.ExecTime > 0 {
		frac := float64(res.IOTime) / float64(res.ExecTime)
		out = append(out, RequirementCheck{
			Name:      "I/O fraction of runtime",
			Required:  fmt.Sprintf("≤ %.0f%%", req.MaxIOFraction*100),
			Observed:  fmt.Sprintf("%.1f%%", frac*100),
			Satisfied: frac <= req.MaxIOFraction,
		})
	}
	return out
}

// CheckPrediction tests a model prediction against rate requirements:
// the predicted aggregate rate per direction is total bytes over
// predicted time.
func CheckPrediction(req Requirements, m IOModel, pred Prediction) []RequirementCheck {
	var out []RequirementCheck
	rate := func(op OpType, t float64) float64 {
		if t <= 0 {
			return 0
		}
		return float64(m.TotalBytes(op)) / t
	}
	if req.MinWriteRate > 0 {
		got := rate(Write, pred.WriteTime.Seconds())
		out = append(out, RequirementCheck{
			Name:      "predicted write rate",
			Required:  "≥ " + stats.MBs(req.MinWriteRate),
			Observed:  stats.MBs(got),
			Satisfied: got >= req.MinWriteRate,
		})
	}
	if req.MinReadRate > 0 {
		got := rate(Read, pred.ReadTime.Seconds())
		out = append(out, RequirementCheck{
			Name:      "predicted read rate",
			Required:  "≥ " + stats.MBs(req.MinReadRate),
			Observed:  stats.MBs(got),
			Satisfied: got >= req.MinReadRate,
		})
	}
	return out
}

// Satisfied reports whether every check passed.
func Satisfied(checks []RequirementCheck) bool {
	for _, c := range checks {
		if !c.Satisfied {
			return false
		}
	}
	return true
}

// FormatChecks renders verdicts.
func FormatChecks(checks []RequirementCheck) string {
	var tb stats.Table
	tb.AddRow("requirement", "required", "observed", "verdict")
	for _, c := range checks {
		verdict := "NOT MET"
		if c.Satisfied {
			verdict = "met"
		}
		tb.AddRow(c.Name, c.Required, c.Observed, verdict)
	}
	var b strings.Builder
	b.WriteString(tb.String())
	return b.String()
}
