// Package core implements the paper's methodology: characterization
// of the I/O system into per-level performance tables (Table I),
// application characterization via traces, the performance-table
// search algorithm (Fig. 11), used-percentage generation (Fig. 10),
// I/O-configuration analysis, and the evaluation phase that ties them
// together.
package core

import (
	"fmt"
	"sort"

	"ioeval/internal/sim"
	"ioeval/internal/telemetry"
	"ioeval/internal/trace"
)

// OpType is the I/O operation direction (Table I: read=0, write=1).
type OpType int

// Operation types.
const (
	Read OpType = iota
	Write
)

func (o OpType) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// AccessType distinguishes node-local from shared/global access
// (Table I: Local=0, Global=1).
type AccessType int

// Access types.
const (
	Local AccessType = iota
	Global
)

func (a AccessType) String() string {
	if a == Local {
		return "local"
	}
	return "global"
}

// Level is a position on the hierarchical I/O path (Fig. 2).
type Level int

// The paper's three characterized levels.
const (
	LevelIOLib   Level = iota // MPI-IO library
	LevelNFS                  // network (global) filesystem
	LevelLocalFS              // I/O node local filesystem / devices
)

func (l Level) String() string {
	switch l {
	case LevelIOLib:
		return "I/O library"
	case LevelNFS:
		return "network FS"
	case LevelLocalFS:
		return "local FS"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Levels lists all levels in I/O-path order (application side first).
func Levels() []Level { return []Level{LevelIOLib, LevelNFS, LevelLocalFS} }

// TelemetryLevel maps a characterized level onto the telemetry
// plane's finer-grained level tags (the telemetry package cannot
// import core, so the mapping lives here).
func (l Level) TelemetryLevel() telemetry.Level {
	switch l {
	case LevelIOLib:
		return telemetry.LevelLibrary
	case LevelNFS:
		return telemetry.LevelGlobalFS
	default:
		return telemetry.LevelLocalFS
	}
}

// Row is one entry of a performance table (the paper's Table I data
// structure: OperationType, Blocksize, AccessType, AccessesMode,
// transferrate).
type Row struct {
	Op        OpType
	BlockSize int64 // bytes
	Access    AccessType
	Mode      trace.AccessMode
	Rate      float64 // bytes/second, measured under a stressed system

	// IOPS and Latency complete the paper's three level metrics
	// ("we evaluate the bandwidth, IOPs, and latency" — Section III-A).
	// The table search uses Rate; these describe the same measurement.
	IOPS    float64
	Latency sim.Duration // mean per-operation latency
}

// PerfTable is the characterized performance of one I/O-path level of
// one configuration.
type PerfTable struct {
	Level  Level
	Config string // configuration name (e.g. "aohyper/RAID5")
	Rows   []Row
}

// Add appends a row.
func (t *PerfTable) Add(r Row) { t.Rows = append(t.Rows, r) }

// Lookup implements the paper's search algorithm (Fig. 11): among
// rows matching operation type, access mode and access type, select
// the transfer rate whose block size matches the requested one —
// clamping below the table minimum and above the maximum, and taking
// the closest upper entry in between.
//
// When no row matches the exact access mode (the table was not
// characterized for it), the mode is relaxed — strided access falls
// back to sequential (a strided pattern still progresses forward
// through the file, which on real systems behaves far closer to a
// sequential stream than to random access), then random; random
// falls back the other way. The mode actually used is reported.
func (t *PerfTable) Lookup(op OpType, blockSize int64, access AccessType, mode trace.AccessMode) (rate float64, usedMode trace.AccessMode, ok bool) {
	for _, m := range modeFallback(mode) {
		if r, found := t.lookupExact(op, blockSize, access, m); found {
			return r, m, true
		}
	}
	return 0, mode, false
}

func modeFallback(m trace.AccessMode) []trace.AccessMode {
	switch m {
	case trace.Strided:
		return []trace.AccessMode{trace.Strided, trace.Sequential, trace.Random}
	case trace.Random:
		return []trace.AccessMode{trace.Random, trace.Strided, trace.Sequential}
	default:
		return []trace.AccessMode{trace.Sequential, trace.Strided, trace.Random}
	}
}

func (t *PerfTable) lookupExact(op OpType, blockSize int64, access AccessType, mode trace.AccessMode) (float64, bool) {
	var candidates []Row
	for _, r := range t.Rows {
		if r.Op == op && r.Access == access && r.Mode == mode {
			candidates = append(candidates, r)
		}
	}
	if len(candidates) == 0 {
		return 0, false
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].BlockSize < candidates[j].BlockSize })
	minRow, maxRow := candidates[0], candidates[len(candidates)-1]
	switch {
	case blockSize <= minRow.BlockSize:
		return minRow.Rate, true
	case blockSize >= maxRow.BlockSize:
		return maxRow.Rate, true
	}
	// Exact match or the closest upper value.
	for _, r := range candidates {
		if r.BlockSize == blockSize {
			return r.Rate, true
		}
		if r.BlockSize > blockSize {
			return r.Rate, true
		}
	}
	return maxRow.Rate, true // unreachable, kept for safety
}
