package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/fault"
	"ioeval/internal/fs"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
	"ioeval/internal/trace"
)

// The characterization shard plan (DESIGN.md §14).
//
// A Characterization is a set of measurement points, each the paper's
// independently stressed table row. This file decomposes the phase
// into an ordered slice of self-describing measurement units, runs
// each on its own freshly built cluster, and merges the per-unit rows
// back in plan order. Because every unit starts from an identical
// fresh cluster, a unit's rows are a pure function of (cluster config,
// unit spec) — independent of when, on which goroutine, or next to
// which other units it runs — so the merged tables are byte-identical
// at any worker count by construction.
//
// Granularity: on a healthy system one unit covers one (level × block
// size) point with the level's full mode list inside — modes at one
// block size share file contents (a write mode populates what the
// paired read mode consumes), so they stay ordered within the unit,
// while distinct block sizes re-create their file from scratch and
// shard cleanly. Under a characterization-side fault plan the plan
// degrades to one unit per level: fault timelines are armed at
// cluster birth (fault.Apply requires a virgin clock), so splitting a
// level across clusters would re-anchor the fault at every block size
// instead of letting it play out across the level's sweep.

// charUnit is one self-describing measurement unit of the shard plan.
type charUnit struct {
	Level      Level
	Modes      []bench.Mode // filesystem levels; nil for the library level
	BlockSizes []int64
	FileSize   int64
	Fault      *fault.Plan // armed on the unit's fresh cluster before measuring
}

// charPlan builds the shard plan for a withDefaults-normalized config.
// Plan order is the canonical merge order: levels in the fixed
// local → global → library sequence, block sizes in sweep order.
func charPlan(cfg CharacterizeConfig) []charUnit {
	perLevel := cfg.Fault != nil && !cfg.Fault.Empty()
	var units []charUnit
	add := func(level Level, modes []bench.Mode, sizes []int64, fileSize int64) {
		if perLevel {
			units = append(units, charUnit{Level: level, Modes: modes,
				BlockSizes: sizes, FileSize: fileSize, Fault: cfg.Fault})
			return
		}
		for _, bs := range sizes {
			units = append(units, charUnit{Level: level, Modes: modes,
				BlockSizes: []int64{bs}, FileSize: fileSize})
		}
	}
	add(LevelLocalFS, cfg.FSModes, cfg.FSBlockSizes, cfg.LocalFileSize)
	add(LevelNFS, cfg.FSModes, cfg.FSBlockSizes, cfg.GlobalFileSize)
	add(LevelIOLib, nil, cfg.LibBlockSizes, cfg.LibFileSize)
	return units
}

// mergeUnits assembles per-unit rows into the level tables in plan
// order — the single place table row order is decided, which is what
// the merge property test exercises.
func mergeUnits(name, scenario string, units []charUnit, rows [][]Row) *Characterization {
	ch := &Characterization{Config: name, Scenario: scenario, Tables: map[Level]*PerfTable{}}
	for i, u := range units {
		t := ch.Tables[u.Level]
		if t == nil {
			t = &PerfTable{Level: u.Level, Config: name}
			ch.Tables[u.Level] = t
		}
		for _, r := range rows[i] {
			t.Add(r)
		}
	}
	return ch
}

// measureUnit runs one unit on a fresh cluster and returns its table
// rows. The cluster must be virgin: the unit arms its fault plan (if
// any) and then owns the cluster's engine for the whole measurement.
func measureUnit(c *cluster.Cluster, cfg CharacterizeConfig, u charUnit) ([]Row, error) {
	if u.Fault != nil {
		fault.MustApply(c, *u.Fault)
	}
	switch u.Level {
	case LevelLocalFS:
		// Local filesystem level: IOzone on the I/O node's own mount,
		// caches dropped between runs.
		localFS := fs.Interface(c.ServerFS)
		drop := func(p *sim.Proc) { c.IOCache.DropCaches(ioreq.Meta(p)) }
		if cfg.UsePFS {
			localFS = c.PFS.Servers()[0].Backend()
			drop = nil // PFS server backends sit on plain node caches
		}
		results, err := runIOzoneUnit(c, localFS, "/char-local.tmp", cfg, u, drop)
		if err != nil {
			return nil, fmt.Errorf("local FS characterization: %w", err)
		}
		return rowsFromIOzone(Local, results), nil
	case LevelNFS:
		// Global filesystem level: IOzone through a compute node's
		// mount of the shared storage; caches dropped between runs.
		globalFS := fs.Interface(c.Nodes[0].NFS)
		drop := func(p *sim.Proc) {
			m := ioreq.Meta(p)
			c.IOCache.DropCaches(m)
			c.Nodes[0].NFS.DropCaches(m)
		}
		if cfg.UsePFS {
			globalFS = c.Nodes[0].PFS
			drop = nil // PFS performs no client caching
		}
		results, err := runIOzoneUnit(c, globalFS, "/char-global.tmp", cfg, u, drop)
		if err != nil {
			return nil, fmt.Errorf("network FS characterization: %w", err)
		}
		return rowsFromIOzone(Global, results), nil
	case LevelIOLib:
		// I/O library level: IOR over MPI-IO on the shared storage.
		var drop func(p *sim.Proc)
		if !cfg.UsePFS {
			drop = func(p *sim.Proc) { c.IOCache.DropCaches(ioreq.Meta(p)) }
		}
		iorCfg := bench.IORConfig{
			Path:         "/char-lib.tmp",
			Procs:        cfg.LibProcs,
			FileSize:     u.FileSize,
			TransferSize: cfg.LibTransfer,
			UsePFS:       cfg.UsePFS,
			BetweenRuns:  drop,
		}
		var rows []Row
		for _, bs := range u.BlockSizes {
			r, err := bench.RunIORPoint(c, iorCfg, bs)
			if err != nil {
				return nil, fmt.Errorf("library characterization: %w", err)
			}
			// Library-level IOPS/latency derive from the transfer size
			// (IOR issues one library call per transfer).
			ts := float64(cfg.LibTransfer)
			rows = append(rows,
				Row{Op: Write, BlockSize: r.BlockSize, Access: Global, Mode: trace.Sequential,
					Rate: r.WriteRate, IOPS: r.WriteRate / ts,
					Latency: sim.DurationFromSeconds(ts / r.WriteRate)},
				Row{Op: Read, BlockSize: r.BlockSize, Access: Global, Mode: trace.Sequential,
					Rate: r.ReadRate, IOPS: r.ReadRate / ts,
					Latency: sim.DurationFromSeconds(ts / r.ReadRate)})
		}
		return rows, nil
	}
	return nil, fmt.Errorf("characterize: unknown level %v", u.Level)
}

// runIOzoneUnit sweeps the unit's block sizes through the per-block
// bench entry point, preserving the within-unit (block size × mode)
// order the measurements depend on.
func runIOzoneUnit(c *cluster.Cluster, fsi fs.Interface, path string,
	cfg CharacterizeConfig, u charUnit, drop func(p *sim.Proc)) ([]bench.IOzoneResult, error) {
	ioCfg := bench.IOzoneConfig{
		Path:        path,
		FileSize:    u.FileSize,
		Modes:       u.Modes,
		RandomOps:   cfg.RandomOps,
		BetweenRuns: drop,
	}
	var results []bench.IOzoneResult
	for _, bs := range u.BlockSizes {
		rs, err := bench.RunIOzoneBlock(c.Eng, fsi, ioCfg, bs)
		if err != nil {
			return nil, err
		}
		results = append(results, rs...)
	}
	return results, nil
}

func rowsFromIOzone(access AccessType, results []bench.IOzoneResult) []Row {
	rows := make([]Row, 0, len(results))
	for _, r := range results {
		op := Read
		if r.Mode.IsWrite() {
			op = Write
		}
		mode := trace.Sequential
		switch {
		case r.Mode.IsStrided():
			mode = trace.Strided
		case !r.Mode.IsSequential():
			mode = trace.Random
		}
		rows = append(rows, Row{Op: op, BlockSize: r.BlockSize, Access: access, Mode: mode,
			Rate: r.Rate, IOPS: r.IOPS, Latency: r.Latency})
	}
	return rows
}

// CharPool bounds how many measurement units run concurrently. One
// pool can back many sessions — sweep shares a single engine-wide pool
// across its cells instead of nesting one per cell — because tokens
// are held only while a unit's cluster is measuring, never while
// waiting on other units.
type CharPool struct {
	sem chan struct{}
}

// NewCharPool returns a pool running up to workers units at once;
// workers <= 0 sizes it to GOMAXPROCS.
func NewCharPool(workers int) *CharPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &CharPool{sem: make(chan struct{}, workers)}
}

// Workers reports the pool's concurrency bound.
func (p *CharPool) Workers() int { return cap(p.sem) }

func (p *CharPool) acquire() { p.sem <- struct{}{} }
func (p *CharPool) release() { <-p.sem }

// runPlan executes every unit and returns the per-unit rows indexed in
// plan order. With a nil pool or a single worker the units run inline,
// sequentially, on the calling goroutine — build need not be safe for
// concurrent use. Otherwise units fan out over goroutines bounded by
// the pool; each writes only its own plan slot, so the result — and
// every table merged from it — is identical either way.
func runPlan(build func() *cluster.Cluster, cfg CharacterizeConfig,
	units []charUnit, pool *CharPool) ([][]Row, error) {
	rows := make([][]Row, len(units))
	if pool == nil || pool.Workers() <= 1 {
		for i, u := range units {
			r, err := measureUnit(build(), cfg, u)
			if err != nil {
				return nil, err
			}
			rows[i] = r
		}
		return rows, nil
	}
	errs := make([]error, len(units))
	var wg sync.WaitGroup
	for i := range units {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool.acquire()
			defer pool.release()
			rows[i], errs[i] = measureUnit(build(), cfg, units[i])
		}()
	}
	wg.Wait()
	for _, err := range errs {
		// First error in plan order, so failures report as
		// deterministically as successes merge.
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// reuseProbe wraps build so the first call is served by the probe
// cluster withDefaults already built: the probe is still virgin
// (withDefaults and Plan.Validate only read configuration), so it is
// indistinguishable from a fresh build and need not be thrown away.
func reuseProbe(probe *cluster.Cluster, build func() *cluster.Cluster) func() *cluster.Cluster {
	var used atomic.Bool
	return func() *cluster.Cluster {
		if used.CompareAndSwap(false, true) {
			return probe
		}
		return build()
	}
}
