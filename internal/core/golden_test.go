package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/fault"
	"ioeval/internal/nfs"
	"ioeval/internal/sim"
	"ioeval/internal/workload/btio"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenCluster is deliberately tiny (two compute nodes) so the
// committed fixture stays small.
func goldenCluster() *cluster.Cluster {
	return cluster.New(cluster.Config{
		Name:         "golden",
		ComputeNodes: 2,
		NodeRAM:      256 * mb,
		NodeDiskCap:  10 * gb,
		NodeDiskRate: 90e6,
		IONodeRAM:    256 * mb,
		IODiskCap:    20 * gb,
		IODiskRate:   100e6,
		Org:          cluster.RAID5,
		StripeUnit:   256 * kb,
		RAID5Disks:   5,
		NFSServer:    nfs.DefaultServerParams("golden-nfs"),
		NFSClient:    nfs.DefaultClientParams("golden-nfs"),
	})
}

// goldenCharCfg keeps the fixture characterizations quick.
func goldenCharCfg() CharacterizeConfig {
	return CharacterizeConfig{
		FSBlockSizes:   []int64{64 * kb, mb},
		FSModes:        []bench.Mode{bench.SeqWrite, bench.SeqRead},
		LocalFileSize:  64 * mb,
		GlobalFileSize: 64 * mb,
		LibProcs:       2,
		LibBlockSizes:  []int64{4 * mb},
		LibTransfer:    256 * kb,
		LibFileSize:    16 * mb,
		RandomOps:      128,
	}
}

// TestTelemetryReportGolden pins the exported telemetry-report format
// on a fixed cluster and workload. The simulation is deterministic, so
// any diff is a real format or model change: inspect it, then rerun
// with -update to accept.
func TestTelemetryReportGolden(t *testing.T) {
	ch, err := characterize(goldenCluster, goldenCharCfg(), nil)
	if err != nil {
		t.Fatalf("characterize: %v", err)
	}
	quick := btio.Class{Name: "Q", N: 64, Steps: 5, WriteInterval: 5}
	ev, err := evaluate(goldenCluster(), btio.New(btio.Config{Class: quick, Procs: 4, Subtype: btio.Full}), ch)
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	var buf bytes.Buffer
	if err := ev.TelemetryReport().WriteJSON(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	compareGolden(t, filepath.Join("testdata", "telemetry_report.golden.json"), buf.Bytes())
}

// TestDegradedReportGolden pins the degraded-mode report surface — the
// fault-tagged evaluation rendering, the healthy-vs-degraded used-%
// comparison, and the degraded telemetry report (which carries the
// fault injector's own probe). Deterministic; rerun with -update to
// accept intended format changes.
func TestDegradedReportGolden(t *testing.T) {
	plan, err := fault.Builtin("nfs-stall")
	if err != nil {
		t.Fatal(err)
	}
	// Land the stall inside the short fixture run's I/O window so the
	// degraded half shows real retry traffic and rate deltas.
	plan.Events[0].At = 100 * sim.Millisecond
	sess := NewSession(goldenCluster,
		WithCharacterizeConfig(goldenCharCfg()),
		WithFaultPlan(plan),
	)
	quick := btio.Class{Name: "Q", N: 64, Steps: 5, WriteInterval: 5}
	rep, err := sess.Run(btio.New(btio.Config{Class: quick, Procs: 4, Subtype: btio.Full}))
	if err != nil {
		t.Fatalf("session run: %v", err)
	}
	if rep.Degraded == nil {
		t.Fatal("no degraded evaluation")
	}
	text := FormatEvaluation(rep.Degraded) + "\n" +
		FormatUsedComparison(rep.Evaluation.Used(), rep.Degraded.Used())
	compareGolden(t, filepath.Join("testdata", "degraded_report.golden.txt"), []byte(text))

	var buf bytes.Buffer
	if err := rep.Degraded.TelemetryReport().WriteJSON(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	compareGolden(t, filepath.Join("testdata", "degraded_telemetry.golden.json"), buf.Bytes())
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden output; diff the file and rerun with -update if intended.\n--- got ---\n%s\n--- want ---\n%s",
			path, clip(got), clip(want))
	}
}

func clip(b []byte) []byte {
	const max = 4096
	if len(b) <= max {
		return b
	}
	return append(append([]byte{}, b[:max]...), []byte("... (truncated)")...)
}
