package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"ioeval/internal/sim"
	"ioeval/internal/trace"
)

// Characterizations are persisted as JSON so a configuration is
// measured once and reused across evaluation sessions — the intended
// workflow of the methodology (characterization is the expensive,
// rarely-repeated phase).

type persistedChar struct {
	Format   string               `json:"format"`
	Version  int                  `json:"version"`
	Config   string               `json:"config"`
	Scenario string               `json:"scenario,omitempty"`
	Tables   map[string][]persRow `json:"tables"`
}

type persRow struct {
	Op        string  `json:"op"`
	BlockSize int64   `json:"block_size"`
	Access    string  `json:"access"`
	Mode      string  `json:"mode"`
	Rate      float64 `json:"rate"`
	IOPS      float64 `json:"iops,omitempty"`
	LatencyNs int64   `json:"latency_ns,omitempty"`
}

const charFormat = "ioeval-characterization"

// WriteJSON serializes the characterization.
func (c *Characterization) WriteJSON(w io.Writer) error {
	out := persistedChar{
		Format:   charFormat,
		Version:  1,
		Config:   c.Config,
		Scenario: c.Scenario,
		Tables:   map[string][]persRow{},
	}
	for level, t := range c.Tables {
		rows := make([]persRow, 0, len(t.Rows))
		for _, r := range t.Rows {
			rows = append(rows, persRow{
				Op: r.Op.String(), BlockSize: r.BlockSize,
				Access: r.Access.String(), Mode: r.Mode.String(),
				Rate: r.Rate, IOPS: r.IOPS, LatencyNs: int64(r.Latency),
			})
		}
		out.Tables[level.String()] = rows
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("core: write characterization: %w", err)
	}
	return bw.Flush()
}

// ReadCharacterizationJSON loads a persisted characterization.
func ReadCharacterizationJSON(r io.Reader) (*Characterization, error) {
	var in persistedChar
	if err := json.NewDecoder(bufio.NewReader(r)).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: read characterization: %w", err)
	}
	if in.Format != charFormat {
		return nil, fmt.Errorf("core: unexpected format %q", in.Format)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("core: unsupported version %d", in.Version)
	}
	ch := &Characterization{Config: in.Config, Scenario: in.Scenario, Tables: map[Level]*PerfTable{}}
	// Iterate level names in sorted order so which malformed entry's
	// error surfaces is deterministic, not a map-order pick.
	levelNames := make([]string, 0, len(in.Tables))
	for levelName := range in.Tables {
		levelNames = append(levelNames, levelName)
	}
	sort.Strings(levelNames)
	for _, levelName := range levelNames {
		rows := in.Tables[levelName]
		level, err := parseLevel(levelName)
		if err != nil {
			return nil, err
		}
		t := &PerfTable{Level: level, Config: in.Config}
		for _, pr := range rows {
			row := Row{
				BlockSize: pr.BlockSize,
				Rate:      pr.Rate,
				IOPS:      pr.IOPS,
				Latency:   sim.Duration(pr.LatencyNs),
			}
			if row.Op, err = parseOp(pr.Op); err != nil {
				return nil, err
			}
			if row.Access, err = parseAccess(pr.Access); err != nil {
				return nil, err
			}
			if row.Mode, err = parseMode(pr.Mode); err != nil {
				return nil, err
			}
			t.Add(row)
		}
		ch.Tables[level] = t
	}
	return ch, nil
}

func parseLevel(s string) (Level, error) {
	for _, l := range Levels() {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("core: unknown level %q", s)
}

func parseOp(s string) (OpType, error) {
	switch s {
	case "read":
		return Read, nil
	case "write":
		return Write, nil
	}
	return 0, fmt.Errorf("core: unknown operation %q", s)
}

func parseAccess(s string) (AccessType, error) {
	switch s {
	case "local":
		return Local, nil
	case "global":
		return Global, nil
	}
	return 0, fmt.Errorf("core: unknown access type %q", s)
}

func parseMode(s string) (trace.AccessMode, error) {
	switch s {
	case "sequential":
		return trace.Sequential, nil
	case "strided":
		return trace.Strided, nil
	case "random":
		return trace.Random, nil
	}
	return 0, fmt.Errorf("core: unknown access mode %q", s)
}
