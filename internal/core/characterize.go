package core

import (
	"fmt"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/fault"
	"ioeval/internal/fs"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
	"ioeval/internal/trace"
)

// CharacterizeConfig controls the system-characterization phase.
type CharacterizeConfig struct {
	// FSBlockSizes is the filesystem-level sweep (default: the
	// paper's 32 KB – 16 MB).
	FSBlockSizes []int64
	// FSModes are the IOzone modes characterized per level (default:
	// sequential, strided and random, reads and writes).
	FSModes []bench.Mode
	// LocalFileSize / GlobalFileSize default to twice the I/O node's /
	// compute node's RAM, the paper's stress rule.
	LocalFileSize, GlobalFileSize int64
	// RandomOps caps random-mode operations per measurement.
	RandomOps int

	// Library-level (IOR) sweep parameters: the paper used 8
	// processes and 256 KB transfers over 1 MB – 1024 MB blocks of a
	// fixed 32 GB shared file.
	LibProcs      int
	LibBlockSizes []int64
	LibTransfer   int64
	LibFileSize   int64

	// UsePFS characterizes the cluster's parallel filesystem instead
	// of NFS: the global level is a PFS client, the local level one
	// PFS server node's filesystem (the cluster must be built with
	// Config.PFSIONodes > 0).
	UsePFS bool

	// Fault, when non-nil, arms the plan on every cluster built during
	// characterization, so the tables measure the degraded path — a
	// RAID 5 serving reconstructed reads, an NFS server that stalls
	// mid-benchmark. The resulting Characterization carries the
	// scenario name.
	Fault *fault.Plan
}

// withDefaults returns the config with every unset field filled in:
// the paper's sweep parameters, and the stress-rule file sizes derived
// from the probe cluster's RAM. The result is fully determined — two
// configs that characterize identically normalize identically — which
// is what makes it the canonical input of Fingerprint.
func (cfg CharacterizeConfig) withDefaults(probe *cluster.Cluster) CharacterizeConfig {
	if len(cfg.FSBlockSizes) == 0 {
		cfg.FSBlockSizes = bench.DefaultBlockSizes()
	}
	if len(cfg.FSModes) == 0 {
		cfg.FSModes = []bench.Mode{bench.SeqWrite, bench.SeqRead}
	}
	if cfg.LibProcs == 0 {
		cfg.LibProcs = 8
	}
	if len(cfg.LibBlockSizes) == 0 {
		cfg.LibBlockSizes = bench.DefaultIORBlockSizes()
	}
	if cfg.LibTransfer == 0 {
		cfg.LibTransfer = 256 << 10
	}
	if cfg.LibFileSize == 0 {
		cfg.LibFileSize = 32 << 30
	}
	if cfg.RandomOps == 0 {
		cfg.RandomOps = 4096
	}
	if cfg.LocalFileSize == 0 {
		cfg.LocalFileSize = 2 * probe.Cfg.IONodeRAM
	}
	if cfg.GlobalFileSize == 0 {
		cfg.GlobalFileSize = 2 * probe.Cfg.NodeRAM
	}
	if cfg.Fault != nil && cfg.Fault.Empty() {
		cfg.Fault = nil
	}
	return cfg
}

// DefaultCharacterizeConfig mirrors the paper's setup.
func DefaultCharacterizeConfig() CharacterizeConfig {
	return CharacterizeConfig{
		FSBlockSizes: bench.DefaultBlockSizes(),
		FSModes: []bench.Mode{
			bench.SeqWrite, bench.SeqRead,
			bench.StrideWrite, bench.StrideRead,
			bench.RandWrite, bench.RandRead,
		},
		RandomOps:     4096,
		LibProcs:      8,
		LibBlockSizes: bench.DefaultIORBlockSizes(),
		LibTransfer:   256 << 10,
		LibFileSize:   32 << 30,
	}
}

// Characterization is the output of the system-characterization
// phase: one performance table per I/O-path level.
type Characterization struct {
	Config string
	// Scenario names the fault plan the tables were measured under
	// ("" = healthy system).
	Scenario string
	Tables   map[Level]*PerfTable
}

// Table returns the table of a level.
func (c *Characterization) Table(l Level) *PerfTable { return c.Tables[l] }

// characterize measures a configuration at the three I/O-path levels.
// build must return a *fresh* cluster of the configuration under test
// each time it is called: characterizing dirties caches, allocators
// and the simulated clock, so every level gets its own instance.
// Reached through Session.Characterization (the exported surface).
func characterize(build func() *cluster.Cluster, cfg CharacterizeConfig) (*Characterization, error) {
	probe := build()
	cfg = cfg.withDefaults(probe)
	name := fmt.Sprintf("%s/%s", probe.Cfg.Name, probe.Cfg.Org)
	if cfg.UsePFS {
		name = fmt.Sprintf("%s/pfs-%d", probe.Cfg.Name, probe.Cfg.PFSIONodes)
	}
	ch := &Characterization{Config: name, Tables: map[Level]*PerfTable{}}

	if cfg.Fault != nil && !cfg.Fault.Empty() {
		// Validate once against the probe cluster, then arm the plan on
		// every benchmark cluster: each level's tables measure the
		// degraded path.
		plan := *cfg.Fault
		if err := plan.Validate(probe); err != nil {
			return nil, fmt.Errorf("characterize: %w", err)
		}
		ch.Scenario = plan.Name
		inner := build
		build = func() *cluster.Cluster {
			c := inner()
			fault.MustApply(c, plan)
			return c
		}
	}

	// Local filesystem level: IOzone on the I/O node's own mount,
	// file twice the I/O node RAM, caches dropped between runs.
	{
		c := build()
		fileSize := cfg.LocalFileSize
		localFS := fs.Interface(c.ServerFS)
		drop := func(p *sim.Proc) { c.IOCache.DropCaches(ioreq.Meta(p)) }
		if cfg.UsePFS {
			localFS = c.PFS.Servers()[0].Backend()
			drop = nil // PFS server backends sit on plain node caches
		}
		results, err := bench.RunIOzone(c.Eng, localFS, bench.IOzoneConfig{
			Path:        "/char-local.tmp",
			FileSize:    fileSize,
			BlockSizes:  cfg.FSBlockSizes,
			Modes:       cfg.FSModes,
			RandomOps:   cfg.RandomOps,
			BetweenRuns: drop,
		})
		if err != nil {
			return nil, fmt.Errorf("local FS characterization: %w", err)
		}
		ch.Tables[LevelLocalFS] = tableFromIOzone(LevelLocalFS, name, Local, results)
	}

	// Global filesystem level: IOzone through a compute node's mount
	// of the shared storage; caches dropped between runs.
	{
		c := build()
		fileSize := cfg.GlobalFileSize
		globalFS := fs.Interface(c.Nodes[0].NFS)
		drop := func(p *sim.Proc) {
			m := ioreq.Meta(p)
			c.IOCache.DropCaches(m)
			c.Nodes[0].NFS.DropCaches(m)
		}
		if cfg.UsePFS {
			globalFS = c.Nodes[0].PFS
			drop = nil // PFS performs no client caching
		}
		results, err := bench.RunIOzone(c.Eng, globalFS, bench.IOzoneConfig{
			Path:        "/char-global.tmp",
			FileSize:    fileSize,
			BlockSizes:  cfg.FSBlockSizes,
			Modes:       cfg.FSModes,
			RandomOps:   cfg.RandomOps,
			BetweenRuns: drop,
		})
		if err != nil {
			return nil, fmt.Errorf("network FS characterization: %w", err)
		}
		ch.Tables[LevelNFS] = tableFromIOzone(LevelNFS, name, Global, results)
	}

	// I/O library level: IOR over MPI-IO on the shared storage.
	{
		c := build()
		var drop func(p *sim.Proc)
		if !cfg.UsePFS {
			drop = func(p *sim.Proc) { c.IOCache.DropCaches(ioreq.Meta(p)) }
		}
		results, err := bench.RunIOR(c, bench.IORConfig{
			Path:         "/char-lib.tmp",
			Procs:        cfg.LibProcs,
			FileSize:     cfg.LibFileSize,
			BlockSizes:   cfg.LibBlockSizes,
			TransferSize: cfg.LibTransfer,
			UsePFS:       cfg.UsePFS,
			BetweenRuns:  drop,
		})
		if err != nil {
			return nil, fmt.Errorf("library characterization: %w", err)
		}
		t := &PerfTable{Level: LevelIOLib, Config: name}
		for _, r := range results {
			// Library-level IOPS/latency derive from the transfer size
			// (IOR issues one library call per transfer).
			ts := float64(cfg.LibTransfer)
			t.Add(Row{Op: Write, BlockSize: r.BlockSize, Access: Global, Mode: trace.Sequential,
				Rate: r.WriteRate, IOPS: r.WriteRate / ts,
				Latency: sim.DurationFromSeconds(ts / r.WriteRate)})
			t.Add(Row{Op: Read, BlockSize: r.BlockSize, Access: Global, Mode: trace.Sequential,
				Rate: r.ReadRate, IOPS: r.ReadRate / ts,
				Latency: sim.DurationFromSeconds(ts / r.ReadRate)})
		}
		ch.Tables[LevelIOLib] = t
	}
	return ch, nil
}

func tableFromIOzone(level Level, config string, access AccessType, results []bench.IOzoneResult) *PerfTable {
	t := &PerfTable{Level: level, Config: config}
	for _, r := range results {
		op := Read
		if r.Mode.IsWrite() {
			op = Write
		}
		mode := trace.Sequential
		switch {
		case r.Mode.IsStrided():
			mode = trace.Strided
		case !r.Mode.IsSequential():
			mode = trace.Random
		}
		t.Add(Row{Op: op, BlockSize: r.BlockSize, Access: access, Mode: mode,
			Rate: r.Rate, IOPS: r.IOPS, Latency: r.Latency})
	}
	return t
}
