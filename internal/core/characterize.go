package core

import (
	"fmt"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/fault"
)

// CharacterizeConfig controls the system-characterization phase.
type CharacterizeConfig struct {
	// FSBlockSizes is the filesystem-level sweep (default: the
	// paper's 32 KB – 16 MB).
	FSBlockSizes []int64
	// FSModes are the IOzone modes characterized per level (default:
	// sequential, strided and random, reads and writes).
	FSModes []bench.Mode
	// LocalFileSize / GlobalFileSize default to twice the I/O node's /
	// compute node's RAM, the paper's stress rule.
	LocalFileSize, GlobalFileSize int64
	// RandomOps caps random-mode operations per measurement.
	RandomOps int

	// Library-level (IOR) sweep parameters: the paper used 8
	// processes and 256 KB transfers over 1 MB – 1024 MB blocks of a
	// fixed 32 GB shared file.
	LibProcs      int
	LibBlockSizes []int64
	LibTransfer   int64
	LibFileSize   int64

	// UsePFS characterizes the cluster's parallel filesystem instead
	// of NFS: the global level is a PFS client, the local level one
	// PFS server node's filesystem (the cluster must be built with
	// Config.PFSIONodes > 0).
	UsePFS bool

	// Fault, when non-nil, arms the plan on every cluster built during
	// characterization, so the tables measure the degraded path — a
	// RAID 5 serving reconstructed reads, an NFS server that stalls
	// mid-benchmark. The resulting Characterization carries the
	// scenario name.
	Fault *fault.Plan
}

// withDefaults returns the config with every unset field filled in:
// the paper's sweep parameters, and the stress-rule file sizes derived
// from the probe cluster's RAM. The result is fully determined — two
// configs that characterize identically normalize identically — which
// is what makes it the canonical input of Fingerprint.
func (cfg CharacterizeConfig) withDefaults(probe *cluster.Cluster) CharacterizeConfig {
	if len(cfg.FSBlockSizes) == 0 {
		cfg.FSBlockSizes = bench.DefaultBlockSizes()
	}
	if len(cfg.FSModes) == 0 {
		cfg.FSModes = []bench.Mode{bench.SeqWrite, bench.SeqRead}
	}
	if cfg.LibProcs == 0 {
		cfg.LibProcs = 8
	}
	if len(cfg.LibBlockSizes) == 0 {
		cfg.LibBlockSizes = bench.DefaultIORBlockSizes()
	}
	if cfg.LibTransfer == 0 {
		cfg.LibTransfer = 256 << 10
	}
	if cfg.LibFileSize == 0 {
		cfg.LibFileSize = 32 << 30
	}
	if cfg.RandomOps == 0 {
		cfg.RandomOps = 4096
	}
	if cfg.LocalFileSize == 0 {
		cfg.LocalFileSize = 2 * probe.Cfg.IONodeRAM
	}
	if cfg.GlobalFileSize == 0 {
		cfg.GlobalFileSize = 2 * probe.Cfg.NodeRAM
	}
	if cfg.Fault != nil && cfg.Fault.Empty() {
		cfg.Fault = nil
	}
	return cfg
}

// DefaultCharacterizeConfig mirrors the paper's setup.
func DefaultCharacterizeConfig() CharacterizeConfig {
	return CharacterizeConfig{
		FSBlockSizes: bench.DefaultBlockSizes(),
		FSModes: []bench.Mode{
			bench.SeqWrite, bench.SeqRead,
			bench.StrideWrite, bench.StrideRead,
			bench.RandWrite, bench.RandRead,
		},
		RandomOps:     4096,
		LibProcs:      8,
		LibBlockSizes: bench.DefaultIORBlockSizes(),
		LibTransfer:   256 << 10,
		LibFileSize:   32 << 30,
	}
}

// Characterization is the output of the system-characterization
// phase: one performance table per I/O-path level.
type Characterization struct {
	Config string
	// Scenario names the fault plan the tables were measured under
	// ("" = healthy system).
	Scenario string
	Tables   map[Level]*PerfTable
}

// Table returns the table of a level.
func (c *Characterization) Table(l Level) *PerfTable { return c.Tables[l] }

// characterize measures a configuration at the three I/O-path levels
// by executing the config's shard plan (charplan.go): every
// measurement unit runs on a fresh cluster — characterizing dirties
// caches, allocators and the simulated clock, so units must not share
// an instance — and the per-unit rows merge back in plan order, which
// makes the result byte-identical at any pool size. build must return
// a fresh cluster of the configuration under test on each call, and
// must be safe for concurrent use when the pool runs more than one
// worker. Reached through Session.Characterization (the exported
// surface); a nil pool means sequential.
func characterize(build func() *cluster.Cluster, cfg CharacterizeConfig, pool *CharPool) (*Characterization, error) {
	probe := build()
	cfg = cfg.withDefaults(probe)
	name := fmt.Sprintf("%s/%s", probe.Cfg.Name, probe.Cfg.Org)
	if cfg.UsePFS {
		name = fmt.Sprintf("%s/pfs-%d", probe.Cfg.Name, probe.Cfg.PFSIONodes)
	}

	var scenario string
	if cfg.Fault != nil && !cfg.Fault.Empty() {
		// Validate once against the probe cluster; the plan rides on
		// every unit, armed on each unit's fresh cluster, so the
		// tables measure the degraded path.
		if err := cfg.Fault.Validate(probe); err != nil {
			return nil, fmt.Errorf("characterize: %w", err)
		}
		scenario = cfg.Fault.Name
	}

	units := charPlan(cfg)
	rows, err := runPlan(reuseProbe(probe, build), cfg, units, pool)
	if err != nil {
		return nil, err
	}
	return mergeUnits(name, scenario, units, rows), nil
}
