package core

import (
	"fmt"
	"sort"
	"strings"

	"ioeval/internal/cluster"
	"ioeval/internal/stats"
	"ioeval/internal/trace"
)

// FormatPerfTable renders a characterized performance table in the
// paper's Table I shape.
func FormatPerfTable(t *PerfTable) string {
	var tb stats.Table
	tb.AddRow("OperationType", "Blocksize", "AccessType", "AccessMode", "TransferRate", "IOPS", "Latency")
	rows := append([]Row{}, t.Rows...)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Op != rows[j].Op {
			return rows[i].Op < rows[j].Op
		}
		if rows[i].Mode != rows[j].Mode {
			return rows[i].Mode < rows[j].Mode
		}
		return rows[i].BlockSize < rows[j].BlockSize
	})
	for _, r := range rows {
		iops, lat := "-", "-"
		if r.IOPS > 0 {
			iops = fmt.Sprintf("%.0f", r.IOPS)
		}
		if r.Latency > 0 {
			lat = r.Latency.String()
		}
		tb.AddRow(r.Op.String(), stats.IBytes(r.BlockSize), r.Access.String(),
			r.Mode.String(), stats.MBs(r.Rate), iops, lat)
	}
	return fmt.Sprintf("Performance table — level: %s, configuration: %s\n%s",
		t.Level, t.Config, tb.String())
}

// FormatUsedTable renders the used-percentage rows in the shape of
// the paper's Tables III/IV/VI/VII/IX/X/XI.
func FormatUsedTable(used []UsedRow) string {
	var tb stats.Table
	tb.AddRow("Level", "Op", "Blocksize", "Mode", "Measured", "Characterized", "Used%")
	for _, u := range used {
		char, pct := "n/a", "n/a"
		if u.CharAvailable {
			char = stats.MBs(u.CharRate)
			pct = fmt.Sprintf("%.1f", u.UsedPct)
		}
		tb.AddRow(u.Level.String(), u.Op.String(), stats.IBytes(u.BlockSize),
			u.Mode.String(), stats.MBs(u.MeasuredRate), char, pct)
	}
	return tb.String()
}

// FormatProfile renders an application characterization in the shape
// of the paper's Tables II/V/VIII.
func FormatProfile(name string, p trace.Profile) string {
	var tb stats.Table
	tb.AddRow("Parameter", "Value")
	tb.AddRow("numFiles", fmt.Sprintf("%d", p.NumFiles))
	tb.AddRow("numIO_read", fmt.Sprintf("%d", p.NumReads))
	tb.AddRow("numIO_write", fmt.Sprintf("%d", p.NumWrites))
	tb.AddRow("bk_read", sizesString(p.ReadBlockSizes))
	tb.AddRow("bk_write", sizesString(p.WriteBlockSizes))
	tb.AddRow("numIO_open", fmt.Sprintf("%d", p.NumOpens))
	tb.AddRow("numIO_close", fmt.Sprintf("%d", p.NumCloses))
	tb.AddRow("numProcesses", fmt.Sprintf("%d", p.NumProcs))
	return fmt.Sprintf("Application characterization — %s\n%s", name, tb.String())
}

func sizesString(sizes []trace.BlockSizeCount) string {
	if len(sizes) == 0 {
		return "-"
	}
	parts := make([]string, 0, 2)
	for i, s := range sizes {
		if i == 2 {
			break
		}
		parts = append(parts, stats.IBytes(s.Bytes))
	}
	return strings.Join(parts, " and ")
}

// FormatEvaluation renders the full evaluation: the paper's metric
// set (execution time, I/O time, IOPS, latency, throughput — Section
// III-C) and the used-percentage table.
func FormatEvaluation(e *Evaluation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Evaluation — %s on %s\n", e.AppName, e.Config)
	fmt.Fprintf(&b, "  execution time: %v\n", e.Result.ExecTime)
	fmt.Fprintf(&b, "  I/O time:       %v (%.1f%% of execution)\n",
		e.Result.IOTime, 100*float64(e.Result.IOTime)/float64(e.Result.ExecTime))
	if iops := e.IOPS(); iops > 0 {
		fmt.Fprintf(&b, "  IOPS:           %.0f ops/s (mean latency %v)\n", iops, e.MeanLatency())
	}
	fmt.Fprintf(&b, "  throughput:     %s\n", stats.MBs(e.Result.Throughput()))
	b.WriteString(FormatUsedTable(e.Used))
	return b.String()
}

// AnalyzeConfiguration renders the configuration-analysis phase
// (Section III-B): the configurable factors of the cluster.
func AnalyzeConfiguration(c *cluster.Cluster) string {
	var tb stats.Table
	tb.AddRow("Factor", "Configuration")
	for _, f := range c.Describe() {
		tb.AddRow(f.Name, f.Value)
	}
	return tb.String()
}
