package core

import (
	"fmt"
	"sort"
	"strings"

	"ioeval/internal/cluster"
	"ioeval/internal/stats"
	"ioeval/internal/trace"
)

// FormatPerfTable renders a characterized performance table in the
// paper's Table I shape.
func FormatPerfTable(t *PerfTable) string {
	var tb stats.Table
	tb.AddRow("OperationType", "Blocksize", "AccessType", "AccessMode", "TransferRate", "IOPS", "Latency")
	rows := append([]Row{}, t.Rows...)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Op != rows[j].Op {
			return rows[i].Op < rows[j].Op
		}
		if rows[i].Mode != rows[j].Mode {
			return rows[i].Mode < rows[j].Mode
		}
		return rows[i].BlockSize < rows[j].BlockSize
	})
	for _, r := range rows {
		iops, lat := "-", "-"
		if r.IOPS > 0 {
			iops = fmt.Sprintf("%.0f", r.IOPS)
		}
		if r.Latency > 0 {
			lat = r.Latency.String()
		}
		tb.AddRow(r.Op.String(), stats.IBytes(r.BlockSize), r.Access.String(),
			r.Mode.String(), stats.MBs(r.Rate), iops, lat)
	}
	return fmt.Sprintf("Performance table — level: %s, configuration: %s\n%s",
		t.Level, t.Config, tb.String())
}

// FormatUsedTable renders the used-percentage rows in the shape of
// the paper's Tables III/IV/VI/VII/IX/X/XI.
func FormatUsedTable(used []UsedRow) string {
	var tb stats.Table
	tb.AddRow("Level", "Op", "Blocksize", "Mode", "Measured", "Characterized", "Used%")
	for _, u := range used {
		char, pct := "n/a", "n/a"
		if u.CharAvailable {
			char = stats.MBs(u.CharRate)
			pct = fmt.Sprintf("%.1f", u.UsedPct)
		}
		tb.AddRow(u.Level.String(), u.Op.String(), stats.IBytes(u.BlockSize),
			u.Mode.String(), stats.MBs(u.MeasuredRate), char, pct)
	}
	return tb.String()
}

// FormatProfile renders an application characterization in the shape
// of the paper's Tables II/V/VIII.
func FormatProfile(name string, p trace.Profile) string {
	var tb stats.Table
	tb.AddRow("Parameter", "Value")
	tb.AddRow("numFiles", fmt.Sprintf("%d", p.NumFiles))
	tb.AddRow("numIO_read", fmt.Sprintf("%d", p.NumReads))
	tb.AddRow("numIO_write", fmt.Sprintf("%d", p.NumWrites))
	tb.AddRow("bk_read", sizesString(p.ReadBlockSizes))
	tb.AddRow("bk_write", sizesString(p.WriteBlockSizes))
	tb.AddRow("numIO_open", fmt.Sprintf("%d", p.NumOpens))
	tb.AddRow("numIO_close", fmt.Sprintf("%d", p.NumCloses))
	tb.AddRow("numProcesses", fmt.Sprintf("%d", p.NumProcs))
	return fmt.Sprintf("Application characterization — %s\n%s", name, tb.String())
}

func sizesString(sizes []trace.BlockSizeCount) string {
	if len(sizes) == 0 {
		return "-"
	}
	parts := make([]string, 0, 2)
	for i, s := range sizes {
		if i == 2 {
			break
		}
		parts = append(parts, stats.IBytes(s.Bytes))
	}
	return strings.Join(parts, " and ")
}

// FormatEvaluation renders the full evaluation: the paper's metric
// set (execution time, I/O time, IOPS, latency, throughput — Section
// III-C) and the used-percentage table.
func FormatEvaluation(e *Evaluation) string {
	var b strings.Builder
	res := e.Result()
	if sc := e.Scenario(); sc != "" {
		fmt.Fprintf(&b, "Evaluation — %s on %s [fault: %s]\n", e.AppName(), e.Config(), sc)
	} else {
		fmt.Fprintf(&b, "Evaluation — %s on %s\n", e.AppName(), e.Config())
	}
	fmt.Fprintf(&b, "  execution time: %v\n", res.ExecTime)
	fmt.Fprintf(&b, "  I/O time:       %v (%.1f%% of execution)\n",
		res.IOTime, 100*float64(res.IOTime)/float64(res.ExecTime))
	if iops := e.IOPS(); iops > 0 {
		fmt.Fprintf(&b, "  IOPS:           %.0f ops/s (mean latency %v)\n", iops, e.MeanLatency())
	}
	fmt.Fprintf(&b, "  throughput:     %s\n", stats.MBs(res.Throughput()))
	b.WriteString(FormatUsedTable(e.Used()))
	return b.String()
}

// FormatUsedComparison renders healthy and degraded used-% rows side
// by side, matched by (level, op): the degraded-mode evaluation table
// the fault plane exists to produce. Rows present on only one side
// still appear, with the other side marked "-".
func FormatUsedComparison(healthy, degraded []UsedRow) string {
	type key struct {
		level Level
		op    OpType
	}
	hBy := map[key]UsedRow{}
	var order []key
	for _, u := range healthy {
		k := key{u.Level, u.Op}
		if _, ok := hBy[k]; !ok {
			hBy[k] = u
			order = append(order, k)
		}
	}
	dBy := map[key]UsedRow{}
	for _, u := range degraded {
		k := key{u.Level, u.Op}
		if _, ok := dBy[k]; !ok {
			dBy[k] = u
			if _, seen := hBy[k]; !seen {
				order = append(order, k)
			}
		}
	}
	cell := func(u UsedRow, ok bool) (string, string) {
		if !ok {
			return "-", "-"
		}
		pct := "n/a"
		if u.CharAvailable {
			pct = fmt.Sprintf("%.1f", u.UsedPct)
		}
		return stats.MBs(u.MeasuredRate), pct
	}
	var tb stats.Table
	tb.AddRow("Level", "Op", "Healthy", "Used%", "Degraded", "Used%", "ΔRate%")
	for _, k := range order {
		h, hOK := hBy[k]
		d, dOK := dBy[k]
		hRate, hPct := cell(h, hOK)
		dRate, dPct := cell(d, dOK)
		delta := "-"
		if hOK && dOK && h.MeasuredRate > 0 {
			delta = fmt.Sprintf("%+.1f", (d.MeasuredRate-h.MeasuredRate)/h.MeasuredRate*100)
		}
		tb.AddRow(k.level.String(), k.op.String(), hRate, hPct, dRate, dPct, delta)
	}
	return tb.String()
}

// AnalyzeConfiguration renders the configuration-analysis phase
// (Section III-B): the configurable factors of the cluster.
func AnalyzeConfiguration(c *cluster.Cluster) string {
	var tb stats.Table
	tb.AddRow("Factor", "Configuration")
	for _, f := range c.Describe() {
		tb.AddRow(f.Name, f.Value)
	}
	return tb.String()
}
