package core

import (
	"bytes"
	"strings"
	"testing"

	"ioeval/internal/sim"
	"ioeval/internal/trace"
)

func TestCharacterizationRoundTrip(t *testing.T) {
	ch := &Characterization{Config: "aohyper/RAID5", Tables: map[Level]*PerfTable{
		LevelNFS: {Level: LevelNFS, Config: "aohyper/RAID5", Rows: []Row{
			{Op: Write, BlockSize: 1 << 20, Access: Global, Mode: trace.Sequential,
				Rate: 77e6, IOPS: 73.4, Latency: 13 * sim.Millisecond},
			{Op: Read, BlockSize: 32 << 10, Access: Global, Mode: trace.Random, Rate: 2.5e6},
		}},
		LevelLocalFS: {Level: LevelLocalFS, Config: "aohyper/RAID5", Rows: []Row{
			{Op: Read, BlockSize: 4 << 20, Access: Local, Mode: trace.Strided, Rate: 150e6},
		}},
	}}
	var buf bytes.Buffer
	if err := ch.WriteJSON(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadCharacterizationJSON(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Config != ch.Config {
		t.Fatalf("config = %q", got.Config)
	}
	for level, want := range ch.Tables {
		gt := got.Table(level)
		if gt == nil || len(gt.Rows) != len(want.Rows) {
			t.Fatalf("level %v rows mismatch", level)
		}
		for i, wr := range want.Rows {
			if gt.Rows[i] != wr {
				t.Fatalf("level %v row %d = %+v, want %+v", level, i, gt.Rows[i], wr)
			}
		}
	}
	// Lookups behave identically after the round trip.
	r1, _, _ := ch.Table(LevelNFS).Lookup(Write, 1<<20, Global, trace.Sequential)
	r2, _, _ := got.Table(LevelNFS).Lookup(Write, 1<<20, Global, trace.Sequential)
	if r1 != r2 {
		t.Fatalf("lookup changed: %v vs %v", r1, r2)
	}
}

func TestReadCharacterizationRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json",
		`{"format":"other","version":1}`,
		`{"format":"ioeval-characterization","version":2}`,
		`{"format":"ioeval-characterization","version":1,"tables":{"nope":[]}}`,
		`{"format":"ioeval-characterization","version":1,"tables":{"network FS":[{"op":"frobnicate"}]}}`,
	}
	for i, c := range cases {
		if _, err := ReadCharacterizationJSON(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted garbage", i)
		}
	}
}
