package core

import (
	"math/rand"
	"sort"
	"testing"

	"ioeval/internal/trace"
)

// Property-style coverage of the paper's table-search algorithm
// (Figs. 10–11): for randomized performance tables, the selected row
// must always match the requested operation type and access type, be
// the nearest block size per the paper's rules (clamp below the
// minimum, clamp above the maximum, closest upper entry in between),
// and honor the documented access-mode fallback order. Used-% rows
// derived from the table may exceed 100 only when the measured rate
// exceeds the characterized row's.

var allModes = []trace.AccessMode{trace.Sequential, trace.Strided, trace.Random}

// randTable builds a table with unique block sizes per (op, access,
// mode) group so the expected lookup result is unambiguous.
func randTable(rng *rand.Rand) *PerfTable {
	t := &PerfTable{Level: LevelNFS, Config: "prop"}
	for _, op := range []OpType{Read, Write} {
		for _, access := range []AccessType{Local, Global} {
			for _, mode := range allModes {
				if rng.Intn(3) == 0 {
					continue // leave some groups uncharacterized
				}
				n := 1 + rng.Intn(6)
				sizes := map[int64]bool{}
				for len(sizes) < n {
					sizes[(1+int64(rng.Intn(1<<14)))*1024] = true
				}
				for bs := range sizes {
					t.Add(Row{Op: op, BlockSize: bs, Access: access, Mode: mode,
						Rate: 1e6 + rng.Float64()*200e6})
				}
			}
		}
	}
	return t
}

// refLookup is the independent reference implementation of Fig. 11.
func refLookup(t *PerfTable, op OpType, bs int64, access AccessType, mode trace.AccessMode) (float64, trace.AccessMode, bool) {
	var order []trace.AccessMode
	switch mode {
	case trace.Strided:
		order = []trace.AccessMode{trace.Strided, trace.Sequential, trace.Random}
	case trace.Random:
		order = []trace.AccessMode{trace.Random, trace.Strided, trace.Sequential}
	default:
		order = []trace.AccessMode{trace.Sequential, trace.Strided, trace.Random}
	}
	for _, m := range order {
		var rows []Row
		for _, r := range t.Rows {
			if r.Op == op && r.Access == access && r.Mode == m {
				rows = append(rows, r)
			}
		}
		if len(rows) == 0 {
			continue
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].BlockSize < rows[j].BlockSize })
		best := rows[len(rows)-1]
		for _, r := range rows {
			if r.BlockSize >= bs {
				best = r
				break
			}
		}
		return best.Rate, m, true
	}
	return 0, mode, false
}

func TestLookupProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20110926)) // the paper's conference date
	for iter := 0; iter < 300; iter++ {
		tab := randTable(rng)
		for q := 0; q < 40; q++ {
			op := []OpType{Read, Write}[rng.Intn(2)]
			access := []AccessType{Local, Global}[rng.Intn(2)]
			mode := allModes[rng.Intn(3)]
			bs := int64(rng.Intn(1 << 25))
			rate, usedMode, ok := tab.Lookup(op, bs, access, mode)
			wantRate, wantMode, wantOK := refLookup(tab, op, bs, access, mode)
			if ok != wantOK || rate != wantRate || usedMode != wantMode {
				t.Fatalf("iter %d: Lookup(%v, %d, %v, %v) = (%.0f, %v, %v), want (%.0f, %v, %v)",
					iter, op, bs, access, mode, rate, usedMode, ok, wantRate, wantMode, wantOK)
			}
			if !ok {
				continue
			}
			// The selected rate must belong to a row of the requested
			// operation and access type with the reported mode.
			found := false
			for _, r := range tab.Rows {
				if r.Op == op && r.Access == access && r.Mode == usedMode && r.Rate == rate {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("iter %d: rate %.0f not from any (%v, %v, %v) row", iter, rate, op, access, usedMode)
			}
		}
	}
}

// TestLookupNearestUpperRule pins the in-between rule on a hand-built
// table: exact match wins, otherwise the closest upper block size.
func TestLookupNearestUpperRule(t *testing.T) {
	tab := &PerfTable{Level: LevelNFS}
	for i, bs := range []int64{32 * kb, mb, 16 * mb} {
		tab.Add(Row{Op: Write, BlockSize: bs, Access: Global, Mode: trace.Sequential,
			Rate: float64(i+1) * 10e6})
	}
	cases := []struct {
		bs   int64
		want float64
	}{
		{kb, 10e6},      // below min: clamp to smallest
		{32 * kb, 10e6}, // exact
		{33 * kb, 20e6}, // between: closest upper (1 MB)
		{mb, 20e6},      // exact
		{mb + 1, 30e6},  // between: closest upper (16 MB)
		{16 * mb, 30e6}, // exact
		{1 << 30, 30e6}, // above max: clamp to largest
	}
	for _, c := range cases {
		rate, _, ok := tab.Lookup(Write, c.bs, Global, trace.Sequential)
		if !ok || rate != c.want {
			t.Errorf("Lookup(bs=%d) = (%.0f, %v), want %.0f", c.bs, rate, ok, c.want)
		}
	}
}

// TestUsedTableOver100Property: used-% exceeds 100 exactly when the
// measured rate exceeds the characterized row the search selected.
func TestUsedTableOver100Property(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		ch := &Characterization{Config: "prop", Tables: map[Level]*PerfTable{}}
		for _, level := range Levels() {
			tab := randTable(rng)
			tab.Level = level
			ch.Tables[level] = tab
		}
		var ms []Measurement
		for i := 0; i < 10; i++ {
			ms = append(ms, Measurement{
				Op:        []OpType{Read, Write}[rng.Intn(2)],
				BlockSize: int64(rng.Intn(1 << 25)),
				Access:    Global,
				Mode:      allModes[rng.Intn(3)],
				Rate:      rng.Float64() * 400e6,
				Ops:       1, Bytes: 1,
			})
		}
		for _, u := range UsedTable(ms, ch) {
			if !u.CharAvailable {
				if u.UsedPct != 0 {
					t.Fatalf("uncharacterized row has used%% %.1f: %+v", u.UsedPct, u)
				}
				continue
			}
			if u.CharRate <= 0 {
				t.Fatalf("characterized row without rate: %+v", u)
			}
			if (u.UsedPct > 100) != (u.MeasuredRate > u.CharRate) {
				t.Fatalf("used%%=%.1f with measured=%.0f char=%.0f: %+v",
					u.UsedPct, u.MeasuredRate, u.CharRate, u)
			}
			// The access type searched is fixed per level; the rate must
			// come from the level's table via the reference search.
			access := Global
			if u.Level == LevelLocalFS {
				access = Local
			}
			wantRate, wantMode, wantOK := refLookup(ch.Tables[u.Level], u.Op, u.BlockSize, access, u.Mode)
			if !wantOK || wantRate != u.CharRate || wantMode != u.LookupMode {
				t.Fatalf("used row lookup mismatch: got (%.0f, %v), want (%.0f, %v, %v)",
					u.CharRate, u.LookupMode, wantRate, wantMode, wantOK)
			}
		}
	}
}
