package core

import (
	"reflect"
	"testing"

	"ioeval/internal/bench"
	"ioeval/internal/fault"
	"ioeval/internal/sim"
)

// TestWithDefaults pins the normalization that feeds Fingerprint (and
// the shard-plan builder): unset fields fill with the paper's values
// or the probe cluster's stress-rule sizes, set fields pass through
// untouched, and an empty fault plan normalizes to nil.
func TestWithDefaults(t *testing.T) {
	probe := goldenCluster() // IONodeRAM = NodeRAM = 256 MB
	ram := probe.Cfg.NodeRAM

	emptyFault := &fault.Plan{Name: "noop", Seed: 7}
	realFault := &fault.Plan{Name: "slow", Seed: 1,
		Events: []fault.Event{{Kind: fault.DiskSlow, At: sim.Second, Factor: 2}}}

	cases := []struct {
		name  string
		in    CharacterizeConfig
		check func(t *testing.T, got CharacterizeConfig)
	}{
		{
			name: "zero config fills the paper defaults",
			in:   CharacterizeConfig{},
			check: func(t *testing.T, got CharacterizeConfig) {
				if !reflect.DeepEqual(got.FSBlockSizes, bench.DefaultBlockSizes()) {
					t.Error("FSBlockSizes not the paper sweep")
				}
				if !reflect.DeepEqual(got.FSModes, []bench.Mode{bench.SeqWrite, bench.SeqRead}) {
					t.Errorf("FSModes = %v", got.FSModes)
				}
				if got.LibProcs != 8 || got.LibTransfer != 256<<10 || got.LibFileSize != 32<<30 {
					t.Errorf("library params = %d/%d/%d", got.LibProcs, got.LibTransfer, got.LibFileSize)
				}
				if !reflect.DeepEqual(got.LibBlockSizes, bench.DefaultIORBlockSizes()) {
					t.Error("LibBlockSizes not the paper sweep")
				}
				if got.RandomOps != 4096 {
					t.Errorf("RandomOps = %d", got.RandomOps)
				}
			},
		},
		{
			name: "file sizes derive from probe RAM (stress rule)",
			in:   CharacterizeConfig{},
			check: func(t *testing.T, got CharacterizeConfig) {
				if got.LocalFileSize != 2*ram {
					t.Errorf("LocalFileSize = %d, want 2×IONodeRAM = %d", got.LocalFileSize, 2*ram)
				}
				if got.GlobalFileSize != 2*ram {
					t.Errorf("GlobalFileSize = %d, want 2×NodeRAM = %d", got.GlobalFileSize, 2*ram)
				}
			},
		},
		{
			name: "set fields pass through untouched",
			in: CharacterizeConfig{
				FSBlockSizes:   []int64{mb},
				FSModes:        []bench.Mode{bench.RandRead},
				LocalFileSize:  10 * mb,
				GlobalFileSize: 20 * mb,
				RandomOps:      3,
				LibProcs:       2,
				LibBlockSizes:  []int64{4 * mb},
				LibTransfer:    kb,
				LibFileSize:    8 * mb,
			},
			check: func(t *testing.T, got CharacterizeConfig) {
				want := CharacterizeConfig{
					FSBlockSizes:   []int64{mb},
					FSModes:        []bench.Mode{bench.RandRead},
					LocalFileSize:  10 * mb,
					GlobalFileSize: 20 * mb,
					RandomOps:      3,
					LibProcs:       2,
					LibBlockSizes:  []int64{4 * mb},
					LibTransfer:    kb,
					LibFileSize:    8 * mb,
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("got %+v, want %+v", got, want)
				}
			},
		},
		{
			name: "empty fault plan normalizes to nil",
			in:   CharacterizeConfig{Fault: emptyFault},
			check: func(t *testing.T, got CharacterizeConfig) {
				if got.Fault != nil {
					t.Errorf("Fault = %+v, want nil (empty plan)", got.Fault)
				}
			},
		},
		{
			name: "armed fault plan passes through",
			in:   CharacterizeConfig{Fault: realFault},
			check: func(t *testing.T, got CharacterizeConfig) {
				if got.Fault != realFault {
					t.Error("armed fault plan did not pass through")
				}
			},
		},
		{
			name: "DefaultCharacterizeConfig is already normalized but for sizes",
			in:   DefaultCharacterizeConfig(),
			check: func(t *testing.T, got CharacterizeConfig) {
				want := DefaultCharacterizeConfig()
				want.LocalFileSize = 2 * ram
				want.GlobalFileSize = 2 * ram
				if !reflect.DeepEqual(got, want) {
					t.Errorf("got %+v, want %+v", got, want)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.in.withDefaults(probe)
			tc.check(t, got)

			// Idempotence: normalization is a fixed point, which is what
			// lets Fingerprint hash the normalized form as canonical.
			again := got.withDefaults(probe)
			if !reflect.DeepEqual(again, got) {
				t.Errorf("withDefaults not idempotent: %+v -> %+v", got, again)
			}
		})
	}
}

// TestWithDefaultsFingerprintCanonical: a zero config and its
// explicitly spelled-out normalization must fingerprint identically —
// the store key depends on what would be measured, not on how the
// config was written.
func TestWithDefaultsFingerprintCanonical(t *testing.T) {
	implicit, err := Fingerprint(goldenCluster, CharacterizeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Fingerprint(goldenCluster, CharacterizeConfig{}.withDefaults(goldenCluster()))
	if err != nil {
		t.Fatal(err)
	}
	if implicit != explicit {
		t.Errorf("fingerprints differ: %s vs %s", implicit, explicit)
	}
}
