package core

import (
	"testing"
	"testing/quick"

	"ioeval/internal/trace"
)

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
)

func testTable() *PerfTable {
	t := &PerfTable{Level: LevelNFS, Config: "test"}
	for _, r := range []Row{
		{Op: Read, BlockSize: 32 * kb, Access: Global, Mode: trace.Sequential, Rate: 40e6},
		{Op: Read, BlockSize: mb, Access: Global, Mode: trace.Sequential, Rate: 80e6},
		{Op: Read, BlockSize: 16 * mb, Access: Global, Mode: trace.Sequential, Rate: 100e6},
		{Op: Write, BlockSize: mb, Access: Global, Mode: trace.Sequential, Rate: 60e6},
		{Op: Read, BlockSize: mb, Access: Global, Mode: trace.Random, Rate: 10e6},
	} {
		t.Add(r)
	}
	return t
}

func TestLookupExact(t *testing.T) {
	tab := testTable()
	rate, mode, ok := tab.Lookup(Read, mb, Global, trace.Sequential)
	if !ok || rate != 80e6 || mode != trace.Sequential {
		t.Fatalf("exact lookup: %v %v %v", rate, mode, ok)
	}
}

func TestLookupBelowMinClamps(t *testing.T) {
	tab := testTable()
	rate, _, ok := tab.Lookup(Read, 4*kb, Global, trace.Sequential)
	if !ok || rate != 40e6 {
		t.Fatalf("below-min lookup = %v, want min row's 40e6", rate)
	}
}

func TestLookupAboveMaxClamps(t *testing.T) {
	tab := testTable()
	rate, _, ok := tab.Lookup(Read, 512*mb, Global, trace.Sequential)
	if !ok || rate != 100e6 {
		t.Fatalf("above-max lookup = %v, want max row's 100e6", rate)
	}
}

func TestLookupBetweenTakesClosestUpper(t *testing.T) {
	tab := testTable()
	// 512 KB sits between 32 KB and 1 MB: Fig. 11 takes the closest
	// upper value (1 MB ⇒ 80 MB/s).
	rate, _, ok := tab.Lookup(Read, 512*kb, Global, trace.Sequential)
	if !ok || rate != 80e6 {
		t.Fatalf("between lookup = %v, want upper row's 80e6", rate)
	}
}

func TestLookupModeFallback(t *testing.T) {
	tab := testTable()
	// No strided rows: Strided falls back to Sequential first (a
	// strided pattern still progresses forward through the file).
	rate, mode, ok := tab.Lookup(Read, mb, Global, trace.Strided)
	if !ok || rate != 80e6 || mode != trace.Sequential {
		t.Fatalf("fallback lookup = %v %v %v, want sequential's 80e6", rate, mode, ok)
	}
	// No random/strided writes: falls back to Sequential.
	rate, mode, ok = tab.Lookup(Write, mb, Global, trace.Random)
	if !ok || rate != 60e6 || mode != trace.Sequential {
		t.Fatalf("write fallback = %v %v %v", rate, mode, ok)
	}
}

func TestLookupMissFails(t *testing.T) {
	tab := testTable()
	if _, _, ok := tab.Lookup(Read, mb, Local, trace.Sequential); ok {
		t.Fatal("lookup with wrong access type must fail")
	}
	empty := &PerfTable{}
	if _, _, ok := empty.Lookup(Read, mb, Global, trace.Sequential); ok {
		t.Fatal("lookup in empty table must fail")
	}
}

// Property: the returned rate is always one of the table's rates for
// matching op/access, whatever the block size.
func TestQuickLookupReturnsTableRate(t *testing.T) {
	tab := testTable()
	valid := map[float64]bool{40e6: true, 80e6: true, 100e6: true}
	f := func(bsRaw uint32) bool {
		bs := int64(bsRaw)%(64*mb) + 1
		rate, _, ok := tab.Lookup(Read, bs, Global, trace.Sequential)
		return ok && valid[rate]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: lookup is monotone in block size for a monotone table.
func TestQuickLookupMonotone(t *testing.T) {
	tab := testTable()
	f := func(aRaw, bRaw uint32) bool {
		a := int64(aRaw)%(64*mb) + 1
		b := int64(bRaw)%(64*mb) + 1
		if a > b {
			a, b = b, a
		}
		ra, _, _ := tab.Lookup(Read, a, Global, trace.Sequential)
		rb, _, _ := tab.Lookup(Read, b, Global, trace.Sequential)
		return ra <= rb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
