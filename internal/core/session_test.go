package core

import (
	"strings"
	"testing"

	"ioeval/internal/cluster"
	"ioeval/internal/fault"
	"ioeval/internal/telemetry"
	"ioeval/internal/workload/btio"
)

func quickBTIO() *btio.App {
	return btio.New(btio.Config{
		Class: btio.Class{Name: "Q", N: 64, Steps: 20, WriteInterval: 5},
		Procs: 4, Subtype: btio.Full,
	})
}

// writeRate extracts the evaluation's measured write transfer rate.
func writeRate(t *testing.T, ev *Evaluation) float64 {
	t.Helper()
	for _, m := range ev.Measurements() {
		if m.Op == Write {
			return m.Rate
		}
	}
	t.Fatal("no write measurement")
	return 0
}

// auxSum sums one aux counter over all components matching a name
// predicate in the evaluation's telemetry snapshots.
func auxSum(ev *Evaluation, match func(string) bool, key string) int64 {
	var total int64
	for _, s := range ev.Components() {
		if match(s.Component) {
			total += s.Counters.Aux[key]
		}
	}
	return total
}

// TestSessionDegradedRAID5 is the acceptance scenario: a RAID 5
// Aohyper evaluation under the single-disk-failure plan must show a
// lower write transfer rate than the healthy run, with nonzero
// rebuild telemetry, and the full report must replay byte-identically
// from a fresh session.
func TestSessionDegradedRAID5(t *testing.T) {
	build := func() *cluster.Cluster { return cluster.Aohyper(cluster.RAID5) }
	plan, err := fault.Builtin("disk-fail")
	if err != nil {
		t.Fatal(err)
	}
	// Class A is big enough (~40 dumps) that the builtin failure at
	// t=2s lands inside the write phases and the flushes feel the
	// degraded array; the tiny quickBTIO class finishes before it.
	app := func() *btio.App {
		return btio.New(btio.Config{Class: btio.ClassA, Procs: 4, Subtype: btio.Full, ComputeScale: 1})
	}
	newRep := func() *Report {
		sess := NewSession(build,
			WithCharacterizeConfig(quickCharCfg()),
			WithFaultPlan(plan),
		)
		rep, err := sess.Run(app())
		if err != nil {
			t.Fatalf("session run: %v", err)
		}
		return rep
	}
	rep := newRep()

	if rep.Scenario != "disk-fail" {
		t.Fatalf("Scenario = %q", rep.Scenario)
	}
	if rep.Degraded == nil {
		t.Fatal("no degraded evaluation")
	}
	if rep.Degraded.Scenario() != "disk-fail" {
		t.Fatalf("degraded evaluation scenario = %q", rep.Degraded.Scenario())
	}
	if rep.Evaluation.Scenario() != "" {
		t.Fatalf("healthy evaluation tagged %q", rep.Evaluation.Scenario())
	}

	healthyW := writeRate(t, rep.Evaluation)
	degradedW := writeRate(t, rep.Degraded)
	if degradedW >= healthyW {
		t.Fatalf("degraded write rate %.2f MB/s not below healthy %.2f MB/s",
			degradedW/1e6, healthyW/1e6)
	}

	// The failure and its rebuild must be visible in the degraded
	// run's telemetry — and absent from the healthy one.
	isFault := func(name string) bool { return strings.HasPrefix(name, "fault:") }
	if got := auxSum(rep.Degraded, isFault, "disk_failures"); got != 1 {
		t.Fatalf("degraded disk_failures = %d", got)
	}
	if got := auxSum(rep.Degraded, isFault, "rebuilds_started"); got != 1 {
		t.Fatalf("degraded rebuilds_started = %d", got)
	}
	any := func(string) bool { return true }
	if got := auxSum(rep.Degraded, any, "rebuild_bytes"); got <= 0 {
		t.Fatalf("degraded rebuild_bytes = %d", got)
	}
	if got := auxSum(rep.Degraded, any, "degraded_reads"); got <= 0 {
		t.Logf("note: degraded_reads = %d (workload may be write-dominated)", got)
	}
	for _, s := range rep.Evaluation.Components() {
		if isFault(s.Component) {
			t.Fatalf("healthy evaluation has fault component %q", s.Component)
		}
	}
	var haveFaultLevel bool
	for _, s := range rep.Degraded.Components() {
		if s.Level == telemetry.LevelFault {
			haveFaultLevel = true
		}
	}
	if !haveFaultLevel {
		t.Fatal("no LevelFault component in degraded telemetry")
	}

	// The rendered report carries both halves plus the comparison.
	text := rep.String()
	for _, want := range []string{
		"fault scenario: disk-fail",
		"Healthy vs degraded used-%",
		"ΔRate%",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}
	if rep.DegradedUtilization == "" {
		t.Fatal("no degraded utilization report")
	}

	// Determinism: a fresh session replays the whole report
	// byte-identically.
	if again := newRep().String(); again != text {
		t.Fatal("degraded report not byte-identical across fresh sessions")
	}
}

func TestSessionEmptyPlanIsHealthy(t *testing.T) {
	build := func() *cluster.Cluster { return cluster.Aohyper(cluster.JBOD) }
	sess := NewSession(build,
		WithCharacterizeConfig(quickCharCfg()),
		WithFaultPlan(fault.Plan{}), // empty: must be ignored
	)
	if sess.Scenario() != "" {
		t.Fatalf("Scenario = %q for empty plan", sess.Scenario())
	}
	if _, ok := sess.FaultPlan(); ok {
		t.Fatal("FaultPlan reports an armed plan")
	}
	if _, err := sess.EvaluateScenario(quickBTIO()); err == nil {
		t.Fatal("EvaluateScenario without a plan did not error")
	}
	rep, err := sess.Run(quickBTIO())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded != nil || rep.Scenario != "" {
		t.Fatalf("healthy run produced degraded half: scenario=%q", rep.Scenario)
	}
	if strings.Contains(rep.String(), "fault scenario") {
		t.Fatal("healthy report mentions fault scenario")
	}
}

// TestSessionPresetCharacterization: WithCharacterization short-
// circuits the characterize step entirely.
func TestSessionPresetCharacterization(t *testing.T) {
	preset := &Characterization{Config: "preset", Tables: map[Level]*PerfTable{}}
	calls := 0
	build := func() *cluster.Cluster { calls++; return cluster.Aohyper(cluster.JBOD) }
	sess := NewSession(build, WithCharacterization(preset))
	ch, err := sess.Characterization()
	if err != nil {
		t.Fatal(err)
	}
	if ch != preset {
		t.Fatal("preset characterization not returned")
	}
	if calls != 0 {
		t.Fatalf("build called %d times for preset characterization", calls)
	}
}

// TestSessionCharacterizationSingleFlight: the characterization is
// computed once and shared by later calls.
func TestSessionCharacterizationSingleFlight(t *testing.T) {
	build := func() *cluster.Cluster { return cluster.Aohyper(cluster.JBOD) }
	sess := NewSession(build, WithCharacterizeConfig(quickCharCfg()))
	ch1, err := sess.Characterization()
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := sess.Characterization()
	if err != nil {
		t.Fatal(err)
	}
	if ch1 != ch2 {
		t.Fatal("characterization recomputed")
	}
}

// TestSessionRunReusesCharacterization: Run on a session that already
// characterized must reuse the cached tables, and a healthy session's
// report carries no degraded half.
func TestSessionRunReusesCharacterization(t *testing.T) {
	sess := NewSession(
		func() *cluster.Cluster { return cluster.Aohyper(cluster.JBOD) },
		WithCharacterizeConfig(quickCharCfg()),
	)
	ch1, err := sess.Characterization()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run(quickBTIO())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Characterization != ch1 {
		t.Fatal("Run recomputed the session's characterization")
	}
	if rep.Evaluation == nil || rep.Degraded != nil {
		t.Fatalf("report malformed: eval=%v degraded=%v", rep.Evaluation, rep.Degraded)
	}
}
