package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"ioeval/internal/cluster"
)

// A characterization is fully determined by the cluster configuration
// and the (normalized) characterization parameters — nothing else
// feeds the measurement. Hashing that pair gives a content address:
// equal inputs produce equal tables, so one fingerprint names one
// characterization, across processes and across time. The store
// (internal/store) keys its entries by it, and the sweep engine's
// in-memory single-flight shares cells through it.

const (
	fingerprintFormat  = "ioeval-char-fingerprint"
	fingerprintVersion = 1
)

// fingerprintEnvelope is the canonical form that gets hashed. Bumping
// Version (or changing any field) deliberately invalidates every
// stored entry — stale tables are never served for a new format.
type fingerprintEnvelope struct {
	Format  string             `json:"format"`
	Version int                `json:"version"`
	Cluster cluster.Config     `json:"cluster"`
	Char    CharacterizeConfig `json:"characterize"`
}

// Fingerprint derives the content address of the characterization the
// pair (build, cfg) would produce: a hex SHA-256 over the canonical
// JSON of the cluster configuration and the defaults-filled
// characterization parameters. build must return a fresh cluster per
// call (one probe instance is built to read its configuration).
//
// Two calls agree exactly when they would measure the same tables:
// defaults are filled before hashing, so an explicit
// LibProcs: 8 and a zero LibProcs fingerprint identically. The
// session-level fault plan is not part of the key — evaluation
// scenarios run against the healthy characterization — but a
// CharacterizeConfig.Fault plan is: degraded tables are a different
// measurement.
func Fingerprint(build func() *cluster.Cluster, cfg CharacterizeConfig) (string, error) {
	if build == nil {
		return "", fmt.Errorf("core: Fingerprint needs a cluster builder")
	}
	probe := build()
	env := fingerprintEnvelope{
		Format:  fingerprintFormat,
		Version: fingerprintVersion,
		Cluster: probe.Cfg,
		Char:    cfg.withDefaults(probe),
	}
	raw, err := json.Marshal(env)
	if err != nil {
		return "", fmt.Errorf("core: fingerprint: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}
