// Differential conformance suite for the characterization shard plan
// (DESIGN.md §14): the full Characterization — merged tables, the
// telemetry report of an evaluation against them, and the store entry
// written for them — must be byte-identical at every worker count.
// External test package so the real on-disk store can back the store
// leg (internal/store imports core). Run under -race in CI: the
// conformance claim covers the parallel executor's memory discipline,
// not just its output.
package core_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/fault"
	"ioeval/internal/nfs"
	"ioeval/internal/sim"
	"ioeval/internal/store"
	"ioeval/internal/workload/btio"
)

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
	gb = int64(1) << 30
)

// conformCluster mirrors the tiny golden fixture cluster: small enough
// that three worker counts characterize in well under a second each.
func conformCluster() *cluster.Cluster {
	return cluster.New(cluster.Config{
		Name:         "conform",
		ComputeNodes: 2,
		NodeRAM:      256 * mb,
		NodeDiskCap:  10 * gb,
		NodeDiskRate: 90e6,
		IONodeRAM:    256 * mb,
		IODiskCap:    20 * gb,
		IODiskRate:   100e6,
		Org:          cluster.RAID5,
		StripeUnit:   256 * kb,
		RAID5Disks:   5,
		NFSServer:    nfs.DefaultServerParams("conform-nfs"),
		NFSClient:    nfs.DefaultClientParams("conform-nfs"),
	})
}

func conformCharCfg() core.CharacterizeConfig {
	return core.CharacterizeConfig{
		FSBlockSizes:   []int64{64 * kb, mb, 4 * mb},
		FSModes:        []bench.Mode{bench.SeqWrite, bench.SeqRead, bench.RandWrite, bench.RandRead},
		LocalFileSize:  64 * mb,
		GlobalFileSize: 64 * mb,
		LibProcs:       2,
		LibBlockSizes:  []int64{4 * mb, 16 * mb},
		LibTransfer:    256 * kb,
		LibFileSize:    16 * mb,
		RandomOps:      128,
	}
}

// conformOutputs characterizes with n workers against a fresh store
// directory and returns every byte surface the conformance claim
// covers: the characterization JSON, the telemetry report of one
// evaluation against it, and the store entry file (name + content).
func conformOutputs(t *testing.T, cfg core.CharacterizeConfig, workers int) (char, telem, entry []byte, entryName string) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	sess := core.NewSession(conformCluster,
		core.WithCharacterizeConfig(cfg),
		core.WithCharacterizeWorkers(workers),
		core.WithStore(st))
	ch, err := sess.Characterization()
	if err != nil {
		t.Fatalf("characterize (workers=%d): %v", workers, err)
	}
	var buf bytes.Buffer
	if err := ch.WriteJSON(&buf); err != nil {
		t.Fatalf("encode characterization: %v", err)
	}
	char = append([]byte(nil), buf.Bytes()...)

	quick := btio.Class{Name: "Q", N: 64, Steps: 5, WriteInterval: 5}
	ev, err := sess.Evaluate(btio.New(btio.Config{Class: quick, Procs: 4, Subtype: btio.Full}))
	if err != nil {
		t.Fatalf("evaluate (workers=%d): %v", workers, err)
	}
	buf.Reset()
	if err := ev.TelemetryReport().WriteJSON(&buf); err != nil {
		t.Fatalf("encode telemetry: %v", err)
	}
	telem = append([]byte(nil), buf.Bytes()...)

	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("store entries = %v (err %v), want exactly one", entries, err)
	}
	entry, err = os.ReadFile(entries[0])
	if err != nil {
		t.Fatalf("read store entry: %v", err)
	}
	return char, telem, entry, filepath.Base(entries[0])
}

// TestCharWorkerConformance: workers = 1 is the sequential oracle;
// 4 and 8 must reproduce all three byte surfaces exactly, and land
// under the same content fingerprint (worker count must never leak
// into store keys — warm parallel runs must hit entries written by
// sequential ones and vice versa).
func TestCharWorkerConformance(t *testing.T) {
	cfg := conformCharCfg()
	char1, telem1, entry1, name1 := conformOutputs(t, cfg, 1)
	for _, workers := range []int{4, 8} {
		char, telem, entry, name := conformOutputs(t, cfg, workers)
		if !bytes.Equal(char, char1) {
			t.Errorf("workers=%d: characterization bytes differ from sequential", workers)
		}
		if !bytes.Equal(telem, telem1) {
			t.Errorf("workers=%d: telemetry report bytes differ from sequential", workers)
		}
		if !bytes.Equal(entry, entry1) {
			t.Errorf("workers=%d: store entry bytes differ from sequential", workers)
		}
		if name != name1 {
			t.Errorf("workers=%d: store entry name %s, want %s (fingerprint drift)", workers, name, name1)
		}
	}
}

// TestCharWorkerConformanceFaulted: with a characterization-side fault
// plan the shard plan degrades to one unit per level (fault timelines
// anchor at cluster birth), and the degraded tables must stay byte-
// identical across worker counts too.
func TestCharWorkerConformanceFaulted(t *testing.T) {
	plan, err := fault.Builtin("nfs-stall")
	if err != nil {
		t.Fatal(err)
	}
	plan.Events[0].At = 100 * sim.Millisecond
	cfg := conformCharCfg()
	cfg.Fault = &plan

	char1, telem1, entry1, _ := conformOutputs(t, cfg, 1)
	char4, telem4, entry4, _ := conformOutputs(t, cfg, 4)
	if !bytes.Equal(char4, char1) {
		t.Error("faulted characterization bytes differ between workers=1 and workers=4")
	}
	if !bytes.Equal(telem4, telem1) {
		t.Error("faulted telemetry bytes differ between workers=1 and workers=4")
	}
	if !bytes.Equal(entry4, entry1) {
		t.Error("faulted store entry bytes differ between workers=1 and workers=4")
	}
}
