package core

import (
	"bytes"
	"math/rand"
	"sync/atomic"
	"testing"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/fault"
	"ioeval/internal/sim"
	"ioeval/internal/trace"
)

// TestCharPlanShape pins the shard-plan granularity contract: healthy
// configs shard per (level × block size) with the full mode list
// inside a unit; configs with a characterization-side fault plan get
// exactly one unit per level (fault timelines anchor at cluster
// birth), reproducing the monolithic per-level blocks.
func TestCharPlanShape(t *testing.T) {
	base := goldenCharCfg() // 2 FS block sizes, 1 library point
	faulted := goldenCharCfg()
	plan := fault.Plan{Name: "x", Seed: 1, Events: []fault.Event{{Kind: fault.DiskSlow, At: sim.Second, Factor: 2}}}
	faulted.Fault = &plan

	t.Run("healthy", func(t *testing.T) {
		units := charPlan(base)
		want := 2*len(base.FSBlockSizes) + len(base.LibBlockSizes)
		if len(units) != want {
			t.Fatalf("len(units) = %d, want %d", len(units), want)
		}
		// Canonical order: local FS block sizes in sweep order, then
		// global FS, then library points.
		idx := 0
		for _, level := range []Level{LevelLocalFS, LevelNFS} {
			for _, bs := range base.FSBlockSizes {
				u := units[idx]
				idx++
				if u.Level != level || len(u.BlockSizes) != 1 || u.BlockSizes[0] != bs {
					t.Fatalf("unit %d = %+v, want level %v bs %d", idx-1, u, level, bs)
				}
				if len(u.Modes) != len(base.FSModes) {
					t.Fatalf("unit %d carries %d modes, want the full list (%d)", idx-1, len(u.Modes), len(base.FSModes))
				}
				if u.Fault != nil {
					t.Fatalf("healthy unit %d carries a fault plan", idx-1)
				}
			}
		}
		for _, bs := range base.LibBlockSizes {
			u := units[idx]
			idx++
			if u.Level != LevelIOLib || len(u.BlockSizes) != 1 || u.BlockSizes[0] != bs {
				t.Fatalf("unit %d = %+v, want library bs %d", idx-1, u, bs)
			}
		}
		if units[0].FileSize != base.LocalFileSize || units[len(units)-1].FileSize != base.LibFileSize {
			t.Fatal("unit file sizes do not follow their level")
		}
	})

	t.Run("faulted", func(t *testing.T) {
		units := charPlan(faulted)
		if len(units) != 3 {
			t.Fatalf("len(units) = %d, want one per level", len(units))
		}
		for i, level := range []Level{LevelLocalFS, LevelNFS, LevelIOLib} {
			if units[i].Level != level {
				t.Fatalf("unit %d level = %v, want %v", i, units[i].Level, level)
			}
			if units[i].Fault != faulted.Fault {
				t.Fatalf("unit %d does not carry the fault plan", i)
			}
		}
		if got := units[0].BlockSizes; len(got) != len(faulted.FSBlockSizes) {
			t.Fatalf("faulted FS unit has %d block sizes, want the full sweep (%d)", len(got), len(faulted.FSBlockSizes))
		}
	})
}

// TestCharPlanMergePermutation is the merge property test (modeled on
// table_property_test.go): for randomized shard plans and synthetic
// per-unit rows, delivering unit results in ANY completion order must
// merge to byte-identical tables — the canonical row order is a
// function of the plan alone, never of scheduling.
func TestCharPlanMergePermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(20110926))
	randSizes := func(n int) []int64 {
		sizes := make([]int64, 0, n)
		for len(sizes) < n {
			sizes = append(sizes, (1+int64(rng.Intn(1<<10)))*1024)
		}
		return sizes
	}
	for trial := 0; trial < 50; trial++ {
		cfg := CharacterizeConfig{
			FSBlockSizes:   randSizes(1 + rng.Intn(6)),
			FSModes:        []bench.Mode{bench.SeqWrite, bench.SeqRead}[:1+rng.Intn(2)],
			LocalFileSize:  64 << 20,
			GlobalFileSize: 64 << 20,
			LibProcs:       2,
			LibBlockSizes:  randSizes(1 + rng.Intn(4)),
			LibTransfer:    256 << 10,
			LibFileSize:    16 << 20,
			RandomOps:      64,
		}
		if rng.Intn(3) == 0 {
			cfg.Fault = &fault.Plan{Name: "perm", Seed: 1, Events: []fault.Event{{Kind: fault.DiskSlow, At: sim.Second, Factor: 2}}}
		}
		units := charPlan(cfg)

		// Synthetic rows: a deterministic function of the unit's plan
		// index, so a misplaced merge shows up as misplaced rates.
		rowsFor := func(i int) []Row {
			u := units[i]
			var rows []Row
			for _, bs := range u.BlockSizes {
				rows = append(rows, Row{Op: Write, BlockSize: bs, Access: Global,
					Mode: trace.Sequential, Rate: float64(1000*i) + float64(bs%997)})
			}
			return rows
		}
		reference := make([][]Row, len(units))
		for i := range units {
			reference[i] = rowsFor(i)
		}
		want := mergeUnits("perm", "", units, reference)

		for p := 0; p < 20; p++ {
			// Simulate an arbitrary completion order: workers finish
			// units in permuted order, each writing its own plan slot.
			rows := make([][]Row, len(units))
			for _, i := range rng.Perm(len(units)) {
				rows[i] = rowsFor(i)
			}
			got := mergeUnits("perm", "", units, rows)
			if !sameTables(t, got, want) {
				t.Fatalf("trial %d perm %d: merged tables differ from canonical order", trial, p)
			}
		}
	}
}

// sameTables compares two characterizations byte-wise through the
// persistence encoding — the same surface the store round-trips.
func sameTables(t *testing.T, a, b *Characterization) bool {
	t.Helper()
	var ab, bb bytes.Buffer
	if err := a.WriteJSON(&ab); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := b.WriteJSON(&bb); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return bytes.Equal(ab.Bytes(), bb.Bytes())
}

// TestCharacterizeProbeReuse: the probe cluster withDefaults needs is
// not thrown away — it serves one measurement unit, so characterize
// builds exactly len(plan) clusters, sequentially or pooled.
func TestCharacterizeProbeReuse(t *testing.T) {
	cfg := goldenCharCfg()
	wantBuilds := int64(len(charPlan(cfg)))
	for _, workers := range []int{1, 4} {
		var builds atomic.Int64
		build := func() *cluster.Cluster {
			builds.Add(1)
			return goldenCluster()
		}
		var pool *CharPool
		if workers > 1 {
			pool = NewCharPool(workers)
		}
		if _, err := characterize(build, cfg, pool); err != nil {
			t.Fatalf("characterize (workers=%d): %v", workers, err)
		}
		if builds.Load() != wantBuilds {
			t.Errorf("workers=%d: Build called %d times, want %d (probe reused for a unit)",
				workers, builds.Load(), wantBuilds)
		}
	}
}
