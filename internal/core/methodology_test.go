package core

import (
	"strings"
	"testing"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/mpiio"
	"ioeval/internal/sim"
	"ioeval/internal/trace"
	"ioeval/internal/workload/btio"
	"ioeval/internal/workload/madbench"
)

const gb = int64(1) << 30

// quickCharCfg keeps characterization fast for unit tests.
func quickCharCfg() CharacterizeConfig {
	return CharacterizeConfig{
		FSBlockSizes: []int64{64 * kb, mb, 4 * mb},
		FSModes: []bench.Mode{
			bench.SeqWrite, bench.SeqRead,
			bench.StrideWrite, bench.StrideRead,
		},
		LocalFileSize:  512 * mb,
		GlobalFileSize: 512 * mb,
		LibProcs:       4,
		LibBlockSizes:  []int64{4 * mb, 32 * mb},
		LibTransfer:    256 * kb,
		LibFileSize:    256 * mb,
		RandomOps:      512,
	}
}

func TestCharacterizeProducesThreeLevels(t *testing.T) {
	ch, err := characterize(func() *cluster.Cluster { return cluster.Aohyper(cluster.RAID5) }, quickCharCfg(), nil)
	if err != nil {
		t.Fatalf("characterize: %v", err)
	}
	for _, level := range Levels() {
		tab := ch.Table(level)
		if tab == nil || len(tab.Rows) == 0 {
			t.Fatalf("level %v has no rows", level)
		}
		for _, r := range tab.Rows {
			if r.Rate <= 0 {
				t.Fatalf("level %v: non-positive rate in %+v", level, r)
			}
		}
	}
	// Path ordering: NFS-level rates cannot exceed the wire; local FS
	// large sequential reads must beat NFS ones (no network hop).
	nfsRead, _, _ := ch.Table(LevelNFS).Lookup(Read, 4*mb, Global, trace.Sequential)
	localRead, _, _ := ch.Table(LevelLocalFS).Lookup(Read, 4*mb, Local, trace.Sequential)
	if nfsRead > 117e6 {
		t.Fatalf("NFS read rate %.1f MB/s beats GigE", nfsRead/1e6)
	}
	if localRead <= nfsRead {
		t.Fatalf("local read (%.1f) not faster than NFS (%.1f)", localRead/1e6, nfsRead/1e6)
	}
}

func TestMeasurementsFromTrace(t *testing.T) {
	tr := trace.New()
	tr.Record(mpiio.Event{Rank: 0, Op: mpiio.OpWrite, File: "/f", Offset: 0,
		Bytes: 100 * mb, Count: 10, T0: 0, T1: sim.Time(sim.Second)})
	tr.Record(mpiio.Event{Rank: 1, Op: mpiio.OpWrite, File: "/f", Offset: 0,
		Bytes: 100 * mb, Count: 10, T0: 0, T1: sim.Time(2 * sim.Second)})
	ms := MeasurementsFromTrace(tr, Global)
	if len(ms) != 1 {
		t.Fatalf("measurements = %+v", ms)
	}
	m := ms[0]
	if m.Op != Write || m.Ops != 20 || m.Bytes != 200*mb {
		t.Fatalf("measurement = %+v", m)
	}
	// Aggregate rate: 200 MB over the slowest rank's 2 s = 100 MB/s.
	if m.Rate < 100e6 || m.Rate > 105e6 {
		t.Fatalf("rate = %.1f MB/s, want ~104", m.Rate/1e6)
	}
	if m.BlockSize != 10*mb {
		t.Fatalf("block size = %d", m.BlockSize)
	}
}

func TestUsedTableAgainstKnownRates(t *testing.T) {
	ch := &Characterization{Config: "t", Tables: map[Level]*PerfTable{
		LevelNFS: {Level: LevelNFS, Rows: []Row{
			{Op: Write, BlockSize: mb, Access: Global, Mode: trace.Sequential, Rate: 100e6},
		}},
		LevelLocalFS: {Level: LevelLocalFS, Rows: []Row{
			{Op: Write, BlockSize: mb, Access: Local, Mode: trace.Sequential, Rate: 200e6},
		}},
	}}
	ms := []Measurement{{Op: Write, BlockSize: mb, Access: Global, Mode: trace.Sequential, Rate: 50e6, Ops: 1, Bytes: mb}}
	used := UsedTable(ms, ch)
	if len(used) != 2 {
		t.Fatalf("used rows = %d, want 2 (levels with tables)", len(used))
	}
	for _, u := range used {
		switch u.Level {
		case LevelNFS:
			if u.UsedPct != 50 {
				t.Fatalf("NFS used%% = %.1f, want 50", u.UsedPct)
			}
		case LevelLocalFS:
			if u.UsedPct != 25 {
				t.Fatalf("local used%% = %.1f, want 25", u.UsedPct)
			}
		}
	}
}

// The end-to-end methodology on a reduced BT-IO: full subtype must
// use a much higher fraction of the I/O system than simple (the
// paper's Tables III/IV conclusion).
func TestEndToEndFullVsSimple(t *testing.T) {
	build := func() *cluster.Cluster { return cluster.Aohyper(cluster.RAID5) }
	ch, err := characterize(build, quickCharCfg(), nil)
	if err != nil {
		t.Fatalf("characterize: %v", err)
	}
	quick := btio.Class{Name: "Q", N: 64, Steps: 20, WriteInterval: 5}
	run := func(st btio.Subtype) *Evaluation {
		ev, err := evaluate(build(), btio.New(btio.Config{Class: quick, Procs: 4, Subtype: st}), ch)
		if err != nil {
			t.Fatalf("evaluate: %v", err)
		}
		return ev
	}
	full := run(btio.Full)
	simple := run(btio.Simple)

	fullW := full.UsedFor(LevelIOLib, Write)
	simpleW := simple.UsedFor(LevelIOLib, Write)
	if fullW < 0 || simpleW < 0 {
		t.Fatalf("missing used rows: full=%v simple=%v", fullW, simpleW)
	}
	if fullW < 2*simpleW {
		t.Fatalf("full library write used%% (%.1f) not ≫ simple (%.1f)", fullW, simpleW)
	}
	if simple.Result().IOTime < full.Result().IOTime {
		t.Fatalf("simple I/O time (%v) below full (%v)", simple.Result().IOTime, full.Result().IOTime)
	}
	// Profiles: full has 1 op per rank per dump; simple has thousands.
	if simple.Profile().NumWrites < 100*full.Profile().NumWrites {
		t.Fatalf("op counts: full=%d simple=%d", full.Profile().NumWrites, simple.Profile().NumWrites)
	}
}

func TestEvaluateMadBenchReportsPhases(t *testing.T) {
	build := func() *cluster.Cluster { return cluster.Aohyper(cluster.JBOD) }
	ch, err := characterize(build, quickCharCfg(), nil)
	if err != nil {
		t.Fatalf("characterize: %v", err)
	}
	app := madbench.New(madbench.Config{Procs: 4, KPix: 4, Bins: 4, FileType: madbench.Shared})
	ev, err := evaluate(build(), app, ch)
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	if ev.Result().PhaseRates["S_w"] <= 0 {
		t.Fatalf("phase rates missing: %+v", ev.Result().PhaseRates)
	}
	if ev.UsedFor(LevelNFS, Write) <= 0 || ev.UsedFor(LevelNFS, Read) <= 0 {
		t.Fatalf("used table incomplete: %+v", ev.Used())
	}
}

func TestReports(t *testing.T) {
	tab := testTable()
	s := FormatPerfTable(tab)
	if !strings.Contains(s, "OperationType") || !strings.Contains(s, "network FS") {
		t.Fatalf("perf table render:\n%s", s)
	}
	used := []UsedRow{{Level: LevelNFS, Op: Write, BlockSize: mb, Mode: trace.Sequential,
		MeasuredRate: 50e6, CharRate: 100e6, UsedPct: 50, CharAvailable: true}}
	s = FormatUsedTable(used)
	if !strings.Contains(s, "50.0") {
		t.Fatalf("used table render:\n%s", s)
	}
	s = AnalyzeConfiguration(cluster.Aohyper(cluster.RAID1))
	if !strings.Contains(s, "RAID1") {
		t.Fatalf("config analysis render:\n%s", s)
	}
}

// The methodology on a parallel-filesystem configuration: the same
// application that collapses on NFS (per-op locks + sync commits)
// exploits a far larger fraction of a PVFS-like deployment, and the
// characterization machinery handles the alternate architecture
// end to end.
func TestMethodologyOnPFS(t *testing.T) {
	pfsCfg := cluster.Aohyper(cluster.RAID5).Cfg
	pfsCfg.PFSIONodes = 4
	buildPFS := func() *cluster.Cluster { return cluster.New(pfsCfg) }

	charCfg := quickCharCfg()
	charCfg.UsePFS = true
	chPFS, err := characterize(buildPFS, charCfg, nil)
	if err != nil {
		t.Fatalf("characterize PFS: %v", err)
	}
	if chPFS.Config != "aohyper/pfs-4" {
		t.Fatalf("config name = %q", chPFS.Config)
	}
	for _, level := range Levels() {
		if tab := chPFS.Table(level); tab == nil || len(tab.Rows) == 0 {
			t.Fatalf("PFS level %v not characterized", level)
		}
	}

	quickClass := btio.Class{Name: "Q", N: 64, Steps: 20, WriteInterval: 5}
	evPFS, err := evaluate(buildPFS(), btio.New(btio.Config{
		Class: quickClass, Procs: 4, Subtype: btio.Simple, UsePFS: true,
	}), chPFS)
	if err != nil {
		t.Fatalf("evaluate on PFS: %v", err)
	}

	buildNFS := func() *cluster.Cluster { return cluster.Aohyper(cluster.RAID5) }
	chNFS, err := characterize(buildNFS, quickCharCfg(), nil)
	if err != nil {
		t.Fatalf("characterize NFS: %v", err)
	}
	evNFS, err := evaluate(buildNFS(), btio.New(btio.Config{
		Class: quickClass, Procs: 4, Subtype: btio.Simple,
	}), chNFS)
	if err != nil {
		t.Fatalf("evaluate on NFS: %v", err)
	}

	if evPFS.Result().IOTime >= evNFS.Result().IOTime {
		t.Fatalf("simple on PFS (%v) not faster than on NFS (%v)",
			evPFS.Result().IOTime, evNFS.Result().IOTime)
	}
	pfsUsed := evPFS.UsedFor(LevelNFS, Write)
	nfsUsed := evNFS.UsedFor(LevelNFS, Write)
	if pfsUsed <= nfsUsed {
		t.Fatalf("simple write used%%: PFS %.1f not above NFS %.1f", pfsUsed, nfsUsed)
	}
}

func TestSessionFacade(t *testing.T) {
	sess := NewSession(
		func() *cluster.Cluster { return cluster.Aohyper(cluster.RAID5) },
		WithCharacterizeConfig(quickCharCfg()),
		WithRequirements(Requirements{MinWriteRate: 10e6, MaxIOFraction: 0.99}),
	)
	quickClass := btio.Class{Name: "Q", N: 64, Steps: 20, WriteInterval: 5}
	rep, err := sess.Run(btio.New(btio.Config{Class: quickClass, Procs: 4, Subtype: btio.Full}))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := rep.String()
	for _, want := range []string{
		"I/O configuration analysis", "Characterization", "Evaluation",
		"Requirements", "Utilization", "Used%", "IOPS",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// Characterization must be cached across runs.
	ch1 := rep.Characterization
	rep2, err := sess.Run(btio.New(btio.Config{Class: quickClass, Procs: 4, Subtype: btio.Simple}))
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if rep2.Characterization != ch1 {
		t.Fatal("characterization recomputed")
	}
}

func TestSessionNeedsBuilder(t *testing.T) {
	sess := NewSession(nil)
	if _, err := sess.Characterization(); err == nil {
		t.Fatal("expected error without a builder")
	}
}

// Distinct sessions must characterize in parallel: each Build
// function below waits until the other session's Build has also
// started, so the test deadlocks (and times out) if first-time
// characterizations serialize behind a lock held across the
// characterization phase.
func TestSessionsCharacterizeInParallel(t *testing.T) {
	cfg := quickCharCfg()
	cfg.FSBlockSizes = cfg.FSBlockSizes[:1]
	cfg.FSModes = cfg.FSModes[:2]
	cfg.LibBlockSizes = cfg.LibBlockSizes[:1]

	started := make(chan int, 2)
	release := make(chan struct{})
	mk := func(id int) *Session {
		first := true
		return NewSession(func() *cluster.Cluster {
			if first { // characterization builds several clusters; gate only the first
				first = false
				started <- id
				<-release
			}
			return cluster.Aohyper(cluster.JBOD)
		}, WithCharacterizeConfig(cfg))
	}
	ms := []*Session{mk(0), mk(1)}
	done := make(chan error, len(ms))
	for _, m := range ms {
		go func(m *Session) {
			_, err := m.Characterization()
			done <- err
		}(m)
	}
	seen := map[int]bool{}
	for i := 0; i < len(ms); i++ {
		seen[<-started] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("both characterizations should be in flight, got %v", seen)
	}
	close(release)
	for range ms {
		if err := <-done; err != nil {
			t.Fatalf("characterize: %v", err)
		}
	}
}
