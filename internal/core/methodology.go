package core

import (
	"fmt"
	"strings"
	"sync"

	"ioeval/internal/cluster"
	"ioeval/internal/workload"
)

// Methodology is the one-stop entry point: it strings the paper's
// three phases together for a configuration and produces a complete
// report. Characterization is computed on first use and cached, so
// many applications can be evaluated against one configuration
// cheaply (the phase structure the paper intends).
type Methodology struct {
	// Build returns a fresh cluster of the configuration under study.
	Build func() *cluster.Cluster
	// CharConfig parameterizes the characterization phase; the zero
	// value uses the paper's defaults.
	CharConfig CharacterizeConfig
	// Requirements, when non-nil, are checked against every
	// evaluation.
	Requirements *Requirements

	charOnce sync.Once
	char     *Characterization
	charErr  error
}

// Report is the output of one methodology run for one application.
type Report struct {
	Characterization *Characterization
	ConfigAnalysis   string
	Evaluation       *Evaluation
	Checks           []RequirementCheck
	Utilization      string
}

// Characterization returns (computing once) the configuration's
// performance tables. Safe for concurrent use: parallel studies may
// evaluate many applications against one Methodology, and the first
// callers must not race to characterize. Single-flight via sync.Once
// rather than a mutex held across Characterize, so concurrent sweeps
// over distinct Methodology values never serialize on each other and
// late callers on the same value block only until the first
// computation lands. The first outcome — including an error — is
// cached for the lifetime of the Methodology.
func (m *Methodology) Characterization() (*Characterization, error) {
	if m.Build == nil {
		return nil, fmt.Errorf("core: Methodology needs a Build function")
	}
	m.charOnce.Do(func() {
		m.char, m.charErr = Characterize(m.Build, m.CharConfig)
	})
	return m.char, m.charErr
}

// Run executes all three phases for the application.
func (m *Methodology) Run(app workload.App) (*Report, error) {
	ch, err := m.Characterization()
	if err != nil {
		return nil, err
	}
	c := m.Build()
	analysis := AnalyzeConfiguration(c)
	ev, err := Evaluate(c, app, ch)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Characterization: ch,
		ConfigAnalysis:   analysis,
		Evaluation:       ev,
		Utilization:      c.UtilizationReport(),
	}
	if m.Requirements != nil {
		rep.Checks = CheckEvaluation(*m.Requirements, ev)
	}
	return rep, nil
}

// String renders the full report.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString("== I/O configuration analysis ==\n")
	b.WriteString(r.ConfigAnalysis)
	b.WriteString("\n== Characterization (system side) ==\n")
	for _, level := range Levels() {
		if t := r.Characterization.Table(level); t != nil {
			b.WriteString(FormatPerfTable(t))
			b.WriteByte('\n')
		}
	}
	b.WriteString("== Application characterization ==\n")
	b.WriteString(FormatProfile(r.Evaluation.AppName, r.Evaluation.Profile))
	b.WriteString("\n== Evaluation ==\n")
	b.WriteString(FormatEvaluation(r.Evaluation))
	if len(r.Checks) > 0 {
		b.WriteString("\n== Requirements ==\n")
		b.WriteString(FormatChecks(r.Checks))
	}
	b.WriteString("\n== Utilization ==\n")
	b.WriteString(r.Utilization)
	return b.String()
}
