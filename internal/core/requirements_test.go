package core

import (
	"strings"
	"testing"

	"ioeval/internal/sim"
	"ioeval/internal/workload"
)

func evalWithRates(wRate, rRate float64, ioFrac float64) *Evaluation {
	return &Evaluation{
		result: workload.Result{
			ExecTime: 100 * sim.Second,
			IOTime:   sim.Duration(ioFrac * 100 * float64(sim.Second)),
		},
		meas: []Measurement{
			{Op: Write, Rate: wRate},
			{Op: Read, Rate: rRate},
		},
	}
}

func TestCheckEvaluationAllMet(t *testing.T) {
	req := Requirements{MinWriteRate: 50e6, MinReadRate: 40e6, MaxIOFraction: 0.5}
	checks := CheckEvaluation(req, evalWithRates(60e6, 45e6, 0.3))
	if len(checks) != 3 || !Satisfied(checks) {
		t.Fatalf("checks = %+v", checks)
	}
}

func TestCheckEvaluationViolations(t *testing.T) {
	req := Requirements{MinWriteRate: 50e6, MaxIOFraction: 0.2}
	checks := CheckEvaluation(req, evalWithRates(10e6, 45e6, 0.9))
	if Satisfied(checks) {
		t.Fatalf("violations not detected: %+v", checks)
	}
	var failed int
	for _, c := range checks {
		if !c.Satisfied {
			failed++
		}
	}
	if failed != 2 {
		t.Fatalf("failed = %d, want 2: %+v", failed, checks)
	}
}

func TestCheckEvaluationNoRequirements(t *testing.T) {
	if checks := CheckEvaluation(Requirements{}, evalWithRates(1, 1, 1)); len(checks) != 0 {
		t.Fatalf("checks = %+v", checks)
	}
}

func TestCheckPrediction(t *testing.T) {
	tr := syntheticTrace(10, 10<<20, 10<<20)
	m := BuildModel("app", tr, 4)
	pred := Predict(m, modelChar(100e6, 100e6))
	// Predicted rates equal the characterized 100 MB/s (bytes/time by
	// construction), so 50 MB/s requirements pass and 200 MB/s fail.
	pass := CheckPrediction(Requirements{MinWriteRate: 50e6, MinReadRate: 50e6}, m, pred)
	if !Satisfied(pass) {
		t.Fatalf("pass checks: %+v", pass)
	}
	fail := CheckPrediction(Requirements{MinWriteRate: 200e6}, m, pred)
	if Satisfied(fail) {
		t.Fatalf("fail checks: %+v", fail)
	}
}

func TestFormatChecks(t *testing.T) {
	req := Requirements{MinWriteRate: 50e6}
	out := FormatChecks(CheckEvaluation(req, evalWithRates(10e6, 0, 0)))
	if !strings.Contains(out, "NOT MET") {
		t.Fatalf("render:\n%s", out)
	}
}
