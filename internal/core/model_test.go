package core

import (
	"strings"
	"testing"

	"ioeval/internal/cluster"
	"ioeval/internal/mpiio"
	"ioeval/internal/sim"
	"ioeval/internal/trace"
	"ioeval/internal/workload/btio"
)

// syntheticTrace builds a trace with w write phases of wBytes and one
// read phase, mimicking the BT-IO structure.
func syntheticTrace(w int, wBytes, rBytes int64) *trace.Tracer {
	tr := trace.New()
	tm := sim.Time(0)
	for i := 0; i < w; i++ {
		tr.Record(mpiio.Event{Rank: 0, Op: mpiio.OpCompute, Offset: -1, T0: tm, T1: tm + 100})
		tm += 100
		tr.Record(mpiio.Event{Rank: 0, Op: mpiio.OpWrite, File: "/f", Offset: int64(i) * wBytes,
			Bytes: wBytes, Count: 1, Span: wBytes, T0: tm, T1: tm + 50})
		tm += 50
	}
	tr.Record(mpiio.Event{Rank: 0, Op: mpiio.OpBarrier, Offset: -1, T0: tm, T1: tm + 1})
	tm++
	tr.Record(mpiio.Event{Rank: 0, Op: mpiio.OpRead, File: "/f", Offset: 0,
		Bytes: rBytes, Count: 1, Span: rBytes, T0: tm, T1: tm + 50})
	return tr
}

func modelChar(writeRate, readRate float64) *Characterization {
	return &Characterization{Config: "synthetic", Tables: map[Level]*PerfTable{
		LevelIOLib: {Level: LevelIOLib, Rows: []Row{
			{Op: Write, BlockSize: 1 << 20, Access: Global, Mode: trace.Sequential, Rate: writeRate},
			{Op: Read, BlockSize: 1 << 20, Access: Global, Mode: trace.Sequential, Rate: readRate},
		}},
	}}
}

func TestBuildModelFromSignature(t *testing.T) {
	tr := syntheticTrace(40, 10<<20, 10<<20)
	m := BuildModel("app", tr, 16)
	if len(m.Phases) != 2 {
		t.Fatalf("phases = %d, want 2 (write pattern + read pattern): %+v", len(m.Phases), m.Phases)
	}
	w := m.Phases[0]
	if w.Kind != Write || w.Weight != 40 || w.Bytes != 10<<20 {
		t.Fatalf("write pattern = %+v", w)
	}
	if got := m.TotalBytes(Write); got != 40*16*(10<<20) {
		t.Fatalf("total write bytes = %d", got)
	}
}

func TestPredictArithmetic(t *testing.T) {
	tr := syntheticTrace(10, 10<<20, 100<<20)
	m := BuildModel("app", tr, 4)
	// Write: 10 occurrences × 10 MiB × 4 ranks = 400 MiB at 100 MB/s
	// ⇒ ~4.19 s. Read: 1 × 100 MiB × 4 = 400 MiB at 50 MB/s ⇒ ~8.39 s.
	pred := Predict(m, modelChar(100e6, 50e6))
	if s := pred.WriteTime.Seconds(); s < 4.1 || s > 4.3 {
		t.Fatalf("predicted write time = %v", pred.WriteTime)
	}
	if s := pred.ReadTime.Seconds(); s < 8.3 || s > 8.5 {
		t.Fatalf("predicted read time = %v", pred.ReadTime)
	}
	if pred.IOTime != pred.WriteTime+pred.ReadTime {
		t.Fatal("IO time must be the sum of directions")
	}
}

func TestPredictUsesBindingLevel(t *testing.T) {
	ch := modelChar(100e6, 100e6)
	ch.Tables[LevelNFS] = &PerfTable{Level: LevelNFS, Rows: []Row{
		{Op: Write, BlockSize: 1 << 20, Access: Global, Mode: trace.Sequential, Rate: 10e6}, // slowest level
	}}
	tr := syntheticTrace(1, 10<<20, 10<<20)
	m := BuildModel("app", tr, 1)
	pred := Predict(m, ch)
	if pred.Phases[0].Level != LevelNFS || pred.Phases[0].Rate != 10e6 {
		t.Fatalf("binding level = %+v", pred.Phases[0])
	}
}

func TestSelectConfigurationRanks(t *testing.T) {
	fast := modelChar(200e6, 200e6)
	fast.Config = "fast"
	slow := modelChar(20e6, 20e6)
	slow.Config = "slow"
	tr := syntheticTrace(5, 10<<20, 10<<20)
	m := BuildModel("app", tr, 4)
	ranked := SelectConfiguration(m, []*Characterization{slow, fast})
	if len(ranked) != 2 || ranked[0].Config != "fast" {
		t.Fatalf("ranking = %+v", ranked)
	}
	if ranked[0].IOTime >= ranked[1].IOTime {
		t.Fatal("ranking not by predicted I/O time")
	}
}

func TestFormatPrediction(t *testing.T) {
	tr := syntheticTrace(2, 1<<20, 1<<20)
	m := BuildModel("app", tr, 2)
	out := FormatPrediction(Predict(m, modelChar(50e6, 50e6)))
	if !strings.Contains(out, "Predicted I/O time") || !strings.Contains(out, "binding level") {
		t.Fatalf("render:\n%s", out)
	}
}

// End-to-end model validation: predict BT-IO from a trace captured on
// one run, compare against the measured I/O time of that run. The
// model is coarse (it ignores cache wins and op-count client costs)
// but must preserve ordering and land within a small factor for the
// pattern-bound simple subtype.
func TestModelValidationAgainstRuns(t *testing.T) {
	build := func() *cluster.Cluster { return cluster.Aohyper(cluster.RAID5) }
	ch, err := characterize(build, quickCharCfg(), nil)
	if err != nil {
		t.Fatalf("characterize: %v", err)
	}
	quickClass := btio.Class{Name: "Q", N: 64, Steps: 20, WriteInterval: 5}

	run := func(st btio.Subtype) (*Evaluation, Prediction) {
		app := btio.New(btio.Config{Class: quickClass, Procs: 4, Subtype: st})
		ev, err := evaluate(build(), app, ch)
		if err != nil {
			t.Fatalf("evaluate: %v", err)
		}
		m := BuildModel(app.Name(), ev.Trace(), 4)
		return ev, Predict(m, ch)
	}
	evFull, predFull := run(btio.Full)
	evSimple, predSimple := run(btio.Simple)

	// Ordering: the model must agree that simple is far slower.
	if predSimple.IOTime <= predFull.IOTime {
		t.Fatalf("model ordering wrong: simple %v vs full %v", predSimple.IOTime, predFull.IOTime)
	}
	// Accuracy: within 4x either way for both subtypes (the model has
	// only the characterized rate tables to go on).
	check := func(name string, measured, predicted sim.Duration) {
		ratio := float64(predicted) / float64(measured)
		if ratio < 0.25 || ratio > 4 {
			t.Errorf("%s: predicted %v vs measured %v (ratio %.2f)", name, predicted, measured, ratio)
		}
	}
	check("full", evFull.Result().IOTime, predFull.IOTime)
	check("simple", evSimple.Result().IOTime, predSimple.IOTime)
}
