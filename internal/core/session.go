package core

import (
	"fmt"
	"sync"

	"ioeval/internal/cluster"
	"ioeval/internal/fault"
	"ioeval/internal/workload"
)

// Session is the one option-based entry point to the methodology: it
// binds a configuration (a cluster builder), the characterization
// parameters, an optional fault plan and optional requirements, and
// strings the paper's three phases together. Characterization is
// computed on first use and cached, so many applications can be
// evaluated against one Session cheaply; with a fault plan set, Run
// evaluates the application both healthy and under the scenario and
// reports the used-% tables side by side. With a store attached
// (WithStore), characterization is looked up by content fingerprint
// before being measured, and written back on a miss — warm sessions
// skip the expensive phase entirely.
//
// Session is the sole entry point to the methodology: the former
// Characterize/Evaluate/Methodology surface was removed in its favor.
type Session struct {
	build   func() *cluster.Cluster
	charCfg CharacterizeConfig
	plan    *fault.Plan
	reqs    *Requirements
	preset  *Characterization // preloaded tables (WithCharacterization)
	store   CharStore
	pool    *CharPool // nil = sequential characterization

	charOnce sync.Once
	char     *Characterization
	charErr  error
}

// CharStore is a persistent characterization cache keyed by content
// fingerprint (see Fingerprint). GetOrCompute returns the stored
// characterization for the fingerprint, or calls compute exactly once
// per process to fill the entry. internal/store provides the on-disk
// implementation; the interface lives here so core does not depend on
// the store's mechanics.
type CharStore interface {
	GetOrCompute(fingerprint string, compute func() (*Characterization, error)) (*Characterization, error)
}

// SessionOption configures a Session at construction.
type SessionOption func(*Session)

// WithCharacterizeConfig sets the characterization-phase parameters
// (the zero value uses the paper's defaults).
func WithCharacterizeConfig(cfg CharacterizeConfig) SessionOption {
	return func(s *Session) { s.charCfg = cfg }
}

// WithFaultPlan arms a fault scenario on the session: Run evaluates
// every application under the plan alongside the healthy baseline,
// and EvaluateScenario becomes available. An empty plan (no events)
// is ignored.
func WithFaultPlan(plan fault.Plan) SessionOption {
	return func(s *Session) {
		if !plan.Empty() {
			s.plan = &plan
		}
	}
}

// WithRequirements checks every evaluation against the requirements.
func WithRequirements(req Requirements) SessionOption {
	return func(s *Session) { s.reqs = &req }
}

// WithCharacterization seeds the session with an existing
// characterization (e.g. loaded from disk), skipping the expensive
// measurement phase.
func WithCharacterization(ch *Characterization) SessionOption {
	return func(s *Session) { s.preset = ch }
}

// WithStore attaches a persistent characterization store: the session
// consults it (by content fingerprint) before characterizing and
// writes the result back on a miss. A nil store is ignored.
func WithStore(st CharStore) SessionOption {
	return func(s *Session) { s.store = st }
}

// WithCharacterizeWorkers runs the characterization phase's
// measurement units on up to n concurrent workers (n <= 0 sizes the
// pool to GOMAXPROCS, n == 1 is the sequential default without the
// option). The merged tables are byte-identical at any worker count —
// every unit runs on its own fresh cluster and results merge in
// canonical plan order — and the content fingerprint is unaffected,
// so parallel and sequential sessions share store entries. With n > 1
// the session's cluster builder must be safe for concurrent use.
func WithCharacterizeWorkers(n int) SessionOption {
	return func(s *Session) { s.pool = NewCharPool(n) }
}

// WithCharacterizePool shares an existing worker pool across sessions
// (sweep runs every cell's characterization on one engine-wide pool
// instead of nesting a pool per cell). A nil pool means sequential.
func WithCharacterizePool(p *CharPool) SessionOption {
	return func(s *Session) { s.pool = p }
}

// NewSession creates a session for the configuration produced by
// build, which must return a fresh cluster per call.
func NewSession(build func() *cluster.Cluster, opts ...SessionOption) *Session {
	s := &Session{build: build}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Scenario returns the name of the session's fault scenario, or ""
// when none is armed.
func (s *Session) Scenario() string {
	if s.plan == nil {
		return ""
	}
	return s.plan.Name
}

// FaultPlan returns a copy of the armed fault plan and whether one is
// set.
func (s *Session) FaultPlan() (fault.Plan, bool) {
	if s.plan == nil {
		return fault.Plan{}, false
	}
	return *s.plan, true
}

// Characterization returns (computing once) the configuration's
// performance tables. Safe for concurrent use: single-flight via
// sync.Once, so parallel studies sharing a Session never race to
// characterize, and the first outcome — including an error — is
// cached for the session's lifetime.
func (s *Session) Characterization() (*Characterization, error) {
	if s.preset != nil {
		return s.preset, nil
	}
	if s.build == nil {
		return nil, fmt.Errorf("core: Session needs a cluster builder")
	}
	s.charOnce.Do(func() {
		compute := func() (*Characterization, error) { return characterize(s.build, s.charCfg, s.pool) }
		if s.store == nil {
			s.char, s.charErr = compute()
			return
		}
		fp, err := Fingerprint(s.build, s.charCfg)
		if err != nil {
			s.charErr = err
			return
		}
		s.char, s.charErr = s.store.GetOrCompute(fp, compute)
	})
	return s.char, s.charErr
}

// buildScenario returns a fresh cluster with the session's fault plan
// armed.
func (s *Session) buildScenario() (*cluster.Cluster, error) {
	c := s.build()
	if _, err := fault.Apply(c, *s.plan); err != nil {
		return nil, err
	}
	return c, nil
}

// Evaluate runs the application on a healthy cluster against the
// session's characterization.
func (s *Session) Evaluate(app workload.App) (*Evaluation, error) {
	ch, err := s.Characterization()
	if err != nil {
		return nil, err
	}
	if s.build == nil {
		return nil, fmt.Errorf("core: Session needs a cluster builder")
	}
	return evaluate(s.build(), app, ch)
}

// EvaluateScenario runs the application under the session's fault
// plan against the (healthy) characterization: the used-% rows then
// show how much of the characterized capacity survives the scenario.
func (s *Session) EvaluateScenario(app workload.App) (*Evaluation, error) {
	if s.plan == nil {
		return nil, fmt.Errorf("core: session has no fault plan (use WithFaultPlan)")
	}
	ch, err := s.Characterization()
	if err != nil {
		return nil, err
	}
	if s.build == nil {
		return nil, fmt.Errorf("core: Session needs a cluster builder")
	}
	c, err := s.buildScenario()
	if err != nil {
		return nil, err
	}
	return evaluateScenario(c, app, ch, s.plan.Name)
}

// Run executes all three phases for the application: configuration
// analysis, characterization, and evaluation — plus, when a fault
// plan is armed, a second evaluation under the scenario, reported
// side by side with the healthy one.
func (s *Session) Run(app workload.App) (*Report, error) {
	ch, err := s.Characterization()
	if err != nil {
		return nil, err
	}
	if s.build == nil {
		return nil, fmt.Errorf("core: Session needs a cluster builder")
	}
	c := s.build()
	analysis := AnalyzeConfiguration(c)
	ev, err := evaluate(c, app, ch)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Characterization: ch,
		ConfigAnalysis:   analysis,
		Evaluation:       ev,
		Utilization:      c.UtilizationReport(),
	}
	if s.reqs != nil {
		rep.Checks = CheckEvaluation(*s.reqs, ev)
	}
	if s.plan != nil {
		dc, err := s.buildScenario()
		if err != nil {
			return nil, err
		}
		dev, err := evaluateScenario(dc, app, ch, s.plan.Name)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", s.plan.Name, err)
		}
		rep.Scenario = s.plan.Name
		rep.Degraded = dev
		rep.DegradedUtilization = dc.UtilizationReport()
		if s.reqs != nil {
			rep.DegradedChecks = CheckEvaluation(*s.reqs, dev)
		}
	}
	return rep, nil
}
