package core

import (
	"sync"
	"testing"
)

// benchChar characterizes the golden cluster once per process: the
// benchmarks measure evaluation (the span-instrumented request path),
// not the characterization phase.
var (
	benchCharOnce sync.Once
	benchChar     *Characterization
)

func benchCharacterization(b *testing.B) *Characterization {
	b.Helper()
	benchCharOnce.Do(func() {
		ch, err := characterize(goldenCluster, goldenCharCfg(), nil)
		if err != nil {
			panic(err)
		}
		benchChar = ch
	})
	return benchChar
}

// BenchmarkEvaluateBTIO times the BT-IO acceptance run with the span
// plane active: every request pushes and pops a span per layer and
// the collector aggregates the path profile. Compared against
// BenchmarkEvaluateBTIONoSpans in the CI bench artifact
// (BENCH_<sha>.json), the pair bounds the span overhead — the budget
// is <5% wall-clock over a collectorless run.
func BenchmarkEvaluateBTIO(b *testing.B) {
	ch := benchCharacterization(b)
	app := quickGoldenBTIO()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := goldenCluster()
		if _, err := evaluate(c, app, ch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateBTIONoSpans is the baseline: the same run with the
// cluster's collector detached, so every request is collectorless and
// popped spans are discarded (the nil-collector fast path).
func BenchmarkEvaluateBTIONoSpans(b *testing.B) {
	ch := benchCharacterization(b)
	app := quickGoldenBTIO()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := goldenCluster()
		c.Path = nil
		if _, err := evaluate(c, app, ch); err != nil {
			b.Fatal(err)
		}
	}
}
