package core

import "strings"

// Report is the output of one methodology run (Session.Run) for one
// application. When the session carried a fault plan, Degraded holds
// the under-fault evaluation alongside the healthy one.
type Report struct {
	Characterization *Characterization
	ConfigAnalysis   string
	Evaluation       *Evaluation
	Checks           []RequirementCheck
	Utilization      string

	// Degraded-mode half of the report — set only when a fault
	// scenario was armed (Session.Run with WithFaultPlan).
	Scenario            string
	Degraded            *Evaluation
	DegradedChecks      []RequirementCheck
	DegradedUtilization string
}

// String renders the full report.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString("== I/O configuration analysis ==\n")
	b.WriteString(r.ConfigAnalysis)
	b.WriteString("\n== Characterization (system side) ==\n")
	for _, level := range Levels() {
		if t := r.Characterization.Table(level); t != nil {
			b.WriteString(FormatPerfTable(t))
			b.WriteByte('\n')
		}
	}
	b.WriteString("== Application characterization ==\n")
	b.WriteString(FormatProfile(r.Evaluation.AppName(), r.Evaluation.Profile()))
	b.WriteString("\n== Evaluation ==\n")
	b.WriteString(FormatEvaluation(r.Evaluation))
	if len(r.Checks) > 0 {
		b.WriteString("\n== Requirements ==\n")
		b.WriteString(FormatChecks(r.Checks))
	}
	if r.Degraded != nil {
		b.WriteString("\n== Evaluation under fault scenario: " + r.Scenario + " ==\n")
		b.WriteString(FormatEvaluation(r.Degraded))
		b.WriteString("\n== Healthy vs degraded used-% ==\n")
		b.WriteString(FormatUsedComparison(r.Evaluation.Used(), r.Degraded.Used()))
		if len(r.DegradedChecks) > 0 {
			b.WriteString("\n== Requirements (degraded) ==\n")
			b.WriteString(FormatChecks(r.DegradedChecks))
		}
	}
	b.WriteString("\n== Utilization ==\n")
	b.WriteString(r.Utilization)
	if r.Degraded != nil && r.DegradedUtilization != "" {
		b.WriteString("\n== Utilization (degraded) ==\n")
		b.WriteString(r.DegradedUtilization)
	}
	return b.String()
}
