package core

import (
	"fmt"
	"sort"
	"strings"

	"ioeval/internal/mpiio"
	"ioeval/internal/sim"
	"ioeval/internal/stats"
	"ioeval/internal/trace"
)

// This file implements the paper's stated future work (Section V):
// "define an I/O model of the application to support the evaluation,
// design and selection of the configurations ... to determine which
// I/O configuration meets the performance requirements of the user on
// a given system."
//
// The model is built from the application's PAS2P-style signature —
// its repetitive I/O phases and their weights — captured on *any*
// system, and combined with a target configuration's characterized
// performance tables to predict the application's I/O time there
// without running it.

// PhaseModel is one modeled phase pattern of the application.
type PhaseModel struct {
	Kind      OpType
	Mode      trace.AccessMode
	BlockSize int64 // per-operation payload
	OpsPerOcc int64 // operations per occurrence (per rank)
	Bytes     int64 // bytes per occurrence (per rank)
	Weight    int   // occurrences over the run
}

// IOModel is the functional I/O model of an application: its phase
// patterns (from a representative rank) and the process count.
type IOModel struct {
	App    string
	Procs  int
	Phases []PhaseModel
}

// BuildModel derives the model from a captured trace, using rank 0 as
// the representative process (scientific applications are SPMD; the
// paper's signature extraction makes the same assumption).
func BuildModel(app string, tr *trace.Tracer, procs int) IOModel {
	m := IOModel{App: app, Procs: procs}
	for _, s := range tr.Signature(0) {
		ph := s.Phase
		kind := Write
		if ph.Kind == mpiio.OpRead {
			kind = Read
		}
		bs := int64(0)
		if ph.Ops > 0 {
			bs = ph.Bytes / ph.Ops
		}
		m.Phases = append(m.Phases, PhaseModel{
			Kind:      kind,
			Mode:      ph.Mode,
			BlockSize: bs,
			OpsPerOcc: ph.Ops,
			Bytes:     ph.Bytes,
			Weight:    s.Weight,
		})
	}
	return m
}

// TotalBytes returns the application's total traffic in one direction
// across all ranks.
func (m IOModel) TotalBytes(op OpType) int64 {
	var total int64
	for _, ph := range m.Phases {
		if ph.Kind == op {
			total += ph.Bytes * int64(ph.Weight)
		}
	}
	return total * int64(m.Procs)
}

// PhasePrediction is the predicted cost of one phase pattern on a
// configuration.
type PhasePrediction struct {
	Phase     PhaseModel
	Level     Level   // the binding (slowest) characterized level
	Rate      float64 // bytes/second used for the prediction
	TotalTime sim.Duration
}

// Prediction is the model's estimate for an application on a
// characterized configuration.
type Prediction struct {
	App    string
	Config string
	Phases []PhasePrediction

	IOTime    sim.Duration // predicted total I/O wall time
	ReadTime  sim.Duration
	WriteTime sim.Duration
}

// Predict estimates the application's I/O time on a configuration
// from its characterized tables alone. For each phase pattern the
// binding rate is the *minimum* characterized rate across the I/O
// path levels at the phase's operation type, block size and access
// mode — a conservative estimate: caching effects that let real runs
// exceed characterized rates (used % > 100) are not modeled, so
// predictions upper-bound the I/O time of cache-friendly workloads
// while tracking pattern-bound workloads closely.
func Predict(m IOModel, ch *Characterization) Prediction {
	pred := Prediction{App: m.App, Config: ch.Config}
	for _, ph := range m.Phases {
		var bindRate float64
		var bindLevel Level
		for _, level := range Levels() {
			t := ch.Tables[level]
			if t == nil {
				continue
			}
			access := Global
			if level == LevelLocalFS {
				access = Local
			}
			rate, _, ok := t.Lookup(ph.Kind, ph.BlockSize, access, ph.Mode)
			if !ok || rate <= 0 {
				continue
			}
			if bindRate == 0 || rate < bindRate {
				bindRate = rate
				bindLevel = level
			}
		}
		pp := PhasePrediction{Phase: ph, Level: bindLevel, Rate: bindRate}
		if bindRate > 0 {
			// The phase moves Bytes per rank per occurrence; all ranks
			// share the characterized aggregate path.
			totalBytes := ph.Bytes * int64(ph.Weight) * int64(m.Procs)
			pp.TotalTime = sim.DurationFromSeconds(float64(totalBytes) / bindRate)
		}
		pred.Phases = append(pred.Phases, pp)
		pred.IOTime += pp.TotalTime
		if ph.Kind == Read {
			pred.ReadTime += pp.TotalTime
		} else {
			pred.WriteTime += pp.TotalTime
		}
	}
	return pred
}

// SelectConfiguration ranks characterized configurations by predicted
// I/O time for the modeled application — the paper's goal of
// "determining which I/O configuration meets the performance
// requirements of the user". Ties and near-ties (within tolerance)
// should be broken by availability or cost, which the model does not
// know; the full ranking is returned so the caller can apply those
// criteria.
func SelectConfiguration(m IOModel, chs []*Characterization) []Prediction {
	preds := make([]Prediction, 0, len(chs))
	for _, ch := range chs {
		preds = append(preds, Predict(m, ch))
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i].IOTime < preds[j].IOTime })
	return preds
}

// FormatPrediction renders a prediction.
func FormatPrediction(p Prediction) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Predicted I/O time for %s on %s: %v (write %v, read %v)\n",
		p.App, p.Config, p.IOTime, p.WriteTime, p.ReadTime)
	var tb stats.Table
	tb.AddRow("op", "mode", "block", "ops/occ", "weight", "binding level", "rate", "time")
	for _, pp := range p.Phases {
		tb.AddRow(pp.Phase.Kind.String(), pp.Phase.Mode.String(),
			stats.IBytes(pp.Phase.BlockSize),
			fmt.Sprintf("%d", pp.Phase.OpsPerOcc), fmt.Sprintf("%d", pp.Phase.Weight),
			pp.Level.String(), stats.MBs(pp.Rate), pp.TotalTime.String())
	}
	b.WriteString(tb.String())
	return b.String()
}
