package bench

import (
	"testing"

	"ioeval/internal/cluster"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
)

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
	gb = int64(1) << 30
)

func TestIOzoneLocalFSSweep(t *testing.T) {
	c := cluster.Aohyper(cluster.RAID5)
	cfg := IOzoneConfig{
		FileSize:   512 * mb, // small but > nothing; cache drop keeps it cold
		BlockSizes: []int64{64 * kb, mb, 16 * mb},
		Modes:      []Mode{SeqWrite, SeqRead},
		BetweenRuns: func(p *sim.Proc) {
			c.IOCache.DropCaches(ioreq.Meta(p))
		},
	}
	results, err := RunIOzone(c.Eng, c.ServerFS, cfg)
	if err != nil {
		t.Fatalf("iozone: %v", err)
	}
	if len(results) != 6 {
		t.Fatalf("results = %d, want 6", len(results))
	}
	rates := map[Mode]map[int64]float64{SeqWrite: {}, SeqRead: {}}
	for _, r := range results {
		if r.Rate <= 0 || r.IOPS <= 0 || r.Latency <= 0 {
			t.Fatalf("degenerate result: %+v", r)
		}
		rates[r.Mode][r.BlockSize] = r.Rate
	}
	// Bigger blocks must not be slower (per-op overhead amortizes).
	if rates[SeqWrite][16*mb] < rates[SeqWrite][64*kb] {
		t.Fatalf("write rate decreased with block size: %v", rates[SeqWrite])
	}
}

func TestIOzoneColdReadsBoundByDisk(t *testing.T) {
	// With dropped caches and a file twice the cache size, local reads
	// on JBOD must be bounded by the single disk (~100 MB/s), not the
	// memory rate.
	c := cluster.Aohyper(cluster.JBOD)
	cfg := IOzoneConfig{
		FileSize:   3 * gb, // 2× the server page cache (1.5 GB)
		BlockSizes: []int64{4 * mb},
		Modes:      []Mode{SeqWrite, SeqRead},
	}
	results, err := RunIOzone(c.Eng, c.ServerFS, cfg)
	if err != nil {
		t.Fatalf("iozone: %v", err)
	}
	for _, r := range results {
		if r.Mode == SeqRead {
			mbs := r.Rate / 1e6
			if mbs > 110 {
				t.Fatalf("cold read rate %.1f MB/s beats the disk", mbs)
			}
			if mbs < 50 {
				t.Fatalf("cold read rate %.1f MB/s implausibly low", mbs)
			}
		}
	}
}

func TestIOzoneWarmReadsBeatDisk(t *testing.T) {
	// File smaller than the cache, no drops: the second pass (SeqRead
	// after the populate pass) runs at memory speed — the >100% effect.
	c := cluster.Aohyper(cluster.JBOD)
	cfg := IOzoneConfig{
		FileSize:   256 * mb,
		BlockSizes: []int64{4 * mb},
		Modes:      []Mode{SeqRead},
	}
	results, err := RunIOzone(c.Eng, c.ServerFS, cfg)
	if err != nil {
		t.Fatalf("iozone: %v", err)
	}
	if mbs := results[0].Rate / 1e6; mbs < 500 {
		t.Fatalf("warm read rate %.1f MB/s, want memory-speed", mbs)
	}
}

func TestIOzoneRandomSlowerThanSequential(t *testing.T) {
	c := cluster.Aohyper(cluster.JBOD)
	cfg := IOzoneConfig{
		FileSize:   3 * gb,
		BlockSizes: []int64{64 * kb},
		Modes:      []Mode{SeqRead, RandRead},
		RandomOps:  500,
	}
	results, err := RunIOzone(c.Eng, c.ServerFS, cfg)
	if err != nil {
		t.Fatalf("iozone: %v", err)
	}
	var seq, rnd float64
	for _, r := range results {
		if r.Mode == SeqRead {
			seq = r.Rate
		} else {
			rnd = r.Rate
		}
	}
	if rnd*2 > seq {
		t.Fatalf("random read (%.1f MB/s) not ≪ sequential (%.1f MB/s)", rnd/1e6, seq/1e6)
	}
}

func TestIOzoneOverNFSBoundByWire(t *testing.T) {
	c := cluster.Aohyper(cluster.RAID5)
	cfg := IOzoneConfig{
		FileSize:   gb,
		BlockSizes: []int64{mb},
		Modes:      []Mode{SeqWrite, SeqRead},
	}
	results, err := RunIOzone(c.Eng, c.Nodes[0].NFS, cfg)
	if err != nil {
		t.Fatalf("iozone: %v", err)
	}
	for _, r := range results {
		if mbs := r.Rate / 1e6; mbs > 117 {
			t.Fatalf("%v over NFS at %.1f MB/s beats GigE", r.Mode, mbs)
		}
	}
}

func TestIORSweepShape(t *testing.T) {
	c := cluster.Aohyper(cluster.RAID5)
	cfg := IORConfig{
		Procs:        8,
		FileSize:     256 * mb,
		BlockSizes:   []int64{mb, 16 * mb},
		TransferSize: 256 * kb,
	}
	results, err := RunIOR(c, cfg)
	if err != nil {
		t.Fatalf("ior: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.WriteRate <= 0 || r.ReadRate <= 0 {
			t.Fatalf("degenerate: %+v", r)
		}
		// Library-level rates on NFS cannot beat the server NIC.
		if r.WriteRate > 117e6 {
			t.Fatalf("IOR write %.1f MB/s beats wire", r.WriteRate/1e6)
		}
	}
	// With a cache-resident file both points are wire-bound; allow
	// modest variation but no collapse across the sweep.
	if results[1].WriteRate < 0.7*results[0].WriteRate {
		t.Fatalf("write rate collapsed with block size: %.1f -> %.1f MB/s",
			results[0].WriteRate/1e6, results[1].WriteRate/1e6)
	}
}

func TestIORCollectiveVsIndependent(t *testing.T) {
	run := func(coll bool) float64 {
		c := cluster.Aohyper(cluster.RAID5)
		cfg := IORConfig{
			Procs:        8,
			FileSize:     64 * mb,
			BlockSizes:   []int64{8 * mb},
			TransferSize: 64 * kb,
			Collective:   coll,
		}
		results, err := RunIOR(c, cfg)
		if err != nil {
			t.Fatalf("ior: %v", err)
		}
		return results[0].WriteRate
	}
	indep, coll := run(false), run(true)
	// With small transfers, collective buffering must win (it merges
	// the 64 KB transfers into large aggregator writes).
	if coll <= indep {
		t.Fatalf("collective (%.1f MB/s) not faster than independent (%.1f MB/s)",
			coll/1e6, indep/1e6)
	}
}

func TestBonnie(t *testing.T) {
	c := cluster.Aohyper(cluster.RAID5)
	res, err := RunBonnie(c.Eng, c.ServerFS, BonnieConfig{FileSize: 256 * mb, MetaFiles: 256})
	if err != nil {
		t.Fatalf("bonnie: %v", err)
	}
	if res.BlockWrite <= 0 || res.BlockRead <= 0 || res.Rewrite <= 0 {
		t.Fatalf("block rates: %+v", res)
	}
	if res.CreatesPerS <= 0 || res.StatsPerS <= 0 || res.DeletesPerS <= 0 {
		t.Fatalf("meta rates: %+v", res)
	}
	// Metadata ops cost ~100–200 µs each ⇒ thousands per second, not
	// millions (sanity on the cost model).
	if res.CreatesPerS > 1e6 {
		t.Fatalf("creates/s = %.0f, implausibly fast", res.CreatesPerS)
	}
}

func TestIOzoneBadConfigPanics(t *testing.T) {
	c := cluster.Aohyper(cluster.JBOD)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero file size")
		}
	}()
	RunIOzone(c.Eng, c.ServerFS, IOzoneConfig{})
}
