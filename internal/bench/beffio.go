package bench

import (
	"fmt"
	"math"

	"ioeval/internal/cluster"
	"ioeval/internal/fs"
	"ioeval/internal/mpiio"
	"ioeval/internal/sim"
)

// b_eff_io (Rabenseifner & Koniges), the paper's second option for
// library-level characterization: measure the effective parallel I/O
// bandwidth across several access patterns and transfer sizes, and
// reduce them to one number.

// BeffPattern is one of the benchmark's access patterns.
type BeffPattern int

// The three patterns implemented (b_eff_io's main families).
const (
	// BeffScatter: one shared file, ranks write interleaved chunks
	// (strided pattern, pattern type 0).
	BeffScatter BeffPattern = iota
	// BeffSegmented: one shared file, each rank owns one contiguous
	// segment (pattern type 2).
	BeffSegmented
	// BeffSeparate: one file per process (pattern type 4).
	BeffSeparate
)

func (p BeffPattern) String() string {
	switch p {
	case BeffScatter:
		return "scatter"
	case BeffSegmented:
		return "segmented"
	case BeffSeparate:
		return "separate"
	}
	return fmt.Sprintf("BeffPattern(%d)", int(p))
}

// BeffIOConfig parameterizes the run.
type BeffIOConfig struct {
	Procs         int
	TransferSizes []int64 // per-op sizes (default 32 KiB and 1 MiB)
	// BytesPerRank per (pattern, size) measurement.
	BytesPerRank int64
	Patterns     []BeffPattern
}

// BeffIOResult is one measurement.
type BeffIOResult struct {
	Pattern      BeffPattern
	TransferSize int64
	WriteRate    float64 // aggregate bytes/second
	ReadRate     float64
}

// BeffIOSummary is the benchmark's output: the individual pattern
// results and the summary bandwidth b_eff_io (the average over
// patterns and sizes, as the original reduces its measurements).
type BeffIOSummary struct {
	Results []BeffIOResult
	BeffIO  float64 // bytes/second
}

// RunBeffIO measures effective parallel I/O bandwidth on the
// cluster's shared storage through the MPI-IO layer.
func RunBeffIO(c *cluster.Cluster, cfg BeffIOConfig) (BeffIOSummary, error) {
	if cfg.Procs <= 0 {
		panic("bench: b_eff_io needs processes")
	}
	if len(cfg.TransferSizes) == 0 {
		cfg.TransferSizes = []int64{32 << 10, 1 << 20}
	}
	if cfg.BytesPerRank == 0 {
		cfg.BytesPerRank = 64 << 20
	}
	if len(cfg.Patterns) == 0 {
		cfg.Patterns = []BeffPattern{BeffScatter, BeffSegmented, BeffSeparate}
	}

	var sum BeffIOSummary
	for _, pattern := range cfg.Patterns {
		for _, ts := range cfg.TransferSizes {
			res, err := beffOnce(c, cfg, pattern, ts)
			if err != nil {
				return BeffIOSummary{}, err
			}
			sum.Results = append(sum.Results, res)
		}
	}
	// Reduce: arithmetic mean of the per-measurement mean of write
	// and read rates.
	var acc float64
	for _, r := range sum.Results {
		acc += (r.WriteRate + r.ReadRate) / 2
	}
	if len(sum.Results) > 0 {
		sum.BeffIO = acc / float64(len(sum.Results))
	}
	return sum, nil
}

func beffOnce(c *cluster.Cluster, cfg BeffIOConfig, pattern BeffPattern, ts int64) (BeffIOResult, error) {
	np := cfg.Procs
	perRank := cfg.BytesPerRank / ts * ts // whole ops only
	w := c.NewWorld(c.RankNodes(np))

	path := func(rank int) string {
		if pattern == BeffSeparate {
			return fmt.Sprintf("/beff-%v-%d.%04d", pattern, ts, rank)
		}
		return fmt.Sprintf("/beff-%v-%d", pattern, ts)
	}
	vecsFor := func(rank int) []fs.IOVec {
		n := perRank / ts
		vecs := make([]fs.IOVec, 0, n)
		for i := int64(0); i < n; i++ {
			var off int64
			switch pattern {
			case BeffScatter:
				off = (i*int64(np) + int64(rank)) * ts
			case BeffSegmented:
				off = int64(rank)*perRank + i*ts
			case BeffSeparate:
				off = i * ts
			}
			vecs = append(vecs, fs.IOVec{Off: off, Len: ts})
		}
		return vecs
	}

	// Separate files need per-rank worlds (communicator-of-self), like
	// MADbench2 UNIQUE; shared patterns use the common world.
	files := make([]*mpiio.File, np)
	mounts := c.NFSMounts(np)
	if pattern != BeffSeparate {
		shared := mpiio.OpenFile(w, path(0), fs.ORead|fs.OWrite|fs.OCreate|fs.OTrunc,
			mounts, mpiio.Hints{})
		for r := range files {
			files[r] = shared
		}
	}

	var errs []error
	start := c.Eng.Now() // measurements run back to back on one engine
	var writeEnd, readEnd, readStart sim.Time
	barrier := sim.NewCompletion(c.Eng, np)
	var wrote, read int64
	for rank := 0; rank < np; rank++ {
		rank := rank
		c.Eng.Spawn(fmt.Sprintf("beff-r%d", rank), func(p *sim.Proc) {
			f := files[rank]
			fRank := rank
			if f == nil {
				sub := c.NewWorld([]string{w.Node(rank)})
				f = mpiio.OpenFile(sub, path(rank), fs.ORead|fs.OWrite|fs.OCreate|fs.OTrunc,
					[]fs.Interface{mounts[rank]}, mpiio.Hints{})
				fRank = 0
			}
			if err := f.Open(p, fRank); err != nil {
				errs = append(errs, err)
				barrier.Done()
				return
			}
			vecs := vecsFor(rank)
			wrote += f.WriteVec(p, fRank, vecs)
			if p.Now() > writeEnd {
				writeEnd = p.Now()
			}
			barrier.Done()
			barrier.WaitFor(p)
			if readStart == 0 {
				readStart = p.Now()
			}
			read += f.ReadVec(p, fRank, vecs)
			if p.Now() > readEnd {
				readEnd = p.Now()
			}
			f.Close(p, fRank)
		})
	}
	c.Eng.Run()
	if len(errs) > 0 {
		return BeffIOResult{}, errs[0]
	}
	want := perRank * int64(np)
	if wrote != want || read != want {
		return BeffIOResult{}, fmt.Errorf("b_eff_io %v/%d: moved %d/%d, want %d", pattern, ts, wrote, read, want)
	}
	res := BeffIOResult{Pattern: pattern, TransferSize: ts}
	if d := sim.Duration(writeEnd - start).Seconds(); d > 0 {
		res.WriteRate = float64(wrote) / d
	}
	if d := sim.Duration(readEnd - readStart).Seconds(); d > 0 {
		res.ReadRate = float64(read) / d
	}
	if math.IsNaN(res.WriteRate) || math.IsNaN(res.ReadRate) {
		return BeffIOResult{}, fmt.Errorf("b_eff_io %v/%d: degenerate rates", pattern, ts)
	}
	return res, nil
}
