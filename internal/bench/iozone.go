// Package bench implements the characterization benchmarks the
// methodology drives against the simulated cluster: an IOzone-like
// filesystem/block-level sweep, an IOR-like MPI-IO library-level
// sweep, and a bonnie++-like metadata exerciser. Their results feed
// the performance tables of the methodology's characterization phase
// (core package).
package bench

import (
	"fmt"
	"math/rand"

	"ioeval/internal/fs"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
)

// Mode is an IOzone access mode.
type Mode int

// IOzone test modes.
const (
	SeqWrite Mode = iota
	SeqRead
	RandWrite
	RandRead
	StrideWrite
	StrideRead
)

func (m Mode) String() string {
	switch m {
	case SeqWrite:
		return "seq-write"
	case SeqRead:
		return "seq-read"
	case RandWrite:
		return "rand-write"
	case RandRead:
		return "rand-read"
	case StrideWrite:
		return "stride-write"
	case StrideRead:
		return "stride-read"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// IsWrite reports whether the mode writes.
func (m Mode) IsWrite() bool { return m == SeqWrite || m == RandWrite || m == StrideWrite }

// IsSequential reports whether the mode accesses back-to-back blocks.
func (m Mode) IsSequential() bool { return m == SeqWrite || m == SeqRead }

// IsStrided reports whether the mode uses a constant non-unit stride
// (IOzone -j: the access touches every other block).
func (m Mode) IsStrided() bool { return m == StrideWrite || m == StrideRead }

// access maps the IOzone mode onto the request-context pattern.
func (m Mode) access() ioreq.Mode {
	switch {
	case m.IsSequential():
		return ioreq.ModeSequential
	case m.IsStrided():
		return ioreq.ModeStrided
	}
	return ioreq.ModeRandom
}

// IOzoneConfig parameterizes a sweep. The paper's rule: FileSize is
// twice the node's RAM so the page cache cannot satisfy the run, and
// the block size sweeps 32 KB – 16 MB.
type IOzoneConfig struct {
	Path       string
	FileSize   int64
	BlockSizes []int64
	Modes      []Mode
	// RandomOps caps the operation count of random modes (IOzone
	// touches the whole file; for huge files that is slow to no
	// benefit — the per-op cost converges quickly). 0 = whole file.
	RandomOps int
	// BetweenRuns, when set, is invoked before each measurement —
	// the hook the methodology uses to drop caches for cold runs.
	BetweenRuns func(p *sim.Proc)
	// Seed for the random-mode offset sequence.
	Seed int64
	// NewRand, when set, supplies the RNG for one measurement's
	// offset shuffle; the seed passed in is derived deterministically
	// from Seed, the block size and the mode. When nil, a math/rand
	// source seeded with exactly that value is used, so sweeps are
	// reproducible either way (the determinism invariant iolint
	// enforces: no draws from the global source).
	NewRand func(seed int64) *rand.Rand
	// Clock, when set, overrides the timestamp source for the timed
	// pass; the default reads the process's simulated clock. Tests
	// use it to make measurement timing itself injectable — wall
	// clocks never enter the benchmark.
	Clock func(p *sim.Proc) sim.Time
}

// rng returns the measurement RNG for a derived seed.
func (cfg IOzoneConfig) rng(seed int64) *rand.Rand {
	if cfg.NewRand != nil {
		return cfg.NewRand(seed)
	}
	return rand.New(rand.NewSource(seed))
}

// now reads the measurement clock.
func (cfg IOzoneConfig) now(p *sim.Proc) sim.Time {
	if cfg.Clock != nil {
		return cfg.Clock(p)
	}
	return p.Now()
}

// DefaultBlockSizes is the paper's 32 KB … 16 MB sweep.
func DefaultBlockSizes() []int64 {
	var out []int64
	for bs := int64(32 << 10); bs <= 16<<20; bs *= 2 {
		out = append(out, bs)
	}
	return out
}

// IOzoneResult is one measurement point.
type IOzoneResult struct {
	Mode      Mode
	BlockSize int64
	Rate      float64      // bytes/second
	IOPS      float64      // operations/second
	Latency   sim.Duration // mean per-operation latency
	Ops       int64
}

// RunIOzone runs the sweep against one mounted filesystem. The
// engine must be otherwise idle; measurements run back to back in
// simulated time.
func RunIOzone(eng *sim.Engine, fsi fs.Interface, cfg IOzoneConfig) ([]IOzoneResult, error) {
	if len(cfg.BlockSizes) == 0 {
		cfg.BlockSizes = DefaultBlockSizes()
	}
	var results []IOzoneResult
	for _, bs := range cfg.BlockSizes {
		rs, err := RunIOzoneBlock(eng, fsi, cfg, bs)
		if err != nil {
			return nil, err
		}
		results = append(results, rs...)
	}
	return results, nil
}

// RunIOzoneBlock runs every configured mode at a single block size —
// the per-unit entry point of the characterization shard plan (see
// internal/core): modes run in configuration order, so a write mode
// populates the file the paired read mode consumes, and a block's
// measurements are self-contained on a freshly built cluster (read-
// only mode lists fill the file untimed first). The engine must be
// otherwise idle.
func RunIOzoneBlock(eng *sim.Engine, fsi fs.Interface, cfg IOzoneConfig, bs int64) ([]IOzoneResult, error) {
	if cfg.Path == "" {
		cfg.Path = "/iozone.tmp"
	}
	if cfg.FileSize <= 0 {
		panic("bench: IOzone needs a positive file size")
	}
	if len(cfg.Modes) == 0 {
		cfg.Modes = []Mode{SeqWrite, SeqRead}
	}
	var results []IOzoneResult
	var runErr error
	for _, mode := range cfg.Modes {
		mode := mode
		eng.Spawn(fmt.Sprintf("iozone-%v-%d", mode, bs), func(p *sim.Proc) {
			if cfg.BetweenRuns != nil {
				cfg.BetweenRuns(p)
			}
			res, err := iozoneOnce(p, fsi, cfg, mode, bs)
			if err != nil {
				runErr = err
				return
			}
			results = append(results, res)
		})
		eng.Run()
		if runErr != nil {
			return nil, runErr
		}
	}
	return results, nil
}

func iozoneOnce(p *sim.Proc, fsi fs.Interface, cfg IOzoneConfig, mode Mode, bs int64) (IOzoneResult, error) {
	flags := fs.ORead | fs.OWrite | fs.OCreate
	if mode == SeqWrite {
		flags |= fs.OTrunc
	}
	mt := ioreq.Meta(p)
	h, err := fsi.Open(mt, cfg.Path, flags)
	if err != nil {
		return IOzoneResult{}, err
	}
	defer h.Close(mt)

	// Reads and random modes need the file populated; write it
	// untimed if the previous mode has not already.
	if mode != SeqWrite && h.Size() < cfg.FileSize {
		fill := ioreq.Writer(p).SetPattern(ioreq.ModeSequential, 8<<20)
		for off := h.Size(); off < cfg.FileSize; off += 8 << 20 {
			n := min64(8<<20, cfg.FileSize-off)
			h.WriteAt(fill, off, n)
		}
		h.Sync(fill)
		if cfg.BetweenRuns != nil {
			cfg.BetweenRuns(p) // cold cache for the timed pass
		}
	}

	nOps := cfg.FileSize / bs
	offsets := make([]int64, 0, nOps)
	switch {
	case mode.IsStrided():
		// IOzone -j 2: touch every other block.
		for off := int64(0); off+bs <= cfg.FileSize; off += 2 * bs {
			offsets = append(offsets, off)
		}
	default:
		for off := int64(0); off+bs <= cfg.FileSize; off += bs {
			offsets = append(offsets, off)
		}
	}
	if !mode.IsSequential() && !mode.IsStrided() {
		rng := cfg.rng(cfg.Seed + bs + int64(mode))
		rng.Shuffle(len(offsets), func(i, j int) { offsets[i], offsets[j] = offsets[j], offsets[i] })
		if cfg.RandomOps > 0 && len(offsets) > cfg.RandomOps {
			offsets = offsets[:cfg.RandomOps]
		}
	}

	// Operations are issued through the vectored interface in batches:
	// per-operation costs are charged identically to a syscall loop,
	// but the simulation stays event-efficient for large sweeps.
	const batch = 64
	op := ioreq.OpRead
	if mode.IsWrite() {
		op = ioreq.OpWrite
	}
	r := ioreq.New(p, op).SetPattern(mode.access(), bs)
	t0 := cfg.now(p)
	var moved int64
	for i := 0; i < len(offsets); i += batch {
		end := i + batch
		if end > len(offsets) {
			end = len(offsets)
		}
		vecs := make([]fs.IOVec, 0, end-i)
		for _, off := range offsets[i:end] {
			vecs = append(vecs, fs.IOVec{Off: off, Len: bs})
		}
		if mode.IsWrite() {
			moved += h.WriteVec(r, vecs)
		} else {
			moved += h.ReadVec(r, vecs)
		}
	}
	if mode.IsWrite() {
		h.Sync(r) // IOzone -e: include fsync in the timing
	}
	elapsed := sim.Duration(cfg.now(p) - t0)

	ops := int64(len(offsets))
	res := IOzoneResult{Mode: mode, BlockSize: bs, Ops: ops}
	if s := elapsed.Seconds(); s > 0 {
		res.Rate = float64(moved) / s
		res.IOPS = float64(ops) / s
	}
	if ops > 0 {
		res.Latency = elapsed / sim.Duration(ops)
	}
	return res, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
