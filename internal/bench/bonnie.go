package bench

import (
	"fmt"

	"ioeval/internal/fs"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
)

// BonnieConfig parameterizes the bonnie++-like run: block I/O rates
// plus metadata (create/stat/delete) throughput, the second tool the
// paper lists for global/local filesystem characterization.
type BonnieConfig struct {
	Dir      string
	FileSize int64
	// MetaFiles is the number of small files created, stated and
	// deleted in the metadata pass.
	MetaFiles int
}

// BonnieResult holds the aggregate rates.
type BonnieResult struct {
	BlockWrite  float64 // bytes/second
	BlockRead   float64
	Rewrite     float64
	CreatesPerS float64
	StatsPerS   float64
	DeletesPerS float64
}

// RunBonnie measures the filesystem with a bonnie++-like pass.
func RunBonnie(eng *sim.Engine, fsi fs.Interface, cfg BonnieConfig) (BonnieResult, error) {
	if cfg.Dir == "" {
		cfg.Dir = "/bonnie"
	}
	if cfg.FileSize <= 0 {
		panic("bench: bonnie needs a positive file size")
	}
	if cfg.MetaFiles <= 0 {
		cfg.MetaFiles = 1024
	}
	var res BonnieResult
	var runErr error
	eng.Spawn("bonnie", func(p *sim.Proc) {
		const chunk = 1 << 20
		wr := ioreq.Writer(p).SetPattern(ioreq.ModeSequential, chunk)
		rd := ioreq.Reader(p).SetPattern(ioreq.ModeSequential, chunk)
		mt := ioreq.Meta(p)
		path := cfg.Dir + "/big"
		h, err := fsi.Open(mt, path, fs.ORead|fs.OWrite|fs.OCreate|fs.OTrunc)
		if err != nil {
			runErr = err
			return
		}

		timeIt := func(fn func()) float64 {
			t0 := p.Now()
			fn()
			return sim.Duration(p.Now() - t0).Seconds()
		}

		d := timeIt(func() {
			for off := int64(0); off < cfg.FileSize; off += chunk {
				h.WriteAt(wr, off, min64(chunk, cfg.FileSize-off))
			}
			h.Sync(wr)
		})
		res.BlockWrite = float64(cfg.FileSize) / d

		d = timeIt(func() {
			for off := int64(0); off < cfg.FileSize; off += chunk {
				h.ReadAt(rd, off, min64(chunk, cfg.FileSize-off))
			}
		})
		res.BlockRead = float64(cfg.FileSize) / d

		// Rewrite: read + write back each chunk.
		d = timeIt(func() {
			for off := int64(0); off < cfg.FileSize; off += chunk {
				n := min64(chunk, cfg.FileSize-off)
				h.ReadAt(rd, off, n)
				h.WriteAt(wr, off, n)
			}
			h.Sync(wr)
		})
		res.Rewrite = float64(cfg.FileSize) / d
		h.Close(mt)

		names := make([]string, cfg.MetaFiles)
		for i := range names {
			names[i] = fmt.Sprintf("%s/f%06d", cfg.Dir, i)
		}
		d = timeIt(func() {
			for _, name := range names {
				hh, err := fsi.Open(mt, name, fs.OWrite|fs.OCreate)
				if err != nil {
					runErr = err
					return
				}
				hh.Close(mt)
			}
		})
		res.CreatesPerS = float64(cfg.MetaFiles) / d

		d = timeIt(func() {
			for _, name := range names {
				if _, err := fsi.Stat(mt, name); err != nil {
					runErr = err
					return
				}
			}
		})
		res.StatsPerS = float64(cfg.MetaFiles) / d

		d = timeIt(func() {
			for _, name := range names {
				if err := fsi.Remove(mt, name); err != nil {
					runErr = err
					return
				}
			}
		})
		res.DeletesPerS = float64(cfg.MetaFiles) / d
	})
	eng.Run()
	return res, runErr
}
