package bench

import (
	"testing"

	"ioeval/internal/cluster"
)

func TestBeffIO(t *testing.T) {
	c := cluster.Aohyper(cluster.RAID5)
	sum, err := RunBeffIO(c, BeffIOConfig{
		Procs:         4,
		TransferSizes: []int64{32 * kb, mb},
		BytesPerRank:  16 * mb,
	})
	if err != nil {
		t.Fatalf("b_eff_io: %v", err)
	}
	if len(sum.Results) != 6 { // 3 patterns × 2 sizes
		t.Fatalf("results = %d, want 6", len(sum.Results))
	}
	byKey := map[string]BeffIOResult{}
	for _, r := range sum.Results {
		if r.WriteRate <= 0 || r.ReadRate <= 0 {
			t.Fatalf("degenerate result: %+v", r)
		}
		// Buffered patterns (separate files) may run at client
		// memory-copy speed: the cap is procs × MemRate, not the wire.
		if r.WriteRate > 4*2.6e9 || r.ReadRate > 4*2.6e9 {
			t.Fatalf("rate out of physical range: %+v", r)
		}
		byKey[r.Pattern.String()+string(rune('0'+r.TransferSize>>20))] = r
	}
	if sum.BeffIO <= 0 {
		t.Fatalf("b_eff_io summary = %f", sum.BeffIO)
	}
	// Large transfers must not be slower than small ones for the
	// scatter (strided, per-op-cost-bound) pattern.
	var small, large float64
	for _, r := range sum.Results {
		if r.Pattern == BeffScatter {
			if r.TransferSize == 32*kb {
				small = r.WriteRate
			} else {
				large = r.WriteRate
			}
		}
	}
	if large < small*0.8 {
		t.Fatalf("scatter writes fell with transfer size: %.1f -> %.1f MB/s", small/1e6, large/1e6)
	}
}

func TestBeffIOSeparateFilesNoLocks(t *testing.T) {
	// Separate-file pattern uses per-rank communicators: no byte-range
	// locking, so it must not be slower than the scatter pattern at
	// small transfers.
	c := cluster.Aohyper(cluster.RAID5)
	sum, err := RunBeffIO(c, BeffIOConfig{
		Procs:         4,
		TransferSizes: []int64{32 * kb},
		BytesPerRank:  8 * mb,
	})
	if err != nil {
		t.Fatalf("b_eff_io: %v", err)
	}
	var scatter, separate float64
	for _, r := range sum.Results {
		switch r.Pattern {
		case BeffScatter:
			scatter = r.WriteRate
		case BeffSeparate:
			separate = r.WriteRate
		}
	}
	if separate < scatter {
		t.Fatalf("separate files (%.1f MB/s) slower than locked scatter (%.1f MB/s)",
			separate/1e6, scatter/1e6)
	}
}
