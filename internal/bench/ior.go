package bench

import (
	"fmt"

	"ioeval/internal/cluster"
	"ioeval/internal/fs"
	"ioeval/internal/mpiio"
	"ioeval/internal/sim"
)

// IORConfig parameterizes the library-level characterization (the
// paper: 8 processes, block sizes 1 MB – 1024 MB per process,
// 256 KB transfer size, a fixed 32 GB file on the shared NFS
// storage). The file size is constant across the block-size sweep —
// IOR's segment count adjusts — so every point stresses the system
// identically (total bytes moved = FileSize for each point).
type IORConfig struct {
	Path         string
	Procs        int
	FileSize     int64   // total shared file size (0 = 32 GiB)
	BlockSizes   []int64 // per-process contiguous block, swept
	TransferSize int64   // bytes per library call
	// Collective uses MPI_File_write_at_all (two-phase); the paper's
	// IOR runs use independent I/O.
	Collective bool
	// UsePFS runs against the cluster's parallel filesystem instead
	// of NFS.
	UsePFS bool
	// BetweenRuns drops caches (see IOzoneConfig).
	BetweenRuns func(p *sim.Proc)
}

// DefaultIORBlockSizes is the paper's 1 MB … 1024 MB sweep.
func DefaultIORBlockSizes() []int64 {
	var out []int64
	for bs := int64(1 << 20); bs <= 1<<30; bs *= 4 {
		out = append(out, bs)
	}
	return out
}

// IORResult is one sweep point.
type IORResult struct {
	BlockSize int64
	WriteRate float64 // aggregate bytes/second
	ReadRate  float64
}

// withDefaults fills the paper's parameters for unset fields.
func (cfg IORConfig) withDefaults() IORConfig {
	if cfg.Path == "" {
		cfg.Path = "/ior.tmp"
	}
	if cfg.Procs <= 0 {
		panic("bench: IOR needs processes")
	}
	if cfg.TransferSize <= 0 {
		cfg.TransferSize = 256 << 10
	}
	if cfg.FileSize <= 0 {
		cfg.FileSize = 32 << 30
	}
	if len(cfg.BlockSizes) == 0 {
		cfg.BlockSizes = DefaultIORBlockSizes()
	}
	return cfg
}

// RunIOR measures MPI-IO library-level rates on the cluster's shared
// storage: every rank writes then reads its own BlockSize segment of
// one shared file in TransferSize operations.
func RunIOR(c *cluster.Cluster, cfg IORConfig) ([]IORResult, error) {
	cfg = cfg.withDefaults()
	var results []IORResult
	for _, bs := range cfg.BlockSizes {
		res, err := RunIORPoint(c, cfg, bs)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}

// RunIORPoint measures a single block-size point — the per-unit entry
// point of the characterization shard plan (see internal/core). The
// write pass populates the shared file the read pass consumes, so a
// point is self-contained on a freshly built cluster.
func RunIORPoint(c *cluster.Cluster, cfg IORConfig, bs int64) (IORResult, error) {
	cfg = cfg.withDefaults()
	return iorOnce(c, cfg, bs)
}

func iorOnce(c *cluster.Cluster, cfg IORConfig, bs int64) (IORResult, error) {
	np := cfg.Procs
	w := c.NewWorld(c.RankNodes(np))
	hints := mpiio.Hints{CollectiveBuffering: cfg.Collective}
	mounts := c.NFSMounts(np)
	if cfg.UsePFS {
		mounts = c.PFSMounts(np)
	}
	f := mpiio.OpenFile(w, cfg.Path, fs.ORead|fs.OWrite|fs.OCreate|fs.OTrunc,
		mounts, hints)

	var errs []error
	var writeEnd, readEnd sim.Time
	var start, readStart sim.Time
	var wrote, read int64
	done := sim.NewCompletion(c.Eng, np)
	barrier := sim.NewCompletion(c.Eng, np) // between write and read pass

	for rank := 0; rank < np; rank++ {
		rank := rank
		c.Eng.Spawn(fmt.Sprintf("ior-r%d", rank), func(p *sim.Proc) {
			defer done.Done()
			if cfg.BetweenRuns != nil && rank == 0 {
				cfg.BetweenRuns(p)
			}
			if err := f.Open(p, rank); err != nil {
				errs = append(errs, err)
				barrier.Done()
				return
			}
			// IOR segment layout: the file is segments × (np × block);
			// rank r owns block r of every segment and issues it in
			// TransferSize operations.
			segments := cfg.FileSize / (int64(np) * bs)
			if segments < 1 {
				segments = 1
			}
			vecs := make([]fs.IOVec, 0, segments*bs/cfg.TransferSize)
			for seg := int64(0); seg < segments; seg++ {
				base := (seg*int64(np) + int64(rank)) * bs
				for off := int64(0); off < bs; off += cfg.TransferSize {
					vecs = append(vecs, fs.IOVec{Off: base + off, Len: min64(cfg.TransferSize, bs-off)})
				}
			}
			if rank == 0 {
				start = p.Now()
			}
			if cfg.Collective {
				wrote += f.WriteVecAll(p, rank, vecs)
			} else {
				wrote += f.WriteVec(p, rank, vecs)
			}
			if p.Now() > writeEnd {
				writeEnd = p.Now()
			}
			barrier.Done()
			barrier.WaitFor(p)
			if readStart == 0 {
				readStart = p.Now()
			}
			if cfg.Collective {
				read += f.ReadVecAll(p, rank, vecs)
			} else {
				read += f.ReadVec(p, rank, vecs)
			}
			if p.Now() > readEnd {
				readEnd = p.Now()
			}
			f.Close(p, rank)
		})
	}
	c.Eng.Run()
	if len(errs) > 0 {
		return IORResult{}, errs[0]
	}
	segments := cfg.FileSize / (int64(np) * bs)
	if segments < 1 {
		segments = 1
	}
	if want := segments * bs * int64(np); wrote != want || read != want {
		return IORResult{}, fmt.Errorf("ior: moved %d written / %d read bytes, want %d", wrote, read, want)
	}
	res := IORResult{BlockSize: bs}
	if d := sim.Duration(writeEnd - start).Seconds(); d > 0 {
		res.WriteRate = float64(wrote) / d
	}
	if d := sim.Duration(readEnd - readStart).Seconds(); d > 0 {
		res.ReadRate = float64(read) / d
	}
	return res, nil
}
