package raid

import (
	"fmt"

	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
)

// Degraded-mode operation: redundant arrays keep serving after a
// member failure, at a cost — RAID 5 reconstructs every block of the
// failed member by reading the whole row from the survivors; RAID 1
// loses its read balancing. The methodology can characterize a
// degraded configuration like any other and quantify the price of
// running exposed.

// Fail marks a member as failed. Redundant levels (RAID 1, RAID 5)
// continue in degraded mode; failing a second member of a RAID 5, the
// mirror of a two-disk RAID 1, or any member of a JBOD/RAID 0 is data
// loss and panics.
func (a *Array) Fail(member int) {
	if member < 0 || member >= len(a.members) {
		panic(fmt.Sprintf("raid %q: no member %d", a.name, member))
	}
	if a.failed == nil {
		a.failed = make(map[int]bool)
	}
	switch a.level {
	case JBOD, RAID0:
		panic(fmt.Sprintf("raid %q: %v has no redundancy — member failure is data loss", a.name, a.level))
	case RAID1:
		if len(a.failed) >= len(a.members)-1 {
			panic(fmt.Sprintf("raid %q: no surviving mirror", a.name))
		}
	case RAID5:
		if len(a.failed) >= 1 {
			panic(fmt.Sprintf("raid %q: second failure on RAID 5 is data loss", a.name))
		}
	}
	a.failed[member] = true
}

// Degraded reports whether the array has failed members.
func (a *Array) Degraded() bool { return len(a.failed) > 0 }

// healthyMirror returns a mirror that is not failed.
func (a *Array) healthyMirror() int {
	for i := range a.members {
		if !a.failed[i] {
			return i
		}
	}
	panic(fmt.Sprintf("raid %q: no healthy members", a.name))
}

// degradedRead serves one segment whose home disk failed.
func (a *Array) degradedRead(r *ioreq.Request, s segment) {
	switch a.level {
	case RAID1:
		a.members[a.healthyMirror()].ReadAt(r, s.off, s.len)
	case RAID5:
		// Reconstruct: read the same extent from every survivor (the
		// row's other data chunks and its parity), XOR is free.
		fns := make([]func(*sim.Proc), 0, len(a.members)-1)
		for i := range a.members {
			if i == s.disk || a.failed[i] {
				continue
			}
			m := a.members[i]
			fns = append(fns, func(c *sim.Proc) { m.ReadAt(r.WithProc(c), s.off, s.len) })
		}
		sim.Fork(r.Proc(), "reconstruct", fns...)
	default:
		panic(fmt.Sprintf("raid %q: read from failed member of %v", a.name, a.level))
	}
}

// degradedWrite handles one segment whose home disk failed: the data
// is represented by the row's parity (written by the caller's plan),
// so the member write itself is dropped. For RAID 1 the write simply
// skips the failed mirror (the caller writes the survivors).
func (a *Array) degradedWrite(r *ioreq.Request, s segment) {
	switch a.level {
	case RAID1, RAID5:
		// No device work: survivors/parity carry the information.
	default:
		panic(fmt.Sprintf("raid %q: write to failed member of %v", a.name, a.level))
	}
}
