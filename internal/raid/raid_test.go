package raid

import (
	"testing"
	"testing/quick"

	"ioeval/internal/device"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
)

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
	gb = int64(1) << 30
)

func disks(e *sim.Engine, n int) []*device.Disk {
	ds := make([]*device.Disk, n)
	for i := range ds {
		ds[i] = device.NewDisk(e, device.DefaultSATA("m"+string(rune('0'+i)), 230*gb, 100e6))
	}
	return ds
}

func asBlockDevs(ds []*device.Disk) []device.BlockDev {
	out := make([]device.BlockDev, len(ds))
	for i, d := range ds {
		out[i] = d
	}
	return out
}

func run(e *sim.Engine, fn func(*sim.Proc)) sim.Duration {
	var dur sim.Duration
	e.Spawn("t", func(p *sim.Proc) {
		t0 := p.Now()
		fn(p)
		dur = sim.Duration(p.Now() - t0)
	})
	e.Run()
	return dur
}

func TestCapacities(t *testing.T) {
	e := sim.NewEngine()
	d5 := disks(e, 5)
	if c := NewJBOD(e, "j", asBlockDevs(d5)...).Capacity(); c != 5*230*gb {
		t.Errorf("JBOD capacity = %d", c)
	}
	if c := NewRAID0(e, "r0", 256*kb, asBlockDevs(d5)...).Capacity(); c != 5*230*gb {
		t.Errorf("RAID0 capacity = %d", c)
	}
	if c := NewRAID1(e, "r1", asBlockDevs(d5[:2])...).Capacity(); c != 230*gb {
		t.Errorf("RAID1 capacity = %d", c)
	}
	if c := NewRAID5(e, "r5", 256*kb, asBlockDevs(d5)...).Capacity(); c != 4*230*gb {
		t.Errorf("RAID5 capacity = %d", c)
	}
}

func TestConstructorPanics(t *testing.T) {
	e := sim.NewEngine()
	d := asBlockDevs(disks(e, 2))
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("raid5-two-members", func() { NewRAID5(e, "x", 256*kb, d...) })
	mustPanic("raid1-one-member", func() { NewRAID1(e, "x", d[0]) })
	mustPanic("raid0-bad-stripe", func() { NewRAID0(e, "x", 3000, d...) })
	mustPanic("jbod-empty", func() { NewJBOD(e, "x") })
}

func TestJBODConcatSplit(t *testing.T) {
	e := sim.NewEngine()
	ds := disks(e, 2)
	a := NewJBOD(e, "j", asBlockDevs(ds)...)
	// Read straddling the member boundary.
	boundary := ds[0].Capacity()
	run(e, func(p *sim.Proc) { a.ReadAt(ioreq.Reader(p), boundary-mb, 2*mb) })
	if ds[0].Stats.BytesRead != mb || ds[1].Stats.BytesRead != mb {
		t.Fatalf("boundary split: d0=%d d1=%d, want 1MB each",
			ds[0].Stats.BytesRead, ds[1].Stats.BytesRead)
	}
	// Second half must start at physical offset 0 of disk 1 — i.e. it
	// stays in range even though the logical offset exceeds d1's size.
}

func TestRAID0DistributesEvenly(t *testing.T) {
	e := sim.NewEngine()
	ds := disks(e, 4)
	a := NewRAID0(e, "r0", 256*kb, asBlockDevs(ds)...)
	run(e, func(p *sim.Proc) { a.WriteAt(ioreq.Writer(p), 0, 8*mb) })
	for i, d := range ds {
		if d.Stats.BytesWritten != 2*mb {
			t.Fatalf("disk %d wrote %d, want 2MB", i, d.Stats.BytesWritten)
		}
	}
}

func TestRAID0FasterThanSingleDisk(t *testing.T) {
	e := sim.NewEngine()
	single := device.NewDisk(e, device.DefaultSATA("s", 230*gb, 100e6))
	tSingle := run(e, func(p *sim.Proc) { single.ReadAt(ioreq.Reader(p), 0, 64*mb) })

	e2 := sim.NewEngine()
	a := NewRAID0(e2, "r0", 256*kb, asBlockDevs(disks(e2, 4))...)
	tArray := run(e2, func(p *sim.Proc) { a.ReadAt(ioreq.Reader(p), 0, 64*mb) })

	if float64(tArray) > float64(tSingle)/3.0 {
		t.Fatalf("RAID0x4 (%v) not ≳4x faster than single disk (%v)", tArray, tSingle)
	}
}

func TestRAID1WritesAllMirrors(t *testing.T) {
	e := sim.NewEngine()
	ds := disks(e, 2)
	a := NewRAID1(e, "r1", asBlockDevs(ds)...)
	run(e, func(p *sim.Proc) { a.WriteAt(ioreq.Writer(p), 0, 4*mb) })
	for i, d := range ds {
		if d.Stats.BytesWritten != 4*mb {
			t.Fatalf("mirror %d wrote %d, want 4MB", i, d.Stats.BytesWritten)
		}
	}
}

func TestRAID1LargeReadUsesBothSpindles(t *testing.T) {
	e := sim.NewEngine()
	ds := disks(e, 2)
	a := NewRAID1(e, "r1", asBlockDevs(ds)...)
	run(e, func(p *sim.Proc) { a.ReadAt(ioreq.Reader(p), 0, 8*mb) })
	if ds[0].Stats.BytesRead == 0 || ds[1].Stats.BytesRead == 0 {
		t.Fatalf("read not balanced: d0=%d d1=%d", ds[0].Stats.BytesRead, ds[1].Stats.BytesRead)
	}
	if ds[0].Stats.BytesRead+ds[1].Stats.BytesRead != 8*mb {
		t.Fatalf("read bytes total %d, want 8MB", ds[0].Stats.BytesRead+ds[1].Stats.BytesRead)
	}
}

func TestRAID1SmallReadsRoundRobin(t *testing.T) {
	e := sim.NewEngine()
	ds := disks(e, 2)
	a := NewRAID1(e, "r1", asBlockDevs(ds)...)
	run(e, func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			a.ReadAt(ioreq.Reader(p), int64(i)*64*kb, 64*kb)
		}
	})
	if ds[0].Stats.Reads != 5 || ds[1].Stats.Reads != 5 {
		t.Fatalf("round robin: d0=%d d1=%d ops, want 5/5", ds[0].Stats.Reads, ds[1].Stats.Reads)
	}
}

func TestRAID5ReadSkipsParity(t *testing.T) {
	e := sim.NewEngine()
	ds := disks(e, 5)
	a := NewRAID5(e, "r5", 256*kb, asBlockDevs(ds)...)
	// Read exactly 2 full rows = 8 data chunks = 2 MB.
	run(e, func(p *sim.Proc) { a.ReadAt(ioreq.Reader(p), 0, 2*mb) })
	var total int64
	for _, d := range ds {
		total += d.Stats.BytesRead
	}
	if total != 2*mb {
		t.Fatalf("read touched %d bytes, want exactly 2MB (no parity reads)", total)
	}
}

func TestRAID5FullStripeWriteParityOverhead(t *testing.T) {
	e := sim.NewEngine()
	ds := disks(e, 5)
	a := NewRAID5(e, "r5", 256*kb, asBlockDevs(ds)...)
	// Write 4 full rows: 4 MB data ⇒ 4 MB data + 1 MB parity on media.
	run(e, func(p *sim.Proc) { a.WriteAt(ioreq.Writer(p), 0, 4*mb) })
	var total, reads int64
	for _, d := range ds {
		total += d.Stats.BytesWritten
		reads += d.Stats.BytesRead
	}
	if total != 5*mb {
		t.Fatalf("media writes = %d, want 5MB (data+parity)", total)
	}
	if reads != 0 {
		t.Fatalf("full-stripe write read %d bytes, want 0 (no RMW)", reads)
	}
}

func TestRAID5SmallWriteRMW(t *testing.T) {
	e := sim.NewEngine()
	ds := disks(e, 5)
	a := NewRAID5(e, "r5", 256*kb, asBlockDevs(ds)...)
	// A single 4 KB write within one chunk: classic small-write penalty,
	// 2 reads (old data, old parity) + 2 writes (new data, new parity).
	run(e, func(p *sim.Proc) { a.WriteAt(ioreq.Writer(p), 0, 4*kb) })
	var reads, writes, bRead, bWritten int64
	for _, d := range ds {
		reads += d.Stats.Reads
		writes += d.Stats.Writes
		bRead += d.Stats.BytesRead
		bWritten += d.Stats.BytesWritten
	}
	if reads != 2 || writes != 2 {
		t.Fatalf("RMW ops: %d reads, %d writes, want 2/2", reads, writes)
	}
	if bRead != 8*kb || bWritten != 8*kb {
		t.Fatalf("RMW bytes: read %d, wrote %d, want 8KB each", bRead, bWritten)
	}
}

func TestRAID5ParityRotates(t *testing.T) {
	e := sim.NewEngine()
	a := NewRAID5(e, "r5", 256*kb, asBlockDevs(disks(e, 5))...)
	seen := map[int]bool{}
	for row := int64(0); row < 5; row++ {
		pd, _ := a.raid5ParityPos(row)
		if seen[pd] {
			t.Fatalf("parity disk %d repeated within %d rows", pd, len(a.members))
		}
		seen[pd] = true
	}
}

func TestRAID5DataMappingNoParityCollision(t *testing.T) {
	e := sim.NewEngine()
	a := NewRAID5(e, "r5", 256*kb, asBlockDevs(disks(e, 5))...)
	// For every chunk in the first 40 rows, the data position must not
	// coincide with that row's parity position.
	nData := int64(len(a.members) - 1)
	for chunk := int64(0); chunk < 40*nData; chunk++ {
		d, phys := a.raid5Pos(chunk)
		row := chunk / nData
		pd, pphys := a.raid5ParityPos(row)
		if d == pd && phys == pphys {
			t.Fatalf("chunk %d maps onto parity (disk %d off %d)", chunk, d, phys)
		}
	}
}

func TestRAID5SequentialReadFasterThanJBOD(t *testing.T) {
	e := sim.NewEngine()
	j := NewJBOD(e, "j", asBlockDevs(disks(e, 1))...)
	tJ := run(e, func(p *sim.Proc) { j.ReadAt(ioreq.Reader(p), 0, 64*mb) })

	e2 := sim.NewEngine()
	r5 := NewRAID5(e2, "r5", 256*kb, asBlockDevs(disks(e2, 5))...)
	tR := run(e2, func(p *sim.Proc) { r5.ReadAt(ioreq.Reader(p), 0, 64*mb) })

	if tR >= tJ {
		t.Fatalf("RAID5 read (%v) not faster than JBOD (%v)", tR, tJ)
	}
}

func TestFlushAllMembers(t *testing.T) {
	e := sim.NewEngine()
	ds := disks(e, 3)
	a := NewRAID5(e, "r5", 256*kb, asBlockDevs(ds)...)
	run(e, func(p *sim.Proc) {
		a.WriteAt(ioreq.Writer(p), 0, 2*mb)
		a.Flush(ioreq.Meta(p))
	})
	// No assertion on time; just ensure it completes and is idempotent.
	run2 := sim.NewEngine()
	_ = run2
}

// Property: for any (offset, length) within capacity, the RAID 5 data
// mapping covers exactly the requested byte count, and no two segments
// on the same disk overlap.
func TestQuickRAID5MappingCoverage(t *testing.T) {
	e := sim.NewEngine()
	a := NewRAID5(e, "r5", 256*kb, asBlockDevs(disks(e, 5))...)
	f := func(offRaw, lenRaw uint32) bool {
		off := int64(offRaw) % (1 * gb)
		n := int64(lenRaw)%(64*mb) + 1
		segs := a.mapRAID5Data(off, n)
		var total int64
		type key struct {
			d   int
			off int64
		}
		seen := map[key]bool{}
		for _, s := range segs {
			total += s.len
			for b := s.off; b < s.off+s.len; b += 256 * kb {
				k := key{s.disk, b / (256 * kb)}
				if seen[k] && s.len >= 256*kb {
					return false
				}
				seen[k] = true
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: mergeSegments preserves total length.
func TestQuickMergePreservesLength(t *testing.T) {
	f := func(raw []uint16) bool {
		var segs []segment
		off := int64(0)
		var total int64
		for i, r := range raw {
			l := int64(r%512) + 1
			segs = append(segs, segment{disk: i % 3, off: off, len: l})
			off += l
			total += l
		}
		var merged int64
		for _, list := range mergeSegments(segs) {
			for _, s := range list {
				merged += s.len
			}
		}
		return merged == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRAID5LargeWrite(b *testing.B) {
	e := sim.NewEngine()
	a := NewRAID5(e, "r5", 256*kb, asBlockDevs(disks(e, 5))...)
	e.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			a.WriteAt(ioreq.Writer(p), int64(i%100)*4*mb, 4*mb)
		}
	})
	b.ResetTimer()
	e.Run()
}
