package raid

import (
	"strings"
	"testing"

	"ioeval/internal/device"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
)

// smallDisks keeps member extents tiny so full-extent rebuilds loop
// over a handful of chunks, not hundreds of thousands.
func smallDisks(e *sim.Engine, n int, capacity int64) []*device.Disk {
	ds := make([]*device.Disk, n)
	for i := range ds {
		ds[i] = device.NewDisk(e, device.DefaultSATA("m"+string(rune('0'+i)), capacity, 100e6))
	}
	return ds
}

func spareDisk(e *sim.Engine, capacity int64) *device.Disk {
	return device.NewDisk(e, device.DefaultSATA("spare", capacity, 100e6))
}

func TestRebuildRAID5RestoresArray(t *testing.T) {
	e := sim.NewEngine()
	ds := smallDisks(e, 5, 64*mb)
	a := NewRAID5(e, "r5", 256*kb, asBlockDevs(ds)...)
	a.Fail(1)
	sp := spareDisk(e, 64*mb)
	e.Spawn("rebuild", func(p *sim.Proc) {
		if err := a.Rebuild(p, sp, RebuildConfig{}); err != nil {
			t.Errorf("rebuild: %v", err)
		}
	})
	e.Run()

	if a.Degraded() {
		t.Fatal("array still degraded after full rebuild")
	}
	if got := a.FailedMembers(); len(got) != 0 {
		t.Fatalf("failed members after rebuild: %v", got)
	}
	extent := int64(64 * mb)
	if got := a.Telemetry().AuxVal("rebuild_bytes"); got != extent {
		t.Fatalf("rebuild_bytes = %d, want %d", got, extent)
	}
	if got := a.Telemetry().AuxVal("rebuilds_completed"); got != 1 {
		t.Fatalf("rebuilds_completed = %d", got)
	}
	// The spare took the full member extent of writes.
	if sp.Stats.BytesWritten != extent {
		t.Fatalf("spare written %d, want %d", sp.Stats.BytesWritten, extent)
	}
	// Every survivor contributed reads for the XOR reconstruction.
	for i, d := range ds {
		if i == 1 {
			continue
		}
		if d.Stats.BytesRead != extent {
			t.Fatalf("survivor %d read %d, want %d", i, d.Stats.BytesRead, extent)
		}
	}
	// Post-rebuild I/O must serve healthy (no reconstruction on reads).
	before := ds[0].Stats.BytesRead
	e.Spawn("io", func(p *sim.Proc) { a.ReadAt(ioreq.Reader(p), 0, mb) })
	e.Run()
	if amp := ds[0].Stats.BytesRead - before; amp > mb {
		t.Fatalf("healthy read amplified: member 0 read %d for %d", amp, mb)
	}
}

func TestRebuildPartialPassLeavesDegraded(t *testing.T) {
	e := sim.NewEngine()
	ds := smallDisks(e, 2, 64*mb)
	a := NewRAID1(e, "r1", asBlockDevs(ds)...)
	a.Fail(0)
	e.Spawn("rebuild", func(p *sim.Proc) {
		if err := a.Rebuild(p, spareDisk(e, 64*mb), RebuildConfig{Bytes: 8 * mb}); err != nil {
			t.Errorf("rebuild: %v", err)
		}
	})
	e.Run()
	if !a.Degraded() {
		t.Fatal("partial rebuild repaired the array")
	}
	if got := a.Telemetry().AuxVal("rebuild_bytes"); got != 8*mb {
		t.Fatalf("rebuild_bytes = %d, want %d", got, 8*mb)
	}
	if got := a.Telemetry().AuxVal("rebuilds_completed"); got != 0 {
		t.Fatalf("rebuilds_completed = %d after partial pass", got)
	}
}

func TestRebuildRatePacing(t *testing.T) {
	e := sim.NewEngine()
	ds := smallDisks(e, 2, 64*mb)
	a := NewRAID1(e, "r1", asBlockDevs(ds)...)
	a.Fail(1)
	d := run(e, func(p *sim.Proc) {
		if err := a.Rebuild(p, spareDisk(e, 64*mb), RebuildConfig{Bytes: 50 * mb, Rate: 25e6}); err != nil {
			t.Errorf("rebuild: %v", err)
		}
	})
	// 50 MiB at 25 MB/s is paced to at least ~2.1 s.
	if d < 2*sim.Second {
		t.Fatalf("paced rebuild took %v, want ≥ 2s", d)
	}
}

func TestRebuildErrors(t *testing.T) {
	e := sim.NewEngine()

	// JBOD cannot rebuild.
	j := NewJBOD(e, "j", asBlockDevs(smallDisks(e, 2, 64*mb))...)
	e.Spawn("t", func(p *sim.Proc) {
		if err := j.Rebuild(p, spareDisk(e, 64*mb), RebuildConfig{}); err == nil {
			t.Error("JBOD rebuild did not error")
		}
	})
	e.Run()

	// Healthy array: nothing to rebuild.
	a := NewRAID5(e, "r5", 256*kb, asBlockDevs(smallDisks(e, 5, 64*mb))...)
	e.Spawn("t", func(p *sim.Proc) {
		if err := a.Rebuild(p, spareDisk(e, 64*mb), RebuildConfig{}); err == nil {
			t.Error("healthy-array rebuild did not error")
		}
	})
	e.Run()

	// Undersized spare.
	a.Fail(0)
	small := device.NewDisk(e, device.DefaultSATA("small", 10*mb, 100e6))
	e.Spawn("t", func(p *sim.Proc) {
		err := a.Rebuild(p, small, RebuildConfig{})
		if err == nil || !strings.Contains(err.Error(), "smaller than member extent") {
			t.Errorf("undersized spare error = %v", err)
		}
	})
	e.Run()
}
