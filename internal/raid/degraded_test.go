package raid

import (
	"testing"

	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
)

func TestDegradedRAID5ReadReconstructs(t *testing.T) {
	e := sim.NewEngine()
	ds := disks(e, 5)
	a := NewRAID5(e, "r5", 256*kb, asBlockDevs(ds)...)
	var healthy sim.Duration
	e.Spawn("prep", func(p *sim.Proc) {
		a.WriteAt(ioreq.Writer(p), 0, 16*mb)
		t0 := p.Now()
		a.ReadAt(ioreq.Reader(p), 0, 16*mb)
		healthy = sim.Duration(p.Now() - t0)
	})
	e.Run()

	a.Fail(2)
	if !a.Degraded() {
		t.Fatal("array not degraded after Fail")
	}
	var degraded sim.Duration
	var before [5]int64
	for i, d := range ds {
		before[i] = d.Stats.BytesRead
	}
	e.Spawn("read", func(p *sim.Proc) {
		t0 := p.Now()
		a.ReadAt(ioreq.Reader(p), 0, 16*mb)
		degraded = sim.Duration(p.Now() - t0)
	})
	e.Run()
	if degraded <= healthy {
		t.Fatalf("degraded read (%v) not slower than healthy (%v)", degraded, healthy)
	}
	if got := ds[2].Stats.BytesRead - before[2]; got != 0 {
		t.Fatalf("failed disk read %d bytes", got)
	}
	// Survivors must have read MORE than their data share (reconstruction).
	var total int64
	for i, d := range ds {
		total += d.Stats.BytesRead - before[i]
	}
	if total <= 16*mb {
		t.Fatalf("reconstruction amplification missing: %d bytes read for 16MB", total)
	}
}

func TestDegradedRAID1ServesFromSurvivor(t *testing.T) {
	e := sim.NewEngine()
	ds := disks(e, 2)
	a := NewRAID1(e, "r1", asBlockDevs(ds)...)
	e.Spawn("prep", func(p *sim.Proc) { a.WriteAt(ioreq.Writer(p), 0, 8*mb) })
	e.Run()
	a.Fail(0)
	e.Spawn("rw", func(p *sim.Proc) {
		a.ReadAt(ioreq.Reader(p), 0, 8*mb)
		a.WriteAt(ioreq.Writer(p), 0, 4*mb)
		a.Flush(ioreq.Meta(p))
	})
	before := ds[0].Stats
	e.Run()
	if ds[0].Stats != before {
		t.Fatal("failed mirror still receiving traffic")
	}
	if ds[1].Stats.BytesRead < 8*mb {
		t.Fatalf("survivor served %d bytes read", ds[1].Stats.BytesRead)
	}
}

func TestFailJBODPanics(t *testing.T) {
	e := sim.NewEngine()
	a := NewJBOD(e, "j", asBlockDevs(disks(e, 1))...)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Fail(0)
}

func TestSecondRAID5FailurePanics(t *testing.T) {
	e := sim.NewEngine()
	a := NewRAID5(e, "r5", 256*kb, asBlockDevs(disks(e, 5))...)
	a.Fail(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on second failure")
		}
	}()
	a.Fail(1)
}

func TestDegradedRAID5WritesStillLand(t *testing.T) {
	// Writes in degraded mode must still put the information somewhere
	// (survivors + parity), so a full-stripe write touches n-1 disks.
	e := sim.NewEngine()
	ds := disks(e, 5)
	a := NewRAID5(e, "r5", 256*kb, asBlockDevs(ds)...)
	a.Fail(1)
	e.Spawn("w", func(p *sim.Proc) { a.WriteAt(ioreq.Writer(p), 0, 4*mb) })
	e.Run()
	var landed int64
	for i, d := range ds {
		if i == 1 && d.Stats.BytesWritten != 0 {
			t.Fatal("failed member written")
		}
		landed += d.Stats.BytesWritten
	}
	if landed < 4*mb {
		t.Fatalf("only %d bytes landed for a 4MB degraded write", landed)
	}
}
