// Package raid implements software storage organizations over member
// block devices: JBOD concatenation, RAID 0 striping, RAID 1 mirroring
// and RAID 5 rotating-parity striping. Arrays satisfy device.BlockDev,
// so they slot under filesystems exactly like a plain disk, and they
// reproduce the mechanics that make the paper's three configurations
// (JBOD, RAID 1, RAID 5) behave differently: mirrored-write cost,
// parity read-modify-write, and multi-spindle parallelism.
package raid

import (
	"fmt"

	"ioeval/internal/device"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
	"ioeval/internal/telemetry"
)

// Level identifies the array organization.
type Level int

// Supported organizations.
const (
	JBOD Level = iota
	RAID0
	RAID1
	RAID5
)

func (l Level) String() string {
	switch l {
	case JBOD:
		return "JBOD"
	case RAID0:
		return "RAID0"
	case RAID1:
		return "RAID1"
	case RAID5:
		return "RAID5"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Array is a storage array over member devices. It implements
// device.BlockDev.
type Array struct {
	eng        *sim.Engine
	name       string
	level      Level
	members    []device.BlockDev
	stripeUnit int64
	capacity   int64
	rrNext     int          // RAID 1 read round-robin cursor
	failed     map[int]bool // degraded-mode members (see degraded.go)
	rec        *telemetry.Recorder
}

var _ device.BlockDev = (*Array)(nil)

// NewJBOD concatenates the members into one address space.
func NewJBOD(e *sim.Engine, name string, members ...device.BlockDev) *Array {
	if len(members) == 0 {
		panic("raid: JBOD needs at least one member")
	}
	a := &Array{eng: e, name: name, level: JBOD, members: members}
	for _, m := range members {
		a.capacity += m.Capacity()
	}
	a.initTelemetry()
	return a
}

// NewRAID0 stripes across members with the given stripe unit (bytes).
func NewRAID0(e *sim.Engine, name string, stripeUnit int64, members ...device.BlockDev) *Array {
	if len(members) < 2 {
		panic("raid: RAID0 needs at least two members")
	}
	checkStripe(stripeUnit)
	a := &Array{eng: e, name: name, level: RAID0, members: members, stripeUnit: stripeUnit}
	a.capacity = minCap(members) * int64(len(members))
	a.initTelemetry()
	return a
}

// NewRAID1 mirrors across members. Capacity is that of the smallest
// member; reads are balanced round-robin, writes go to every mirror in
// parallel.
func NewRAID1(e *sim.Engine, name string, members ...device.BlockDev) *Array {
	if len(members) < 2 {
		panic("raid: RAID1 needs at least two members")
	}
	a := &Array{eng: e, name: name, level: RAID1, members: members}
	a.capacity = minCap(members)
	a.initTelemetry()
	return a
}

// NewRAID5 stripes with one rotating parity chunk per row
// (left-symmetric layout). Usable capacity is (n-1) members.
func NewRAID5(e *sim.Engine, name string, stripeUnit int64, members ...device.BlockDev) *Array {
	if len(members) < 3 {
		panic("raid: RAID5 needs at least three members")
	}
	checkStripe(stripeUnit)
	a := &Array{eng: e, name: name, level: RAID5, members: members, stripeUnit: stripeUnit}
	a.capacity = minCap(members) * int64(len(members)-1)
	a.initTelemetry()
	return a
}

// initTelemetry attaches the array's recorder; capacity units are the
// member spindles, since that is the array's service parallelism.
func (a *Array) initTelemetry() {
	a.rec = telemetry.NewRecorder(a.eng, "array:"+a.name, telemetry.LevelBlock, int64(len(a.members)))
}

// Telemetry returns the array's telemetry probe.
func (a *Array) Telemetry() *telemetry.Recorder { return a.rec }

func checkStripe(u int64) {
	if u <= 0 || u&(u-1) != 0 {
		panic(fmt.Sprintf("raid: stripe unit %d must be a positive power of two", u))
	}
}

func minCap(members []device.BlockDev) int64 {
	m := members[0].Capacity()
	for _, d := range members[1:] {
		if c := d.Capacity(); c < m {
			m = c
		}
	}
	return m
}

// Name returns the array's diagnostic name.
func (a *Array) Name() string { return a.name }

// Level returns the array organization.
func (a *Array) Level() Level { return a.level }

// Capacity returns the usable array capacity in bytes.
func (a *Array) Capacity() int64 { return a.capacity }

// Members returns the member devices (for statistics inspection).
func (a *Array) Members() []device.BlockDev { return a.members }

// StripeUnit returns the stripe unit, or 0 for JBOD/RAID1.
func (a *Array) StripeUnit() int64 { return a.stripeUnit }

func (a *Array) checkRange(off, n int64, op string) {
	if off < 0 || n < 0 || off+n > a.capacity {
		panic(fmt.Sprintf("raid %q: %s out of range: off=%d n=%d cap=%d",
			a.name, op, off, n, a.capacity))
	}
}

// segment is a physical extent on one member.
type segment struct {
	disk     int
	off, len int64
}

// mergeSegments coalesces physically adjacent extents per disk,
// preserving per-disk order. The input must already be sorted by
// logical position (which the mappers guarantee).
func mergeSegments(segs []segment) [][]segment {
	byDisk := map[int][]segment{}
	order := []int{}
	for _, s := range segs {
		list := byDisk[s.disk]
		if n := len(list); n > 0 && list[n-1].off+list[n-1].len == s.off {
			list[n-1].len += s.len
		} else {
			if len(list) == 0 {
				order = append(order, s.disk)
			}
			list = append(list, s)
		}
		byDisk[s.disk] = list
	}
	out := make([][]segment, 0, len(order))
	for _, d := range order {
		out = append(out, byDisk[d])
	}
	return out
}

// runPerDisk executes each disk's segment list in parallel across
// disks (serially within a disk), blocking the request until all
// complete.
func (a *Array) runPerDisk(r *ioreq.Request, perDisk [][]segment, write bool) {
	if len(perDisk) == 1 {
		a.runSegs(r, perDisk[0], write)
		return
	}
	fns := make([]func(*sim.Proc), len(perDisk))
	for i, segs := range perDisk {
		segs := segs
		fns[i] = func(c *sim.Proc) { a.runSegs(r.WithProc(c), segs, write) }
	}
	sim.Fork(r.Proc(), "stripe", fns...)
}

func (a *Array) runSegs(r *ioreq.Request, segs []segment, write bool) {
	for _, s := range segs {
		if a.failed[s.disk] {
			a.rec.Add("degraded_segs", 1)
			r.Tag("raid_degraded")
			if write {
				a.degradedWrite(r, s)
			} else {
				a.degradedRead(r, s)
			}
			continue
		}
		if write {
			a.members[s.disk].WriteAt(r, s.off, s.len)
		} else {
			a.members[s.disk].ReadAt(r, s.off, s.len)
		}
	}
}

// ReadAt implements device.BlockDev.
func (a *Array) ReadAt(r *ioreq.Request, off, n int64) {
	a.checkRange(off, n, "read")
	if n == 0 {
		return
	}
	r.Push(telemetry.LevelBlock, "array:"+a.name)
	defer r.Pop()
	a.rec.Enter()
	start := r.Now()
	defer func() {
		a.rec.Observe(telemetry.ClassRead, 1, n, sim.Duration(r.Now()-start))
		a.rec.Exit()
	}()
	switch a.level {
	case JBOD:
		a.runPerDisk(r, mergeSegments(a.mapConcat(off, n)), false)
	case RAID0:
		a.runPerDisk(r, mergeSegments(a.mapStripe(off, n, len(a.members))), false)
	case RAID1:
		// Balance reads across mirrors: split the request round-robin in
		// stripe-sized slices so large reads use all spindles.
		a.runPerDisk(r, a.mapMirrorRead(off, n), false)
	case RAID5:
		a.runPerDisk(r, mergeSegments(a.mapRAID5Data(off, n)), false)
	}
}

// WriteAt implements device.BlockDev.
func (a *Array) WriteAt(r *ioreq.Request, off, n int64) {
	a.checkRange(off, n, "write")
	if n == 0 {
		return
	}
	r.Push(telemetry.LevelBlock, "array:"+a.name)
	defer r.Pop()
	a.rec.Enter()
	start := r.Now()
	defer func() {
		a.rec.Observe(telemetry.ClassWrite, 1, n, sim.Duration(r.Now()-start))
		a.rec.Exit()
	}()
	switch a.level {
	case JBOD:
		a.runPerDisk(r, mergeSegments(a.mapConcat(off, n)), true)
	case RAID0:
		a.runPerDisk(r, mergeSegments(a.mapStripe(off, n, len(a.members))), true)
	case RAID1:
		// Every healthy mirror writes the full data.
		fns := make([]func(*sim.Proc), 0, len(a.members))
		for i := range a.members {
			if a.failed[i] {
				continue
			}
			m := a.members[i]
			fns = append(fns, func(c *sim.Proc) { m.WriteAt(r.WithProc(c), off, n) })
		}
		sim.Fork(r.Proc(), "mirror", fns...)
	case RAID5:
		a.writeRAID5(r, off, n)
	}
}

// Flush implements device.BlockDev: all healthy members flush in
// parallel.
func (a *Array) Flush(r *ioreq.Request) {
	r.Push(telemetry.LevelBlock, "array:"+a.name)
	defer r.Pop()
	start := r.Now()
	defer func() {
		a.rec.Observe(telemetry.ClassMeta, 1, 0, sim.Duration(r.Now()-start))
	}()
	fns := make([]func(*sim.Proc), 0, len(a.members))
	for i := range a.members {
		if a.failed[i] {
			continue
		}
		m := a.members[i]
		fns = append(fns, func(c *sim.Proc) { m.Flush(r.WithProc(c)) })
	}
	sim.Fork(r.Proc(), "flush", fns...)
}

// mapConcat maps a JBOD logical range onto members laid end to end.
func (a *Array) mapConcat(off, n int64) []segment {
	var segs []segment
	base := int64(0)
	for i, m := range a.members {
		c := m.Capacity()
		if off < base+c && off+n > base {
			s := max64(off, base)
			e := min64(off+n, base+c)
			segs = append(segs, segment{disk: i, off: s - base, len: e - s})
		}
		base += c
	}
	return segs
}

// mapStripe maps a striped logical range over nData disks (RAID 0
// semantics; also used for the data part of full RAID 5 rows when
// nData = members-1 is handled by mapRAID5Data instead).
func (a *Array) mapStripe(off, n int64, nData int) []segment {
	u := a.stripeUnit
	var segs []segment
	for n > 0 {
		chunk := off / u
		within := off % u
		take := min64(u-within, n)
		row := chunk / int64(nData)
		col := int(chunk % int64(nData))
		segs = append(segs, segment{disk: col, off: row*u + within, len: take})
		off += take
		n -= take
	}
	return segs
}

// mapMirrorRead splits a RAID 1 read across mirrors in 1 MB slices,
// rotating the starting mirror per call to balance independent small
// reads too.
func (a *Array) mapMirrorRead(off, n int64) [][]segment {
	const slice = 1 << 20
	nm := len(a.members)
	healthy := make([]int, 0, nm)
	for i := 0; i < nm; i++ {
		if !a.failed[i] {
			healthy = append(healthy, i)
		}
	}
	perDisk := make([][]segment, nm)
	i := a.rrNext % len(healthy)
	a.rrNext = (a.rrNext + 1) % len(healthy)
	for n > 0 {
		take := min64(slice, n)
		d := healthy[i]
		perDisk[d] = append(perDisk[d], segment{disk: d, off: off, len: take})
		off += take
		n -= take
		i = (i + 1) % len(healthy)
	}
	var out [][]segment
	for _, segs := range perDisk {
		if len(segs) > 0 {
			out = append(out, segs)
		}
	}
	return out
}

// raid5Geometry: rows of (n-1) data chunks + 1 parity chunk, parity
// rotating left-symmetric: parity disk for row r is (n-1 - r mod n);
// data chunk c of row r lives on disk (parityDisk+1+c) mod n.
func (a *Array) raid5Pos(chunk int64) (disk int, physOff int64) {
	n := int64(len(a.members))
	u := a.stripeUnit
	row := chunk / (n - 1)
	col := chunk % (n - 1)
	pd := n - 1 - row%n
	d := (pd + 1 + col) % n
	return int(d), row * u
}

// raid5ParityPos returns the parity chunk location for a row.
func (a *Array) raid5ParityPos(row int64) (disk int, physOff int64) {
	n := int64(len(a.members))
	pd := n - 1 - row%n
	return int(pd), row * a.stripeUnit
}

// mapRAID5Data maps a logical range to data-chunk segments (parity
// untouched — reads never touch parity on a healthy array).
func (a *Array) mapRAID5Data(off, n int64) []segment {
	u := a.stripeUnit
	var segs []segment
	for n > 0 {
		chunk := off / u
		within := off % u
		take := min64(u-within, n)
		d, phys := a.raid5Pos(chunk)
		segs = append(segs, segment{disk: d, off: phys + within, len: take})
		off += take
		n -= take
	}
	return segs
}

// writeRAID5 splits the request into full rows (parity computed from
// the new data: write n members in parallel) and partial rows
// (read-modify-write: read old data+parity, then write new
// data+parity).
func (a *Array) writeRAID5(r *ioreq.Request, off, n int64) {
	u := a.stripeUnit
	rowBytes := u * int64(len(a.members)-1)

	type rowSpan struct {
		row      int64
		off, len int64 // logical, within this row's data
	}
	var partial []rowSpan
	var fullSegs []segment // data+parity segments of all full rows

	for n > 0 {
		row := off / rowBytes
		within := off % rowBytes
		take := min64(rowBytes-within, n)
		if within == 0 && take == rowBytes {
			// Full row: data chunks + parity chunk, all written.
			fullSegs = append(fullSegs, a.mapRAID5Data(off, take)...)
			pd, physOff := a.raid5ParityPos(row)
			fullSegs = append(fullSegs, segment{disk: pd, off: physOff, len: u})
		} else {
			partial = append(partial, rowSpan{row: row, off: off, len: take})
		}
		off += take
		n -= take
	}

	if len(fullSegs) > 0 {
		a.runPerDisk(r, mergeSegments(fullSegs), true)
	}
	for _, span := range partial {
		a.rmwRow(r, span.row, span.off, span.len)
	}
}

// rmwRow performs the read-modify-write for a partial-row write: phase
// 1 reads the old data chunks and old parity in parallel; phase 2
// writes the new data and new parity in parallel. This is the classic
// "small-write penalty" (4 disk ops for a single-chunk write).
func (a *Array) rmwRow(r *ioreq.Request, row, off, n int64) {
	dataSegs := a.mapRAID5Data(off, n)
	pd, physOff := a.raid5ParityPos(row)
	// Parity must be re-read/re-written across the byte range the data
	// touches within the row (aligned to the same within-chunk span).
	u := a.stripeUnit
	pw := paritySpan(dataSegs, u)
	paritySeg := segment{disk: pd, off: physOff + pw.off, len: pw.len}

	readSegs := append(append([]segment{}, dataSegs...), paritySeg)
	a.runPerDisk(r, mergeSegments(readSegs), false)
	writeSegs := append(append([]segment{}, dataSegs...), paritySeg)
	a.runPerDisk(r, mergeSegments(writeSegs), true)
}

type span struct{ off, len int64 }

// paritySpan returns the union of within-chunk byte ranges covered by
// the data segments, which is the parity range that must be updated.
func paritySpan(segs []segment, u int64) span {
	lo, hi := int64(1)<<62, int64(0)
	for _, s := range segs {
		w := s.off % u
		if w < lo {
			lo = w
		}
		if w+s.len > hi {
			hi = w + s.len
		}
	}
	if hi > u {
		hi = u
	}
	return span{off: lo, len: hi - lo}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
