package raid

import (
	"fmt"
	"sort"

	"ioeval/internal/device"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
)

// Rebuild: after a member failure a redundant array reconstructs the
// lost contents onto a replacement drive while continuing to serve
// application I/O. The rebuild stream competes with foreground
// requests on the surviving spindles — the performance cliff the
// methodology must be able to measure, since "which configuration
// satisfies the application?" has a different answer while an array
// is resilvering.

// RebuildConfig parameterizes one rebuild pass.
type RebuildConfig struct {
	// Bytes limits how much of the failed member is reconstructed; 0
	// rebuilds the full member extent. A partial rebuild leaves the
	// array degraded (useful to bound scenario runtime).
	Bytes int64
	// Chunk is the per-step reconstruction extent; 0 defaults to 1 MiB.
	Chunk int64
	// Rate throttles the rebuild to at most this many reconstructed
	// bytes per second (the md sync_speed_max knob); 0 is unthrottled.
	Rate float64
}

// FailedMembers returns the indices of failed members in ascending
// order (empty on a healthy array).
func (a *Array) FailedMembers() []int {
	out := make([]int, 0, len(a.failed))
	for i := range a.failed {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Rebuild reconstructs the single failed member's contents onto spare
// and — when the full extent was rebuilt — swaps spare in as the new
// member, returning the array to healthy service. It blocks p for the
// whole pass: callers run it on a dedicated spawned process so it
// overlaps foreground I/O. The reconstruction reads the survivors
// (the healthy mirror on RAID 1; every surviving disk of the row on
// RAID 5) and writes the result to spare, chunk by chunk.
//
//lint:ignore reqpath rebuild is the maintenance plane, not a request path: its I/O belongs to no application request, so there is no span stack or op class to thread
func (a *Array) Rebuild(p *sim.Proc, spare device.BlockDev, cfg RebuildConfig) error {
	if a.level != RAID1 && a.level != RAID5 {
		return fmt.Errorf("raid %q: %v does not rebuild", a.name, a.level)
	}
	failed := a.FailedMembers()
	if len(failed) != 1 {
		return fmt.Errorf("raid %q: rebuild needs exactly one failed member, have %d", a.name, len(failed))
	}
	idx := failed[0]

	extent := minCap(a.members)
	if spare.Capacity() < extent {
		return fmt.Errorf("raid %q: spare %q (%d bytes) smaller than member extent %d",
			a.name, spare.Name(), spare.Capacity(), extent)
	}
	total := extent
	if cfg.Bytes > 0 && cfg.Bytes < total {
		total = cfg.Bytes
	}
	chunk := cfg.Chunk
	if chunk <= 0 {
		chunk = 1 << 20
	}

	a.rec.Add("rebuilds_started", 1)
	r := ioreq.Writer(p)
	start := p.Now()
	for done := int64(0); done < total; {
		n := min64(chunk, total-done)
		off := done
		a.reconstructChunk(r, idx, off, n)
		spare.WriteAt(r, off, n)
		done += n
		a.rec.Add("rebuild_bytes", n)
		if cfg.Rate > 0 {
			// Pace: never run ahead of the configured rebuild rate.
			target := sim.DurationFromSeconds(float64(done) / cfg.Rate)
			if el := sim.Duration(p.Now() - start); el < target {
				p.Sleep(target - el)
			}
		}
	}

	if total < extent {
		return nil // partial pass: array stays degraded
	}
	a.members[idx] = spare
	delete(a.failed, idx)
	a.rec.Add("rebuilds_completed", 1)
	return nil
}

// reconstructChunk reads the data needed to recompute one extent of
// the failed member idx from the survivors.
func (a *Array) reconstructChunk(r *ioreq.Request, idx int, off, n int64) {
	switch a.level {
	case RAID1:
		a.members[a.healthyMirror()].ReadAt(r, off, n)
	case RAID5:
		// The lost chunk is the XOR of the same physical extent on
		// every surviving member (data or parity alike); read them in
		// parallel, the XOR itself is free.
		fns := make([]func(*sim.Proc), 0, len(a.members)-1)
		for i := range a.members {
			if i == idx || a.failed[i] {
				continue
			}
			m := a.members[i]
			fns = append(fns, func(c *sim.Proc) { m.ReadAt(r.WithProc(c), off, n) })
		}
		sim.Fork(r.Proc(), "rebuild", fns...)
	}
}
