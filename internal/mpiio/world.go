// Package mpiio models an MPI-IO-like parallel I/O library over the
// simulated cluster: a World of ranks placed on nodes, message
// passing and barriers over the communication network, and Files
// supporting independent and collective (two-phase, ROMIO-style
// collective buffering) operations against any fs.Interface — local
// mounts or NFS clients.
//
// This layer is where the paper's headline contrast lives: NAS BT-IO
// "full" uses collective buffering (few large contiguous writes by
// aggregator ranks) while "simple" issues millions of small strided
// independent operations.
package mpiio

import (
	"fmt"
	"math/bits"

	"ioeval/internal/ioreq"
	"ioeval/internal/netsim"
	"ioeval/internal/sim"
	"ioeval/internal/telemetry"
)

// Op identifies a traced operation kind.
type Op int

// Operation kinds reported to a Tracer.
const (
	OpWrite Op = iota
	OpRead
	OpWriteAll
	OpReadAll
	OpOpen
	OpClose
	OpSync
	OpCompute
	OpComm
	OpBarrier
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpWriteAll:
		return "write_all"
	case OpReadAll:
		return "read_all"
	case OpOpen:
		return "open"
	case OpClose:
		return "close"
	case OpSync:
		return "sync"
	case OpCompute:
		return "compute"
	case OpComm:
		return "comm"
	case OpBarrier:
		return "barrier"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// IsIO reports whether the op moves file data.
func (o Op) IsIO() bool {
	return o == OpWrite || o == OpRead || o == OpWriteAll || o == OpReadAll
}

// Event is one traced library call.
type Event struct {
	Rank   int
	Op     Op
	File   string
	Offset int64 // first byte touched (-1 when not applicable)
	Bytes  int64 // payload bytes
	Count  int   // number of application-level operations represented
	Stride int64 // constant stride between vector elements (0 if n/a)
	Span   int64 // file-range extent covered (last end - first offset)
	T0, T1 sim.Time
}

// Tracer receives events from the library. The trace package
// implements it; a nil tracer disables tracing.
type Tracer interface {
	Record(ev Event)
}

// World is the set of MPI ranks and their node placement.
//
//lint:ignore probeconform the recorder is injected by cluster.Assemble via SetTelemetry and registered there as LibRec, so the probe does reach the registry
type World struct {
	eng    *sim.Engine
	net    *netsim.Network
	nodes  []string // node name per rank
	tracer Tracer
	rec    *telemetry.Recorder
	col    *ioreq.Collector
	phase  int

	barrier genBarrier
}

// NewWorld creates a world of len(rankNodes) ranks; rankNodes[i] is
// the network node hosting rank i (must be attached to net).
func NewWorld(e *sim.Engine, net *netsim.Network, rankNodes []string) *World {
	if len(rankNodes) == 0 {
		panic("mpiio: empty world")
	}
	w := &World{eng: e, net: net, nodes: append([]string{}, rankNodes...), phase: -1}
	w.barrier.n = len(rankNodes)
	w.rec = telemetry.NewRecorder(e, "mpiio", telemetry.LevelLibrary, int64(len(rankNodes)))
	return w
}

// SetTelemetry replaces the world's recorder (the cluster installs a
// registered one; standalone worlds keep the default).
func (w *World) SetTelemetry(r *telemetry.Recorder) {
	if r != nil {
		w.rec = r
	}
}

// Telemetry returns the library-level telemetry probe.
func (w *World) Telemetry() *telemetry.Recorder { return w.rec }

// SetCollector installs the span collector stamped on every request
// the library originates. A nil collector (the default) keeps requests
// span-silent.
func (w *World) SetCollector(c *ioreq.Collector) { w.col = c }

// Collector returns the installed span collector (possibly nil).
func (w *World) Collector() *ioreq.Collector { return w.col }

// SetPhase stamps the current workload phase onto subsequent requests
// (-1, the default, means no phase structure).
func (w *World) SetPhase(ph int) { w.phase = ph }

// req builds the per-request context for one library call: the
// operation class, the originating rank and phase, and the world's
// span collector.
func (w *World) req(p *sim.Proc, op ioreq.Op, rank int) *ioreq.Request {
	return ioreq.New(p, op).SetOrigin(rank, w.phase).SetCollector(w.col)
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.nodes) }

// Node returns the node hosting a rank.
func (w *World) Node(rank int) string { return w.nodes[rank] }

// Engine returns the simulation engine.
func (w *World) Engine() *sim.Engine { return w.eng }

// Net returns the communication network.
func (w *World) Net() *netsim.Network { return w.net }

// SetTracer installs tr for all subsequent operations.
func (w *World) SetTracer(tr Tracer) { w.tracer = tr }

// Tracer returns the installed tracer (possibly nil).
func (w *World) Tracer() Tracer { return w.tracer }

func (w *World) trace(ev Event) {
	w.record(ev)
	if w.tracer != nil {
		w.tracer.Record(ev)
	}
}

// record maps a library event onto the telemetry plane: data ops by
// direction, open/close/sync as metadata, compute/comm/barrier as
// auxiliary time counters (they are application time, not I/O time).
func (w *World) record(ev Event) {
	busy := sim.Duration(ev.T1 - ev.T0)
	ops := int64(ev.Count)
	if ops <= 0 {
		ops = 1
	}
	switch ev.Op {
	case OpRead, OpReadAll:
		w.rec.Observe(telemetry.ClassRead, ops, ev.Bytes, busy)
	case OpWrite, OpWriteAll:
		w.rec.Observe(telemetry.ClassWrite, ops, ev.Bytes, busy)
	case OpOpen, OpClose, OpSync:
		w.rec.Observe(telemetry.ClassMeta, ops, 0, busy)
	case OpCompute:
		w.rec.Add("compute_ns", int64(busy))
	case OpComm:
		w.rec.Add("comm_ns", int64(busy))
		w.rec.Add("comm_bytes", ev.Bytes)
	case OpBarrier:
		w.rec.Add("barrier_ns", int64(busy))
	}
	if ev.Op == OpWriteAll || ev.Op == OpReadAll {
		w.rec.Add("collective_ops", ops)
	}
}

// Compute models computation on a rank for d of simulated time.
func (w *World) Compute(p *sim.Proc, rank int, d sim.Duration) {
	t0 := p.Now()
	p.Sleep(d)
	w.trace(Event{Rank: rank, Op: OpCompute, Offset: -1, T0: t0, T1: p.Now()})
}

// Send models a point-to-point message of nb bytes. Communication is
// application time, not I/O: the request carrying it is collectorless,
// so its network span is discarded rather than attributed to the path.
func (w *World) Send(p *sim.Proc, fromRank, toRank int, nb int64) {
	t0 := p.Now()
	w.net.Send(ioreq.Meta(p), w.nodes[fromRank], w.nodes[toRank], nb)
	w.trace(Event{Rank: fromRank, Op: OpComm, Offset: -1, Bytes: nb, Count: 1, T0: t0, T1: p.Now()})
}

// Barrier blocks the rank until every rank has entered, then charges
// a dissemination-barrier cost of ceil(log2 n) network latencies.
func (w *World) Barrier(p *sim.Proc, rank int) {
	t0 := p.Now()
	w.barrier.wait(p)
	rounds := bits.Len(uint(w.Size() - 1))
	p.Sleep(sim.Duration(rounds) * 2 * w.net.Params().Latency)
	w.trace(Event{Rank: rank, Op: OpBarrier, Offset: -1, T0: t0, T1: p.Now()})
}

// genBarrier is a reusable generation-counting barrier.
type genBarrier struct {
	n, count int
	waiters  []func()
}

func (b *genBarrier) wait(p *sim.Proc) {
	b.count++
	if b.count == b.n {
		b.count = 0
		ws := b.waiters
		b.waiters = nil
		for _, wk := range ws {
			wk()
		}
		return
	}
	b.waiters = append(b.waiters, p.PrepareWait())
	p.Wait()
}

// oneShotBarrier synchronizes exactly n arrivals once.
type oneShotBarrier struct {
	n, count int
	waiters  []func()
}

func (b *oneShotBarrier) wait(p *sim.Proc) {
	b.count++
	if b.count == b.n {
		for _, wk := range b.waiters {
			wk()
		}
		b.waiters = nil
		return
	}
	b.waiters = append(b.waiters, p.PrepareWait())
	p.Wait()
}
