package mpiio

import (
	"fmt"
	"sort"

	"ioeval/internal/fs"
	"ioeval/internal/sim"
)

// View is the analogue of an MPI file view (MPI_File_set_view with a
// vector/subarray filetype): starting at Disp, the file is tiled by a
// repeating Frame, and the rank sees only the Tiles within each frame,
// concatenated into a dense stream.
//
//	|<-------- Frame -------->|<-------- Frame -------->| ...
//	  [tile0]   [tile1]          [tile0]   [tile1]
//
// Sequential Read/Write calls then consume the view like a plain
// stream while the file-level accesses follow the strided pattern —
// exactly how BT-IO's "simple" subtype and similar codes are written.
type View struct {
	Disp  int64      // displacement: view start in the file
	Tiles []fs.IOVec // per-frame visible extents (offsets relative to frame start)
	Frame int64      // frame length in file bytes
}

// Validate checks the view's invariants.
func (v View) Validate() error {
	if v.Frame <= 0 {
		return fmt.Errorf("mpiio: view frame %d must be positive", v.Frame)
	}
	if len(v.Tiles) == 0 {
		return fmt.Errorf("mpiio: view needs at least one tile")
	}
	last := int64(-1)
	for i, t := range v.Tiles {
		if t.Off < 0 || t.Len <= 0 || t.Off+t.Len > v.Frame {
			return fmt.Errorf("mpiio: tile %d (%+v) outside frame %d", i, t, v.Frame)
		}
		if t.Off <= last {
			return fmt.Errorf("mpiio: tiles must be sorted and disjoint (tile %d)", i)
		}
		last = t.Off + t.Len
	}
	return nil
}

// payload returns the visible bytes per frame.
func (v View) payload() int64 {
	var n int64
	for _, t := range v.Tiles {
		n += t.Len
	}
	return n
}

// translate maps [pos, pos+n) of the dense view stream to file
// extents.
func (v View) translate(pos, n int64) []fs.IOVec {
	payload := v.payload()
	var out []fs.IOVec
	for n > 0 {
		frame := pos / payload
		within := pos % payload
		// Find the tile containing `within`.
		acc := int64(0)
		for _, t := range v.Tiles {
			if within < acc+t.Len {
				tOff := within - acc
				take := t.Len - tOff
				if take > n {
					take = n
				}
				off := v.Disp + frame*v.Frame + t.Off + tOff
				if k := len(out); k > 0 && out[k-1].Off+out[k-1].Len == off {
					out[k-1].Len += take
				} else {
					out = append(out, fs.IOVec{Off: off, Len: take})
				}
				pos += take
				n -= take
				break
			}
			acc += t.Len
		}
		if within >= payload {
			panic("mpiio: view translation out of frame")
		}
	}
	return out
}

// viewState is a rank's installed view plus its stream cursor.
type viewState struct {
	view View
	pos  int64
}

// SetView installs a view for the calling rank and resets its cursor
// (MPI_File_set_view semantics).
func (f *File) SetView(rank int, v View) error {
	if err := v.Validate(); err != nil {
		return err
	}
	if f.views == nil {
		f.views = make(map[int]*viewState)
	}
	f.views[rank] = &viewState{view: v}
	return nil
}

// viewVecs consumes n bytes of the rank's view stream.
func (f *File) viewVecs(rank int, n int64) []fs.IOVec {
	vs, ok := f.views[rank]
	if !ok {
		panic(fmt.Sprintf("mpiio: rank %d has no view on %q", rank, f.path))
	}
	vecs := vs.view.translate(vs.pos, n)
	vs.pos += n
	return vecs
}

// Write writes n bytes at the rank's current view position
// (independent I/O through the view; MPI_File_write).
func (f *File) Write(p *sim.Proc, rank int, n int64) int64 {
	return f.WriteVec(p, rank, f.viewVecs(rank, n))
}

// Read reads n bytes at the rank's current view position.
func (f *File) Read(p *sim.Proc, rank int, n int64) int64 {
	return f.ReadVec(p, rank, f.viewVecs(rank, n))
}

// WriteAll is the collective write of n bytes through the view
// (MPI_File_write_all): the two-phase machinery merges every rank's
// strided tiles into large contiguous accesses.
func (f *File) WriteAll(p *sim.Proc, rank int, n int64) int64 {
	return f.WriteVecAll(p, rank, f.viewVecs(rank, n))
}

// ReadAll is the collective read through the view.
func (f *File) ReadAll(p *sim.Proc, rank int, n int64) int64 {
	return f.ReadVecAll(p, rank, f.viewVecs(rank, n))
}

// SeekView moves the rank's view cursor (MPI_File_seek with
// MPI_SEEK_SET semantics, in view-relative bytes).
func (f *File) SeekView(rank int, pos int64) {
	vs, ok := f.views[rank]
	if !ok {
		panic(fmt.Sprintf("mpiio: rank %d has no view on %q", rank, f.path))
	}
	if pos < 0 {
		panic("mpiio: negative view position")
	}
	vs.pos = pos
}

// ViewOf returns a copy of the rank's installed view (ok=false if
// none).
func (f *File) ViewOf(rank int) (View, bool) {
	vs, ok := f.views[rank]
	if !ok {
		return View{}, false
	}
	return vs.view, true
}

// ContiguousView is the default view: the whole file, dense.
func ContiguousView() View {
	return View{Disp: 0, Frame: 1 << 40, Tiles: []fs.IOVec{{Off: 0, Len: 1 << 40}}}
}

// StridedView builds the common vector filetype: blocks of blockLen
// every stride bytes, starting at disp + rank*blockLen — the classic
// round-robin decomposition of nRanks over a shared file.
func StridedView(disp int64, rank int, nRanks int, blockLen int64) View {
	return View{
		Disp:  disp,
		Frame: int64(nRanks) * blockLen,
		Tiles: []fs.IOVec{{Off: int64(rank) * blockLen, Len: blockLen}},
	}
}

// sortTiles is a helper for building views from unsorted extents.
func sortTiles(tiles []fs.IOVec) []fs.IOVec {
	sort.Slice(tiles, func(i, j int) bool { return tiles[i].Off < tiles[j].Off })
	return tiles
}

// SubarrayView builds a view exposing the given in-frame extents
// (sorted for the caller), repeating every frame bytes.
func SubarrayView(disp int64, frame int64, tiles []fs.IOVec) View {
	return View{Disp: disp, Frame: frame, Tiles: sortTiles(tiles)}
}
