package mpiio

import (
	"fmt"
	"sort"

	"ioeval/internal/fs"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
	"ioeval/internal/telemetry"
)

// Hints configures collective buffering, mirroring the ROMIO hints
// the paper's MPICH library exposes.
type Hints struct {
	// CollectiveBuffering enables two-phase I/O for *All operations.
	// When false, collective calls degrade to independent operations
	// (the behaviour NAS BT-IO "simple" exhibits).
	CollectiveBuffering bool
	// CBNodes is the number of aggregator ranks (cb_nodes); zero
	// defaults to one aggregator per distinct node.
	CBNodes int
	// CBBufferSize is the aggregator staging buffer (cb_buffer_size);
	// aggregator writes are issued in chunks of this size. Zero
	// defaults to 16 MiB.
	CBBufferSize int64
}

// DefaultHints enables collective buffering with ROMIO defaults.
func DefaultHints() Hints {
	return Hints{CollectiveBuffering: true, CBBufferSize: 16 << 20}
}

// ByteRangeLocker is implemented by filesystems on which MPI-IO must
// bracket operations with byte-range locks for shared-file
// consistency (the NFS client). The File charges one lock/unlock pair
// per application operation on such mounts — a large part of the
// "simple subtype" penalty the paper measures. Files opened by a
// single process need no locks.
type ByteRangeLocker interface {
	LockUnlock(r *ioreq.Request, count int64)
}

// DirectIOSetter is implemented by handles whose client-side data
// cache can be bypassed; MPI-IO enables direct I/O on files shared by
// more than one process.
type DirectIOSetter interface {
	SetDirectIO(direct bool)
}

// File is an MPI file: one path opened by every rank through its own
// filesystem mount.
type File struct {
	w       *World
	path    string
	flags   int
	mounts  []fs.Interface
	handles []fs.Handle
	hints   Hints
	aggs    []int // aggregator ranks

	pending *collOp // rendezvous for the in-flight collective

	views map[int]*viewState // per-rank file views (view.go)
}

// OpenFile describes a file to the world; every rank must then call
// Open from its own process. mounts[i] is rank i's filesystem (an NFS
// client for shared storage, a local Mount for node-local files).
func OpenFile(w *World, path string, flags int, mounts []fs.Interface, hints Hints) *File {
	if len(mounts) != w.Size() {
		panic(fmt.Sprintf("mpiio: %d mounts for %d ranks", len(mounts), w.Size()))
	}
	if hints.CBBufferSize == 0 {
		hints.CBBufferSize = 16 << 20
	}
	f := &File{
		w:       w,
		path:    path,
		flags:   flags,
		mounts:  mounts,
		handles: make([]fs.Handle, w.Size()),
		hints:   hints,
	}
	f.aggs = f.chooseAggregators()
	return f
}

// chooseAggregators picks the first rank on each distinct node
// (ROMIO's default), truncated/extended to CBNodes if set.
func (f *File) chooseAggregators() []int {
	seen := map[string]bool{}
	var aggs []int
	for r := 0; r < f.w.Size(); r++ {
		node := f.w.Node(r)
		if !seen[node] {
			seen[node] = true
			aggs = append(aggs, r)
		}
	}
	if f.hints.CBNodes > 0 {
		for r := 0; len(aggs) < f.hints.CBNodes && r < f.w.Size(); r++ {
			found := false
			for _, a := range aggs {
				if a == r {
					found = true
					break
				}
			}
			if !found {
				aggs = append(aggs, r)
			}
		}
		if len(aggs) > f.hints.CBNodes {
			aggs = aggs[:f.hints.CBNodes]
		}
		sort.Ints(aggs)
	}
	return aggs
}

// Aggregators returns the aggregator ranks used for collective I/O.
func (f *File) Aggregators() []int { return append([]int{}, f.aggs...) }

// Path returns the file path.
func (f *File) Path() string { return f.path }

// span opens the library-level span on r: the root of the request's
// span tree, stamped on the same clock reads as the trace event, so
// summed root spans equal summed trace I/O time by construction.
func (f *File) span(r *ioreq.Request) {
	r.Push(telemetry.LevelLibrary, "mpiio:"+f.path)
}

// Open opens the file on the calling rank. Files opened by more than
// one process are switched to direct I/O on filesystems that support
// it (the NFS client): ROMIO cannot rely on close-to-open caching for
// shared files.
func (f *File) Open(p *sim.Proc, rank int) error {
	r := f.w.req(p, ioreq.OpMeta, rank)
	t0 := p.Now()
	f.span(r)
	h, err := f.mounts[rank].Open(r, f.path, f.flags)
	if err != nil {
		r.Pop()
		return err
	}
	if f.w.Size() > 1 {
		if d, ok := h.(DirectIOSetter); ok {
			d.SetDirectIO(true)
		}
	}
	f.handles[rank] = h
	r.Pop()
	f.w.trace(Event{Rank: rank, Op: OpOpen, File: f.path, Offset: -1, Count: 1, T0: t0, T1: p.Now()})
	return nil
}

// lock charges per-operation byte-range locking when the rank's
// mount requires it. A file private to one process needs none.
func (f *File) lock(r *ioreq.Request, rank int, count int64) {
	if f.w.Size() == 1 {
		return
	}
	if l, ok := f.mounts[rank].(ByteRangeLocker); ok {
		l.LockUnlock(r, count)
	}
}

func (f *File) handle(rank int) fs.Handle {
	h := f.handles[rank]
	if h == nil {
		panic(fmt.Sprintf("mpiio: rank %d uses %q before Open", rank, f.path))
	}
	return h
}

// WriteAt is an independent write.
func (f *File) WriteAt(p *sim.Proc, rank int, off, n int64) int64 {
	r := f.w.req(p, ioreq.OpWrite, rank).SetPattern(ioreq.ModeSequential, n)
	t0 := p.Now()
	f.span(r)
	f.lock(r, rank, 1)
	got := f.handle(rank).WriteAt(r, off, n)
	r.Pop()
	f.w.trace(Event{Rank: rank, Op: OpWrite, File: f.path, Offset: off, Bytes: got, Count: 1, Span: got, T0: t0, T1: p.Now()})
	return got
}

// ReadAt is an independent read.
func (f *File) ReadAt(p *sim.Proc, rank int, off, n int64) int64 {
	r := f.w.req(p, ioreq.OpRead, rank).SetPattern(ioreq.ModeSequential, n)
	t0 := p.Now()
	f.span(r)
	f.lock(r, rank, 1)
	got := f.handle(rank).ReadAt(r, off, n)
	r.Pop()
	f.w.trace(Event{Rank: rank, Op: OpRead, File: f.path, Offset: off, Bytes: got, Count: 1, Span: got, T0: t0, T1: p.Now()})
	return got
}

// WriteVec issues many independent writes (e.g. a strided pattern)
// in one library call per element, batched for simulation efficiency.
func (f *File) WriteVec(p *sim.Proc, rank int, vecs []fs.IOVec) int64 {
	if len(vecs) == 0 {
		return 0
	}
	r := f.w.req(p, ioreq.OpWrite, rank).SetPattern(vecMode(vecs), vecs[0].Len)
	t0 := p.Now()
	f.span(r)
	f.lock(r, rank, int64(len(vecs)))
	got := f.handle(rank).WriteVec(r, vecs)
	r.Pop()
	f.w.trace(Event{Rank: rank, Op: OpWrite, File: f.path, Offset: vecs[0].Off,
		Bytes: got, Count: len(vecs), Stride: vecStride(vecs), Span: vecSpan(vecs), T0: t0, T1: p.Now()})
	return got
}

// ReadVec issues many independent reads.
func (f *File) ReadVec(p *sim.Proc, rank int, vecs []fs.IOVec) int64 {
	if len(vecs) == 0 {
		return 0
	}
	r := f.w.req(p, ioreq.OpRead, rank).SetPattern(vecMode(vecs), vecs[0].Len)
	t0 := p.Now()
	f.span(r)
	f.lock(r, rank, int64(len(vecs)))
	got := f.handle(rank).ReadVec(r, vecs)
	r.Pop()
	f.w.trace(Event{Rank: rank, Op: OpRead, File: f.path, Offset: vecs[0].Off,
		Bytes: got, Count: len(vecs), Stride: vecStride(vecs), Span: vecSpan(vecs), T0: t0, T1: p.Now()})
	return got
}

// Sync flushes the rank's view of the file.
func (f *File) Sync(p *sim.Proc, rank int) {
	r := f.w.req(p, ioreq.OpMeta, rank)
	t0 := p.Now()
	f.span(r)
	f.handle(rank).Sync(r)
	r.Pop()
	f.w.trace(Event{Rank: rank, Op: OpSync, File: f.path, Offset: -1, Count: 1, T0: t0, T1: p.Now()})
}

// Close closes the rank's handle.
func (f *File) Close(p *sim.Proc, rank int) {
	r := f.w.req(p, ioreq.OpMeta, rank)
	t0 := p.Now()
	f.span(r)
	f.handle(rank).Close(r)
	f.handles[rank] = nil
	r.Pop()
	f.w.trace(Event{Rank: rank, Op: OpClose, File: f.path, Offset: -1, Count: 1, T0: t0, T1: p.Now()})
}

// WriteAtAll is the collective write of one contiguous span per rank.
func (f *File) WriteAtAll(p *sim.Proc, rank int, off, n int64) int64 {
	return f.WriteVecAll(p, rank, []fs.IOVec{{Off: off, Len: n}})
}

// ReadAtAll is the collective read of one contiguous span per rank.
func (f *File) ReadAtAll(p *sim.Proc, rank int, off, n int64) int64 {
	return f.ReadVecAll(p, rank, []fs.IOVec{{Off: off, Len: n}})
}

// WriteVecAll is the collective (two-phase) write: every rank calls
// it with its own scattered contribution; aggregator ranks gather the
// data over the communication network, rearrange it, and write large
// contiguous chunks.
func (f *File) WriteVecAll(p *sim.Proc, rank int, vecs []fs.IOVec) int64 {
	r := f.w.req(p, ioreq.OpWrite, rank).SetPattern(vecMode(vecs), vecBlock(vecs))
	t0 := p.Now()
	f.span(r)
	n := f.collective(r, rank, vecs, true)
	r.Pop()
	// One collective library call counts as one operation regardless
	// of how many file regions the rank contributed (the paper's
	// Table II counts 640 = ranks × dumps for the full subtype).
	// Collective buffering realizes the access as large contiguous
	// writes regardless of the rank's scattered view: Span = Bytes so
	// the phase classifies as sequential.
	f.w.trace(Event{Rank: rank, Op: OpWriteAll, File: f.path, Offset: firstOff(vecs),
		Bytes: n, Count: 1, Span: n, T0: t0, T1: p.Now()})
	return n
}

// ReadVecAll is the collective (two-phase) read.
func (f *File) ReadVecAll(p *sim.Proc, rank int, vecs []fs.IOVec) int64 {
	r := f.w.req(p, ioreq.OpRead, rank).SetPattern(vecMode(vecs), vecBlock(vecs))
	t0 := p.Now()
	f.span(r)
	n := f.collective(r, rank, vecs, false)
	r.Pop()
	f.w.trace(Event{Rank: rank, Op: OpReadAll, File: f.path, Offset: firstOff(vecs),
		Bytes: n, Count: 1, Span: n, T0: t0, T1: p.Now()})
	return n
}

func firstOff(vecs []fs.IOVec) int64 {
	if len(vecs) == 0 {
		return -1
	}
	return vecs[0].Off
}

// vecSpan returns the file extent covered by the vector (assumes
// ascending offsets, which all workloads produce).
func vecSpan(vecs []fs.IOVec) int64 {
	if len(vecs) == 0 {
		return 0
	}
	last := vecs[len(vecs)-1]
	return last.Off + last.Len - vecs[0].Off
}

// vecMode classifies the vector's access pattern: one extent is
// sequential, evenly spaced extents are strided, anything else is
// random.
func vecMode(vecs []fs.IOVec) ioreq.Mode {
	switch {
	case len(vecs) <= 1:
		return ioreq.ModeSequential
	case vecStride(vecs) != 0:
		return ioreq.ModeStrided
	}
	return ioreq.ModeRandom
}

// vecBlock returns the leading element length (0 for empty vectors).
func vecBlock(vecs []fs.IOVec) int64 {
	if len(vecs) == 0 {
		return 0
	}
	return vecs[0].Len
}

// vecStride returns the constant offset stride of the vector, or 0 if
// the elements are not evenly spaced (or there are fewer than two).
func vecStride(vecs []fs.IOVec) int64 {
	if len(vecs) < 2 {
		return 0
	}
	stride := vecs[1].Off - vecs[0].Off
	for i := 2; i < len(vecs); i++ {
		if vecs[i].Off-vecs[i-1].Off != stride {
			return 0
		}
	}
	return stride
}

// collOp is the rendezvous state of one in-flight collective.
type collOp struct {
	rendezvous oneShotBarrier
	afterXchg  oneShotBarrier
	afterIO    oneShotBarrier
	vecs       [][]fs.IOVec
	write      bool

	// plan, computed by the last arriving rank:
	parts      []part // per aggregator
	totalBytes int64
}

type part struct {
	rank int // aggregator rank
	vecs []fs.IOVec
	size int64
}

func (f *File) collective(r *ioreq.Request, rank int, vecs []fs.IOVec, write bool) int64 {
	p := r.Proc()
	if !f.hints.CollectiveBuffering {
		// Degenerate collective: independent operation per rank.
		f.lock(r, rank, int64(len(vecs)))
		if write {
			return f.handle(rank).WriteVec(r, vecs)
		}
		return f.handle(rank).ReadVec(r, vecs)
	}

	n := f.w.Size()
	if f.pending == nil {
		c := &collOp{vecs: make([][]fs.IOVec, n), write: write}
		c.rendezvous.n, c.afterXchg.n, c.afterIO.n = n, n, n
		f.pending = c
	}
	c := f.pending
	if c.write != write {
		panic(fmt.Sprintf("mpiio: mixed collective read/write on %q", f.path))
	}
	c.vecs[rank] = vecs
	if c.rendezvous.count == n-1 {
		// Last arrival computes the plan before releasing everyone.
		f.pending = nil
		c.computePlan(f)
	}
	c.rendezvous.wait(p)

	var myBytes int64
	for _, v := range c.vecs[rank] {
		myBytes += v.Len
	}

	if write {
		f.exchange(r, c, rank, myBytes, true)
		c.afterXchg.wait(p)
		f.aggregatorIO(r, c, rank, true)
		c.afterIO.wait(p)
	} else {
		f.aggregatorIO(r, c, rank, false)
		c.afterXchg.wait(p)
		f.exchange(r, c, rank, myBytes, false)
		c.afterIO.wait(p)
	}
	return myBytes
}

// computePlan merges all contributions into a minimal contiguous
// cover and partitions it evenly across aggregators.
func (c *collOp) computePlan(f *File) {
	var all []fs.IOVec
	for _, vs := range c.vecs {
		all = append(all, vs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Off < all[j].Off })
	var merged []fs.IOVec
	for _, v := range all {
		if v.Len == 0 {
			continue
		}
		if m := len(merged); m > 0 && v.Off <= merged[m-1].Off+merged[m-1].Len {
			if end := v.Off + v.Len; end > merged[m-1].Off+merged[m-1].Len {
				merged[m-1].Len = end - merged[m-1].Off
			}
		} else {
			merged = append(merged, v)
		}
	}
	var total int64
	for _, m := range merged {
		total += m.Len
	}
	c.totalBytes = total

	nAgg := len(f.aggs)
	if nAgg == 0 {
		panic("mpiio: no aggregators")
	}
	share := (total + int64(nAgg) - 1) / int64(nAgg)
	c.parts = make([]part, 0, nAgg)
	cur := part{rank: f.aggs[0]}
	ai := 0
	for _, m := range merged {
		off, length := m.Off, m.Len
		for length > 0 {
			room := share - cur.size
			take := length
			if take > room {
				take = room
			}
			if take > 0 {
				cur.vecs = append(cur.vecs, fs.IOVec{Off: off, Len: take})
				cur.size += take
				off += take
				length -= take
			}
			if cur.size >= share && ai < nAgg-1 {
				c.parts = append(c.parts, cur)
				ai++
				cur = part{rank: f.aggs[ai]}
			}
		}
	}
	if cur.size > 0 || len(c.parts) == 0 {
		c.parts = append(c.parts, cur)
	}
}

// exchange moves each rank's bytes between the rank and the
// aggregators, proportionally to partition sizes — phase one of
// two-phase I/O (phase two for reads).
func (f *File) exchange(r *ioreq.Request, c *collOp, rank int, myBytes int64, toAggs bool) {
	if c.totalBytes == 0 || myBytes == 0 {
		return
	}
	for _, pt := range c.parts {
		share := myBytes * pt.size / c.totalBytes
		if share == 0 {
			continue
		}
		if toAggs {
			f.w.net.Send(r, f.w.Node(rank), f.w.Node(pt.rank), share)
		} else {
			f.w.net.Send(r, f.w.Node(pt.rank), f.w.Node(rank), share)
		}
	}
}

// aggregatorIO performs the file phase: if the calling rank owns a
// partition it reads/writes it in CBBufferSize chunks.
func (f *File) aggregatorIO(r *ioreq.Request, c *collOp, rank int, write bool) {
	for _, pt := range c.parts {
		if pt.rank != rank {
			continue
		}
		h := f.handle(rank)
		bufsz := f.hints.CBBufferSize
		// Issue the partition in buffer-size rounds, preserving vector
		// boundaries (partitions are contiguous covers, so vectors here
		// are already large).
		var round []fs.IOVec
		var roundBytes int64
		flush := func() {
			if len(round) == 0 {
				return
			}
			f.lock(r, rank, 1)
			if write {
				h.WriteVec(r, round)
			} else {
				h.ReadVec(r, round)
			}
			round, roundBytes = nil, 0
		}
		for _, v := range pt.vecs {
			for v.Len > 0 {
				take := v.Len
				if take > bufsz-roundBytes {
					take = bufsz - roundBytes
				}
				round = append(round, fs.IOVec{Off: v.Off, Len: take})
				roundBytes += take
				v.Off += take
				v.Len -= take
				if roundBytes == bufsz {
					flush()
				}
			}
		}
		flush()
	}
}
