package mpiio

import (
	"testing"
	"testing/quick"

	"ioeval/internal/fs"
	"ioeval/internal/sim"
)

func TestViewValidate(t *testing.T) {
	bad := []View{
		{Frame: 0, Tiles: []fs.IOVec{{Off: 0, Len: 1}}},
		{Frame: 10, Tiles: nil},
		{Frame: 10, Tiles: []fs.IOVec{{Off: 8, Len: 4}}},                   // tile beyond frame
		{Frame: 10, Tiles: []fs.IOVec{{Off: 4, Len: 2}, {Off: 0, Len: 2}}}, // unsorted
		{Frame: 10, Tiles: []fs.IOVec{{Off: 0, Len: 4}, {Off: 2, Len: 2}}}, // overlap
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("bad view %d validated: %+v", i, v)
		}
	}
	good := StridedView(100, 2, 4, 1024)
	if err := good.Validate(); err != nil {
		t.Errorf("good view rejected: %v", err)
	}
}

func TestStridedViewTranslation(t *testing.T) {
	// 4 ranks, 1 KiB blocks: rank 2 sees file offsets 2048..3071,
	// 6144..7167, ... as a dense stream.
	v := StridedView(0, 2, 4, 1024)
	vecs := v.translate(0, 3*1024)
	want := []fs.IOVec{
		{Off: 2048, Len: 1024},
		{Off: 4096 + 2048, Len: 1024},
		{Off: 2*4096 + 2048, Len: 1024},
	}
	if len(vecs) != len(want) {
		t.Fatalf("vecs = %+v", vecs)
	}
	for i := range want {
		if vecs[i] != want[i] {
			t.Fatalf("vec %d = %+v, want %+v", i, vecs[i], want[i])
		}
	}
}

func TestTranslationMidTileAndMerge(t *testing.T) {
	v := View{Disp: 10, Frame: 100, Tiles: []fs.IOVec{{Off: 0, Len: 50}, {Off: 50, Len: 10}}}
	// The frame payload is 60 bytes: 40 bytes from position 25 take the
	// rest of tile 0 (25) + tile 1 (10) — contiguous in file space, so
	// merged — then spill 5 bytes into the next frame's tile 0.
	vecs := v.translate(25, 40)
	want := []fs.IOVec{{Off: 35, Len: 35}, {Off: 110, Len: 5}}
	if len(vecs) != 2 || vecs[0] != want[0] || vecs[1] != want[1] {
		t.Fatalf("vecs = %+v, want %+v", vecs, want)
	}
}

func TestViewIO(t *testing.T) {
	tc := newTestCluster(2, 4)
	f := OpenFile(tc.world, "/viewed", fs.ORead|fs.OWrite|fs.OCreate, tc.mounts, Hints{})
	const block = 256 << 10
	tc.runRanks(func(p *sim.Proc, rank int) {
		if err := f.Open(p, rank); err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if err := f.SetView(rank, StridedView(0, rank, 4, block)); err != nil {
			t.Errorf("set view: %v", err)
			return
		}
		// Stream 4 blocks through the view: round-robin interleave.
		if n := f.Write(p, rank, 4*block); n != 4*block {
			t.Errorf("rank %d wrote %d", rank, n)
		}
		tc.world.Barrier(p, rank)
		f.SeekView(rank, 0)
		if n := f.Read(p, rank, 4*block); n != 4*block {
			t.Errorf("rank %d read %d", rank, n)
		}
		f.Close(p, rank)
	})
	// All ranks interleaved: the file is dense, 4 ranks × 4 blocks.
	if tc.srv.Stats.BytesWritten != 16*block {
		t.Fatalf("server wrote %d, want %d", tc.srv.Stats.BytesWritten, 16*block)
	}
}

func TestViewCollective(t *testing.T) {
	tc := newTestCluster(2, 4)
	f := OpenFile(tc.world, "/viewed", fs.OWrite|fs.OCreate, tc.mounts, DefaultHints())
	const block = 64 << 10
	tc.runRanks(func(p *sim.Proc, rank int) {
		f.Open(p, rank)
		f.SetView(rank, StridedView(0, rank, 4, block))
		f.WriteAll(p, rank, 8*block)
		f.Close(p, rank)
	})
	if tc.srv.Stats.BytesWritten != 32*block {
		t.Fatalf("server wrote %d, want %d", tc.srv.Stats.BytesWritten, 32*block)
	}
}

func TestUseViewWithoutSetPanics(t *testing.T) {
	tc := newTestCluster(1, 1)
	f := OpenFile(tc.world, "/f", fs.OWrite|fs.OCreate, tc.mounts, Hints{})
	tc.eng.Spawn("r", func(p *sim.Proc) {
		f.Open(p, 0)
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f.Write(p, 0, 1024)
	})
	tc.eng.Run()
}

// Property: translating any [pos, pos+n) covers exactly n bytes, with
// ascending non-overlapping file extents that all land inside tiles.
func TestQuickViewTranslation(t *testing.T) {
	v := View{Disp: 7, Frame: 1000, Tiles: []fs.IOVec{
		{Off: 10, Len: 100}, {Off: 200, Len: 50}, {Off: 600, Len: 300},
	}}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	payload := v.payload()
	f := func(posRaw, nRaw uint16) bool {
		pos := int64(posRaw) % (20 * payload)
		n := int64(nRaw)%5000 + 1
		vecs := v.translate(pos, n)
		var total int64
		lastEnd := int64(-1)
		for _, x := range vecs {
			if x.Off <= lastEnd {
				return false
			}
			lastEnd = x.Off + x.Len
			total += x.Len
			// Extent must sit inside some tile of some frame.
			rel := (x.Off - v.Disp) % v.Frame
			inTile := false
			for _, tl := range v.Tiles {
				if rel >= tl.Off && rel+x.Len <= tl.Off+tl.Len {
					inTile = true
				}
			}
			if !inTile {
				return false
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
