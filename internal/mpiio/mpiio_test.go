package mpiio

import (
	"fmt"
	"testing"

	"ioeval/internal/cache"
	"ioeval/internal/device"
	"ioeval/internal/fs"
	"ioeval/internal/netsim"
	"ioeval/internal/nfs"
	"ioeval/internal/sim"
)

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
	gb = int64(1) << 30
)

// testCluster: nRanks ranks over nNodes nodes, each node with an NFS
// client to a shared server, plus a world on a comm network.
type testCluster struct {
	eng    *sim.Engine
	world  *World
	mounts []fs.Interface
	srv    *nfs.Server
}

func newTestCluster(nNodes, nRanks int) *testCluster {
	e := sim.NewEngine()
	data := netsim.New(e, netsim.GigabitEthernet("data"))
	comm := netsim.New(e, netsim.GigabitEthernet("comm"))
	data.Attach("ionode")
	d := device.NewDisk(e, device.DefaultSATA("sd", 917*gb, 100e6))
	pc := cache.New(e, cache.DefaultParams("srv-pc", 2*gb), d)
	backend := fs.NewMount(e, fs.DefaultMountParams("ext4"), pc)
	srv := nfs.NewServer(e, nfs.DefaultServerParams("nfs"), "ionode", data, backend)

	clients := make([]*nfs.Client, nNodes)
	for i := 0; i < nNodes; i++ {
		node := fmt.Sprintf("n%d", i)
		data.Attach(node)
		comm.Attach(node)
		clients[i] = nfs.NewClient(e, nfs.DefaultClientParams("nfs"), node, data, srv)
	}
	rankNodes := make([]string, nRanks)
	mounts := make([]fs.Interface, nRanks)
	for r := 0; r < nRanks; r++ {
		rankNodes[r] = fmt.Sprintf("n%d", r%nNodes)
		mounts[r] = clients[r%nNodes]
	}
	return &testCluster{
		eng:    e,
		world:  NewWorld(e, comm, rankNodes),
		mounts: mounts,
		srv:    srv,
	}
}

// runRanks spawns fn once per rank and runs to completion.
func (tc *testCluster) runRanks(fn func(p *sim.Proc, rank int)) sim.Time {
	for r := 0; r < tc.world.Size(); r++ {
		r := r
		tc.eng.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) { fn(p, r) })
	}
	return tc.eng.Run()
}

func TestBarrierSynchronizes(t *testing.T) {
	tc := newTestCluster(4, 8)
	var after []sim.Time
	tc.runRanks(func(p *sim.Proc, rank int) {
		p.Sleep(sim.Duration(rank) * sim.Millisecond) // skew arrival
		tc.world.Barrier(p, rank)
		after = append(after, p.Now())
	})
	for _, ts := range after {
		if ts < sim.Time(7*sim.Millisecond) {
			t.Fatalf("rank left barrier at %v, before last arrival", sim.Duration(ts))
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	tc := newTestCluster(2, 4)
	counts := make([]int, 4)
	tc.runRanks(func(p *sim.Proc, rank int) {
		for i := 0; i < 3; i++ {
			tc.world.Barrier(p, rank)
			counts[rank]++
		}
	})
	for r, c := range counts {
		if c != 3 {
			t.Fatalf("rank %d passed %d barriers", r, c)
		}
	}
}

func TestIndependentWriteRead(t *testing.T) {
	tc := newTestCluster(2, 4)
	f := OpenFile(tc.world, "/shared", fs.OWrite|fs.ORead|fs.OCreate, tc.mounts, Hints{})
	tc.runRanks(func(p *sim.Proc, rank int) {
		if err := f.Open(p, rank); err != nil {
			t.Errorf("rank %d open: %v", rank, err)
			return
		}
		off := int64(rank) * mb
		if n := f.WriteAt(p, rank, off, mb); n != mb {
			t.Errorf("rank %d wrote %d", rank, n)
		}
		tc.world.Barrier(p, rank)
		if n := f.ReadAt(p, rank, off, mb); n != mb {
			t.Errorf("rank %d read %d", rank, n)
		}
		f.Close(p, rank)
	})
	if tc.srv.Stats.BytesWritten != 4*mb {
		t.Fatalf("server wrote %d, want 4MB", tc.srv.Stats.BytesWritten)
	}
}

func TestCollectiveWriteAggregatesData(t *testing.T) {
	tc := newTestCluster(4, 8)
	f := OpenFile(tc.world, "/coll", fs.OWrite|fs.OCreate, tc.mounts, DefaultHints())
	if len(f.Aggregators()) != 4 {
		t.Fatalf("aggregators = %v, want one per node", f.Aggregators())
	}
	tc.runRanks(func(p *sim.Proc, rank int) {
		f.Open(p, rank)
		// Each rank contributes a 1 MB strided slice of an 8 MB region.
		off := int64(rank) * mb
		f.WriteAtAll(p, rank, off, mb)
		f.Close(p, rank)
	})
	// All 8 MB must have reached the server, written only by the
	// aggregator ranks in large chunks.
	if tc.srv.Stats.BytesWritten != 8*mb {
		t.Fatalf("server wrote %d, want 8MB", tc.srv.Stats.BytesWritten)
	}
	// 4 aggregators × 2 MB partitions in 16 MB buffers ⇒ exactly 4
	// write batches (one WriteVec per partition per round).
	if tc.srv.Stats.WriteRPCs > 4*8+4 {
		t.Fatalf("write RPCs = %d, want few large writes", tc.srv.Stats.WriteRPCs)
	}
}

func TestCollectiveReadBack(t *testing.T) {
	tc := newTestCluster(4, 8)
	f := OpenFile(tc.world, "/coll", fs.ORead|fs.OWrite|fs.OCreate, tc.mounts, DefaultHints())
	var got [8]int64
	tc.runRanks(func(p *sim.Proc, rank int) {
		f.Open(p, rank)
		f.WriteAtAll(p, rank, int64(rank)*mb, mb)
		tc.world.Barrier(p, rank)
		got[rank] = f.ReadAtAll(p, rank, int64(rank)*mb, mb)
		f.Close(p, rank)
	})
	for r, n := range got {
		if n != mb {
			t.Fatalf("rank %d collective read returned %d", r, n)
		}
	}
}

func TestCollectiveFasterThanTinyIndependents(t *testing.T) {
	// The paper's core contrast: the same region written as (a) a
	// collective with large aggregated chunks vs (b) independent tiny
	// strided records.
	const nRanks = 8
	region := int64(nRanks) * 4 * mb

	collTime := func() sim.Time {
		tc := newTestCluster(4, nRanks)
		f := OpenFile(tc.world, "/f", fs.OWrite|fs.OCreate, tc.mounts, DefaultHints())
		return tc.runRanks(func(p *sim.Proc, rank int) {
			f.Open(p, rank)
			f.WriteAtAll(p, rank, int64(rank)*region/nRanks, region/nRanks)
			f.Close(p, rank)
		})
	}()

	indepTime := func() sim.Time {
		tc := newTestCluster(4, nRanks)
		f := OpenFile(tc.world, "/f", fs.OWrite|fs.OCreate, tc.mounts, Hints{})
		return tc.runRanks(func(p *sim.Proc, rank int) {
			f.Open(p, rank)
			rec := int64(1600)
			var vecs []fs.IOVec
			base := int64(rank) * region / nRanks
			for o := int64(0); o+rec <= region/nRanks; o += rec {
				vecs = append(vecs, fs.IOVec{Off: base + o, Len: rec})
			}
			f.WriteVec(p, rank, vecs)
			f.Close(p, rank)
		})
	}()

	if indepTime < 3*collTime {
		t.Fatalf("independent tiny writes (%v) not ≫ collective (%v)",
			sim.Duration(indepTime), sim.Duration(collTime))
	}
}

func TestCollectiveBufferingOffDegradesToIndependent(t *testing.T) {
	tc := newTestCluster(2, 4)
	hints := Hints{CollectiveBuffering: false}
	f := OpenFile(tc.world, "/f", fs.OWrite|fs.OCreate, tc.mounts, hints)
	tc.runRanks(func(p *sim.Proc, rank int) {
		f.Open(p, rank)
		f.WriteVecAll(p, rank, []fs.IOVec{{Off: int64(rank) * mb, Len: mb}})
		f.Close(p, rank)
	})
	if tc.srv.Stats.BytesWritten != 4*mb {
		t.Fatalf("server wrote %d", tc.srv.Stats.BytesWritten)
	}
}

func TestTracerReceivesEvents(t *testing.T) {
	tc := newTestCluster(2, 4)
	var evs []Event
	tc.world.SetTracer(recorderFunc(func(ev Event) { evs = append(evs, ev) }))
	f := OpenFile(tc.world, "/f", fs.OWrite|fs.OCreate, tc.mounts, DefaultHints())
	tc.runRanks(func(p *sim.Proc, rank int) {
		f.Open(p, rank)
		tc.world.Compute(p, rank, sim.Millisecond)
		f.WriteAt(p, rank, int64(rank)*kb, kb)
		f.WriteAtAll(p, rank, int64(rank)*mb, mb)
		f.Close(p, rank)
	})
	var opens, writes, collWrites, computes int
	for _, ev := range evs {
		switch ev.Op {
		case OpOpen:
			opens++
		case OpWrite:
			writes++
		case OpWriteAll:
			collWrites++
		case OpCompute:
			computes++
		}
		if ev.T1 < ev.T0 {
			t.Fatalf("event with negative duration: %+v", ev)
		}
	}
	if opens != 4 || writes != 4 || collWrites != 4 || computes != 4 {
		t.Fatalf("event counts: opens=%d writes=%d coll=%d comp=%d",
			opens, writes, collWrites, computes)
	}
}

type recorderFunc func(Event)

func (f recorderFunc) Record(ev Event) { f(ev) }

func TestSendTracksBytes(t *testing.T) {
	tc := newTestCluster(2, 2)
	var evs []Event
	tc.world.SetTracer(recorderFunc(func(ev Event) { evs = append(evs, ev) }))
	tc.runRanks(func(p *sim.Proc, rank int) {
		if rank == 0 {
			tc.world.Send(p, 0, 1, 5*mb)
		}
	})
	if len(evs) != 1 || evs[0].Op != OpComm || evs[0].Bytes != 5*mb {
		t.Fatalf("events = %+v", evs)
	}
}

func TestUseBeforeOpenPanics(t *testing.T) {
	tc := newTestCluster(1, 1)
	f := OpenFile(tc.world, "/f", fs.OWrite|fs.OCreate, tc.mounts, Hints{})
	tc.eng.Spawn("r", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f.WriteAt(p, 0, 0, 1)
	})
	tc.eng.Run()
}

func TestCollectivePartitionCoversEverything(t *testing.T) {
	// Whatever the rank contribution pattern, the aggregator partitions
	// must cover exactly the union of contributions.
	tc := newTestCluster(4, 8)
	f := OpenFile(tc.world, "/f", fs.OWrite|fs.OCreate, tc.mounts, DefaultHints())
	c := &collOp{vecs: make([][]fs.IOVec, 8), write: true}
	for r := 0; r < 8; r++ {
		// Interleaved strided contributions with overlaps at edges.
		for k := int64(0); k < 5; k++ {
			c.vecs[r] = append(c.vecs[r], fs.IOVec{Off: k*800*kb + int64(r)*100*kb, Len: 100 * kb})
		}
	}
	c.computePlan(f)
	var partTotal int64
	for _, pt := range c.parts {
		partTotal += pt.size
	}
	if partTotal != c.totalBytes || c.totalBytes != 4000*kb {
		t.Fatalf("partition total %d vs union %d (want %d)", partTotal, c.totalBytes, 4000*kb)
	}
}

func BenchmarkCollectiveWrite(b *testing.B) {
	tc := newTestCluster(4, 8)
	f := OpenFile(tc.world, "/f", fs.OWrite|fs.OCreate, tc.mounts, DefaultHints())
	for r := 0; r < 8; r++ {
		r := r
		tc.eng.Spawn("rank", func(p *sim.Proc) {
			f.Open(p, r)
			for i := 0; i < b.N; i++ {
				f.WriteAtAll(p, r, int64(r)*mb, mb)
			}
			f.Close(p, r)
		})
	}
	b.ResetTimer()
	tc.eng.Run()
}
