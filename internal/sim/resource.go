package sim

import "fmt"

// Resource models a server with a fixed number of capacity units and a
// FIFO queue: the simulation analogue of a counting semaphore. Disks,
// network links, NFS server threads and similar contended components
// are modeled as Resources.
type Resource struct {
	eng      *Engine
	name     string
	capacity int64
	inUse    int64
	queue    []*claim

	// statistics
	busy      Duration // capacity-unit-weighted busy time
	lastStamp Time
	acquires  int64
	waited    Duration
}

type claim struct {
	n    int64
	wake func()
	t0   Time
}

// NewResource creates a resource with the given capacity (units are
// caller-defined: disk spindles, link slots, server threads, ...).
func NewResource(e *Engine, name string, capacity int64) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q with capacity %d", name, capacity))
	}
	return &Resource{eng: e, name: name, capacity: capacity}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the total capacity.
func (r *Resource) Capacity() int64 { return r.capacity }

// InUse returns the currently held units.
func (r *Resource) InUse() int64 { return r.inUse }

// QueueLen returns the number of claims waiting.
func (r *Resource) QueueLen() int { return len(r.queue) }

func (r *Resource) stamp() {
	now := r.eng.now
	r.busy += Duration(now-r.lastStamp) * Duration(r.inUse)
	r.lastStamp = now
}

// Acquire blocks p until n units are available and claims them. Claims
// are granted strictly FIFO; a large claim at the head blocks smaller
// ones behind it (no starvation).
func (r *Resource) Acquire(p *Proc, n int64) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: resource %q: acquire %d of %d", r.name, n, r.capacity))
	}
	r.acquires++
	if len(r.queue) == 0 && r.inUse+n <= r.capacity {
		r.stamp()
		r.inUse += n
		return
	}
	t0 := p.Now()
	r.queue = append(r.queue, &claim{n: n, wake: p.PrepareWait(), t0: t0})
	p.Wait()
	r.waited += Duration(p.Now() - t0)
}

// Release returns n units and grants queued claims in FIFO order.
// It may be called from any event or process context.
func (r *Resource) Release(n int64) {
	if n <= 0 || n > r.inUse {
		panic(fmt.Sprintf("sim: resource %q: release %d with %d in use", r.name, n, r.inUse))
	}
	r.stamp()
	r.inUse -= n
	for len(r.queue) > 0 {
		head := r.queue[0]
		if r.inUse+head.n > r.capacity {
			break
		}
		r.queue = r.queue[1:]
		r.stamp()
		r.inUse += head.n
		head.wake()
	}
}

// Use acquires n units, sleeps for hold, and releases: the common
// "occupy a server for a service time" pattern.
func (r *Resource) Use(p *Proc, n int64, hold Duration) {
	r.Acquire(p, n)
	p.Sleep(hold)
	r.Release(n)
}

// Utilization returns the average fraction of capacity in use between
// simulation start and the current time (0 if no time has passed).
func (r *Resource) Utilization() float64 {
	r.stamp()
	if r.eng.now == 0 {
		return 0
	}
	return float64(r.busy) / (float64(r.eng.now) * float64(r.capacity))
}

// TotalWait returns the cumulative time claims spent queued.
func (r *Resource) TotalWait() Duration { return r.waited }

// Acquires returns the number of Acquire calls made so far.
func (r *Resource) Acquires() int64 { return r.acquires }
