package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("end time = %d, want 30", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestScheduleAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on ScheduleAt in the past")
			}
		}()
		e.ScheduleAt(50, func() {})
	})
	e.Run()
}

func TestNestedSchedule(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(10, func() {
		fired = append(fired, e.Now())
		e.Schedule(15, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 25 {
		t.Fatalf("fired = %v, want [10 25]", fired)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var n int
	e.Schedule(10, func() { n++ })
	e.Schedule(20, func() { n++ })
	e.Schedule(30, func() { n++ })
	e.RunUntil(20)
	if n != 2 {
		t.Fatalf("events run = %d, want 2", n)
	}
	if e.Now() != 20 {
		t.Fatalf("now = %d, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.RunUntil(100)
	if n != 3 || e.Now() != 100 {
		t.Fatalf("after second RunUntil: n=%d now=%d", n, e.Now())
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(42)
		wake = p.Now()
	})
	e.Run()
	if wake != 42 {
		t.Fatalf("woke at %d, want 42", wake)
	}
}

func TestProcSequentialSleeps(t *testing.T) {
	e := NewEngine()
	var marks []Time
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(10)
			marks = append(marks, p.Now())
		}
	})
	e.Run()
	for i, m := range marks {
		if m != Time(10*(i+1)) {
			t.Fatalf("marks = %v", marks)
		}
	}
}

func TestProcInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(Duration(10 + i))
					log = append(log, fmt.Sprintf("%s@%d", p.Name(), p.Now()))
				}
			})
		}
		e.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 12 {
		t.Fatalf("lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "disk", 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		e.Spawn("user", func(p *Proc) {
			r.Use(p, 1, 100)
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	want := []Time{100, 200, 300}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceParallelCapacity(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "dual", 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		e.Spawn("user", func(p *Proc) {
			r.Use(p, 1, 100)
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	want := []Time{100, 100, 200, 200}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceFIFONoStarvation(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "r", 2)
	var order []string
	// big claim arrives second; small third. The big one must not be
	// starved by the small one slipping past it.
	e.Spawn("first", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(100)
		r.Release(1)
		order = append(order, "first")
	})
	e.SpawnAfter(1, "big", func(p *Proc) {
		r.Acquire(p, 2)
		p.Sleep(10)
		r.Release(2)
		order = append(order, "big")
	})
	e.SpawnAfter(2, "small", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(10)
		r.Release(1)
		order = append(order, "small")
	})
	e.Run()
	if order[0] != "first" || order[1] != "big" || order[2] != "small" {
		t.Fatalf("order = %v", order)
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "r", 1)
	e.Spawn("u", func(p *Proc) {
		r.Use(p, 1, 50)
		p.Sleep(50)
	})
	e.Run()
	if u := r.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %f, want 0.5", u)
	}
}

func TestCompletion(t *testing.T) {
	e := NewEngine()
	c := NewCompletion(e, 3)
	var doneAt Time
	e.Spawn("waiter", func(p *Proc) {
		c.WaitFor(p)
		doneAt = p.Now()
	})
	for i := 1; i <= 3; i++ {
		i := i
		e.Schedule(Duration(i*10), func() { c.Done() })
	}
	e.Run()
	if doneAt != 30 {
		t.Fatalf("completion at %d, want 30", doneAt)
	}
}

func TestCompletionAlreadyZero(t *testing.T) {
	e := NewEngine()
	c := NewCompletion(e, 0)
	ran := false
	e.Spawn("waiter", func(p *Proc) {
		c.WaitFor(p) // must not block
		ran = true
	})
	e.Run()
	if !ran {
		t.Fatal("waiter blocked on zero completion")
	}
}

func TestFork(t *testing.T) {
	e := NewEngine()
	var joined Time
	var childEnds []Time
	e.Spawn("parent", func(p *Proc) {
		Fork(p, "work",
			func(c *Proc) { c.Sleep(30); childEnds = append(childEnds, c.Now()) },
			func(c *Proc) { c.Sleep(50); childEnds = append(childEnds, c.Now()) },
			func(c *Proc) { c.Sleep(10); childEnds = append(childEnds, c.Now()) },
		)
		joined = p.Now()
	})
	e.Run()
	if joined != 50 {
		t.Fatalf("join at %d, want 50 (max of children)", joined)
	}
	sort.Slice(childEnds, func(i, j int) bool { return childEnds[i] < childEnds[j] })
	want := []Time{10, 30, 50}
	for i := range want {
		if childEnds[i] != want[i] {
			t.Fatalf("childEnds = %v", childEnds)
		}
	}
}

func TestForkEmpty(t *testing.T) {
	e := NewEngine()
	e.Spawn("parent", func(p *Proc) {
		Fork(p, "none") // must return immediately
		if p.Now() != 0 {
			t.Errorf("empty Fork advanced time to %d", p.Now())
		}
	})
	e.Run()
}

func TestDeadlockDetection(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e := NewEngine()
	r := NewResource(e, "r", 1)
	e.Spawn("a", func(p *Proc) {
		r.Acquire(p, 1)
		// never released; second proc blocks forever
	})
	e.Spawn("b", func(p *Proc) {
		r.Acquire(p, 1)
	})
	e.Run()
}

func TestDurationString(t *testing.T) {
	cases := map[Duration]string{
		5:               "5ns",
		5 * Microsecond: "5.000µs",
		5 * Millisecond: "5.000ms",
		5 * Second:      "5.000s",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(d), got, want)
		}
	}
}

func TestDurationFromSeconds(t *testing.T) {
	if d := DurationFromSeconds(1.5); d != 1500*Millisecond {
		t.Fatalf("DurationFromSeconds(1.5) = %d", d)
	}
	if d := DurationFromSeconds(0); d != 0 {
		t.Fatalf("DurationFromSeconds(0) = %d", d)
	}
}

// Property: for any set of non-negative delays, Run fires all events,
// ends at the max delay, and fires them in sorted order.
func TestQuickEventOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		for _, d := range raw {
			e.Schedule(Duration(d), func() { fired = append(fired, e.Now()) })
		}
		end := e.Run()
		if len(fired) != len(raw) {
			return false
		}
		sorted := make([]int, len(raw))
		for i, d := range raw {
			sorted[i] = int(d)
		}
		sort.Ints(sorted)
		for i := range fired {
			if fired[i] != Time(sorted[i]) {
				return false
			}
		}
		return end == Time(sorted[len(sorted)-1])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a capacity-1 resource used by n processes for hold h each
// finishes at exactly n*h, regardless of arrival order.
func TestQuickResourceThroughput(t *testing.T) {
	f := func(nRaw, hRaw uint8) bool {
		n := int(nRaw%8) + 1
		h := Duration(hRaw%100) + 1
		e := NewEngine()
		r := NewResource(e, "r", 1)
		rng := rand.New(rand.NewSource(int64(nRaw)*251 + int64(hRaw)))
		for i := 0; i < n; i++ {
			start := Duration(rng.Intn(5))
			e.SpawnAfter(start, "u", func(p *Proc) { r.Use(p, 1, h) })
		}
		end := e.Run()
		// All work is serialized; the last finisher ends no earlier than
		// n*h and no later than n*h + max start offset.
		return end >= Time(int64(n)*int64(h)) && end <= Time(int64(n)*int64(h)+5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEventDispatch(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.Schedule(Duration(i), func() {})
	}
	b.ResetTimer()
	e.Run()
}

func BenchmarkProcContextSwitch(b *testing.B) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	e.Run()
}
