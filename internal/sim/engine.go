// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock (integer nanoseconds) by executing
// events from a priority queue ordered by (time, insertion sequence).
// On top of the raw event calendar, the package offers a process model
// (Proc) in which each simulated activity runs in its own goroutine and
// synchronizes with the engine through a strict handshake, so execution
// is sequential and fully deterministic: at any instant exactly one
// goroutine — the engine or a single process — is running.
//
// All higher-level subsystems of this repository (disks, RAID, caches,
// networks, filesystems, the MPI-IO analogue) are built on this engine.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is an absolute simulated time in nanoseconds since the start of
// the simulation.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Seconds returns the time as a floating-point number of seconds since
// the simulation began.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(Microsecond))
	}
	return fmt.Sprintf("%dns", int64(d))
}

// DurationFromSeconds converts seconds to a simulated Duration,
// rounding to the nearest nanosecond.
func DurationFromSeconds(s float64) Duration {
	return Duration(s*float64(Second) + 0.5)
}

type event struct {
	t   Time
	seq uint64 // tie-breaker: FIFO among same-time events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	running bool
	procs   int // live (spawned, unfinished) processes, for diagnostics
}

// NewEngine returns an engine with the clock at zero and an empty
// event calendar.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.events)
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Schedule arranges for fn to run at now+delay. A negative delay
// panics: the simulation cannot travel backwards.
func (e *Engine) Schedule(delay Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	e.seq++
	heap.Push(&e.events, &event{t: e.now + Time(delay), seq: e.seq, fn: fn})
}

// ScheduleAt arranges for fn to run at absolute time t, which must not
// be in the past.
func (e *Engine) ScheduleAt(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: ScheduleAt %d in the past (now %d)", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{t: t, seq: e.seq, fn: fn})
}

// Run executes events until the calendar is empty, returning the final
// simulated time. If any spawned process is still blocked when the
// calendar drains (a deadlock in the modeled system), Run panics,
// because silently dropping stuck work would corrupt every measurement
// taken from the simulation.
func (e *Engine) Run() Time {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.t
		ev.fn()
	}
	if e.procs > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) still blocked with no pending events", e.procs))
	}
	return e.now
}

// RunUntil executes events with time ≤ limit and then stops, leaving
// later events on the calendar. The clock is advanced to limit even if
// no event lands exactly there.
func (e *Engine) RunUntil(limit Time) Time {
	if e.running {
		panic("sim: RunUntil called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.events.Len() > 0 && e.events[0].t <= limit {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.t
		ev.fn()
	}
	if e.now < limit {
		e.now = limit
	}
	return e.now
}

// Pending reports the number of events waiting on the calendar.
func (e *Engine) Pending() int { return e.events.Len() }
