package sim

import "fmt"

// Proc is a simulated process: a goroutine that advances only when the
// engine wakes it, and that returns control to the engine whenever it
// blocks on simulated time or on a resource. Exactly one of {engine,
// some process} runs at any moment, so simulations are deterministic
// regardless of GOMAXPROCS.
type Proc struct {
	eng      *Engine
	name     string
	resume   chan struct{} // engine -> process: continue
	yield    chan struct{} // process -> engine: parked or finished
	finished bool
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the diagnostic name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Spawn creates a process that will begin executing fn at the current
// simulated time (after already-scheduled same-time events). fn runs in
// its own goroutine under the engine's handshake protocol.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	return e.SpawnAfter(0, name, fn)
}

// SpawnAfter is Spawn with a start delay.
func (e *Engine) SpawnAfter(delay Duration, name string, fn func(*Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	e.procs++
	e.Schedule(delay, func() {
		go func() {
			<-p.resume
			fn(p)
			p.finished = true
			p.eng.procs--
			p.yield <- struct{}{}
		}()
		p.wakeNow()
	})
	return p
}

// wakeNow transfers control to the process and blocks the caller
// (engine/event context) until the process parks or finishes.
func (p *Proc) wakeNow() {
	p.resume <- struct{}{}
	<-p.yield
}

// park returns control to the engine and blocks until woken. Must be
// called from the process goroutine.
func (p *Proc) park() {
	p.yield <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for d of simulated time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Proc %q sleeping negative duration %d", p.name, d))
	}
	if d == 0 {
		return
	}
	p.eng.Schedule(d, p.wakeNow)
	p.park()
}

// WaitEvent suspends the process until wake is invoked by some event.
// It returns a wake function that may be called exactly once, from
// engine/event context (e.g. another process's Release, or a scheduled
// callback).
//
// Typical use:
//
//	wake := p.PrepareWait()
//	registerSomewhere(wake)
//	p.Wait()
//
// PrepareWait/Wait are split so the wake function can be registered
// before the process parks without racing: registration happens in the
// process's own execution slot, and the wake cannot fire until the
// process has parked, because nothing else runs concurrently.
func (p *Proc) PrepareWait() (wake func()) {
	return p.wakeNow
}

// Wait parks the process until the function returned by PrepareWait is
// called.
func (p *Proc) Wait() { p.park() }

// Completion is a join counter: processes can wait until Done has been
// called n times. It is the simulation analogue of sync.WaitGroup.
type Completion struct {
	eng     *Engine
	pending int
	waiters []func()
}

// NewCompletion returns a Completion that completes after n calls to
// Done.
func NewCompletion(e *Engine, n int) *Completion {
	if n < 0 {
		panic("sim: NewCompletion with negative count")
	}
	return &Completion{eng: e, pending: n}
}

// Add increases the pending count by n.
func (c *Completion) Add(n int) { c.pending += n }

// Done decrements the pending count; when it reaches zero all waiting
// processes are woken in FIFO order.
func (c *Completion) Done() {
	c.pending--
	if c.pending < 0 {
		panic("sim: Completion.Done below zero")
	}
	if c.pending == 0 {
		ws := c.waiters
		c.waiters = nil
		for _, w := range ws {
			w()
		}
	}
}

// WaitFor parks p until the completion count reaches zero. If it is
// already zero, WaitFor returns immediately.
func (c *Completion) WaitFor(p *Proc) {
	if c.pending == 0 {
		return
	}
	c.waiters = append(c.waiters, p.PrepareWait())
	p.Wait()
}

// Fork runs each fn as a child process at the current simulated time
// and parks p until all of them finish. It is the fundamental
// fan-out/fan-in primitive used to model parallel sub-operations
// (e.g. a RAID stripe write touching several member disks at once).
func Fork(p *Proc, name string, fns ...func(*Proc)) {
	if len(fns) == 0 {
		return
	}
	c := NewCompletion(p.eng, len(fns))
	for i, fn := range fns {
		fn := fn
		p.eng.Spawn(fmt.Sprintf("%s/%s[%d]", p.name, name, i), func(child *Proc) {
			fn(child)
			c.Done()
		})
	}
	c.WaitFor(p)
}
