package fs

import (
	"errors"
	"testing"
	"testing/quick"

	"ioeval/internal/cache"
	"ioeval/internal/device"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
)

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
	gb = int64(1) << 30
)

// newMount builds disk -> cache -> fs, the standard local stack.
func newMount(e *sim.Engine, cacheBytes int64) (*Mount, *device.Disk) {
	d := device.NewDisk(e, device.DefaultSATA("d", 150*gb, 100e6))
	c := cache.New(e, cache.DefaultParams("pc", cacheBytes), d)
	return NewMount(e, DefaultMountParams("ext4"), c), d
}

// newRawMount builds fs directly over the disk (no cache), for tests
// that need deterministic device traffic.
func newRawMount(e *sim.Engine) (*Mount, *device.Disk) {
	d := device.NewDisk(e, device.DefaultSATA("d", 150*gb, 100e6))
	return NewMount(e, DefaultMountParams("ext4"), d), d
}

func run(t *testing.T, e *sim.Engine, fn func(*sim.Proc)) {
	t.Helper()
	e.Spawn("t", func(p *sim.Proc) { fn(p) })
	e.Run()
}

func TestCreateWriteReadBack(t *testing.T) {
	e := sim.NewEngine()
	m, _ := newMount(e, 256*mb)
	run(t, e, func(p *sim.Proc) {
		h, err := m.Open(ioreq.Meta(p), "/data/file", OWrite|OCreate)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if n := h.WriteAt(ioreq.Writer(p), 0, 4*mb); n != 4*mb {
			t.Fatalf("wrote %d", n)
		}
		if h.Size() != 4*mb {
			t.Fatalf("size = %d", h.Size())
		}
		if n := h.ReadAt(ioreq.Reader(p), 0, 4*mb); n != 4*mb {
			t.Fatalf("read %d", n)
		}
		h.Close(ioreq.Meta(p))
	})
}

func TestOpenMissingWithoutCreate(t *testing.T) {
	e := sim.NewEngine()
	m, _ := newMount(e, 64*mb)
	run(t, e, func(p *sim.Proc) {
		_, err := m.Open(ioreq.Meta(p), "/nope", ORead)
		if !errors.Is(err, ErrNotExist) {
			t.Fatalf("err = %v, want ErrNotExist", err)
		}
	})
}

func TestReadShortAtEOF(t *testing.T) {
	e := sim.NewEngine()
	m, _ := newMount(e, 64*mb)
	run(t, e, func(p *sim.Proc) {
		h, _ := m.Open(ioreq.Meta(p), "/f", OWrite|OCreate)
		h.WriteAt(ioreq.Writer(p), 0, 100*kb)
		if n := h.ReadAt(ioreq.Reader(p), 50*kb, 100*kb); n != 50*kb {
			t.Fatalf("short read = %d, want %d", n, 50*kb)
		}
		if n := h.ReadAt(ioreq.Reader(p), 200*kb, kb); n != 0 {
			t.Fatalf("read past EOF = %d, want 0", n)
		}
	})
}

func TestTruncateOnOpen(t *testing.T) {
	e := sim.NewEngine()
	m, _ := newMount(e, 64*mb)
	run(t, e, func(p *sim.Proc) {
		h, _ := m.Open(ioreq.Meta(p), "/f", OWrite|OCreate)
		h.WriteAt(ioreq.Writer(p), 0, mb)
		h.Close(ioreq.Meta(p))
		h2, _ := m.Open(ioreq.Meta(p), "/f", OWrite|OTrunc)
		if h2.Size() != 0 {
			t.Fatalf("size after O_TRUNC = %d", h2.Size())
		}
		h2.Close(ioreq.Meta(p))
	})
}

func TestRemove(t *testing.T) {
	e := sim.NewEngine()
	m, _ := newMount(e, 64*mb)
	run(t, e, func(p *sim.Proc) {
		h, _ := m.Open(ioreq.Meta(p), "/f", OWrite|OCreate)
		h.WriteAt(ioreq.Writer(p), 0, mb)
		h.Close(ioreq.Meta(p))
		if err := m.Remove(ioreq.Meta(p), "/f"); err != nil {
			t.Fatalf("remove: %v", err)
		}
		if _, err := m.Stat(ioreq.Meta(p), "/f"); !errors.Is(err, ErrNotExist) {
			t.Fatalf("stat after remove: %v", err)
		}
		if err := m.Remove(ioreq.Meta(p), "/f"); !errors.Is(err, ErrNotExist) {
			t.Fatalf("double remove: %v", err)
		}
	})
}

func TestSpaceReuseAfterRemove(t *testing.T) {
	e := sim.NewEngine()
	m, _ := newRawMount(e)
	run(t, e, func(p *sim.Proc) {
		h, _ := m.Open(ioreq.Meta(p), "/a", OWrite|OCreate)
		h.WriteAt(ioreq.Writer(p), 0, gb)
		h.Close(ioreq.Meta(p))
		used := m.nextFree
		m.Remove(ioreq.Meta(p), "/a")
		h2, _ := m.Open(ioreq.Meta(p), "/b", OWrite|OCreate)
		h2.WriteAt(ioreq.Writer(p), 0, gb)
		h2.Close(ioreq.Meta(p))
		if m.nextFree != used {
			t.Fatalf("freed space not reused: nextFree %d -> %d", used, m.nextFree)
		}
	})
}

func TestStat(t *testing.T) {
	e := sim.NewEngine()
	m, _ := newMount(e, 64*mb)
	run(t, e, func(p *sim.Proc) {
		h, _ := m.Open(ioreq.Meta(p), "/f", OWrite|OCreate)
		h.WriteAt(ioreq.Writer(p), 0, 123*kb)
		h.Close(ioreq.Meta(p))
		fi, err := m.Stat(ioreq.Meta(p), "/f")
		if err != nil || fi.Size != 123*kb {
			t.Fatalf("stat = %+v, %v", fi, err)
		}
	})
}

func TestStreamingWriteIsSequentialOnDisk(t *testing.T) {
	e := sim.NewEngine()
	m, d := newRawMount(e)
	run(t, e, func(p *sim.Proc) {
		h, _ := m.Open(ioreq.Meta(p), "/f", OWrite|OCreate)
		for off := int64(0); off < 64*mb; off += 4 * mb {
			h.WriteAt(ioreq.Writer(p), off, 4*mb)
		}
		h.Close(ioreq.Meta(p))
	})
	// The bump allocator must produce contiguous extents: all but the
	// first device write continue a sequential run.
	if d.Stats.SeqHits < d.Stats.Writes-1 {
		t.Fatalf("writes not sequential: seq=%d of %d", d.Stats.SeqHits, d.Stats.Writes)
	}
}

func TestWriteReadViaCacheFasterThanDisk(t *testing.T) {
	e := sim.NewEngine()
	m, _ := newMount(e, 256*mb)
	var tFirst, tSecond sim.Duration
	run(t, e, func(p *sim.Proc) {
		h, _ := m.Open(ioreq.Meta(p), "/f", OWrite|OCreate)
		h.WriteAt(ioreq.Writer(p), 0, 32*mb)
		t0 := p.Now()
		h.ReadAt(ioreq.Reader(p), 0, 32*mb)
		tFirst = sim.Duration(p.Now() - t0)
		t0 = p.Now()
		h.ReadAt(ioreq.Reader(p), 0, 32*mb)
		tSecond = sim.Duration(p.Now() - t0)
		h.Close(ioreq.Meta(p))
	})
	// Freshly written data is in the page cache: both reads are hits
	// and cost about the same (memory speed).
	if tFirst > 2*tSecond {
		t.Fatalf("first read %v, second %v: cache not effective", tFirst, tSecond)
	}
}

func TestVecMatchesLoopTotals(t *testing.T) {
	e := sim.NewEngine()
	m, _ := newMount(e, 256*mb)
	run(t, e, func(p *sim.Proc) {
		h, _ := m.Open(ioreq.Meta(p), "/f", OWrite|OCreate)
		var vecs []IOVec
		for i := int64(0); i < 100; i++ {
			vecs = append(vecs, IOVec{Off: i * 10 * kb, Len: 2 * kb}) // strided
		}
		if n := h.WriteVec(ioreq.Writer(p), vecs); n != 200*kb {
			t.Fatalf("WriteVec total = %d, want %d", n, 200*kb)
		}
		if h.Size() != 99*10*kb+2*kb {
			t.Fatalf("size = %d", h.Size())
		}
		if n := h.ReadVec(ioreq.Reader(p), vecs); n != 200*kb {
			t.Fatalf("ReadVec total = %d, want %d", n, 200*kb)
		}
		h.Close(ioreq.Meta(p))
	})
	if m.Stats.WriteCalls != 100 || m.Stats.ReadCalls != 100 {
		t.Fatalf("per-op accounting: %+v", m.Stats)
	}
}

func TestVecChargesPerOpCost(t *testing.T) {
	e := sim.NewEngine()
	m, _ := newMount(e, 256*mb)
	var tVec sim.Duration
	run(t, e, func(p *sim.Proc) {
		h, _ := m.Open(ioreq.Meta(p), "/f", OWrite|OCreate)
		h.WriteAt(ioreq.Writer(p), 0, 16*mb)
		h.Sync(ioreq.Meta(p))
		var vecs []IOVec
		for i := int64(0); i < 1000; i++ {
			vecs = append(vecs, IOVec{Off: i * 16 * kb, Len: kb})
		}
		t0 := p.Now()
		h.ReadVec(ioreq.Reader(p), vecs)
		tVec = sim.Duration(p.Now() - t0)
		h.Close(ioreq.Meta(p))
	})
	// 1000 ops × 2µs syscall ⇒ at least 2 ms regardless of caching.
	if tVec < 2*sim.Millisecond {
		t.Fatalf("vectored read %v, want ≥2ms of per-op cost", tVec)
	}
}

func TestOutOfSpacePanics(t *testing.T) {
	e := sim.NewEngine()
	d := device.NewDisk(e, device.DefaultSATA("tiny", 10*mb, 100e6))
	m := NewMount(e, DefaultMountParams("ext4"), d)
	run(t, e, func(p *sim.Proc) {
		h, _ := m.Open(ioreq.Meta(p), "/f", OWrite|OCreate)
		defer func() {
			if recover() == nil {
				t.Error("expected out-of-space panic")
			}
		}()
		h.WriteAt(ioreq.Writer(p), 0, 20*mb)
	})
}

func TestUseAfterClosePanics(t *testing.T) {
	e := sim.NewEngine()
	m, _ := newMount(e, 64*mb)
	run(t, e, func(p *sim.Proc) {
		h, _ := m.Open(ioreq.Meta(p), "/f", OWrite|OCreate)
		h.Close(ioreq.Meta(p))
		defer func() {
			if recover() == nil {
				t.Error("expected use-after-close panic")
			}
		}()
		h.ReadAt(ioreq.Reader(p), 0, 1)
	})
}

func TestSyncFlushesToDevice(t *testing.T) {
	e := sim.NewEngine()
	m, d := newMount(e, 256*mb)
	run(t, e, func(p *sim.Proc) {
		h, _ := m.Open(ioreq.Meta(p), "/f", OWrite|OCreate)
		h.WriteAt(ioreq.Writer(p), 0, 8*mb)
		if d.Stats.BytesWritten != 0 {
			t.Fatalf("device written %d before sync", d.Stats.BytesWritten)
		}
		h.Sync(ioreq.Meta(p))
		if d.Stats.BytesWritten < 8*mb {
			t.Fatalf("device written %d after sync, want ≥8MB", d.Stats.BytesWritten)
		}
		h.Close(ioreq.Meta(p))
	})
}

// Property: after writing arbitrary (offset, length) pairs, the file
// size equals the maximum end, and reading the whole file back
// returns exactly that many bytes.
func TestQuickSizeInvariant(t *testing.T) {
	f := func(pairs []uint16) bool {
		if len(pairs) == 0 {
			return true
		}
		e := sim.NewEngine()
		m, _ := newMount(e, 64*mb)
		ok := true
		e.Spawn("t", func(p *sim.Proc) {
			h, _ := m.Open(ioreq.Meta(p), "/f", OWrite|OCreate)
			var maxEnd int64
			for i, v := range pairs {
				off := int64(v) * 64
				n := int64(i%7+1) * 100
				h.WriteAt(ioreq.Writer(p), off, n)
				if off+n > maxEnd {
					maxEnd = off + n
				}
			}
			if h.Size() != maxEnd {
				ok = false
			}
			if got := h.ReadAt(ioreq.Reader(p), 0, maxEnd+999); got != maxEnd {
				ok = false
			}
			h.Close(ioreq.Meta(p))
		})
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: extents of a file never overlap each other physically.
func TestQuickExtentsDisjoint(t *testing.T) {
	f := func(sizes []uint16) bool {
		e := sim.NewEngine()
		m, _ := newRawMount(e)
		ok := true
		e.Spawn("t", func(p *sim.Proc) {
			var hs []Handle
			for i, s := range sizes {
				if i >= 8 {
					break
				}
				h, _ := m.Open(ioreq.Meta(p), string(rune('a'+i)), OWrite|OCreate)
				h.WriteAt(ioreq.Writer(p), 0, int64(s)+1)
				hs = append(hs, h)
			}
			type iv struct{ off, end int64 }
			var all []iv
			for _, f := range m.files {
				for _, e := range f.extents {
					all = append(all, iv{e.physOff, e.physOff + e.length})
				}
			}
			for i := range all {
				for j := i + 1; j < len(all); j++ {
					a, b := all[i], all[j]
					if a.off < b.end && b.off < a.end {
						ok = false
					}
				}
			}
			for _, h := range hs {
				h.Close(ioreq.Meta(p))
			}
		})
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFSWrite(b *testing.B) {
	e := sim.NewEngine()
	m, _ := newMount(e, 256*mb)
	e.Spawn("w", func(p *sim.Proc) {
		h, _ := m.Open(ioreq.Meta(p), "/f", OWrite|OCreate)
		for i := 0; i < b.N; i++ {
			h.WriteAt(ioreq.Writer(p), int64(i%1024)*64*kb, 64*kb)
		}
		h.Close(ioreq.Meta(p))
	})
	b.ResetTimer()
	e.Run()
}
