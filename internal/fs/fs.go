// Package fs models a local filesystem (ext4-like) mounted over a
// block device stack, and defines Interface — the filesystem contract
// consumed by the I/O library (mpiio), the benchmark drivers and the
// NFS layer. A Mount performs extent allocation, charges metadata and
// syscall costs, and forwards data traffic to the device below it
// (normally a cache.Cache over a raid.Array or device.Disk).
package fs

import (
	"errors"
	"fmt"
	"sort"

	"ioeval/internal/device"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
	"ioeval/internal/telemetry"
)

// Open flags.
const (
	ORead   = 1 << iota // open for reading
	OWrite              // open for writing
	OCreate             // create if absent
	OTrunc              // truncate to zero length
)

// ErrNotExist is returned when opening a non-existent file without
// OCreate, or stating/removing a missing path.
var ErrNotExist = errors.New("fs: file does not exist")

// IOVec describes one operation of a vectored request. It is an alias
// of ioreq.Vec, so vectors pass between the library, filesystem and
// device layers without conversion.
type IOVec = ioreq.Vec

// FileInfo is the result of Stat.
type FileInfo struct {
	Path string
	Size int64
}

// Handle is an open file.
type Handle interface {
	// ReadAt reads n bytes at off, returning the bytes actually read
	// (short at EOF).
	ReadAt(r *ioreq.Request, off, n int64) int64
	// WriteAt writes n bytes at off, extending the file as needed.
	WriteAt(r *ioreq.Request, off, n int64) int64
	// ReadVec and WriteVec perform many operations in one call,
	// charging per-operation costs for each element. They exist so
	// workloads with millions of small strided accesses (NAS BT-IO
	// "simple") can be simulated without one simulation event per call.
	ReadVec(r *ioreq.Request, vecs []IOVec) int64
	WriteVec(r *ioreq.Request, vecs []IOVec) int64
	// Size returns the current file size.
	Size() int64
	// Sync flushes the file's dirty data to stable storage.
	Sync(r *ioreq.Request)
	// Close releases the handle (and for NFS flushes, per
	// close-to-open semantics).
	Close(r *ioreq.Request)
	// Path returns the file's path.
	Path() string
}

// Interface is a mounted filesystem as seen by applications: the local
// Mount and the NFS client both implement it.
type Interface interface {
	Open(r *ioreq.Request, path string, flags int) (Handle, error)
	Remove(r *ioreq.Request, path string) error
	Stat(r *ioreq.Request, path string) (FileInfo, error)
	// Sync flushes all dirty data on this filesystem.
	Sync(r *ioreq.Request)
	Name() string
}

// MountParams configures a local filesystem.
type MountParams struct {
	Name      string
	BlockSize int64 // allocation unit, power of two (ext4: 4 KiB)

	// MetaOpCost is charged per metadata operation (open, create,
	// stat, remove, close), covering directory lookup and journal
	// commit amortization.
	MetaOpCost sim.Duration

	// SyscallCost is charged per read/write call (VFS entry, argument
	// checking, page lookup setup). It bounds small-block throughput.
	SyscallCost sim.Duration
}

// DefaultMountParams returns ext4-like parameters.
func DefaultMountParams(name string) MountParams {
	return MountParams{
		Name:        name,
		BlockSize:   4 << 10,
		MetaOpCost:  100 * sim.Microsecond,
		SyscallCost: 2 * sim.Microsecond,
	}
}

type extent struct {
	logOff, physOff, length int64
}

type fileData struct {
	path    string
	size    int64
	extents []extent // sorted by logOff
	opens   int
}

// Stats counts filesystem operations.
type Stats struct {
	Opens, Creates, Removes, Stats, Closes int64
	ReadCalls, WriteCalls                  int64
	BytesRead, BytesWritten                int64
}

// Mount is a local filesystem on a block device.
type Mount struct {
	eng    *sim.Engine
	params MountParams
	dev    device.BlockDev

	files    map[string]*fileData
	nextFree int64
	freeList []extent // physOff/length used; logOff ignored

	// Stats accumulates operation counters.
	Stats Stats

	rec *telemetry.Recorder
}

var _ Interface = (*Mount)(nil)

// NewMount formats a filesystem over dev.
func NewMount(e *sim.Engine, params MountParams, dev device.BlockDev) *Mount {
	if params.BlockSize <= 0 || params.BlockSize&(params.BlockSize-1) != 0 {
		panic(fmt.Sprintf("fs %q: block size %d not a power of two", params.Name, params.BlockSize))
	}
	return &Mount{
		eng:    e,
		params: params,
		dev:    dev,
		files:  map[string]*fileData{},
		rec:    telemetry.NewRecorder(e, "fs:"+params.Name, telemetry.LevelLocalFS, 1),
	}
}

// Telemetry returns the mount's telemetry probe.
func (m *Mount) Telemetry() *telemetry.Recorder { return m.rec }

// Name implements Interface.
func (m *Mount) Name() string { return m.params.Name }

// Device returns the underlying block device stack.
func (m *Mount) Device() device.BlockDev { return m.dev }

// Params returns the mount configuration.
func (m *Mount) Params() MountParams { return m.params }

// span opens the mount's local-fs span on r.
func (m *Mount) span(r *ioreq.Request) {
	r.Push(telemetry.LevelLocalFS, "fs:"+m.params.Name)
}

// allocate returns a physical extent of exactly n bytes (block
// aligned), preferring the free list (first fit) then the bump
// allocator.
func (m *Mount) allocate(n int64) extent {
	bs := m.params.BlockSize
	n = (n + bs - 1) / bs * bs
	for i, fe := range m.freeList {
		if fe.length >= n {
			out := extent{physOff: fe.physOff, length: n}
			if fe.length == n {
				m.freeList = append(m.freeList[:i], m.freeList[i+1:]...)
			} else {
				m.freeList[i].physOff += n
				m.freeList[i].length -= n
			}
			return out
		}
	}
	if m.nextFree+n > m.dev.Capacity() {
		panic(fmt.Sprintf("fs %q: out of space (want %d, free %d)",
			m.params.Name, n, m.dev.Capacity()-m.nextFree))
	}
	out := extent{physOff: m.nextFree, length: n}
	m.nextFree += n
	return out
}

// Open implements Interface.
func (m *Mount) Open(r *ioreq.Request, path string, flags int) (Handle, error) {
	m.span(r)
	defer r.Pop()
	p := r.Proc()
	start := p.Now()
	defer func() { m.rec.Observe(telemetry.ClassMeta, 1, 0, sim.Duration(p.Now()-start)) }()
	p.Sleep(m.params.MetaOpCost)
	f, ok := m.files[path]
	if !ok {
		if flags&OCreate == 0 {
			return nil, fmt.Errorf("open %q: %w", path, ErrNotExist)
		}
		m.Stats.Creates++
		p.Sleep(m.params.MetaOpCost) // inode allocation + journal
		f = &fileData{path: path}
		m.files[path] = f
	} else if flags&OTrunc != 0 {
		m.truncate(f)
	}
	m.Stats.Opens++
	f.opens++
	return &localHandle{m: m, f: f}, nil
}

func (m *Mount) truncate(f *fileData) {
	for _, e := range f.extents {
		m.freeList = append(m.freeList, extent{physOff: e.physOff, length: e.length})
	}
	f.extents = nil
	f.size = 0
}

// Remove implements Interface.
func (m *Mount) Remove(r *ioreq.Request, path string) error {
	m.span(r)
	defer r.Pop()
	m.rec.Observe(telemetry.ClassMeta, 1, 0, m.params.MetaOpCost)
	r.Proc().Sleep(m.params.MetaOpCost)
	f, ok := m.files[path]
	if !ok {
		return fmt.Errorf("remove %q: %w", path, ErrNotExist)
	}
	m.truncate(f)
	delete(m.files, path)
	m.Stats.Removes++
	return nil
}

// Stat implements Interface.
func (m *Mount) Stat(r *ioreq.Request, path string) (FileInfo, error) {
	m.span(r)
	defer r.Pop()
	m.rec.Observe(telemetry.ClassMeta, 1, 0, m.params.MetaOpCost)
	r.Proc().Sleep(m.params.MetaOpCost)
	m.Stats.Stats++
	f, ok := m.files[path]
	if !ok {
		return FileInfo{}, fmt.Errorf("stat %q: %w", path, ErrNotExist)
	}
	return FileInfo{Path: path, Size: f.size}, nil
}

// Sync implements Interface: flush the whole device stack (page cache
// write-back plus device cache).
func (m *Mount) Sync(r *ioreq.Request) {
	m.span(r)
	defer r.Pop()
	m.dev.Flush(r)
}

// ensureAllocated grows f's extents to cover [0, size).
func (m *Mount) ensureAllocated(f *fileData, size int64) {
	allocated := int64(0)
	if n := len(f.extents); n > 0 {
		last := f.extents[n-1]
		allocated = last.logOff + last.length
	}
	if size <= allocated {
		return
	}
	e := m.allocate(size - allocated)
	e.logOff = allocated
	// Merge with previous extent if physically adjacent (the common
	// streaming-append case under the bump allocator).
	if n := len(f.extents); n > 0 {
		last := &f.extents[n-1]
		if last.physOff+last.length == e.physOff {
			last.length += e.length
			return
		}
	}
	f.extents = append(f.extents, e)
}

// mapRange converts a logical range into physical extents.
func (f *fileData) mapRange(off, n int64) []ioreq.Vec {
	var out []ioreq.Vec
	i := sort.Search(len(f.extents), func(i int) bool {
		e := f.extents[i]
		return e.logOff+e.length > off
	})
	for ; i < len(f.extents) && n > 0; i++ {
		e := f.extents[i]
		if off < e.logOff {
			panic(fmt.Sprintf("fs: hole in file %q at %d", f.path, off))
		}
		within := off - e.logOff
		take := e.length - within
		if take > n {
			take = n
		}
		out = append(out, ioreq.Vec{Off: e.physOff + within, Len: take})
		off += take
		n -= take
	}
	if n > 0 {
		panic(fmt.Sprintf("fs: range beyond allocation in %q (short %d)", f.path, n))
	}
	return out
}

type localHandle struct {
	m      *Mount
	f      *fileData
	closed bool
}

func (h *localHandle) Path() string { return h.f.path }
func (h *localHandle) Size() int64  { return h.f.size }

func (h *localHandle) check() {
	if h.closed {
		panic(fmt.Sprintf("fs: use of closed handle %q", h.f.path))
	}
}

func (h *localHandle) ReadAt(r *ioreq.Request, off, n int64) int64 {
	h.check()
	h.m.span(r)
	defer r.Pop()
	p := r.Proc()
	h.m.rec.Enter()
	defer h.m.rec.Exit()
	start := p.Now()
	p.Sleep(h.m.params.SyscallCost)
	h.m.Stats.ReadCalls++
	if off >= h.f.size {
		h.m.rec.Observe(telemetry.ClassRead, 1, 0, sim.Duration(p.Now()-start))
		return 0
	}
	if off+n > h.f.size {
		n = h.f.size - off
	}
	for _, piece := range h.f.mapRange(off, n) {
		h.m.dev.ReadAt(r, piece.Off, piece.Len)
	}
	h.m.Stats.BytesRead += n
	h.m.rec.Observe(telemetry.ClassRead, 1, n, sim.Duration(p.Now()-start))
	return n
}

func (h *localHandle) WriteAt(r *ioreq.Request, off, n int64) int64 {
	h.check()
	h.m.span(r)
	defer r.Pop()
	p := r.Proc()
	h.m.rec.Enter()
	defer h.m.rec.Exit()
	start := p.Now()
	p.Sleep(h.m.params.SyscallCost)
	h.m.Stats.WriteCalls++
	if n == 0 {
		h.m.rec.Observe(telemetry.ClassWrite, 1, 0, sim.Duration(p.Now()-start))
		return 0
	}
	h.m.ensureAllocated(h.f, off+n)
	for _, piece := range h.f.mapRange(off, n) {
		h.m.dev.WriteAt(r, piece.Off, piece.Len)
	}
	if off+n > h.f.size {
		h.f.size = off + n
	}
	h.m.Stats.BytesWritten += n
	h.m.rec.Observe(telemetry.ClassWrite, 1, n, sim.Duration(p.Now()-start))
	return n
}

// ReadVec services many reads in one call: per-operation syscall cost
// is charged in a single sleep and the data traffic goes to the device
// as one vectored request, so simulating millions of small strided
// operations stays tractable.
func (h *localHandle) ReadVec(r *ioreq.Request, vecs []IOVec) int64 {
	h.check()
	if len(vecs) == 0 {
		return 0
	}
	h.m.span(r)
	defer r.Pop()
	p := r.Proc()
	h.m.rec.Enter()
	defer h.m.rec.Exit()
	start := p.Now()
	p.Sleep(h.m.params.SyscallCost * sim.Duration(len(vecs)))
	h.m.Stats.ReadCalls += int64(len(vecs))
	var runs []device.Run
	var total int64
	for _, v := range vecs {
		off, n := v.Off, v.Len
		if off >= h.f.size {
			continue
		}
		if off+n > h.f.size {
			n = h.f.size - off
		}
		runs = append(runs, h.f.mapRange(off, n)...)
		total += n
	}
	device.ReadRuns(r, h.m.dev, runs)
	h.m.Stats.BytesRead += total
	h.m.rec.Observe(telemetry.ClassRead, int64(len(vecs)), total, sim.Duration(p.Now()-start))
	return total
}

// WriteVec is the vectored counterpart of WriteAt; see ReadVec.
func (h *localHandle) WriteVec(r *ioreq.Request, vecs []IOVec) int64 {
	h.check()
	if len(vecs) == 0 {
		return 0
	}
	h.m.span(r)
	defer r.Pop()
	p := r.Proc()
	h.m.rec.Enter()
	defer h.m.rec.Exit()
	start := p.Now()
	p.Sleep(h.m.params.SyscallCost * sim.Duration(len(vecs)))
	h.m.Stats.WriteCalls += int64(len(vecs))
	maxEnd := h.f.size
	for _, v := range vecs {
		if end := v.Off + v.Len; end > maxEnd {
			maxEnd = end
		}
	}
	h.m.ensureAllocated(h.f, maxEnd)
	var runs []device.Run
	var total int64
	for _, v := range vecs {
		if v.Len == 0 {
			continue
		}
		runs = append(runs, h.f.mapRange(v.Off, v.Len)...)
		total += v.Len
	}
	device.WriteRuns(r, h.m.dev, runs)
	// Monotonic update: a concurrent WriteVec extending the file
	// further may have completed while this one slept in the device.
	if maxEnd > h.f.size {
		h.f.size = maxEnd
	}
	h.m.Stats.BytesWritten += total
	h.m.rec.Observe(telemetry.ClassWrite, int64(len(vecs)), total, sim.Duration(p.Now()-start))
	return total
}

func (h *localHandle) Sync(r *ioreq.Request) {
	h.check()
	h.m.span(r)
	defer r.Pop()
	h.m.dev.Flush(r)
}

func (h *localHandle) Close(r *ioreq.Request) {
	h.check()
	h.m.span(r)
	defer r.Pop()
	h.closed = true
	h.f.opens--
	h.m.Stats.Closes++
	h.m.rec.Observe(telemetry.ClassMeta, 1, 0, h.m.params.MetaOpCost/2)
	r.Proc().Sleep(h.m.params.MetaOpCost / 2)
}
