package cluster

import (
	"fmt"
	"testing"

	"ioeval/internal/fs"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
)

const (
	mb = int64(1) << 20
	gb = int64(1) << 30
)

func TestAohyperShape(t *testing.T) {
	for _, org := range []Organization{JBOD, RAID1, RAID5} {
		c := Aohyper(org)
		if len(c.Nodes) != 8 {
			t.Fatalf("%v: %d nodes", org, len(c.Nodes))
		}
		if c.DataNet == c.CommNet {
			t.Fatalf("%v: Aohyper must have a dedicated data network", org)
		}
		wantDisks := map[Organization]int{JBOD: 1, RAID1: 2, RAID5: 5}[org]
		if len(c.IODisks) != wantDisks {
			t.Fatalf("%v: %d I/O disks, want %d", org, len(c.IODisks), wantDisks)
		}
	}
	// RAID 5 usable capacity: 4 × 230 GB = 920 GB ~ the paper's 917 GB.
	c := Aohyper(RAID5)
	if got := c.Array.Capacity(); got != 4*230*gb {
		t.Fatalf("RAID5 capacity = %d", got)
	}
}

func TestClusterAShape(t *testing.T) {
	c := ClusterA()
	if len(c.Nodes) != 32 {
		t.Fatalf("%d nodes", len(c.Nodes))
	}
	// 1.8 TB RAID 5 (4 data × 450 GB).
	if got := c.Array.Capacity(); got != 4*450*gb {
		t.Fatalf("capacity = %d", got)
	}
}

func TestEndToEndNFSTrafficFlows(t *testing.T) {
	c := Aohyper(RAID5)
	c.Eng.Spawn("app", func(p *sim.Proc) {
		h, err := c.Nodes[0].NFS.Open(ioreq.Meta(p), "/x", fs.OWrite|fs.OCreate)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		h.WriteAt(ioreq.Writer(p), 0, 64*mb)
		h.Close(ioreq.Meta(p))
		c.Nodes[0].NFS.Sync(ioreq.Meta(p))
	})
	c.Eng.Run()
	// Data must have reached the member disks, with parity overhead.
	var total int64
	for _, d := range c.IODisks {
		total += d.Stats.BytesWritten
	}
	if total < 64*mb {
		t.Fatalf("member disks saw %d bytes, want ≥64MB", total)
	}
}

func TestLocalAndNFSAreIndependentPaths(t *testing.T) {
	c := Aohyper(JBOD)
	c.Eng.Spawn("app", func(p *sim.Proc) {
		h, _ := c.Nodes[2].Local.Open(ioreq.Meta(p), "/local", fs.OWrite|fs.OCreate)
		h.WriteAt(ioreq.Writer(p), 0, 8*mb)
		h.Sync(ioreq.Meta(p))
		h.Close(ioreq.Meta(p))
	})
	c.Eng.Run()
	if c.Nodes[2].Disk.Stats.BytesWritten < 8*mb {
		t.Fatal("local write did not reach the node's own disk")
	}
	if c.IODisks[0].Stats.BytesWritten != 0 {
		t.Fatal("local write leaked to the I/O node")
	}
	if c.DataNet.Stats.Bytes != 0 {
		t.Fatal("local write used the network")
	}
}

func TestSharedNetworkConfig(t *testing.T) {
	cfg := Aohyper(JBOD).Cfg
	cfg.SeparateDataNet = false
	c := New(cfg)
	if c.DataNet != c.CommNet {
		t.Fatal("shared-network config still built two networks")
	}
}

func TestRankPlacementRoundRobin(t *testing.T) {
	c := Aohyper(RAID5)
	nodes := c.RankNodes(16)
	if len(nodes) != 16 {
		t.Fatalf("%d rank nodes", len(nodes))
	}
	for r := 0; r < 16; r++ {
		if nodes[r] != c.Nodes[r%8].Name {
			t.Fatalf("rank %d on %s, want %s", r, nodes[r], c.Nodes[r%8].Name)
		}
	}
	mounts := c.NFSMounts(16)
	if mounts[0] != fs.Interface(c.Nodes[0].NFS) || mounts[8] != fs.Interface(c.Nodes[0].NFS) {
		t.Fatal("NFS mounts not aligned with rank placement")
	}
	locals := c.LocalMounts(16)
	if locals[3] != fs.Interface(c.Nodes[3].Local) {
		t.Fatal("local mounts not aligned with rank placement")
	}
}

func TestDescribeListsFactors(t *testing.T) {
	c := Aohyper(RAID1)
	factors := c.Describe()
	if len(factors) < 6 {
		t.Fatalf("only %d factors", len(factors))
	}
	found := false
	for _, f := range factors {
		if f.Name == "device organization" && f.Value == "RAID1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("device organization factor missing: %+v", factors)
	}
}

func TestPFSDeployment(t *testing.T) {
	cfg := Aohyper(RAID5).Cfg
	cfg.PFSIONodes = 4
	c := New(cfg)
	if c.PFS == nil || len(c.PFSDisks) != 4 {
		t.Fatalf("PFS not deployed: %d disks", len(c.PFSDisks))
	}
	mounts := c.PFSMounts(8)
	c.Eng.Spawn("app", func(p *sim.Proc) {
		h, err := mounts[0].Open(ioreq.Meta(p), "/x", fs.OWrite|fs.OCreate)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		h.WriteAt(ioreq.Writer(p), 0, 16*mb)
		h.Sync(ioreq.Meta(p))
		h.Close(ioreq.Meta(p))
	})
	c.Eng.Run()
	var total int64
	for _, d := range c.PFSDisks {
		total += d.Stats.BytesWritten
	}
	if total < 16*mb {
		t.Fatalf("PFS disks saw %d bytes", total)
	}
	// The describe output must surface the new factor.
	found := false
	for _, f := range c.Describe() {
		if f.Name == "global filesystem" && len(f.Value) > len("NFS (1 I/O node, shared access)") {
			found = true
		}
	}
	if !found {
		t.Fatal("PFS deployment not reflected in configuration analysis")
	}
}

func TestPFSMountsWithoutDeploymentPanics(t *testing.T) {
	c := Aohyper(RAID5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.PFSMounts(4)
}

func TestConcurrentNodesShareServer(t *testing.T) {
	c := Aohyper(RAID5)
	for i := 0; i < 4; i++ {
		i := i
		c.Eng.Spawn(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
			h, _ := c.Nodes[i].NFS.Open(ioreq.Meta(p), fmt.Sprintf("/f%d", i), fs.OWrite|fs.OCreate)
			h.WriteAt(ioreq.Writer(p), 0, 32*mb)
			h.Close(ioreq.Meta(p))
		})
	}
	end := c.Eng.Run()
	// 128 MB through one GigE server NIC ⇒ at least ~1.09 s.
	if end < sim.Time(sim.Second) {
		t.Fatalf("shared-server writes finished at %v, too fast", sim.Duration(end))
	}
}
