// Package cluster assembles simulated compute clusters out of the
// substrate packages: nodes with local disks, filesystems and page
// caches; one I/O node exporting NFS over a (dedicated or shared)
// Gigabit Ethernet network; and device organizations (JBOD, RAID 1,
// RAID 5) on the I/O node. It provides the paper's two experimental
// platforms — the cluster "Aohyper" and the cluster "A" — plus a
// builder for arbitrary configurations, which is how the methodology's
// "I/O configuration analysis" phase enumerates candidates.
package cluster

import (
	"fmt"

	"ioeval/internal/cache"
	"ioeval/internal/device"
	"ioeval/internal/fs"
	"ioeval/internal/ioreq"
	"ioeval/internal/mpiio"
	"ioeval/internal/netsim"
	"ioeval/internal/nfs"
	"ioeval/internal/pfs"
	"ioeval/internal/raid"
	"ioeval/internal/sim"
	"ioeval/internal/telemetry"
)

// Organization is the I/O-node device organization under test: the
// paper's three configurations.
type Organization int

// The paper's device-level configurations (Fig. 4).
const (
	JBOD  Organization = iota // single disk, no redundancy
	RAID1                     // two disks, mirrored
	RAID5                     // five disks, rotating parity
)

func (o Organization) String() string {
	switch o {
	case JBOD:
		return "JBOD"
	case RAID1:
		return "RAID1"
	case RAID5:
		return "RAID5"
	}
	return fmt.Sprintf("Organization(%d)", int(o))
}

// Config describes a cluster to build.
type Config struct {
	Name         string
	ComputeNodes int

	// Per-compute-node hardware.
	NodeRAM      int64   // bytes
	NodeDiskCap  int64   // bytes
	NodeDiskRate float64 // bytes/s sustained

	// I/O node hardware.
	IONodeRAM    int64
	IODiskCap    int64   // per member disk
	IODiskRate   float64 // per member disk
	Org          Organization
	StripeUnit   int64 // RAID 5 stripe unit
	RAID5Disks   int   // member count for RAID 5 (default 5)
	WriteThrough bool  // page caches in write-through mode (ablation)

	// SeparateDataNet gives the cluster a second Gigabit Ethernet
	// dedicated to storage traffic (the paper's Aohyper setup). When
	// false, NFS and MPI share one network.
	SeparateDataNet bool

	NFSServer nfs.ServerParams
	NFSClient nfs.ClientParams

	// PFSIONodes, when positive, additionally deploys a PVFS-like
	// parallel filesystem striped over that many dedicated I/O nodes
	// (each with its own disk stack) — the "number and placement of
	// I/O nodes" factor of the configuration-analysis phase.
	PFSIONodes int
	PFS        pfs.Params
}

// Node is one compute node.
type Node struct {
	Name  string
	Disk  *device.Disk
	Cache *cache.Cache
	Local *fs.Mount   // node-local filesystem
	NFS   *nfs.Client // mount of the shared storage
	PFS   *pfs.Client // parallel filesystem mount (nil unless deployed)
}

// Cluster is an assembled simulation of a complete platform.
type Cluster struct {
	Eng     *sim.Engine
	Cfg     Config
	CommNet *netsim.Network
	DataNet *netsim.Network // == CommNet when !SeparateDataNet
	Nodes   []*Node

	// I/O node pieces.
	IONodeName string
	Array      device.BlockDev // JBOD disk or RAID array
	IOCache    *cache.Cache
	ServerFS   *fs.Mount
	Server     *nfs.Server
	IODisks    []*device.Disk

	// Parallel filesystem deployment (nil unless Cfg.PFSIONodes > 0).
	PFS        *pfs.System
	PFSDisks   []*device.Disk
	PFSClients []*pfs.Client

	// Telemetry holds every instrumented component's probe, in stack
	// order (library → global FS → local FS → cache → block → device →
	// network). LibRec is the shared MPI-IO library recorder installed
	// into worlds built via NewWorld.
	Telemetry *telemetry.Registry
	LibRec    *telemetry.Recorder

	// Path aggregates per-request spans across every world built on
	// this cluster: the span-side counterpart of the Telemetry
	// registry's used-% inputs.
	Path *ioreq.Collector
}

// New builds a cluster from cfg on a fresh engine.
func New(cfg Config) *Cluster {
	if cfg.ComputeNodes <= 0 {
		panic("cluster: need at least one compute node")
	}
	if cfg.RAID5Disks == 0 {
		cfg.RAID5Disks = 5
	}
	if cfg.StripeUnit == 0 {
		cfg.StripeUnit = 256 << 10
	}
	e := sim.NewEngine()
	c := &Cluster{Eng: e, Cfg: cfg, IONodeName: "ionode", Telemetry: telemetry.NewRegistry(), Path: ioreq.NewCollector()}
	c.LibRec = telemetry.NewRecorder(e, "mpiio", telemetry.LevelLibrary, int64(cfg.ComputeNodes))
	c.Telemetry.Register(c.LibRec)

	c.CommNet = netsim.New(e, netsim.GigabitEthernet(cfg.Name+"-comm"))
	if cfg.SeparateDataNet {
		c.DataNet = netsim.New(e, netsim.GigabitEthernet(cfg.Name+"-data"))
	} else {
		c.DataNet = c.CommNet
	}
	c.DataNet.Attach(c.IONodeName)

	// I/O node storage stack: disks -> organization -> page cache -> fs.
	newIODisk := func(i int) *device.Disk {
		return device.NewDisk(e, device.DefaultSATA(fmt.Sprintf("io-d%d", i), cfg.IODiskCap, cfg.IODiskRate))
	}
	switch cfg.Org {
	case JBOD:
		d := newIODisk(0)
		c.IODisks = []*device.Disk{d}
		c.Array = raid.NewJBOD(e, "jbod", d)
	case RAID1:
		d0, d1 := newIODisk(0), newIODisk(1)
		c.IODisks = []*device.Disk{d0, d1}
		c.Array = raid.NewRAID1(e, "raid1", d0, d1)
	case RAID5:
		members := make([]device.BlockDev, cfg.RAID5Disks)
		for i := range members {
			d := newIODisk(i)
			c.IODisks = append(c.IODisks, d)
			members[i] = d
		}
		c.Array = raid.NewRAID5(e, "raid5", cfg.StripeUnit, members...)
	default:
		panic(fmt.Sprintf("cluster: unknown organization %v", cfg.Org))
	}
	ioCacheParams := cache.DefaultParams("io-pagecache", pageCacheSize(cfg.IONodeRAM))
	if cfg.WriteThrough {
		ioCacheParams.Policy = cache.WriteThrough
	}
	c.IOCache = cache.New(e, ioCacheParams, c.Array)
	c.ServerFS = fs.NewMount(e, fs.DefaultMountParams("io-ext4"), c.IOCache)
	c.Server = nfs.NewServer(e, cfg.NFSServer, c.IONodeName, c.DataNet, c.ServerFS)

	c.Telemetry.Register(c.Server.Telemetry(), c.ServerFS.Telemetry(), c.IOCache.Telemetry())
	if a, ok := c.Array.(*raid.Array); ok {
		c.Telemetry.Register(a.Telemetry())
	}
	for _, d := range c.IODisks {
		c.Telemetry.Register(d.Telemetry())
	}

	// Optional PVFS-like deployment over dedicated I/O nodes.
	if cfg.PFSIONodes > 0 {
		if cfg.PFS.Name == "" {
			cfg.PFS = pfs.DefaultParams(cfg.Name + "-pfs")
		}
		nodes := make([]string, cfg.PFSIONodes)
		backends := make([]fs.Interface, cfg.PFSIONodes)
		for i := 0; i < cfg.PFSIONodes; i++ {
			node := fmt.Sprintf("%s-pfs%02d", cfg.Name, i)
			nodes[i] = node
			c.DataNet.Attach(node)
			d := device.NewDisk(e, device.DefaultSATA(node+"-disk", cfg.IODiskCap, cfg.IODiskRate))
			c.PFSDisks = append(c.PFSDisks, d)
			pcParams := cache.DefaultParams(node+"-pagecache", pageCacheSize(cfg.IONodeRAM))
			if cfg.WriteThrough {
				pcParams.Policy = cache.WriteThrough
			}
			pc := cache.New(e, pcParams, d)
			backends[i] = fs.NewMount(e, fs.DefaultMountParams(node+"-ext4"), pc)
			c.Telemetry.Register(backends[i].(*fs.Mount).Telemetry(), pc.Telemetry(), d.Telemetry())
		}
		c.PFS = pfs.NewSystem(e, cfg.PFS, nodes, c.DataNet, backends)
		for _, srv := range c.PFS.Servers() {
			c.Telemetry.Register(srv.Telemetry())
		}
	}

	for i := 0; i < cfg.ComputeNodes; i++ {
		name := fmt.Sprintf("%s-n%02d", cfg.Name, i)
		c.CommNet.Attach(name)
		if cfg.SeparateDataNet {
			c.DataNet.Attach(name)
		}
		d := device.NewDisk(e, device.DefaultSATA(name+"-disk", cfg.NodeDiskCap, cfg.NodeDiskRate))
		pcParams := cache.DefaultParams(name+"-pagecache", pageCacheSize(cfg.NodeRAM))
		if cfg.WriteThrough {
			pcParams.Policy = cache.WriteThrough
		}
		pc := cache.New(e, pcParams, d)
		local := fs.NewMount(e, fs.DefaultMountParams(name+"-ext4"), pc)
		clientParams := cfg.NFSClient
		if clientParams.CacheBytes == 0 {
			// The node's page cache is shared between local files and
			// NFS data; give the NFS side half the budget.
			clientParams.CacheBytes = pageCacheSize(cfg.NodeRAM) / 2
		}
		client := nfs.NewClient(e, clientParams, name, c.DataNet, c.Server)
		node := &Node{Name: name, Disk: d, Cache: pc, Local: local, NFS: client}
		c.Telemetry.Register(client.Telemetry(), local.Telemetry(), pc.Telemetry(), d.Telemetry())
		if c.PFS != nil {
			node.PFS = pfs.NewClient(e, name, c.DataNet, c.PFS)
			c.PFSClients = append(c.PFSClients, node.PFS)
			c.Telemetry.Register(node.PFS.Telemetry())
		}
		c.Nodes = append(c.Nodes, node)
	}

	// Networks last: their aggregates summarize the whole run, and the
	// I/O node NIC is the classic NFS bottleneck worth its own probe.
	c.Telemetry.Register(c.DataNet.Telemetry(), c.DataNet.NIC(c.IONodeName).Telemetry())
	if c.CommNet != c.DataNet {
		c.Telemetry.Register(c.CommNet.Telemetry())
	}
	return c
}

// NewWorld creates an MPI-IO world on this cluster wired to the
// cluster's registered library-level telemetry recorder. rankNodes is
// typically RankNodes(n).
func (c *Cluster) NewWorld(rankNodes []string) *mpiio.World {
	w := mpiio.NewWorld(c.Eng, c.CommNet, rankNodes)
	w.SetTelemetry(c.LibRec)
	w.SetCollector(c.Path)
	return w
}

// PathProfile returns the span aggregation over every request issued
// through worlds built on this cluster since the last reset.
func (c *Cluster) PathProfile() telemetry.PathProfile { return c.Path.Profile() }

// TelemetryReport snapshots every registered probe into an exportable
// report.
func (c *Cluster) TelemetryReport() *telemetry.Report {
	r := &telemetry.Report{
		Config:     c.Cfg.Name,
		Components: c.Telemetry.Snapshots(),
	}
	if c.Eng != nil {
		r.At = c.Eng.Now()
	}
	return r
}

// pageCacheSize models the fraction of RAM the kernel will use as
// page cache on an otherwise I/O-dedicated node.
func pageCacheSize(ram int64) int64 { return ram * 3 / 4 }

// RAM returns the compute-node RAM (useful for "file twice the size
// of main memory" characterization rules).
func (c *Cluster) RAM() int64 { return c.Cfg.NodeRAM }

// RankNodes places n ranks round-robin over compute nodes, returning
// the node name per rank (for mpiio.NewWorld).
func (c *Cluster) RankNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = c.Nodes[i%len(c.Nodes)].Name
	}
	return out
}

// NFSMounts returns, per rank, the NFS client of the rank's node.
func (c *Cluster) NFSMounts(n int) []fs.Interface {
	out := make([]fs.Interface, n)
	for i := range out {
		out[i] = c.Nodes[i%len(c.Nodes)].NFS
	}
	return out
}

// LocalMounts returns, per rank, the local filesystem of the rank's
// node.
func (c *Cluster) LocalMounts(n int) []fs.Interface {
	out := make([]fs.Interface, n)
	for i := range out {
		out[i] = c.Nodes[i%len(c.Nodes)].Local
	}
	return out
}

// PFSMounts returns, per rank, the parallel-filesystem client of the
// rank's node. Panics when the cluster has no PFS deployment.
func (c *Cluster) PFSMounts(n int) []fs.Interface {
	if c.PFS == nil {
		panic("cluster: no parallel filesystem deployed (set Config.PFSIONodes)")
	}
	out := make([]fs.Interface, n)
	for i := range out {
		out[i] = c.Nodes[i%len(c.Nodes)].PFS
	}
	return out
}

// Aohyper builds the paper's first platform: 8 dual-core AMD nodes
// with 2 GB RAM and a 150 GB local disk each; an NFS server with a
// RAID 1 (2×230 GB), a RAID 5 (5 disks, 256 KB stripe, 917 GB) or a
// single-disk JBOD; two Gigabit Ethernet networks (communication +
// data).
func Aohyper(org Organization) *Cluster {
	return New(Config{
		Name:            "aohyper",
		ComputeNodes:    8,
		NodeRAM:         2 << 30,
		NodeDiskCap:     150 << 30,
		NodeDiskRate:    90e6,
		IONodeRAM:       2 << 30,
		IODiskCap:       230 << 30,
		IODiskRate:      100e6,
		Org:             org,
		StripeUnit:      256 << 10,
		RAID5Disks:      5,
		SeparateDataNet: true,
		NFSServer:       nfs.DefaultServerParams("aohyper-nfs"),
		NFSClient:       nfs.DefaultClientParams("aohyper-nfs"),
	})
}

// ClusterA builds the paper's second platform: 32 nodes with 2×
// dual-core Xeons, 12 GB RAM and a 160 GB SATA disk each; a front-end
// NFS server with 8 GB RAM and a 1.8 TB RAID 5; dual Gigabit
// Ethernet.
func ClusterA() *Cluster {
	return New(Config{
		Name:            "clusterA",
		ComputeNodes:    32,
		NodeRAM:         12 << 30,
		NodeDiskCap:     160 << 30,
		NodeDiskRate:    100e6,
		IONodeRAM:       8 << 30,
		IODiskCap:       450 << 30,
		IODiskRate:      110e6,
		Org:             RAID5,
		StripeUnit:      256 << 10,
		RAID5Disks:      5,
		SeparateDataNet: true,
		NFSServer:       nfs.DefaultServerParams("clusterA-nfs"),
		NFSClient:       nfs.DefaultClientParams("clusterA-nfs"),
	})
}

// Factor is one configurable element of the I/O architecture, as
// enumerated by the methodology's configuration-analysis phase.
type Factor struct {
	Name  string
	Value string
}

// Describe returns the configurable factors of this cluster in the
// paper's terms (Section III-B).
func (c *Cluster) Describe() []Factor {
	network := "single network, shared computing/storage"
	if c.Cfg.SeparateDataNet {
		network = "two networks: communication + dedicated data"
	}
	cachePolicy := "write-back page cache on clients and I/O node"
	if c.Cfg.WriteThrough {
		cachePolicy = "write-through page cache"
	}
	nDisks := len(c.IODisks)
	globalFS := "NFS (1 I/O node, shared access)"
	if c.PFS != nil {
		globalFS = fmt.Sprintf("NFS (1 I/O node) + PVFS-like parallel FS (%d I/O nodes, %s stripes)",
			c.Cfg.PFSIONodes, fmt.Sprintf("%dKiB", c.Cfg.PFS.StripeSize>>10))
	}
	return []Factor{
		{"global filesystem", globalFS},
		{"local filesystem", fmt.Sprintf("ext4-like on %d compute nodes (user-managed sharing)", len(c.Nodes))},
		{"network", network},
		{"buffer/cache", cachePolicy},
		{"I/O devices", fmt.Sprintf("%d disk(s) on I/O node", nDisks)},
		{"device organization", c.Cfg.Org.String()},
		{"I/O node placement", "dedicated I/O node on data network"},
		{"service redundancy", "none (single I/O node)"},
	}
}
