package cluster

import (
	"fmt"
	"strings"

	"ioeval/internal/stats"
)

// UtilizationReport summarizes where simulated time went in the I/O
// path after a run — the methodology's "identify the possible points
// of inefficiency" aid: a saturated component (utilization near 1)
// is the binding constraint; idle components confirm the application
// or an upstream level is the limit.
func (c *Cluster) UtilizationReport() string {
	var tb stats.Table
	tb.AddRow("component", "utilization / counters")

	// I/O node disks.
	for _, d := range c.IODisks {
		tb.AddRow("I/O node disk "+d.Name(),
			fmt.Sprintf("%.0f%% busy, %s read, %s written, %d random ops",
				d.Utilization()*100,
				stats.IBytes(d.Stats.BytesRead), stats.IBytes(d.Stats.BytesWritten),
				d.Stats.RandomOps))
	}
	for _, d := range c.PFSDisks {
		tb.AddRow("PFS node disk "+d.Name(),
			fmt.Sprintf("%.0f%% busy, %s read, %s written",
				d.Utilization()*100,
				stats.IBytes(d.Stats.BytesRead), stats.IBytes(d.Stats.BytesWritten)))
	}

	// I/O node page cache.
	hit := func(hitB, missB int64) string {
		total := hitB + missB
		if total == 0 {
			return "no reads"
		}
		return fmt.Sprintf("%.0f%% read hit", 100*float64(hitB)/float64(total))
	}
	st := c.IOCache.Stats
	tb.AddRow("I/O node page cache",
		fmt.Sprintf("%s, %s written back, %d throttle stalls",
			hit(st.HitBytes, st.MissBytes), stats.IBytes(st.WriteBackBytes), st.ThrottleStalls))

	// Server NIC (the classic NFS bottleneck).
	srvNIC := c.DataNet.NIC(c.IONodeName)
	tb.AddRow("I/O node NIC (tx)",
		fmt.Sprintf("%.0f%% busy, %s moved", srvNIC.Utilization()*100, stats.IBytes(srvNIC.Stats.Bytes)))

	// Networks.
	tb.AddRow("data network", fmt.Sprintf("%s in %d messages",
		stats.IBytes(c.DataNet.Stats.Bytes), c.DataNet.Stats.Messages))
	if c.CommNet != c.DataNet {
		tb.AddRow("comm network", fmt.Sprintf("%s in %d messages",
			stats.IBytes(c.CommNet.Stats.Bytes), c.CommNet.Stats.Messages))
	}

	// NFS server counters.
	tb.AddRow("NFS server", fmt.Sprintf("%d read / %d write / %d meta RPCs",
		c.Server.Stats.ReadRPCs, c.Server.Stats.WriteRPCs, c.Server.Stats.MetaRPCs))

	// Compute-node aggregates.
	var nodeDiskBusy float64
	var nodeHit, nodeMiss int64
	for _, n := range c.Nodes {
		nodeDiskBusy += n.Disk.Utilization()
		nodeHit += n.Cache.Stats.HitBytes
		nodeMiss += n.Cache.Stats.MissBytes
	}
	tb.AddRow("compute-node disks (mean)",
		fmt.Sprintf("%.0f%% busy", 100*nodeDiskBusy/float64(len(c.Nodes))))
	tb.AddRow("compute-node page caches", hit(nodeHit, nodeMiss))

	var b strings.Builder
	fmt.Fprintf(&b, "Utilization report — %s (%v) at t=%v\n", c.Cfg.Name, c.Cfg.Org, c.Eng.Now())
	b.WriteString(tb.String())
	return b.String()
}
