package cluster

import (
	"fmt"
	"strings"

	"ioeval/internal/stats"
	"ioeval/internal/telemetry"
)

// UtilizationReport summarizes where simulated time went in the I/O
// path after a run — the methodology's "identify the possible points
// of inefficiency" aid: a saturated component (utilization near 1)
// is the binding constraint; idle components confirm the application
// or an upstream level is the limit.
//
// The report is built from telemetry snapshots (the same structured
// data exported by TelemetryReport), not from per-package stats
// fields, so every row is backed by a Probe. Missing components
// (hand-assembled clusters, zero compute nodes) produce guarded rows
// instead of NaNs.
func (c *Cluster) UtilizationReport() string {
	var tb stats.Table
	tb.AddRow("component", "utilization / counters")

	// I/O node disks.
	for _, d := range c.IODisks {
		s := d.Telemetry().Snapshot()
		tb.AddRow("I/O node disk "+d.Name(),
			fmt.Sprintf("%.0f%% busy, %s read, %s written, %d random ops",
				s.Utilization()*100,
				stats.IBytes(s.Counters.Read.Bytes), stats.IBytes(s.Counters.Write.Bytes),
				s.Counters.Aux["random_ops"]))
	}
	for _, d := range c.PFSDisks {
		s := d.Telemetry().Snapshot()
		tb.AddRow("PFS node disk "+d.Name(),
			fmt.Sprintf("%.0f%% busy, %s read, %s written",
				s.Utilization()*100,
				stats.IBytes(s.Counters.Read.Bytes), stats.IBytes(s.Counters.Write.Bytes)))
	}

	// I/O node page cache.
	hit := func(hitB, missB int64) string {
		total := hitB + missB
		if total == 0 {
			return "no reads"
		}
		return fmt.Sprintf("%.0f%% read hit", 100*float64(hitB)/float64(total))
	}
	if c.IOCache != nil {
		s := c.IOCache.Telemetry().Snapshot()
		tb.AddRow("I/O node page cache",
			fmt.Sprintf("%s, %s written back, %d throttle stalls",
				hit(s.Counters.Aux["hit_bytes"], s.Counters.Aux["miss_bytes"]),
				stats.IBytes(s.Counters.Aux["writeback_bytes"]), s.Counters.Aux["throttle_stalls"]))
	}

	// Server NIC (the classic NFS bottleneck).
	if c.DataNet != nil {
		srvNIC := c.DataNet.NIC(c.IONodeName)
		s := srvNIC.Telemetry().Snapshot()
		tb.AddRow("I/O node NIC (tx)",
			fmt.Sprintf("%.0f%% busy, %s moved", srvNIC.Utilization()*100,
				stats.IBytes(s.Counters.TotalBytes())))

		// Networks.
		ns := c.DataNet.Telemetry().Snapshot()
		tb.AddRow("data network", fmt.Sprintf("%s in %d messages",
			stats.IBytes(ns.Counters.Write.Bytes), ns.Counters.Write.Ops))
		if c.CommNet != nil && c.CommNet != c.DataNet {
			cs := c.CommNet.Telemetry().Snapshot()
			tb.AddRow("comm network", fmt.Sprintf("%s in %d messages",
				stats.IBytes(cs.Counters.Write.Bytes), cs.Counters.Write.Ops))
		}
	}

	// NFS server counters.
	if c.Server != nil {
		s := c.Server.Telemetry().Snapshot()
		tb.AddRow("NFS server", fmt.Sprintf("%d read / %d write / %d meta RPCs, %.0f%% thread busy, queue peak %d",
			s.Counters.Read.Ops, s.Counters.Write.Ops, s.Counters.Meta.Ops,
			s.Utilization()*100, s.Counters.MaxQueueDepth))
	}

	// Compute-node aggregates. MeanUtilization guards the empty-node
	// case (a hand-built cluster with no compute nodes must not NaN).
	diskSnaps := make([]telemetry.Snapshot, 0, len(c.Nodes))
	var nodeHit, nodeMiss int64
	for _, n := range c.Nodes {
		diskSnaps = append(diskSnaps, n.Disk.Telemetry().Snapshot())
		cs := n.Cache.Telemetry().Snapshot()
		nodeHit += cs.Counters.Aux["hit_bytes"]
		nodeMiss += cs.Counters.Aux["miss_bytes"]
	}
	tb.AddRow("compute-node disks (mean)",
		fmt.Sprintf("%.0f%% busy", 100*telemetry.MeanUtilization(diskSnaps)))
	tb.AddRow("compute-node page caches", hit(nodeHit, nodeMiss))

	var b strings.Builder
	fmt.Fprintf(&b, "Utilization report — %s (%v) at t=%v\n", c.Cfg.Name, c.Cfg.Org, c.Eng.Now())
	b.WriteString(tb.String())
	return b.String()
}
