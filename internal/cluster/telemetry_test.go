package cluster

import (
	"bytes"
	"strings"
	"testing"

	"ioeval/internal/fs"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
	"ioeval/internal/telemetry"
)

// A hand-assembled cluster with no nodes and no components must
// produce a guarded report, not NaNs or a divide-by-zero panic.
func TestUtilizationReportZeroNodes(t *testing.T) {
	c := &Cluster{Eng: sim.NewEngine(), Cfg: Config{Name: "empty"}}
	out := c.UtilizationReport()
	if strings.Contains(out, "NaN") {
		t.Fatalf("report contains NaN:\n%s", out)
	}
	if !strings.Contains(out, "compute-node disks (mean)") || !strings.Contains(out, "0% busy") {
		t.Fatalf("empty-cluster disk row not guarded:\n%s", out)
	}
	// The snapshot aggregation path is guarded the same way.
	if u := telemetry.MeanUtilization(nil); u != 0 {
		t.Fatalf("MeanUtilization(nil) = %v", u)
	}
}

// Every layer of a full cluster must expose a registered probe, and
// the exported report must carry their snapshots.
func TestClusterTelemetryRegistry(t *testing.T) {
	cfg := Aohyper(RAID5).Cfg
	cfg.PFSIONodes = 2
	c := New(cfg)
	if c.Telemetry.Len() == 0 {
		t.Fatal("no probes registered")
	}
	c.Eng.Spawn("app", func(p *sim.Proc) {
		h, _ := c.Nodes[0].NFS.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.OCreate)
		h.WriteAt(ioreq.Writer(p), 0, 32*mb)
		h.Sync(ioreq.Meta(p)) // push through the server's page cache to the disks
		h.Close(ioreq.Meta(p))

		ph, _ := c.Nodes[0].PFS.Open(ioreq.Meta(p), "/pf", fs.OWrite|fs.OCreate)
		ph.WriteAt(ioreq.Writer(p), 0, 8*mb)
		ph.Close(ioreq.Meta(p))
	})
	c.Eng.Run()

	rep := c.TelemetryReport()
	levels := map[telemetry.Level]bool{}
	names := map[string]int{}
	for _, s := range rep.Components {
		levels[s.Level] = true
		names[s.Component]++
	}
	for name, n := range names {
		if n > 1 {
			t.Fatalf("component name %q registered %d times", name, n)
		}
	}
	for _, want := range []telemetry.Level{
		telemetry.LevelLibrary, telemetry.LevelGlobalFS, telemetry.LevelLocalFS,
		telemetry.LevelCache, telemetry.LevelBlock, telemetry.LevelDevice,
		telemetry.LevelNetwork,
	} {
		if !levels[want] {
			t.Fatalf("no component at level %v; have %v", want, levels)
		}
	}

	// Data flowed through the stack: NFS server, device and network
	// levels all saw the write.
	byLevel := telemetry.ByLevel(rep.Components)
	var devBytes, netBytes int64
	for _, s := range byLevel[telemetry.LevelDevice] {
		devBytes += s.Counters.TotalBytes()
	}
	for _, s := range byLevel[telemetry.LevelNetwork] {
		netBytes += s.Counters.TotalBytes()
	}
	if devBytes == 0 || netBytes == 0 {
		t.Fatalf("stack not observed: device=%d net=%d bytes", devBytes, netBytes)
	}

	// The report encodes as valid JSON and round-trips.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := telemetry.ReadReportJSON(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.Components) != len(rep.Components) {
		t.Fatalf("roundtrip components = %d, want %d", len(got.Components), len(rep.Components))
	}
}
