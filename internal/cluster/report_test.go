package cluster

import (
	"strings"
	"testing"

	"ioeval/internal/fs"
	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
)

func TestUtilizationReport(t *testing.T) {
	c := Aohyper(RAID5)
	c.Eng.Spawn("app", func(p *sim.Proc) {
		h, _ := c.Nodes[0].NFS.Open(ioreq.Meta(p), "/f", fs.OWrite|fs.OCreate)
		h.WriteAt(ioreq.Writer(p), 0, 32*mb)
		h.Close(ioreq.Meta(p))
	})
	c.Eng.Run()
	out := c.UtilizationReport()
	for _, want := range []string{"I/O node disk", "page cache", "NFS server", "data network", "comm network"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestUtilizationReportWithPFS(t *testing.T) {
	cfg := Aohyper(RAID5).Cfg
	cfg.PFSIONodes = 2
	c := New(cfg)
	c.Eng.Run()
	if !strings.Contains(c.UtilizationReport(), "PFS node disk") {
		t.Fatal("report missing PFS disks")
	}
}
