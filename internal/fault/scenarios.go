package fault

import (
	"fmt"
	"sort"
	"strings"

	"ioeval/internal/sim"
)

// Builtin named scenarios: the degraded-mode what-if axis the CLIs
// expose by name (-fault disk-fail). Injection times are early (1–3 s
// into the run) so they land inside every workload's I/O phase, and
// rebuild extents are bounded so a scenario never dominates the
// simulated runtime.

// builtins maps scenario names to constructors; constructed fresh per
// call so callers can mutate their copy safely.
var builtins = map[string]func() Plan{
	"disk-fail": func() Plan {
		return Plan{
			Name: "disk-fail",
			Seed: 1,
			Events: []Event{{
				At:   2 * sim.Second,
				Kind: DiskFail,
				Rebuild: &Rebuild{
					Delay: 500 * sim.Millisecond,
					Bytes: 256 << 20,
					Rate:  80e6,
				},
			}},
		}
	},
	"slow-disk": func() Plan {
		return Plan{
			Name:   "slow-disk",
			Seed:   1,
			Events: []Event{{At: sim.Second, Kind: DiskSlow, Factor: 4}},
		}
	},
	"net-degrade": func() Plan {
		return Plan{
			Name:   "net-degrade",
			Seed:   1,
			Events: []Event{{At: sim.Second, Kind: NetDegrade, Factor: 3}},
		}
	},
	"net-flap": func() Plan {
		return Plan{
			Name: "net-flap",
			Seed: 7,
			Events: []Event{{
				At:       2 * sim.Second,
				Kind:     NetFlap,
				Duration: 400 * sim.Millisecond,
				Count:    3,
				Period:   2 * sim.Second,
				Jitter:   150 * sim.Millisecond,
			}},
		}
	},
	"nfs-stall": func() Plan {
		return Plan{
			Name: "nfs-stall",
			Seed: 1,
			Events: []Event{{
				At:       2 * sim.Second,
				Kind:     NFSStall,
				Duration: 2500 * sim.Millisecond,
				Restart:  true,
			}},
		}
	},
}

// Builtin returns a builtin scenario by name.
func Builtin(name string) (Plan, error) {
	mk, ok := builtins[name]
	if !ok {
		return Plan{}, fmt.Errorf("fault: unknown scenario %q (have %s)", name, strings.Join(BuiltinNames(), ", "))
	}
	return mk(), nil
}

// BuiltinNames lists the builtin scenario names, sorted.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for name := range builtins {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
