package fault

import (
	"fmt"
	"math/rand"

	"ioeval/internal/cluster"
	"ioeval/internal/device"
	"ioeval/internal/raid"
	"ioeval/internal/sim"
	"ioeval/internal/telemetry"
)

// Injector is an armed fault plan on one cluster. It is a telemetry
// probe: its counters record what was actually injected (failures,
// slowdowns, flaps, stalls, rebuild progress), so degraded-mode
// reports can show the scenario alongside the layer counters it
// perturbed.
type Injector struct {
	plan Plan
	rec  *telemetry.Recorder
}

// Plan returns the armed plan.
func (in *Injector) Plan() Plan { return in.plan }

// Telemetry returns the injector's telemetry probe.
func (in *Injector) Telemetry() *telemetry.Recorder { return in.rec }

// Apply validates the plan against a freshly built cluster and arms
// every event on the cluster's engine, returning the injector probe
// (registered with the cluster's telemetry registry). The cluster
// must not have run yet: fault scenarios are part of a run's initial
// conditions, not something spliced into a half-finished simulation.
func Apply(c *cluster.Cluster, plan Plan) (*Injector, error) {
	if c.Eng.Now() != 0 {
		return nil, fmt.Errorf("fault plan %q: cluster already ran (t=%v); apply to a fresh cluster", plan.Name, c.Eng.Now())
	}
	if err := plan.Validate(c); err != nil {
		return nil, err
	}
	name := plan.Name
	if name == "" {
		name = "plan"
	}
	in := &Injector{
		plan: plan,
		rec:  telemetry.NewRecorder(c.Eng, "fault:"+name, telemetry.LevelFault, 1),
	}
	c.Telemetry.Register(in.Telemetry())

	// All plan randomness flows from this one seeded source, consumed
	// in event order at arm time — never during the run — so the same
	// (plan, seed) always produces the same schedule.
	rng := rand.New(rand.NewSource(plan.Seed))
	for _, ev := range plan.Events {
		in.arm(c, ev, rng)
	}
	return in, nil
}

// MustApply is Apply for pre-validated plans; it panics on error.
func MustApply(c *cluster.Cluster, plan Plan) *Injector {
	in, err := Apply(c, plan)
	if err != nil {
		panic(err)
	}
	return in
}

// arm schedules one event's injection actions.
func (in *Injector) arm(c *cluster.Cluster, ev Event, rng *rand.Rand) {
	at := sim.Time(ev.At)
	switch ev.Kind {
	case DiskFail:
		arr := c.Array.(*raid.Array)
		member := ev.Member
		c.Eng.ScheduleAt(at, func() {
			arr.Fail(member)
			in.rec.Add("disk_failures", 1)
		})
		if ev.Rebuild != nil {
			rb := *ev.Rebuild
			// The spare mirrors the failed member's drive model. Built
			// (and registered) at arm time so the telemetry registry
			// order never depends on run-time interleaving.
			params := arr.Members()[member].(*device.Disk).Params()
			params.Name += "-spare"
			spare := device.NewDisk(c.Eng, params)
			c.Telemetry.Register(spare.Telemetry())
			start := at + sim.Time(rb.Delay)
			c.Eng.ScheduleAt(start, func() {
				in.rec.Add("rebuilds_started", 1)
				c.Eng.Spawn("rebuild:"+arr.Name(), func(p *sim.Proc) {
					if err := arr.Rebuild(p, spare, raid.RebuildConfig{
						Bytes: rb.Bytes, Chunk: rb.Chunk, Rate: rb.Rate,
					}); err != nil {
						panic(fmt.Sprintf("fault: %v", err)) // validated at Apply
					}
					in.rec.Add("rebuilds_completed", 1)
				})
			})
		}
	case DiskSlow:
		d := c.IODisks[ev.Member]
		factor := ev.Factor
		c.Eng.ScheduleAt(at, func() {
			d.SetSlowFactor(factor)
			in.rec.Add("disk_slowdowns", 1)
		})
	case NetDegrade:
		node := netNode(c, ev)
		factor := ev.Factor
		c.Eng.ScheduleAt(at, func() {
			c.DataNet.Degrade(node, factor)
			in.rec.Add("net_degrades", 1)
		})
	case NetFlap:
		node := netNode(c, ev)
		count := ev.Count
		if count < 1 {
			count = 1
		}
		for i := 0; i < count; i++ {
			start := at + sim.Time(ev.Period)*sim.Time(i)
			if ev.Jitter > 0 {
				start += sim.Time(rng.Int63n(int64(ev.Jitter) + 1))
			}
			until := start + sim.Time(ev.Duration)
			c.Eng.ScheduleAt(start, func() {
				c.DataNet.FailLinkUntil(node, until)
				in.rec.Add("net_flaps", 1)
			})
		}
	case NFSStall:
		srv := c.Server
		dur := ev.Duration
		c.Eng.ScheduleAt(at, func() {
			srv.Stall(dur)
			in.rec.Add("nfs_stalls", 1)
		})
		if ev.Restart {
			c.Eng.ScheduleAt(at+sim.Time(dur), func() {
				for _, n := range c.Nodes {
					if n.NFS != nil {
						n.NFS.InvalidateCaches()
					}
				}
				in.rec.Add("nfs_restarts", 1)
			})
		}
	}
}

// netNode resolves an event's target node ("" means the I/O node).
func netNode(c *cluster.Cluster, ev Event) string {
	if ev.Node == "" {
		return c.IONodeName
	}
	return ev.Node
}
