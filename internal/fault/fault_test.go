package fault

import (
	"strings"
	"testing"

	"ioeval/internal/cluster"
	"ioeval/internal/ioreq"
	"ioeval/internal/raid"
	"ioeval/internal/sim"
)

func TestPlanPredicates(t *testing.T) {
	if !(Plan{}).Empty() {
		t.Fatal("zero plan not Empty")
	}
	df, err := Builtin("disk-fail")
	if err != nil {
		t.Fatal(err)
	}
	if df.Empty() {
		t.Fatal("disk-fail Empty")
	}
	if !df.RequiresRedundancy() {
		t.Fatal("disk-fail does not require redundancy")
	}
	sd, _ := Builtin("slow-disk")
	if sd.RequiresRedundancy() {
		t.Fatal("slow-disk requires redundancy")
	}
}

func TestBuiltins(t *testing.T) {
	names := BuiltinNames()
	if len(names) != 5 {
		t.Fatalf("BuiltinNames = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("BuiltinNames not sorted: %v", names)
		}
	}
	c := cluster.Aohyper(cluster.RAID5)
	for _, name := range names {
		pl, err := Builtin(name)
		if err != nil {
			t.Fatalf("Builtin(%q): %v", name, err)
		}
		if pl.Name != name || pl.Empty() {
			t.Fatalf("Builtin(%q) = %+v", name, pl)
		}
		if err := pl.Validate(c); err != nil {
			t.Fatalf("builtin %q invalid on Aohyper RAID5: %v", name, err)
		}
	}
	if _, err := Builtin("nope"); err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("Builtin(nope) error = %v", err)
	}
	// Mutating a returned builtin must not leak into later calls.
	pl, _ := Builtin("slow-disk")
	pl.Events[0].Factor = 99
	again, _ := Builtin("slow-disk")
	if again.Events[0].Factor != 4 {
		t.Fatal("builtin plan shared mutable state across calls")
	}
}

func TestValidateErrors(t *testing.T) {
	raid5 := cluster.Aohyper(cluster.RAID5)
	jbod := cluster.Aohyper(cluster.JBOD)
	cases := []struct {
		name string
		c    *cluster.Cluster
		pl   Plan
		want string
	}{
		{"negative-at", raid5, Plan{Events: []Event{{At: -sim.Second, Kind: DiskSlow, Member: 0, Factor: 2}}}, "negative injection time"},
		{"fail-on-jbod", jbod, Plan{Events: []Event{{Kind: DiskFail}}}, "no redundancy"},
		{"fail-bad-member", raid5, Plan{Events: []Event{{Kind: DiskFail, Member: 99}}}, "no array member"},
		{"fail-twice-raid5", raid5, Plan{Events: []Event{{Kind: DiskFail, Member: 0}, {Kind: DiskFail, Member: 1}}}, "second RAID 5 failure"},
		{"slow-bad-member", raid5, Plan{Events: []Event{{Kind: DiskSlow, Member: 99, Factor: 2}}}, "no I/O-node disk"},
		{"slow-factor", raid5, Plan{Events: []Event{{Kind: DiskSlow, Member: 0, Factor: 0.5}}}, "below 1"},
		{"degrade-unattached", raid5, Plan{Events: []Event{{Kind: NetDegrade, Node: "ghost", Factor: 2}}}, "not attached"},
		{"degrade-factor", raid5, Plan{Events: []Event{{Kind: NetDegrade, Factor: 0.9}}}, "below 1"},
		{"flap-no-duration", raid5, Plan{Events: []Event{{Kind: NetFlap}}}, "positive outage duration"},
		{"flap-no-period", raid5, Plan{Events: []Event{{Kind: NetFlap, Duration: sim.Second, Count: 3}}}, "positive period"},
		{"flap-neg-jitter", raid5, Plan{Events: []Event{{Kind: NetFlap, Duration: sim.Second, Jitter: -1}}}, "negative jitter"},
		{"stall-no-duration", raid5, Plan{Events: []Event{{Kind: NFSStall}}}, "positive duration"},
		{"rebuild-neg-delay", raid5, Plan{Events: []Event{{Kind: DiskFail, Rebuild: &Rebuild{Delay: -1}}}}, "negative rebuild delay"},
		{"rebuild-neg-bounds", raid5, Plan{Events: []Event{{Kind: DiskFail, Rebuild: &Rebuild{Bytes: -1}}}}, "negative rebuild bounds"},
	}
	for _, tc := range cases {
		err := tc.pl.Validate(tc.c)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	ok := Plan{Events: []Event{
		{Kind: DiskSlow, Member: 0, Factor: 2},
		{At: sim.Second, Kind: NetDegrade, Factor: 2},
		{At: sim.Second, Kind: NetFlap, Duration: 100 * sim.Millisecond},
		{At: sim.Second, Kind: NFSStall, Duration: sim.Second},
	}}
	if err := ok.Validate(raid5); err != nil {
		t.Fatalf("valid mixed plan rejected: %v", err)
	}
}

// TestApplyArmsCounters drains a multi-event plan on a real cluster and
// checks every injected action shows up on the injector probe.
func TestApplyArmsCounters(t *testing.T) {
	c := cluster.Aohyper(cluster.RAID5)
	pl := Plan{
		Name: "mixed",
		Seed: 3,
		Events: []Event{
			{At: sim.Second, Kind: DiskSlow, Member: 0, Factor: 2},
			{At: sim.Second, Kind: NetDegrade, Factor: 2},
			{At: 2 * sim.Second, Kind: NetFlap, Duration: 100 * sim.Millisecond, Count: 2, Period: sim.Second},
			{At: 3 * sim.Second, Kind: NFSStall, Duration: 500 * sim.Millisecond, Restart: true},
		},
	}
	in, err := Apply(c, pl)
	if err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	rec := in.Telemetry()
	for key, want := range map[string]int64{
		"disk_slowdowns": 1,
		"net_degrades":   1,
		"net_flaps":      2,
		"nfs_stalls":     1,
		"nfs_restarts":   1,
	} {
		if got := rec.AuxVal(key); got != want {
			t.Errorf("%s = %d, want %d", key, got, want)
		}
	}
	if in.Plan().Name != "mixed" {
		t.Fatalf("Plan() = %+v", in.Plan())
	}
}

// TestApplyDiskFailRebuild drains the builtin disk-fail scenario: the
// member fails, the bounded rebuild pass runs onto a spare, and both
// the injector and the array record it.
func TestApplyDiskFailRebuild(t *testing.T) {
	c := cluster.Aohyper(cluster.RAID5)
	pl, _ := Builtin("disk-fail")
	in := MustApply(c, pl)
	c.Eng.Run()
	if got := in.Telemetry().AuxVal("disk_failures"); got != 1 {
		t.Fatalf("disk_failures = %d", got)
	}
	if got := in.Telemetry().AuxVal("rebuilds_started"); got != 1 {
		t.Fatalf("rebuilds_started = %d", got)
	}
	if got := in.Telemetry().AuxVal("rebuilds_completed"); got != 1 {
		t.Fatalf("rebuilds_completed = %d (rebuild pass did not finish)", got)
	}
	arr := c.Array.(*raid.Array)
	if got := arr.Telemetry().AuxVal("rebuild_bytes"); got != 256<<20 {
		t.Fatalf("array rebuild_bytes = %d, want %d", got, 256<<20)
	}
}

func TestApplyRejectsRanCluster(t *testing.T) {
	c := cluster.Aohyper(cluster.RAID5)
	c.Eng.ScheduleAt(sim.Time(sim.Second), func() {})
	c.Eng.Run()
	pl, _ := Builtin("slow-disk")
	if _, err := Apply(c, pl); err == nil || !strings.Contains(err.Error(), "already ran") {
		t.Fatalf("Apply on ran cluster = %v", err)
	}
}

func TestApplyRejectsInvalidPlan(t *testing.T) {
	c := cluster.Aohyper(cluster.JBOD)
	pl, _ := Builtin("disk-fail")
	if _, err := Apply(c, pl); err == nil {
		t.Fatal("Apply(disk-fail) on JBOD did not error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustApply did not panic")
		}
	}()
	MustApply(c, pl)
}

// flapRunElapsed arms the net-flap builtin (with the given seed) and
// measures a fixed send workload through the flapping I/O-node link.
func flapRunElapsed(t *testing.T, seed int64) sim.Duration {
	t.Helper()
	c := cluster.Aohyper(cluster.RAID5)
	pl, _ := Builtin("net-flap")
	pl.Seed = seed
	if _, err := Apply(c, pl); err != nil {
		t.Fatal(err)
	}
	src := c.RankNodes(1)[0]
	var d sim.Duration
	c.Eng.Spawn("sender", func(p *sim.Proc) {
		t0 := p.Now()
		for i := 0; i < 6; i++ {
			c.DataNet.Send(ioreq.Meta(p), src, c.IONodeName, 16*(1<<20))
		}
		d = sim.Duration(p.Now() - t0)
	})
	c.Eng.Run()
	return d
}

// TestFlapJitterSeededDeterminism: equal seeds replay the jittered flap
// schedule byte-identically; the jitter is consumed at arm time only.
func TestFlapJitterSeededDeterminism(t *testing.T) {
	a := flapRunElapsed(t, 7)
	b := flapRunElapsed(t, 7)
	if a != b {
		t.Fatalf("same seed, different runs: %v vs %v", a, b)
	}
	if a == 0 {
		t.Fatal("sender measured nothing")
	}
}
