// Package fault is the deterministic fault-injection plane of the
// simulated I/O stack. A Plan is a declarative, replayable schedule of
// faults on the simulated clock — a disk dying or slowing at time T,
// the RAID array rebuilding onto a spare, the data network degrading
// or flapping, the NFS server stalling — that Apply arms on a freshly
// built cluster before the run starts. Everything is scheduled on the
// sim clock and any randomness (flap jitter) comes from the plan's
// seed, so a scenario replays byte-identically: the paper's
// configuration-analysis question ("which configuration satisfies the
// application?") can be asked about the degraded path with the same
// rigor as the healthy one.
package fault

import (
	"fmt"

	"ioeval/internal/cluster"
	"ioeval/internal/device"
	"ioeval/internal/raid"
	"ioeval/internal/sim"
)

// Kind is the fault class of one plan event.
type Kind int

// Fault kinds.
const (
	// DiskFail fails one I/O-node array member at At. The array must
	// be redundant (RAID 1/5); reads reconstruct from the survivors
	// until the optional Rebuild completes onto a hot spare.
	DiskFail Kind = iota
	// DiskSlow multiplies one I/O-node disk's service time by Factor
	// from At on (media retries, a failing head).
	DiskSlow
	// NetDegrade multiplies serialization time through a node's NIC on
	// the data network by Factor from At on.
	NetDegrade
	// NetFlap takes a node's data-network link down for Duration,
	// Count times, Period apart, each start offset by seeded jitter up
	// to Jitter.
	NetFlap
	// NFSStall makes the NFS server unresponsive for Duration at At;
	// clients ride it out via their retry/timeout/backoff machinery.
	// With Restart set, recovery also invalidates every client's
	// attribute cache and close-to-open tokens (a server restart, not
	// just a pause).
	NFSStall
)

func (k Kind) String() string {
	switch k {
	case DiskFail:
		return "disk-fail"
	case DiskSlow:
		return "disk-slow"
	case NetDegrade:
		return "net-degrade"
	case NetFlap:
		return "net-flap"
	case NFSStall:
		return "nfs-stall"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Rebuild configures reconstruction onto a hot spare after a DiskFail.
type Rebuild struct {
	// Delay is how long after the failure the rebuild starts (operator
	// reaction / spare spin-up); zero starts immediately.
	Delay sim.Duration
	// Bytes bounds the reconstructed extent; 0 rebuilds the full
	// member (which can dominate scenario runtime — builtin scenarios
	// bound it).
	Bytes int64
	// Chunk is the per-step extent (0 = 1 MiB).
	Chunk int64
	// Rate throttles reconstruction, bytes/second (0 = unthrottled).
	Rate float64
}

// Event is one scheduled fault.
type Event struct {
	// At is the injection time on the simulated clock (from engine
	// start; must not be negative).
	At sim.Duration
	// Kind selects the fault class; the fields below apply per kind as
	// documented on the Kind constants.
	Kind Kind

	Member   int          // DiskFail, DiskSlow: I/O-node disk index
	Node     string       // NetDegrade, NetFlap: network node ("" = the I/O node)
	Factor   float64      // DiskSlow, NetDegrade: service-time multiplier (>= 1)
	Duration sim.Duration // NetFlap: outage span; NFSStall: stall span
	Count    int          // NetFlap: number of flaps (0 or 1 = one)
	Period   sim.Duration // NetFlap: spacing between flap starts
	Jitter   sim.Duration // NetFlap: max seeded jitter added per flap start
	Rebuild  *Rebuild     // DiskFail: optional rebuild onto a hot spare
	Restart  bool         // NFSStall: invalidate client caches at recovery
}

// Plan is a named, seeded schedule of faults. The zero Plan is the
// healthy baseline: no events, empty name.
type Plan struct {
	// Name labels the scenario in reports and sweep-cell names.
	Name string
	// Seed drives all plan randomness (flap jitter). Equal seeds
	// replay identically.
	Seed int64
	// Events are the scheduled faults, applied in slice order.
	Events []Event
}

// Empty reports whether the plan injects nothing (healthy baseline).
func (pl Plan) Empty() bool { return len(pl.Events) == 0 }

// RequiresRedundancy reports whether the plan fails a disk — which
// only a redundant array (RAID 1/5) survives. Grid expansions use it
// to skip meaningless (plan, JBOD) cells.
func (pl Plan) RequiresRedundancy() bool {
	for _, ev := range pl.Events {
		if ev.Kind == DiskFail {
			return true
		}
	}
	return false
}

// Validate checks the plan against a cluster without arming anything:
// members exist, failures stay within the array's redundancy, net
// events name attached nodes, durations and factors are sane. Apply
// validates implicitly; Validate lets callers (grid expansion, CLIs)
// reject bad plans before paying for a characterization.
func (pl Plan) Validate(c *cluster.Cluster) error {
	var failed []int
	for i, ev := range pl.Events {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("fault plan %q event %d (%s): %s", pl.Name, i, ev.Kind, fmt.Sprintf(format, args...))
		}
		if ev.At < 0 {
			return fail("negative injection time %v", ev.At)
		}
		switch ev.Kind {
		case DiskFail:
			arr, ok := c.Array.(*raid.Array)
			if !ok {
				return fail("cluster has no RAID array")
			}
			if ev.Member < 0 || ev.Member >= len(arr.Members()) {
				return fail("no array member %d (array has %d)", ev.Member, len(arr.Members()))
			}
			switch arr.Level() {
			case raid.RAID1:
				if len(failed)+1 >= len(arr.Members()) {
					return fail("failing member %d leaves no surviving mirror", ev.Member)
				}
			case raid.RAID5:
				if len(failed) >= 1 {
					return fail("second RAID 5 failure is data loss")
				}
			default:
				return fail("%v has no redundancy — member failure is data loss", arr.Level())
			}
			for _, m := range failed {
				if m == ev.Member {
					return fail("member %d already failed by an earlier event", ev.Member)
				}
			}
			failed = append(failed, ev.Member)
			if ev.Rebuild != nil {
				if ev.Rebuild.Delay < 0 {
					return fail("negative rebuild delay")
				}
				if ev.Rebuild.Bytes < 0 || ev.Rebuild.Chunk < 0 || ev.Rebuild.Rate < 0 {
					return fail("negative rebuild bounds")
				}
				if _, ok := arr.Members()[ev.Member].(*device.Disk); !ok {
					return fail("member %d is not a device.Disk; cannot derive spare parameters", ev.Member)
				}
			}
		case DiskSlow:
			if ev.Member < 0 || ev.Member >= len(c.IODisks) {
				return fail("no I/O-node disk %d (cluster has %d)", ev.Member, len(c.IODisks))
			}
			if ev.Factor < 1 {
				return fail("slow factor %v below 1", ev.Factor)
			}
		case NetDegrade, NetFlap:
			if c.DataNet == nil {
				return fail("cluster has no data network")
			}
			node := ev.Node
			if node == "" {
				node = c.IONodeName
			}
			if !c.DataNet.Attached(node) {
				return fail("node %q not attached to the data network", node)
			}
			if ev.Kind == NetDegrade && ev.Factor < 1 {
				return fail("degrade factor %v below 1", ev.Factor)
			}
			if ev.Kind == NetFlap {
				if ev.Duration <= 0 {
					return fail("flap needs a positive outage duration")
				}
				if ev.Count > 1 && ev.Period <= 0 {
					return fail("%d flaps need a positive period", ev.Count)
				}
				if ev.Jitter < 0 {
					return fail("negative jitter")
				}
			}
		case NFSStall:
			if c.Server == nil {
				return fail("cluster has no NFS server")
			}
			if ev.Duration <= 0 {
				return fail("stall needs a positive duration")
			}
		default:
			return fail("unknown fault kind")
		}
	}
	return nil
}
