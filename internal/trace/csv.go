package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"ioeval/internal/mpiio"
	"ioeval/internal/sim"
)

// WriteCSV exports the I/O events as CSV for external plotting
// (rank, op, file, offset, bytes, count, t0_ns, t1_ns). Compute,
// communication and barrier events are included so Jumpshot-style
// charts can be rebuilt outside the library.
func (t *Tracer) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rank", "op", "file", "offset", "bytes", "count", "t0_ns", "t1_ns"}); err != nil {
		return fmt.Errorf("trace: write csv header: %w", err)
	}
	for _, ev := range t.events {
		rec := []string{
			fmt.Sprint(ev.Rank),
			ev.Op.String(),
			ev.File,
			fmt.Sprint(ev.Offset),
			fmt.Sprint(ev.Bytes),
			fmt.Sprint(ev.Count),
			fmt.Sprint(int64(ev.T0)),
			fmt.Sprint(int64(ev.T1)),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write csv event: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// csvHeader is the event-log column set WriteCSV emits and ReadCSV
// requires. The format does not carry Stride/Span, so vector access
// detail is lost on a round trip; Profile and Phases still work.
var csvHeader = []string{"rank", "op", "file", "offset", "bytes", "count", "t0_ns", "t1_ns"}

// ParseOp parses an operation name as printed by mpiio.Op.String.
func ParseOp(s string) (mpiio.Op, error) {
	for op := mpiio.OpWrite; op <= mpiio.OpBarrier; op++ {
		if op.String() == s {
			return op, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown op %q", s)
}

// ReadCSV parses an event log written by WriteCSV back into a Tracer,
// so traces captured in one session (or produced by external tools in
// the same format) can be re-analyzed — profiles, phases, timelines —
// without rerunning the application. Malformed input returns an
// error; it never panics.
func ReadCSV(r io.Reader) (*Tracer, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("trace: read csv: empty input")
	}
	if err != nil {
		return nil, fmt.Errorf("trace: read csv header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("trace: csv column %d is %q, want %q", i, header[i], want)
		}
	}
	t := New()
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read csv: %w", err)
		}
		ev, err := parseEvent(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %w", line, err)
		}
		t.Record(ev)
	}
}

func parseEvent(rec []string) (mpiio.Event, error) {
	var ev mpiio.Event
	rank, err := strconv.Atoi(rec[0])
	if err != nil {
		return ev, fmt.Errorf("rank: %w", err)
	}
	if rank < 0 {
		return ev, fmt.Errorf("negative rank %d", rank)
	}
	op, err := ParseOp(rec[1])
	if err != nil {
		return ev, err
	}
	ints := [5]int64{}
	for i, name := range [5]string{"offset", "bytes", "count", "t0_ns", "t1_ns"} {
		v, err := strconv.ParseInt(rec[3+i], 10, 64)
		if err != nil {
			return ev, fmt.Errorf("%s: %w", name, err)
		}
		ints[i] = v
	}
	offset, bytes, count, t0, t1 := ints[0], ints[1], ints[2], ints[3], ints[4]
	switch {
	case offset < -1:
		return ev, fmt.Errorf("offset %d below -1", offset)
	case bytes < 0:
		return ev, fmt.Errorf("negative bytes %d", bytes)
	case count < 0 || count > int64(int(^uint(0)>>1)):
		return ev, fmt.Errorf("count %d out of range", count)
	case t0 < 0 || t1 < t0:
		return ev, fmt.Errorf("bad time span [%d, %d]", t0, t1)
	}
	return mpiio.Event{
		Rank: rank, Op: op, File: rec[2],
		Offset: offset, Bytes: bytes, Count: int(count),
		T0: sim.Time(t0), T1: sim.Time(t1),
	}, nil
}

// PhaseCSV exports the detected phases of every rank
// (rank, kind, mode, ops, bytes, start_ns, end_ns, rate_bps).
func (t *Tracer) PhaseCSV(w io.Writer, ranks int) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rank", "kind", "mode", "ops", "bytes", "start_ns", "end_ns", "rate_bps"}); err != nil {
		return fmt.Errorf("trace: write phase header: %w", err)
	}
	for rank := 0; rank < ranks; rank++ {
		for _, ph := range t.Phases(rank) {
			kind := "write"
			if ph.Kind == mpiio.OpRead {
				kind = "read"
			}
			rec := []string{
				fmt.Sprint(rank), kind, ph.Mode.String(),
				fmt.Sprint(ph.Ops), fmt.Sprint(ph.Bytes),
				fmt.Sprint(int64(ph.Start)), fmt.Sprint(int64(ph.End)),
				fmt.Sprintf("%.0f", ph.TransferRate()),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("trace: write phase row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
