package trace

import (
	"encoding/csv"
	"fmt"
	"io"

	"ioeval/internal/mpiio"
)

// WriteCSV exports the I/O events as CSV for external plotting
// (rank, op, file, offset, bytes, count, t0_ns, t1_ns). Compute,
// communication and barrier events are included so Jumpshot-style
// charts can be rebuilt outside the library.
func (t *Tracer) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rank", "op", "file", "offset", "bytes", "count", "t0_ns", "t1_ns"}); err != nil {
		return fmt.Errorf("trace: write csv header: %w", err)
	}
	for _, ev := range t.events {
		rec := []string{
			fmt.Sprint(ev.Rank),
			ev.Op.String(),
			ev.File,
			fmt.Sprint(ev.Offset),
			fmt.Sprint(ev.Bytes),
			fmt.Sprint(ev.Count),
			fmt.Sprint(int64(ev.T0)),
			fmt.Sprint(int64(ev.T1)),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write csv event: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// PhaseCSV exports the detected phases of every rank
// (rank, kind, mode, ops, bytes, start_ns, end_ns, rate_bps).
func (t *Tracer) PhaseCSV(w io.Writer, ranks int) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rank", "kind", "mode", "ops", "bytes", "start_ns", "end_ns", "rate_bps"}); err != nil {
		return fmt.Errorf("trace: write phase header: %w", err)
	}
	for rank := 0; rank < ranks; rank++ {
		for _, ph := range t.Phases(rank) {
			kind := "write"
			if ph.Kind == mpiio.OpRead {
				kind = "read"
			}
			rec := []string{
				fmt.Sprint(rank), kind, ph.Mode.String(),
				fmt.Sprint(ph.Ops), fmt.Sprint(ph.Bytes),
				fmt.Sprint(int64(ph.Start)), fmt.Sprint(int64(ph.End)),
				fmt.Sprintf("%.0f", ph.TransferRate()),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("trace: write phase row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
