package trace

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"ioeval/internal/mpiio"
)

func TestWriteCSV(t *testing.T) {
	tr := New()
	tr.Record(mk(0, mpiio.OpWrite, 0, mb, 1, 0, 0, 10))
	tr.Record(mk(1, mpiio.OpCompute, -1, 0, 0, 0, 10, 20))
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatalf("csv: %v", err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(recs) != 3 { // header + 2 events
		t.Fatalf("records = %d", len(recs))
	}
	if recs[1][1] != "write" || recs[2][1] != "compute" {
		t.Fatalf("ops = %v %v", recs[1][1], recs[2][1])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := New()
	tr.Record(mk(0, mpiio.OpOpen, -1, 0, 0, 0, 0, 1))
	tr.Record(mk(0, mpiio.OpWrite, 0, mb, 1, 0, 1, 10))
	tr.Record(mk(1, mpiio.OpReadAll, mb, 2*mb, 4, 0, 2, 12))
	tr.Record(mk(1, mpiio.OpCompute, -1, 0, 0, 0, 12, 20))
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got.Events()) != len(tr.Events()) {
		t.Fatalf("events = %d, want %d", len(got.Events()), len(tr.Events()))
	}
	for i, ev := range got.Events() {
		want := tr.Events()[i]
		want.Stride, want.Span = 0, 0 // not carried by the CSV format
		if ev != want {
			t.Fatalf("event %d = %+v, want %+v", i, ev, want)
		}
	}
	// The re-parsed trace must profile identically (modulo vector
	// stride detail the format does not carry).
	gp, wp := got.Profile(), tr.Profile()
	if gp.NumReads != wp.NumReads || gp.NumWrites != wp.NumWrites ||
		gp.BytesRead != wp.BytesRead || gp.BytesWritten != wp.BytesWritten ||
		gp.ExecTime != wp.ExecTime || gp.IOTime != wp.IOTime {
		t.Fatalf("profile drifted: %+v vs %+v", gp, wp)
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad header":    "rank,op,file\n",
		"renamed col":   "rank,operation,file,offset,bytes,count,t0_ns,t1_ns\n",
		"bad rank":      header() + "x,write,/f,0,1,1,0,1\n",
		"negative rank": header() + "-1,write,/f,0,1,1,0,1\n",
		"unknown op":    header() + "0,wrote,/f,0,1,1,0,1\n",
		"bad offset":    header() + "0,write,/f,oops,1,1,0,1\n",
		"low offset":    header() + "0,write,/f,-2,1,1,0,1\n",
		"neg bytes":     header() + "0,write,/f,0,-1,1,0,1\n",
		"neg count":     header() + "0,write,/f,0,1,-1,0,1\n",
		"t1 before t0":  header() + "0,write,/f,0,1,1,5,4\n",
		"short row":     header() + "0,write,/f,0,1\n",
		"long row":      header() + "0,write,/f,0,1,1,0,1,9,9\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error for %q", name, in)
		}
	}
}

func header() string { return "rank,op,file,offset,bytes,count,t0_ns,t1_ns\n" }

func TestPhaseCSV(t *testing.T) {
	tr := New()
	tr.Record(mk(0, mpiio.OpWrite, 0, mb, 1, 0, 0, 10))
	tr.Record(mk(0, mpiio.OpBarrier, -1, 0, 0, 0, 10, 11))
	tr.Record(mk(0, mpiio.OpRead, 0, mb, 1, 0, 11, 20))
	var buf bytes.Buffer
	if err := tr.PhaseCSV(&buf, 1); err != nil {
		t.Fatalf("csv: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "write") || !strings.Contains(out, "read") {
		t.Fatalf("phase csv:\n%s", out)
	}
	recs, _ := csv.NewReader(strings.NewReader(out)).ReadAll()
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
}
