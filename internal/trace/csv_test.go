package trace

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"ioeval/internal/mpiio"
)

func TestWriteCSV(t *testing.T) {
	tr := New()
	tr.Record(mk(0, mpiio.OpWrite, 0, mb, 1, 0, 0, 10))
	tr.Record(mk(1, mpiio.OpCompute, -1, 0, 0, 0, 10, 20))
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatalf("csv: %v", err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(recs) != 3 { // header + 2 events
		t.Fatalf("records = %d", len(recs))
	}
	if recs[1][1] != "write" || recs[2][1] != "compute" {
		t.Fatalf("ops = %v %v", recs[1][1], recs[2][1])
	}
}

func TestPhaseCSV(t *testing.T) {
	tr := New()
	tr.Record(mk(0, mpiio.OpWrite, 0, mb, 1, 0, 0, 10))
	tr.Record(mk(0, mpiio.OpBarrier, -1, 0, 0, 0, 10, 11))
	tr.Record(mk(0, mpiio.OpRead, 0, mb, 1, 0, 11, 20))
	var buf bytes.Buffer
	if err := tr.PhaseCSV(&buf, 1); err != nil {
		t.Fatalf("csv: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "write") || !strings.Contains(out, "read") {
		t.Fatalf("phase csv:\n%s", out)
	}
	recs, _ := csv.NewReader(strings.NewReader(out)).ReadAll()
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
}
