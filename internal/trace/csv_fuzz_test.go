package trace

import (
	"bytes"
	"testing"
)

// FuzzReadCSV drives the event-log parser with arbitrary bytes:
// malformed input must return an error — never panic — and input that
// parses must survive a write/re-read round trip and derive a profile
// without panicking. Seed corpus under testdata/fuzz/FuzzReadCSV;
// run the fuzzer with
//
//	go test -fuzz=FuzzReadCSV ./internal/trace
func FuzzReadCSV(f *testing.F) {
	head := "rank,op,file,offset,bytes,count,t0_ns,t1_ns\n"
	f.Add([]byte(""))
	f.Add([]byte(head))
	f.Add([]byte(head + "0,write,/f,0,1048576,1,0,1000\n1,read_all,/f,0,2097152,4,1000,2000\n"))
	f.Add([]byte(head + "0,compute,,-1,0,0,0,10\n"))
	f.Add([]byte(head + "0,wrote,/f,0,1,1,0,1\n"))
	f.Add([]byte(head + "0,write,/f,0,1,1,5,4\n"))
	f.Add([]byte(head + "9223372036854775807,write,/f,0,1,1,0,1\n"))
	f.Add([]byte("rank,op\n0,write\n"))
	f.Add([]byte("\"unterminated"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return // malformed input rejected cleanly
		}
		// Accepted input must be well-formed enough for every consumer.
		_ = tr.Profile()
		for rank := 0; rank < 4; rank++ {
			_ = tr.Phases(rank)
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("re-serialize accepted trace: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-parse own output: %v", err)
		}
		if len(again.Events()) != len(tr.Events()) {
			t.Fatalf("round trip lost events: %d -> %d", len(tr.Events()), len(again.Events()))
		}
	})
}
