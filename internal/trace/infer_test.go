package trace_test

import (
	"reflect"
	"strings"
	"testing"

	"ioeval/internal/cluster"
	"ioeval/internal/mpiio"
	"ioeval/internal/sim"
	"ioeval/internal/trace"
	"ioeval/internal/workload"
	"ioeval/internal/workload/btio"
	"ioeval/internal/workload/madbench"
	"ioeval/internal/workload/synth"
)

func runForInfer(t *testing.T, app workload.App) (workload.Result, *trace.Tracer) {
	t.Helper()
	tr := trace.New()
	res, err := app.Run(cluster.Aohyper(cluster.RAID5), tr)
	if err != nil {
		t.Fatalf("%s: run: %v", app.Name(), err)
	}
	return res, tr
}

// assertInferReplayExact covers the lossless corner of inference:
// when every I/O event is a single contiguous access (MADbench2's
// shape), the inferred spec must replay with a byte- and
// timestamp-identical timeline.
func assertInferReplayExact(t *testing.T, app workload.App) {
	t.Helper()
	_, handTr := runForInfer(t, app)

	spec, err := trace.InferSpec(handTr, app.Name())
	if err != nil {
		t.Fatalf("infer: %v", err)
	}
	replay, err := synth.Compile(spec)
	if err != nil {
		t.Fatalf("compile inferred spec: %v", err)
	}
	_, replayTr := runForInfer(t, replay)

	he, re := handTr.Events(), replayTr.Events()
	if len(he) != len(re) {
		t.Fatalf("event count: hand %d, replay %d", len(he), len(re))
	}
	for i := range he {
		if he[i] != re[i] {
			t.Fatalf("event %d diverges:\nhand:   %+v\nreplay: %+v", i, he[i], re[i])
		}
	}
}

// assertInferReplayBytes covers the lossy corner: non-uniform vector
// and collective accesses replay as approximated layouts, but the
// operation profile (op counts, transfer sizes, total bytes) must
// still match the original exactly.
func assertInferReplayBytes(t *testing.T, app workload.App) {
	t.Helper()
	handRes, handTr := runForInfer(t, app)

	spec, err := trace.InferSpec(handTr, app.Name())
	if err != nil {
		t.Fatalf("infer: %v", err)
	}
	replay, err := synth.Compile(spec)
	if err != nil {
		t.Fatalf("compile inferred spec: %v", err)
	}
	replayRes, replayTr := runForInfer(t, replay)

	if handRes.BytesRead != replayRes.BytesRead || handRes.BytesWritten != replayRes.BytesWritten {
		t.Errorf("bytes diverge: hand r=%d w=%d, replay r=%d w=%d",
			handRes.BytesRead, handRes.BytesWritten, replayRes.BytesRead, replayRes.BytesWritten)
	}
	// The replayed layout is approximated, so timing differs; every
	// structural field of the profile must survive.
	hp, rp := handTr.Profile(), replayTr.Profile()
	hp.ExecTime, rp.ExecTime = 0, 0
	hp.IOTime, rp.IOTime = 0, 0
	if !reflect.DeepEqual(hp, rp) {
		t.Errorf("profile diverges:\nhand:   %+v\nreplay: %+v", hp, rp)
	}
}

func TestInferSpecMadbenchSharedExact(t *testing.T) {
	assertInferReplayExact(t, madbench.New(madbench.Config{
		Procs: 4, KPix: 1, Bins: 2, FileType: madbench.Shared,
		BusyWork: 5 * sim.Millisecond,
	}))
}

func TestInferSpecMadbenchUniqueExact(t *testing.T) {
	assertInferReplayExact(t, madbench.New(madbench.Config{
		Procs: 4, KPix: 1, Bins: 2, FileType: madbench.Unique,
	}))
}

func TestInferSpecMadbenchAsyncExact(t *testing.T) {
	assertInferReplayExact(t, madbench.New(madbench.Config{
		Procs: 4, KPix: 1, Bins: 2, FileType: madbench.Shared, AsyncWrites: true,
	}))
}

func TestInferSpecBTIOSimpleProfile(t *testing.T) {
	cfg := btio.Config{
		Class: btio.Class{Name: "Q", N: 64, Steps: 20, WriteInterval: 5},
		Procs: 4, Subtype: btio.Simple,
	}
	assertInferReplayBytes(t, btio.New(cfg))
}

func TestInferSpecBTIOFullProfile(t *testing.T) {
	cfg := btio.Config{
		Class: btio.Class{Name: "Q", N: 64, Steps: 20, WriteInterval: 5},
		Procs: 4, Subtype: btio.Full,
	}
	assertInferReplayBytes(t, btio.New(cfg))
}

// TestInferSpecRollsLoops pins the compression step: BT-IO's dump and
// readback iterations must come back as looped phases with the dump
// stride, not as unrolled step lists.
func TestInferSpecRollsLoops(t *testing.T) {
	cfg := btio.Config{
		Class: btio.Class{Name: "Q", N: 64, Steps: 20, WriteInterval: 5},
		Procs: 4, Subtype: btio.Simple,
	}
	app := btio.New(cfg)
	_, tr := runForInfer(t, app)
	spec, err := trace.InferSpec(tr, app.Name())
	if err != nil {
		t.Fatalf("infer: %v", err)
	}
	dumps := cfg.Class.Steps / cfg.Class.WriteInterval
	if len(spec.Phases) != 3 {
		t.Fatalf("phases = %d, want 3 (dump loop, barrier, readback loop):\n%+v", len(spec.Phases), spec.Phases)
	}
	if spec.Phases[0].Loop != dumps {
		t.Errorf("dump phase loop = %d, want %d", spec.Phases[0].Loop, dumps)
	}
	if spec.Phases[2].Loop != dumps {
		t.Errorf("readback phase loop = %d, want %d", spec.Phases[2].Loop, dumps)
	}
	for _, ph := range []synth.PhaseSpec{spec.Phases[0], spec.Phases[2]} {
		for _, st := range ph.Steps {
			if st.Op == synth.OpWrite || st.Op == synth.OpRead {
				if st.LoopStrideBytes != app.DumpBytes() {
					t.Errorf("%s loop stride = %d, want dump size %d", st.Op, st.LoopStrideBytes, app.DumpBytes())
				}
			}
		}
	}
}

// TestInferSpecPerRankFiles pins UNIQUE-layout detection: np files
// named prefix.%04d, each touched by one rank, collapse to a single
// per-rank FileSpec with the prefix as path.
func TestInferSpecPerRankFiles(t *testing.T) {
	app := madbench.New(madbench.Config{Procs: 4, KPix: 1, Bins: 2, FileType: madbench.Unique})
	_, tr := runForInfer(t, app)
	spec, err := trace.InferSpec(tr, app.Name())
	if err != nil {
		t.Fatalf("infer: %v", err)
	}
	if len(spec.Files) != 1 {
		t.Fatalf("files = %+v, want one per-rank file", spec.Files)
	}
	f := spec.Files[0]
	if !f.PerRank {
		t.Errorf("file %+v not detected as per-rank", f)
	}
	if strings.HasSuffix(f.Path, ".0000") {
		t.Errorf("path %q still carries a rank suffix", f.Path)
	}
}

// TestInferSpecErrors: traces inference cannot express fail loudly.
func TestInferSpecErrors(t *testing.T) {
	t.Run("empty trace", func(t *testing.T) {
		if _, err := trace.InferSpec(trace.New(), "x"); err == nil {
			t.Fatal("accepted empty trace")
		}
	})
	t.Run("non-contiguous ranks", func(t *testing.T) {
		tr := trace.New()
		tr.Record(mpiio.Event{Rank: 0, Op: mpiio.OpWrite, File: "/f", Offset: 0, Bytes: 8, Count: 1, T0: 0, T1: 1})
		tr.Record(mpiio.Event{Rank: 2, Op: mpiio.OpWrite, File: "/f", Offset: 8, Bytes: 8, Count: 1, T0: 0, T1: 1})
		if _, err := trace.InferSpec(tr, "x"); err == nil || !strings.Contains(err.Error(), "contiguous") {
			t.Fatalf("want non-contiguous rank error, got %v", err)
		}
	})
	t.Run("divergent ranks", func(t *testing.T) {
		tr := trace.New()
		tr.Record(mpiio.Event{Rank: 0, Op: mpiio.OpWrite, File: "/f", Offset: 0, Bytes: 8, Count: 1, T0: 0, T1: 1})
		tr.Record(mpiio.Event{Rank: 1, Op: mpiio.OpRead, File: "/f", Offset: 0, Bytes: 8, Count: 1, T0: 0, T1: 1})
		if _, err := trace.InferSpec(tr, "x"); err == nil || !strings.Contains(err.Error(), "diverges") {
			t.Fatalf("want congruence error, got %v", err)
		}
	})
	t.Run("no file operations", func(t *testing.T) {
		tr := trace.New()
		tr.Record(mpiio.Event{Rank: 0, Op: mpiio.OpCompute, Offset: -1, T0: 0, T1: 10})
		if _, err := trace.InferSpec(tr, "x"); err == nil || !strings.Contains(err.Error(), "no file") {
			t.Fatalf("want no-file error, got %v", err)
		}
	})
}

// TestInferSpecVectorRemainder: a vector event whose bytes do not
// divide evenly by its count must still replay byte- and count-exact
// (mean-size blocks plus a widened final block).
func TestInferSpecVectorRemainder(t *testing.T) {
	tr := trace.New()
	tr.Record(mpiio.Event{Rank: 0, Op: mpiio.OpWrite, File: "/f", Offset: 0, Bytes: 10, Count: 3, T0: 0, T1: 1})
	spec, err := trace.InferSpec(tr, "rem")
	if err != nil {
		t.Fatalf("infer: %v", err)
	}
	_, written := spec.DeclaredBytes()
	if written != 10 {
		t.Errorf("declared written = %d, want 10", written)
	}
	st := spec.Phases[0].Steps[0]
	elems := int64(0)
	for _, a := range st.PerRankAccess[0] {
		elems += a.Elements()
	}
	if elems != 3 {
		t.Errorf("replay elements = %d, want 3:\n%+v", elems, st.PerRankAccess[0])
	}
	if _, err := synth.Compile(spec); err != nil {
		t.Fatalf("compile: %v", err)
	}
}
