package trace

import (
	"testing"

	"ioeval/internal/mpiio"
	"ioeval/internal/sim"
	"ioeval/internal/telemetry"
)

// Drive a PhaseSnapshotter with a synthetic write→compute→read run and
// check that the intervals tile the timeline and their deltas sum to
// the run totals.
func TestPhaseSnapshotterIntervals(t *testing.T) {
	eng := sim.NewEngine()
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(eng, "disk:x", telemetry.LevelDevice, 1)
	reg.Register(rec)

	inner := New()
	ps := NewPhaseSnapshotter(eng, reg, inner, 0)

	ev := func(p *sim.Proc, op mpiio.Op, bytes int64, d sim.Duration) {
		t0 := p.Now()
		p.Sleep(d)
		if op.IsIO() {
			class := telemetry.ClassWrite
			if op == mpiio.OpRead || op == mpiio.OpReadAll {
				class = telemetry.ClassRead
			}
			rec.Observe(class, 1, bytes, d)
		}
		ps.Record(mpiio.Event{Rank: 0, Op: op, Bytes: bytes, Count: 1, T0: t0, T1: p.Now()})
	}

	eng.Spawn("driver", func(p *sim.Proc) {
		ev(p, mpiio.OpWrite, 100, 10*sim.Millisecond)
		ev(p, mpiio.OpWrite, 200, 10*sim.Millisecond)
		ev(p, mpiio.OpCompute, 0, 5*sim.Millisecond) // boundary: closes write phase
		ev(p, mpiio.OpRead, 300, 20*sim.Millisecond)
		ev(p, mpiio.OpCompute, 0, 5*sim.Millisecond) // boundary: closes read phase
		ev(p, mpiio.OpWrite, 50, 10*sim.Millisecond) // closed by Finish
	})
	end := eng.Run()
	ivs := ps.Finish()

	if len(ivs) != 3 {
		t.Fatalf("intervals = %d: %+v", len(ivs), ivs)
	}
	if ivs[0].Kind != "write" || ivs[1].Kind != "read" || ivs[2].Kind != "write" {
		t.Fatalf("kinds = %q %q %q", ivs[0].Kind, ivs[1].Kind, ivs[2].Kind)
	}

	// Intervals must tile [0, end] with no gaps.
	if ivs[0].Start != 0 {
		t.Fatalf("first interval starts at %v", ivs[0].Start)
	}
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Start != ivs[i-1].End {
			t.Fatalf("gap between interval %d and %d: %v != %v", i-1, i, ivs[i-1].End, ivs[i].Start)
		}
	}
	if ivs[len(ivs)-1].End != end {
		t.Fatalf("last interval ends at %v, run ended at %v", ivs[len(ivs)-1].End, end)
	}

	// Per-component deltas must sum to the run totals, with no
	// negative counters anywhere.
	var sum telemetry.Counters
	for _, iv := range ivs {
		for _, s := range iv.Snaps {
			c := s.Counters
			for _, o := range []telemetry.OpCounters{c.Read, c.Write, c.Meta} {
				if o.Ops < 0 || o.Bytes < 0 || o.Busy < 0 {
					t.Fatalf("negative counters in interval %q: %+v", iv.Label, c)
				}
			}
			sum.Read.Ops += c.Read.Ops
			sum.Read.Bytes += c.Read.Bytes
			sum.Read.Busy += c.Read.Busy
			sum.Write.Ops += c.Write.Ops
			sum.Write.Bytes += c.Write.Bytes
			sum.Write.Busy += c.Write.Busy
		}
	}
	total := rec.Snapshot().Counters
	if sum.Write.Ops != total.Write.Ops || sum.Write.Bytes != total.Write.Bytes || sum.Write.Busy != total.Write.Busy {
		t.Fatalf("write deltas sum %+v != totals %+v", sum.Write, total.Write)
	}
	if sum.Read.Ops != total.Read.Ops || sum.Read.Bytes != total.Read.Bytes {
		t.Fatalf("read deltas sum %+v != totals %+v", sum.Read, total.Read)
	}

	// The inner tracer still received every event.
	if got := len(inner.Events()); got != 6 {
		t.Fatalf("inner tracer saw %d events", got)
	}
}

// Events from other ranks are forwarded but never trigger snapshots.
func TestPhaseSnapshotterFiltersRank(t *testing.T) {
	eng := sim.NewEngine()
	reg := telemetry.NewRegistry()
	ps := NewPhaseSnapshotter(eng, reg, nil, 0)
	eng.Spawn("driver", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		ps.Record(mpiio.Event{Rank: 1, Op: mpiio.OpWrite, Bytes: 10, Count: 1})
		p.Sleep(sim.Millisecond)
		ps.Record(mpiio.Event{Rank: 1, Op: mpiio.OpCompute})
	})
	eng.Run()
	if n := len(ps.Intervals()); n != 0 {
		t.Fatalf("rank-filtered snapshotter emitted %d intervals", n)
	}
	// Finish with no time elapsed since the last boundary at t=0 would
	// be a zero interval; here time passed, so the tail is emitted.
	ivs := ps.Finish()
	if len(ivs) != 1 || ivs[0].Label != "tail" {
		t.Fatalf("tail = %+v", ivs)
	}
}
