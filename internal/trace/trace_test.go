package trace

import (
	"strings"
	"testing"

	"ioeval/internal/mpiio"
	"ioeval/internal/sim"
)

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
)

// mk builds an event quickly.
func mk(rank int, op mpiio.Op, off, bytes int64, count int, stride int64, t0, t1 sim.Time) mpiio.Event {
	return mpiio.Event{Rank: rank, Op: op, File: "/f", Offset: off, Bytes: bytes,
		Count: count, Stride: stride, T0: t0, T1: t1}
}

func TestProfileCounts(t *testing.T) {
	tr := New()
	tr.Record(mk(0, mpiio.OpOpen, -1, 0, 1, 0, 0, 10))
	tr.Record(mk(1, mpiio.OpOpen, -1, 0, 1, 0, 0, 10))
	tr.Record(mk(0, mpiio.OpWrite, 0, 10*mb, 1, 0, 10, 110))
	tr.Record(mk(1, mpiio.OpWrite, 10*mb, 10*mb, 1, 0, 10, 120))
	tr.Record(mk(0, mpiio.OpRead, 0, 2*mb, 2, mb, 120, 150))
	tr.Record(mk(0, mpiio.OpClose, -1, 0, 1, 0, 150, 151))
	p := tr.Profile()
	if p.NumProcs != 2 || p.NumFiles != 1 {
		t.Fatalf("procs=%d files=%d", p.NumProcs, p.NumFiles)
	}
	if p.NumWrites != 2 || p.NumReads != 2 {
		t.Fatalf("writes=%d reads=%d", p.NumWrites, p.NumReads)
	}
	if p.NumOpens != 2 || p.NumCloses != 1 {
		t.Fatalf("opens=%d closes=%d", p.NumOpens, p.NumCloses)
	}
	if p.BytesWritten != 20*mb || p.BytesRead != 2*mb {
		t.Fatalf("bytes: w=%d r=%d", p.BytesWritten, p.BytesRead)
	}
	// Write block size: 10MB ×2; read block size: 1MB ×2 (vector of 2).
	if p.WriteBlockSizes[0].Bytes != 10*mb || p.WriteBlockSizes[0].Count != 2 {
		t.Fatalf("write sizes: %+v", p.WriteBlockSizes)
	}
	if p.ReadBlockSizes[0].Bytes != mb || p.ReadBlockSizes[0].Count != 2 {
		t.Fatalf("read sizes: %+v", p.ReadBlockSizes)
	}
	if p.ExecTime != 151 {
		t.Fatalf("exec time = %v", p.ExecTime)
	}
	// Rank 0 I/O time = 100 + 30 = 130; rank 1 = 110. Max = 130.
	if p.IOTime != 130 {
		t.Fatalf("io time = %v", p.IOTime)
	}
}

func TestPhasesSplitOnCompute(t *testing.T) {
	tr := New()
	// write, write (one phase) | compute | write (second phase) | read phase
	tr.Record(mk(0, mpiio.OpWrite, 0, mb, 1, 0, 0, 10))
	tr.Record(mk(0, mpiio.OpWrite, mb, mb, 1, 0, 10, 20))
	tr.Record(mk(0, mpiio.OpCompute, -1, 0, 0, 0, 20, 50))
	tr.Record(mk(0, mpiio.OpWrite, 2*mb, mb, 1, 0, 50, 60))
	tr.Record(mk(0, mpiio.OpRead, 0, 3*mb, 1, 0, 60, 90))
	phases := tr.Phases(0)
	if len(phases) != 3 {
		t.Fatalf("phases = %d, want 3: %+v", len(phases), phases)
	}
	if phases[0].Kind != mpiio.OpWrite || phases[0].Ops != 2 || phases[0].Bytes != 2*mb {
		t.Fatalf("phase 0 = %+v", phases[0])
	}
	if phases[1].Kind != mpiio.OpWrite || phases[1].Ops != 1 {
		t.Fatalf("phase 1 = %+v", phases[1])
	}
	if phases[2].Kind != mpiio.OpRead {
		t.Fatalf("phase 2 = %+v", phases[2])
	}
}

func TestPhaseKindChangeSplits(t *testing.T) {
	tr := New()
	tr.Record(mk(0, mpiio.OpWrite, 0, mb, 1, 0, 0, 10))
	tr.Record(mk(0, mpiio.OpRead, 0, mb, 1, 0, 10, 20))
	tr.Record(mk(0, mpiio.OpWrite, mb, mb, 1, 0, 20, 30))
	if n := len(tr.Phases(0)); n != 3 {
		t.Fatalf("phases = %d, want 3", n)
	}
}

func TestAccessModeDetection(t *testing.T) {
	tr := New()
	// Sequential: back-to-back offsets.
	tr.Record(mk(0, mpiio.OpWrite, 0, mb, 1, 0, 0, 10))
	tr.Record(mk(0, mpiio.OpWrite, mb, mb, 1, 0, 10, 20))
	tr.Record(mk(0, mpiio.OpBarrier, -1, 0, 0, 0, 20, 21))
	// Strided vector: stride 16KB over 1.6KB records.
	tr.Record(mk(0, mpiio.OpWrite, 0, 160*kb, 100, 16*kb, 21, 50))
	tr.Record(mk(0, mpiio.OpBarrier, -1, 0, 0, 0, 50, 51))
	// Strided singles: non-contiguous offsets.
	tr.Record(mk(0, mpiio.OpRead, 0, kb, 1, 0, 51, 52))
	tr.Record(mk(0, mpiio.OpRead, 100*kb, kb, 1, 0, 52, 53))
	phases := tr.Phases(0)
	if len(phases) != 3 {
		t.Fatalf("phases = %d: %+v", len(phases), phases)
	}
	if phases[0].Mode != Sequential {
		t.Fatalf("phase 0 mode = %v", phases[0].Mode)
	}
	if phases[1].Mode != Strided {
		t.Fatalf("phase 1 mode = %v", phases[1].Mode)
	}
	if phases[2].Mode != Strided {
		t.Fatalf("phase 2 mode = %v", phases[2].Mode)
	}
}

func TestSignatureWeights(t *testing.T) {
	tr := New()
	// 40 repetitions of the same write phase + 1 read phase — the NAS
	// BT-IO full structure.
	tm := sim.Time(0)
	for i := 0; i < 40; i++ {
		tr.Record(mk(0, mpiio.OpCompute, -1, 0, 0, 0, tm, tm+100))
		tm += 100
		tr.Record(mk(0, mpiio.OpWrite, int64(i)*10*mb, 10*mb, 1, 0, tm, tm+50))
		tm += 50
	}
	for i := 0; i < 40; i++ {
		tr.Record(mk(0, mpiio.OpRead, int64(i)*10*mb, 10*mb, 1, 0, tm, tm+30))
		tm += 30
	}
	sig := tr.Signature(0)
	if len(sig) != 2 {
		t.Fatalf("signature entries = %d, want 2: %+v", len(sig), sig)
	}
	if sig[0].Phase.Kind != mpiio.OpWrite || sig[0].Weight != 40 {
		t.Fatalf("write entry = %+v", sig[0])
	}
	if sig[1].Phase.Kind != mpiio.OpRead || sig[1].Weight != 1 {
		t.Fatalf("read entry = %+v", sig[1])
	}
	if sig[1].Phase.Ops != 40 {
		t.Fatalf("read phase ops = %d, want 40", sig[1].Phase.Ops)
	}
}

func TestPhaseTransferRate(t *testing.T) {
	ph := Phase{Bytes: 100 * mb, Start: 0, End: sim.Time(sim.Second)}
	if r := ph.TransferRate(); r < 104e6 || r > 105e6 {
		t.Fatalf("rate = %f", r)
	}
	zero := Phase{Bytes: mb}
	if zero.TransferRate() != 0 {
		t.Fatal("zero-duration phase must have rate 0")
	}
}

func TestTimelineRender(t *testing.T) {
	tr := New()
	tr.Record(mk(0, mpiio.OpCompute, -1, 0, 0, 0, 0, 50))
	tr.Record(mk(0, mpiio.OpWrite, 0, mb, 1, 0, 50, 100))
	tr.Record(mk(1, mpiio.OpRead, 0, mb, 1, 0, 0, 100))
	out := Timeline{Width: 20}.Render(tr.Events())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "C") || !strings.Contains(lines[1], "W") {
		t.Fatalf("rank 0 lane missing C/W: %q", lines[1])
	}
	if strings.Count(lines[2], "R") != 20 {
		t.Fatalf("rank 1 lane should be all R: %q", lines[2])
	}
}

func TestTimelineEmpty(t *testing.T) {
	out := Timeline{}.Render(nil)
	if !strings.Contains(out, "no events") {
		t.Fatalf("empty render = %q", out)
	}
}

func TestReset(t *testing.T) {
	tr := New()
	tr.Record(mk(0, mpiio.OpWrite, 0, mb, 1, 0, 0, 10))
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Fatal("reset did not clear events")
	}
}
