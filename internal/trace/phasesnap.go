package trace

import (
	"fmt"

	"ioeval/internal/mpiio"
	"ioeval/internal/sim"
	"ioeval/internal/telemetry"
)

// PhaseSnapshotter is an mpiio.Tracer that, in addition to forwarding
// every event to an inner tracer, snapshots a telemetry registry at
// the phase boundaries of one observer rank — giving each application
// phase (Tables III/IV/VIII) measured per-level counters instead of
// run-wide averages.
//
// Boundary classification mirrors Tracer.Phases: a phase is a maximal
// run of same-kind I/O events; compute, communication, barriers and
// closes end it; opens and syncs are neutral. Because events are
// reported at their end time, a boundary snapshot is taken at the end
// of the event that revealed the boundary, so that event's own time
// smears into the interval it closes — the price of online detection.
//
// The emitted intervals are contiguous from t=0 to the last Finish or
// boundary: with monotonic counters, the per-component deltas of all
// intervals sum exactly to the run totals.
type PhaseSnapshotter struct {
	eng   *sim.Engine
	reg   *telemetry.Registry
	inner mpiio.Tracer
	rank  int

	prev      []telemetry.Snapshot
	prevAt    sim.Time
	inPhase   bool
	curKind   mpiio.Op
	nPhases   int
	intervals []telemetry.PhaseInterval
}

var _ mpiio.Tracer = (*PhaseSnapshotter)(nil)

// NewPhaseSnapshotter wraps inner (which may be nil), snapshotting
// reg at the phase boundaries of the given observer rank.
func NewPhaseSnapshotter(eng *sim.Engine, reg *telemetry.Registry, inner mpiio.Tracer, rank int) *PhaseSnapshotter {
	return &PhaseSnapshotter{eng: eng, reg: reg, inner: inner, rank: rank}
}

// Record implements mpiio.Tracer.
func (ps *PhaseSnapshotter) Record(ev mpiio.Event) {
	if ps.inner != nil {
		ps.inner.Record(ev)
	}
	if ev.Rank != ps.rank {
		return
	}
	switch ev.Op {
	case mpiio.OpRead, mpiio.OpReadAll, mpiio.OpWrite, mpiio.OpWriteAll:
		kind := mpiio.OpWrite
		if ev.Op == mpiio.OpRead || ev.Op == mpiio.OpReadAll {
			kind = mpiio.OpRead
		}
		if ps.inPhase && kind != ps.curKind {
			ps.emit(ps.phaseLabel(), ps.phaseKind())
		}
		if !ps.inPhase || kind != ps.curKind {
			ps.inPhase = true
			ps.curKind = kind
			ps.nPhases++
		}
	case mpiio.OpOpen, mpiio.OpSync:
		// Neutral: neither extend nor break a phase.
	default:
		// Compute, communication, barrier, close: phase boundary.
		if ps.inPhase {
			ps.emit(ps.phaseLabel(), ps.phaseKind())
			ps.inPhase = false
		}
	}
}

func (ps *PhaseSnapshotter) phaseLabel() string {
	return fmt.Sprintf("phase-%d", ps.nPhases)
}

func (ps *PhaseSnapshotter) phaseKind() string {
	if ps.curKind == mpiio.OpRead {
		return "read"
	}
	return "write"
}

// emit closes the interval [prevAt, now] with the registry's current
// deltas. Zero-length intervals are skipped without consuming the
// pending counters, which then roll into the next interval.
func (ps *PhaseSnapshotter) emit(label, kind string) {
	now := ps.eng.Now()
	if now == ps.prevAt {
		return
	}
	cur := ps.reg.Snapshots()
	snaps := cur
	if ps.prev != nil {
		snaps = telemetry.Sub(cur, ps.prev)
	}
	ps.intervals = append(ps.intervals, telemetry.PhaseInterval{
		Label: label,
		Kind:  kind,
		Start: ps.prevAt,
		End:   now,
		Snaps: snaps,
	})
	ps.prev = cur
	ps.prevAt = now
}

// Finish closes the trailing interval (the time after the last
// detected boundary) and returns all intervals. Safe to call when no
// time has passed since the last boundary.
func (ps *PhaseSnapshotter) Finish() []telemetry.PhaseInterval {
	if ps.inPhase {
		ps.emit(ps.phaseLabel(), ps.phaseKind())
		ps.inPhase = false
	} else {
		ps.emit("tail", "")
	}
	return ps.intervals
}

// Intervals returns the intervals emitted so far.
func (ps *PhaseSnapshotter) Intervals() []telemetry.PhaseInterval { return ps.intervals }
