package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"ioeval/internal/mpiio"
)

// Trace logs are serialized as JSON Lines: one event per line, with a
// header line first. The format is the library's analogue of the
// PAS2P trace log: it lets runs be captured once and analyzed offline
// (profiles, phases, signatures, timelines) or diffed across
// configurations.

// traceHeader identifies the format.
type traceHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Events  int    `json:"events"`
}

const traceFormat = "ioeval-trace"

// WriteJSON serializes the captured events to w.
func (t *Tracer) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceHeader{Format: traceFormat, Version: 1, Events: len(t.events)}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for i := range t.events {
		if err := enc.Encode(&t.events[i]); err != nil {
			return fmt.Errorf("trace: write event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSON loads a serialized trace.
func ReadJSON(r io.Reader) (*Tracer, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr traceHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if hdr.Format != traceFormat {
		return nil, fmt.Errorf("trace: unexpected format %q", hdr.Format)
	}
	if hdr.Version != 1 {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr.Version)
	}
	t := New()
	if hdr.Events > 0 {
		t.events = make([]mpiio.Event, 0, hdr.Events)
	}
	for {
		var ev mpiio.Event
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: read event %d: %w", len(t.events), err)
		}
		t.events = append(t.events, ev)
	}
	if hdr.Events != len(t.events) {
		return nil, fmt.Errorf("trace: header says %d events, read %d", hdr.Events, len(t.events))
	}
	return t, nil
}
