// Package trace is the simulation analogue of the paper's PAS2P
// tracing extension (libpas2p_io.so): it captures every MPI-IO-level
// event, derives the application's I/O characterization (the paper's
// Tables II, V and VIII — operation counts, block sizes, opens,
// processes), detects the application's repetitive I/O phases with
// their weights, and renders Jumpshot-style timelines (Figs. 8 and
// 16).
package trace

import (
	"fmt"
	"sort"

	"ioeval/internal/mpiio"
	"ioeval/internal/sim"
)

// AccessMode classifies a phase's access pattern, the key the
// methodology uses to search characterized performance tables.
type AccessMode int

// Access modes per the paper's Table I.
const (
	Sequential AccessMode = iota
	Strided
	Random
)

func (m AccessMode) String() string {
	switch m {
	case Sequential:
		return "sequential"
	case Strided:
		return "strided"
	case Random:
		return "random"
	}
	return fmt.Sprintf("AccessMode(%d)", int(m))
}

// Tracer records mpiio events. It implements mpiio.Tracer.
type Tracer struct {
	events []mpiio.Event
}

var _ mpiio.Tracer = (*Tracer)(nil)

// New returns an empty tracer.
func New() *Tracer { return &Tracer{} }

// Record implements mpiio.Tracer.
func (t *Tracer) Record(ev mpiio.Event) { t.events = append(t.events, ev) }

// Events returns the raw event log in capture order.
func (t *Tracer) Events() []mpiio.Event { return t.events }

// Reset discards all captured events.
func (t *Tracer) Reset() { t.events = nil }

// BlockSizeCount is one observed operation size and its frequency.
type BlockSizeCount struct {
	Bytes int64
	Count int64
}

// Profile is the application characterization in the paper's table
// shape (Tables II, V, VIII).
type Profile struct {
	NumProcs  int
	NumFiles  int
	NumReads  int64 // application-level read operations
	NumWrites int64
	NumOpens  int64
	NumCloses int64

	BytesRead    int64
	BytesWritten int64

	// Distinct operation sizes, most frequent first (the paper reports
	// e.g. "1.56KB and 1.6KB" for BT-IO simple).
	ReadBlockSizes  []BlockSizeCount
	WriteBlockSizes []BlockSizeCount

	// Wall-clock style aggregates over the traced run.
	ExecTime sim.Duration // first event start to last event end
	IOTime   sim.Duration // max per-rank sum of I/O event durations
}

// Profile derives the characterization from the captured events.
func (t *Tracer) Profile() Profile {
	var p Profile
	ranks := map[int]bool{}
	files := map[string]bool{}
	readSizes := map[int64]int64{}
	writeSizes := map[int64]int64{}
	ioTime := map[int]sim.Duration{}
	var tMin, tMax sim.Time
	first := true

	for _, ev := range t.events {
		ranks[ev.Rank] = true
		if ev.File != "" {
			files[ev.File] = true
		}
		if first || ev.T0 < tMin {
			tMin = ev.T0
		}
		if first || ev.T1 > tMax {
			tMax = ev.T1
		}
		first = false
		switch ev.Op {
		case mpiio.OpOpen:
			p.NumOpens += int64(ev.Count)
		case mpiio.OpClose:
			p.NumCloses += int64(ev.Count)
		case mpiio.OpRead, mpiio.OpReadAll:
			p.NumReads += int64(ev.Count)
			p.BytesRead += ev.Bytes
			readSizes[opSize(ev)] += int64(ev.Count)
			ioTime[ev.Rank] += sim.Duration(ev.T1 - ev.T0)
		case mpiio.OpWrite, mpiio.OpWriteAll:
			p.NumWrites += int64(ev.Count)
			p.BytesWritten += ev.Bytes
			writeSizes[opSize(ev)] += int64(ev.Count)
			ioTime[ev.Rank] += sim.Duration(ev.T1 - ev.T0)
		}
	}
	p.NumProcs = len(ranks)
	p.NumFiles = len(files)
	p.ReadBlockSizes = sortedSizes(readSizes)
	p.WriteBlockSizes = sortedSizes(writeSizes)
	if !first {
		p.ExecTime = sim.Duration(tMax - tMin)
	}
	for _, d := range ioTime {
		if d > p.IOTime {
			p.IOTime = d
		}
	}
	return p
}

// opSize is the per-operation payload of an event (vector events
// carry Count operations totalling Bytes).
func opSize(ev mpiio.Event) int64 {
	if ev.Count <= 1 {
		return ev.Bytes
	}
	return ev.Bytes / int64(ev.Count)
}

func sortedSizes(m map[int64]int64) []BlockSizeCount {
	out := make([]BlockSizeCount, 0, len(m))
	for b, c := range m {
		out = append(out, BlockSizeCount{Bytes: b, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Bytes < out[j].Bytes
	})
	return out
}

// Phase is one detected I/O phase of a rank: a maximal run of
// same-kind I/O events uninterrupted by compute, communication or
// barriers.
type Phase struct {
	Kind       mpiio.Op // OpWrite or OpRead (collectives normalized)
	Ops        int64
	Bytes      int64
	Mode       AccessMode
	Start, End sim.Time
}

// Duration returns the phase's wall time.
func (ph Phase) Duration() sim.Duration { return sim.Duration(ph.End - ph.Start) }

// TransferRate returns the phase's achieved rate in bytes/second.
func (ph Phase) TransferRate() float64 {
	d := ph.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return float64(ph.Bytes) / d
}

// Phases detects the I/O phases of one rank in event order.
func (t *Tracer) Phases(rank int) []Phase {
	var phases []Phase
	var cur *Phase
	var lastEnd int64 = -1 // last byte offset+len, for mode detection
	flush := func() {
		if cur != nil {
			phases = append(phases, *cur)
			cur = nil
		}
	}
	for _, ev := range t.events {
		if ev.Rank != rank {
			continue
		}
		switch ev.Op {
		case mpiio.OpRead, mpiio.OpReadAll, mpiio.OpWrite, mpiio.OpWriteAll:
			kind := mpiio.OpWrite
			if ev.Op == mpiio.OpRead || ev.Op == mpiio.OpReadAll {
				kind = mpiio.OpRead
			}
			mode := classify(ev, lastEnd)
			if cur == nil || cur.Kind != kind {
				flush()
				cur = &Phase{Kind: kind, Mode: mode, Start: ev.T0}
			} else if mode == Strided && cur.Mode == Sequential {
				// Upgrade: a strided vector inside the phase makes the
				// phase strided.
				cur.Mode = Strided
			}
			cur.Ops += int64(ev.Count)
			cur.Bytes += ev.Bytes
			cur.End = ev.T1
			lastEnd = ev.Offset + ev.Bytes
		case mpiio.OpOpen, mpiio.OpSync:
			// Neutral events: neither extend nor break a phase.
		default:
			// Compute, communication, barrier, close: phase boundary.
			flush()
			lastEnd = -1
		}
	}
	flush()
	return phases
}

// classify derives an access mode for a single event given the end of
// the previous I/O in the same phase. Vector events are strided when
// they cover a file extent substantially larger than their payload
// (scattered records with gaps) or carry a non-unit constant stride.
func classify(ev mpiio.Event, lastEnd int64) AccessMode {
	if ev.Count > 1 {
		if ev.Stride != 0 && ev.Stride != opSize(ev) {
			return Strided
		}
		if ev.Span > ev.Bytes+ev.Bytes/2 {
			return Strided
		}
		return Sequential
	}
	if lastEnd >= 0 && ev.Offset != lastEnd {
		return Strided
	}
	return Sequential
}

// SignatureEntry is a repeated phase pattern with its weight — the
// PAS2P notion of "significant phases and their weights".
type SignatureEntry struct {
	Phase  Phase // representative (first occurrence; Start/End of it)
	Weight int   // number of repetitions
}

// Signature groups a rank's phases into repeated patterns: phases
// with the same kind, mode, op count and byte count (within 1%) are
// the same pattern.
func (t *Tracer) Signature(rank int) []SignatureEntry {
	var sig []SignatureEntry
	for _, ph := range t.Phases(rank) {
		matched := false
		for i := range sig {
			s := &sig[i]
			if s.Phase.Kind == ph.Kind && s.Phase.Mode == ph.Mode &&
				s.Phase.Ops == ph.Ops && within1pct(s.Phase.Bytes, ph.Bytes) {
				s.Weight++
				matched = true
				break
			}
		}
		if !matched {
			sig = append(sig, SignatureEntry{Phase: ph, Weight: 1})
		}
	}
	return sig
}

func within1pct(a, b int64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d*100 <= a
}
