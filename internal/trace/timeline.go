package trace

import (
	"fmt"
	"strings"

	"ioeval/internal/mpiio"
	"ioeval/internal/sim"
)

// Timeline renders a Jumpshot-style per-rank activity chart (the
// paper's Figs. 8 and 16) as text: one lane per rank, one column per
// time bucket, with the dominant activity of each bucket marked:
//
//	W write   R read   C compute   M communication   B barrier   . idle
type Timeline struct {
	Width int // columns (default 100)
}

// lane activity codes in priority order (I/O wins ties so short I/O
// bursts stay visible, as in the paper's figures).
var laneChar = map[mpiio.Op]byte{
	mpiio.OpWrite:    'W',
	mpiio.OpWriteAll: 'W',
	mpiio.OpRead:     'R',
	mpiio.OpReadAll:  'R',
	mpiio.OpCompute:  'C',
	mpiio.OpComm:     'M',
	mpiio.OpBarrier:  'B',
}

var lanePriority = map[byte]int{'W': 5, 'R': 5, 'M': 3, 'B': 2, 'C': 4, '.': 0}

// Render draws the events. Ranks are sorted ascending; the time axis
// spans the first event start to the last event end.
func (tl Timeline) Render(events []mpiio.Event) string {
	width := tl.Width
	if width <= 0 {
		width = 100
	}
	if len(events) == 0 {
		return "(no events)\n"
	}
	var tMin, tMax sim.Time
	maxRank := 0
	for i, ev := range events {
		if i == 0 || ev.T0 < tMin {
			tMin = ev.T0
		}
		if i == 0 || ev.T1 > tMax {
			tMax = ev.T1
		}
		if ev.Rank > maxRank {
			maxRank = ev.Rank
		}
	}
	span := float64(tMax - tMin)
	if span <= 0 {
		span = 1
	}
	lanes := make([][]byte, maxRank+1)
	for r := range lanes {
		lanes[r] = []byte(strings.Repeat(".", width))
	}
	for _, ev := range events {
		ch, ok := laneChar[ev.Op]
		if !ok {
			continue
		}
		c0 := int(float64(ev.T0-tMin) / span * float64(width))
		c1 := int(float64(ev.T1-tMin) / span * float64(width))
		if c1 >= width {
			c1 = width - 1
		}
		for c := c0; c <= c1; c++ {
			if lanePriority[ch] >= lanePriority[lanes[ev.Rank][c]] {
				lanes[ev.Rank][c] = ch
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time: 0 .. %v   (W write, R read, C compute, M comm, B barrier)\n",
		sim.Duration(tMax-tMin))
	for r, lane := range lanes {
		fmt.Fprintf(&b, "rank %3d |%s|\n", r, lane)
	}
	return b.String()
}
