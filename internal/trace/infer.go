package trace

import (
	"fmt"
	"strings"

	"ioeval/internal/mpiio"
	"ioeval/internal/workload/synth"
)

// InferSpec derives a declarative phase-graph spec from a recorded
// timeline, so a captured trace becomes a replayable synthetic
// workload. The inference folds each rank's events into steps,
// requires the ranks to be congruent (same step kinds in the same
// order — the SPMD shape every supported workload has), segments the
// run at barriers, and rolls repeated iteration blocks into looped
// phases with a constant per-iteration offset stride.
//
// Inference is byte-exact but not always layout- or timing-exact; its
// limits (all documented in DESIGN.md §12):
//
//   - Collective events carry only each rank's total contribution, so
//     a scattered collective access replays as one contiguous extent
//     per rank of the same size.
//   - Vector events carry Count/Stride/Span, not the element list; a
//     non-uniform vector replays as uniformly strided blocks of the
//     mean size (plus a remainder-sized final block), preserving both
//     the operation count and the byte count exactly.
//   - Traces exported to CSV drop Stride/Span entirely, so re-imported
//     vectors replay as contiguous blocks.
//   - Message destinations are not traced; sends replay to rank+1.
//   - Storage selection is not traced; every file replays on NFS,
//     with collective buffering enabled iff the trace holds collective
//     operations on the file.
//   - Compute durations and message counts are taken from rank 0.
func InferSpec(t *Tracer, name string) (*synth.Spec, error) {
	evs := t.Events()
	if len(evs) == 0 {
		return nil, fmt.Errorf("trace: infer: empty trace")
	}
	np := 0
	ranks := map[int]bool{}
	for _, ev := range evs {
		ranks[ev.Rank] = true
		if ev.Rank >= np {
			np = ev.Rank + 1
		}
	}
	if len(ranks) != np {
		return nil, fmt.Errorf("trace: infer: %d distinct ranks but max rank %d (non-contiguous)", len(ranks), np-1)
	}

	files, fileOf, err := inferFiles(evs, np)
	if err != nil {
		return nil, err
	}

	// Fold each rank's events into steps.
	perRank := make([][]rawStep, np)
	for _, ev := range evs {
		perRank[ev.Rank] = foldEvent(perRank[ev.Rank], ev, fileOf)
	}

	// Congruence: rank 0 is the template; every rank must follow the
	// same step sequence.
	steps := perRank[0]
	for r := 1; r < np; r++ {
		if len(perRank[r]) != len(steps) {
			return nil, fmt.Errorf("trace: infer: rank %d has %d steps, rank 0 has %d (ranks not congruent)",
				r, len(perRank[r]), len(steps))
		}
		for i := range steps {
			a, b := steps[i], perRank[r][i]
			if a.op != b.op || a.file != b.file || a.collective != b.collective || a.syncAfter != b.syncAfter {
				return nil, fmt.Errorf("trace: infer: step %d diverges between rank 0 (%s %s) and rank %d (%s %s)",
					i, a.op, a.file, r, b.op, b.file)
			}
		}
	}

	spec := &synth.Spec{Name: name, Procs: np, Files: files}
	for _, seg := range segmentAtBarriers(steps) {
		spec.Phases = append(spec.Phases, rollSegment(seg, perRank, np))
	}
	for i := range spec.Phases {
		spec.Phases[i].Name = fmt.Sprintf("p%d", i)
		if i+1 < len(spec.Phases) {
			spec.Phases[i].Next = fmt.Sprintf("p%d", i+1)
		}
	}
	spec.Start = spec.Phases[0].Name
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("trace: infer: trace shape not expressible: %w", err)
	}
	return spec, nil
}

// rawStep is one folded per-rank step, carrying its index range into
// the rank's step list so rollSegment can reach every rank's version.
type rawStep struct {
	op         string
	file       string // logical file name ("" for non-I/O)
	collective bool
	syncAfter  bool
	access     []synth.AccessSpec
	computeNS  int64
	messages   int
	msgBytes   int64
}

// foldEvent appends (or merges) one event onto a rank's step list.
func foldEvent(steps []rawStep, ev mpiio.Event, fileOf map[string]string) []rawStep {
	switch ev.Op {
	case mpiio.OpOpen, mpiio.OpClose:
		return steps // implicit in the synthetic engine
	case mpiio.OpSync:
		// A sync right after a write of the same file is that write's
		// SyncAfter (MADbench2's IOMODE=SYNC shape).
		if n := len(steps); n > 0 && steps[n-1].op == synth.OpWrite &&
			steps[n-1].file == fileOf[ev.File] && !steps[n-1].syncAfter {
			steps[n-1].syncAfter = true
			return steps
		}
		return append(steps, rawStep{op: synth.OpSync, file: fileOf[ev.File]})
	case mpiio.OpCompute:
		if ev.T1 <= ev.T0 {
			return steps // zero-duration: nothing to replay
		}
		return append(steps, rawStep{op: synth.OpCompute, computeNS: int64(ev.T1 - ev.T0)})
	case mpiio.OpComm:
		if n := len(steps); n > 0 && steps[n-1].op == synth.OpSend && steps[n-1].msgBytes == ev.Bytes {
			steps[n-1].messages++
			return steps
		}
		return append(steps, rawStep{op: synth.OpSend, messages: 1, msgBytes: ev.Bytes})
	case mpiio.OpBarrier:
		return append(steps, rawStep{op: synth.OpBarrier})
	case mpiio.OpWrite, mpiio.OpWriteAll, mpiio.OpRead, mpiio.OpReadAll:
		op := synth.OpWrite
		if ev.Op == mpiio.OpRead || ev.Op == mpiio.OpReadAll {
			op = synth.OpRead
		}
		return append(steps, rawStep{
			op:         op,
			file:       fileOf[ev.File],
			collective: ev.Op == mpiio.OpWriteAll || ev.Op == mpiio.OpReadAll,
			access:     accessFromEvent(ev),
		})
	}
	return steps
}

// accessFromEvent rebuilds an access list from one I/O event,
// preserving the operation count and byte count exactly. Non-uniform
// vectors (Stride 0 with Count > 1) become contiguous mean-size
// blocks; a non-zero byte remainder widens the final block.
func accessFromEvent(ev mpiio.Event) []synth.AccessSpec {
	if ev.Bytes == 0 && ev.Offset < 0 {
		return nil // empty collective contribution
	}
	if ev.Count <= 1 {
		return []synth.AccessSpec{{OffsetBytes: ev.Offset, BlockBytes: ev.Bytes}}
	}
	count := int64(ev.Count)
	block := ev.Bytes / count
	stride := ev.Stride
	if stride <= 0 {
		// Recover a uniform stride from the span when it fits exactly;
		// otherwise replay the vector as contiguous blocks.
		if ev.Span > block && (ev.Span-block)%(count-1) == 0 {
			stride = (ev.Span - block) / (count - 1)
		} else {
			stride = block
		}
	}
	rem := ev.Bytes - block*count
	if rem == 0 {
		return []synth.AccessSpec{{
			OffsetBytes: ev.Offset, BlockBytes: block,
			Dims: []synth.DimSpec{{Count: ev.Count, StrideBytes: stride}},
		}}
	}
	// Count-1 uniform blocks plus one final block absorbing the
	// remainder: element count and byte count both stay exact.
	return []synth.AccessSpec{
		{
			OffsetBytes: ev.Offset, BlockBytes: block,
			Dims: []synth.DimSpec{{Count: ev.Count - 1, StrideBytes: stride}},
		},
		{OffsetBytes: ev.Offset + (count-1)*stride, BlockBytes: block + rem},
	}
}

// inferFiles derives the FileSpec list and the event-file → logical
// name mapping. Files touched by exactly one rank whose names share a
// prefix plus the rank as a ".%04d" suffix collapse into one per-rank
// file (MADbench2's UNIQUE layout); everything else is shared.
func inferFiles(evs []mpiio.Event, np int) ([]synth.FileSpec, map[string]string, error) {
	type info struct {
		ranks      map[int]bool
		collective bool
		order      int
	}
	byFile := map[string]*info{}
	var order []string
	for _, ev := range evs {
		if ev.File == "" {
			continue
		}
		fi := byFile[ev.File]
		if fi == nil {
			fi = &info{ranks: map[int]bool{}, order: len(order)}
			byFile[ev.File] = fi
			order = append(order, ev.File)
		}
		fi.ranks[ev.Rank] = true
		if ev.Op == mpiio.OpWriteAll || ev.Op == mpiio.OpReadAll {
			fi.collective = true
		}
	}

	// Group single-rank files by "<prefix>.%04d" naming.
	type group struct {
		members    map[int]string // rank → file
		collective bool
		order      int
	}
	groups := map[string]*group{}
	for f, fi := range byFile {
		if len(fi.ranks) != 1 {
			continue
		}
		var rank int
		for r := range fi.ranks {
			rank = r
		}
		suffix := fmt.Sprintf(".%04d", rank)
		if !strings.HasSuffix(f, suffix) {
			continue
		}
		prefix := strings.TrimSuffix(f, suffix)
		g := groups[prefix]
		if g == nil {
			g = &group{members: map[int]string{}, order: fi.order}
			groups[prefix] = g
		}
		g.members[rank] = f
		g.collective = g.collective || fi.collective
		if fi.order < g.order {
			g.order = fi.order
		}
	}

	fileOf := map[string]string{}
	var specs []synth.FileSpec
	named := map[string]bool{}
	for _, f := range order {
		if named[f] {
			continue
		}
		fi := byFile[f]
		// Per-rank group: complete only when every rank has a member.
		if len(fi.ranks) == 1 {
			suffix := fmt.Sprintf(".%04d", firstRank(fi.ranks))
			if strings.HasSuffix(f, suffix) {
				prefix := strings.TrimSuffix(f, suffix)
				if g := groups[prefix]; g != nil && len(g.members) == np {
					name := fmt.Sprintf("f%d", len(specs))
					specs = append(specs, synth.FileSpec{
						Name: name, Path: prefix, PerRank: true,
						CollectiveBuffering: g.collective,
					})
					for _, member := range g.members {
						fileOf[member] = name
						named[member] = true
					}
					continue
				}
			}
		}
		name := fmt.Sprintf("f%d", len(specs))
		specs = append(specs, synth.FileSpec{Name: name, Path: f, CollectiveBuffering: fi.collective})
		fileOf[f] = name
		named[f] = true
	}
	if len(specs) == 0 {
		return nil, nil, fmt.Errorf("trace: infer: no file operations in trace")
	}
	return specs, fileOf, nil
}

func firstRank(m map[int]bool) int {
	r := -1
	for k := range m {
		if r < 0 || k < r {
			r = k
		}
	}
	return r
}

// segmentAtBarriers splits the template step list into segments whose
// boundaries are barrier steps; each barrier becomes its own
// single-step segment (its phase replays the rendezvous).
func segmentAtBarriers(steps []rawStep) [][]int {
	var segs [][]int
	var cur []int
	for i, st := range steps {
		if st.op == synth.OpBarrier {
			if len(cur) > 0 {
				segs = append(segs, cur)
				cur = nil
			}
			segs = append(segs, []int{i})
			continue
		}
		cur = append(cur, i)
	}
	if len(cur) > 0 {
		segs = append(segs, cur)
	}
	return segs
}

// rollSegment compresses a segment into one phase: the smallest
// repeating step block whose successive repetitions are congruent up
// to a constant offset shift becomes the phase body with Loop set and
// LoopStrideBytes carrying the shift; a segment with no such block
// stays a Loop-1 phase of unrolled steps.
func rollSegment(seg []int, perRank [][]rawStep, np int) synth.PhaseSpec {
	n := len(seg)
	for l := 1; l <= n/2; l++ {
		if n%l != 0 {
			continue
		}
		m := n / l
		if delta, ok := blockDelta(seg, perRank, np, l, m); ok {
			return synth.PhaseSpec{Loop: m, Steps: buildSteps(seg[:l], perRank, np, delta)}
		}
	}
	return synth.PhaseSpec{Steps: buildSteps(seg, perRank, np, nil)}
}

// blockDelta checks whether the segment's m blocks of l steps are
// congruent with a constant per-block offset shift per step, and
// returns the per-step shifts.
func blockDelta(seg []int, perRank [][]rawStep, np, l, m int) ([]int64, bool) {
	delta := make([]int64, l)
	for pos := 0; pos < l; pos++ {
		base := seg[pos]
		for b := 1; b < m; b++ {
			other := seg[b*l+pos]
			for r := 0; r < np; r++ {
				a, c := perRank[r][base], perRank[r][other]
				if a.op != c.op || a.file != c.file || a.collective != c.collective ||
					a.syncAfter != c.syncAfter || a.computeNS != c.computeNS ||
					a.messages != c.messages || a.msgBytes != c.msgBytes {
					return nil, false
				}
				if a.op != synth.OpWrite && a.op != synth.OpRead {
					continue
				}
				d, ok := accessShift(a.access, c.access)
				if !ok {
					return nil, false
				}
				if b == 1 && r == 0 {
					delta[pos] = d
				}
				// Shift must be uniform across ranks and linear in b.
				if d != delta[pos]*int64(b) {
					return nil, false
				}
			}
		}
		if delta[pos] < 0 {
			return nil, false // spec strides are non-negative
		}
	}
	return delta, true
}

// accessShift returns the constant offset shift turning a into c, if
// the lists are congruent (same shapes, uniformly shifted offsets).
func accessShift(a, c []synth.AccessSpec) (int64, bool) {
	if len(a) != len(c) {
		return 0, false
	}
	if len(a) == 0 {
		return 0, true
	}
	shift := c[0].OffsetBytes - a[0].OffsetBytes
	for i := range a {
		if c[i].OffsetBytes-a[i].OffsetBytes != shift || a[i].BlockBytes != c[i].BlockBytes ||
			len(a[i].Dims) != len(c[i].Dims) {
			return 0, false
		}
		for j := range a[i].Dims {
			if a[i].Dims[j] != c[i].Dims[j] {
				return 0, false
			}
		}
	}
	return shift, true
}

// buildSteps materializes StepSpecs for one phase body from the
// template indices, attaching each rank's access list and the rolled
// loop stride (nil when the phase does not loop).
func buildSteps(idx []int, perRank [][]rawStep, np int, delta []int64) []synth.StepSpec {
	var out []synth.StepSpec
	for pos, i := range idx {
		t := perRank[0][i]
		st := synth.StepSpec{Op: t.op}
		switch t.op {
		case synth.OpWrite, synth.OpRead:
			st.File = t.file
			st.Collective = t.collective
			st.SyncAfter = t.syncAfter
			st.PerRankAccess = make([][]synth.AccessSpec, np)
			for r := 0; r < np; r++ {
				st.PerRankAccess[r] = perRank[r][i].access
			}
			if delta != nil {
				st.LoopStrideBytes = delta[pos]
			}
		case synth.OpCompute:
			st.ComputeNS = t.computeNS
		case synth.OpSend:
			st.ToRankOffset = 1 // destinations are not traced
			st.Messages = t.messages
			st.MessageBytes = t.msgBytes
		case synth.OpSync:
			st.File = t.file
		}
		out = append(out, st)
	}
	return out
}
