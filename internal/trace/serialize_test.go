package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"ioeval/internal/mpiio"
	"ioeval/internal/sim"
)

func TestJSONRoundTrip(t *testing.T) {
	tr := New()
	tr.Record(mk(0, mpiio.OpOpen, -1, 0, 1, 0, 0, 5))
	tr.Record(mk(1, mpiio.OpWrite, 4096, 64*kb, 16, 8*kb, 5, 50))
	tr.Record(mk(0, mpiio.OpRead, 0, mb, 1, 0, 50, 90))

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got.Events()) != 3 {
		t.Fatalf("events = %d", len(got.Events()))
	}
	for i, ev := range got.Events() {
		if ev != tr.Events()[i] {
			t.Fatalf("event %d: %+v != %+v", i, ev, tr.Events()[i])
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("expected error on garbage")
	}
	if _, err := ReadJSON(strings.NewReader(`{"format":"other","version":1,"events":0}`)); err == nil {
		t.Fatal("expected error on wrong format")
	}
	if _, err := ReadJSON(strings.NewReader(`{"format":"ioeval-trace","version":9,"events":0}`)); err == nil {
		t.Fatal("expected error on wrong version")
	}
}

func TestReadJSONDetectsTruncation(t *testing.T) {
	tr := New()
	tr.Record(mk(0, mpiio.OpWrite, 0, mb, 1, 0, 0, 10))
	tr.Record(mk(0, mpiio.OpRead, 0, mb, 1, 0, 10, 20))
	var buf bytes.Buffer
	tr.WriteJSON(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	truncated := strings.Join(lines[:2], "\n") // header + first event only
	if _, err := ReadJSON(strings.NewReader(truncated)); err == nil {
		t.Fatal("expected error on truncated trace")
	}
}

// Property: round trip preserves any event sequence, and the derived
// profile is identical.
func TestQuickRoundTripPreservesProfile(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := New()
		tm := sim.Time(0)
		ops := []mpiio.Op{mpiio.OpWrite, mpiio.OpRead, mpiio.OpCompute, mpiio.OpOpen}
		for i, r := range raw {
			op := ops[int(r)%len(ops)]
			tr.Record(mpiio.Event{
				Rank: i % 4, Op: op, File: "/f",
				Offset: int64(r) * 100, Bytes: int64(r%64+1) * 1024,
				Count: int(r%5) + 1, T0: tm, T1: tm + sim.Time(r%97+1),
			})
			tm += sim.Time(r%97 + 1)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			return false
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		a, b := tr.Profile(), got.Profile()
		return a.NumReads == b.NumReads && a.NumWrites == b.NumWrites &&
			a.BytesRead == b.BytesRead && a.BytesWritten == b.BytesWritten &&
			a.ExecTime == b.ExecTime && a.IOTime == b.IOTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
