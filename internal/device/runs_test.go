package device

import (
	"testing"
	"testing/quick"

	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
)

func TestMergeRuns(t *testing.T) {
	in := []Run{
		{Off: 0, Len: 100},
		{Off: 100, Len: 50},  // touches previous: merge
		{Off: 120, Len: 10},  // inside previous: absorbed
		{Off: 200, Len: 10},  // gap: new run
		{Off: 205, Len: 100}, // overlaps previous: merge/extend
	}
	out := MergeRuns(in)
	want := []Run{{Off: 0, Len: 150}, {Off: 200, Len: 105}}
	if len(out) != len(want) {
		t.Fatalf("out = %+v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %+v, want %+v", i, out[i], want[i])
		}
	}
}

func TestMergeRunsDegenerate(t *testing.T) {
	if out := MergeRuns(nil); len(out) != 0 {
		t.Fatal("nil input")
	}
	one := []Run{{Off: 5, Len: 5}}
	if out := MergeRuns(one); len(out) != 1 || out[0] != one[0] {
		t.Fatal("single input")
	}
}

func TestReadWriteRunsFallback(t *testing.T) {
	// A plain disk does not implement RunDev: the helpers must loop.
	e := sim.NewEngine()
	d := newTestDisk(e)
	e.Spawn("t", func(p *sim.Proc) {
		ReadRuns(ioreq.Reader(p), d, []Run{{Off: 0, Len: mb}, {Off: 10 * mb, Len: mb}})
		WriteRuns(ioreq.Writer(p), d, []Run{{Off: 0, Len: mb}})
	})
	e.Run()
	if d.Stats.Reads != 2 || d.Stats.Writes != 1 {
		t.Fatalf("ops: %+v", d.Stats)
	}
	if d.Stats.BytesRead != 2*mb || d.Stats.BytesWritten != mb {
		t.Fatalf("bytes: %+v", d.Stats)
	}
}

func TestDiskAccessors(t *testing.T) {
	e := sim.NewEngine()
	d := newTestDisk(e)
	if d.Name() != "d0" {
		t.Fatalf("name = %q", d.Name())
	}
	if d.Params().RPM != 7200 {
		t.Fatalf("params = %+v", d.Params())
	}
	e.Spawn("t", func(p *sim.Proc) { d.ReadAt(ioreq.Reader(p), 0, mb) })
	e.Run()
	if u := d.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization = %f", u)
	}
}

// Property: MergeRuns of sorted runs preserves total coverage (union
// of byte ranges) and outputs strictly ascending disjoint runs.
func TestQuickMergeRuns(t *testing.T) {
	f := func(raw []uint16) bool {
		var in []Run
		off := int64(0)
		for _, v := range raw {
			off += int64(v % 512)
			l := int64(v%1024) + 1
			in = append(in, Run{Off: off, Len: l})
			off += l
		}
		// Coverage before (ranges may already overlap if gap was 0).
		covered := map[int64]bool{}
		for _, r := range in {
			for b := r.Off; b < r.Off+r.Len; b += 64 {
				covered[b/64] = true
			}
		}
		out := MergeRuns(append([]Run{}, in...))
		lastEnd := int64(-1)
		var outCover int
		for _, r := range out {
			if r.Off <= lastEnd {
				return false
			}
			lastEnd = r.Off + r.Len
			outCover += int(r.Len)
		}
		// The merged cover must include every input byte.
		for _, r := range in {
			found := false
			for _, o := range out {
				if r.Off >= o.Off && r.Off+r.Len <= o.Off+o.Len {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
