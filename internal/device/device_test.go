package device

import (
	"testing"
	"testing/quick"

	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
)

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
	gb = int64(1) << 30
)

func newTestDisk(e *sim.Engine) *Disk {
	return NewDisk(e, DefaultSATA("d0", 150*gb, 100e6)) // 100 MB/s media
}

func TestSequentialReadRate(t *testing.T) {
	e := sim.NewEngine()
	d := newTestDisk(e)
	total := int64(256 * mb)
	var elapsed sim.Duration
	e.Spawn("reader", func(p *sim.Proc) {
		t0 := p.Now()
		for off := int64(0); off < total; off += 4 * mb {
			d.ReadAt(ioreq.Reader(p), off, 4*mb)
		}
		elapsed = sim.Duration(p.Now() - t0)
	})
	e.Run()
	rate := float64(total) / elapsed.Seconds() / 1e6 // MB/s
	// Sequential big-block reads should approach the 100 MB/s media rate;
	// only the first op pays positioning.
	if rate < 90 || rate > 101 {
		t.Fatalf("sequential read rate = %.1f MB/s, want ~100", rate)
	}
}

func TestRandomSmallReadsAreSlow(t *testing.T) {
	e := sim.NewEngine()
	d := newTestDisk(e)
	n := 100
	var elapsed sim.Duration
	e.Spawn("reader", func(p *sim.Proc) {
		t0 := p.Now()
		for i := 0; i < n; i++ {
			// Jump around the disk: 1 GB stride defeats sequential detection.
			d.ReadAt(ioreq.Reader(p), int64(i)*gb, 4*kb)
		}
		elapsed = sim.Duration(p.Now() - t0)
	})
	e.Run()
	perOp := elapsed / sim.Duration(n)
	// Each op pays avg seek (8.5 ms) + rot latency (4.17 ms) + overhead.
	if perOp < 12*sim.Millisecond || perOp > 14*sim.Millisecond {
		t.Fatalf("random 4K read = %v per op, want ~12.8ms", perOp)
	}
	if d.Stats.RandomOps != int64(n) {
		t.Fatalf("RandomOps = %d, want %d", d.Stats.RandomOps, n)
	}
}

func TestWriteCacheSkipsRotationalLatency(t *testing.T) {
	e := sim.NewEngine()
	params := DefaultSATA("wc", 150*gb, 100e6)
	d := NewDisk(e, params)

	paramsNC := params
	paramsNC.Name = "nc"
	paramsNC.WriteCache = false
	dn := NewDisk(e, paramsNC)

	var tWC, tNC sim.Duration
	e.Spawn("w", func(p *sim.Proc) {
		t0 := p.Now()
		for i := 0; i < 50; i++ {
			d.WriteAt(ioreq.Writer(p), int64(i)*gb, 4*kb)
		}
		tWC = sim.Duration(p.Now() - t0)
		t0 = p.Now()
		for i := 0; i < 50; i++ {
			dn.WriteAt(ioreq.Writer(p), int64(i)*gb, 4*kb)
		}
		tNC = sim.Duration(p.Now() - t0)
	})
	e.Run()
	if tWC >= tNC {
		t.Fatalf("write-back cache (%v) not faster than write-through (%v)", tWC, tNC)
	}
	// The difference per op should be one rotational latency (~4.17 ms).
	diff := (tNC - tWC) / 50
	if diff < 4*sim.Millisecond || diff > 4400*sim.Microsecond {
		t.Fatalf("per-op cache benefit = %v, want ~4.17ms", diff)
	}
}

func TestSequentialDetection(t *testing.T) {
	e := sim.NewEngine()
	d := newTestDisk(e)
	e.Spawn("r", func(p *sim.Proc) {
		d.ReadAt(ioreq.Reader(p), 0, mb)      // random (first op)
		d.ReadAt(ioreq.Reader(p), mb, mb)     // sequential
		d.ReadAt(ioreq.Reader(p), 2*mb, mb)   // sequential
		d.ReadAt(ioreq.Reader(p), 100*mb, mb) // random
	})
	e.Run()
	if d.Stats.SeqHits != 2 || d.Stats.RandomOps != 2 {
		t.Fatalf("seq=%d random=%d, want 2/2", d.Stats.SeqHits, d.Stats.RandomOps)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	e := sim.NewEngine()
	d := newTestDisk(e)
	e.Spawn("r", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for out-of-range read")
			}
		}()
		d.ReadAt(ioreq.Reader(p), d.Capacity(), 1)
	})
	e.Run()
}

func TestDiskSerializesConcurrentRequests(t *testing.T) {
	e := sim.NewEngine()
	d := newTestDisk(e)
	var ends []sim.Time
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn("r", func(p *sim.Proc) {
			d.ReadAt(ioreq.Reader(p), int64(i)*10*gb, 100*mb)
			ends = append(ends, p.Now())
		})
	}
	e.Run()
	// 100 MB at 100 MB/s = 1 s per request plus positioning; four
	// serialized requests ⇒ last finishes after ≥ 4 s.
	last := ends[len(ends)-1]
	if last < sim.Time(4*sim.Second) {
		t.Fatalf("last request finished at %v, expected ≥4s (serialization)", last)
	}
}

func TestFlushClearsDirty(t *testing.T) {
	e := sim.NewEngine()
	d := newTestDisk(e)
	e.Spawn("w", func(p *sim.Proc) {
		d.WriteAt(ioreq.Writer(p), 0, mb)
		if d.dirty != mb {
			t.Errorf("dirty = %d after write, want %d", d.dirty, mb)
		}
		before := p.Now()
		d.Flush(ioreq.Meta(p))
		if d.dirty != 0 {
			t.Errorf("dirty = %d after flush, want 0", d.dirty)
		}
		if p.Now() == before {
			t.Error("flush with dirty data took zero time")
		}
		before = p.Now()
		d.Flush(ioreq.Meta(p)) // idempotent, free when clean
		if p.Now() != before {
			t.Error("flush with clean cache should be free")
		}
	})
	e.Run()
}

func TestStatsAccounting(t *testing.T) {
	e := sim.NewEngine()
	d := newTestDisk(e)
	e.Spawn("rw", func(p *sim.Proc) {
		d.ReadAt(ioreq.Reader(p), 0, 2*mb)
		d.WriteAt(ioreq.Writer(p), 10*gb, 3*mb)
	})
	e.Run()
	if d.Stats.Reads != 1 || d.Stats.BytesRead != 2*mb {
		t.Fatalf("read stats: %+v", d.Stats)
	}
	if d.Stats.Writes != 1 || d.Stats.BytesWritten != 3*mb {
		t.Fatalf("write stats: %+v", d.Stats)
	}
}

// Property: a sequential transfer of n bytes never completes faster
// than the media rate allows, and service time grows monotonically
// with size.
func TestQuickTransferTimeMonotone(t *testing.T) {
	f := func(aRaw, bRaw uint32) bool {
		a := int64(aRaw%1024+1) * 4 * kb
		b := int64(bRaw%1024+1) * 4 * kb
		if a > b {
			a, b = b, a
		}
		timeFor := func(n int64) sim.Duration {
			e := sim.NewEngine()
			d := newTestDisk(e)
			var dur sim.Duration
			e.Spawn("r", func(p *sim.Proc) {
				t0 := p.Now()
				d.ReadAt(ioreq.Reader(p), 0, n)
				dur = sim.Duration(p.Now() - t0)
			})
			e.Run()
			return dur
		}
		ta, tb := timeFor(a), timeFor(b)
		minA := sim.Duration(float64(a) / 100e6 * 1e9)
		return ta >= minA && (a == b || tb >= ta)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDiskOp(b *testing.B) {
	e := sim.NewEngine()
	d := newTestDisk(e)
	e.Spawn("r", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			d.ReadAt(ioreq.Reader(p), int64(i%1000)*mb, 64*kb)
		}
	})
	b.ResetTimer()
	e.Run()
}
