// Package device models rotational storage devices with seek,
// rotational-latency, sustained-transfer and on-board write-cache
// behaviour. It defines BlockDev, the interface the rest of the I/O
// stack (RAID, filesystem, cache) uses to talk to storage.
package device

import (
	"fmt"

	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
	"ioeval/internal/telemetry"
)

// BlockDev is a byte-addressable block storage target. Offsets and
// lengths are in bytes; implementations charge simulated time to the
// calling process.
type BlockDev interface {
	// ReadAt reads n bytes starting at off, blocking the request's
	// process for the simulated service time.
	ReadAt(r *ioreq.Request, off, n int64)
	// WriteAt writes n bytes starting at off.
	WriteAt(r *ioreq.Request, off, n int64)
	// Flush forces any volatile write cache to stable storage.
	Flush(r *ioreq.Request)
	// Capacity returns the device size in bytes.
	Capacity() int64
	// Name returns a diagnostic name.
	Name() string
}

// DiskParams describes a rotational disk. The defaults produced by
// DefaultSATA correspond to a 7200 rpm SATA drive of the 2011 era,
// matching the hardware in the paper's two clusters.
type DiskParams struct {
	Name     string
	Capacity int64 // bytes

	SeekAvg   sim.Duration // average (random) seek
	SeekTrack sim.Duration // track-to-track (near) seek
	RPM       int          // spindle speed, for rotational latency

	TransferRate float64 // sustained media rate, bytes/second

	CmdOverhead sim.Duration // per-command controller overhead

	// WriteCache models the drive's volatile write-back cache
	// ("write cache enabled (write back)" in the paper's RAID setup):
	// writes skip rotational latency and use the near-seek cost, since
	// the drive acknowledges into cache and destages lazily.
	WriteCache bool
}

// DefaultSATA returns parameters for a 7200 rpm SATA disk with the
// given capacity and sustained rate (bytes/s).
func DefaultSATA(name string, capacity int64, rate float64) DiskParams {
	return DiskParams{
		Name:         name,
		Capacity:     capacity,
		SeekAvg:      8500 * sim.Microsecond,
		SeekTrack:    1000 * sim.Microsecond,
		RPM:          7200,
		TransferRate: rate,
		CmdOverhead:  100 * sim.Microsecond,
		WriteCache:   true,
	}
}

// Disk is a single rotational drive. Requests are serviced FCFS
// through a capacity-1 resource (one head assembly). The disk tracks
// the last accessed position to distinguish sequential from random
// access: sequential transfers pay no positioning cost.
type Disk struct {
	params DiskParams
	res    *sim.Resource
	rec    *telemetry.Recorder

	nextSeq int64 // offset that would continue the current sequential run
	dirty   int64 // bytes in the volatile write cache

	// slow is a service-time multiplier for fault injection: 0 or 1 is
	// a healthy drive, >1 models a degraded one (media retries, grown
	// defects, a failing head). See SetSlowFactor.
	slow float64

	// Stats accumulates operation counts and byte totals.
	Stats DevStats
}

// DevStats counts traffic through a device.
type DevStats struct {
	Reads, Writes           int64
	BytesRead, BytesWritten int64
	SeqHits, RandomOps      int64
	BusyTime                sim.Duration
}

// NewDisk constructs a Disk on the given engine.
func NewDisk(e *sim.Engine, params DiskParams) *Disk {
	if params.Capacity <= 0 || params.TransferRate <= 0 || params.RPM <= 0 {
		panic(fmt.Sprintf("device: invalid params for %q", params.Name))
	}
	return &Disk{
		params:  params,
		res:     sim.NewResource(e, "disk:"+params.Name, 1),
		rec:     telemetry.NewRecorder(e, "disk:"+params.Name, telemetry.LevelDevice, 1),
		nextSeq: -1, // first access always pays positioning
	}
}

// Telemetry returns the disk's telemetry probe.
func (d *Disk) Telemetry() *telemetry.Recorder { return d.rec }

// Name returns the disk's name.
func (d *Disk) Name() string { return d.params.Name }

// Capacity returns the disk size in bytes.
func (d *Disk) Capacity() int64 { return d.params.Capacity }

// Params returns the disk's parameters.
func (d *Disk) Params() DiskParams { return d.params }

// SetSlowFactor scales every subsequent operation's service time by
// factor — the fault plane's "slow disk" model (a drive retrying over
// media errors serves requests, just slower). Factor 1 restores
// healthy service; factors below 1 panic, since a fault cannot make
// hardware faster.
func (d *Disk) SetSlowFactor(factor float64) {
	if factor < 1 {
		panic(fmt.Sprintf("device %q: slow factor %v below 1", d.params.Name, factor))
	}
	d.slow = factor
}

// SlowFactor returns the current service-time multiplier (1 when
// healthy).
func (d *Disk) SlowFactor() float64 {
	if d.slow < 1 {
		return 1
	}
	return d.slow
}

// scaled applies the slow factor to a service time, counting the
// degraded operations so reports can show how much work ran slow.
func (d *Disk) scaled(t sim.Duration) sim.Duration {
	if d.slow <= 1 {
		return t
	}
	d.rec.Add("slowed_ops", 1)
	return sim.Duration(float64(t) * d.slow)
}

// rotLatency is the average rotational latency: half a revolution.
func (d *Disk) rotLatency() sim.Duration {
	revNs := 60.0 * 1e9 / float64(d.params.RPM)
	return sim.Duration(revNs / 2)
}

// positioning returns the head-positioning cost for an access at off,
// and whether the access continues a sequential run.
func (d *Disk) positioning(off int64, write bool) (sim.Duration, bool) {
	if off == d.nextSeq {
		return 0, true
	}
	// Near misses (within ~1 MB) cost a track-to-track seek; anything
	// farther costs an average seek. Both normally pay rotational
	// latency; writes into a write-back cache skip it (the drive
	// acknowledges immediately and schedules the media write itself).
	dist := off - d.nextSeq
	if dist < 0 {
		dist = -dist
	}
	var t sim.Duration
	if dist <= 1<<20 {
		t = d.params.SeekTrack
	} else {
		t = d.params.SeekAvg
	}
	if write && d.params.WriteCache {
		return t, false
	}
	return t + d.rotLatency(), false
}

func (d *Disk) xfer(n int64) sim.Duration {
	return sim.Duration(float64(n) / d.params.TransferRate * 1e9)
}

func (d *Disk) checkRange(off, n int64, op string) {
	if off < 0 || n < 0 || off+n > d.params.Capacity {
		panic(fmt.Sprintf("device %q: %s out of range: off=%d n=%d cap=%d",
			d.params.Name, op, off, n, d.params.Capacity))
	}
}

// ReadAt services a read of n bytes at off.
func (d *Disk) ReadAt(r *ioreq.Request, off, n int64) {
	d.checkRange(off, n, "read")
	r.Push(telemetry.LevelDevice, "disk:"+d.params.Name)
	defer r.Pop()
	d.tagSlow(r)
	p := r.Proc()
	d.rec.Enter()
	defer d.rec.Exit()
	d.res.Acquire(p, 1)
	pos, seq := d.positioning(off, false)
	t := d.scaled(d.params.CmdOverhead + pos + d.xfer(n))
	p.Sleep(t)
	d.afterOp(off, n, seq, false, t)
	d.res.Release(1)
}

// WriteAt services a write of n bytes at off.
func (d *Disk) WriteAt(r *ioreq.Request, off, n int64) {
	d.checkRange(off, n, "write")
	r.Push(telemetry.LevelDevice, "disk:"+d.params.Name)
	defer r.Pop()
	d.tagSlow(r)
	p := r.Proc()
	d.rec.Enter()
	defer d.rec.Exit()
	d.res.Acquire(p, 1)
	pos, seq := d.positioning(off, true)
	t := d.scaled(d.params.CmdOverhead + pos + d.xfer(n))
	p.Sleep(t)
	if d.params.WriteCache {
		d.dirty += n
	}
	d.afterOp(off, n, seq, true, t)
	d.res.Release(1)
}

func (d *Disk) afterOp(off, n int64, seq, write bool, t sim.Duration) {
	d.nextSeq = off + n
	if seq {
		d.Stats.SeqHits++
		d.rec.Add("seq_ops", 1)
	} else {
		d.Stats.RandomOps++
		d.rec.Add("random_ops", 1)
	}
	if write {
		d.Stats.Writes++
		d.Stats.BytesWritten += n
		d.rec.Observe(telemetry.ClassWrite, 1, n, t)
	} else {
		d.Stats.Reads++
		d.Stats.BytesRead += n
		d.rec.Observe(telemetry.ClassRead, 1, n, t)
	}
	d.Stats.BusyTime += t
}

// Flush drains the volatile write cache. WriteAt already charges media
// transfer time (sustained throughput cannot exceed the media rate even
// with a cache — the cache only hides positioning), so a flush costs a
// single rotational latency as a barrier while the final destage
// completes.
func (d *Disk) Flush(r *ioreq.Request) {
	if d.dirty == 0 {
		return
	}
	r.Push(telemetry.LevelDevice, "disk:"+d.params.Name)
	defer r.Pop()
	d.tagSlow(r)
	p := r.Proc()
	d.rec.Enter()
	defer d.rec.Exit()
	d.res.Acquire(p, 1)
	t := d.scaled(d.rotLatency())
	p.Sleep(t)
	d.Stats.BusyTime += t
	d.rec.Observe(telemetry.ClassMeta, 1, 0, t)
	d.dirty = 0
	d.res.Release(1)
}

// tagSlow marks requests serviced while the drive is degraded.
func (d *Disk) tagSlow(r *ioreq.Request) {
	if d.slow > 1 {
		r.Tag("slow_disk")
	}
}

// Utilization reports the fraction of simulated time the disk was busy.
func (d *Disk) Utilization() float64 { return d.res.Utilization() }
