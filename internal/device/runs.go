package device

import "ioeval/internal/ioreq"

// Run is one extent of a vectored request. It is an alias of
// ioreq.Vec: the same extents flow through every layer without
// conversion.
type Run = ioreq.Vec

// RunDev is an optional extension of BlockDev for devices that can
// service many extents in a single call. The page cache implements it
// to keep simulation event counts bounded when applications issue
// millions of small strided operations; plain disks and arrays fall
// back to per-run calls via ReadRuns/WriteRuns helpers.
type RunDev interface {
	BlockDev
	ReadRuns(r *ioreq.Request, runs []Run)
	WriteRuns(r *ioreq.Request, runs []Run)
}

// ReadRuns reads every run from dev, using the vectored fast path when
// available.
func ReadRuns(r *ioreq.Request, dev BlockDev, runs []Run) {
	if rd, ok := dev.(RunDev); ok {
		rd.ReadRuns(r, runs)
		return
	}
	for _, run := range runs {
		dev.ReadAt(r, run.Off, run.Len)
	}
}

// WriteRuns writes every run to dev, using the vectored fast path when
// available.
func WriteRuns(r *ioreq.Request, dev BlockDev, runs []Run) {
	if rd, ok := dev.(RunDev); ok {
		rd.WriteRuns(r, runs)
		return
	}
	for _, run := range runs {
		dev.WriteAt(r, run.Off, run.Len)
	}
}

// MergeRuns coalesces sorted runs that overlap or touch, returning a
// minimal cover. Input must be sorted by Off.
func MergeRuns(runs []Run) []Run { return ioreq.Merge(runs) }
