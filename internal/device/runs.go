package device

import "ioeval/internal/sim"

// Run is one extent of a vectored request.
type Run struct {
	Off, Len int64
}

// RunDev is an optional extension of BlockDev for devices that can
// service many extents in a single call. The page cache implements it
// to keep simulation event counts bounded when applications issue
// millions of small strided operations; plain disks and arrays fall
// back to per-run calls via ReadRuns/WriteRuns helpers.
type RunDev interface {
	BlockDev
	ReadRuns(p *sim.Proc, runs []Run)
	WriteRuns(p *sim.Proc, runs []Run)
}

// ReadRuns reads every run from dev, using the vectored fast path when
// available.
func ReadRuns(p *sim.Proc, dev BlockDev, runs []Run) {
	if rd, ok := dev.(RunDev); ok {
		rd.ReadRuns(p, runs)
		return
	}
	for _, r := range runs {
		dev.ReadAt(p, r.Off, r.Len)
	}
}

// WriteRuns writes every run to dev, using the vectored fast path when
// available.
func WriteRuns(p *sim.Proc, dev BlockDev, runs []Run) {
	if rd, ok := dev.(RunDev); ok {
		rd.WriteRuns(p, runs)
		return
	}
	for _, r := range runs {
		dev.WriteAt(p, r.Off, r.Len)
	}
}

// MergeRuns coalesces sorted runs that overlap or touch, returning a
// minimal cover. Input must be sorted by Off.
func MergeRuns(runs []Run) []Run {
	if len(runs) <= 1 {
		return runs
	}
	out := runs[:1]
	for _, r := range runs[1:] {
		last := &out[len(out)-1]
		if r.Off <= last.Off+last.Len {
			if end := r.Off + r.Len; end > last.Off+last.Len {
				last.Len = end - last.Off
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}
