package device

import (
	"testing"

	"ioeval/internal/ioreq"
	"ioeval/internal/sim"
)

func timeIO(e *sim.Engine, fn func(*sim.Proc)) sim.Duration {
	var elapsed sim.Duration
	e.Spawn("io", func(p *sim.Proc) {
		t0 := p.Now()
		fn(p)
		elapsed = sim.Duration(p.Now() - t0)
	})
	e.Run()
	return elapsed
}

func TestSlowFactorScalesServiceTime(t *testing.T) {
	healthyEng := sim.NewEngine()
	healthy := newTestDisk(healthyEng)
	base := timeIO(healthyEng, func(p *sim.Proc) { healthy.ReadAt(ioreq.Reader(p), 0, 64*mb) })

	slowEng := sim.NewEngine()
	slow := newTestDisk(slowEng)
	slow.SetSlowFactor(4)
	if got := slow.SlowFactor(); got != 4 {
		t.Fatalf("SlowFactor = %v", got)
	}
	degraded := timeIO(slowEng, func(p *sim.Proc) { slow.ReadAt(ioreq.Reader(p), 0, 64*mb) })

	ratio := float64(degraded) / float64(base)
	if ratio < 3.9 || ratio > 4.1 {
		t.Fatalf("slow-disk ratio = %.2f (healthy %v, degraded %v), want ~4", ratio, base, degraded)
	}
	if got := slow.Telemetry().AuxVal("slowed_ops"); got != 1 {
		t.Fatalf("slowed_ops = %d, want 1", got)
	}
	if healthy.Telemetry().AuxVal("slowed_ops") != 0 {
		t.Fatal("healthy disk counted slowed_ops")
	}
}

func TestSlowFactorValidation(t *testing.T) {
	e := sim.NewEngine()
	d := newTestDisk(e)
	if d.SlowFactor() != 1 {
		t.Fatalf("default SlowFactor = %v, want 1", d.SlowFactor())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetSlowFactor(<1) did not panic")
		}
	}()
	d.SetSlowFactor(0.5)
}
