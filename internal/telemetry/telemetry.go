// Package telemetry is the unified observability plane of the
// simulated I/O stack: a shared counter/histogram model recorded by
// every layer (device, raid, cache, fs, nfs, pfs, netsim, mpiio),
// snapshot-with-delta arithmetic for phase-interval measurement, and
// a JSON report format.
//
// The paper's core deliverable is a per-level view of the I/O path —
// characterized rate vs. measured rate at each level (Figs. 10–11,
// Tables III/IV). Darshan-style tooling (surveyed by Kunkel's "Tools
// for Analyzing Parallel I/O") shows that a uniform per-layer
// counter model is what makes cross-level bottleneck attribution
// composable; this package provides that model for the simulation.
//
// Recording is strictly passive: a Recorder never sleeps, acquires
// resources or schedules events, so instrumentation cannot perturb
// simulated time or event ordering.
package telemetry

import (
	"fmt"

	"ioeval/internal/sim"
)

// Level tags a component with its position on the I/O path. It
// deliberately mirrors (but does not import) core.Level: the three
// characterized levels of the paper plus the substrate layers below
// them, so snapshots can attribute time anywhere on the vertical
// path. core.Level maps onto this type via Level.TelemetryLevel.
type Level int

// I/O-path levels, application side first.
const (
	LevelLibrary  Level = iota // MPI-IO library (mpiio.World)
	LevelGlobalFS              // network/parallel filesystem clients and servers (nfs, pfs)
	LevelLocalFS               // local filesystem mounts (fs.Mount)
	LevelCache                 // page/buffer caches (cache.Cache)
	LevelBlock                 // device organizations (raid.Array)
	LevelDevice                // physical disks (device.Disk)
	LevelNetwork               // interconnect and NICs (netsim)
	LevelFault                 // fault-injection plane (internal/fault)
	LevelStore                 // characterization store (internal/store)
)

func (l Level) String() string {
	switch l {
	case LevelLibrary:
		return "library"
	case LevelGlobalFS:
		return "global-fs"
	case LevelLocalFS:
		return "local-fs"
	case LevelCache:
		return "cache"
	case LevelBlock:
		return "block"
	case LevelDevice:
		return "device"
	case LevelNetwork:
		return "network"
	case LevelFault:
		return "fault"
	case LevelStore:
		return "store"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// MarshalText renders the level as its name in JSON reports.
func (l Level) MarshalText() ([]byte, error) { return []byte(l.String()), nil }

// UnmarshalText parses a level name.
func (l *Level) UnmarshalText(b []byte) error {
	for _, cand := range []Level{LevelLibrary, LevelGlobalFS, LevelLocalFS,
		LevelCache, LevelBlock, LevelDevice, LevelNetwork, LevelFault, LevelStore} {
		if cand.String() == string(b) {
			*l = cand
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown level %q", string(b))
}

// OpClass is the operation direction of a counter set.
type OpClass int

// Operation classes. Data-moving operations are Read or Write; Meta
// covers opens, closes, stats, syncs, flushes and commits.
const (
	ClassRead OpClass = iota
	ClassWrite
	ClassMeta
)

func (c OpClass) String() string {
	switch c {
	case ClassRead:
		return "read"
	case ClassWrite:
		return "write"
	case ClassMeta:
		return "meta"
	}
	return fmt.Sprintf("OpClass(%d)", int(c))
}

// NumBuckets is the fixed latency-histogram bucket count: decade
// buckets from <1µs to ≥1s.
const NumBuckets = 8

// bucketBounds[i] is the exclusive upper bound of bucket i; the last
// bucket is unbounded.
var bucketBounds = [NumBuckets - 1]sim.Duration{
	sim.Microsecond,
	10 * sim.Microsecond,
	100 * sim.Microsecond,
	sim.Millisecond,
	10 * sim.Millisecond,
	100 * sim.Millisecond,
	sim.Second,
}

// BucketLabel returns a human-readable label for bucket i.
func BucketLabel(i int) string {
	switch {
	case i == 0:
		return "<" + bucketBounds[0].String()
	case i < NumBuckets-1:
		return "<" + bucketBounds[i].String()
	default:
		return "≥" + bucketBounds[NumBuckets-2].String()
	}
}

// Histogram is a fixed-bucket latency histogram. Counts[i] holds the
// number of operations whose per-operation latency fell in bucket i.
type Histogram struct {
	Counts [NumBuckets]int64 `json:"counts"`
}

// observe adds n operations of per-op latency d.
func (h *Histogram) observe(d sim.Duration, n int64) {
	for i, bound := range bucketBounds {
		if d < bound {
			h.Counts[i] += n
			return
		}
	}
	h.Counts[NumBuckets-1] += n
}

// Total returns the number of recorded operations.
func (h Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Sub returns the bucket-wise difference h − prev.
func (h Histogram) Sub(prev Histogram) Histogram {
	var out Histogram
	for i := range h.Counts {
		out.Counts[i] = h.Counts[i] - prev.Counts[i]
	}
	return out
}

// OpCounters accumulates one operation class of a component.
type OpCounters struct {
	Ops   int64        `json:"ops"`
	Bytes int64        `json:"bytes"`
	Busy  sim.Duration `json:"busy_ns"` // cumulative time servicing this class
	Lat   Histogram    `json:"latency"` // per-operation latency distribution
}

// Sub returns the counter-wise difference o − prev.
func (o OpCounters) Sub(prev OpCounters) OpCounters {
	return OpCounters{
		Ops:   o.Ops - prev.Ops,
		Bytes: o.Bytes - prev.Bytes,
		Busy:  o.Busy - prev.Busy,
		Lat:   o.Lat.Sub(prev.Lat),
	}
}

// MeanLatency returns the mean per-operation service time.
func (o OpCounters) MeanLatency() sim.Duration {
	if o.Ops == 0 {
		return 0
	}
	return o.Busy / sim.Duration(o.Ops)
}

// Counters is the shared per-component counter model: ops, bytes,
// busy time and a latency histogram per operation class, plus queue
// depth and optional component-specific auxiliary counters.
type Counters struct {
	Read  OpCounters `json:"read"`
	Write OpCounters `json:"write"`
	Meta  OpCounters `json:"meta"`

	// QueueDepth is the number of requests inside the component at
	// observation time (a gauge); MaxQueueDepth is its high-water
	// mark since the start of the run.
	QueueDepth    int64 `json:"queue_depth"`
	MaxQueueDepth int64 `json:"max_queue_depth"`

	// Aux holds component-specific counters that do not fit the
	// shared model (cache hit bytes, RAID degraded reads, NFS lock
	// pairs, ...). Keys are snake_case.
	Aux map[string]int64 `json:"aux,omitempty"`
}

// Op returns the counters of one class.
func (c Counters) Op(class OpClass) OpCounters {
	switch class {
	case ClassRead:
		return c.Read
	case ClassWrite:
		return c.Write
	default:
		return c.Meta
	}
}

// TotalBusy returns the busy time summed over classes.
func (c Counters) TotalBusy() sim.Duration { return c.Read.Busy + c.Write.Busy + c.Meta.Busy }

// TotalBytes returns data bytes moved (read + write).
func (c Counters) TotalBytes() int64 { return c.Read.Bytes + c.Write.Bytes }

// TotalOps returns operations across all classes.
func (c Counters) TotalOps() int64 { return c.Read.Ops + c.Write.Ops + c.Meta.Ops }

// Sub returns the counter-wise difference c − prev. Monotonic
// counters (ops, bytes, busy, histograms, aux) subtract; gauges
// (QueueDepth) and high-water marks (MaxQueueDepth) keep c's value,
// since a difference of either is meaningless.
func (c Counters) Sub(prev Counters) Counters {
	out := Counters{
		Read:          c.Read.Sub(prev.Read),
		Write:         c.Write.Sub(prev.Write),
		Meta:          c.Meta.Sub(prev.Meta),
		QueueDepth:    c.QueueDepth,
		MaxQueueDepth: c.MaxQueueDepth,
	}
	if len(c.Aux) > 0 || len(prev.Aux) > 0 {
		out.Aux = map[string]int64{}
		for k, v := range c.Aux {
			out.Aux[k] = v - prev.Aux[k]
		}
		for k, v := range prev.Aux {
			if _, ok := c.Aux[k]; !ok {
				out.Aux[k] = -v // should not happen: aux keys only grow
			}
		}
	}
	return out
}

// Snapshot is the state of one component's counters at an instant (or
// over an interval, after Sub).
type Snapshot struct {
	Component string `json:"component"`
	Level     Level  `json:"level"`
	// Units is the component's capacity in service units (disk heads,
	// server threads, array members) used to normalize utilization.
	Units int64 `json:"units"`
	// At is the simulated time of the observation; Interval is the
	// measurement window ending at At (the full run for a raw
	// snapshot, the phase span for a delta).
	At       sim.Time     `json:"at_ns"`
	Interval sim.Duration `json:"interval_ns"`
	Counters Counters     `json:"counters"`
}

// Sub returns the interval delta s − prev: counters subtracted, the
// interval spanning (prev.At, s.At]. Both snapshots must come from
// the same component.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	if prev.Component != "" && prev.Component != s.Component {
		panic(fmt.Sprintf("telemetry: Sub across components %q and %q", s.Component, prev.Component))
	}
	out := s
	out.Interval = sim.Duration(s.At - prev.At)
	out.Counters = s.Counters.Sub(prev.Counters)
	return out
}

// Utilization returns the fraction of the component's capacity busy
// over the snapshot's interval (0 when no time has passed).
func (s Snapshot) Utilization() float64 {
	if s.Interval <= 0 || s.Units <= 0 {
		return 0
	}
	return s.Counters.TotalBusy().Seconds() / (s.Interval.Seconds() * float64(s.Units))
}

// Rate returns the class's transfer rate in bytes/second over the
// snapshot's interval.
func (s Snapshot) Rate(class OpClass) float64 {
	if s.Interval <= 0 {
		return 0
	}
	return float64(s.Counters.Op(class).Bytes) / s.Interval.Seconds()
}

// Probe is anything that can be observed: every instrumented
// component exposes its Recorder, which implements Probe.
type Probe interface {
	Snapshot() Snapshot
}

// Recorder accumulates Counters for one component. All layer
// packages record through Recorders; a nil *Recorder is valid and
// ignores all recording calls, so components can be built without a
// telemetry plane (unit tests, hand-assembled stacks).
type Recorder struct {
	eng       *sim.Engine
	component string
	level     Level
	units     int64

	c        Counters
	inFlight int64
}

// NewRecorder creates a recorder for a component with the given
// capacity units (≤0 is normalized to 1).
func NewRecorder(eng *sim.Engine, component string, level Level, units int64) *Recorder {
	if units <= 0 {
		units = 1
	}
	return &Recorder{eng: eng, component: component, level: level, units: units}
}

// Component returns the component name.
func (r *Recorder) Component() string {
	if r == nil {
		return ""
	}
	return r.component
}

// Level returns the component's I/O-path level.
func (r *Recorder) Level() Level {
	if r == nil {
		return 0
	}
	return r.level
}

// Observe records ops operations of class moving bytes in busy total
// service time. The latency histogram receives ops samples of the
// mean per-operation latency busy/ops (layers batching many small
// operations into one simulated event cannot time them individually).
func (r *Recorder) Observe(class OpClass, ops, bytes int64, busy sim.Duration) {
	if r == nil || ops <= 0 {
		return
	}
	var o *OpCounters
	switch class {
	case ClassRead:
		o = &r.c.Read
	case ClassWrite:
		o = &r.c.Write
	default:
		o = &r.c.Meta
	}
	o.Ops += ops
	o.Bytes += bytes
	o.Busy += busy
	o.Lat.observe(busy/sim.Duration(ops), ops)
}

// Enter marks a request entering the component (queued or in
// service), maintaining the queue-depth gauge and high-water mark.
func (r *Recorder) Enter() {
	if r == nil {
		return
	}
	r.inFlight++
	r.c.QueueDepth = r.inFlight
	if r.inFlight > r.c.MaxQueueDepth {
		r.c.MaxQueueDepth = r.inFlight
	}
}

// Exit marks a request leaving the component.
func (r *Recorder) Exit() {
	if r == nil {
		return
	}
	r.inFlight--
	r.c.QueueDepth = r.inFlight
}

// Add increments an auxiliary counter.
func (r *Recorder) Add(key string, delta int64) {
	if r == nil {
		return
	}
	if r.c.Aux == nil {
		r.c.Aux = map[string]int64{}
	}
	r.c.Aux[key] += delta
}

// AuxVal returns the current value of an auxiliary counter.
func (r *Recorder) AuxVal(key string) int64 {
	if r == nil {
		return 0
	}
	return r.c.Aux[key]
}

// Snapshot implements Probe: a copy of the counters stamped with the
// engine's current time. The interval of a raw snapshot runs from
// simulation start.
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{
		Component: r.component,
		Level:     r.level,
		Units:     r.units,
		Counters:  r.c,
	}
	if r.eng != nil {
		s.At = r.eng.Now()
		s.Interval = sim.Duration(s.At)
	}
	if len(r.c.Aux) > 0 {
		s.Counters.Aux = make(map[string]int64, len(r.c.Aux))
		for k, v := range r.c.Aux {
			s.Counters.Aux[k] = v
		}
	}
	return s
}
