package telemetry

import (
	"encoding/json"

	"ioeval/internal/sim"
)

// NumLevels is the number of I/O-path levels a request can traverse.
// LevelStore is off-path (the characterization store never appears on
// a request's span stack) and deliberately excluded.
const NumLevels = 8

// Levels lists every on-path level in path order (the Level enum order).
var Levels = [NumLevels]Level{
	LevelLibrary, LevelGlobalFS, LevelLocalFS, LevelCache,
	LevelBlock, LevelDevice, LevelNetwork, LevelFault,
}

// NumClasses is the number of operation classes.
const NumClasses = 3

// Classes lists every operation class in enum order.
var Classes = [NumClasses]OpClass{ClassRead, ClassWrite, ClassMeta}

// PathCell accumulates the spans one (level, class) pair received
// from completed requests.
type PathCell struct {
	// Spans is the number of spans popped at this level.
	Spans int64 `json:"spans"`
	// Busy is the summed wall duration of those spans (entry to exit,
	// including time spent in lower levels).
	Busy sim.Duration `json:"busy_ns"`
	// Self is the summed self time: span duration minus the union of
	// its child spans — time attributable to this level alone.
	Self sim.Duration `json:"self_ns"`
	// SelfRemote is the portion of Self from spans opened beneath a
	// global-filesystem span — server-backend work done on behalf of
	// remote requests. CharacterizedSelf folds it into the network-FS
	// group rather than the compute node's local-FS group.
	SelfRemote sim.Duration `json:"self_remote_ns"`
	// Lat is the distribution of per-span wall durations.
	Lat Histogram `json:"latency"`
}

// PathTop accumulates request-root spans of one class: the spans
// opened where the application entered the I/O stack.
type PathTop struct {
	Spans int64        `json:"spans"`
	Busy  sim.Duration `json:"busy_ns"`
}

// PathProfile is the span-side counterpart of the used-% table: exact
// time-in-level attribution aggregated over completed requests. Where
// the paper's evaluation phase divides measured by characterized
// rates to guess the binding level, the profile measures it — each
// request's spans say precisely where its time went.
type PathProfile struct {
	// Cells[level][class] aggregates all spans at that level/class.
	Cells [NumLevels][NumClasses]PathCell
	// Top[class] aggregates root spans: Top totals equal the summed
	// wall time requests spent inside the stack (the conservation
	// invariant checks Top against the trace's I/O time).
	Top [NumClasses]PathTop
	// Tags counts fault-plane marks (degraded reads, slow disks,
	// server stalls) over all requests.
	Tags map[string]int64
}

// Observe folds one popped span into the profile.
func (p *PathProfile) Observe(level Level, class OpClass, busy, self sim.Duration, top, remote bool) {
	c := &p.Cells[level][class]
	c.Spans++
	c.Busy += busy
	c.Self += self
	if remote {
		c.SelfRemote += self
	}
	c.Lat.observe(busy, 1)
	if top {
		p.Top[class].Spans++
		p.Top[class].Busy += busy
	}
}

// AddTag counts a fault-plane mark.
func (p *PathProfile) AddTag(name string) {
	if p.Tags == nil {
		p.Tags = map[string]int64{}
	}
	p.Tags[name]++
}

// Cell returns the accumulator for one (level, class) pair.
func (p PathProfile) Cell(level Level, class OpClass) PathCell {
	return p.Cells[level][class]
}

// SelfAt returns the level's self time summed over the data classes
// (read + write; meta excluded, matching the used-% table's focus on
// data transfer).
func (p PathProfile) SelfAt(level Level) sim.Duration {
	return p.Cells[level][ClassRead].Self + p.Cells[level][ClassWrite].Self
}

// RemoteSelfAt returns the level's remote (server-backend) self time
// over the data classes.
func (p PathProfile) RemoteSelfAt(level Level) sim.Duration {
	return p.Cells[level][ClassRead].SelfRemote + p.Cells[level][ClassWrite].SelfRemote
}

// TopBusy returns root-span wall time summed over the given classes.
func (p PathProfile) TopBusy(classes ...OpClass) sim.Duration {
	var t sim.Duration
	for _, c := range classes {
		t += p.Top[c].Busy
	}
	return t
}

// SlowestLevel returns the level where requests spent the most self
// time (read + write), and whether any data span was recorded at all.
// The fault pseudo-level is excluded: it tags causes, it is not a
// place on the path.
func (p PathProfile) SlowestLevel() (Level, bool) {
	best, bestSelf, any := LevelLibrary, sim.Duration(-1), false
	for _, l := range Levels {
		if l == LevelFault {
			continue
		}
		self := p.SelfAt(l)
		if p.Cells[l][ClassRead].Spans+p.Cells[l][ClassWrite].Spans > 0 {
			any = true
		}
		if self > bestSelf {
			best, bestSelf = l, self
		}
	}
	return best, any
}

// CharacterizedSelf groups per-level self time onto the paper's three
// characterized levels, so the span verdict is directly comparable to
// the used-% table. The network folds into global-fs (its hops serve
// the global filesystem's RPCs), and so does the remote share of the
// lower levels: local-fs/cache/block/device self time spent beneath a
// global-FS span is a file server's backend working for remote
// clients — the characterization measures that stack as part of the
// network-FS level. Only the non-remote remainder of the lower levels
// is the compute node's own local-FS path.
func (p PathProfile) CharacterizedSelf() map[Level]sim.Duration {
	lower := [...]Level{LevelLocalFS, LevelCache, LevelBlock, LevelDevice}
	out := map[Level]sim.Duration{
		LevelLibrary:  p.SelfAt(LevelLibrary),
		LevelGlobalFS: p.SelfAt(LevelGlobalFS) + p.SelfAt(LevelNetwork),
		LevelLocalFS:  0,
	}
	for _, l := range lower {
		remote := p.RemoteSelfAt(l)
		out[LevelGlobalFS] += remote
		out[LevelLocalFS] += p.SelfAt(l) - remote
	}
	return out
}

// pathCellJSON is one non-empty cell in the export format.
type pathCellJSON struct {
	Level Level     `json:"level"`
	Class string    `json:"class"`
	Cell  *PathCell `json:"cell"`
}

// pathProfileJSON is the stable export format: non-empty cells in
// fixed (level, class) order, root totals per class, sorted tags.
type pathProfileJSON struct {
	Cells []pathCellJSON      `json:"cells"`
	Top   map[string]*PathTop `json:"top"`
	Tags  map[string]int64    `json:"tags,omitempty"`
}

// MarshalJSON renders the profile deterministically: cells iterate in
// enum order and map keys are sorted by encoding/json, so equal
// profiles produce byte-identical output (the sweep determinism tests
// rely on this).
func (p PathProfile) MarshalJSON() ([]byte, error) {
	out := pathProfileJSON{Top: map[string]*PathTop{}}
	for li, l := range Levels {
		for ci, class := range Classes {
			cell := p.Cells[li][ci]
			if cell.Spans == 0 {
				continue
			}
			c := cell
			out.Cells = append(out.Cells, pathCellJSON{Level: l, Class: class.String(), Cell: &c})
		}
	}
	for ci, class := range Classes {
		if p.Top[ci].Spans != 0 {
			t := p.Top[ci]
			out.Top[class.String()] = &t
		}
	}
	out.Tags = p.Tags
	return json.Marshal(out)
}
