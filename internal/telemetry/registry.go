package telemetry

// Registry is an ordered collection of probes — typically every
// instrumented component of one cluster. Registration order is the
// report order, so snapshots are deterministic.
type Registry struct {
	probes []Probe
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds probes to the registry. A nil Registry ignores the
// call, mirroring the nil-*Recorder convention.
func (g *Registry) Register(ps ...Probe) {
	if g == nil {
		return
	}
	for _, p := range ps {
		if p != nil {
			g.probes = append(g.probes, p)
		}
	}
}

// Len returns the number of registered probes.
func (g *Registry) Len() int {
	if g == nil {
		return 0
	}
	return len(g.probes)
}

// Snapshots observes every probe, in registration order.
func (g *Registry) Snapshots() []Snapshot {
	if g == nil {
		return nil
	}
	out := make([]Snapshot, 0, len(g.probes))
	for _, p := range g.probes {
		out = append(out, p.Snapshot())
	}
	return out
}

// Sub subtracts two snapshot sets position-wise (both must come from
// the same registry, cur observed at or after prev). Components
// present only in cur are passed through unchanged.
func Sub(cur, prev []Snapshot) []Snapshot {
	out := make([]Snapshot, 0, len(cur))
	byName := make(map[string]Snapshot, len(prev))
	for _, s := range prev {
		byName[s.Component] = s
	}
	for _, s := range cur {
		if p, ok := byName[s.Component]; ok {
			out = append(out, s.Sub(p))
		} else {
			out = append(out, s)
		}
	}
	return out
}

// ByLevel groups snapshots by level, preserving order within a group.
func ByLevel(snaps []Snapshot) map[Level][]Snapshot {
	out := map[Level][]Snapshot{}
	for _, s := range snaps {
		out[s.Level] = append(out[s.Level], s)
	}
	return out
}

// MeanUtilization returns the mean utilization of a snapshot group,
// guarding the empty-group case (no components ⇒ 0, not NaN).
func MeanUtilization(snaps []Snapshot) float64 {
	if len(snaps) == 0 {
		return 0
	}
	var sum float64
	for _, s := range snaps {
		sum += s.Utilization()
	}
	return sum / float64(len(snaps))
}
