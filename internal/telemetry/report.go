package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ioeval/internal/sim"
)

// LevelRate is one row of the per-level measured-vs-characterized
// comparison (the paper's Fig. 10 used-% inputs). Rows are produced
// by the evaluator from its UsedTable so that the JSON report carries
// exactly the numbers core.Evaluate used.
type LevelRate struct {
	Level         Level   `json:"level"`
	Op            string  `json:"op"`
	BlockSize     int64   `json:"block_size"`
	Mode          string  `json:"mode"`
	MeasuredRate  float64 `json:"measured_rate_mbps"`
	CharRate      float64 `json:"char_rate_mbps"`
	UsedPct       float64 `json:"used_pct"`
	CharAvailable bool    `json:"char_available"`
}

// PhaseInterval is the telemetry delta over one application phase:
// component snapshots subtracted at the phase's boundaries.
type PhaseInterval struct {
	Label string     `json:"label"`
	Start sim.Time   `json:"start_ns"`
	End   sim.Time   `json:"end_ns"`
	Kind  string     `json:"kind,omitempty"`
	Snaps []Snapshot `json:"components"`
}

// ReportFormat and ReportVersion are the telemetry report's envelope:
// every exported artifact carries {format, version, ...} so a decoder
// can reject foreign or stale documents instead of misreading them.
const (
	ReportFormat  = "ioeval-telemetry-report"
	ReportVersion = 1
)

// Report is the exported telemetry document: whole-run component
// snapshots, per-level rate rows, and optional per-phase deltas.
// Format/Version are stamped by WriteJSON and checked by
// ReadReportJSON.
type Report struct {
	Format     string          `json:"format,omitempty"`
	Version    int             `json:"version,omitempty"`
	App        string          `json:"app,omitempty"`
	Config     string          `json:"config,omitempty"`
	At         sim.Time        `json:"at_ns"`
	Components []Snapshot      `json:"components"`
	Levels     []LevelRate     `json:"levels,omitempty"`
	Phases     []PhaseInterval `json:"phases,omitempty"`
}

// WriteJSON writes the report as indented JSON under the versioned
// envelope.
func (r *Report) WriteJSON(w io.Writer) error {
	out := *r
	out.Format = ReportFormat
	out.Version = ReportVersion
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// WriteFile writes the report to path as JSON.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		_ = f.Close() // the encode error takes precedence
		return fmt.Errorf("telemetry: encode %s: %w", path, err)
	}
	return f.Close()
}

// ReadReportJSON parses a report written by WriteJSON, rejecting
// documents whose envelope names another format or version.
func ReadReportJSON(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("telemetry: decode report: %w", err)
	}
	if r.Format != ReportFormat {
		return nil, fmt.Errorf("telemetry: unexpected format %q", r.Format)
	}
	if r.Version != ReportVersion {
		return nil, fmt.Errorf("telemetry: unsupported version %d", r.Version)
	}
	return &r, nil
}
