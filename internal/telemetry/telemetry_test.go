package telemetry

import (
	"bytes"
	"reflect"
	"testing"

	"ioeval/internal/sim"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.observe(500*sim.Nanosecond, 1) // bucket 0: <1µs
	h.observe(5*sim.Microsecond, 2)  // bucket 1
	h.observe(sim.Millisecond, 3)    // bucket 4: <10ms
	h.observe(2*sim.Second, 4)       // last bucket
	want := [NumBuckets]int64{0: 1, 1: 2, 4: 3, NumBuckets - 1: 4}
	if h.Counts != want {
		t.Fatalf("counts = %v, want %v", h.Counts, want)
	}
	if h.Total() != 10 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestRecorderObserve(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRecorder(eng, "disk:test", LevelDevice, 1)
	r.Observe(ClassWrite, 4, 4096, 40*sim.Microsecond)
	r.Observe(ClassRead, 1, 512, sim.Millisecond)
	r.Observe(ClassMeta, 1, 0, sim.Microsecond)
	r.Observe(ClassRead, 0, 99, sim.Second) // ops<=0 ignored
	r.Add("evictions", 3)

	s := r.Snapshot()
	if s.Component != "disk:test" || s.Level != LevelDevice || s.Units != 1 {
		t.Fatalf("snapshot identity = %+v", s)
	}
	c := s.Counters
	if c.Write.Ops != 4 || c.Write.Bytes != 4096 || c.Write.Busy != 40*sim.Microsecond {
		t.Fatalf("write counters = %+v", c.Write)
	}
	if c.Read.Ops != 1 || c.Read.Bytes != 512 {
		t.Fatalf("read counters = %+v", c.Read)
	}
	if c.Meta.Ops != 1 {
		t.Fatalf("meta counters = %+v", c.Meta)
	}
	// Histogram total must equal ops per class: 4 writes at 10µs each
	// (bucket bounds are exclusive, so 10µs lands in the <100µs bucket).
	if c.Write.Lat.Total() != 4 || c.Write.Lat.Counts[2] != 4 {
		t.Fatalf("write histogram = %v", c.Write.Lat)
	}
	if c.Aux["evictions"] != 3 {
		t.Fatalf("aux = %v", c.Aux)
	}
	if c.Write.MeanLatency() != 10*sim.Microsecond {
		t.Fatalf("mean latency = %v", c.Write.MeanLatency())
	}
}

func TestRecorderQueueDepth(t *testing.T) {
	r := NewRecorder(sim.NewEngine(), "q", LevelCache, 1)
	r.Enter()
	r.Enter()
	r.Enter()
	r.Exit()
	s := r.Snapshot()
	if s.Counters.QueueDepth != 2 || s.Counters.MaxQueueDepth != 3 {
		t.Fatalf("queue = %d max = %d", s.Counters.QueueDepth, s.Counters.MaxQueueDepth)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Observe(ClassRead, 1, 1, 1)
	r.Enter()
	r.Exit()
	r.Add("k", 1)
	if r.AuxVal("k") != 0 || r.Component() != "" {
		t.Fatal("nil recorder must be inert")
	}
	var g *Registry
	g.Register(nil)
	if g.Len() != 0 || g.Snapshots() != nil {
		t.Fatal("nil registry must be inert")
	}
}

func TestSnapshotSubDeltas(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRecorder(eng, "c", LevelLocalFS, 2)

	r.Observe(ClassWrite, 10, 1000, 100*sim.Millisecond)
	r.Add("aux", 5)
	r.Enter()
	eng.Schedule(sim.Second, func() {})
	eng.Run()
	s1 := r.Snapshot()

	r.Observe(ClassWrite, 5, 500, 50*sim.Millisecond)
	r.Observe(ClassRead, 1, 64, sim.Millisecond)
	r.Add("aux", 2)
	eng.Schedule(sim.Second, func() {})
	eng.Run()
	s2 := r.Snapshot()

	d := s2.Sub(s1)
	if d.Interval != sim.Second {
		t.Fatalf("interval = %v", d.Interval)
	}
	if d.Counters.Write.Ops != 5 || d.Counters.Write.Bytes != 500 || d.Counters.Write.Busy != 50*sim.Millisecond {
		t.Fatalf("write delta = %+v", d.Counters.Write)
	}
	if d.Counters.Read.Ops != 1 {
		t.Fatalf("read delta = %+v", d.Counters.Read)
	}
	if d.Counters.Aux["aux"] != 2 {
		t.Fatalf("aux delta = %v", d.Counters.Aux)
	}
	// Gauge and high-water keep the current value, not a difference.
	if d.Counters.QueueDepth != 1 || d.Counters.MaxQueueDepth != 1 {
		t.Fatalf("gauges = %+v", d.Counters)
	}
	if d.Counters.Write.Lat.Total() != 5 {
		t.Fatalf("histogram delta total = %d", d.Counters.Write.Lat.Total())
	}
	// Deltas plus the earlier interval reconstruct the run totals.
	sum := s1.Counters.Write.Ops + d.Counters.Write.Ops
	if sum != s2.Counters.Write.Ops {
		t.Fatalf("delta does not sum: %d + %d != %d", s1.Counters.Write.Ops, d.Counters.Write.Ops, s2.Counters.Write.Ops)
	}
}

func TestSnapshotSubCrossComponentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := Snapshot{Component: "a"}
	b := Snapshot{Component: "b"}
	a.Sub(b)
}

func TestSnapshotUtilization(t *testing.T) {
	s := Snapshot{
		Units:    2,
		Interval: sim.Second,
		Counters: Counters{Write: OpCounters{Busy: sim.Second}},
	}
	if u := s.Utilization(); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	if u := (Snapshot{}).Utilization(); u != 0 {
		t.Fatalf("zero-interval utilization = %v", u)
	}
	if r := s.Rate(ClassWrite); r != 0 {
		t.Fatalf("rate with zero bytes = %v", r)
	}
	s.Counters.Write.Bytes = 100 << 20
	if r := s.Rate(ClassWrite); r != float64(100<<20) {
		t.Fatalf("rate = %v", r)
	}
}

func TestRegistrySubPassthrough(t *testing.T) {
	eng := sim.NewEngine()
	g := NewRegistry()
	a := NewRecorder(eng, "a", LevelDevice, 1)
	g.Register(a)
	a.Observe(ClassRead, 1, 100, sim.Millisecond)
	prev := g.Snapshots()

	b := NewRecorder(eng, "b", LevelDevice, 1)
	g.Register(b)
	a.Observe(ClassRead, 2, 200, sim.Millisecond)
	b.Observe(ClassWrite, 1, 50, sim.Millisecond)
	cur := g.Snapshots()

	d := Sub(cur, prev)
	if len(d) != 2 {
		t.Fatalf("deltas = %d", len(d))
	}
	if d[0].Counters.Read.Ops != 2 || d[0].Counters.Read.Bytes != 200 {
		t.Fatalf("a delta = %+v", d[0].Counters.Read)
	}
	// b missing from prev: passed through unchanged (delta from zero).
	if d[1].Counters.Write.Ops != 1 {
		t.Fatalf("b passthrough = %+v", d[1].Counters.Write)
	}
}

func TestMeanUtilizationEmpty(t *testing.T) {
	if u := MeanUtilization(nil); u != 0 {
		t.Fatalf("empty mean = %v, want 0 (not NaN)", u)
	}
}

func TestReportJSONRoundtrip(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRecorder(eng, "disk:sda", LevelDevice, 1)
	r.Observe(ClassWrite, 3, 3000, 30*sim.Microsecond)
	r.Add("random_ops", 1)
	rep := &Report{
		App:        "test-app",
		Config:     "test-cfg",
		At:         sim.Time(sim.Second),
		Components: []Snapshot{r.Snapshot()},
		Levels: []LevelRate{{
			Level: LevelGlobalFS, Op: "write", BlockSize: 1 << 20, Mode: "sequential",
			MeasuredRate: 50e6, CharRate: 100e6, UsedPct: 50, CharAvailable: true,
		}},
		Phases: []PhaseInterval{{
			Label: "phase-1", Kind: "write", Start: 0, End: sim.Time(sim.Second),
			Snaps: []Snapshot{r.Snapshot()},
		}},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := ReadReportJSON(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	// WriteJSON stamps the versioned envelope; the in-memory report
	// under it must survive unchanged.
	if got.Format != ReportFormat || got.Version != ReportVersion {
		t.Fatalf("envelope = %q v%d, want %q v%d", got.Format, got.Version, ReportFormat, ReportVersion)
	}
	got.Format, got.Version = "", 0
	if !reflect.DeepEqual(rep, got) {
		t.Fatalf("roundtrip mismatch:\nwant %+v\ngot  %+v", rep, got)
	}
	if got.Levels[0].Level != LevelGlobalFS {
		t.Fatalf("level text roundtrip = %v", got.Levels[0].Level)
	}
}

func TestLevelTextRoundtrip(t *testing.T) {
	for _, l := range []Level{LevelLibrary, LevelGlobalFS, LevelLocalFS, LevelCache, LevelBlock, LevelDevice, LevelNetwork} {
		b, err := l.MarshalText()
		if err != nil {
			t.Fatalf("marshal %v: %v", l, err)
		}
		var back Level
		if err := back.UnmarshalText(b); err != nil || back != l {
			t.Fatalf("roundtrip %v: got %v err %v", l, back, err)
		}
	}
	var l Level
	if err := l.UnmarshalText([]byte("bogus")); err == nil {
		t.Fatal("expected error for unknown level")
	}
}
