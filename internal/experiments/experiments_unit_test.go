package experiments

import (
	"strings"
	"testing"

	"ioeval/internal/cluster"
)

func TestArtifactString(t *testing.T) {
	a := Artifact{ID: "fig5", Title: "title", Text: "body\n"}
	s := a.String()
	if !strings.HasPrefix(s, "==== FIG5 — title ====") || !strings.Contains(s, "body") {
		t.Fatalf("render: %q", s)
	}
}

func TestBuildClusterPlatforms(t *testing.T) {
	if c := BuildCluster(Aohyper, cluster.JBOD); c.Cfg.Name != "aohyper" || c.Cfg.Org != cluster.JBOD {
		t.Fatalf("aohyper build: %+v", c.Cfg)
	}
	if c := BuildCluster(ClusterA, cluster.JBOD); c.Cfg.Name != "clusterA" || c.Cfg.Org != cluster.RAID5 {
		t.Fatalf("clusterA build: %+v", c.Cfg)
	}
	if Aohyper.String() != "Aohyper" || ClusterA.String() != "ClusterA" {
		t.Fatal("platform strings")
	}
}

func TestCharConfigPlatformFileSizes(t *testing.T) {
	if got := charConfig(Aohyper).LibFileSize; got != 32<<30 {
		t.Fatalf("aohyper lib file = %d", got)
	}
	if got := charConfig(ClusterA).LibFileSize; got != 40<<30 {
		t.Fatalf("clusterA lib file = %d", got)
	}
}
