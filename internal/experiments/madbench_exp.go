package experiments

import (
	"fmt"
	"strings"

	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/stats"
	"ioeval/internal/trace"
	"ioeval/internal/workload/madbench"
)

var madFileTypes = []madbench.FileType{madbench.Unique, madbench.Shared}

// Table8 regenerates Table VIII: MADbench2 characterization for 16
// and 64 processes, UNIQUE and SHARED filetypes (profiles from the
// Cluster A runs).
func Table8() Artifact {
	var b strings.Builder
	for _, procs := range []int{16, 64} {
		for _, ft := range madFileTypes {
			ev := EvalMadBench(ClusterA, cluster.RAID5, procs, ft)
			fmt.Fprintf(&b, "[%d procs, %v]\n%s\n", procs, ft,
				core.FormatProfile(ev.AppName(), ev.Profile()))
		}
	}
	return Artifact{ID: "tab8", Title: "MADbench2 characterization — 16 & 64 processes", Text: b.String()}
}

// Fig16 regenerates Fig. 16: MADbench2 trace timeline, 16 processes.
func Fig16() Artifact {
	var b strings.Builder
	for _, ft := range madFileTypes {
		ev := EvalMadBench(Aohyper, cluster.RAID5, 16, ft)
		fmt.Fprintf(&b, "[%v filetype]\n%s\n", ft, trace.Timeline{Width: 100}.Render(ev.Trace().Events()))
	}
	return Artifact{ID: "fig16", Title: "MADbench2 traces, 16 processes (W write, R read, C busy-work)", Text: b.String()}
}

// MadRunRow is a MADbench2 result row (Figs. 17 and 18): times and
// per-function transfer rates.
type MadRunRow struct {
	Config   string
	FileType string
	ExecSec  float64
	IOSec    float64
	SwMBs    float64
	WwMBs    float64
	WrMBs    float64
	CrMBs    float64
}

func madRunRows(pl Platform, orgs []cluster.Organization, procsList []int) []MadRunRow {
	var rows []MadRunRow
	for _, org := range orgs {
		for _, procs := range procsList {
			for _, ft := range madFileTypes {
				ev := EvalMadBench(pl, org, procs, ft)
				label := org.String()
				if len(procsList) > 1 {
					label = fmt.Sprintf("%d procs", procs)
				}
				res := ev.Result()
				rows = append(rows, MadRunRow{
					Config:   label,
					FileType: ft.String(),
					ExecSec:  res.ExecTime.Seconds(),
					IOSec:    res.IOTime.Seconds(),
					SwMBs:    res.PhaseRates["S_w"] / 1e6,
					WwMBs:    res.PhaseRates["W_w"] / 1e6,
					WrMBs:    res.PhaseRates["W_r"] / 1e6,
					CrMBs:    res.PhaseRates["C_r"] / 1e6,
				})
			}
		}
	}
	return rows
}

func madRunArtifact(id, title string, rows []MadRunRow) Artifact {
	var tb stats.Table
	tb.AddRow("config", "filetype", "exec", "I/O time", "S_w", "W_w", "W_r", "C_r")
	for _, r := range rows {
		tb.AddRow(r.Config, r.FileType,
			fmt.Sprintf("%.1f s", r.ExecSec), fmt.Sprintf("%.1f s", r.IOSec),
			fmt.Sprintf("%.1f MB/s", r.SwMBs), fmt.Sprintf("%.1f MB/s", r.WwMBs),
			fmt.Sprintf("%.1f MB/s", r.WrMBs), fmt.Sprintf("%.1f MB/s", r.CrMBs))
	}
	return Artifact{ID: id, Title: title, Text: tb.String()}
}

// Fig17Data returns the Aohyper MADbench2 rows.
func Fig17Data() []MadRunRow { return madRunRows(Aohyper, AohyperOrgs, []int{16}) }

// Fig17 regenerates Fig. 17: MADbench2 times and transfer rates on
// the cluster Aohyper (16 processes, UNIQUE and SHARED).
func Fig17() Artifact {
	return madRunArtifact("fig17", "MADbench2 on Aohyper, 16 processes", Fig17Data())
}

// Fig18Data returns the Cluster A MADbench2 rows.
func Fig18Data() []MadRunRow {
	return madRunRows(ClusterA, []cluster.Organization{cluster.RAID5}, []int{16, 64})
}

// Fig18 regenerates Fig. 18: MADbench2 on cluster A, 16 & 64
// processes.
func Fig18() Artifact {
	return madRunArtifact("fig18", "MADbench2 on cluster A, 16 & 64 processes", Fig18Data())
}

// MadUsedRow is one row of the MADbench2 used-percentage tables
// (IX, X, XI): per-function used % of one I/O-path level.
type MadUsedRow struct {
	Config   string
	FileType string
	Wr       float64
	Cr       float64
	Sw       float64
	Ww       float64
}

// madUsedRows computes per-function used percentages against one
// level's characterized table. Each MADbench2 function moves
// SliceBytes blocks sequentially, so the lookup uses the profile's
// dominant block size with sequential mode.
func madUsedRows(pl Platform, orgs []cluster.Organization, procsList []int, level core.Level) []MadUsedRow {
	var rows []MadUsedRow
	for _, org := range orgs {
		for _, procs := range procsList {
			for _, ft := range madFileTypes {
				ev := EvalMadBench(pl, org, procs, ft)
				ch := Characterization(pl, org)
				label := org.String()
				if len(procsList) > 1 {
					label = fmt.Sprintf("%d procs", procs)
				}
				bs := int64(0)
				if p := ev.Profile(); len(p.WriteBlockSizes) > 0 {
					bs = p.WriteBlockSizes[0].Bytes
				}
				access := core.Global
				if level == core.LevelLocalFS {
					access = core.Local
				}
				usedOf := func(op core.OpType, measured float64) float64 {
					rate, _, ok := ch.Table(level).Lookup(op, bs, access, trace.Sequential)
					if !ok || rate <= 0 {
						return -1
					}
					return measured / rate * 100
				}
				pr := ev.Result().PhaseRates
				rows = append(rows, MadUsedRow{
					Config:   label,
					FileType: ft.String(),
					Wr:       usedOf(core.Read, pr["W_r"]),
					Cr:       usedOf(core.Read, pr["C_r"]),
					Sw:       usedOf(core.Write, pr["S_w"]),
					Ww:       usedOf(core.Write, pr["W_w"]),
				})
			}
		}
	}
	return rows
}

func madUsedArtifact(id, title string, rows []MadUsedRow) Artifact {
	var tb stats.Table
	tb.AddRow("I/O configuration", "W_r", "C_r", "S_w", "W_w", "FILETYPE")
	for _, r := range rows {
		tb.AddRow(r.Config, pct(r.Wr), pct(r.Cr), pct(r.Sw), pct(r.Ww), r.FileType)
	}
	return Artifact{ID: id, Title: title, Text: tb.String()}
}

// Table9Data returns the Table IX rows.
func Table9Data() []MadUsedRow {
	return madUsedRows(Aohyper, AohyperOrgs, []int{16}, core.LevelLocalFS)
}

// Table9 regenerates Table IX: % of use for MADbench2 on the local
// filesystem level, Aohyper.
func Table9() Artifact {
	return madUsedArtifact("tab9", "% of use — MADbench2 on local filesystem, Aohyper", Table9Data())
}

// Table10 regenerates Table X: % of use at network-filesystem level,
// cluster A.
func Table10() Artifact {
	return madUsedArtifact("tab10", "% of use — MADbench2 on network filesystem, cluster A",
		madUsedRows(ClusterA, []cluster.Organization{cluster.RAID5}, []int{16, 64}, core.LevelNFS))
}

// Table11 regenerates Table XI: % of use at local-filesystem level,
// cluster A.
func Table11() Artifact {
	return madUsedArtifact("tab11", "% of use — MADbench2 on local filesystem, cluster A",
		madUsedRows(ClusterA, []cluster.Organization{cluster.RAID5}, []int{16, 64}, core.LevelLocalFS))
}
