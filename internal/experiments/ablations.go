package experiments

import (
	"fmt"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/ioreq"
	"ioeval/internal/mpiio"
	"ioeval/internal/raid"
	"ioeval/internal/sim"
	"ioeval/internal/stats"
	"ioeval/internal/workload/btio"
)

// The ablations quantify the design factors DESIGN.md calls out; they
// are not paper artifacts but support the configuration-analysis
// phase with sensitivity data.

const mb = int64(1) << 20

// AblationCollectiveBuffering compares independent vs two-phase
// collective I/O at small transfer sizes (IOR, 64 KB transfers).
func AblationCollectiveBuffering() Artifact {
	var tb stats.Table
	tb.AddRow("mode", "write", "read")
	for _, coll := range []bool{false, true} {
		c := cluster.Aohyper(cluster.RAID5)
		res, err := bench.RunIOR(c, bench.IORConfig{
			Procs: 8, FileSize: 8 * 32 * mb, BlockSizes: []int64{32 * mb},
			TransferSize: 64 << 10, Collective: coll,
		})
		if err != nil {
			panic(err)
		}
		name := "independent"
		if coll {
			name = "collective (two-phase)"
		}
		tb.AddRow(name, stats.MBs(res[0].WriteRate), stats.MBs(res[0].ReadRate))
	}
	return Artifact{ID: "abl-cb", Title: "Ablation: collective buffering (IOR, 64 KB transfers)", Text: tb.String()}
}

// AblationSharedNetwork compares the dedicated-data-network Aohyper
// against a variant where storage and MPI traffic share one GigE.
func AblationSharedNetwork() Artifact {
	var tb stats.Table
	tb.AddRow("network", "exec time", "I/O time")
	for _, separate := range []bool{true, false} {
		cfg := cluster.Aohyper(cluster.RAID5).Cfg
		cfg.SeparateDataNet = separate
		c := cluster.New(cfg)
		app := btio.New(btio.Config{
			Class: btio.Class{Name: "Q", N: 102, Steps: 40, WriteInterval: 5, ComputeTotal: 100 * sim.Second},
			Procs: 16, Subtype: btio.Full, ComputeScale: 1,
		})
		res, err := app.Run(c, nil)
		if err != nil {
			panic(err)
		}
		name := "shared"
		if separate {
			name = "dedicated data net"
		}
		tb.AddRow(name, fmt.Sprintf("%.1f s", res.ExecTime.Seconds()),
			fmt.Sprintf("%.1f s", res.IOTime.Seconds()))
	}
	return Artifact{ID: "abl-net", Title: "Ablation: dedicated vs shared data network (BT-IO full)", Text: tb.String()}
}

// AblationCachePolicy compares write-back vs write-through page
// caches on the I/O node (IOzone sequential writes).
func AblationCachePolicy() Artifact {
	var tb stats.Table
	tb.AddRow("policy", "block", "write rate")
	for _, wt := range []bool{false, true} {
		cfg := cluster.Aohyper(cluster.RAID5).Cfg
		cfg.WriteThrough = wt
		c := cluster.New(cfg)
		results, err := bench.RunIOzone(c.Eng, c.ServerFS, bench.IOzoneConfig{
			FileSize: 1 << 30, BlockSizes: []int64{64 << 10, 4 * mb}, Modes: []bench.Mode{bench.SeqWrite},
		})
		if err != nil {
			panic(err)
		}
		name := "write-back"
		if wt {
			name = "write-through"
		}
		for _, r := range results {
			tb.AddRow(name, stats.IBytes(r.BlockSize), stats.MBs(r.Rate))
		}
	}
	return Artifact{ID: "abl-cache", Title: "Ablation: page-cache write policy (IOzone on I/O node)", Text: tb.String()}
}

// AblationStripeUnit sweeps the RAID 5 stripe unit.
func AblationStripeUnit() Artifact {
	var tb stats.Table
	tb.AddRow("stripe unit", "seq write", "seq read")
	for _, su := range []int64{64 << 10, 256 << 10, 1 << 20} {
		cfg := cluster.Aohyper(cluster.RAID5).Cfg
		cfg.StripeUnit = su
		c := cluster.New(cfg)
		results, err := bench.RunIOzone(c.Eng, c.ServerFS, bench.IOzoneConfig{
			FileSize: 2 << 30, BlockSizes: []int64{4 * mb},
			Modes:       []bench.Mode{bench.SeqWrite, bench.SeqRead},
			BetweenRuns: func(p *sim.Proc) { c.IOCache.DropCaches(ioreq.Meta(p)) },
		})
		if err != nil {
			panic(err)
		}
		var w, r string
		for _, res := range results {
			if res.Mode == bench.SeqWrite {
				w = stats.MBs(res.Rate)
			} else {
				r = stats.MBs(res.Rate)
			}
		}
		tb.AddRow(stats.IBytes(su), w, r)
	}
	return Artifact{ID: "abl-stripe", Title: "Ablation: RAID 5 stripe unit (IOzone local, 4 MB blocks)", Text: tb.String()}
}

// AblationNFSTransferSize sweeps the NFS rsize/wsize mount options.
func AblationNFSTransferSize() Artifact {
	var tb stats.Table
	tb.AddRow("rsize/wsize", "seq write", "seq read")
	for _, sz := range []int64{32 << 10, 256 << 10, 1 << 20} {
		cfg := cluster.Aohyper(cluster.RAID5).Cfg
		cfg.NFSClient.RSize, cfg.NFSClient.WSize = sz, sz
		c := cluster.New(cfg)
		results, err := bench.RunIOzone(c.Eng, c.Nodes[0].NFS, bench.IOzoneConfig{
			FileSize: 1 << 30, BlockSizes: []int64{4 * mb},
			Modes: []bench.Mode{bench.SeqWrite, bench.SeqRead},
		})
		if err != nil {
			panic(err)
		}
		var w, r string
		for _, res := range results {
			if res.Mode == bench.SeqWrite {
				w = stats.MBs(res.Rate)
			} else {
				r = stats.MBs(res.Rate)
			}
		}
		tb.AddRow(stats.IBytes(sz), w, r)
	}
	return Artifact{ID: "abl-nfs", Title: "Ablation: NFS rsize/wsize (IOzone over NFS)", Text: tb.String()}
}

// AblationIONodes compares the single-NFS-node architecture against
// a PVFS-like parallel filesystem striped over 1, 2 and 4 I/O nodes
// for both BT-IO subtypes — the "number and placement of I/O nodes"
// factor of the configuration-analysis phase, explored on the
// simulator as the paper's future work proposes (via SIMCAN there).
func AblationIONodes() Artifact {
	var tb stats.Table
	tb.AddRow("storage", "subtype", "I/O time")
	quickClass := btio.Class{Name: "Q", N: 102, Steps: 40, WriteInterval: 5}
	run := func(label string, pfsNodes int, st btio.Subtype) {
		cfg := cluster.Aohyper(cluster.RAID5).Cfg
		cfg.PFSIONodes = pfsNodes
		c := cluster.New(cfg)
		app := btio.New(btio.Config{Class: quickClass, Procs: 16, Subtype: st, UsePFS: pfsNodes > 0})
		res, err := app.Run(c, nil)
		if err != nil {
			panic(err)
		}
		tb.AddRow(label, st.String(), fmt.Sprintf("%.1f s", res.IOTime.Seconds()))
	}
	for _, st := range []btio.Subtype{btio.Full, btio.Simple} {
		run("NFS (1 I/O node)", 0, st)
		for _, n := range []int{1, 2, 4} {
			run(fmt.Sprintf("PFS (%d I/O nodes)", n), n, st)
		}
	}
	return Artifact{ID: "abl-ionodes", Title: "Ablation: number of I/O nodes (NFS vs PVFS-like striping, BT-IO)", Text: tb.String()}
}

// AblationAggregators sweeps the number of two-phase aggregators
// (cb_nodes) for a collective BT-IO write workload.
func AblationAggregators() Artifact {
	var tb stats.Table
	tb.AddRow("cb_nodes", "I/O time")
	for _, n := range []int{1, 2, 4, 8} {
		c := cluster.Aohyper(cluster.RAID5)
		hints := mpiio.DefaultHints()
		hints.CBNodes = n
		app := btio.New(btio.Config{
			Class: btio.Class{Name: "Q", N: 102, Steps: 40, WriteInterval: 5},
			Procs: 16, Subtype: btio.Full, Hints: &hints,
		})
		res, err := app.Run(c, nil)
		if err != nil {
			panic(err)
		}
		tb.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.1f s", res.IOTime.Seconds()))
	}
	return Artifact{ID: "abl-agg", Title: "Ablation: two-phase aggregator count (BT-IO full)", Text: tb.String()}
}

// AblationDegradedRAID5 quantifies the price of running a RAID 5
// exposed after a member failure: sequential rates on the I/O node's
// local filesystem, healthy vs degraded (reconstruction reads).
func AblationDegradedRAID5() Artifact {
	var tb stats.Table
	tb.AddRow("state", "seq write", "seq read")
	for _, degraded := range []bool{false, true} {
		c := cluster.Aohyper(cluster.RAID5)
		if degraded {
			c.Array.(*raid.Array).Fail(0)
		}
		results, err := bench.RunIOzone(c.Eng, c.ServerFS, bench.IOzoneConfig{
			FileSize: 2 << 30, BlockSizes: []int64{4 * mb},
			Modes:       []bench.Mode{bench.SeqWrite, bench.SeqRead},
			BetweenRuns: func(p *sim.Proc) { c.IOCache.DropCaches(ioreq.Meta(p)) },
		})
		if err != nil {
			panic(err)
		}
		name := "healthy"
		if degraded {
			name = "degraded (1 failed member)"
		}
		var w, r string
		for _, res := range results {
			if res.Mode == bench.SeqWrite {
				w = stats.MBs(res.Rate)
			} else {
				r = stats.MBs(res.Rate)
			}
		}
		tb.AddRow(name, w, r)
	}
	return Artifact{ID: "abl-degraded", Title: "Ablation: degraded RAID 5 (IOzone local, 4 MB blocks)", Text: tb.String()}
}

// AblationSyncExport contrasts the NFS export mode: the Linux default
// `sync` (a stable commit per application write) against `async`, for
// the small-record workload that is most exposed to it (BT-IO simple).
func AblationSyncExport() Artifact {
	var tb stats.Table
	tb.AddRow("export", "I/O time", "write time")
	quickClass := btio.Class{Name: "Q", N: 102, Steps: 40, WriteInterval: 5}
	for _, syncExport := range []bool{true, false} {
		cfg := cluster.Aohyper(cluster.RAID5).Cfg
		cfg.NFSServer.SyncExport = syncExport
		c := cluster.New(cfg)
		app := btio.New(btio.Config{Class: quickClass, Procs: 16, Subtype: btio.Simple})
		res, err := app.Run(c, nil)
		if err != nil {
			panic(err)
		}
		name := "async"
		if syncExport {
			name = "sync (default)"
		}
		tb.AddRow(name, fmt.Sprintf("%.1f s", res.IOTime.Seconds()),
			fmt.Sprintf("%.1f s", res.WriteTime.Seconds()))
	}
	return Artifact{ID: "abl-sync", Title: "Ablation: NFS sync vs async export (BT-IO simple)", Text: tb.String()}
}
