// Package experiments regenerates every table and figure of the
// paper's evaluation (Sections III–IV) on the simulated platforms.
// Each experiment function is memoized: the bench harness
// (bench_test.go) and the shape assertions (experiments_test.go)
// share one execution per process.
//
// Absolute numbers come from the simulated substrate, not the
// authors' hardware — EXPERIMENTS.md records, per artifact, the shape
// that must (and does) hold.
package experiments

import (
	"fmt"
	"strings"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/sweep"
	"ioeval/internal/workload"
	"ioeval/internal/workload/btio"
	"ioeval/internal/workload/madbench"
)

// Artifact is one regenerated table or figure.
type Artifact struct {
	ID    string // e.g. "fig5", "tab3"
	Title string
	Text  string // printable reproduction
}

func (a Artifact) String() string {
	return fmt.Sprintf("==== %s — %s ====\n%s", strings.ToUpper(a.ID), a.Title, a.Text)
}

// Platform identifies one of the paper's clusters.
type Platform int

// The two experimental platforms.
const (
	Aohyper Platform = iota
	ClusterA
)

func (pl Platform) String() string {
	if pl == Aohyper {
		return "Aohyper"
	}
	return "ClusterA"
}

// BuildCluster returns a fresh cluster for a platform/organization.
// Cluster A ignores org (it has a single RAID 5 configuration).
func BuildCluster(pl Platform, org cluster.Organization) *cluster.Cluster {
	if pl == Aohyper {
		return cluster.Aohyper(org)
	}
	return cluster.ClusterA()
}

// AohyperOrgs is the paper's three configurations of Fig. 4.
var AohyperOrgs = []cluster.Organization{cluster.JBOD, cluster.RAID1, cluster.RAID5}

// fsCharModes keeps characterization affordable: sequential plus
// random (strided phases fall back to random in the table search).
var fsCharModes = []bench.Mode{bench.SeqWrite, bench.SeqRead, bench.RandWrite, bench.RandRead}

// charConfig returns the paper's characterization parameters for a
// platform.
func charConfig(pl Platform) core.CharacterizeConfig {
	cfg := core.CharacterizeConfig{
		FSBlockSizes:  bench.DefaultBlockSizes(), // 32 KB … 16 MB
		FSModes:       fsCharModes,
		RandomOps:     2048,
		LibProcs:      8,
		LibBlockSizes: bench.DefaultIORBlockSizes(), // 1 MB … 1024 MB
		LibTransfer:   256 << 10,
		LibFileSize:   32 << 30, // the paper's 32 GB IOR file
	}
	if pl == ClusterA {
		cfg.LibFileSize = 40 << 30 // the paper used 40 GB on cluster A
	}
	return cfg
}

// --- sweep-engine backing --------------------------------------------
//
// All table/figure experiments run through one shared sweep.Engine:
// characterizations are single-flight per configuration, evaluations
// memoized per (configuration, application) cell, and the bench
// harness and shape tests share one execution per process — the same
// machinery cmd/iosweep exposes for what-if studies.

var engine = sweep.NewEngine(0)

// Engine returns the process-wide sweep engine backing the
// experiments (its telemetry snapshot counts characterizations and
// evaluations actually computed vs. served from cache).
func Engine() *sweep.Engine { return engine }

// sweepConfig is the sweep-engine cell key for a platform/organization.
func sweepConfig(pl Platform, org cluster.Organization) sweep.Config {
	if pl == ClusterA {
		org = cluster.RAID5 // Cluster A has a single configuration
	}
	return sweep.Config{
		Name:  fmt.Sprintf("%v/%v", pl, org),
		Build: func() *cluster.Cluster { return BuildCluster(pl, org) },
		Char:  charConfig(pl),
	}
}

// BTIOSpec returns the sweep workload spec of a BT-IO run.
func BTIOSpec(procs int, st btio.Subtype) sweep.AppSpec {
	return sweep.AppSpec{
		Name: fmt.Sprintf("btio/%d/%v", procs, st),
		New: func() workload.App {
			return btio.New(btio.Config{
				Class:        btio.ClassC,
				Procs:        procs,
				Subtype:      st,
				ComputeScale: 1.0,
			})
		},
	}
}

// MadBenchSpec returns the sweep workload spec of a MADbench2 run.
func MadBenchSpec(procs int, ft madbench.FileType) sweep.AppSpec {
	return sweep.AppSpec{
		Name: fmt.Sprintf("madbench/%d/%v", procs, ft),
		New: func() workload.App {
			return madbench.New(madbench.Config{
				Procs:    procs,
				KPix:     18,
				Bins:     8,
				FileType: ft,
				BusyWork: 1e9, // 1 s busy-work per bin (IO mode)
			})
		},
	}
}

// Characterization returns (computing once) the three-level
// characterization of a platform/organization.
func Characterization(pl Platform, org cluster.Organization) *core.Characterization {
	cfg := sweepConfig(pl, org)
	ch, err := engine.Characterization(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: characterize %s: %v", cfg.Name, err))
	}
	return ch
}

// EvalBTIO returns (computing once) the evaluation of NAS BT-IO on a
// platform/organization.
func EvalBTIO(pl Platform, org cluster.Organization, procs int, st btio.Subtype) *core.Evaluation {
	return eval(sweepConfig(pl, org), BTIOSpec(procs, st))
}

// EvalMadBench returns (computing once) the evaluation of MADbench2.
func EvalMadBench(pl Platform, org cluster.Organization, procs int, ft madbench.FileType) *core.Evaluation {
	return eval(sweepConfig(pl, org), MadBenchSpec(procs, ft))
}

func eval(cfg sweep.Config, app sweep.AppSpec) *core.Evaluation {
	ev, err := engine.Evaluate(cfg, app)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return ev
}

// SweepBTIOAohyper ranks Aohyper's three device organizations for the
// two BT-IO subtypes through the sweep engine — the methodology's
// configuration-recommendation loop as one artifact. It shares the
// engine's evaluation cache with the Table III/IV and Fig. 12
// generators, so the ranked view costs no extra runs.
func SweepBTIOAohyper() Artifact {
	grid := sweep.Grid{
		Apps: []sweep.AppSpec{BTIOSpec(16, btio.Full), BTIOSpec(16, btio.Simple)},
	}
	for _, org := range AohyperOrgs {
		grid.Configs = append(grid.Configs, sweepConfig(Aohyper, org))
	}
	rep, err := engine.Run(grid, sweep.ByIOTime)
	if err != nil {
		panic(fmt.Sprintf("experiments: sweep: %v", err))
	}
	return Artifact{
		ID:    "sweep-btio",
		Title: "Configuration sweep — NAS BT-IO class C, 16 processes, Aohyper organizations",
		Text:  rep.String(),
	}
}
