// Package experiments regenerates every table and figure of the
// paper's evaluation (Sections III–IV) on the simulated platforms.
// Each experiment function is memoized: the bench harness
// (bench_test.go) and the shape assertions (experiments_test.go)
// share one execution per process.
//
// Absolute numbers come from the simulated substrate, not the
// authors' hardware — EXPERIMENTS.md records, per artifact, the shape
// that must (and does) hold.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/workload"
	"ioeval/internal/workload/btio"
	"ioeval/internal/workload/madbench"
)

// Artifact is one regenerated table or figure.
type Artifact struct {
	ID    string // e.g. "fig5", "tab3"
	Title string
	Text  string // printable reproduction
}

func (a Artifact) String() string {
	return fmt.Sprintf("==== %s — %s ====\n%s", strings.ToUpper(a.ID), a.Title, a.Text)
}

// Platform identifies one of the paper's clusters.
type Platform int

// The two experimental platforms.
const (
	Aohyper Platform = iota
	ClusterA
)

func (pl Platform) String() string {
	if pl == Aohyper {
		return "Aohyper"
	}
	return "ClusterA"
}

// BuildCluster returns a fresh cluster for a platform/organization.
// Cluster A ignores org (it has a single RAID 5 configuration).
func BuildCluster(pl Platform, org cluster.Organization) *cluster.Cluster {
	if pl == Aohyper {
		return cluster.Aohyper(org)
	}
	return cluster.ClusterA()
}

// AohyperOrgs is the paper's three configurations of Fig. 4.
var AohyperOrgs = []cluster.Organization{cluster.JBOD, cluster.RAID1, cluster.RAID5}

// fsCharModes keeps characterization affordable: sequential plus
// random (strided phases fall back to random in the table search).
var fsCharModes = []bench.Mode{bench.SeqWrite, bench.SeqRead, bench.RandWrite, bench.RandRead}

// charConfig returns the paper's characterization parameters for a
// platform.
func charConfig(pl Platform) core.CharacterizeConfig {
	cfg := core.CharacterizeConfig{
		FSBlockSizes:  bench.DefaultBlockSizes(), // 32 KB … 16 MB
		FSModes:       fsCharModes,
		RandomOps:     2048,
		LibProcs:      8,
		LibBlockSizes: bench.DefaultIORBlockSizes(), // 1 MB … 1024 MB
		LibTransfer:   256 << 10,
		LibFileSize:   32 << 30, // the paper's 32 GB IOR file
	}
	if pl == ClusterA {
		cfg.LibFileSize = 40 << 30 // the paper used 40 GB on cluster A
	}
	return cfg
}

// --- memoization ------------------------------------------------------

var (
	charMu    sync.Mutex
	charCache = map[string]*core.Characterization{}

	evalMu    sync.Mutex
	evalCache = map[string]*core.Evaluation{}
)

// Characterization returns (computing once) the three-level
// characterization of a platform/organization.
func Characterization(pl Platform, org cluster.Organization) *core.Characterization {
	if pl == ClusterA {
		org = cluster.RAID5 // Cluster A has a single configuration
	}
	key := fmt.Sprintf("%v/%v", pl, org)
	charMu.Lock()
	defer charMu.Unlock()
	if ch, ok := charCache[key]; ok {
		return ch
	}
	ch, err := core.Characterize(func() *cluster.Cluster { return BuildCluster(pl, org) }, charConfig(pl))
	if err != nil {
		panic(fmt.Sprintf("experiments: characterize %s: %v", key, err))
	}
	charCache[key] = ch
	return ch
}

// EvalBTIO returns (computing once) the evaluation of NAS BT-IO on a
// platform/organization.
func EvalBTIO(pl Platform, org cluster.Organization, procs int, st btio.Subtype) *core.Evaluation {
	key := fmt.Sprintf("btio/%v/%v/%d/%v", pl, org, procs, st)
	return memoEval(key, pl, org, btio.New(btio.Config{
		Class:        btio.ClassC,
		Procs:        procs,
		Subtype:      st,
		ComputeScale: 1.0,
	}))
}

// EvalMadBench returns (computing once) the evaluation of MADbench2.
func EvalMadBench(pl Platform, org cluster.Organization, procs int, ft madbench.FileType) *core.Evaluation {
	key := fmt.Sprintf("madbench/%v/%v/%d/%v", pl, org, procs, ft)
	return memoEval(key, pl, org, madbench.New(madbench.Config{
		Procs:    procs,
		KPix:     18,
		Bins:     8,
		FileType: ft,
		BusyWork: 1e9, // 1 s busy-work per bin (IO mode)
	}))
}

func memoEval(key string, pl Platform, org cluster.Organization, app workload.App) *core.Evaluation {
	evalMu.Lock()
	defer evalMu.Unlock()
	if ev, ok := evalCache[key]; ok {
		return ev
	}
	ch := Characterization(pl, org)
	ev, err := core.Evaluate(BuildCluster(pl, org), app, ch)
	if err != nil {
		panic(fmt.Sprintf("experiments: evaluate %s: %v", key, err))
	}
	evalCache[key] = ev
	return ev
}
