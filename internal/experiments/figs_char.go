package experiments

import (
	"fmt"
	"strings"
	"sync"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/stats"
	"ioeval/internal/trace"
)

// Fig5Point is one curve point of the filesystem characterization.
type Fig5Point struct {
	Org       cluster.Organization
	Level     core.Level // LevelLocalFS or LevelNFS
	Mode      bench.Mode
	BlockSize int64
	RateMBs   float64
}

var fig5Once sync.Once
var fig5Points []Fig5Point

// Fig5Data returns the characterization points behind Fig. 5
// (Aohyper, local & network filesystem, JBOD/RAID1/RAID5), extracted
// from the memoized characterization tables.
func Fig5Data() []Fig5Point {
	fig5Once.Do(func() {
		for _, org := range AohyperOrgs {
			ch := Characterization(Aohyper, org)
			for _, level := range []core.Level{core.LevelLocalFS, core.LevelNFS} {
				for _, row := range ch.Table(level).Rows {
					if row.Mode != trace.Sequential {
						continue // Fig. 5 plots the sequential curves
					}
					mode := bench.SeqRead
					if row.Op == core.Write {
						mode = bench.SeqWrite
					}
					fig5Points = append(fig5Points, Fig5Point{
						Org: org, Level: level, Mode: mode,
						BlockSize: row.BlockSize, RateMBs: row.Rate / 1e6,
					})
				}
			}
		}
	})
	return fig5Points
}

// Fig5 regenerates Fig. 5: local and network filesystem
// characterization of the cluster Aohyper on its three device
// configurations.
func Fig5() Artifact {
	return charFigure("fig5",
		"Local & network filesystem characterization, cluster Aohyper (IOzone, file = 2×RAM)",
		Fig5Data())
}

// Fig13 regenerates Fig. 13 (same sweep on Cluster A).
func Fig13() Artifact {
	ch := Characterization(ClusterA, cluster.RAID5)
	var pts []Fig5Point
	for _, level := range []core.Level{core.LevelLocalFS, core.LevelNFS} {
		for _, row := range ch.Table(level).Rows {
			if row.Mode != trace.Sequential {
				continue
			}
			mode := bench.SeqRead
			if row.Op == core.Write {
				mode = bench.SeqWrite
			}
			pts = append(pts, Fig5Point{Org: cluster.RAID5, Level: level, Mode: mode,
				BlockSize: row.BlockSize, RateMBs: row.Rate / 1e6})
		}
	}
	return charFigure("fig13",
		"Local & network filesystem characterization, cluster A (IOzone)", pts)
}

func charFigure(id, title string, pts []Fig5Point) Artifact {
	var tb stats.Table
	tb.AddRow("config", "level", "mode", "block", "rate")
	for _, p := range pts {
		tb.AddRow(p.Org.String(), p.Level.String(), p.Mode.String(),
			stats.IBytes(p.BlockSize), fmt.Sprintf("%.1f MB/s", p.RateMBs))
	}
	return Artifact{ID: id, Title: title, Text: tb.String()}
}

// Fig6Point is one library-level characterization point.
type Fig6Point struct {
	Org       cluster.Organization
	BlockSize int64
	WriteMBs  float64
	ReadMBs   float64
}

// fig6For extracts the library-level table of a platform as points.
func fig6For(pl Platform, orgs []cluster.Organization) []Fig6Point {
	var pts []Fig6Point
	for _, org := range orgs {
		ch := Characterization(pl, org)
		byBS := map[int64]*Fig6Point{}
		var order []int64
		for _, row := range ch.Table(core.LevelIOLib).Rows {
			pt, ok := byBS[row.BlockSize]
			if !ok {
				pt = &Fig6Point{Org: org, BlockSize: row.BlockSize}
				byBS[row.BlockSize] = pt
				order = append(order, row.BlockSize)
			}
			if row.Op == core.Write {
				pt.WriteMBs = row.Rate / 1e6
			} else {
				pt.ReadMBs = row.Rate / 1e6
			}
		}
		for _, bs := range order {
			pts = append(pts, *byBS[bs])
		}
	}
	return pts
}

// Fig6Data returns the Aohyper library-level points.
func Fig6Data() []Fig6Point { return fig6For(Aohyper, AohyperOrgs) }

// Fig6 regenerates Fig. 6: I/O library characterization on Aohyper
// (IOR, 8 processes, 256 KB transfers).
func Fig6() Artifact {
	return libFigure("fig6", "I/O library characterization, cluster Aohyper (IOR, 8 procs)", Fig6Data())
}

// Fig14 regenerates Fig. 14 (library level on Cluster A).
func Fig14() Artifact {
	return libFigure("fig14", "I/O library characterization, cluster A (IOR, 8 procs)",
		fig6For(ClusterA, []cluster.Organization{cluster.RAID5}))
}

func libFigure(id, title string, pts []Fig6Point) Artifact {
	var tb stats.Table
	tb.AddRow("config", "block", "write", "read")
	for _, p := range pts {
		tb.AddRow(p.Org.String(), stats.IBytes(p.BlockSize),
			fmt.Sprintf("%.1f MB/s", p.WriteMBs), fmt.Sprintf("%.1f MB/s", p.ReadMBs))
	}
	return Artifact{ID: id, Title: title, Text: tb.String()}
}

// PerfTables renders the full Table-I-style performance tables of a
// platform (all levels), for completeness of the characterization
// phase output.
func PerfTables(pl Platform, org cluster.Organization) string {
	ch := Characterization(pl, org)
	var b strings.Builder
	for _, level := range core.Levels() {
		b.WriteString(core.FormatPerfTable(ch.Table(level)))
		b.WriteByte('\n')
	}
	return b.String()
}
