package experiments

import (
	"fmt"
	"strings"

	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/stats"
	"ioeval/internal/trace"
	"ioeval/internal/workload/btio"
)

// Table2 regenerates Table II: NAS BT-IO characterization, class C,
// 16 processes, full and simple subtypes (from the traced runs on
// Aohyper RAID 5).
func Table2() Artifact {
	return btioCharacterization("tab2", 16, Aohyper, cluster.RAID5,
		"NAS BT-IO characterization — class C, 16 processes")
}

// Table5 regenerates Table V: the same characterization with 64
// processes (run on Cluster A, which has 32 nodes).
func Table5() Artifact {
	return btioCharacterization("tab5", 64, ClusterA, cluster.RAID5,
		"NAS BT-IO characterization — class C, 64 processes")
}

func btioCharacterization(id string, procs int, pl Platform, org cluster.Organization, title string) Artifact {
	var b strings.Builder
	for _, st := range []btio.Subtype{btio.Full, btio.Simple} {
		ev := EvalBTIO(pl, org, procs, st)
		fmt.Fprintf(&b, "[%s subtype]\n%s\n", st, core.FormatProfile(ev.AppName(), ev.Profile()))
	}
	return Artifact{ID: id, Title: title, Text: b.String()}
}

// Fig8 regenerates Fig. 8: BT-IO trace timelines for 16 processes,
// full and simple subtypes.
func Fig8() Artifact {
	var b strings.Builder
	for _, st := range []btio.Subtype{btio.Full, btio.Simple} {
		ev := EvalBTIO(Aohyper, cluster.RAID5, 16, st)
		fmt.Fprintf(&b, "[%s subtype]\n%s\n", st, trace.Timeline{Width: 100}.Render(ev.Trace().Events()))
	}
	return Artifact{ID: "fig8", Title: "NAS BT-IO traces, 16 processes (W write, R read, C compute, M comm)", Text: b.String()}
}

// UsedPctRow is one row of a used-percentage artifact.
type UsedPctRow struct {
	Config  string
	Subtype string
	IOLib   float64
	NFS     float64
	LocalFS float64
}

// btioUsedRows computes used percentages for BT-IO on a set of
// configurations.
func btioUsedRows(pl Platform, orgs []cluster.Organization, procsList []int, op core.OpType) []UsedPctRow {
	var rows []UsedPctRow
	for _, org := range orgs {
		for _, procs := range procsList {
			for _, st := range []btio.Subtype{btio.Full, btio.Simple} {
				ev := EvalBTIO(pl, org, procs, st)
				label := org.String()
				if len(procsList) > 1 {
					label = fmt.Sprintf("%d procs", procs)
				}
				rows = append(rows, UsedPctRow{
					Config:  label,
					Subtype: strings.ToUpper(st.String()),
					IOLib:   ev.UsedFor(core.LevelIOLib, op),
					NFS:     ev.UsedFor(core.LevelNFS, op),
					LocalFS: ev.UsedFor(core.LevelLocalFS, op),
				})
			}
		}
	}
	return rows
}

func usedArtifact(id, title string, rows []UsedPctRow) Artifact {
	var tb stats.Table
	tb.AddRow("I/O configuration", "I/O Lib", "NFS", "Local FS", "SUBTYPE")
	for _, r := range rows {
		tb.AddRow(r.Config, pct(r.IOLib), pct(r.NFS), pct(r.LocalFS), r.Subtype)
	}
	return Artifact{ID: id, Title: title, Text: tb.String()}
}

func pct(v float64) string {
	if v < 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f", v)
}

// Table3 regenerates Table III: % of I/O system use for BT-IO writes
// on Aohyper's three configurations.
func Table3() Artifact {
	return usedArtifact("tab3", "% of I/O system use — NAS BT-IO, writing operations, Aohyper",
		btioUsedRows(Aohyper, AohyperOrgs, []int{16}, core.Write))
}

// Table4 regenerates Table IV: the reading-operations counterpart.
func Table4() Artifact {
	return usedArtifact("tab4", "% of I/O system use — NAS BT-IO, reading operations, Aohyper",
		btioUsedRows(Aohyper, AohyperOrgs, []int{16}, core.Read))
}

// Table6 regenerates Table VI (Cluster A, writes, 16 & 64 procs).
func Table6() Artifact {
	return usedArtifact("tab6", "% of I/O system use — NAS BT-IO, writing operations, cluster A",
		btioUsedRows(ClusterA, []cluster.Organization{cluster.RAID5}, []int{16, 64}, core.Write))
}

// Table7 regenerates Table VII (Cluster A, reads).
func Table7() Artifact {
	return usedArtifact("tab7", "% of I/O system use — NAS BT-IO, reading operations, cluster A",
		btioUsedRows(ClusterA, []cluster.Organization{cluster.RAID5}, []int{16, 64}, core.Read))
}

// RunFig is the data of an execution-time figure (Figs. 12 and 15).
type RunFig struct {
	Label     string
	Subtype   string
	ExecSec   float64
	IOSec     float64
	ThruMBs   float64
	IOPctExec float64
}

func btioRunFig(pl Platform, orgs []cluster.Organization, procsList []int) []RunFig {
	var out []RunFig
	for _, org := range orgs {
		for _, procs := range procsList {
			for _, st := range []btio.Subtype{btio.Full, btio.Simple} {
				ev := EvalBTIO(pl, org, procs, st)
				label := org.String()
				if len(procsList) > 1 {
					label = fmt.Sprintf("%d procs", procs)
				}
				res := ev.Result()
				out = append(out, RunFig{
					Label:     label,
					Subtype:   strings.ToUpper(st.String()),
					ExecSec:   res.ExecTime.Seconds(),
					IOSec:     res.IOTime.Seconds(),
					ThruMBs:   res.Throughput() / 1e6,
					IOPctExec: 100 * float64(res.IOTime) / float64(res.ExecTime),
				})
			}
		}
	}
	return out
}

func runFigArtifact(id, title string, rows []RunFig) Artifact {
	var tb stats.Table
	tb.AddRow("config", "subtype", "exec time", "I/O time", "I/O % of exec", "throughput")
	for _, r := range rows {
		tb.AddRow(r.Label, r.Subtype,
			fmt.Sprintf("%.1f s", r.ExecSec), fmt.Sprintf("%.1f s", r.IOSec),
			fmt.Sprintf("%.1f%%", r.IOPctExec), fmt.Sprintf("%.1f MB/s", r.ThruMBs))
	}
	return Artifact{ID: id, Title: title, Text: tb.String()}
}

// Fig12Data returns the Fig. 12 rows.
func Fig12Data() []RunFig { return btioRunFig(Aohyper, AohyperOrgs, []int{16}) }

// Fig12 regenerates Fig. 12: BT-IO class C, 16 processes — execution
// time, I/O time and throughput on Aohyper's three configurations.
func Fig12() Artifact {
	return runFigArtifact("fig12", "NAS BT-IO class C, 16 processes, Aohyper", Fig12Data())
}

// Fig15Data returns the Fig. 15 rows.
func Fig15Data() []RunFig {
	return btioRunFig(ClusterA, []cluster.Organization{cluster.RAID5}, []int{16, 64})
}

// Fig15 regenerates Fig. 15: BT-IO on cluster A, 16 and 64 processes.
func Fig15() Artifact {
	return runFigArtifact("fig15", "NAS BT-IO class C, 16 & 64 processes, cluster A", Fig15Data())
}
