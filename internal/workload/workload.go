// Package workload defines the application-side contract the
// methodology evaluates: an App runs on a simulated cluster under a
// tracer, and reports its execution metrics (the paper's "execution
// time, I/O time, transfer rate" measurements). Subpackages implement
// the paper's two applications: NAS BT-IO and MadBench2.
package workload

import (
	"ioeval/internal/cluster"
	"ioeval/internal/mpiio"
	"ioeval/internal/sim"
)

// Result is what a run reports (Figs. 12, 15, 17, 18).
type Result struct {
	ExecTime sim.Duration // wall time of the whole run
	IOTime   sim.Duration // max per-rank time spent inside I/O calls

	BytesRead    int64
	BytesWritten int64

	// ReadTime and WriteTime are the max per-rank cumulative times in
	// read and write calls respectively.
	ReadTime, WriteTime sim.Duration

	// PhaseRates holds named per-phase aggregate transfer rates in
	// bytes/second (MadBench2's S_w, W_w, W_r, C_r).
	PhaseRates map[string]float64
}

// Throughput returns the overall I/O rate (bytes moved per second of
// I/O time).
func (r Result) Throughput() float64 {
	d := r.IOTime.Seconds()
	if d <= 0 {
		return 0
	}
	return float64(r.BytesRead+r.BytesWritten) / d
}

// App is a runnable parallel application.
type App interface {
	Name() string
	Procs() int
	// Run executes the application to completion on the cluster,
	// reporting events to tr (which may be nil).
	Run(c *cluster.Cluster, tr mpiio.Tracer) (Result, error)
}

// RateAggregator accumulates the named per-phase measurements behind
// Result.PhaseRates: cumulative per-rank time and total bytes per key.
// Ranks run in parallel, so a key's aggregate rate is its total bytes
// over the slowest rank's cumulative time in it — MADbench2's S_w,
// W_r, W_w, C_r convention, shared by every workload that reports
// phase rates (the hand-coded MADbench2 and the synthetic engine).
type RateAggregator struct {
	np    int
	keys  []string // declaration order, for deterministic iteration
	durs  map[string][]sim.Duration
	bytes map[string]int64
}

// NewRateAggregator returns an empty aggregator for np ranks.
func NewRateAggregator(np int) *RateAggregator {
	return &RateAggregator{np: np, durs: map[string][]sim.Duration{}, bytes: map[string]int64{}}
}

// Declare registers keys up front so they participate in Rates even
// when no rank ever spends time in them (they are then omitted from
// the map, but the aggregator counts as non-empty).
func (ra *RateAggregator) Declare(keys ...string) {
	for _, k := range keys {
		ra.ensure(k)
	}
}

func (ra *RateAggregator) ensure(key string) []sim.Duration {
	if d, ok := ra.durs[key]; ok {
		return d
	}
	d := make([]sim.Duration, ra.np)
	ra.durs[key] = d
	ra.keys = append(ra.keys, key)
	return d
}

// Add accumulates d of rank's time and n bytes moved under key.
func (ra *RateAggregator) Add(key string, rank int, d sim.Duration, n int64) {
	ra.ensure(key)[rank] += d
	ra.bytes[key] += n
}

// Duration returns rank's cumulative time under key.
func (ra *RateAggregator) Duration(key string, rank int) sim.Duration {
	if d, ok := ra.durs[key]; ok {
		return d[rank]
	}
	return 0
}

// Empty reports whether no key was ever declared or added.
func (ra *RateAggregator) Empty() bool { return len(ra.keys) == 0 }

// Rates builds the PhaseRates map: nil when the aggregator is empty
// (workloads without phase structure report no rates at all);
// otherwise one entry per key whose slowest rank spent time in it —
// a key timed only by zero-duration phases is omitted rather than
// reported as an infinite rate.
func (ra *RateAggregator) Rates() map[string]float64 {
	if ra.Empty() {
		return nil
	}
	out := map[string]float64{}
	for _, key := range ra.keys {
		var worst sim.Duration
		for _, d := range ra.durs[key] {
			if d > worst {
				worst = d
			}
		}
		if s := worst.Seconds(); s > 0 {
			out[key] = float64(ra.bytes[key]) / s
		}
	}
	return out
}
