// Package workload defines the application-side contract the
// methodology evaluates: an App runs on a simulated cluster under a
// tracer, and reports its execution metrics (the paper's "execution
// time, I/O time, transfer rate" measurements). Subpackages implement
// the paper's two applications: NAS BT-IO and MadBench2.
package workload

import (
	"ioeval/internal/cluster"
	"ioeval/internal/mpiio"
	"ioeval/internal/sim"
)

// Result is what a run reports (Figs. 12, 15, 17, 18).
type Result struct {
	ExecTime sim.Duration // wall time of the whole run
	IOTime   sim.Duration // max per-rank time spent inside I/O calls

	BytesRead    int64
	BytesWritten int64

	// ReadTime and WriteTime are the max per-rank cumulative times in
	// read and write calls respectively.
	ReadTime, WriteTime sim.Duration

	// PhaseRates holds named per-phase aggregate transfer rates in
	// bytes/second (MadBench2's S_w, W_w, W_r, C_r).
	PhaseRates map[string]float64
}

// Throughput returns the overall I/O rate (bytes moved per second of
// I/O time).
func (r Result) Throughput() float64 {
	d := r.IOTime.Seconds()
	if d <= 0 {
		return 0
	}
	return float64(r.BytesRead+r.BytesWritten) / d
}

// App is a runnable parallel application.
type App interface {
	Name() string
	Procs() int
	// Run executes the application to completion on the cluster,
	// reporting events to tr (which may be nil).
	Run(c *cluster.Cluster, tr mpiio.Tracer) (Result, error)
}
