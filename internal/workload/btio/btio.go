// Package btio implements the NAS BT-IO benchmark (NPB 2.4 I/O
// version) on the simulated cluster: the Block-Tridiagonal solver's
// diagonal multi-partitioning decomposition, a solution-field dump
// every WriteInterval time steps, and the two I/O subtypes the paper
// contrasts:
//
//   - full:   MPI-IO with collective buffering — data is rearranged
//     across processes and written as few large contiguous chunks.
//   - simple: MPI-IO without collective buffering — every process
//     writes each of its cell lines with an individual seek+write,
//     producing millions of ~1.6 KB strided operations.
//
// The decomposition reproduces the paper's characterization tables
// exactly in structure: class C on 16 processes yields 6561 records
// per process per dump of 1600 and 1640 bytes (Table II); on 64
// processes, 800- and 840-byte records (Table V).
package btio

import (
	"fmt"
	"math"

	"ioeval/internal/cluster"
	"ioeval/internal/fs"
	"ioeval/internal/mpiio"
	"ioeval/internal/sim"
	"ioeval/internal/workload"
)

// Subtype selects the BT-IO I/O implementation.
type Subtype int

// The paper's two evaluated subtypes.
const (
	Full Subtype = iota
	Simple
)

func (s Subtype) String() string {
	if s == Full {
		return "full"
	}
	return "simple"
}

// Class is an NPB problem class.
type Class struct {
	Name          string
	N             int // grid points per dimension
	Steps         int // time steps
	WriteInterval int // dump the solution every this many steps
	// ComputeTotal approximates the aggregate computation time of the
	// whole run on the reference hardware; it is divided over ranks
	// and steps.
	ComputeTotal sim.Duration
}

// NPB classes with I/O (per the NPB 2.4 specification).
var (
	ClassA = Class{Name: "A", N: 64, Steps: 200, WriteInterval: 5, ComputeTotal: 120 * sim.Second}
	ClassB = Class{Name: "B", N: 102, Steps: 200, WriteInterval: 5, ComputeTotal: 500 * sim.Second}
	ClassC = Class{Name: "C", N: 162, Steps: 200, WriteInterval: 5, ComputeTotal: 2000 * sim.Second}
)

const bytesPerPoint = 5 * 8 // five double-precision words per mesh point

// Config parameterizes a BT-IO run.
type Config struct {
	Class   Class
	Procs   int // must be a perfect square (BT requirement)
	Subtype Subtype
	// Path of the shared solution file on the cluster's NFS storage.
	Path string
	// ComputeScale scales the modeled computation time (1.0 = class
	// default; 0 = I/O only). Tests use small values.
	ComputeScale float64
	// UsePFS runs against the cluster's parallel filesystem instead
	// of NFS (the cluster must be built with Config.PFSIONodes > 0).
	UsePFS bool
	// Hints overrides the MPI-IO hints; zero value uses subtype
	// defaults (full: collective buffering on; simple: off).
	Hints *mpiio.Hints
}

// App is a configured BT-IO instance.
type App struct {
	cfg Config
	q   int   // process grid side (procs = q²)
	xs  []int // split of N into q chunks (larger chunks first)
	pfx []int // prefix sums of xs
}

var _ workload.App = (*App)(nil)

// New validates the configuration and returns the workload.
func New(cfg Config) *App {
	q := int(math.Sqrt(float64(cfg.Procs)))
	if q*q != cfg.Procs || cfg.Procs == 0 {
		panic(fmt.Sprintf("btio: %d processes is not a square", cfg.Procs))
	}
	if cfg.Path == "" {
		cfg.Path = "/btio.out"
	}
	if cfg.ComputeScale == 0 {
		cfg.ComputeScale = 0 // explicit: I/O-only unless caller sets it
	}
	a := &App{cfg: cfg, q: q}
	a.xs = split(cfg.Class.N, q)
	a.pfx = make([]int, q+1)
	for i, s := range a.xs {
		a.pfx[i+1] = a.pfx[i] + s
	}
	return a
}

// split divides n into q near-equal parts, larger parts first
// (162 into 4 → 41,41,40,40 — exactly NPB's cell sizing).
func split(n, q int) []int {
	out := make([]int, q)
	base, rem := n/q, n%q
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// Name implements workload.App.
func (a *App) Name() string {
	return fmt.Sprintf("NAS BT-IO class %s %s (%d procs)", a.cfg.Class.Name, a.cfg.Subtype, a.cfg.Procs)
}

// Procs implements workload.App.
func (a *App) Procs() int { return a.cfg.Procs }

// Config returns the (defaulted) configuration the app runs.
func (a *App) Config() Config { return a.cfg }

// Dumps returns the number of solution dumps in the run.
func (a *App) Dumps() int { return a.cfg.Class.Steps / a.cfg.Class.WriteInterval }

// DumpBytes returns the size of one solution dump.
func (a *App) DumpBytes() int64 {
	n := int64(a.cfg.Class.N)
	return n * n * n * bytesPerPoint
}

// cell is one Cartesian sub-block.
type cell struct{ cx, cy, cz int }

// cells returns the q cells of a rank under diagonal
// multi-partitioning: rank (r,c) owns, on each z-layer d, the cell
// shifted diagonally so every layer is fully covered and each rank's
// cells sit on a space diagonal.
func (a *App) cells(rank int) []cell {
	r, c := rank/a.q, rank%a.q
	out := make([]cell, a.q)
	for d := 0; d < a.q; d++ {
		out[d] = cell{cx: (c + d) % a.q, cy: (r + d) % a.q, cz: d}
	}
	return out
}

// GridRange is one Cartesian sub-block of the solution grid owned by
// a rank: [X0,X0+NX) × [Y0,Y0+NY) × [Z0,Z0+NZ) in grid points.
type GridRange struct {
	X0, NX int
	Y0, NY int
	Z0, NZ int
}

// BytesPerPoint is the record unit of the solution file: five
// double-precision words per mesh point.
const BytesPerPoint = bytesPerPoint

// Decomposition returns the rank's owned sub-blocks under diagonal
// multi-partitioning, in dump emission order. Together with
// BytesPerPoint and the class N this fully determines the rank's file
// accesses, which is how the synthetic re-expression of BT-IO derives
// its access lists without duplicating the partitioning code.
func (a *App) Decomposition(rank int) []GridRange {
	out := make([]GridRange, 0, a.q)
	for _, cl := range a.cells(rank) {
		out = append(out, GridRange{
			X0: a.pfx[cl.cx], NX: a.xs[cl.cx],
			Y0: a.pfx[cl.cy], NY: a.xs[cl.cy],
			Z0: a.pfx[cl.cz], NZ: a.xs[cl.cz],
		})
	}
	return out
}

// FaceBytes returns the size of one boundary-exchange message (a cell
// face of the largest cell).
func (a *App) FaceBytes() int64 {
	return int64(a.xs[0]) * int64(a.xs[0]) * bytesPerPoint
}

// MessagesPerDump returns the boundary-exchange messages each rank
// sends between dumps: 24 per time step (the paper observes ~120 per
// write phase at WriteInterval 5).
func (a *App) MessagesPerDump() int { return 24 * a.cfg.Class.WriteInterval }

// ComputePerDump returns the modeled per-rank computation time between
// dumps (0 when ComputeScale is 0).
func (a *App) ComputePerDump() sim.Duration {
	if a.cfg.ComputeScale <= 0 {
		return 0
	}
	perRank := float64(a.cfg.Class.ComputeTotal) / float64(a.cfg.Procs) / float64(a.Dumps())
	return sim.Duration(perRank * a.cfg.ComputeScale)
}

// dumpVecs builds the rank's records for the dump based at byte
// offset base: one vector element per (z, y) line of each owned cell.
func (a *App) dumpVecs(rank int, base int64) []fs.IOVec {
	n := int64(a.cfg.Class.N)
	var vecs []fs.IOVec
	for _, g := range a.Decomposition(rank) {
		x0, nx := int64(g.X0), int64(g.NX)
		for z := g.Z0; z < g.Z0+g.NZ; z++ {
			for y := g.Y0; y < g.Y0+g.NY; y++ {
				off := base + ((int64(z)*n+int64(y))*n+x0)*bytesPerPoint
				vecs = append(vecs, fs.IOVec{Off: off, Len: nx * bytesPerPoint})
			}
		}
	}
	return vecs
}

// RecordsPerDump returns the per-rank record count for one dump
// (6561 for class C on 16 procs — Table II).
func (a *App) RecordsPerDump(rank int) int { return len(a.dumpVecs(rank, 0)) }

// Run implements workload.App.
func (a *App) Run(c *cluster.Cluster, tr mpiio.Tracer) (workload.Result, error) {
	np := a.cfg.Procs
	w := c.NewWorld(c.RankNodes(np))
	w.SetTracer(tr)

	hints := mpiio.Hints{CollectiveBuffering: a.cfg.Subtype == Full}
	if a.cfg.Hints != nil {
		hints = *a.cfg.Hints
	}
	mounts := c.NFSMounts(np)
	if a.cfg.UsePFS {
		mounts = c.PFSMounts(np)
	}
	f := mpiio.OpenFile(w, a.cfg.Path, fs.ORead|fs.OWrite|fs.OCreate|fs.OTrunc,
		mounts, hints)

	dumps := a.Dumps()
	computePerDump := a.ComputePerDump()
	// Boundary-exchange bytes per dump: each rank exchanges cell faces
	// with neighbours every step (the paper observes ~120 messages per
	// write phase at 16 procs: 24 sends per step × 5 steps).
	faceBytes := a.FaceBytes()
	msgsPerDump := a.MessagesPerDump()

	var errs []error
	readTimes := make([]sim.Duration, np)
	writeTimes := make([]sim.Duration, np)

	for rank := 0; rank < np; rank++ {
		rank := rank
		c.Eng.Spawn(fmt.Sprintf("btio-r%d", rank), func(p *sim.Proc) {
			if err := f.Open(p, rank); err != nil {
				errs = append(errs, err)
				return
			}
			right := (rank + 1) % np
			for d := 0; d < dumps; d++ {
				if computePerDump > 0 {
					w.Compute(p, rank, computePerDump)
				}
				for m := 0; m < msgsPerDump; m++ {
					w.Send(p, rank, right, faceBytes)
				}
				vecs := a.dumpVecs(rank, int64(d)*a.DumpBytes())
				t0 := p.Now()
				if a.cfg.Subtype == Full {
					f.WriteVecAll(p, rank, vecs)
				} else {
					f.WriteVec(p, rank, vecs)
				}
				writeTimes[rank] += sim.Duration(p.Now() - t0)
			}
			w.Barrier(p, rank)
			// Verification read-back of the whole solution history.
			for d := 0; d < dumps; d++ {
				vecs := a.dumpVecs(rank, int64(d)*a.DumpBytes())
				t0 := p.Now()
				if a.cfg.Subtype == Full {
					f.ReadVecAll(p, rank, vecs)
				} else {
					f.ReadVec(p, rank, vecs)
				}
				readTimes[rank] += sim.Duration(p.Now() - t0)
			}
			f.Close(p, rank)
		})
	}
	end := c.Eng.Run()
	if len(errs) > 0 {
		return workload.Result{}, errs[0]
	}

	res := workload.Result{ExecTime: sim.Duration(end)}
	for r := 0; r < np; r++ {
		if readTimes[r] > res.ReadTime {
			res.ReadTime = readTimes[r]
		}
		if writeTimes[r] > res.WriteTime {
			res.WriteTime = writeTimes[r]
		}
		if tot := readTimes[r] + writeTimes[r]; tot > res.IOTime {
			res.IOTime = tot
		}
	}
	res.BytesWritten = int64(dumps) * a.DumpBytes()
	res.BytesRead = int64(dumps) * a.DumpBytes()
	return res, nil
}
