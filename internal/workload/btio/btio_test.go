package btio_test

import (
	"testing"

	"ioeval/internal/cluster"
	"ioeval/internal/mpiio"
	"ioeval/internal/sim"
	"ioeval/internal/trace"
	"ioeval/internal/workload/btio"
)

// quickClass is a reduced class for fast tests (4 dumps).
var quickClass = btio.Class{Name: "Q", N: 64, Steps: 20, WriteInterval: 5, ComputeTotal: 10 * sim.Second}

func TestDecompositionMatchesPaperTable2(t *testing.T) {
	// Class C, 16 procs: 6561 records per process per dump, sizes 1600
	// and 1640 bytes (the paper's 1.56 KB and 1.6 KB).
	a := btio.New(btio.Config{Class: btio.ClassC, Procs: 16, Subtype: btio.Simple})
	// Per-rank counts vary by ±1 around 6561 with the uneven 41/40
	// cell split; the total is exact.
	var perDump int
	for r := 0; r < 16; r++ {
		got := a.RecordsPerDump(r)
		if got < 6560 || got > 6562 {
			t.Fatalf("rank %d records per dump = %d, want ~6561", r, got)
		}
		perDump += got
	}
	if perDump != 16*6561 {
		t.Fatalf("records per dump (all ranks) = %d, want %d", perDump, 16*6561)
	}
	sizes := map[int64]int{}
	for _, v := range a.DumpVecs(3, 0) {
		sizes[v.Len]++
	}
	if len(sizes) > 2 {
		t.Fatalf("record sizes = %v, want only 1600/1640", sizes)
	}
	if sizes[1600] == 0 || sizes[1640] == 0 {
		t.Fatalf("record sizes = %v, want 1600 and 1640 bytes", sizes)
	}
	// Totals: 40 dumps × 104,976 records = 4,199,040 operations.
	if total := a.Dumps() * perDump; total != 4199040 {
		t.Fatalf("total write ops = %d, want 4199040", total)
	}
}

func TestDecompositionMatchesPaperTable5(t *testing.T) {
	// Class C, 64 procs: 800- and 840-byte records.
	a := btio.New(btio.Config{Class: btio.ClassC, Procs: 64, Subtype: btio.Simple})
	sizes := map[int64]int{}
	for _, v := range a.DumpVecs(17, 0) {
		sizes[v.Len]++
	}
	if sizes[800] == 0 || sizes[840] == 0 {
		t.Fatalf("record sizes = %v, want 800 and 840 bytes", sizes)
	}
}

func TestDumpBytesClassC(t *testing.T) {
	a := btio.New(btio.Config{Class: btio.ClassC, Procs: 16})
	want := int64(162) * 162 * 162 * 40
	if got := a.DumpBytes(); got != want {
		t.Fatalf("dump bytes = %d, want %d (~170MB)", got, want)
	}
}

func TestCellsCoverGridExactly(t *testing.T) {
	// Union of all ranks' records for one dump must cover the dump
	// bytes exactly once.
	for _, procs := range []int{4, 16} {
		a := btio.New(btio.Config{Class: btio.Class{Name: "t", N: 12, Steps: 5, WriteInterval: 5}, Procs: procs})
		covered := map[int64]int{}
		for r := 0; r < procs; r++ {
			for _, v := range a.DumpVecs(r, 0) {
				for b := v.Off; b < v.Off+v.Len; b += btio.BytesPerPoint {
					covered[b]++
				}
			}
		}
		wantPoints := 12 * 12 * 12
		if len(covered) != wantPoints {
			t.Fatalf("procs=%d: covered %d points, want %d", procs, len(covered), wantPoints)
		}
		for off, n := range covered {
			if n != 1 {
				t.Fatalf("procs=%d: offset %d covered %d times", procs, off, n)
			}
		}
	}
}

func TestNonSquareProcsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	btio.New(btio.Config{Class: btio.ClassA, Procs: 6})
}

func TestFullRunProducesPaperOpCounts(t *testing.T) {
	c := cluster.Aohyper(cluster.RAID5)
	tr := trace.New()
	a := btio.New(btio.Config{Class: quickClass, Procs: 4, Subtype: btio.Full})
	res, err := a.Run(c, tr)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	p := tr.Profile()
	// full: one collective op per rank per dump, writes then reads.
	wantOps := int64(4 * a.Dumps())
	if p.NumWrites != wantOps || p.NumReads != wantOps {
		t.Fatalf("ops: w=%d r=%d, want %d each", p.NumWrites, p.NumReads, wantOps)
	}
	if p.NumProcs != 4 || p.NumFiles != 1 {
		t.Fatalf("procs=%d files=%d", p.NumProcs, p.NumFiles)
	}
	if res.ExecTime <= 0 || res.IOTime <= 0 {
		t.Fatalf("result times: %+v", res)
	}
	if res.IOTime > res.ExecTime {
		t.Fatalf("IO time %v exceeds exec time %v", res.IOTime, res.ExecTime)
	}
}

func TestSimpleRunProducesPaperOpCounts(t *testing.T) {
	c := cluster.Aohyper(cluster.JBOD)
	tr := trace.New()
	a := btio.New(btio.Config{Class: quickClass, Procs: 4, Subtype: btio.Simple})
	if _, err := a.Run(c, tr); err != nil {
		t.Fatalf("run: %v", err)
	}
	p := tr.Profile()
	wantOps := int64(4 * a.Dumps() * a.RecordsPerDump(0))
	if p.NumWrites != wantOps || p.NumReads != wantOps {
		t.Fatalf("ops: w=%d r=%d, want %d each", p.NumWrites, p.NumReads, wantOps)
	}
}

func TestFullFasterThanSimple(t *testing.T) {
	run := func(st btio.Subtype) sim.Duration {
		c := cluster.Aohyper(cluster.RAID5)
		a := btio.New(btio.Config{Class: quickClass, Procs: 4, Subtype: st})
		res, err := a.Run(c, nil)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res.IOTime
	}
	full, simple := run(btio.Full), run(btio.Simple)
	if simple < 2*full {
		t.Fatalf("simple I/O time (%v) not ≫ full (%v)", simple, full)
	}
}

func TestPhasesMatchPaperStructure(t *testing.T) {
	// Full subtype: 40 write phases (one per dump, separated by
	// compute/comm) and 1 read phase (Fig. 8's description).
	c := cluster.Aohyper(cluster.RAID5)
	tr := trace.New()
	a := btio.New(btio.Config{Class: quickClass, Procs: 4, Subtype: btio.Full, ComputeScale: 0.1})
	if _, err := a.Run(c, tr); err != nil {
		t.Fatalf("run: %v", err)
	}
	var writePhases, readPhases int
	for _, ph := range tr.Phases(0) {
		if ph.Kind == mpiio.OpWrite {
			writePhases++
		} else {
			readPhases++
		}
	}
	if writePhases != a.Dumps() {
		t.Fatalf("write phases = %d, want %d", writePhases, a.Dumps())
	}
	if readPhases != 1 {
		t.Fatalf("read phases = %d, want 1", readPhases)
	}
}

func TestComputeScaleIncreasesExecNotIO(t *testing.T) {
	run := func(scale float64) (exec, io sim.Duration) {
		c := cluster.Aohyper(cluster.RAID5)
		a := btio.New(btio.Config{Class: quickClass, Procs: 4, Subtype: btio.Full, ComputeScale: scale})
		res, err := a.Run(c, nil)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res.ExecTime, res.IOTime
	}
	e0, io0 := run(0)
	e1, io1 := run(1.0)
	if e1 <= e0 {
		t.Fatalf("compute scale did not increase exec time (%v vs %v)", e1, e0)
	}
	diff := io1 - io0
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.25*float64(io0) {
		t.Fatalf("compute scale changed IO time too much: %v vs %v", io1, io0)
	}
}
