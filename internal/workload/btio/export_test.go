package btio

import "ioeval/internal/fs"

// DumpVecs exposes the per-rank record layout to the external test
// package (btio_test must be external: it imports trace, which now
// reaches back here through the synth re-expression generators).
func (a *App) DumpVecs(rank int, base int64) []fs.IOVec { return a.dumpVecs(rank, base) }
