package workload

import (
	"reflect"
	"testing"

	"ioeval/internal/sim"
)

func TestThroughput(t *testing.T) {
	cases := []struct {
		name string
		r    Result
		want float64
	}{
		{"normal", Result{BytesRead: 50 << 20, BytesWritten: 50 << 20, IOTime: sim.Second}, float64(100 << 20)},
		{"zero io time", Result{BytesRead: 1 << 20}, 0},
		{"negative io time", Result{BytesRead: 1 << 20, IOTime: -sim.Second}, 0},
		{"zero bytes", Result{IOTime: sim.Second}, 0},
		{"read only", Result{BytesRead: 8 << 20, IOTime: 2 * sim.Second}, float64(4 << 20)},
		{"write only", Result{BytesWritten: 8 << 20, IOTime: 2 * sim.Second}, float64(4 << 20)},
		{"sub-second io", Result{BytesWritten: 1 << 20, IOTime: 250 * sim.Millisecond}, float64(4 << 20)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.r.Throughput(); got != tc.want {
				t.Fatalf("throughput = %f, want %f", got, tc.want)
			}
		})
	}
}

func TestRateAggregatorRates(t *testing.T) {
	sec := sim.Second
	cases := []struct {
		name string
		fill func(ra *RateAggregator)
		want map[string]float64
	}{
		{
			// Workloads without phase structure report no rates at all:
			// the nil map keeps Result comparable against apps that never
			// touch the aggregator.
			"untouched is nil",
			func(ra *RateAggregator) {},
			nil,
		},
		{
			// Declared-but-unused keys make the aggregator non-empty but
			// are omitted from the map (no infinite rates).
			"declared only is empty non-nil",
			func(ra *RateAggregator) { ra.Declare("S_w", "W_r") },
			map[string]float64{},
		},
		{
			"single rank single key",
			func(ra *RateAggregator) { ra.Add("S_w", 0, 2*sec, 100) },
			map[string]float64{"S_w": 50},
		},
		{
			// Ranks run in parallel: the key's time is the slowest
			// rank's, the bytes are everyone's.
			"worst rank carries the key",
			func(ra *RateAggregator) {
				ra.Add("S_w", 0, sec, 100)
				ra.Add("S_w", 1, 4*sec, 100)
			},
			map[string]float64{"S_w": 50},
		},
		{
			"per-rank accumulation",
			func(ra *RateAggregator) {
				ra.Add("S_w", 0, sec, 60)
				ra.Add("S_w", 0, sec, 40) // same rank: durations add
			},
			map[string]float64{"S_w": 50},
		},
		{
			"zero-duration key omitted",
			func(ra *RateAggregator) {
				ra.Add("S_w", 0, sec, 100)
				ra.Add("C_r", 0, 0, 100) // timed at zero duration
			},
			map[string]float64{"S_w": 100},
		},
		{
			"independent keys",
			func(ra *RateAggregator) {
				ra.Add("S_w", 0, sec, 100)
				ra.Add("W_r", 1, 2*sec, 100)
			},
			map[string]float64{"S_w": 100, "W_r": 50},
		},
		{
			// Bytes can be zero with time spent (e.g. reads past EOF):
			// the key reports a zero rate, not an omission.
			"zero bytes with time",
			func(ra *RateAggregator) { ra.Add("W_r", 0, sec, 0) },
			map[string]float64{"W_r": 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ra := NewRateAggregator(2)
			tc.fill(ra)
			if got := ra.Rates(); !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("rates = %#v, want %#v", got, tc.want)
			}
		})
	}
}

func TestRateAggregatorDuration(t *testing.T) {
	ra := NewRateAggregator(2)
	if d := ra.Duration("S_w", 0); d != 0 {
		t.Fatalf("unknown key duration = %v, want 0", d)
	}
	ra.Add("S_w", 1, 3*sim.Second, 10)
	ra.Add("S_w", 1, sim.Second, 10)
	if d := ra.Duration("S_w", 1); d != 4*sim.Second {
		t.Fatalf("duration = %v, want 4s", d)
	}
	if d := ra.Duration("S_w", 0); d != 0 {
		t.Fatalf("untouched rank duration = %v, want 0", d)
	}
}

func TestRateAggregatorEmpty(t *testing.T) {
	ra := NewRateAggregator(1)
	if !ra.Empty() {
		t.Fatal("fresh aggregator not empty")
	}
	ra.Declare("S_w")
	if ra.Empty() {
		t.Fatal("declared aggregator still empty")
	}
}
