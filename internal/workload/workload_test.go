package workload

import (
	"testing"

	"ioeval/internal/sim"
)

func TestThroughput(t *testing.T) {
	r := Result{BytesRead: 50 << 20, BytesWritten: 50 << 20, IOTime: sim.Second}
	want := float64(100<<20) / 1.0
	if got := r.Throughput(); got != want {
		t.Fatalf("throughput = %f, want %f", got, want)
	}
}

func TestThroughputZeroIOTime(t *testing.T) {
	r := Result{BytesRead: 1 << 20}
	if got := r.Throughput(); got != 0 {
		t.Fatalf("throughput with zero I/O time = %f, want 0", got)
	}
}
