package flashio

import (
	"testing"

	"ioeval/internal/cluster"
	"ioeval/internal/mpiio"
	"ioeval/internal/trace"
)

func TestDefaults(t *testing.T) {
	a := New(Config{Procs: 16})
	// 80 blocks × 512 cells × 8 B = 320 KiB per variable per proc.
	if got := a.VarBytesPerProc(); got != 80*512*8 {
		t.Fatalf("var bytes = %d", got)
	}
	if got := a.PlotVarBytesPerProc(); got != 80*512*4 {
		t.Fatalf("plot var bytes = %d", got)
	}
	// Checkpoint: 24 vars × 16 procs × 320 KiB = 120 MiB.
	if got := a.CheckpointBytes(); got != 24*16*80*512*8 {
		t.Fatalf("checkpoint bytes = %d", got)
	}
}

func TestRunStructure(t *testing.T) {
	c := cluster.Aohyper(cluster.RAID5)
	tr := trace.New()
	a := New(Config{Procs: 4})
	res, err := a.Run(c, tr)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	p := tr.Profile()
	// Per rank: 24 checkpoint + 2×4 plotfile collectives = 32; ×4 ranks.
	if p.NumWrites != 4*32 {
		t.Fatalf("writes = %d, want 128", p.NumWrites)
	}
	if p.NumReads != 0 {
		t.Fatalf("reads = %d, want 0 (write-only benchmark)", p.NumReads)
	}
	if p.NumFiles != 3 {
		t.Fatalf("files = %d, want 3 (checkpoint + 2 plotfiles)", p.NumFiles)
	}
	if p.BytesWritten != res.BytesWritten {
		t.Fatalf("trace bytes %d vs result %d", p.BytesWritten, res.BytesWritten)
	}
	if res.IOTime <= 0 || res.IOTime > res.ExecTime {
		t.Fatalf("times: %+v", res)
	}
}

func TestCollectiveWritesAreSequentialAtServer(t *testing.T) {
	// The aggregated datasets must reach the server as large writes,
	// not per-block scatter: server write RPC count stays small.
	c := cluster.Aohyper(cluster.RAID5)
	a := New(Config{Procs: 8})
	if _, err := a.Run(c, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	total := a.CheckpointBytes() + 2*a.PlotVarBytesPerProc()*4*8
	if c.Server.Stats.BytesWritten != total {
		t.Fatalf("server bytes = %d, want %d", c.Server.Stats.BytesWritten, total)
	}
	// With two-phase aggregation, ops per dataset ≈ aggregators, not
	// procs × blocks.
	if c.Server.Stats.WriteRPCs > 3000 {
		t.Fatalf("write RPCs = %d, aggregation not effective", c.Server.Stats.WriteRPCs)
	}
}

func TestPhasesDetectedPerVariable(t *testing.T) {
	c := cluster.Aohyper(cluster.RAID5)
	tr := trace.New()
	a := New(Config{Procs: 4, Compute: 1e9})
	if _, err := a.Run(c, tr); err != nil {
		t.Fatalf("run: %v", err)
	}
	var writes int64
	for _, ph := range tr.Phases(0) {
		if ph.Kind == mpiio.OpWrite {
			writes += ph.Ops
		}
	}
	if writes != 32 {
		t.Fatalf("rank 0 write ops across phases = %d, want 32", writes)
	}
}
