// Package flashio implements the FLASH I/O benchmark — the checkpoint
// and plotfile writer of the FLASH astrophysics code, one of the
// standard parallel I/O benchmarks the paper's related work evaluates
// (Blue Gene studies; "Flash3 I/O"). Each process owns a fixed number
// of AMR blocks; a checkpoint writes every solution variable as one
// collectively-written dataset (double precision), and two plotfiles
// write a subset of variables in single precision — many medium-sized
// collective writes, a pattern distinct from both BT-IO subtypes and
// MADbench2.
package flashio

import (
	"fmt"

	"ioeval/internal/cluster"
	"ioeval/internal/fs"
	"ioeval/internal/mpiio"
	"ioeval/internal/sim"
	"ioeval/internal/workload"
)

// Config parameterizes a FLASH I/O run. Defaults mirror the standard
// benchmark setup: 80 blocks of 8×8×8 cells per process, 24
// checkpoint variables, 4 plotfile variables, two plotfiles.
type Config struct {
	Procs         int
	BlocksPerProc int
	CellsPerBlock int
	Vars          int
	PlotVars      int
	PathPrefix    string
	// Compute models the solver time preceding each dump.
	Compute sim.Duration
}

// App is a configured FLASH I/O instance.
type App struct {
	cfg Config
}

var _ workload.App = (*App)(nil)

// New validates the configuration and returns the workload.
func New(cfg Config) *App {
	if cfg.Procs <= 0 {
		panic("flashio: need at least one process")
	}
	if cfg.BlocksPerProc == 0 {
		cfg.BlocksPerProc = 80
	}
	if cfg.CellsPerBlock == 0 {
		cfg.CellsPerBlock = 8 * 8 * 8
	}
	if cfg.Vars == 0 {
		cfg.Vars = 24
	}
	if cfg.PlotVars == 0 {
		cfg.PlotVars = 4
	}
	if cfg.PathPrefix == "" {
		cfg.PathPrefix = "/flash"
	}
	return &App{cfg: cfg}
}

// Name implements workload.App.
func (a *App) Name() string {
	return fmt.Sprintf("FLASH I/O (%d procs, %d blocks/proc, %d vars)",
		a.cfg.Procs, a.cfg.BlocksPerProc, a.cfg.Vars)
}

// Procs implements workload.App.
func (a *App) Procs() int { return a.cfg.Procs }

// VarBytesPerProc returns a rank's contribution to one checkpoint
// variable dataset (double precision).
func (a *App) VarBytesPerProc() int64 {
	return int64(a.cfg.BlocksPerProc) * int64(a.cfg.CellsPerBlock) * 8
}

// PlotVarBytesPerProc is the single-precision plotfile counterpart.
func (a *App) PlotVarBytesPerProc() int64 { return a.VarBytesPerProc() / 2 }

// CheckpointBytes returns the total checkpoint size.
func (a *App) CheckpointBytes() int64 {
	return a.VarBytesPerProc() * int64(a.cfg.Vars) * int64(a.cfg.Procs)
}

// Run implements workload.App.
func (a *App) Run(c *cluster.Cluster, tr mpiio.Tracer) (workload.Result, error) {
	np := a.cfg.Procs
	w := c.NewWorld(c.RankNodes(np))
	w.SetTracer(tr)

	ckpt := mpiio.OpenFile(w, a.cfg.PathPrefix+"_hdf5_chk_0001",
		fs.OWrite|fs.OCreate|fs.OTrunc, c.NFSMounts(np), mpiio.DefaultHints())
	plots := []*mpiio.File{
		mpiio.OpenFile(w, a.cfg.PathPrefix+"_hdf5_plt_crn_0001",
			fs.OWrite|fs.OCreate|fs.OTrunc, c.NFSMounts(np), mpiio.DefaultHints()),
		mpiio.OpenFile(w, a.cfg.PathPrefix+"_hdf5_plt_cnt_0001",
			fs.OWrite|fs.OCreate|fs.OTrunc, c.NFSMounts(np), mpiio.DefaultHints()),
	}

	varBytes := a.VarBytesPerProc()
	plotBytes := a.PlotVarBytesPerProc()
	var errs []error
	ioTimes := make([]sim.Duration, np)

	for rank := 0; rank < np; rank++ {
		rank := rank
		c.Eng.Spawn(fmt.Sprintf("flash-r%d", rank), func(p *sim.Proc) {
			if err := ckpt.Open(p, rank); err != nil {
				errs = append(errs, err)
				return
			}
			for _, f := range plots {
				if err := f.Open(p, rank); err != nil {
					errs = append(errs, err)
					return
				}
			}
			if a.cfg.Compute > 0 {
				w.Compute(p, rank, a.cfg.Compute)
			}
			// Checkpoint: one collectively written dataset per variable;
			// dataset layout is variable-major with rank blocks contiguous.
			for v := 0; v < a.cfg.Vars; v++ {
				base := int64(v)*varBytes*int64(np) + int64(rank)*varBytes
				t0 := p.Now()
				ckpt.WriteAtAll(p, rank, base, varBytes)
				ioTimes[rank] += sim.Duration(p.Now() - t0)
			}
			w.Barrier(p, rank)
			// Plotfiles: PlotVars single-precision datasets each.
			for _, f := range plots {
				for v := 0; v < a.cfg.PlotVars; v++ {
					base := int64(v)*plotBytes*int64(np) + int64(rank)*plotBytes
					t0 := p.Now()
					f.WriteAtAll(p, rank, base, plotBytes)
					ioTimes[rank] += sim.Duration(p.Now() - t0)
				}
			}
			ckpt.Close(p, rank)
			for _, f := range plots {
				f.Close(p, rank)
			}
		})
	}
	end := c.Eng.Run()
	if len(errs) > 0 {
		return workload.Result{}, errs[0]
	}
	res := workload.Result{ExecTime: sim.Duration(end)}
	for _, d := range ioTimes {
		if d > res.IOTime {
			res.IOTime = d
		}
	}
	res.WriteTime = res.IOTime
	res.BytesWritten = a.CheckpointBytes() +
		2*plotBytes*int64(a.cfg.PlotVars)*int64(np)
	return res, nil
}
