package synth_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ioeval/internal/sim"
	"ioeval/internal/workload/btio"
	"ioeval/internal/workload/madbench"
	"ioeval/internal/workload/synth"
)

// TestSynthExampleSpecsInSync pins the committed example spec files
// to the generators that produced them: examples/synth-workload/*.json
// must be byte-identical to the corresponding `iosynth -emit ... -quick`
// output, so DSL or generator changes cannot silently strand the
// examples. Regenerate with:
//
//	go run ./cmd/iosynth -emit btio-full -procs 4 -quick -out examples/synth-workload/btio-full.json
//	go run ./cmd/iosynth -emit madbench-shared -procs 4 -quick -out examples/synth-workload/madbench-shared.json
func TestSynthExampleSpecsInSync(t *testing.T) {
	cases := []struct {
		file string
		spec *synth.Spec
	}{
		{"btio-full.json", synth.BTIOSpec(btio.Config{
			Class: btio.ClassA, Procs: 4, Subtype: btio.Full, ComputeScale: 1,
		})},
		{"madbench-shared.json", synth.MadbenchSpec(madbench.Config{
			Procs: 4, KPix: 4, FileType: madbench.Shared, BusyWork: sim.Second,
		})},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			path := filepath.Join("..", "..", "..", "examples", "synth-workload", tc.file)
			committed, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("committed example spec: %v", err)
			}
			var buf bytes.Buffer
			if err := tc.spec.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(committed, buf.Bytes()) {
				t.Errorf("%s drifted from its generator; regenerate with iosynth -emit (see test comment)", tc.file)
			}
		})
	}
}
