package synth_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ioeval/internal/mpiio"
	"ioeval/internal/trace"
	"ioeval/internal/workload/synth"
)

// randomSpec generates a valid phase graph from the seeded source:
// 1–4 ranks, shared and per-rank files on NFS or local storage, and a
// random mix of reads, writes, computes, sends, barriers, and syncs.
// A preload phase first writes each file's full extent so every later
// read is backed — the filesystem returns short reads past EOF, and
// the conservation property needs actual bytes to equal declared.
func randomSpec(r *rand.Rand, idx int) *synth.Spec {
	const extent = 1 << 20 // generated accesses stay well inside this
	np := 1 + r.Intn(4)
	nFiles := 1 + r.Intn(2)

	var files []synth.FileSpec
	var preload []synth.StepSpec
	for i := 0; i < nFiles; i++ {
		f := synth.FileSpec{
			Name:                fmt.Sprintf("f%d", i),
			Path:                fmt.Sprintf("/prop%d-%d", idx, i),
			PerRank:             r.Intn(3) == 0,
			CollectiveBuffering: r.Intn(2) == 0,
		}
		if f.PerRank && r.Intn(2) == 0 {
			f.Mount = "local"
		}
		files = append(files, f)
		preload = append(preload, synth.StepSpec{
			Op: synth.OpWrite, File: f.Name,
			Access: []synth.AccessSpec{{OffsetBytes: 0, BlockBytes: extent}},
		})
	}

	randAccess := func() synth.AccessSpec {
		a := synth.AccessSpec{
			OffsetBytes: int64(r.Intn(64 << 10)),
			BlockBytes:  int64(1 + r.Intn(8<<10)),
		}
		for d := r.Intn(3); d > 0; d-- {
			a.Dims = append(a.Dims, synth.DimSpec{
				Count:       1 + r.Intn(3),
				StrideBytes: int64(r.Intn(16 << 10)),
			})
		}
		return a
	}
	randIOStep := func(op string) synth.StepSpec {
		st := synth.StepSpec{
			Op:              op,
			File:            files[r.Intn(nFiles)].Name,
			Collective:      r.Intn(3) == 0,
			SyncAfter:       op == synth.OpWrite && r.Intn(4) == 0,
			LoopStrideBytes: int64(r.Intn(16 << 10)),
			RankStrideBytes: int64(r.Intn(16 << 10)),
		}
		if r.Intn(3) == 0 {
			st.RateKey = fmt.Sprintf("k%d", r.Intn(3))
		}
		if r.Intn(4) == 0 {
			st.PerRankAccess = make([][]synth.AccessSpec, np)
			for rank := 0; rank < np; rank++ {
				for n := r.Intn(3); n > 0; n-- {
					st.PerRankAccess[rank] = append(st.PerRankAccess[rank], randAccess())
				}
			}
			// All-empty per-rank lists are valid only on collective steps
			// in spirit; give rank 0 at least one access instead.
			if len(st.PerRankAccess[0]) == 0 {
				st.PerRankAccess[0] = []synth.AccessSpec{randAccess()}
			}
		} else {
			for n := 1 + r.Intn(2); n > 0; n-- {
				st.Access = append(st.Access, randAccess())
			}
		}
		return st
	}

	phases := []synth.PhaseSpec{{Name: "preload", Steps: preload, Next: "p0"}}
	nPhases := 1 + r.Intn(3)
	for p := 0; p < nPhases; p++ {
		ph := synth.PhaseSpec{Name: fmt.Sprintf("p%d", p), Loop: 1 + r.Intn(3)}
		if p+1 < nPhases {
			ph.Next = fmt.Sprintf("p%d", p+1)
		}
		for s := 1 + r.Intn(4); s > 0; s-- {
			switch r.Intn(6) {
			case 0:
				ph.Steps = append(ph.Steps, synth.StepSpec{Op: synth.OpCompute, ComputeNS: int64(1 + r.Intn(1e6))})
			case 1:
				if np > 1 {
					ph.Steps = append(ph.Steps, synth.StepSpec{
						Op: synth.OpSend, ToRankOffset: 1 + r.Intn(np-1),
						Messages: 1 + r.Intn(3), MessageBytes: int64(1 + r.Intn(64<<10)),
					})
				}
			case 2:
				ph.Steps = append(ph.Steps, synth.StepSpec{Op: synth.OpBarrier})
			case 3:
				ph.Steps = append(ph.Steps, synth.StepSpec{Op: synth.OpSync, File: files[r.Intn(nFiles)].Name})
			case 4:
				ph.Steps = append(ph.Steps, randIOStep(synth.OpRead))
			default:
				ph.Steps = append(ph.Steps, randIOStep(synth.OpWrite))
			}
		}
		if len(ph.Steps) == 0 {
			ph.Steps = append(ph.Steps, synth.StepSpec{Op: synth.OpBarrier})
		}
		phases = append(phases, ph)
	}
	return &synth.Spec{
		Name:   fmt.Sprintf("prop-%d", idx),
		Procs:  np,
		Files:  files,
		Start:  "preload",
		Phases: phases,
	}
}

// tracedBytes sums event bytes by direction.
func tracedBytes(tr *trace.Tracer) (read, written int64) {
	for _, ev := range tr.Events() {
		switch ev.Op {
		case mpiio.OpRead, mpiio.OpReadAll:
			read += ev.Bytes
		case mpiio.OpWrite, mpiio.OpWriteAll:
			written += ev.Bytes
		}
	}
	return read, written
}

// TestSynthPropertyConservationAndDeterminism drives randomly
// generated phase graphs through the engine and checks the compiler's
// core promises on each: the run terminates, every spec-declared byte
// is traced (conservation), the Result agrees with the trace, and a
// second run on a fresh cluster is byte- and timestamp-identical.
func TestSynthPropertyConservationAndDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 25; i++ {
		spec := randomSpec(r, i)
		app, err := synth.Compile(spec)
		if err != nil {
			t.Fatalf("spec %d rejected by its own generator: %v", i, err)
		}
		declR, declW := spec.DeclaredBytes()

		tr1 := trace.New()
		res1, err := app.Run(goldenCluster(), tr1)
		if err != nil {
			t.Fatalf("spec %d run 1: %v", i, err)
		}
		gotR, gotW := tracedBytes(tr1)
		if gotR != declR || gotW != declW {
			t.Fatalf("spec %d conservation: traced r=%d w=%d, declared r=%d w=%d\n%+v",
				i, gotR, gotW, declR, declW, spec)
		}
		if res1.BytesRead != declR || res1.BytesWritten != declW {
			t.Fatalf("spec %d result bytes r=%d w=%d, declared r=%d w=%d",
				i, res1.BytesRead, res1.BytesWritten, declR, declW)
		}
		if res1.ExecTime <= 0 {
			t.Fatalf("spec %d exec time %v", i, res1.ExecTime)
		}

		tr2 := trace.New()
		res2, err := app.Run(goldenCluster(), tr2)
		if err != nil {
			t.Fatalf("spec %d run 2: %v", i, err)
		}
		if !reflect.DeepEqual(res1, res2) {
			t.Fatalf("spec %d nondeterministic result:\n1: %+v\n2: %+v", i, res1, res2)
		}
		e1, e2 := tr1.Events(), tr2.Events()
		if len(e1) != len(e2) {
			t.Fatalf("spec %d nondeterministic event count: %d vs %d", i, len(e1), len(e2))
		}
		for j := range e1 {
			if e1[j] != e2[j] {
				t.Fatalf("spec %d event %d differs:\n1: %+v\n2: %+v", i, j, e1[j], e2[j])
			}
		}
	}
}

// TestSynthPropertyRoundTrip: every generated spec survives
// JSON serialization losslessly (parse(write(s)) validates and
// declares the same bytes).
func TestSynthPropertyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		spec := randomSpec(r, i)
		var buf writerBuf
		if err := spec.WriteJSON(&buf); err != nil {
			t.Fatalf("spec %d write: %v", i, err)
		}
		back, err := synth.ParseSpec(buf.b)
		if err != nil {
			t.Fatalf("spec %d re-parse: %v\n%s", i, err, buf.b)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Fatalf("spec %d round trip drifted:\nout:  %+v\nback: %+v", i, spec, back)
		}
	}
}
