package synth_test

import (
	"reflect"
	"testing"

	"ioeval/internal/cluster"
	"ioeval/internal/sim"
	"ioeval/internal/trace"
	"ioeval/internal/workload"
	"ioeval/internal/workload/btio"
	"ioeval/internal/workload/madbench"
	"ioeval/internal/workload/synth"
)

// quickClass is the reduced BT-IO class the other workload tests use
// (4 dumps).
var quickClass = btio.Class{Name: "Q", N: 64, Steps: 20, WriteInterval: 5, ComputeTotal: 10 * sim.Second}

// runTraced runs an app on a fresh cluster with a fresh tracer.
func runTraced(t *testing.T, build func() *cluster.Cluster, app workload.App) (workload.Result, *trace.Tracer) {
	t.Helper()
	tr := trace.New()
	res, err := app.Run(build(), tr)
	if err != nil {
		t.Fatalf("%s: run: %v", app.Name(), err)
	}
	return res, tr
}

// assertConform runs the hand-coded app and its synthetic
// re-expression on identical fresh clusters and asserts byte-for-byte
// equality: the full Result (times, bytes, phase rates), the raw
// event trace (every operation, offset, size, and timestamp), and the
// derived characterization profile. The simulation is deterministic,
// so exact equality is the right bar — any drift means the DSL or its
// engine diverged from the hand-coded semantics.
func assertConform(t *testing.T, build func() *cluster.Cluster, hand workload.App, spec *synth.Spec) {
	t.Helper()
	app, err := synth.Compile(spec)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if app.Name() != hand.Name() || app.Procs() != hand.Procs() {
		t.Fatalf("identity: synth (%q, %d) vs hand (%q, %d)",
			app.Name(), app.Procs(), hand.Name(), hand.Procs())
	}

	handRes, handTr := runTraced(t, build, hand)
	synthRes, synthTr := runTraced(t, build, app)

	if !reflect.DeepEqual(handRes, synthRes) {
		t.Errorf("Result diverges:\nhand:  %+v\nsynth: %+v", handRes, synthRes)
	}
	he, se := handTr.Events(), synthTr.Events()
	if len(he) != len(se) {
		t.Fatalf("event counts diverge: hand %d, synth %d", len(he), len(se))
	}
	for i := range he {
		if he[i] != se[i] {
			t.Fatalf("event %d diverges:\nhand:  %+v\nsynth: %+v", i, he[i], se[i])
		}
	}
	if !reflect.DeepEqual(handTr.Profile(), synthTr.Profile()) {
		t.Errorf("Profile diverges:\nhand:  %+v\nsynth: %+v", handTr.Profile(), synthTr.Profile())
	}
}

func TestSynthConformBTIOFull(t *testing.T) {
	cfg := btio.Config{Class: quickClass, Procs: 4, Subtype: btio.Full}
	assertConform(t, func() *cluster.Cluster { return cluster.Aohyper(cluster.RAID5) },
		btio.New(cfg), synth.BTIOSpec(cfg))
}

func TestSynthConformBTIOSimple(t *testing.T) {
	cfg := btio.Config{Class: quickClass, Procs: 4, Subtype: btio.Simple}
	assertConform(t, func() *cluster.Cluster { return cluster.Aohyper(cluster.JBOD) },
		btio.New(cfg), synth.BTIOSpec(cfg))
}

func TestSynthConformBTIOComputeComm(t *testing.T) {
	// Compute delays and boundary-exchange messages shift the timeline;
	// conformance must hold with them in play.
	cfg := btio.Config{Class: quickClass, Procs: 4, Subtype: btio.Full, ComputeScale: 0.1}
	assertConform(t, func() *cluster.Cluster { return cluster.Aohyper(cluster.RAID5) },
		btio.New(cfg), synth.BTIOSpec(cfg))
}

func TestSynthConformMadbenchShared(t *testing.T) {
	cfg := madbench.Config{Procs: 4, KPix: 1, Bins: 2, FileType: madbench.Shared}
	assertConform(t, func() *cluster.Cluster { return cluster.Aohyper(cluster.RAID5) },
		madbench.New(cfg), synth.MadbenchSpec(cfg))
}

func TestSynthConformMadbenchUnique(t *testing.T) {
	cfg := madbench.Config{Procs: 4, KPix: 1, Bins: 2, FileType: madbench.Unique,
		UseLocal: true, BusyWork: 5 * sim.Millisecond}
	assertConform(t, func() *cluster.Cluster { return cluster.Aohyper(cluster.RAID5) },
		madbench.New(cfg), synth.MadbenchSpec(cfg))
}

func TestSynthConformMadbenchAsync(t *testing.T) {
	cfg := madbench.Config{Procs: 4, KPix: 1, Bins: 2, FileType: madbench.Shared, AsyncWrites: true}
	assertConform(t, func() *cluster.Cluster { return cluster.Aohyper(cluster.RAID5) },
		madbench.New(cfg), synth.MadbenchSpec(cfg))
}

// TestSynthConformSpecRoundTrip asserts the DSL is lossless through
// its own serialization: generator → JSON → ParseSpec must conform
// just like the in-memory spec (the committed example files are this
// JSON).
func TestSynthConformSpecRoundTrip(t *testing.T) {
	cfg := btio.Config{Class: quickClass, Procs: 4, Subtype: btio.Full}
	var buf writerBuf
	if err := synth.BTIOSpec(cfg).WriteJSON(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	spec, err := synth.ParseSpec(buf.b)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	assertConform(t, func() *cluster.Cluster { return cluster.Aohyper(cluster.RAID5) },
		btio.New(cfg), spec)
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
