package synth

import (
	"ioeval/internal/workload/btio"
	"ioeval/internal/workload/madbench"
)

// BTIOSpec re-expresses a BT-IO configuration in the DSL. The spec is
// exact: it derives the per-rank access geometry from the app's own
// diagonal multi-partitioning (btio.Decomposition), so compiling and
// running it reproduces the hand-coded run event for event — the
// differential conformance tests assert byte-for-byte equality of
// traces, Result, and reports.
func BTIOSpec(cfg btio.Config) *Spec {
	app := btio.New(cfg)
	c := app.Config()
	np := c.Procs
	n := int64(c.Class.N)
	const bpp = btio.BytesPerPoint

	mount := "nfs"
	if c.UsePFS {
		mount = "pfs"
	}
	cb := c.Subtype == btio.Full
	cbNodes, cbBuf := 0, int64(0)
	if c.Hints != nil {
		cb, cbNodes, cbBuf = c.Hints.CollectiveBuffering, c.Hints.CBNodes, c.Hints.CBBufferSize
	}
	file := FileSpec{
		Name: "solution", Path: c.Path, Mount: mount,
		CollectiveBuffering: cb, CBNodes: cbNodes, CBBufferBytes: cbBuf,
	}

	// One access per owned cell: a block per x-line, strided over the
	// cell's z (outer) and y (inner) extents — exactly dumpVecs' order.
	perRank := make([][]AccessSpec, np)
	for rank := 0; rank < np; rank++ {
		for _, g := range app.Decomposition(rank) {
			perRank[rank] = append(perRank[rank], AccessSpec{
				OffsetBytes: ((int64(g.Z0)*n+int64(g.Y0))*n + int64(g.X0)) * bpp,
				BlockBytes:  int64(g.NX) * bpp,
				Dims: []DimSpec{
					{Count: g.NZ, StrideBytes: n * n * bpp},
					{Count: g.NY, StrideBytes: n * bpp},
				},
			})
		}
	}

	// The full subtype issues collective operations even under hints
	// that disable collective buffering (the library then degrades them
	// to independent I/O itself).
	collective := c.Subtype == btio.Full
	var dumpSteps []StepSpec
	if d := app.ComputePerDump(); d > 0 {
		dumpSteps = append(dumpSteps, StepSpec{Op: OpCompute, ComputeNS: int64(d)})
	}
	dumpSteps = append(dumpSteps,
		StepSpec{Op: OpSend, ToRankOffset: 1, Messages: app.MessagesPerDump(), MessageBytes: app.FaceBytes()},
		StepSpec{Op: OpWrite, File: "solution", Collective: collective,
			PerRankAccess: perRank, LoopStrideBytes: app.DumpBytes()},
	)

	return &Spec{
		Name:  app.Name(),
		Procs: np,
		Files: []FileSpec{file},
		Start: "dump",
		Phases: []PhaseSpec{
			{Name: "dump", Loop: app.Dumps(), Steps: dumpSteps, Next: "sync-point"},
			{Name: "sync-point", Steps: []StepSpec{{Op: OpBarrier}}, Next: "readback"},
			{Name: "readback", Loop: app.Dumps(), Steps: []StepSpec{
				{Op: OpRead, File: "solution", Collective: collective,
					PerRankAccess: perRank, LoopStrideBytes: app.DumpBytes()},
			}},
		},
	}
}

// MadbenchSpec re-expresses a MADbench2 configuration in the DSL:
// three looped phases (S, W, C) of whole-slice independent operations
// with synced writes, over one shared file or per-rank UNIQUE files.
func MadbenchSpec(cfg madbench.Config) *Spec {
	app := madbench.New(cfg)
	c := app.Config()
	np := c.Procs
	slice := app.SliceBytes()
	shared := c.FileType == madbench.Shared

	mount := "nfs"
	if c.UseLocal {
		mount = "local"
	}
	file := FileSpec{Name: "matrices", Path: c.PathPrefix, Mount: mount, PerRank: !shared}

	// Bin b of a rank's slice lives at b*slice in a UNIQUE file and at
	// (b*np+rank)*slice in the shared bin-major layout.
	acc := []AccessSpec{{OffsetBytes: 0, BlockBytes: slice}}
	loopStride, rankStride := slice, int64(0)
	if shared {
		loopStride, rankStride = int64(np)*slice, slice
	}
	write := func(key string) StepSpec {
		return StepSpec{Op: OpWrite, File: "matrices", SyncAfter: !c.AsyncWrites,
			RateKey: key, Access: acc, LoopStrideBytes: loopStride, RankStrideBytes: rankStride}
	}
	read := func(key string) StepSpec {
		return StepSpec{Op: OpRead, File: "matrices",
			RateKey: key, Access: acc, LoopStrideBytes: loopStride, RankStrideBytes: rankStride}
	}
	busy := StepSpec{Op: OpCompute, ComputeNS: int64(c.BusyWork)}

	var sSteps, wSteps []StepSpec
	if c.BusyWork > 0 {
		sSteps = append(sSteps, busy)
	}
	sSteps = append(sSteps, write("S_w"))
	wSteps = append(wSteps, read("W_r"))
	if c.BusyWork > 0 {
		wSteps = append(wSteps, busy)
	}
	wSteps = append(wSteps, write("W_w"))

	return &Spec{
		Name:  app.Name(),
		Procs: np,
		Files: []FileSpec{file},
		Start: "S",
		Phases: []PhaseSpec{
			{Name: "S", Loop: c.Bins, Steps: sSteps, Next: "W"},
			{Name: "W", Loop: c.Bins, Steps: wSteps, Next: "C"},
			{Name: "C", Loop: c.Bins, Steps: []StepSpec{read("C_r")}},
		},
	}
}
