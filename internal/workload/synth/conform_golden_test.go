package synth_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ioeval/internal/bench"
	"ioeval/internal/cluster"
	"ioeval/internal/core"
	"ioeval/internal/nfs"
	"ioeval/internal/workload/btio"
	"ioeval/internal/workload/madbench"
	"ioeval/internal/workload/synth"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
	gb = int64(1) << 30
)

// goldenCluster mirrors core's golden fixture cluster: two compute
// nodes, RAID5, small disks, so characterization stays quick and the
// committed fixtures stay small.
func goldenCluster() *cluster.Cluster {
	return cluster.New(cluster.Config{
		Name:         "golden",
		ComputeNodes: 2,
		NodeRAM:      256 * mb,
		NodeDiskCap:  10 * gb,
		NodeDiskRate: 90e6,
		IONodeRAM:    256 * mb,
		IODiskCap:    20 * gb,
		IODiskRate:   100e6,
		Org:          cluster.RAID5,
		StripeUnit:   256 * kb,
		RAID5Disks:   5,
		NFSServer:    nfs.DefaultServerParams("golden-nfs"),
		NFSClient:    nfs.DefaultClientParams("golden-nfs"),
	})
}

func goldenCharCfg() core.CharacterizeConfig {
	return core.CharacterizeConfig{
		FSBlockSizes:   []int64{64 * kb, mb},
		FSModes:        []bench.Mode{bench.SeqWrite, bench.SeqRead},
		LocalFileSize:  64 * mb,
		GlobalFileSize: 64 * mb,
		LibProcs:       2,
		LibBlockSizes:  []int64{4 * mb},
		LibTransfer:    256 * kb,
		LibFileSize:    16 * mb,
		RandomOps:      128,
	}
}

// TestSynthConformEvaluationGolden is the acceptance differential:
// the synthetic BT-IO spec must reproduce the hand-coded BT-IO
// *evaluation* — io-time, byte counts, the used-% table, and the
// span-side PathReport verdict — on the same characterization, and
// the synthetic side is pinned as a committed golden so drift in
// either the DSL engine or the evaluation plumbing is caught even
// when both sides drift together.
func TestSynthConformEvaluationGolden(t *testing.T) {
	sess := core.NewSession(goldenCluster, core.WithCharacterizeConfig(goldenCharCfg()))
	ch, err := sess.Characterization()
	if err != nil {
		t.Fatalf("characterize: %v", err)
	}

	quick := btio.Class{Name: "Q", N: 64, Steps: 5, WriteInterval: 5}
	cfg := btio.Config{Class: quick, Procs: 4, Subtype: btio.Full}
	evHand, err := core.NewSession(goldenCluster, core.WithCharacterization(ch)).Evaluate(btio.New(cfg))
	if err != nil {
		t.Fatalf("evaluate hand: %v", err)
	}
	evSynth, err := core.NewSession(goldenCluster, core.WithCharacterization(ch)).Evaluate(synth.MustCompile(synth.BTIOSpec(cfg)))
	if err != nil {
		t.Fatalf("evaluate synth: %v", err)
	}

	// Evaluation text: result table, measurements, used-% verdict.
	handText := core.FormatEvaluation(evHand)
	synthText := core.FormatEvaluation(evSynth)
	if handText != synthText {
		t.Errorf("evaluation diverges:\n--- hand ---\n%s\n--- synth ---\n%s", handText, synthText)
	}

	// Span side: the full PathReport (profile, self times, verdicts,
	// conservation invariant) must match exactly.
	handPR, err := json.MarshalIndent(evHand.PathReport(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	synthPR, err := json.MarshalIndent(evSynth.PathReport(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(handPR, synthPR) {
		t.Errorf("path report diverges:\n--- hand ---\n%s\n--- synth ---\n%s", handPR, synthPR)
	}

	// Telemetry snapshots (per-level counters at phase boundaries).
	var handTel, synthTel bytes.Buffer
	if err := evHand.TelemetryReport().WriteJSON(&handTel); err != nil {
		t.Fatal(err)
	}
	if err := evSynth.TelemetryReport().WriteJSON(&synthTel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(handTel.Bytes(), synthTel.Bytes()) {
		t.Errorf("telemetry report diverges (%d vs %d bytes)", handTel.Len(), synthTel.Len())
	}

	compareGolden(t, filepath.Join("testdata", "synth_btio_evaluation.golden.txt"), []byte(synthText))
	compareGolden(t, filepath.Join("testdata", "synth_btio_path_report.golden.json"), append(synthPR, '\n'))
}

// TestSynthConformMadbenchEvaluation does the same differential for
// MADbench2 (shared file, phase rates in play) without a golden: the
// hand-vs-synth equality is the assertion.
func TestSynthConformMadbenchEvaluation(t *testing.T) {
	sess := core.NewSession(goldenCluster, core.WithCharacterizeConfig(goldenCharCfg()))
	ch, err := sess.Characterization()
	if err != nil {
		t.Fatalf("characterize: %v", err)
	}
	cfg := madbench.Config{Procs: 4, KPix: 1, Bins: 2, FileType: madbench.Shared}
	evHand, err := core.NewSession(goldenCluster, core.WithCharacterization(ch)).Evaluate(madbench.New(cfg))
	if err != nil {
		t.Fatalf("evaluate hand: %v", err)
	}
	evSynth, err := core.NewSession(goldenCluster, core.WithCharacterization(ch)).Evaluate(synth.MustCompile(synth.MadbenchSpec(cfg)))
	if err != nil {
		t.Fatalf("evaluate synth: %v", err)
	}
	if hand, syn := core.FormatEvaluation(evHand), core.FormatEvaluation(evSynth); hand != syn {
		t.Errorf("evaluation diverges:\n--- hand ---\n%s\n--- synth ---\n%s", hand, syn)
	}
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden output; diff the file and rerun with -update if intended.\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}
