package synth

import (
	"fmt"

	"ioeval/internal/cluster"
	"ioeval/internal/fs"
	"ioeval/internal/mpiio"
	"ioeval/internal/sim"
	"ioeval/internal/workload"
)

// App is a compiled spec, runnable as a workload.App. Each Run builds
// fresh worlds and files on the given cluster, so one App can be
// reused across sweep cells exactly like the hand-coded apps.
type App struct {
	spec  *Spec
	chain []*PhaseSpec
}

var _ workload.App = (*App)(nil)

// Compile validates the spec and resolves its phase chain.
func Compile(s *Spec) (*App, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &App{spec: s, chain: s.Chain()}, nil
}

// MustCompile is Compile for known-good specs (generators, sweep
// grids); it panics on a validation error.
func MustCompile(s *Spec) *App {
	a, err := Compile(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Name implements workload.App.
func (a *App) Name() string {
	if a.spec.Name == "" {
		return "synthetic"
	}
	return a.spec.Name
}

// Procs implements workload.App.
func (a *App) Procs() int { return a.spec.Procs }

// Spec returns the compiled spec.
func (a *App) Spec() *Spec { return a.spec }

// openFile is one rank's view of a declared file.
type openFile struct {
	f     *mpiio.File
	fRank int // rank within f's world (0 for per-rank files)
}

// vecsFor expands the step's access list for one rank and phase
// iteration into the vector the MPI-IO layer consumes.
func vecsFor(st *StepSpec, rank, iter int) []fs.IOVec {
	accs := st.Access
	if len(st.PerRankAccess) > 0 {
		accs = st.PerRankAccess[rank]
	}
	base := int64(iter)*st.LoopStrideBytes + int64(rank)*st.RankStrideBytes
	var vecs []fs.IOVec
	for _, a := range accs {
		expandAccess(&vecs, a, base+a.OffsetBytes, 0)
	}
	return vecs
}

// expandAccess emits the access's blocks, outermost dimension first,
// inner dimensions varying fastest — the emission order the BT-IO
// decomposition produces (z outer, y inner).
func expandAccess(out *[]fs.IOVec, a AccessSpec, base int64, dim int) {
	if dim == len(a.Dims) {
		*out = append(*out, fs.IOVec{Off: base, Len: a.BlockBytes})
		return
	}
	d := a.Dims[dim]
	for i := 0; i < d.Count; i++ {
		expandAccess(out, a, base+int64(i)*d.StrideBytes, dim+1)
	}
}

// mounts resolves a file's storage selection on the cluster.
func (a *App) mounts(c *cluster.Cluster, f *FileSpec) ([]fs.Interface, error) {
	np := a.spec.Procs
	switch f.Mount {
	case "", "nfs":
		return c.NFSMounts(np), nil
	case "local":
		return c.LocalMounts(np), nil
	case "pfs":
		if c.PFS == nil {
			return nil, errf(fmt.Sprintf("file %q", f.Name),
				"mount pfs but the cluster has no parallel filesystem (build it with PFSIONodes > 0)")
		}
		return c.PFSMounts(np), nil
	}
	return nil, errf(fmt.Sprintf("file %q", f.Name), "unknown mount %q", f.Mount)
}

// Run implements workload.App: the phase chain executes on every rank
// through the standard request path, so spans, telemetry, traces, and
// fault scenarios all apply to synthetic workloads unchanged.
func (a *App) Run(c *cluster.Cluster, tr mpiio.Tracer) (workload.Result, error) {
	s := a.spec
	np := s.Procs
	w := c.NewWorld(c.RankNodes(np))
	w.SetTracer(tr)

	// Resolve storage and pre-open shared files (one mpiio.File over
	// the full world, like the hand-coded apps).
	mountsByFile := make([][]fs.Interface, len(s.Files))
	shared := make([]*mpiio.File, len(s.Files))
	for i := range s.Files {
		f := &s.Files[i]
		m, err := a.mounts(c, f)
		if err != nil {
			return workload.Result{}, err
		}
		mountsByFile[i] = m
		if !f.PerRank {
			shared[i] = mpiio.OpenFile(w, f.Path, fs.ORead|fs.OWrite|fs.OCreate|fs.OTrunc,
				m, hintsFor(f))
		}
	}
	fileIdx := map[string]int{}
	for i := range s.Files {
		fileIdx[s.Files[i].Name] = i
	}

	// Phase-rate keys, declared in chain order so the aggregator is
	// deterministic and non-nil whenever the spec names any rate.
	ra := workload.NewRateAggregator(np)
	for _, ph := range a.chain {
		for i := range ph.Steps {
			if k := ph.Steps[i].RateKey; k != "" {
				ra.Declare(k)
			}
		}
	}

	var errs []error
	readTimes := make([]sim.Duration, np)
	writeTimes := make([]sim.Duration, np)
	bytesRead := make([]int64, np)
	bytesWritten := make([]int64, np)

	for rank := 0; rank < np; rank++ {
		rank := rank
		c.Eng.Spawn(fmt.Sprintf("synth-r%d", rank), func(p *sim.Proc) {
			// Per-rank files get a one-rank sub-world (no shared-file
			// locking) with events relabelled to the true rank —
			// MADbench2's UNIQUE layout.
			files := make([]openFile, len(s.Files))
			for i := range s.Files {
				f := &s.Files[i]
				if shared[i] != nil {
					files[i] = openFile{f: shared[i], fRank: rank}
					continue
				}
				sub := c.NewWorld([]string{w.Node(rank)})
				sub.SetTracer(&rankShift{tr: w.Tracer(), rank: rank})
				pf := mpiio.OpenFile(sub, fmt.Sprintf("%s.%04d", f.Path, rank),
					fs.ORead|fs.OWrite|fs.OCreate|fs.OTrunc,
					[]fs.Interface{mountsByFile[i][rank]}, hintsFor(f))
				files[i] = openFile{f: pf, fRank: 0}
			}
			for i := range files {
				if err := files[i].f.Open(p, files[i].fRank); err != nil {
					errs = append(errs, err)
					return
				}
			}

			for _, ph := range a.chain {
				iters := ph.iterations()
				for it := 0; it < iters; it++ {
					for si := range ph.Steps {
						st := &ph.Steps[si]
						switch st.Op {
						case OpWrite, OpRead:
							of := files[fileIdx[st.File]]
							vecs := vecsFor(st, rank, it)
							t0 := p.Now()
							got := doIO(p, of, st, vecs)
							if st.SyncAfter {
								of.f.Sync(p, of.fRank)
							}
							dt := sim.Duration(p.Now() - t0)
							if st.Op == OpWrite {
								writeTimes[rank] += dt
								bytesWritten[rank] += got
							} else {
								readTimes[rank] += dt
								bytesRead[rank] += got
							}
							if st.RateKey != "" {
								ra.Add(st.RateKey, rank, dt, got)
							}
						case OpCompute:
							w.Compute(p, rank, sim.Duration(st.ComputeNS))
						case OpSend:
							to := ((rank+st.ToRankOffset)%np + np) % np
							for m := 0; m < st.Messages; m++ {
								w.Send(p, rank, to, st.MessageBytes)
							}
						case OpBarrier:
							w.Barrier(p, rank)
						case OpSync:
							of := files[fileIdx[st.File]]
							of.f.Sync(p, of.fRank)
						}
					}
				}
			}
			for i := range files {
				files[i].f.Close(p, files[i].fRank)
			}
		})
	}
	end := c.Eng.Run()
	if len(errs) > 0 {
		return workload.Result{}, errs[0]
	}

	res := workload.Result{ExecTime: sim.Duration(end), PhaseRates: ra.Rates()}
	for r := 0; r < np; r++ {
		if readTimes[r] > res.ReadTime {
			res.ReadTime = readTimes[r]
		}
		if writeTimes[r] > res.WriteTime {
			res.WriteTime = writeTimes[r]
		}
		if tot := readTimes[r] + writeTimes[r]; tot > res.IOTime {
			res.IOTime = tot
		}
		res.BytesRead += bytesRead[r]
		res.BytesWritten += bytesWritten[r]
	}
	return res, nil
}

// doIO dispatches one access to the library call the hand-coded apps
// use for the same shape: collective steps always participate (the
// rendezvous needs every rank, even empty contributors); independent
// single-extent steps are plain WriteAt/ReadAt; independent
// multi-extent steps are vector operations.
func doIO(p *sim.Proc, of openFile, st *StepSpec, vecs []fs.IOVec) int64 {
	write := st.Op == OpWrite
	if st.Collective {
		if write {
			return of.f.WriteVecAll(p, of.fRank, vecs)
		}
		return of.f.ReadVecAll(p, of.fRank, vecs)
	}
	switch {
	case len(vecs) == 0:
		return 0
	case len(vecs) == 1:
		if write {
			return of.f.WriteAt(p, of.fRank, vecs[0].Off, vecs[0].Len)
		}
		return of.f.ReadAt(p, of.fRank, vecs[0].Off, vecs[0].Len)
	}
	if write {
		return of.f.WriteVec(p, of.fRank, vecs)
	}
	return of.f.ReadVec(p, of.fRank, vecs)
}

// hintsFor maps a FileSpec's knobs onto mpiio.Hints.
func hintsFor(f *FileSpec) mpiio.Hints {
	return mpiio.Hints{
		CollectiveBuffering: f.CollectiveBuffering,
		CBNodes:             f.CBNodes,
		CBBufferSize:        f.CBBufferBytes,
	}
}

// rankShift relabels events from a per-rank sub-world (always rank 0)
// with the true rank.
type rankShift struct {
	tr   mpiio.Tracer
	rank int
}

func (rs *rankShift) Record(ev mpiio.Event) {
	if rs.tr == nil {
		return
	}
	ev.Rank = rs.rank
	rs.tr.Record(ev)
}
