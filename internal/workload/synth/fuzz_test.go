package synth

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzParseSpec drives the spec parser with arbitrary bytes: any
// input must either parse to a fully validated spec or return a
// structured *Error — never panic, never accept a spec that the rest
// of the pipeline (Chain, DeclaredBytes, Compile, re-serialization)
// cannot consume. Seed corpus under testdata/fuzz/FuzzParseSpec; run
// the fuzzer with
//
//	go test -fuzz=FuzzParseSpec ./internal/workload/synth
func FuzzParseSpec(f *testing.F) {
	valid := `{
  "name": "seed",
  "procs": 2,
  "files": [{"name": "f", "path": "/f"}],
  "phases": [
    {"name": "w", "loop": 2, "steps": [
      {"op": "write", "file": "f", "access": [{"offset_bytes": 0, "block_bytes": 4096,
        "dims": [{"count": 3, "stride_bytes": 8192}]}], "loop_stride_bytes": 65536}
    ], "next": "r"},
    {"name": "r", "steps": [
      {"op": "read", "file": "f", "collective": true,
       "per_rank_access": [[{"offset_bytes": 0, "block_bytes": 4096}], []]},
      {"op": "barrier"}
    ]}
  ]
}`
	f.Add([]byte(valid))
	f.Add([]byte(valid[:len(valid)/2])) // truncated mid-object
	f.Add([]byte(""))
	f.Add([]byte("{"))
	f.Add([]byte(`{"procs":1,"phasez":[]}`))                                                                                       // unknown field
	f.Add([]byte(`{"procs":2,"phases":[{"name":"a","steps":[],"next":"b"},{"name":"b","steps":[],"next":"a"}]}`))                  // cycle
	f.Add([]byte(`{"procs":2,"phases":[{"name":"a","steps":[{"op":"send","messages":1,"message_bytes":8,"to_rank_offset":2}]}]}`)) // self-send
	f.Add([]byte(`{"procs":99999,"phases":[{"name":"a","steps":[]}]}`))                                                            // over cap
	f.Add([]byte(`{"procs":1,"phases":[{"name":"a","steps":[{"op":"write","file":"f","access":[{"block_bytes":1}]}]}]}`))          // undeclared file
	f.Add([]byte(`{"procs":1,"phases":[{"name":"a","steps":[]}]} trailing`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("unstructured error %T: %v", err, err)
			}
			if se.Where == "" || se.Reason == "" {
				t.Fatalf("incomplete structured error: %+v", se)
			}
			return
		}
		// Accepted specs must be consumable end to end without panics.
		_ = s.Chain()
		_, _ = s.DeclaredBytes()
		if _, err := Compile(s); err != nil {
			t.Fatalf("parsed spec fails compile: %v", err)
		}
		// And survive a serialization round trip.
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatalf("re-serialize accepted spec: %v", err)
		}
		if _, err := ParseSpec(buf.Bytes()); err != nil {
			t.Fatalf("re-parse own output: %v", err)
		}
	})
}
