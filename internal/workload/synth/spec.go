// Package synth is the declarative synthetic-workload plane: a
// workload is a phase graph — named phases of compute, communication,
// and collective/independent I/O steps, chained by Next edges and
// repeated by per-phase loop counts — parsed from a JSON spec and
// compiled to a workload.App that runs through the same
// ioreq/span/telemetry path as the hand-coded applications.
//
// The model is rich enough to re-express the paper's two applications
// exactly (BTIOSpec, MadbenchSpec): the differential conformance
// tests assert byte-for-byte equality of traces, results, and reports
// between each hand-coded app and its synthetic re-expression. New
// workloads therefore cost a spec file, not a Go package.
package synth

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Structural caps: a spec beyond these is rejected at validation, so
// parsing untrusted input (the fuzzer's job) cannot ask the simulator
// for unbounded work or overflow offset arithmetic.
const (
	MaxProcs        = 4096    // ranks per workload
	MaxPhases       = 1 << 10 // phases per spec
	MaxLoop         = 1 << 16 // iterations per phase
	MaxStepElements = 1 << 20 // expanded accesses per step per rank
	MaxDims         = 8       // nesting depth of one access pattern
	MaxBytes        = 1 << 40 // any single offset/length/stride field
	MaxComputeNS    = 1 << 50 // one compute delay (~13 simulated days)
)

// Error is a structured spec error: Where locates the offending
// element (e.g. "phase \"dump\" step 2"), Reason says what is wrong.
type Error struct {
	Where  string
	Reason string
}

func (e *Error) Error() string { return "synth: " + e.Where + ": " + e.Reason }

func errf(where, format string, argv ...any) *Error {
	return &Error{Where: where, Reason: fmt.Sprintf(format, argv...)}
}

// Spec is a complete declarative workload.
type Spec struct {
	// Name labels the workload in reports (defaults to "synthetic").
	Name string `json:"name,omitempty"`
	// Procs is the number of MPI ranks.
	Procs int `json:"procs"`
	// Files declares every file the phases touch.
	Files []FileSpec `json:"files,omitempty"`
	// Start names the first phase (defaults to the first declared).
	Start string `json:"start,omitempty"`
	// Phases is the phase graph; every phase must be reachable by the
	// Next chain from Start, and the chain must terminate (no cycles).
	Phases []PhaseSpec `json:"phases"`
}

// FileSpec declares one file (or, with PerRank, one file per rank).
type FileSpec struct {
	// Name is the handle steps refer to.
	Name string `json:"name"`
	// Path on the selected storage; PerRank files append ".%04d" with
	// the rank (MADbench2's UNIQUE naming).
	Path string `json:"path"`
	// Mount selects the storage: "nfs" (default), "local", or "pfs".
	Mount string `json:"mount,omitempty"`
	// PerRank gives every rank a private file over a one-rank world
	// (no shared-file locking, no direct I/O).
	PerRank bool `json:"per_rank,omitempty"`
	// CollectiveBuffering and the CB knobs mirror mpiio.Hints.
	CollectiveBuffering bool  `json:"collective_buffering,omitempty"`
	CBNodes             int   `json:"cb_nodes,omitempty"`
	CBBufferBytes       int64 `json:"cb_buffer_bytes,omitempty"`
}

// PhaseSpec is one node of the phase graph.
type PhaseSpec struct {
	Name string `json:"name"`
	// Loop repeats the phase's step list (0 means 1).
	Loop int `json:"loop,omitempty"`
	// Steps run in order on every rank, each iteration.
	Steps []StepSpec `json:"steps"`
	// Next names the following phase; empty ends the workload.
	Next string `json:"next,omitempty"`
}

// Step operations.
const (
	OpWrite   = "write"
	OpRead    = "read"
	OpCompute = "compute"
	OpSend    = "send"
	OpBarrier = "barrier"
	OpSync    = "sync"
)

// StepSpec is one action. Which fields apply depends on Op:
//
//   - write/read: File, Collective, SyncAfter, RateKey, Access or
//     PerRankAccess, LoopStrideBytes, RankStrideBytes
//   - compute: ComputeNS
//   - send: ToRankOffset, Messages, MessageBytes
//   - barrier: (nothing)
//   - sync: File
type StepSpec struct {
	Op string `json:"op"`

	// File names a declared FileSpec (write/read/sync).
	File string `json:"file,omitempty"`
	// Collective issues the access as a collective (*All) operation;
	// every rank participates even with an empty access list.
	Collective bool `json:"collective,omitempty"`
	// SyncAfter syncs the file inside the step's timing window
	// (MADbench2's IOMODE=SYNC write behaviour).
	SyncAfter bool `json:"sync_after,omitempty"`
	// RateKey accumulates the step's time and bytes under a named
	// phase rate (Result.PhaseRates).
	RateKey string `json:"rate_key,omitempty"`

	// Access is the per-iteration access list, identical shape for
	// every rank (offsets then shift by rank via RankStrideBytes).
	Access []AccessSpec `json:"access,omitempty"`
	// PerRankAccess gives each rank its own access list (length must
	// equal Procs); mutually exclusive with Access.
	PerRankAccess [][]AccessSpec `json:"per_rank_access,omitempty"`
	// LoopStrideBytes shifts all offsets per phase iteration;
	// RankStrideBytes shifts them per rank.
	LoopStrideBytes int64 `json:"loop_stride_bytes,omitempty"`
	RankStrideBytes int64 `json:"rank_stride_bytes,omitempty"`

	// ComputeNS is the busy-work duration (compute).
	ComputeNS int64 `json:"compute_ns,omitempty"`

	// Send: every rank sends Messages messages of MessageBytes to
	// rank (rank+ToRankOffset) mod Procs.
	ToRankOffset int   `json:"to_rank_offset,omitempty"`
	Messages     int   `json:"messages,omitempty"`
	MessageBytes int64 `json:"message_bytes,omitempty"`
}

// AccessSpec is one (possibly multi-dimensional) strided access: a
// block of BlockBytes repeated over the Dims counters, outermost
// dimension first. With no Dims it is a single contiguous access.
type AccessSpec struct {
	OffsetBytes int64     `json:"offset_bytes"`
	BlockBytes  int64     `json:"block_bytes"`
	Dims        []DimSpec `json:"dims,omitempty"`
}

// DimSpec is one dimension of a strided pattern.
type DimSpec struct {
	Count       int   `json:"count"`
	StrideBytes int64 `json:"stride_bytes"`
}

// Elements returns the number of expanded accesses (the product of
// the dimension counts), or 0 if any count is invalid.
func (a AccessSpec) Elements() int64 {
	n := int64(1)
	for _, d := range a.Dims {
		if d.Count < 1 {
			return 0
		}
		n *= int64(d.Count)
		if n > MaxStepElements {
			return n // caller rejects; avoid overflow on deeper dims
		}
	}
	return n
}

// Bytes returns the total bytes the access moves per execution.
func (a AccessSpec) Bytes() int64 { return a.Elements() * a.BlockBytes }

// ParseSpec decodes and validates a JSON spec. Unknown fields are
// rejected so misspelled knobs fail loudly instead of silently doing
// nothing. All failures are *Error values (or wrap the JSON decode
// position); ParseSpec never panics on any input.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, errf("spec", "invalid JSON: %v", err)
	}
	// Trailing garbage after the spec object is a malformed file.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, errf("spec", "trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec reads and parses a spec file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSpec(data)
}

// WriteJSON renders the spec as indented JSON (the committed example
// specs are produced this way, so generator and file stay in sync).
func (s *Spec) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Validate checks the whole spec structurally: caps, references,
// per-op field rules, and phase-graph termination. It returns the
// first violation as a *Error.
func (s *Spec) Validate() error {
	if s.Procs < 1 || s.Procs > MaxProcs {
		return errf("spec", "procs %d outside [1, %d]", s.Procs, MaxProcs)
	}
	files := map[string]*FileSpec{}
	for i := range s.Files {
		f := &s.Files[i]
		where := fmt.Sprintf("file %q", f.Name)
		if f.Name == "" {
			return errf(fmt.Sprintf("file %d", i), "missing name")
		}
		if _, dup := files[f.Name]; dup {
			return errf(where, "duplicate file name")
		}
		if f.Path == "" {
			return errf(where, "missing path")
		}
		switch f.Mount {
		case "", "nfs", "local", "pfs":
		default:
			return errf(where, "unknown mount %q (want nfs, local, or pfs)", f.Mount)
		}
		if f.CBNodes < 0 || f.CBNodes > MaxProcs {
			return errf(where, "cb_nodes %d outside [0, %d]", f.CBNodes, MaxProcs)
		}
		if f.CBBufferBytes < 0 || f.CBBufferBytes > MaxBytes {
			return errf(where, "cb_buffer_bytes %d outside [0, %d]", f.CBBufferBytes, int64(MaxBytes))
		}
		files[f.Name] = f
	}
	if len(s.Phases) == 0 {
		return errf("spec", "no phases")
	}
	if len(s.Phases) > MaxPhases {
		return errf("spec", "%d phases exceeds cap %d", len(s.Phases), MaxPhases)
	}
	phases := map[string]*PhaseSpec{}
	for i := range s.Phases {
		ph := &s.Phases[i]
		if ph.Name == "" {
			return errf(fmt.Sprintf("phase %d", i), "missing name")
		}
		where := fmt.Sprintf("phase %q", ph.Name)
		if _, dup := phases[ph.Name]; dup {
			return errf(where, "duplicate phase name")
		}
		if ph.Loop < 0 || ph.Loop > MaxLoop {
			return errf(where, "loop %d outside [0, %d]", ph.Loop, MaxLoop)
		}
		for j := range ph.Steps {
			if err := s.validateStep(files, fmt.Sprintf("%s step %d", where, j), &ph.Steps[j]); err != nil {
				return err
			}
		}
		phases[ph.Name] = ph
	}
	// Termination: every phase has at most one Next edge, so the walk
	// from Start is a path — revisiting a phase is a cycle, and any
	// phase off the path is unreachable.
	start := s.Start
	if start == "" {
		start = s.Phases[0].Name
	}
	if _, ok := phases[start]; !ok {
		return errf("spec", "start phase %q not declared", start)
	}
	visited := map[string]bool{}
	for cur := start; cur != ""; {
		ph, ok := phases[cur]
		if !ok {
			return errf(fmt.Sprintf("phase %q", cur), "referenced by next but not declared")
		}
		if visited[cur] {
			return errf(fmt.Sprintf("phase %q", cur), "phase graph has a cycle (revisited by next chain)")
		}
		visited[cur] = true
		cur = ph.Next
	}
	for i := range s.Phases {
		if !visited[s.Phases[i].Name] {
			return errf(fmt.Sprintf("phase %q", s.Phases[i].Name), "unreachable from start %q", start)
		}
	}
	return nil
}

func (s *Spec) validateStep(files map[string]*FileSpec, where string, st *StepSpec) error {
	needFile := func() error {
		if st.File == "" {
			return errf(where, "%s step missing file", st.Op)
		}
		if _, ok := files[st.File]; !ok {
			return errf(where, "unknown file %q", st.File)
		}
		return nil
	}
	switch st.Op {
	case OpWrite, OpRead:
		if err := needFile(); err != nil {
			return err
		}
		if len(st.Access) > 0 && len(st.PerRankAccess) > 0 {
			return errf(where, "access and per_rank_access are mutually exclusive")
		}
		if len(st.PerRankAccess) > 0 && len(st.PerRankAccess) != s.Procs {
			return errf(where, "per_rank_access has %d entries for %d procs", len(st.PerRankAccess), s.Procs)
		}
		if len(st.Access) == 0 && len(st.PerRankAccess) == 0 {
			return errf(where, "%s step has no access list", st.Op)
		}
		if st.LoopStrideBytes < 0 || st.LoopStrideBytes > MaxBytes {
			return errf(where, "loop_stride_bytes %d outside [0, %d]", st.LoopStrideBytes, int64(MaxBytes))
		}
		if st.RankStrideBytes < 0 || st.RankStrideBytes > MaxBytes {
			return errf(where, "rank_stride_bytes %d outside [0, %d]", st.RankStrideBytes, int64(MaxBytes))
		}
		check := func(accs []AccessSpec) error {
			var total int64
			for k, a := range accs {
				aw := fmt.Sprintf("%s access %d", where, k)
				if a.OffsetBytes < 0 || a.OffsetBytes > MaxBytes {
					return errf(aw, "offset_bytes %d outside [0, %d]", a.OffsetBytes, int64(MaxBytes))
				}
				if a.BlockBytes < 0 || a.BlockBytes > MaxBytes {
					return errf(aw, "block_bytes %d outside [0, %d]", a.BlockBytes, int64(MaxBytes))
				}
				if len(a.Dims) > MaxDims {
					return errf(aw, "%d dims exceeds cap %d", len(a.Dims), MaxDims)
				}
				for _, d := range a.Dims {
					if d.Count < 1 || int64(d.Count) > MaxStepElements {
						return errf(aw, "dim count %d outside [1, %d]", d.Count, int64(MaxStepElements))
					}
					if d.StrideBytes < 0 || d.StrideBytes > MaxBytes {
						return errf(aw, "dim stride_bytes %d outside [0, %d]", d.StrideBytes, int64(MaxBytes))
					}
				}
				total += a.Elements()
				if total > MaxStepElements {
					return errf(where, "access list expands past %d elements", int64(MaxStepElements))
				}
			}
			return nil
		}
		if len(st.Access) > 0 {
			if err := check(st.Access); err != nil {
				return err
			}
		}
		for _, accs := range st.PerRankAccess {
			if err := check(accs); err != nil {
				return err
			}
		}
	case OpCompute:
		if st.ComputeNS < 1 || st.ComputeNS > MaxComputeNS {
			return errf(where, "compute_ns %d outside [1, %d]", st.ComputeNS, int64(MaxComputeNS))
		}
	case OpSend:
		if st.Messages < 1 || st.Messages > MaxStepElements {
			return errf(where, "messages %d outside [1, %d]", st.Messages, int64(MaxStepElements))
		}
		if st.MessageBytes < 1 || st.MessageBytes > MaxBytes {
			return errf(where, "message_bytes %d outside [1, %d]", st.MessageBytes, int64(MaxBytes))
		}
		if off := st.ToRankOffset % s.Procs; off == 0 && s.Procs > 1 {
			return errf(where, "to_rank_offset %d sends to self", st.ToRankOffset)
		}
	case OpBarrier:
	case OpSync:
		if err := needFile(); err != nil {
			return err
		}
	case "":
		return errf(where, "missing op")
	default:
		return errf(where, "unknown op %q", st.Op)
	}
	return nil
}

// Chain returns the phases in execution order (Start, then Next
// links). The spec must already validate.
func (s *Spec) Chain() []*PhaseSpec {
	byName := map[string]*PhaseSpec{}
	for i := range s.Phases {
		byName[s.Phases[i].Name] = &s.Phases[i]
	}
	start := s.Start
	if start == "" {
		start = s.Phases[0].Name
	}
	var chain []*PhaseSpec
	for cur := start; cur != ""; {
		ph := byName[cur]
		chain = append(chain, ph)
		cur = ph.Next
	}
	return chain
}

// iterations returns the phase's effective loop count (Loop 0 = 1).
func (ph *PhaseSpec) iterations() int {
	if ph.Loop < 1 {
		return 1
	}
	return ph.Loop
}

// DeclaredBytes returns the total bytes the spec promises to read and
// write across all ranks, phases, and iterations — the left-hand side
// of the byte-conservation property (traced bytes are the right).
func (s *Spec) DeclaredBytes() (read, written int64) {
	for _, ph := range s.Chain() {
		iters := int64(ph.iterations())
		for i := range ph.Steps {
			st := &ph.Steps[i]
			if st.Op != OpWrite && st.Op != OpRead {
				continue
			}
			var total int64
			if len(st.PerRankAccess) > 0 {
				for _, accs := range st.PerRankAccess {
					for _, a := range accs {
						total += a.Bytes()
					}
				}
			} else {
				for _, a := range st.Access {
					total += a.Bytes()
				}
				total *= int64(s.Procs)
			}
			if st.Op == OpWrite {
				written += total * iters
			} else {
				read += total * iters
			}
		}
	}
	return read, written
}
