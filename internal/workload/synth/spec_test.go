package synth

import (
	"strings"
	"testing"
)

// minimalSpec returns a small valid spec tests mutate.
func minimalSpec() *Spec {
	return &Spec{
		Procs: 2,
		Files: []FileSpec{{Name: "f", Path: "/f"}},
		Phases: []PhaseSpec{
			{Name: "p", Steps: []StepSpec{
				{Op: OpWrite, File: "f", Access: []AccessSpec{{OffsetBytes: 0, BlockBytes: 1024}}},
			}},
		},
	}
}

func TestSynthSpecValidateAcceptsMinimal(t *testing.T) {
	if err := minimalSpec().Validate(); err != nil {
		t.Fatalf("minimal spec rejected: %v", err)
	}
}

func TestSynthSpecValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string // substring of the structured error
	}{
		{"zero procs", func(s *Spec) { s.Procs = 0 }, "procs"},
		{"procs over cap", func(s *Spec) { s.Procs = MaxProcs + 1 }, "procs"},
		{"file without name", func(s *Spec) { s.Files[0].Name = "" }, "missing name"},
		{"file without path", func(s *Spec) { s.Files[0].Path = "" }, "missing path"},
		{"duplicate file", func(s *Spec) { s.Files = append(s.Files, s.Files[0]) }, "duplicate file"},
		{"bad mount", func(s *Spec) { s.Files[0].Mount = "tmpfs" }, "unknown mount"},
		{"no phases", func(s *Spec) { s.Phases = nil }, "no phases"},
		{"phase without name", func(s *Spec) { s.Phases[0].Name = "" }, "missing name"},
		{"negative loop", func(s *Spec) { s.Phases[0].Loop = -1 }, "loop"},
		{"loop over cap", func(s *Spec) { s.Phases[0].Loop = MaxLoop + 1 }, "loop"},
		{"unknown start", func(s *Spec) { s.Start = "nope" }, "start"},
		{"dangling next", func(s *Spec) { s.Phases[0].Next = "nope" }, "not declared"},
		{"self cycle", func(s *Spec) { s.Phases[0].Next = "p" }, "cycle"},
		{"two-phase cycle", func(s *Spec) {
			s.Phases[0].Next = "q"
			s.Phases = append(s.Phases, PhaseSpec{Name: "q", Next: "p"})
		}, "cycle"},
		{"unreachable phase", func(s *Spec) {
			s.Phases = append(s.Phases, PhaseSpec{Name: "island"})
		}, "unreachable"},
		{"step without op", func(s *Spec) { s.Phases[0].Steps[0].Op = "" }, "missing op"},
		{"unknown op", func(s *Spec) { s.Phases[0].Steps[0].Op = "scribble" }, "unknown op"},
		{"io without file", func(s *Spec) { s.Phases[0].Steps[0].File = "" }, "missing file"},
		{"io unknown file", func(s *Spec) { s.Phases[0].Steps[0].File = "g" }, "unknown file"},
		{"io without access", func(s *Spec) { s.Phases[0].Steps[0].Access = nil }, "no access"},
		{"both access forms", func(s *Spec) {
			s.Phases[0].Steps[0].PerRankAccess = [][]AccessSpec{{}, {}}
		}, "mutually exclusive"},
		{"per-rank length mismatch", func(s *Spec) {
			s.Phases[0].Steps[0].Access = nil
			s.Phases[0].Steps[0].PerRankAccess = [][]AccessSpec{{}}
		}, "per_rank_access"},
		{"negative offset", func(s *Spec) { s.Phases[0].Steps[0].Access[0].OffsetBytes = -1 }, "offset_bytes"},
		{"negative block", func(s *Spec) { s.Phases[0].Steps[0].Access[0].BlockBytes = -1 }, "block_bytes"},
		{"zero dim count", func(s *Spec) {
			s.Phases[0].Steps[0].Access[0].Dims = []DimSpec{{Count: 0, StrideBytes: 8}}
		}, "dim count"},
		{"negative stride", func(s *Spec) {
			s.Phases[0].Steps[0].Access[0].Dims = []DimSpec{{Count: 2, StrideBytes: -8}}
		}, "stride_bytes"},
		{"too many dims", func(s *Spec) {
			s.Phases[0].Steps[0].Access[0].Dims = make([]DimSpec, MaxDims+1)
			for i := range s.Phases[0].Steps[0].Access[0].Dims {
				s.Phases[0].Steps[0].Access[0].Dims[i] = DimSpec{Count: 1}
			}
		}, "dims"},
		{"element explosion", func(s *Spec) {
			s.Phases[0].Steps[0].Access[0].Dims = []DimSpec{
				{Count: 1 << 12, StrideBytes: 8}, {Count: 1 << 12, StrideBytes: 8},
			}
		}, "elements"},
		{"compute without duration", func(s *Spec) {
			s.Phases[0].Steps[0] = StepSpec{Op: OpCompute}
		}, "compute_ns"},
		{"send without bytes", func(s *Spec) {
			s.Phases[0].Steps[0] = StepSpec{Op: OpSend, Messages: 1, ToRankOffset: 1}
		}, "message_bytes"},
		{"send without messages", func(s *Spec) {
			s.Phases[0].Steps[0] = StepSpec{Op: OpSend, MessageBytes: 8, ToRankOffset: 1}
		}, "messages"},
		{"send to self", func(s *Spec) {
			s.Phases[0].Steps[0] = StepSpec{Op: OpSend, Messages: 1, MessageBytes: 8, ToRankOffset: 2}
		}, "self"},
		{"sync unknown file", func(s *Spec) {
			s.Phases[0].Steps[0] = StepSpec{Op: OpSync, File: "g"}
		}, "unknown file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := minimalSpec()
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("mutation accepted, want error containing %q", tc.want)
			}
			se, ok := err.(*Error)
			if !ok {
				t.Fatalf("error is %T, want *Error: %v", err, err)
			}
			if !strings.Contains(se.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", se.Error(), tc.want)
			}
		})
	}
}

func TestSynthSpecChainOrder(t *testing.T) {
	s := &Spec{
		Procs: 1,
		Start: "b",
		Phases: []PhaseSpec{
			{Name: "c"},
			{Name: "b", Next: "a"},
			{Name: "a", Next: "c"},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	var got []string
	for _, ph := range s.Chain() {
		got = append(got, ph.Name)
	}
	want := []string{"b", "a", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chain = %v, want %v", got, want)
		}
	}
}

func TestSynthSpecDeclaredBytes(t *testing.T) {
	s := &Spec{
		Procs: 3,
		Files: []FileSpec{{Name: "f", Path: "/f"}},
		Phases: []PhaseSpec{
			{Name: "w", Loop: 2, Steps: []StepSpec{
				// 3 ranks × 2 iters × (4 elements × 100 bytes) = 2400 written.
				{Op: OpWrite, File: "f", Access: []AccessSpec{
					{OffsetBytes: 0, BlockBytes: 100, Dims: []DimSpec{{Count: 4, StrideBytes: 200}}},
				}},
			}, Next: "r"},
			{Name: "r", Steps: []StepSpec{
				// Per-rank: 50 + 2×30 + 0 = 110 read.
				{Op: OpRead, File: "f", PerRankAccess: [][]AccessSpec{
					{{OffsetBytes: 0, BlockBytes: 50}},
					{{OffsetBytes: 0, BlockBytes: 30, Dims: []DimSpec{{Count: 2, StrideBytes: 60}}}},
					{},
				}},
			}},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	read, written := s.DeclaredBytes()
	if written != 2400 {
		t.Errorf("declared written = %d, want 2400", written)
	}
	if read != 110 {
		t.Errorf("declared read = %d, want 110", read)
	}
}

func TestSynthParseSpecRejectsUnknownFieldsAndGarbage(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"not json", "{"},
		{"unknown field", `{"procs":1,"phasez":[]}`},
		{"trailing data", `{"procs":1,"phases":[{"name":"p","steps":[]}]} {"x":1}`},
		{"wrong type", `{"procs":"two","phases":[]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.in))
			if err == nil {
				t.Fatal("accepted, want error")
			}
			if _, ok := err.(*Error); !ok {
				t.Fatalf("error is %T, want *Error: %v", err, err)
			}
		})
	}
}
