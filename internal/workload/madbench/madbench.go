// Package madbench implements the MADbench2 benchmark on the
// simulated cluster: the out-of-core CMB power-spectrum workload whose
// three functions move whole component matrices between memory and
// disk. In IO mode (the paper's setup: IOMETHOD=MPI, IOMODE=SYNC)
// calculations are replaced with busy-work and the D function is
// skipped, leaving the paper's three I/O phases per process:
//
//	S: 8 writes            (S_w)
//	W: 8 reads + 8 writes  (W_r, W_w)
//	C: 8 reads             (C_r)
//
// With 18 KPIX and 16 processes each operation moves a 162 MB slice
// (Table VIII); with 64 processes, 40.5 MB. FileType selects one
// shared file or one file per process (SHARED/UNIQUE).
package madbench

import (
	"fmt"

	"ioeval/internal/cluster"
	"ioeval/internal/fs"
	"ioeval/internal/mpiio"
	"ioeval/internal/sim"
	"ioeval/internal/workload"
)

// FileType selects the file layout, per MADbench2's FILETYPE option.
type FileType int

// The two layouts the paper evaluates.
const (
	Unique FileType = iota // one file per process
	Shared                 // one shared file
)

func (ft FileType) String() string {
	if ft == Unique {
		return "UNIQUE"
	}
	return "SHARED"
}

// Config parameterizes a MADbench2 run.
type Config struct {
	Procs    int // must be a perfect square (MADbench requirement)
	KPix     int // pixels = KPix × 1024 (paper: 18)
	Bins     int // component matrices (paper: 8)
	FileType FileType
	// PathPrefix for the benchmark files on shared storage.
	PathPrefix string
	// BusyWork is the per-bin busy-work time replacing calculations
	// in IO mode (0 = pure I/O).
	BusyWork sim.Duration
	// AsyncWrites disables the paper's IOMODE=SYNC behaviour (a sync
	// after every write). Default false: writes are synced, so
	// write-behind caches cannot defer the cost out of the
	// measurement window.
	AsyncWrites bool
	// UseLocal runs against each node's local filesystem instead of
	// NFS (only meaningful with Unique files).
	UseLocal bool
}

// App is a configured MADbench2 instance.
type App struct {
	cfg Config
}

var _ workload.App = (*App)(nil)

// New validates the configuration and returns the workload.
func New(cfg Config) *App {
	q := 1
	for q*q < cfg.Procs {
		q++
	}
	if q*q != cfg.Procs || cfg.Procs == 0 {
		panic(fmt.Sprintf("madbench: %d processes is not a square", cfg.Procs))
	}
	if cfg.KPix == 0 {
		cfg.KPix = 18
	}
	if cfg.Bins == 0 {
		cfg.Bins = 8
	}
	if cfg.PathPrefix == "" {
		cfg.PathPrefix = "/madbench"
	}
	if cfg.UseLocal && cfg.FileType == Shared {
		panic("madbench: SHARED filetype requires shared (NFS) storage")
	}
	return &App{cfg: cfg}
}

// Name implements workload.App.
func (a *App) Name() string {
	return fmt.Sprintf("MADbench2 %s (%d procs, %d KPIX, %d bins)",
		a.cfg.FileType, a.cfg.Procs, a.cfg.KPix, a.cfg.Bins)
}

// Procs implements workload.App.
func (a *App) Procs() int { return a.cfg.Procs }

// Config returns the (defaulted) configuration the app runs.
func (a *App) Config() Config { return a.cfg }

// SliceBytes returns the per-process matrix slice (162 MB for 18 KPIX
// on 16 processes — Table VIII).
func (a *App) SliceBytes() int64 {
	npix := int64(a.cfg.KPix) * 1024
	return npix * npix * 8 / int64(a.cfg.Procs)
}

// path returns the file path for a rank.
func (a *App) path(rank int) string {
	if a.cfg.FileType == Unique {
		return fmt.Sprintf("%s.%04d", a.cfg.PathPrefix, rank)
	}
	return a.cfg.PathPrefix
}

// offset returns where bin b of rank's slice lives in its file.
func (a *App) offset(rank, b int) int64 {
	slice := a.SliceBytes()
	if a.cfg.FileType == Unique {
		return int64(b) * slice
	}
	// Shared: bin-major layout, slices of a bin contiguous by rank.
	return (int64(b)*int64(a.cfg.Procs) + int64(rank)) * slice
}

// Run implements workload.App.
func (a *App) Run(c *cluster.Cluster, tr mpiio.Tracer) (workload.Result, error) {
	np := a.cfg.Procs
	w := c.NewWorld(c.RankNodes(np))
	w.SetTracer(tr)

	mounts := c.NFSMounts(np)
	if a.cfg.UseLocal {
		mounts = c.LocalMounts(np)
	}

	// MADbench uses independent large operations; collective
	// buffering brings nothing for disjoint whole-slice accesses.
	hints := mpiio.Hints{CollectiveBuffering: false}

	// With UNIQUE files every rank has its own mpiio.File over a
	// one-rank "sub-world" view; modelled here as np independent
	// single-rank files sharing the world for tracing.
	files := make([]*mpiio.File, np)
	if a.cfg.FileType == Shared {
		f := mpiio.OpenFile(w, a.path(0), fs.ORead|fs.OWrite|fs.OCreate|fs.OTrunc, mounts, hints)
		for r := range files {
			files[r] = f
		}
	}

	slice := a.SliceBytes()
	bins := a.cfg.Bins
	var errs []error
	// Accumulated time inside each function's reads/writes, per rank —
	// MADbench2 itself reports exactly these (S_w, W_r, W_w, C_r).
	ra := workload.NewRateAggregator(np)
	ra.Declare("S_w", "W_r", "W_w", "C_r")

	for rank := 0; rank < np; rank++ {
		rank := rank
		c.Eng.Spawn(fmt.Sprintf("madbench-r%d", rank), func(p *sim.Proc) {
			f := files[rank]
			if f == nil {
				// UNIQUE: a per-rank world/file pair.
				sub := c.NewWorld([]string{w.Node(rank)})
				sub.SetTracer(&rankShift{tr: w.Tracer(), rank: rank})
				f = mpiio.OpenFile(sub, a.path(rank), fs.ORead|fs.OWrite|fs.OCreate|fs.OTrunc,
					[]fs.Interface{mounts[rank]}, hints)
			}
			fRank := rank
			if a.cfg.FileType == Unique {
				fRank = 0
			}
			if err := f.Open(p, fRank); err != nil {
				errs = append(errs, err)
				return
			}

			timed := func(key string, fn func()) {
				t0 := p.Now()
				fn()
				ra.Add(key, rank, sim.Duration(p.Now()-t0), slice)
			}

			// syncWrite performs one matrix write; in SYNC I/O mode
			// (IOMODE=SYNC, the paper's setting) it is followed by a
			// sync so the cost cannot hide in a write-behind cache.
			syncWrite := func(off int64) {
				f.WriteAt(p, fRank, off, slice)
				if !a.cfg.AsyncWrites {
					f.Sync(p, fRank)
				}
			}
			// S: build and write each bin matrix.
			for b := 0; b < bins; b++ {
				if a.cfg.BusyWork > 0 {
					w.Compute(p, rank, a.cfg.BusyWork)
				}
				b := b
				timed("S_w", func() { syncWrite(a.offset(rank, b)) })
			}
			// W: read each bin, busy-work, write it back.
			for b := 0; b < bins; b++ {
				b := b
				timed("W_r", func() { f.ReadAt(p, fRank, a.offset(rank, b), slice) })
				if a.cfg.BusyWork > 0 {
					w.Compute(p, rank, a.cfg.BusyWork)
				}
				timed("W_w", func() { syncWrite(a.offset(rank, b)) })
			}
			// C: read each bin.
			for b := 0; b < bins; b++ {
				b := b
				timed("C_r", func() { f.ReadAt(p, fRank, a.offset(rank, b), slice) })
			}
			f.Close(p, fRank)
		})
	}
	end := c.Eng.Run()
	if len(errs) > 0 {
		return workload.Result{}, errs[0]
	}

	// Ranks run in parallel: each key's aggregate rate is the total
	// bytes of the function over the slowest rank's time in it.
	res := workload.Result{ExecTime: sim.Duration(end), PhaseRates: ra.Rates()}
	for r := 0; r < np; r++ {
		read := ra.Duration("W_r", r) + ra.Duration("C_r", r)
		write := ra.Duration("S_w", r) + ra.Duration("W_w", r)
		if read > res.ReadTime {
			res.ReadTime = read
		}
		if write > res.WriteTime {
			res.WriteTime = write
		}
		if read+write > res.IOTime {
			res.IOTime = read + write
		}
	}
	res.BytesWritten = 2 * int64(bins) * slice * int64(np)
	res.BytesRead = 2 * int64(bins) * slice * int64(np)
	return res, nil
}

// rankShift relabels events from per-rank sub-worlds (always rank 0)
// with the true rank.
type rankShift struct {
	tr   mpiio.Tracer
	rank int
}

func (rs *rankShift) Record(ev mpiio.Event) {
	if rs.tr == nil {
		return
	}
	ev.Rank = rs.rank
	rs.tr.Record(ev)
}
