package madbench_test

import (
	"testing"

	"ioeval/internal/cluster"
	"ioeval/internal/mpiio"
	"ioeval/internal/trace"
	"ioeval/internal/workload/madbench"
)

const mb = int64(1) << 20

func TestSliceBytesMatchesPaperTable8(t *testing.T) {
	// 18 KPIX ⇒ 18432² doubles = 2.53 GiB; /16 procs = 162 MiB,
	// /64 procs = 40.5 MiB — the paper's block sizes.
	a16 := madbench.New(madbench.Config{Procs: 16, KPix: 18})
	if got := a16.SliceBytes(); got != 162*mb {
		t.Fatalf("16-proc slice = %d, want %d", got, 162*mb)
	}
	a64 := madbench.New(madbench.Config{Procs: 64, KPix: 18})
	if got := a64.SliceBytes(); got*2 != 81*mb {
		t.Fatalf("64-proc slice = %d, want 40.5MB", got)
	}
}

func TestNonSquareProcsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	madbench.New(madbench.Config{Procs: 12})
}

func TestSharedRequiresNFS(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	madbench.New(madbench.Config{Procs: 4, FileType: madbench.Shared, UseLocal: true})
}

func TestOpCountsMatchPaperStructure(t *testing.T) {
	// Per process: 16 writes (8 in S, 8 in W) and 16 reads (8 in W,
	// 8 in C); with 4 procs: 64 each. UNIQUE ⇒ 4 files.
	for _, ft := range []madbench.FileType{madbench.Unique, madbench.Shared} {
		c := cluster.Aohyper(cluster.RAID5)
		tr := trace.New()
		a := madbench.New(madbench.Config{Procs: 4, KPix: 2, Bins: 8, FileType: ft})
		if _, err := a.Run(c, tr); err != nil {
			t.Fatalf("%v run: %v", ft, err)
		}
		p := tr.Profile()
		if p.NumWrites != 64 || p.NumReads != 64 {
			t.Fatalf("%v: w=%d r=%d, want 64 each", ft, p.NumWrites, p.NumReads)
		}
		wantFiles := 1
		if ft == madbench.Unique {
			wantFiles = 4
		}
		if p.NumFiles != wantFiles {
			t.Fatalf("%v: files = %d, want %d", ft, p.NumFiles, wantFiles)
		}
		if p.NumProcs != 4 {
			t.Fatalf("%v: procs = %d", ft, p.NumProcs)
		}
	}
}

func TestThreeIOPhases(t *testing.T) {
	// Each rank shows: a write phase (S), a mixed region that phase
	// detection splits into read/write alternations (W), and a read
	// phase (C). First phase must be writes, last must be reads.
	c := cluster.Aohyper(cluster.RAID5)
	tr := trace.New()
	a := madbench.New(madbench.Config{Procs: 4, KPix: 2, Bins: 8, FileType: madbench.Shared})
	if _, err := a.Run(c, tr); err != nil {
		t.Fatalf("run: %v", err)
	}
	phases := tr.Phases(0)
	if len(phases) < 3 {
		t.Fatalf("phases = %d, want ≥3", len(phases))
	}
	if phases[0].Kind != mpiio.OpWrite || phases[0].Ops != 8 {
		t.Fatalf("first phase %+v, want 8-op write (S)", phases[0])
	}
	last := phases[len(phases)-1]
	if last.Kind != mpiio.OpRead || last.Ops != 8 {
		t.Fatalf("last phase %+v, want 8-op read (C)", last)
	}
}

func TestPhaseRatesReported(t *testing.T) {
	c := cluster.Aohyper(cluster.RAID5)
	a := madbench.New(madbench.Config{Procs: 4, KPix: 2, Bins: 4, FileType: madbench.Shared})
	res, err := a.Run(c, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, k := range []string{"S_w", "W_r", "W_w", "C_r"} {
		if res.PhaseRates[k] <= 0 {
			t.Fatalf("phase %s rate = %f", k, res.PhaseRates[k])
		}
	}
	// W reads come straight after the same data was written: the
	// server cache should make W_r at least as fast as S_w.
	if res.PhaseRates["W_r"] < res.PhaseRates["S_w"]/2 {
		t.Fatalf("W_r (%.1f MB/s) implausibly slower than S_w (%.1f MB/s)",
			res.PhaseRates["W_r"]/1e6, res.PhaseRates["S_w"]/1e6)
	}
}

func TestUniqueLocalRunsOnNodeDisks(t *testing.T) {
	c := cluster.Aohyper(cluster.JBOD)
	a := madbench.New(madbench.Config{Procs: 4, KPix: 2, Bins: 4, FileType: madbench.Unique, UseLocal: true})
	if _, err := a.Run(c, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	if c.DataNet.Stats.Bytes != 0 {
		t.Fatalf("local run moved %d bytes over the data network", c.DataNet.Stats.Bytes)
	}
	// Data lands in the node-local filesystems (small slices may stay
	// in the write-back page cache rather than reaching the platters).
	var nodeBytes int64
	for _, n := range c.Nodes {
		nodeBytes += n.Local.Stats.BytesWritten
	}
	if nodeBytes == 0 {
		t.Fatal("no traffic reached node-local filesystems")
	}
}

func TestBusyWorkIncreasesExecOnly(t *testing.T) {
	run := func(busy bool) (exec, io float64) {
		c := cluster.Aohyper(cluster.RAID5)
		cfg := madbench.Config{Procs: 4, KPix: 2, Bins: 4, FileType: madbench.Shared}
		if busy {
			cfg.BusyWork = 2e9 // 2 s per bin
		}
		a := madbench.New(cfg)
		res, err := a.Run(c, nil)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res.ExecTime.Seconds(), res.IOTime.Seconds()
	}
	e0, _ := run(false)
	e1, io1 := run(true)
	if e1 <= e0 {
		t.Fatalf("busy work did not increase exec time: %f vs %f", e1, e0)
	}
	if io1 > e1 {
		t.Fatal("IO time exceeds exec time")
	}
}
