package lint

import (
	"bytes"
	"go/format"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixHarness builds a FileSet over an in-memory source file and
// returns a position mapper plus a readFile stub for ApplyFixes.
func fixHarness(src string) (fset *token.FileSet, pos func(off int) token.Pos, read func(string) ([]byte, error)) {
	fset = token.NewFileSet()
	f := fset.AddFile("fix.go", -1, len(src))
	f.SetLinesForContent([]byte(src))
	pos = func(off int) token.Pos { return f.Pos(off) }
	read = func(string) ([]byte, error) { return []byte(src), nil }
	return fset, pos, read
}

func fixDiag(pos func(int) token.Pos, start, end int, text string) Diagnostic {
	return withFix(Diagnostic{Check: "test"}, "test fix",
		TextEdit{Pos: pos(start), End: pos(end), NewText: text})
}

func TestApplyFixesReplacement(t *testing.T) {
	src := "package p\n\nvar x = 1\n"
	fset, pos, read := fixHarness(src)
	off := strings.Index(src, "1")
	res, err := ApplyFixes(fset, []Diagnostic{fixDiag(pos, off, off+1, "2")}, read)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(res.Files["fix.go"]), "package p\n\nvar x = 2\n"; got != want {
		t.Errorf("fixed content = %q, want %q", got, want)
	}
	if res.Applied != 1 {
		t.Errorf("Applied = %d, want 1", res.Applied)
	}
}

func TestApplyFixesInsertion(t *testing.T) {
	src := "package p\n\nfunc f() {\n\topen()\n}\n"
	fset, pos, read := fixHarness(src)
	off := strings.Index(src, "open()") + len("open()")
	res, err := ApplyFixes(fset, []Diagnostic{fixDiag(pos, off, off, "\n\tdefer close()")}, read)
	if err != nil {
		t.Fatal(err)
	}
	want := "package p\n\nfunc f() {\n\topen()\n\tdefer close()\n}\n"
	if got := string(res.Files["fix.go"]); got != want {
		t.Errorf("fixed content = %q, want %q", got, want)
	}
}

// TestApplyFixesDedupe pins that two findings proposing the byte-same
// edit are folded, not refused as overlapping.
func TestApplyFixesDedupe(t *testing.T) {
	src := "package p\n\nvar x = 1\n"
	fset, pos, read := fixHarness(src)
	off := strings.Index(src, "1")
	d := fixDiag(pos, off, off+1, "2")
	res, err := ApplyFixes(fset, []Diagnostic{d, d}, read)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(res.Files["fix.go"]), "package p\n\nvar x = 2\n"; got != want {
		t.Errorf("fixed content = %q, want %q", got, want)
	}
}

// TestApplyFixesRefusesOverlap pins the dirty-overlap contract: two
// different edits touching the same bytes reject the whole run.
func TestApplyFixesRefusesOverlap(t *testing.T) {
	src := "package p\n\nvar x = 100\n"
	fset, pos, read := fixHarness(src)
	off := strings.Index(src, "100")
	diags := []Diagnostic{
		fixDiag(pos, off, off+2, "2"),
		fixDiag(pos, off+1, off+3, "3"),
	}
	if _, err := ApplyFixes(fset, diags, read); err == nil || !strings.Contains(err.Error(), "refusing overlapping fixes") {
		t.Errorf("overlapping edits must be refused, got err=%v", err)
	}
}

func TestApplyFixesNoFixes(t *testing.T) {
	fset, _, read := fixHarness("package p\n")
	res, err := ApplyFixes(fset, []Diagnostic{{Check: "test", Message: "no fix attached"}}, read)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 0 || len(res.Files) != 0 {
		t.Errorf("fixless diagnostics must produce an empty result, got %+v", res)
	}
}

// copyTree clones a fixture tree into dst so fixes can be applied on
// disk without touching the committed testdata.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		sp, dp := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			if err := os.MkdirAll(dp, 0o755); err != nil {
				t.Fatal(err)
			}
			copyTree(t, sp, dp)
			continue
		}
		data, err := os.ReadFile(sp)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dp, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestApplyFixesRoundTrip is the end-to-end -fix contract on the two
// all-fixable fixture packages: every finding carries a fix, the
// rewritten files are gofmt-clean, and a re-lint over the fixed tree
// reports zero findings (so a second -fix run is a no-op).
func TestApplyFixesRoundTrip(t *testing.T) {
	cases := []struct {
		dir      string
		analyzer func() *Analyzer
	}{
		{"spanbalancefix", SpanBalance},
		{"unitflowfix", UnitFlow},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			tmp := t.TempDir()
			copyTree(t, filepath.Join("testdata", "src"), tmp)
			loader := NewTreeLoader("fixture/internal", tmp)
			p, err := loader.Load(tc.dir)
			if err != nil {
				t.Fatal(err)
			}
			runner := &Runner{Analyzers: []*Analyzer{tc.analyzer()}}
			diags := runner.Run([]*Package{p})
			if len(diags) == 0 {
				t.Fatal("fixture produced no findings")
			}
			for _, d := range diags {
				if len(d.Fixes) == 0 {
					t.Errorf("finding without a fix: %s", d)
				}
			}
			res, err := ApplyFixes(p.Fset, diags, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Files) == 0 {
				t.Fatal("ApplyFixes rewrote no files")
			}
			for name, content := range res.Files {
				formatted, err := format.Source(content)
				if err != nil {
					t.Fatalf("fixed %s does not parse: %v", name, err)
				}
				if !bytes.Equal(formatted, content) {
					t.Errorf("fixed %s is not gofmt-clean", name)
				}
				if err := os.WriteFile(name, content, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			reload := NewTreeLoader("fixture/internal", tmp)
			p2, err := reload.Load(tc.dir)
			if err != nil {
				t.Fatalf("fixed package does not load: %v", err)
			}
			diags2 := (&Runner{Analyzers: []*Analyzer{tc.analyzer()}}).Run([]*Package{p2})
			if len(diags2) != 0 {
				t.Errorf("fixed package still has findings:\n%s", formatDiags(diags2))
			}
		})
	}
}
