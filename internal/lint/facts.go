package lint

import (
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// Facts is the module-wide fact store: analyzers export facts about
// a package's API (keyed by the defining object and a fact kind)
// while packages are visited in dependency order, and consume facts
// of callees when analyzing callers. The store is the mechanism that
// lets a per-package analyzer reason across package boundaries — "this
// function returns a wall-clock-tainted value", "this helper opens a
// span it does not close", "this function arms a fault plan" — without
// whole-program analysis.
type Facts struct {
	m map[factKey]Fact
}

// Fact is one exported statement about an object. Facts must render
// deterministically (String) so the store can be serialized for
// debugging and golden-testing.
type Fact interface{ String() string }

type factKey struct {
	obj  types.Object
	kind string
}

// NewFacts returns an empty store.
func NewFacts() *Facts { return &Facts{m: map[factKey]Fact{}} }

// Export records a fact about obj under the analyzer-chosen kind,
// replacing any previous fact of that kind.
func (fs *Facts) Export(obj types.Object, kind string, fact Fact) {
	fs.m[factKey{obj: obj, kind: kind}] = fact
}

// Get returns the fact of the given kind exported for obj, if any.
func (fs *Facts) Get(obj types.Object, kind string) (Fact, bool) {
	f, ok := fs.m[factKey{obj: obj, kind: kind}]
	return f, ok
}

// Len returns the number of stored facts.
func (fs *Facts) Len() int { return len(fs.m) }

// Dump serializes the store deterministically, one fact per line:
//
//	<pkgpath>.<object> <kind> = <fact>
//
// sorted by package path, object name, then kind. iolint -facts
// prints it; tests golden it.
func (fs *Facts) Dump() string {
	type row struct{ pkg, obj, kind, val string }
	rows := make([]row, 0, len(fs.m))
	for k, f := range fs.m {
		pkg := "_"
		if k.obj.Pkg() != nil {
			pkg = k.obj.Pkg().Path()
		}
		name := k.obj.Name()
		if fn, ok := k.obj.(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				name = recvTypeName(sig.Recv().Type()) + "." + name
			}
		}
		rows = append(rows, row{pkg: pkg, obj: name, kind: k.kind, val: f.String()})
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.pkg != b.pkg {
			return a.pkg < b.pkg
		}
		if a.obj != b.obj {
			return a.obj < b.obj
		}
		return a.kind < b.kind
	})
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%s.%s %s = %s\n", r.pkg, r.obj, r.kind, r.val)
	}
	return b.String()
}

// recvTypeName names a method receiver type compactly ("*Cache" →
// "Cache").
func recvTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// ComputeFacts runs every analyzer's Facts hook over the packages in
// module dependency order (imports before importers), so a hook
// analyzing a caller can read the facts its callees' packages
// exported. Runner.Run calls it implicitly when no pre-computed
// store is supplied; BenchmarkLintModule calls it explicitly to
// price the fact pass.
func ComputeFacts(pkgs []*Package, analyzers []*Analyzer) *Facts {
	facts := NewFacts()
	ordered := dependencyOrder(pkgs)
	for _, az := range analyzers {
		if az.Facts == nil {
			continue
		}
		for _, p := range ordered {
			if az.AppliesTo != nil && !az.AppliesTo(p.Path) {
				continue
			}
			az.Facts(&Pass{Package: p, Facts: facts})
		}
	}
	return facts
}

// dependencyOrder topologically sorts the packages so every package
// follows the packages it imports (restricted to the given set).
// Ties and roots keep import-path order, so the result is
// deterministic.
func dependencyOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
		paths = append(paths, p.Path)
	}
	sort.Strings(paths)
	var out []*Package
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		p, ok := byPath[path]
		if !ok || state[path] != 0 {
			return
		}
		state[path] = 1
		imps := p.Types.Imports()
		impPaths := make([]string, 0, len(imps))
		for _, imp := range imps {
			impPaths = append(impPaths, imp.Path())
		}
		sort.Strings(impPaths)
		for _, ip := range impPaths {
			visit(ip)
		}
		state[path] = 2
		out = append(out, p)
	}
	for _, path := range paths {
		visit(path)
	}
	return out
}
