package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// FaultPlanCheck is the name of the faultplan analyzer.
const FaultPlanCheck = "faultplan"

// planFactKind keys plan-consumer facts in the store.
const planFactKind = "faultplan"

// PlanConsumerFact marks which fault.Plan-typed parameters of a
// function are actually consumed — forwarded toward fault.Apply,
// stored, or returned — as opposed to merely read. It is exported for
// every function with a Plan parameter, so for module-internal
// callees an absent bit is a definitive "not consumed", while callees
// without any fact (stdlib, function values) get the benefit of the
// doubt.
type PlanConsumerFact struct {
	// Params is the bitmask of consumed parameter indices.
	Params uint64
}

// String implements Fact.
func (f PlanConsumerFact) String() string {
	var parts []string
	for i := 0; i < 64; i++ {
		if f.Params&(1<<i) != 0 {
			parts = append(parts, fmt.Sprintf("p%d", i))
		}
	}
	if len(parts) == 0 {
		return "consumes()"
	}
	return "consumes(" + strings.Join(parts, ",") + ")"
}

// FaultPlan returns the analyzer enforcing the fault-plane
// construction contract: every non-empty fault.Plan literal names
// and seeds its scenario (unseeded jitter and unnamed sweep cells
// break replay and reporting), NetFlap/NFSStall events carry a
// Duration (a zero-length outage is a no-op the report still labels
// degraded), and every constructed plan is eventually armed —
// reaches fault.Apply, possibly through intermediate functions,
// tracked via consumer facts.
func FaultPlan() *Analyzer {
	return &Analyzer{
		Name: FaultPlanCheck,
		Doc: "Reports non-empty fault.Plan literals missing Name or Seed, " +
			"NetFlap/NFSStall events missing Duration, and plans that are " +
			"constructed but never reach fault.Apply (directly or through a " +
			"plan-consuming callee, tracked cross-package via facts).",
		Facts: faultPlanFacts,
		Run:   faultPlanRun,
	}
}

// isFaultPlan matches fault.Plan or *fault.Plan (by package name, so
// fixture trees with their own fault package conform).
func isFaultPlan(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Plan" && obj.Pkg() != nil && obj.Pkg().Name() == "fault"
}

// faultPlanFacts exports a PlanConsumerFact for every function with a
// Plan-typed parameter, iterating so intra-package forwarding chains
// converge (imports are already done, courtesy of dependency order).
func faultPlanFacts(pass *Pass) {
	for iter := 0; iter < 4; iter++ {
		changed := false
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				sig := fn.Type().(*types.Signature)
				tracked := map[types.Object]bool{}
				var planParams []int
				for i := 0; i < sig.Params().Len() && i < 64; i++ {
					if isFaultPlan(sig.Params().At(i).Type()) {
						tracked[sig.Params().At(i)] = true
						planParams = append(planParams, i)
					}
				}
				if len(planParams) == 0 {
					continue
				}
				consumed := consumedObjects(pass, fd.Body, tracked)
				fact := PlanConsumerFact{}
				for _, i := range planParams {
					if consumed[sig.Params().At(i)] {
						fact.Params |= 1 << i
					}
				}
				if prev, ok := pass.Facts.Get(fn, planFactKind); !ok || prev.String() != fact.String() {
					pass.Facts.Export(fn, planFactKind, fact)
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

func faultPlanRun(pass *Pass) []Diagnostic {
	var out []Diagnostic
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, faultPlanFunc(pass, fd)...)
		}
	}
	return out
}

// faultPlanFunc checks every fault.Plan literal in one function.
func faultPlanFunc(pass *Pass, fd *ast.FuncDecl) []Diagnostic {
	p := pass.Package
	var out []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || !isFaultPlan(p.Info.TypeOf(lit)) || len(lit.Elts) == 0 {
			return true
		}
		keys := map[string]ast.Expr{}
		keyed := true
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				keyed = false
				break
			}
			if id, ok := kv.Key.(*ast.Ident); ok {
				keys[id.Name] = kv.Value
			}
		}
		if keyed {
			if keys["Name"] == nil {
				out = append(out, diag(p, lit.Pos(), FaultPlanCheck,
					"non-empty fault.Plan literal does not set Name; unnamed scenarios are indistinguishable in sweep cells and reports"))
			}
			if keys["Seed"] == nil {
				out = append(out, diag(p, lit.Pos(), FaultPlanCheck,
					"non-empty fault.Plan literal does not set Seed; plan randomness (flap jitter) replays byte-identically only when seeded"))
			}
			if events := keys["Events"]; events != nil {
				out = append(out, checkPlanEvents(p, events)...)
			}
		}
		if !planLiteralConsumed(pass, fd.Body, lit) {
			out = append(out, diag(p, lit.Pos(), FaultPlanCheck,
				"fault.Plan is constructed but never armed; pass it to fault.Apply (directly or through a plan-consuming function) or its events never fire"))
		}
		return true
	})
	return out
}

// checkPlanEvents enforces per-kind required fields on the Events
// slice literal: NetFlap and NFSStall are span faults, meaningless
// without a Duration.
func checkPlanEvents(p *Package, events ast.Expr) []Diagnostic {
	var out []Diagnostic
	list, ok := events.(*ast.CompositeLit)
	if !ok {
		return nil
	}
	for _, el := range list.Elts {
		ev, ok := el.(*ast.CompositeLit)
		if !ok {
			continue
		}
		kind, hasDuration := "", false
		for _, field := range ev.Elts {
			kv, ok := field.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			id, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch id.Name {
			case "Kind":
				switch v := kv.Value.(type) {
				case *ast.SelectorExpr:
					kind = v.Sel.Name
				case *ast.Ident:
					kind = v.Name
				}
			case "Duration":
				hasDuration = true
			}
		}
		if (kind == "NetFlap" || kind == "NFSStall") && !hasDuration {
			out = append(out, diag(p, ev.Pos(), FaultPlanCheck,
				"%s event does not set Duration; a zero-length outage is a no-op the report still labels as degraded", kind))
		}
	}
	return out
}

// planLiteralConsumed reports whether the literal itself is consumed
// at its use site, or flows into a local whose later uses consume it.
func planLiteralConsumed(pass *Pass, body *ast.BlockStmt, lit *ast.CompositeLit) bool {
	tracked := map[types.Object]bool{}
	litConsumed := false
	// First pass: classify the literal's own position and collect the
	// locals it is assigned to.
	inspectWithStack(body, func(n ast.Node, stack []ast.Node) {
		if n != lit {
			return
		}
		switch classifyUse(pass, lit, stack) {
		case useConsumed:
			litConsumed = true
		case useAliased:
			for _, obj := range aliasTargets(pass.Package, lit, stack) {
				tracked[obj] = true
			}
		}
	})
	if litConsumed {
		return true
	}
	if len(tracked) == 0 {
		return false
	}
	consumed := consumedObjects(pass, body, tracked)
	armed := false
	for obj := range tracked {
		if consumed[obj] {
			armed = true
		}
	}
	return armed
}

// consumedObjects scans a body for consuming uses of the tracked
// objects, propagating through local aliases, and returns the set of
// originally tracked objects that are (transitively) consumed.
func consumedObjects(pass *Pass, body *ast.BlockStmt, tracked map[types.Object]bool) map[types.Object]bool {
	// aliasOf maps a local to the tracked roots flowing into it.
	roots := map[types.Object]map[types.Object]bool{}
	for obj := range tracked {
		roots[obj] = map[types.Object]bool{obj: true}
	}
	consumed := map[types.Object]bool{}
	// Two passes: the first discovers aliases, the second classifies
	// every use with the full alias set known.
	for i := 0; i < 2; i++ {
		inspectWithStack(body, func(n ast.Node, stack []ast.Node) {
			id, ok := n.(*ast.Ident)
			if !ok {
				return
			}
			obj := pass.Info.Uses[id]
			if obj == nil || roots[obj] == nil {
				return
			}
			switch classifyUse(pass, id, stack) {
			case useConsumed:
				for root := range roots[obj] {
					consumed[root] = true
				}
			case useAliased:
				for _, target := range aliasTargets(pass.Package, id, stack) {
					if roots[target] == nil {
						roots[target] = map[types.Object]bool{}
					}
					for root := range roots[obj] {
						roots[target][root] = true
					}
				}
			}
		})
	}
	return consumed
}

// useKind classifies one appearance of a plan value.
type useKind int

const (
	useRead useKind = iota // field read, method receiver: not consuming
	useConsumed
	useAliased // assigned to a plain local; track the target
)

// classifyUse decides what one occurrence of a plan value does, by
// climbing its ancestor chain. Wrapping in &, a composite literal, or
// parens is transparent; landing in a call argument consults the
// callee's consumer fact; returns and stores consume; selector access
// (pl.Name, pl.Validate()) merely reads.
func classifyUse(pass *Pass, n ast.Node, stack []ast.Node) useKind {
	cur := ast.Node(n)
	stored := false
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			cur = parent
		case *ast.UnaryExpr:
			// &lit / &pl escapes; keep climbing to see where the
			// pointer lands, but a bare & that goes nowhere tracked
			// still counts as stored.
			stored = true
			cur = parent
		case *ast.KeyValueExpr, *ast.CompositeLit:
			// Stored into a struct or slice: consumed (e.g.
			// Config{Fault: &plan}).
			return useConsumed
		case *ast.CallExpr:
			if argConsumes(pass, parent, cur) {
				return useConsumed
			}
			return useRead
		case *ast.ReturnStmt:
			return useConsumed
		case *ast.AssignStmt:
			return classifyAssign(parent, cur)
		case *ast.ValueSpec:
			return useAliased
		case *ast.SelectorExpr:
			// pl.Name, pl.Validate(...): a read of the plan.
			return useRead
		default:
			if stored {
				return useConsumed
			}
			// Unclassified context (range, condition, ...): benefit
			// of the doubt, treat as consumed rather than flag noise.
			return useConsumed
		}
	}
	if stored {
		return useConsumed
	}
	return useRead
}

// classifyAssign decides an assignment use: rhs into plain locals is
// aliasing, rhs into anything else (field, index, deref) is a store,
// lhs appearances are overwrites (reads of the old value don't
// matter).
func classifyAssign(as *ast.AssignStmt, cur ast.Node) useKind {
	for _, l := range as.Lhs {
		if l == cur {
			return useRead
		}
	}
	for _, l := range as.Lhs {
		if _, ok := l.(*ast.Ident); !ok {
			return useConsumed
		}
	}
	return useAliased
}

// aliasTargets returns the lhs objects a value flows into through
// its enclosing assignment or declaration.
func aliasTargets(p *Package, n ast.Node, stack []ast.Node) []types.Object {
	var out []types.Object
	addIdent := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj != nil {
			out = append(out, obj)
		}
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr, *ast.UnaryExpr:
			continue
		case *ast.AssignStmt:
			for _, l := range parent.Lhs {
				addIdent(l)
			}
			return out
		case *ast.ValueSpec:
			for _, name := range parent.Names {
				addIdent(name)
			}
			return out
		default:
			return nil
		}
	}
	return nil
}

// argConsumes reports whether placing a value at this argument of the
// call consumes it: true for callees with no consumer fact (benefit
// of the doubt), the fact's bit for module functions that have one.
func argConsumes(pass *Pass, call *ast.CallExpr, arg ast.Node) bool {
	idx := -1
	for i, a := range call.Args {
		if a == arg {
			idx = i
		}
	}
	if idx < 0 {
		// The value is the call's function operand or receiver, not
		// an argument: a method call on the plan, i.e. a read.
		return false
	}
	obj := calleeObj(pass.Package, call)
	if obj == nil {
		return true
	}
	if f, ok := pass.Facts.Get(obj, planFactKind); ok {
		return idx < 64 && f.(PlanConsumerFact).Params&(1<<idx) != 0
	}
	return true
}

// inspectWithStack is ast.Inspect with the ancestor chain (outermost
// first, excluding n itself) passed to the callback.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}
