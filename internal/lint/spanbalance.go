package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// SpanBalanceCheck is the name of the spanbalance analyzer.
const SpanBalanceCheck = "spanbalance"

// SpanHelperFact marks a deliberate span-open/close helper: a
// function whose whole body is a single span operation on its
// Param-th parameter. Callers account the helper's Delta at the call
// site, which closes the blind spot the old syntactic check
// documented (a helper call with no Pop anywhere went unflagged).
type SpanHelperFact struct {
	// Param is the index of the *ioreq.Request / *telemetry.Recorder
	// parameter the helper operates on.
	Param int
	// Delta is +1 for an open helper, -1 for a close helper.
	Delta int
	// Close names the closing method of the pair ("Pop" or "Exit").
	Close string
}

// String implements Fact.
func (f SpanHelperFact) String() string {
	return fmt.Sprintf("span(param=%d, delta=%+d, close=%s)", f.Param, f.Delta, f.Close)
}

// spanFactKind keys helper facts in the store.
const spanFactKind = "spanbalance"

// SpanBalance returns the CFG-based analyzer enforcing that every
// span opened on an *ioreq.Request (Push) or *telemetry.Recorder
// (Enter, the concurrency gauge) is closed (Pop/Exit) on every
// control-flow path out of the function — early returns, panics, and
// loop back-edges included. Deferred closes count on every exit,
// which is the idiomatic shape (`defer r.Pop()`); helper facts make
// single-statement open/close helpers transparent to callers.
func SpanBalance() *Analyzer {
	return &Analyzer{
		Name: SpanBalanceCheck,
		Doc: "Reports spans (ioreq.Request.Push / telemetry.Recorder.Enter) " +
			"that some control-flow path leaves open or closes twice. The " +
			"span stack is shared by every caller above: one unbalanced " +
			"path corrupts the whole request's attribution. Close on every " +
			"path, usually with a defer right after the open.",
		AppliesTo: notSpanPrimitive,
		Facts:     spanBalanceFacts,
		Run:       spanBalanceRun,
	}
}

// notSpanPrimitive excludes the packages that implement the span
// primitives themselves — their internals legitimately manipulate
// the stack and gauge asymmetrically.
func notSpanPrimitive(pkgPath string) bool {
	base := path.Base(pkgPath)
	return base != "ioreq" && base != "telemetry"
}

// spanOp is one open/close operation found in a scanned subtree.
type spanOp struct {
	pos     token.Pos
	stmtEnd token.Pos // end of the enclosing top-level node, for fix insertion
	subject string    // canonical receiver text, e.g. "r" or "srv.rec"
	delta   int
	close   string // closing method name of the pair
}

// spanBalanceFacts exports SpanHelperFacts for single-statement
// open/close helpers.
func spanBalanceFacts(pass *Pass) {
	p := pass.Package
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || len(fd.Body.List) != 1 {
				continue
			}
			expr, ok := fd.Body.List[0].(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := expr.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			delta, closeName, ok := spanMethod(p, sel)
			if !ok {
				continue
			}
			recv, ok := sel.X.(*ast.Ident)
			if !ok {
				continue
			}
			obj := p.Info.Uses[recv]
			paramIdx := -1
			for i, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					if p.Info.Defs[name] == obj {
						paramIdx = i
					}
				}
			}
			if paramIdx < 0 {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				pass.Facts.Export(fn, spanFactKind, SpanHelperFact{Param: paramIdx, Delta: delta, Close: closeName})
			}
		}
	}
}

// spanMethod classifies a selector call as a span operation: ±1 and
// the pair's closing method name.
func spanMethod(p *Package, sel *ast.SelectorExpr) (delta int, closeName string, ok bool) {
	t := p.Info.TypeOf(sel.X)
	switch {
	case isRequestPtr(t):
		switch sel.Sel.Name {
		case "Push":
			return +1, "Pop", true
		case "Pop":
			return -1, "Pop", true
		}
	case isRecorderRef(t):
		switch sel.Sel.Name {
		case "Enter":
			return +1, "Exit", true
		case "Exit":
			return -1, "Exit", true
		}
	}
	return 0, "", false
}

func spanBalanceRun(pass *Pass) []Diagnostic {
	p := pass.Package
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, isHelper := helperFact(pass, p.Info.Defs[fd.Name]); isHelper {
				continue
			}
			out = append(out, spanBalanceFunc(pass, funcName(fd), pass.FuncCFG(fd))...)
			// Function literals are their own scopes with their own
			// span discipline — except deferred literals, whose ops are
			// cleanup accounted against the enclosing function's spans
			// (defer func() { rec.Exit(..); r.Pop() }()).
			deferredLits := map[*ast.FuncLit]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if ds, ok := n.(*ast.DeferStmt); ok {
					if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
						deferredLits[lit] = true
					}
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && !deferredLits[lit] {
					g := BuildCFG(funcName(fd)+".func", lit.Body)
					out = append(out, spanBalanceFunc(pass, g.Name, g)...)
				}
				return true
			})
		}
	}
	return out
}

// helperFact resolves a span-helper fact for a function object.
func helperFact(pass *Pass, obj types.Object) (SpanHelperFact, bool) {
	if obj == nil {
		return SpanHelperFact{}, false
	}
	f, ok := pass.Facts.Get(obj, spanFactKind)
	if !ok {
		return SpanHelperFact{}, false
	}
	hf, ok := f.(SpanHelperFact)
	return hf, ok
}

// collectOps scans one CFG node (not descending into function
// literals) for span operations, in source order.
func collectOps(pass *Pass, n ast.Node) []spanOp {
	p := pass.Package
	var ops []spanOp
	stmtEnd := n.End()
	ast.Inspect(n, func(c ast.Node) bool {
		if _, isLit := c.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if delta, closeName, ok := spanMethod(p, sel); ok {
				ops = append(ops, spanOp{pos: call.Pos(), stmtEnd: stmtEnd,
					subject: types.ExprString(sel.X), delta: delta, close: closeName})
				return true
			}
		}
		if hf, ok := helperFact(pass, calleeObj(p, call)); ok && hf.Param < len(call.Args) {
			ops = append(ops, spanOp{pos: call.Pos(), stmtEnd: stmtEnd,
				subject: types.ExprString(call.Args[hf.Param]), delta: hf.Delta, close: hf.Close})
		}
		return true
	})
	return ops
}

// calleeObj resolves the called function object of a call, if any.
func calleeObj(p *Package, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return p.Info.Uses[fun]
	case *ast.SelectorExpr:
		return p.Info.Uses[fun.Sel]
	}
	return nil
}

// spanBalanceFunc walks every control-flow path of one function,
// tracking per-subject span depth, and reports paths that leave a
// span open, close a span that is not open, or grow the depth around
// a loop. Defers are path-sensitive: a deferred close (directly, via
// a close helper, or inside a deferred literal) is accumulated when
// the path actually executes the defer statement, and applied at
// every exit that path reaches — an early return before the defer
// gets no credit for it.
func spanBalanceFunc(pass *Pass, name string, g *CFG) []Diagnostic {
	p := pass.Package
	// Per-block op lists (immediate vs deferred) and whole-function
	// bookkeeping.
	blockImm := make([][]spanOp, len(g.Blocks))
	blockDef := make([][]spanOp, len(g.Blocks))
	firstOpen := map[string]spanOp{}
	closeCount := map[string]int{}
	anyOps := false
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			var ops []spanOp
			deferredNode := false
			if ds, ok := n.(*ast.DeferStmt); ok {
				deferredNode = true
				ops = deferredOps(pass, ds.Call)
			} else {
				ops = collectOps(pass, n)
			}
			if deferredNode {
				blockDef[blk.Index] = append(blockDef[blk.Index], ops...)
			} else {
				blockImm[blk.Index] = append(blockImm[blk.Index], ops...)
			}
			for _, op := range ops {
				anyOps = true
				if op.delta > 0 {
					if _, ok := firstOpen[op.subject]; !ok {
						firstOpen[op.subject] = op
					}
				} else {
					closeCount[op.subject]++
				}
			}
		}
	}
	if !anyOps {
		return nil
	}

	var out []Diagnostic
	reported := map[string]bool{} // finding class + subject
	report := func(key string, d Diagnostic) {
		if !reported[key] {
			reported[key] = true
			out = append(out, d)
		}
	}

	type state struct {
		blk      *Block
		depth    map[string]int
		deferred map[string]int
	}
	key := func(depth, deferred map[string]int) string {
		parts := make([]string, 0, len(depth)+len(deferred))
		for s, d := range depth {
			if d != 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", s, d))
			}
		}
		for s, d := range deferred {
			if d != 0 {
				parts = append(parts, fmt.Sprintf("defer:%s=%d", s, d))
			}
		}
		sort.Strings(parts)
		return strings.Join(parts, ";")
	}
	copyMap := func(m map[string]int) map[string]int {
		out := make(map[string]int, len(m))
		for s, d := range m {
			out[s] = d
		}
		return out
	}
	seen := make([]map[string]bool, len(g.Blocks)+1)
	for i := range seen {
		seen[i] = map[string]bool{}
	}
	stack := []state{{blk: g.Entry, depth: map[string]int{}, deferred: map[string]int{}}}
	steps := 0
	for len(stack) > 0 && steps < 4096 {
		steps++
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		depth := copyMap(st.depth)
		deferred := copyMap(st.deferred)
		overgrown := false
		for _, op := range blockImm[st.blk.Index] {
			depth[op.subject] += op.delta
			if depth[op.subject] < 0 {
				report("neg:"+op.subject, diag(p, op.pos, SpanBalanceCheck,
					"%s closes a span on %s that is not open on every path reaching this point; a double close corrupts the span stack for every caller above",
					name, op.subject))
				depth[op.subject] = 0
			}
			if depth[op.subject] > 3 {
				op := firstOpen[op.subject]
				report("loop:"+op.subject, diag(p, op.pos, SpanBalanceCheck,
					"%s opens a span on %s inside a loop without closing it in the same iteration; the depth grows with the trip count",
					name, op.subject))
				overgrown = true
			}
		}
		for _, op := range blockDef[st.blk.Index] {
			deferred[op.subject] += op.delta
		}
		if overgrown {
			continue
		}
		for _, succ := range st.blk.Succs {
			if succ == g.Exit {
				// Check the union of open and deferred subjects, so a
				// deferred close with no matching open is caught too.
				total := copyMap(depth)
				for subject, d := range deferred {
					total[subject] += d
				}
				for subject, d := range total {
					if d > 0 {
						op := firstOpen[subject]
						exitLine := ""
						if t := st.blk.Term(); t != nil {
							exitLine = fmt.Sprintf(" (e.g. the path through line %d)", p.Position(t.Pos()).Line)
						}
						d := diag(p, op.pos, SpanBalanceCheck,
							"%s opens a span on %s that is not closed on every path%s; close it on all paths or defer the close right after the open",
							name, subject, exitLine)
						if closeCount[subject] == 0 {
							d = withFix(d, fmt.Sprintf("insert `defer %s.%s()` after the open", subject, op.close),
								TextEdit{Pos: op.stmtEnd, End: op.stmtEnd,
									NewText: fmt.Sprintf("\ndefer %s.%s()", subject, op.close)})
						}
						report("open:"+subject, d)
					} else if d < 0 {
						report("negexit:"+subject, diag(p, firstClosePos(blockImm, blockDef, g, subject), SpanBalanceCheck,
							"%s closes more spans on %s than it opens on at least one path",
							name, subject))
					}
				}
				continue
			}
			k := key(depth, deferred)
			if !seen[succ.Index][k] {
				if len(seen[succ.Index]) < 8 {
					seen[succ.Index][k] = true
					stack = append(stack, state{blk: succ, depth: depth, deferred: deferred})
				}
			}
		}
	}
	return out
}

// firstClosePos finds the first closing op position for a subject,
// for anchoring over-close findings.
func firstClosePos(blockImm, blockDef [][]spanOp, g *CFG, subject string) token.Pos {
	for _, ops := range [][][]spanOp{blockImm, blockDef} {
		for _, blk := range g.Blocks {
			for _, op := range ops[blk.Index] {
				if op.subject == subject && op.delta < 0 {
					return op.pos
				}
			}
		}
	}
	if len(g.Entry.Nodes) > 0 {
		return g.Entry.Nodes[0].Pos()
	}
	return token.NoPos
}

// deferredOps extracts the span operations a deferred call performs:
// a direct close (defer r.Pop()), a helper call, or the net ops of a
// deferred function literal.
func deferredOps(pass *Pass, call *ast.CallExpr) []spanOp {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		var ops []spanOp
		for _, stmt := range lit.Body.List {
			ops = append(ops, collectOps(pass, stmt)...)
		}
		return ops
	}
	return collectOps(pass, call)
}
