package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path"
	"strings"
)

// SeedFlowCheck is the name of the seedflow analyzer.
const SeedFlowCheck = "seedflow"

// seedFactKind keys taint facts in the store.
const seedFactKind = "seedflow"

// taint is the seedflow lattice value: whether a value derives from
// the wall clock, and which of the enclosing function's parameters
// it derives from (a bitmask, so caller-side argument taint can be
// substituted through the callee's fact).
type taint struct {
	wall   bool
	params uint64
}

func (t taint) union(o taint) taint {
	return taint{wall: t.wall || o.wall, params: t.params | o.params}
}

func (t taint) empty() bool { return !t.wall && t.params == 0 }

func (t taint) String() string {
	var parts []string
	if t.wall {
		parts = append(parts, "wall")
	}
	for i := 0; i < 64; i++ {
		if t.params&(1<<i) != 0 {
			parts = append(parts, fmt.Sprintf("p%d", i))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "|")
}

// SeedTaintFact summarizes a function for its callers: which results
// carry wall-clock taint (intrinsically, or conditionally via a
// parameter — laundering), and which parameters flow into a
// trace/telemetry sink inside the function.
type SeedTaintFact struct {
	// Results holds one taint per result value.
	Results []taint
	// SinkParams is the bitmask of parameters that reach a
	// report-plane sink inside the function (possibly via callees).
	SinkParams uint64
}

// String implements Fact.
func (f SeedTaintFact) String() string {
	parts := make([]string, len(f.Results))
	for i, t := range f.Results {
		parts[i] = t.String()
	}
	return fmt.Sprintf("taint(results=[%s], sinks=%s)",
		strings.Join(parts, " "), taint{params: f.SinkParams})
}

// SeedFlow returns the taint-analysis analyzer enforcing that values
// reaching the report plane (the trace and telemetry packages) never
// derive from the wall clock: the methodology's tables are
// byte-identical across runs only if every recorded quantity is a
// function of the simulated clock and injected seeds. Taint is
// tracked through assignments, returns, and cross-package calls via
// facts, so a wall-clock value laundered through an intermediate
// function in another package is still caught at the sink.
func SeedFlow() *Analyzer {
	return &Analyzer{
		Name: SeedFlowCheck,
		Doc: "Reports wall-clock-derived values (time.Now/Since/Until, however " +
			"many assignments, returns, and cross-package calls removed) that " +
			"reach a trace/telemetry sink. Report-plane inputs must derive " +
			"from the engine clock or an injected seed, never the host clock.",
		Facts: seedFlowFacts,
		Run:   seedFlowRun,
	}
}

// sinkPackage reports whether a package (by import path) is part of
// the report plane. Matching by base name lets fixture trees with
// their own trace/telemetry packages conform.
func sinkPackage(pkgPath string) bool {
	base := path.Base(pkgPath)
	return base == "trace" || base == "telemetry"
}

// seedFlowFacts computes per-function taint facts for the package,
// iterating to a fixpoint so intra-package call chains converge.
// Packages are visited in dependency order, so callee facts from
// other packages are already present.
func seedFlowFacts(pass *Pass) {
	for iter := 0; iter < 4; iter++ {
		changed := false
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fact := analyzeSeedFlow(pass, fd, true, nil)
				if prev, ok := pass.Facts.Get(fn, seedFactKind); !ok || prev.String() != fact.String() {
					pass.Facts.Export(fn, seedFactKind, fact)
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

func seedFlowRun(pass *Pass) []Diagnostic {
	var out []Diagnostic
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzeSeedFlow(pass, fd, false, &out)
		}
	}
	return out
}

// seedEnv is the per-function taint environment.
type seedEnv struct {
	pass *Pass
	vars map[types.Object]taint
}

// analyzeSeedFlow runs the dataflow over one function body. In fact
// mode (symbolic) parameters carry their own bit, so the resulting
// fact expresses conditional taint; in diagnose mode parameters are
// concrete (untainted) and wall-tainted sink arguments are reported
// into diags.
func analyzeSeedFlow(pass *Pass, fd *ast.FuncDecl, symbolic bool, diags *[]Diagnostic) SeedTaintFact {
	env := &seedEnv{pass: pass, vars: map[types.Object]taint{}}
	sig, _ := pass.Info.Defs[fd.Name].Type().(*types.Signature)
	if symbolic && sig != nil {
		for i := 0; i < sig.Params().Len() && i < 64; i++ {
			env.vars[sig.Params().At(i)] = taint{params: 1 << i}
		}
	}
	// Two propagation passes so taint crosses use-before-def cycles
	// (loop-carried variables), then one observation pass.
	for i := 0; i < 2; i++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			env.propagate(n)
			return true
		})
	}
	fact := SeedTaintFact{}
	if sig != nil {
		fact.Results = make([]taint, sig.Results().Len())
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if len(n.Results) == 0 && sig != nil {
				// Bare return with named results.
				for i := 0; i < sig.Results().Len(); i++ {
					fact.Results[i] = fact.Results[i].union(env.vars[sig.Results().At(i)])
				}
				return true
			}
			for i, e := range n.Results {
				t := env.exprTaint(e)
				if len(n.Results) == 1 && len(fact.Results) > 1 {
					// return f() forwarding a tuple.
					for j := range fact.Results {
						fact.Results[j] = fact.Results[j].union(t)
					}
					return true
				}
				if i < len(fact.Results) {
					fact.Results[i] = fact.Results[i].union(t)
				}
			}
		case *ast.CallExpr:
			for _, idx := range sinkArgs(env, n) {
				t := env.exprTaint(n.Args[idx])
				fact.SinkParams |= t.params
				if !symbolic && t.wall && diags != nil {
					*diags = append(*diags, diag(pass.Package, n.Args[idx].Pos(), SeedFlowCheck,
						"wall-clock-tainted value reaches report-plane sink %s; characterization tables are byte-identical only if every recorded quantity derives from the engine clock or an injected seed",
						types.ExprString(n.Fun)))
				}
			}
		}
		return true
	})
	return fact
}

// sinkArgs returns the argument indices of a call that land in the
// report plane: every argument when the callee is defined in a
// trace/telemetry package, plus the callee's SinkParams fact.
func sinkArgs(env *seedEnv, call *ast.CallExpr) []int {
	obj := calleeObj(env.pass.Package, call)
	if obj == nil {
		return nil
	}
	var out []int
	if obj.Pkg() != nil && sinkPackage(obj.Pkg().Path()) && obj.Pkg().Path() != env.pass.Path {
		for i := range call.Args {
			out = append(out, i)
		}
		return out
	}
	if f, ok := env.pass.Facts.Get(obj, seedFactKind); ok {
		fact := f.(SeedTaintFact)
		for i := range call.Args {
			if i < 64 && fact.SinkParams&(1<<i) != 0 {
				out = append(out, i)
			}
		}
	}
	return out
}

// propagate folds one statement into the environment.
func (env *seedEnv) propagate(n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		env.assign(n.Lhs, n.Rhs)
	case *ast.ValueSpec:
		if len(n.Values) == 0 {
			return
		}
		lhs := make([]ast.Expr, len(n.Names))
		for i, id := range n.Names {
			lhs[i] = id
		}
		env.assign(lhs, n.Values)
	case *ast.RangeStmt:
		t := env.exprTaint(n.X)
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				env.taintObj(id, t)
			}
		}
	}
}

// assign applies lhs = rhs pairs, including tuple assignment from a
// single call.
func (env *seedEnv) assign(lhs, rhs []ast.Expr) {
	if len(lhs) > 1 && len(rhs) == 1 {
		// Tuple: per-result taints when the callee has a fact,
		// otherwise the call's blended taint for every element.
		taints := env.callResultTaints(rhs[0], len(lhs))
		for i, l := range lhs {
			if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
				env.taintObj(id, taints[i])
			}
		}
		return
	}
	for i := range lhs {
		if i >= len(rhs) {
			break
		}
		if id, ok := lhs[i].(*ast.Ident); ok && id.Name != "_" {
			env.taintObj(id, env.exprTaint(rhs[i]))
		}
	}
}

// taintObj unions a taint into an identifier's object.
func (env *seedEnv) taintObj(id *ast.Ident, t taint) {
	obj := env.pass.Info.Defs[id]
	if obj == nil {
		obj = env.pass.Info.Uses[id]
	}
	if obj == nil || t.empty() {
		return
	}
	env.vars[obj] = env.vars[obj].union(t)
}

// callResultTaints resolves per-result taints of a call expression.
func (env *seedEnv) callResultTaints(e ast.Expr, n int) []taint {
	out := make([]taint, n)
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		t := env.exprTaint(e)
		for i := range out {
			out[i] = t
		}
		return out
	}
	if obj := calleeObj(env.pass.Package, call); obj != nil {
		if f, ok := env.pass.Facts.Get(obj, seedFactKind); ok {
			fact := f.(SeedTaintFact)
			for i := range out {
				if i < len(fact.Results) {
					out[i] = env.resolve(fact.Results[i], call)
				}
			}
			return out
		}
	}
	t := env.exprTaint(call)
	for i := range out {
		out[i] = t
	}
	return out
}

// resolve substitutes a callee fact's parameter bits with the taints
// of the actual arguments at this call site.
func (env *seedEnv) resolve(t taint, call *ast.CallExpr) taint {
	out := taint{wall: t.wall}
	for i, arg := range call.Args {
		if i < 64 && t.params&(1<<i) != 0 {
			out = out.union(env.exprTaint(arg))
		}
	}
	return out
}

// exprTaint evaluates the taint of an expression under the current
// environment.
func (env *seedEnv) exprTaint(e ast.Expr) taint {
	p := env.pass.Package
	switch e := e.(type) {
	case *ast.Ident:
		obj := p.Info.Uses[e]
		if obj == nil {
			obj = p.Info.Defs[e]
		}
		return env.vars[obj]
	case *ast.ParenExpr:
		return env.exprTaint(e.X)
	case *ast.UnaryExpr:
		return env.exprTaint(e.X)
	case *ast.StarExpr:
		return env.exprTaint(e.X)
	case *ast.BinaryExpr:
		return env.exprTaint(e.X).union(env.exprTaint(e.Y))
	case *ast.IndexExpr:
		return env.exprTaint(e.X).union(env.exprTaint(e.Index))
	case *ast.SliceExpr:
		return env.exprTaint(e.X)
	case *ast.TypeAssertExpr:
		return env.exprTaint(e.X)
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := p.Info.Uses[id].(*types.PkgName); isPkg {
				return taint{}
			}
		}
		return env.exprTaint(e.X)
	case *ast.CompositeLit:
		t := taint{}
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t = t.union(env.exprTaint(kv.Value))
				continue
			}
			t = t.union(env.exprTaint(el))
		}
		return t
	case *ast.CallExpr:
		return env.callTaint(e)
	}
	return taint{}
}

// callTaint evaluates a call (or conversion) expression.
func (env *seedEnv) callTaint(call *ast.CallExpr) taint {
	p := env.pass.Package
	// Conversions carry their operand's taint.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return env.exprTaint(call.Args[0])
		}
		return taint{}
	}
	// The wall-clock sources.
	if pkgPath, name, ok := packageLevelCallee(p, call); ok && pkgPath == "time" {
		switch name {
		case "Now", "Since", "Until":
			return taint{wall: true}
		}
	}
	obj := calleeObj(p, call)
	// Builtins: len/cap of a tainted value is a structural property,
	// not a tainted quantity; append and everything else propagates.
	if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
		switch obj.Name() {
		case "len", "cap", "make", "new":
			return taint{}
		}
	}
	if obj != nil {
		if f, ok := env.pass.Facts.Get(obj, seedFactKind); ok {
			fact := f.(SeedTaintFact)
			out := taint{}
			for _, rt := range fact.Results {
				out = out.union(env.resolve(rt, call))
			}
			return out
		}
	}
	// Unknown callee (stdlib, interface method): conservatively blend
	// the receiver and arguments — laundering through fmt/strconv
	// must not wash taint away.
	out := taint{}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, isIdent := sel.X.(*ast.Ident); !isIdent || !isPkgName(p, id) {
			out = out.union(env.exprTaint(sel.X))
		}
	}
	for _, arg := range call.Args {
		out = out.union(env.exprTaint(arg))
	}
	return out
}

// isPkgName reports whether an identifier names an imported package.
func isPkgName(p *Package, id *ast.Ident) bool {
	_, ok := p.Info.Uses[id].(*types.PkgName)
	return ok
}
