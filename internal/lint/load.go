package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, the unit every
// analyzer operates on.
type Package struct {
	// Path is the package's import path (module path + directory).
	Path string
	// ModPath is the module path of the tree the package was loaded
	// from; analyzers use it to tell module-internal callees from
	// dependencies.
	ModPath string
	// Fset maps token positions back to file/line/column.
	Fset *token.FileSet
	// Files holds the parsed syntax of every non-test Go file, in
	// file-name order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression and object tables.
	Info *types.Info
}

// Position resolves a token position against the package's file set.
func (p *Package) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// Loader parses and type-checks packages of one module tree using
// only the standard library (go/parser + go/types). Module-local
// imports resolve against the tree on disk; standard-library imports
// resolve through the compiler's export data, falling back to
// type-checking the GOROOT source when export data is unavailable.
type Loader struct {
	modPath string
	modDir  string
	fset    *token.FileSet

	std       types.Importer // gc export data (fast path)
	stdSource types.Importer // GOROOT source (fallback), created lazily

	pkgs    map[string]*Package
	failed  map[string]error
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module directory modDir,
// reading the module path from its go.mod.
func NewLoader(modDir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: read go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", modDir)
	}
	return NewTreeLoader(modPath, modDir), nil
}

// NewTreeLoader returns a loader for a directory tree without a
// go.mod, rooting its import-path space at modPath. Analyzer tests
// use it to load fixture trees under testdata.
func NewTreeLoader(modPath, modDir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		modPath: modPath,
		modDir:  modDir,
		fset:    fset,
		std:     importer.Default(),
		pkgs:    map[string]*Package{},
		failed:  map[string]error{},
		loading: map[string]bool{},
	}
}

// ModPath returns the module path the loader roots import paths at.
func (l *Loader) ModPath() string { return l.modPath }

// Import implements types.Importer: module-local paths load from the
// tree, everything else resolves as a standard-library package.
func (l *Loader) Import(importPath string) (*types.Package, error) {
	if importPath == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := l.relModulePath(importPath); ok {
		p, err := l.load(filepath.Join(l.modDir, filepath.FromSlash(rel)), importPath)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	pkg, err := l.std.Import(importPath)
	if err == nil {
		return pkg, nil
	}
	if l.stdSource == nil {
		l.stdSource = importer.ForCompiler(l.fset, "source", nil)
	}
	return l.stdSource.Import(importPath)
}

// relModulePath reports whether importPath is inside the module and,
// if so, its directory relative to the module root.
func (l *Loader) relModulePath(importPath string) (string, bool) {
	if importPath == l.modPath {
		return ".", true
	}
	if rel, ok := strings.CutPrefix(importPath, l.modPath+"/"); ok {
		return rel, true
	}
	return "", false
}

// Load parses and type-checks the package in one directory (given
// relative to the module root, e.g. "internal/core").
func (l *Loader) Load(relDir string) (*Package, error) {
	importPath := l.modPath
	if relDir != "." && relDir != "" {
		importPath = path.Join(l.modPath, filepath.ToSlash(relDir))
	}
	return l.load(filepath.Join(l.modDir, filepath.FromSlash(relDir)), importPath)
}

// LoadAll walks the module tree and loads every package in it,
// skipping testdata trees and hidden or underscore-prefixed
// directories. Loading is lenient: a package that fails to parse or
// type-check is recorded as an error and skipped, so one broken
// directory does not hide findings in the rest of the tree (the CLI
// turns a non-empty error list into exit 2). Packages return sorted
// by import path; errors in walk order.
func (l *Loader) LoadAll() ([]*Package, []error) {
	var out []*Package
	var errs []error
	walkErr := filepath.WalkDir(l.modDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.modDir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if !hasGoFiles(p) {
			return nil
		}
		rel, err := filepath.Rel(l.modDir, p)
		if err != nil {
			return err
		}
		pkg, err := l.Load(rel)
		if err != nil {
			errs = append(errs, err)
			return nil
		}
		out = append(out, pkg)
		return nil
	})
	if walkErr != nil {
		errs = append(errs, walkErr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, errs
}

// hasGoFiles reports whether dir directly contains at least one
// non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isLintableFile(e.Name()) {
			return true
		}
	}
	return false
}

// isLintableFile reports whether name is a Go file the loader should
// parse: not a test file, not hidden, not underscore-prefixed.
func isLintableFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// load parses and type-checks the package in dir under importPath,
// memoizing both successes and failures by import path (a broken
// package imported by many others reports one error, not one per
// importer) and detecting import cycles.
func (l *Loader) load(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if err, ok := l.failed[importPath]; ok {
		return nil, err
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)
	fail := func(err error) (*Package, error) {
		l.failed[importPath] = err
		return nil, err
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return fail(fmt.Errorf("lint: %w", err))
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isLintableFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return fail(fmt.Errorf("lint: %w", err))
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return fail(fmt.Errorf("lint: no Go files in %s", dir))
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return fail(fmt.Errorf("lint: type-check %s: %w", importPath, err))
	}
	p := &Package{
		Path:    importPath,
		ModPath: l.modPath,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	l.pkgs[importPath] = p
	return p, nil
}
