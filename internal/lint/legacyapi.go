package lint

import (
	"go/ast"
	"go/types"
)

// LegacyAPICheck is the name of the legacyapi analyzer.
const LegacyAPICheck = "legacyapi"

// legacyCoreNames are the shapes of the retired pre-Session entry
// points: the Methodology facade and the package-level
// Characterize/Evaluate/EvaluateScenario functions, all superseded by
// core.Session (NewSession + Characterization/Evaluate/Run).
var legacyCoreNames = map[string]bool{
	"Methodology":      true,
	"Characterize":     true,
	"Evaluate":         true,
	"EvaluateScenario": true,
}

// LegacyAPI returns the analyzer that keeps the retired pre-Session
// core API from coming back: it flags any exported top-level
// declaration of the removed names inside an internal core package,
// and any qualified reference (core.Characterize, core.Methodology,
// ...) to them from the rest of the module. Methods named Evaluate on
// other types — Session.Evaluate in particular — are untouched: only
// package-level shapes of the core package are banned.
func LegacyAPI() *Analyzer {
	return &Analyzer{
		Name: LegacyAPICheck,
		Doc: "Reports reintroductions of the removed pre-Session core API: " +
			"exported top-level Methodology/Characterize/Evaluate/EvaluateScenario " +
			"declarations in internal core, and qualified core.<name> references " +
			"anywhere in the module. Use core.NewSession and the Session methods.",
		Run: legacyAPIRun,
	}
}

// isInternalCorePkg matches the methodology package itself (package
// core under an internal/ tree), by name and path so fixture trees
// conform.
func isInternalCorePkg(name, path string) bool {
	return name == "core" && isInternal(path)
}

func legacyAPIRun(pass *Pass) []Diagnostic {
	var out []Diagnostic
	if isInternalCorePkg(pass.Types.Name(), pass.Path) {
		out = append(out, legacyDecls(pass)...)
	}
	out = append(out, legacyRefs(pass)...)
	return out
}

// legacyDecls flags exported top-level declarations of the banned
// names inside the core package: a reintroduced wrapper is a finding
// at its definition, before it has any callers.
func legacyDecls(pass *Pass) []Diagnostic {
	var out []Diagnostic
	flag := func(id *ast.Ident, kind string) {
		if legacyCoreNames[id.Name] && id.IsExported() {
			out = append(out, diag(pass.Package, id.Pos(), LegacyAPICheck,
				"%s %s reintroduces the removed pre-Session core API; make it a Session method or unexport it", kind, id.Name))
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil { // methods may share the names (Session.Evaluate)
					flag(d.Name, "function")
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						flag(sp.Name, "type")
					case *ast.ValueSpec:
						for _, name := range sp.Names {
							flag(name, "declaration")
						}
					}
				}
			}
		}
	}
	return out
}

// legacyRefs flags qualified references to the banned names through
// an imported internal core package: core.Evaluate(...) is a finding
// wherever it appears, core.NewSession(...).Evaluate(...) is not (the
// selector's operand is a value, not the package).
func legacyRefs(pass *Pass) []Diagnostic {
	var out []Diagnostic
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !legacyCoreNames[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			imported := pn.Imported()
			if !isInternalCorePkg(imported.Name(), imported.Path()) {
				return true
			}
			out = append(out, diag(pass.Package, sel.Pos(), LegacyAPICheck,
				"core.%s was removed; use core.NewSession and the Session API", sel.Sel.Name))
			return true
		})
	}
	return out
}
