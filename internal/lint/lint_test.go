package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "a/b.go", Line: 12, Column: 3},
		Check:   "determinism",
		Message: "call to time.Now",
	}
	want := "a/b.go:12:3: determinism: call to time.Now"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// suppressLines locates the fixture's marker lines by source text, so
// the test does not hard-code line numbers.
func suppressLines(t *testing.T) (file string, markers map[string]int) {
	t.Helper()
	file = filepath.Join("testdata", "src", "suppress", "suppress.go")
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	markers = map[string]int{}
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range []string{
			"unsuppressed-wrong-check",
			"unsuppressed-malformed",
			"unsuppressed-far-away",
		} {
			if strings.Contains(line, m) {
				markers[m] = i + 1
			}
		}
		if strings.TrimSpace(line) == "//lint:ignore determinism" {
			markers["malformed-directive"] = i + 1
		}
		if strings.Contains(line, "too far from the finding") {
			markers["far-away-directive"] = i + 1
		}
		if strings.Contains(line, "the wall clock is the finding under test") {
			markers["multi-finding"] = i + 1
		}
	}
	if len(markers) != 6 {
		t.Fatalf("fixture markers incomplete: %v", markers)
	}
	return file, markers
}

// TestSuppression drives the //lint:ignore mechanism end to end:
// well-formed directives (above-line and same-line) silence exactly
// the named check's findings on exactly their target line, a
// directive for another check does not, a reason-less directive is
// reported under the "directive" check, and a well-formed directive
// that suppresses nothing is reported under "directive-unused". The
// multi-finding line pins the per-check scoping: one line carrying a
// determinism and a unitflow finding keeps the determinism one when
// the directive names unitflow.
func TestSuppression(t *testing.T) {
	file, markers := suppressLines(t)
	p, err := fixtures().Load("suppress")
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Analyzers: []*Analyzer{Determinism(), UnitFlow()}}
	diags := runner.Run([]*Package{p})

	got := map[string][]int{}
	for _, d := range diags {
		if d.Pos.Filename != file {
			t.Errorf("diagnostic outside fixture: %s", d)
		}
		got[d.Check] = append(got[d.Check], d.Pos.Line)
	}

	wantDet := []int{
		markers["unsuppressed-wrong-check"],
		markers["unsuppressed-malformed"],
		markers["unsuppressed-far-away"],
		markers["multi-finding"],
	}
	if !equalInts(got[DeterminismCheck], wantDet) {
		t.Errorf("determinism findings on lines %v, want %v", got[DeterminismCheck], wantDet)
	}
	if len(got[UnitFlowCheck]) != 0 {
		t.Errorf("unitflow findings on lines %v; the multi-finding directive should suppress them", got[UnitFlowCheck])
	}
	if !equalInts(got[DirectiveCheck], []int{markers["malformed-directive"]}) {
		t.Errorf("directive findings on lines %v, want [%d]", got[DirectiveCheck], markers["malformed-directive"])
	}
	if !equalInts(got[DirectiveUnusedCheck], []int{markers["far-away-directive"]}) {
		t.Errorf("directive-unused findings on lines %v, want [%d]", got[DirectiveUnusedCheck], markers["far-away-directive"])
	}
	if extra := len(diags) - len(wantDet) - 2; extra != 0 {
		t.Errorf("%d unexpected extra diagnostics:\n%s", extra, formatDiags(diags))
	}
}

// TestUnusedDirectiveInactiveCheck pins the gating: a directive for a
// check the runner did not execute must not be reported as unused —
// the wrong-check directive names errcheck, and errcheck is not in
// the analyzer set above.
func TestUnusedDirectiveInactiveCheck(t *testing.T) {
	_, markers := suppressLines(t)
	p, err := fixtures().Load("suppress")
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Analyzers: []*Analyzer{Determinism(), UnitFlow()}}
	for _, d := range runner.Run([]*Package{p}) {
		if d.Check == DirectiveUnusedCheck && d.Pos.Line != markers["far-away-directive"] {
			t.Errorf("unexpected directive-unused finding: %s", d)
		}
	}
}

// TestSuppressionMessage pins the malformed-directive message so the
// fix-it hint stays intact.
func TestSuppressionMessage(t *testing.T) {
	p, err := fixtures().Load("suppress")
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Analyzers: []*Analyzer{Determinism()}}
	for _, d := range runner.Run([]*Package{p}) {
		if d.Check == DirectiveCheck {
			if !strings.Contains(d.Message, "//lint:ignore <check> <reason>") {
				t.Errorf("malformed-directive message %q lacks the expected form hint", d.Message)
			}
			return
		}
	}
	t.Error("no directive finding produced")
}

func TestLoaderRejectsMissingDir(t *testing.T) {
	if _, err := fixtures().Load("no-such-fixture"); err == nil {
		t.Error("loading a missing directory should fail")
	}
}

// TestRunnerOrderDeterministic shuffles nothing but runs twice: the
// diagnostics of the suite over a fixture must be byte-identical
// (the sorter is part of the contract this tool preaches).
func TestRunnerOrderDeterministic(t *testing.T) {
	p, err := fixtures().Load("determinism")
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Analyzers: []*Analyzer{Determinism(), ErrCheck(), UnitFlow()}}
	a := formatDiags(runner.Run([]*Package{p}))
	b := formatDiags(runner.Run([]*Package{p}))
	if a != b {
		t.Errorf("two runs differ:\n%s\nvs\n%s", a, b)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
