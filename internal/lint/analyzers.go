package lint

import "strings"

// DefaultAnalyzers returns the full suite with its production scope
// filters applied: determinism is enforced inside internal/ (the
// simulated stack and its report plane), everything else runs
// module-wide. cmd/iolint runs exactly this set.
func DefaultAnalyzers() []*Analyzer {
	det := Determinism()
	det.AppliesTo = isInternal
	return []*Analyzer{
		det,
		LockDiscipline(),
		ErrCheck(),
		UnitFlow(),
		ProbeConform(),
		ReqPath(),
		SpanBalance(),
		SeedFlow(),
		FaultPlan(),
		LegacyAPI(),
	}
}

// isInternal reports whether the import path lies under an internal/
// tree.
func isInternal(pkgPath string) bool {
	return strings.Contains(pkgPath+"/", "/internal/") || strings.HasPrefix(pkgPath, "internal/")
}
