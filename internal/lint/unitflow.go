package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// UnitFlowCheck is the name of the unitflow analyzer.
const UnitFlowCheck = "unitflow"

// unitSuffixes are the recognized size-unit name suffixes, longest
// first so "KiB" wins over "B"-style prefixes of longer names.
var unitSuffixes = []string{"GiB", "MiB", "KiB", "GB", "MB", "KB", "Bytes"}

// unitSize gives each unit's magnitude in bytes, used to decide when
// a mismatch has an exact machine-applicable conversion.
var unitSize = map[string]int64{
	"Bytes": 1,
	"KB":    1000, "MB": 1000 * 1000, "GB": 1000 * 1000 * 1000,
	"KiB": 1024, "MiB": 1024 * 1024, "GiB": 1024 * 1024 * 1024,
}

// UnitFlow returns the flow-sensitive unit analyzer, subsuming the
// old purely syntactic unitsafety check. Identifier suffixes (Bytes,
// KiB, MiB, GiB, KB, MB, GB) seed a per-function unit environment;
// units then propagate through assignments, so a suffix-less local
// initialized from a KiB value still carries KiB when it later meets
// a Bytes operand. The characterization tables key on block sizes in
// bytes; a KiB value slipping into a Bytes slot shifts every lookup
// by three orders of magnitude and still type-checks. Mismatches
// whose conversion factor is an exact integer (larger unit flowing
// into a smaller slot) carry a suggested fix multiplying by the
// factor; multiplying by an untyped constant clears the unit, which
// is exactly what makes the fixed code re-lint clean.
func UnitFlow() *Analyzer {
	return &Analyzer{
		Name: UnitFlowCheck,
		Doc: "Reports arithmetic, assignments, and struct-field writes whose " +
			"operands carry conflicting size units, tracking units through " +
			"local assignments. Convert explicitly (the fix multiplies by the " +
			"exact factor when one exists) or through a helper whose name " +
			"states the result unit.",
		Run: unitFlowRun,
	}
}

func unitFlowRun(pass *Pass) []Diagnostic {
	p := pass.Package
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					out = append(out, unitFlowFunc(p, d.Body)...)
				}
			case *ast.GenDecl:
				// Package-level var/const blocks: no flow, suffixes only.
				uf := &unitFlow{p: p, env: map[types.Object]string{}}
				ast.Inspect(d, func(n ast.Node) bool {
					uf.check(n)
					return true
				})
				out = append(out, uf.diags...)
			}
		}
	}
	return out
}

// unitFlowFunc analyzes one function body with a fresh environment.
func unitFlowFunc(p *Package, body *ast.BlockStmt) []Diagnostic {
	uf := &unitFlow{p: p, env: map[types.Object]string{}}
	ast.Inspect(body, func(n ast.Node) bool {
		uf.check(n)
		return true
	})
	return uf.diags
}

// unitFlow carries the per-function inference state.
type unitFlow struct {
	p     *Package
	env   map[types.Object]string // inferred units of suffix-less locals
	diags []Diagnostic
}

// check inspects one node, reporting mismatches and propagating
// units into the environment. ast.Inspect visits in source order, so
// straight-line flow is resolved by the time a use is seen.
func (uf *unitFlow) check(n ast.Node) {
	switch n := n.(type) {
	case *ast.BinaryExpr:
		if !unitSensitiveOp(n.Op) {
			return
		}
		a, b := uf.unitOf(n.X), uf.unitOf(n.Y)
		if a != "" && b != "" && a != b {
			uf.report(n.OpPos, a, b, nil, "")
		}
	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			return
		}
		for i := range n.Lhs {
			uf.flow(n.Lhs[i], n.Rhs[i], n.TokPos)
		}
	case *ast.ValueSpec:
		if len(n.Names) != len(n.Values) {
			return
		}
		for i := range n.Names {
			uf.flow(n.Names[i], n.Values[i], n.Names[i].Pos())
		}
	case *ast.CompositeLit:
		for _, el := range n.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			want := suffixUnit(key.Name)
			got := uf.unitOf(kv.Value)
			if want != "" && got != "" && want != got {
				uf.report(kv.Value.Pos(), want, got, kv.Value, want)
			}
		}
	}
}

// flow handles one lhs ← rhs pair: mismatch check against the lhs
// unit, then environment propagation for suffix-less lhs locals.
func (uf *unitFlow) flow(lhs, rhs ast.Expr, pos token.Pos) {
	want := uf.unitOf(lhs)
	got := uf.unitOf(rhs)
	if want != "" && got != "" && want != got {
		uf.report(pos, want, got, rhs, want)
	}
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" || suffixUnit(id.Name) != "" {
		return
	}
	obj := uf.p.Info.Defs[id]
	if obj == nil {
		obj = uf.p.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	if got != "" {
		uf.env[obj] = got
	} else {
		delete(uf.env, obj)
	}
}

// report emits one mismatch. When fixExpr is non-nil and converting
// its unit into fixUnit is an exact integer multiplication, a
// suggested fix rewrites the expression; the multiplied result is an
// explicit conversion (untyped-constant arithmetic clears the unit),
// so fixed code re-lints clean.
func (uf *unitFlow) report(pos token.Pos, want, got string, fixExpr ast.Expr, fixUnit string) {
	d := diag(uf.p, pos, UnitFlowCheck,
		"mixes %s and %s operands without an explicit unit conversion", want, got)
	if fixExpr != nil && fixUnit != "" {
		from, to := unitSize[uf.unitOf(fixExpr)], unitSize[fixUnit]
		if from > to && to > 0 && from%to == 0 {
			text := exprSource(fixExpr)
			if _, bin := fixExpr.(*ast.BinaryExpr); bin {
				text = "(" + text + ")"
			}
			d = withFix(d, fmt.Sprintf("convert %s to %s (multiply by %d)", uf.unitOf(fixExpr), fixUnit, from/to),
				TextEdit{Pos: fixExpr.Pos(), End: fixExpr.End(),
					NewText: fmt.Sprintf("%s * %d", text, from/to)})
		}
	}
	uf.diags = append(uf.diags, d)
}

// unitOf infers the size unit an expression carries: the environment
// for flow-tracked locals, otherwise the name suffix of the
// identifier, field, or call that produces it ("" = unknown). A
// call's result takes the unit of the callee's name, which is what
// makes an explicit conversion helper (toBytes(perNodeKiB)) a
// sanctioned escape hatch. Arithmetic mixing a known unit with an
// unknown one (e.g. an untyped constant) clears the unit — that is
// the other escape hatch, and the shape the autofix emits.
func (uf *unitFlow) unitOf(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return uf.unitOf(e.X)
	case *ast.UnaryExpr:
		return uf.unitOf(e.X)
	case *ast.Ident:
		if u := suffixUnit(e.Name); u != "" {
			return u
		}
		obj := uf.p.Info.Uses[e]
		if obj == nil {
			obj = uf.p.Info.Defs[e]
		}
		return uf.env[obj]
	case *ast.SelectorExpr:
		return suffixUnit(e.Sel.Name)
	case *ast.CallExpr:
		return uf.unitOf(e.Fun)
	case *ast.IndexExpr:
		return uf.unitOf(e.X)
	case *ast.BinaryExpr:
		if a, b := uf.unitOf(e.X), uf.unitOf(e.Y); a == b {
			return a
		}
		return ""
	}
	return ""
}

// unitSensitiveOp reports whether mixing units across op is an error.
func unitSensitiveOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// suffixUnit maps an identifier name to the unit suffix it carries.
func suffixUnit(name string) string {
	lower := strings.ToLower(name)
	for _, u := range unitSuffixes {
		if strings.HasSuffix(name, u) || lower == strings.ToLower(u) {
			return u
		}
	}
	return ""
}

// exprSource renders an expression back to source text.
func exprSource(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return ""
	}
	return buf.String()
}
