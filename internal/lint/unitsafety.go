package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// UnitSafetyCheck is the name of the unitsafety analyzer.
const UnitSafetyCheck = "unitsafety"

// unitSuffixes are the recognized size-unit name suffixes, longest
// first so "KiB" wins over "B"-style prefixes of longer names.
var unitSuffixes = []string{"GiB", "MiB", "KiB", "GB", "MB", "KB", "Bytes"}

// UnitSafety returns the analyzer reporting arithmetic, comparisons
// and assignments that mix identifiers carrying different size-unit
// suffixes (Bytes, KiB, MiB, GiB, KB, MB, GB) without an explicit
// conversion. The characterization tables (internal/core/table.go)
// key on block sizes in bytes; a KiB value slipping into a Bytes slot
// shifts every lookup by three orders of magnitude and still
// type-checks.
func UnitSafety() *Analyzer {
	return &Analyzer{
		Name: UnitSafetyCheck,
		Doc: "Reports binary expressions and assignments whose operands carry " +
			"conflicting size-unit name suffixes. Convert through a helper " +
			"whose name states the result unit (e.g. toBytes) first.",
		Run: unitSafetyRun,
	}
}

func unitSafetyRun(p *Package) []Diagnostic {
	var out []Diagnostic
	report := func(pos token.Pos, a, b string) {
		out = append(out, diag(p, pos, UnitSafetyCheck,
			"mixes %s and %s operands without an explicit unit conversion", a, b))
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if !unitSensitiveOp(n.Op) {
					return true
				}
				if a, b := unitOf(n.X), unitOf(n.Y); a != "" && b != "" && a != b {
					report(n.OpPos, a, b)
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i := range n.Lhs {
					if a, b := unitOf(n.Lhs[i]), unitOf(n.Rhs[i]); a != "" && b != "" && a != b {
						report(n.TokPos, a, b)
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) != len(n.Values) {
					return true
				}
				for i := range n.Names {
					if a, b := suffixUnit(n.Names[i].Name), unitOf(n.Values[i]); a != "" && b != "" && a != b {
						report(n.Names[i].Pos(), a, b)
					}
				}
			}
			return true
		})
	}
	return out
}

// unitSensitiveOp reports whether mixing units across op is an error.
func unitSensitiveOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// unitOf infers the size unit an expression carries from the name of
// the identifier, field, or call that produces it ("" = unknown). A
// call's result takes the unit of the callee's name, which is what
// makes an explicit conversion helper (toBytes(perNodeKiB)) the
// sanctioned escape hatch.
func unitOf(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return unitOf(e.X)
	case *ast.UnaryExpr:
		return unitOf(e.X)
	case *ast.Ident:
		return suffixUnit(e.Name)
	case *ast.SelectorExpr:
		return suffixUnit(e.Sel.Name)
	case *ast.CallExpr:
		return unitOf(e.Fun)
	case *ast.IndexExpr:
		return unitOf(e.X)
	case *ast.BinaryExpr:
		if a, b := unitOf(e.X), unitOf(e.Y); a == b {
			return a
		}
		return ""
	}
	return ""
}

// suffixUnit maps an identifier name to the unit suffix it carries.
func suffixUnit(name string) string {
	lower := strings.ToLower(name)
	for _, u := range unitSuffixes {
		if strings.HasSuffix(name, u) || lower == strings.ToLower(u) {
			return u
		}
	}
	return ""
}
