package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// fixtureLoader is shared across tests so the standard library is
// type-checked at most once per test process.
var (
	fixtureOnce sync.Once
	fixtureTree *Loader
)

func fixtures() *Loader {
	fixtureOnce.Do(func() {
		fixtureTree = NewTreeLoader("fixture/internal", filepath.Join("testdata", "src"))
	})
	return fixtureTree
}

// want is one expected diagnostic, parsed from a fixture comment of
// the form: // want <check> "substring"
type want struct {
	file    string
	line    int
	check   string
	substr  string
	matched bool
}

var wantRe = regexp.MustCompile(`want (\S+) "([^"]+)"`)

// collectWants extracts the expected-diagnostic annotations of a
// fixture package.
func collectWants(p *Package) []*want {
	var out []*want
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := p.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					out = append(out, &want{file: pos.Filename, line: pos.Line, check: m[1], substr: m[2]})
				}
			}
		}
	}
	return out
}

// checkFixture loads the fixture dirs, runs the analyzers through the
// full Runner (so suppression applies), and matches every diagnostic
// against the want annotations — both directions.
func checkFixture(t *testing.T, analyzers []*Analyzer, dirs ...string) {
	t.Helper()
	loader := fixtures()
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := loader.Load(dir)
		if err != nil {
			t.Fatalf("load fixture %s: %v", dir, err)
		}
		pkgs = append(pkgs, p)
	}
	runner := &Runner{Analyzers: analyzers}
	diags := runner.Run(pkgs)

	var wants []*want
	for _, p := range pkgs {
		wants = append(wants, collectWants(p)...)
	}
	for _, d := range diags {
		if w := matchWant(wants, d); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic: %s:%d: %s %q", w.file, w.line, w.check, w.substr)
		}
	}
}

// matchWant finds the first unmatched annotation the diagnostic
// satisfies.
func matchWant(wants []*want, d Diagnostic) *want {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line &&
			w.check == d.Check && strings.Contains(d.Message, w.substr) {
			return w
		}
	}
	return nil
}

func TestDeterminismAnalyzer(t *testing.T) {
	checkFixture(t, []*Analyzer{Determinism()}, "determinism")
}

func TestLockDisciplineAnalyzer(t *testing.T) {
	checkFixture(t, []*Analyzer{LockDiscipline()}, "lockdiscipline")
}

func TestErrCheckAnalyzer(t *testing.T) {
	checkFixture(t, []*Analyzer{ErrCheck()}, "errcheck")
}

func TestUnitFlowAnalyzer(t *testing.T) {
	checkFixture(t, []*Analyzer{UnitFlow()}, "unitflow")
}

func TestReqPathAnalyzer(t *testing.T) {
	checkFixture(t, []*Analyzer{ReqPath(), SpanBalance()}, "cache")
}

func TestSpanBalanceAnalyzer(t *testing.T) {
	checkFixture(t, []*Analyzer{SpanBalance()}, "spanbalance")
}

// TestSeedFlowAnalyzer includes the source package in the analysis set
// so the cross-package taint facts (Stamp → passthrough →
// LaunderedStamp) are computed before the sink package is analyzed.
func TestSeedFlowAnalyzer(t *testing.T) {
	checkFixture(t, []*Analyzer{SeedFlow()}, "seedsrc", "seedflow")
}

func TestFaultPlanAnalyzer(t *testing.T) {
	checkFixture(t, []*Analyzer{FaultPlan()}, "fault", "faultplan")
}

// TestLegacyAPIAnalyzer includes the core stub so both directions are
// covered: reintroduced declarations inside the core package and
// qualified references to them from a consumer. Session-method calls
// named Evaluate must stay clean.
func TestLegacyAPIAnalyzer(t *testing.T) {
	checkFixture(t, []*Analyzer{LegacyAPI()}, "core", "legacyapi")
}

// TestSynthPlaneFixture pins the analyzers' view of the synthetic-
// workload layer: reqpath must not flag *sim.Proc on application-layer
// entry points (the engine's Run/rank procedures are the MPI idiom),
// while determinism and unitflow still bind — phase chains must not
// leak map order and spec byte fields must not mix unit suffixes.
func TestSynthPlaneFixture(t *testing.T) {
	checkFixture(t, []*Analyzer{ReqPath(), Determinism(), UnitFlow()}, "synthplane")
}

func TestProbeConformAnalyzer(t *testing.T) {
	checkFixture(t, []*Analyzer{ProbeConform()}, "telemetry", "device", "wiring")
}

// TestProbeConformWithoutWiring drops the registering package from
// the analysis set: the conforming Disk must then be reported as
// unregistered too.
func TestProbeConformWithoutWiring(t *testing.T) {
	loader := fixtures()
	dev, err := loader.Load("device")
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Analyzers: []*Analyzer{ProbeConform()}}
	diags := runner.Run([]*Package{dev})
	var diskFinding bool
	for _, d := range diags {
		if strings.Contains(d.Message, "device.Disk") && strings.Contains(d.Message, "never passed") {
			diskFinding = true
		}
	}
	if !diskFinding {
		t.Errorf("expected device.Disk to be reported unregistered without the wiring package; got:\n%s", formatDiags(diags))
	}
}

// TestCleanTree runs the full default suite over the real module: the
// committed tree must stay finding-free (the CI lint job enforces the
// same via cmd/iolint).
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check in -short mode")
	}
	loader, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, loadErrs := loader.LoadAll()
	for _, err := range loadErrs {
		t.Errorf("load: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("LoadAll found only %d packages; the walker is skipping real code", len(pkgs))
	}
	runner := &Runner{Analyzers: DefaultAnalyzers()}
	if diags := runner.Run(pkgs); len(diags) > 0 {
		t.Errorf("the tree must be iolint-clean; got %d finding(s):\n%s", len(diags), formatDiags(diags))
	}
}

func formatDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
