package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockDisciplineCheck is the name of the lockdiscipline analyzer.
const LockDisciplineCheck = "lockdiscipline"

// LockDiscipline returns the analyzer enforcing the repo's locking
// rules: a mutex locked in a function is released by a defer in that
// same function, and no exported module-internal function or method
// is called while the lock is held (the exact shape of the bug fixed
// in Session.Characterization, where a mutex held across
// Characterize serialized independent sweeps).
func LockDiscipline() *Analyzer {
	return &Analyzer{
		Name: LockDisciplineCheck,
		Doc: "Reports mu.Lock() without a same-function defer mu.Unlock(), " +
			"and calls to exported module-internal functions or methods made " +
			"while a mutex is held. Critical sections must be leaf code: " +
			"defer-scoped, and never re-entering the public API.",
		Run: lockDisciplineRun,
	}
}

// lockCall pairs a Lock/RLock call with its receiver expression.
type lockCall struct {
	call *ast.CallExpr
	recv string // canonical receiver text, e.g. "e.mu"
	read bool   // RLock rather than Lock
}

func lockDisciplineRun(pass *Pass) []Diagnostic {
	p := pass.Package
	var out []Diagnostic
	for _, f := range p.Files {
		funcScopes(f, func(body *ast.BlockStmt) {
			out = append(out, lockScope(p, body)...)
		})
	}
	return out
}

// lockScope checks one function body.
func lockScope(p *Package, body *ast.BlockStmt) []Diagnostic {
	var out []Diagnostic
	var locks []lockCall
	walkScope(body, func(n ast.Node) bool {
		if lc, ok := mutexCall(p, n, "Lock", "RLock"); ok {
			locks = append(locks, lc)
		}
		return true
	})
	for _, lc := range locks {
		unlock := "Unlock"
		if lc.read {
			unlock = "RUnlock"
		}
		deferred, manual := findUnlocks(p, body, lc, unlock)
		if !deferred.IsValid() {
			verb := lc.call.Pos() // report at the Lock
			if manual.IsValid() {
				out = append(out, diag(p, verb, LockDisciplineCheck,
					"%s.%s() released by a plain %s() instead of a same-function defer; an early return or panic between them leaks the lock",
					lc.recv, lockName(lc), unlock))
			} else {
				out = append(out, diag(p, verb, LockDisciplineCheck,
					"%s.%s() without a same-function defer %s.%s()", lc.recv, lockName(lc), lc.recv, unlock))
			}
		}
		// The critical section runs from the Lock to the manual
		// unlock, or to the end of the function when defer-released.
		end := body.End()
		if manual.IsValid() && !deferred.IsValid() {
			end = manual
		}
		out = append(out, exportedCallsWhileLocked(p, body, lc, end)...)
	}
	return out
}

// lockName returns the method name of the lock call.
func lockName(lc lockCall) string {
	if lc.read {
		return "RLock"
	}
	return "Lock"
}

// mutexCall matches a statement-level call recv.M() where recv is a
// sync.Mutex or sync.RWMutex and M is one of names.
func mutexCall(p *Package, n ast.Node, names ...string) (lockCall, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return lockCall{}, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockCall{}, false
	}
	matched := ""
	for _, name := range names {
		if sel.Sel.Name == name {
			matched = name
		}
	}
	if matched == "" {
		return lockCall{}, false
	}
	t := p.Info.TypeOf(sel.X)
	if t == nil {
		return lockCall{}, false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return lockCall{}, false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return lockCall{}, false
	}
	return lockCall{call: call, recv: types.ExprString(sel.X), read: strings.HasPrefix(matched, "R")}, true
}

// findUnlocks locates, in the same function scope, a deferred and a
// plain call to recv.unlock(), returning their positions (invalid
// when absent). Only releases after the Lock count.
func findUnlocks(p *Package, body *ast.BlockStmt, lc lockCall, unlock string) (deferred, manual token.Pos) {
	walkScope(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if u, ok := mutexCall(p, n.Call, unlock); ok && u.recv == lc.recv && !deferred.IsValid() {
				deferred = n.Pos()
			}
		case *ast.ExprStmt:
			if u, ok := mutexCall(p, n.X, unlock); ok && u.recv == lc.recv &&
				n.Pos() > lc.call.End() && !manual.IsValid() {
				manual = n.Pos()
			}
		}
		return true
	})
	return deferred, manual
}

// exportedCallsWhileLocked flags calls to exported module-internal
// functions or methods between the Lock and end of the critical
// section. Standard-library callees (including the mutex's own
// methods) are exempt: the invariant is about re-entering this
// module's public API with a lock held.
func exportedCallsWhileLocked(p *Package, body *ast.BlockStmt, lc lockCall, end token.Pos) []Diagnostic {
	var out []Diagnostic
	walkScope(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= lc.call.End() || call.Pos() >= end {
			return true
		}
		var obj types.Object
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			obj = p.Info.Uses[fun.Sel]
		case *ast.Ident:
			obj = p.Info.Uses[fun]
		}
		fn, ok := obj.(*types.Func)
		if !ok || !fn.Exported() || fn.Pkg() == nil {
			return true
		}
		path := fn.Pkg().Path()
		if path != p.ModPath && !strings.HasPrefix(path, p.ModPath+"/") {
			return true
		}
		out = append(out, diag(p, call.Pos(), LockDisciplineCheck,
			"call to exported %s while %s is locked; critical sections must not re-enter the module's public API (move the call outside the lock)",
			fn.Name(), lc.recv))
		return true
	})
	return out
}
