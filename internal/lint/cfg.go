package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// CFG is the control-flow graph of one function body. Blocks hold
// statements and the condition/tag expressions that decide their
// successors; Entry is the first block executed and every
// terminating path (return, panic, falling off the end) edges into
// Exit. Deferred calls are collected separately: they run on every
// exit, including panics, which is exactly how path-sensitive
// analyzers (spanbalance) must account them.
type CFG struct {
	// Name labels the function in dumps and messages.
	Name string
	// Blocks lists every block in creation order; Blocks[0] is Entry.
	Blocks []*Block
	// Entry is where execution starts.
	Entry *Block
	// Exit is the single synthetic sink of all terminating paths. It
	// holds no nodes.
	Exit *Block
	// Defers are the argument calls of every defer statement in the
	// body, in source order. The builder treats a defer as
	// unconditionally scheduled — a defer inside a branch is assumed
	// to run at exit, a deliberate over-approximation analyzers must
	// take into account.
	Defers []*ast.CallExpr
}

// Block is one straight-line run of nodes with its outgoing edges.
type Block struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Kind names the syntactic construct the block was created for
	// (entry, exit, if.then, for.body, ...), for dump readability.
	Kind string
	// Nodes are the statements and decision expressions executed in
	// order. Decision expressions (if/for conditions, switch tags,
	// range operands) are the last node of their block.
	Nodes []ast.Node
	// Succs are the possible next blocks.
	Succs []*Block
	// term, when non-nil, is the node that diverted control away
	// from the fallthrough path (return/branch/panic), used by
	// analyzers to cite the offending exit.
	term ast.Node
}

// Term returns the statement that terminated the block (a return,
// branch, or panic), or nil when the block falls through.
func (b *Block) Term() ast.Node { return b.term }

// BuildCFG constructs the control-flow graph of a function body.
func BuildCFG(name string, body *ast.BlockStmt) *CFG {
	g := &CFG{Name: name}
	b := &cfgBuilder{g: g, labels: map[string]*labelScope{}}
	g.Entry = b.newBlock("entry")
	g.Exit = &Block{Kind: "exit"}
	b.cur = g.Entry
	b.stmtList(body.List)
	// Falling off the end of the body returns.
	b.edge(b.cur, g.Exit)
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	// Resolve forward gotos.
	for _, pg := range b.gotos {
		if ls, ok := b.labels[pg.label]; ok && ls.target != nil {
			b.edge(pg.from, ls.target)
		}
	}
	return g
}

// labelScope tracks the blocks a label can transfer control to.
type labelScope struct {
	target *Block // the labeled statement itself (goto destination)
	brk    *Block // break <label> destination
	cont   *Block // continue <label> destination
}

type pendingGoto struct {
	from  *Block
	label string
}

// loopScope is one enclosing breakable/continuable construct.
type loopScope struct {
	brk   *Block
	cont  *Block // nil for switch/select (not continuable)
	label string
}

type cfgBuilder struct {
	g      *CFG
	cur    *Block
	loops  []loopScope
	labels map[string]*labelScope
	gotos  []pendingGoto
	// labeled carries the pending label name between a LabeledStmt
	// and the loop/switch statement it labels.
	labeled string
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// terminate records the diverting node and parks the builder on a
// fresh unreachable block for any dead code that follows.
func (b *cfgBuilder) terminate(n ast.Node) {
	b.cur.term = n
	b.cur = b.newBlock("unreachable")
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Cond)
		cond := b.cur
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, done)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, done)
		} else {
			b.edge(cond, done)
		}
		b.cur = done

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
			cont = post
		}
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			b.edge(head, body)
			b.edge(head, done)
		} else {
			b.edge(head, body)
		}
		b.pushLoop(done, cont, s)
		b.cur = body
		b.stmt(s.Body)
		if post != nil {
			b.edge(b.cur, post)
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, head)
		} else {
			b.edge(b.cur, head)
		}
		b.popLoop()
		b.cur = done

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.edge(b.cur, head)
		head.Nodes = append(head.Nodes, s.X)
		b.edge(head, body)
		b.edge(head, done)
		b.pushLoop(done, head, s)
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, head)
		b.popLoop()
		b.cur = done

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Tag)
		}
		b.switchBody(s.Body, "switch", s)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		b.switchBody(s.Body, "typeswitch", s)

	case *ast.SelectStmt:
		b.switchBody(s.Body, "select", s)

	case *ast.LabeledStmt:
		target := b.newBlock("label." + s.Label.Name)
		b.edge(b.cur, target)
		b.cur = target
		ls, ok := b.labels[s.Label.Name]
		if !ok {
			ls = &labelScope{}
			b.labels[s.Label.Name] = ls
		}
		ls.target = target
		b.labeled = s.Label.Name
		b.stmt(s.Stmt)
		b.labeled = ""

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if to := b.branchTarget(s, false); to != nil {
				b.edge(b.cur, to)
			}
			b.terminate(s)
		case token.CONTINUE:
			if to := b.branchTarget(s, true); to != nil {
				b.edge(b.cur, to)
			}
			b.terminate(s)
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			b.terminate(s)
		case token.FALLTHROUGH:
			// Edge added by switchBody; the statement only ends the
			// clause.
			b.cur.Nodes = append(b.cur.Nodes, s)
		}

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.edge(b.cur, b.g.Exit)
		b.terminate(s)

	case *ast.DeferStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.g.Defers = append(b.g.Defers, s.Call)

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanicCall(call) {
			b.edge(b.cur, b.g.Exit)
			b.terminate(s)
		}

	default:
		// Assignments, declarations, go statements, sends, inc/dec,
		// empty statements: straight-line.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// pushLoop enters a breakable construct, binding any pending label's
// break/continue targets to it.
func (b *cfgBuilder) pushLoop(brk, cont *Block, _ ast.Stmt) {
	b.loops = append(b.loops, loopScope{brk: brk, cont: cont, label: b.labeled})
	if b.labeled != "" {
		ls := b.labels[b.labeled]
		ls.brk, ls.cont = brk, cont
		b.labeled = ""
	}
}

func (b *cfgBuilder) popLoop() { b.loops = b.loops[:len(b.loops)-1] }

// branchTarget resolves break/continue, labeled or not.
func (b *cfgBuilder) branchTarget(s *ast.BranchStmt, isContinue bool) *Block {
	if s.Label != nil {
		if ls, ok := b.labels[s.Label.Name]; ok {
			if isContinue {
				return ls.cont
			}
			return ls.brk
		}
		return nil
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		sc := b.loops[i]
		if isContinue {
			if sc.cont != nil {
				return sc.cont
			}
			continue // switch/select: continue binds the loop outside
		}
		return sc.brk
	}
	return nil
}

// switchBody builds the clause blocks of a switch, type switch, or
// select. The dispatching block edges to every clause (and to done
// when no default clause exists); fallthrough edges link consecutive
// case bodies.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, kind string, _ ast.Stmt) {
	head := b.cur
	done := b.newBlock(kind + ".done")
	b.pushLoop(done, nil, nil)
	var clauseBlocks []*Block
	hasDefault := false
	for _, cs := range body.List {
		blk := b.newBlock(kind + ".case")
		clauseBlocks = append(clauseBlocks, blk)
		switch cc := cs.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			blk.Nodes = append(blk.Nodes, exprNodes(cc.List)...)
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
		}
		b.edge(head, blk)
	}
	for i, cs := range body.List {
		blk := clauseBlocks[i]
		b.cur = blk
		var list []ast.Stmt
		switch cc := cs.(type) {
		case *ast.CaseClause:
			list = cc.Body
		case *ast.CommClause:
			list = cc.Body
		}
		fallsThrough := false
		for _, st := range list {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		b.stmtList(list)
		if fallsThrough && i+1 < len(clauseBlocks) {
			b.edge(b.cur, clauseBlocks[i+1])
			b.cur = b.newBlock("unreachable")
		} else {
			b.edge(b.cur, done)
		}
	}
	if !hasDefault || len(clauseBlocks) == 0 {
		b.edge(head, done)
	}
	b.popLoop()
	b.cur = done
}

// exprNodes widens a []ast.Expr to []ast.Node.
func exprNodes(list []ast.Expr) []ast.Node {
	out := make([]ast.Node, len(list))
	for i, e := range list {
		out[i] = e
	}
	return out
}

// isPanicCall matches a direct call to the builtin panic. Shadowed
// panics misclassify — acceptable for a repo that never shadows it.
func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// Dump renders the graph in the golden format used by the CFG tests:
// one line per block with its kind, nodes, and successor indices,
// then the defer list.
//
//	func Flush
//	b0 entry: [r.Push(3, c.name)] [c.Resize(0)] → b5
//	...
//	b5 exit:
//	defer: [r.Pop()]
func (g *CFG) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s\n", g.Name)
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s:", blk.Index, blk.Kind)
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, " [%s]", nodeText(fset, n))
		}
		if len(blk.Succs) > 0 {
			parts := make([]string, len(blk.Succs))
			for i, s := range blk.Succs {
				parts[i] = fmt.Sprintf("b%d", s.Index)
			}
			fmt.Fprintf(&sb, " → %s", strings.Join(parts, " "))
		}
		sb.WriteString("\n")
	}
	if len(g.Defers) > 0 {
		sb.WriteString("defer:")
		for _, d := range g.Defers {
			fmt.Fprintf(&sb, " [%s]", nodeText(fset, d))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// nodeText renders an AST node on one line.
func nodeText(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	s := buf.String()
	s = strings.ReplaceAll(s, "\n", " ")
	s = strings.ReplaceAll(s, "\t", "")
	return s
}
