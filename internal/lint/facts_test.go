package lint

import (
	"strings"
	"testing"
)

// TestDependencyOrder pins that ComputeFacts visits imports before
// importers regardless of input order: seedflow imports seedsrc, so
// seedsrc must be analyzed first even when listed last.
func TestDependencyOrder(t *testing.T) {
	loader := fixtures()
	src, err := loader.Load("seedsrc")
	if err != nil {
		t.Fatal(err)
	}
	sink, err := loader.Load("seedflow")
	if err != nil {
		t.Fatal(err)
	}
	ordered := dependencyOrder([]*Package{sink, src})
	if len(ordered) != 2 || ordered[0] != src || ordered[1] != sink {
		paths := make([]string, len(ordered))
		for i, p := range ordered {
			paths[i] = p.Path
		}
		t.Errorf("dependencyOrder = %v, want [seedsrc seedflow]", paths)
	}
}

// TestCrossPackageFacts proves the fact chain the seedflow acceptance
// fixture relies on: analyzing seedsrc exports a wall-taint fact for
// LaunderedStamp, which the sink package's pass can read back.
func TestCrossPackageFacts(t *testing.T) {
	loader := fixtures()
	src, err := loader.Load("seedsrc")
	if err != nil {
		t.Fatal(err)
	}
	sink, err := loader.Load("seedflow")
	if err != nil {
		t.Fatal(err)
	}
	facts := ComputeFacts([]*Package{sink, src}, []*Analyzer{SeedFlow()})
	obj := src.Types.Scope().Lookup("LaunderedStamp")
	if obj == nil {
		t.Fatal("seedsrc.LaunderedStamp not found")
	}
	fact, ok := facts.Get(obj, seedFactKind)
	if !ok {
		t.Fatal("no seedflow fact exported for seedsrc.LaunderedStamp")
	}
	if s := fact.String(); !strings.Contains(s, "wall") {
		t.Errorf("LaunderedStamp fact = %s, want a wall-tainted result", s)
	}
}

// TestFactsDumpDeterministic pins the serialization contract: the
// dump is sorted, stable across runs, and renders methods with their
// receiver type.
func TestFactsDumpDeterministic(t *testing.T) {
	loader := fixtures()
	pkgs := make([]*Package, 0, 2)
	for _, dir := range []string{"fault", "faultplan"} {
		p, err := loader.Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, p)
	}
	a := ComputeFacts(pkgs, DefaultAnalyzers()).Dump()
	b := ComputeFacts([]*Package{pkgs[1], pkgs[0]}, DefaultAnalyzers()).Dump()
	if a != b {
		t.Errorf("dumps differ across input orders:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "fixture/internal/fault.Apply faultplan = consumes(p1)") {
		t.Errorf("dump lacks the fault.Apply consumer fact:\n%s", a)
	}
	lines := strings.Split(strings.TrimRight(a, "\n"), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			t.Errorf("dump is not sorted at line %d: %q > %q", i, lines[i-1], lines[i])
		}
	}
}

// TestFactsExportReplaces pins last-writer-wins per (object, kind).
func TestFactsExportReplaces(t *testing.T) {
	loader := fixtures()
	p, err := loader.Load("fault")
	if err != nil {
		t.Fatal(err)
	}
	obj := p.Types.Scope().Lookup("Apply")
	fs := NewFacts()
	fs.Export(obj, "k", PlanConsumerFact{Params: 1})
	fs.Export(obj, "k", PlanConsumerFact{Params: 2})
	if fs.Len() != 1 {
		t.Errorf("Len = %d, want 1", fs.Len())
	}
	f, _ := fs.Get(obj, "k")
	if f.String() != (PlanConsumerFact{Params: 2}).String() {
		t.Errorf("fact = %s, want the replacement", f)
	}
}
