package lint

import (
	"flag"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the CFG golden files under testdata/cfg")

// parseFuncCFG parses a single function declaration and builds its
// control-flow graph. The CFG builder is purely syntactic, so no type
// checking is needed.
func parseFuncCFG(t *testing.T, src string) (*token.FileSet, *CFG) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg.go", "package p\n\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			return fset, BuildCFG(fd.Name.Name, fd.Body)
		}
	}
	t.Fatal("no function declaration in source")
	return nil, nil
}

// kindEdges renders every edge of the graph as "fromKind->toKind", for
// shape assertions that survive block renumbering.
func kindEdges(g *CFG) map[string]bool {
	edges := map[string]bool{}
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			edges[blk.Kind+"->"+s.Kind] = true
		}
	}
	return edges
}

// TestCFGShapes drives the builder over every control construct the
// span/seed analyzers must traverse, asserting the structural edges
// of each shape and comparing the full dump against a golden file
// (regenerate with: go test ./internal/lint -run TestCFGShapes -update).
func TestCFGShapes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// edges that must exist, as "fromKind->toKind"
		edges []string
		// edges that must NOT exist
		absent []string
		defers int
	}{
		{
			name: "if_else",
			src: `func IfElse(x int) int {
	if x > 0 {
		return 1
	} else {
		x--
	}
	return x
}`,
			edges: []string{"entry->if.then", "entry->if.else", "if.then->exit", "if.else->if.done", "if.done->exit"},
			// The then-arm returns, so it must not fall through to done.
			absent: []string{"if.then->if.done", "entry->if.done"},
		},
		{
			name: "if_no_else",
			src: `func IfNoElse(x int) int {
	if x > 0 {
		x++
	}
	return x
}`,
			edges: []string{"entry->if.then", "entry->if.done", "if.then->if.done"},
		},
		{
			name: "for_break_continue",
			src: `func Loop(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			break
		}
		if i == 5 {
			continue
		}
		s += i
	}
	return s
}`,
			edges: []string{
				"entry->for.head", "for.head->for.body", "for.head->for.done",
				"if.then->for.done", // break
				"if.then->for.post", // continue
				"for.post->for.head", "for.done->exit",
			},
		},
		{
			name: "range",
			src: `func Sum(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}`,
			edges: []string{"entry->range.head", "range.head->range.body", "range.head->range.done", "range.body->range.head"},
		},
		{
			name: "switch_fallthrough",
			src: `func Classify(x int) int {
	switch x {
	case 1:
		x++
		fallthrough
	case 2:
		x--
	default:
		x = 0
	}
	return x
}`,
			edges: []string{"entry->switch.case", "switch.case->switch.case", "switch.case->switch.done"},
			// A default clause exists, so the head cannot skip to done.
			absent: []string{"entry->switch.done"},
		},
		{
			name: "typeswitch_no_default",
			src: `func Kind(y interface{}) int {
	switch v := y.(type) {
	case int:
		return v
	case string:
		return len(v)
	}
	return 0
}`,
			edges: []string{"entry->typeswitch.case", "entry->typeswitch.done", "typeswitch.case->exit"},
		},
		{
			name: "select_default",
			src: `func Poll(ch chan int) int {
	x := 0
	select {
	case v := <-ch:
		x = v
	default:
		x = -1
	}
	return x
}`,
			edges:  []string{"entry->select.case", "select.case->select.done"},
			absent: []string{"entry->select.done"},
		},
		{
			name: "defer_early_return",
			src: `func Guarded(x int) int {
	defer cleanup()
	if x > 0 {
		return x
	}
	return 0
}`,
			edges:  []string{"entry->if.then", "if.then->exit", "if.done->exit"},
			defers: 1,
		},
		{
			name: "goto_forward",
			src: `func Jump(x int) int {
	if x > 0 {
		goto done
	}
	x++
done:
	return x
}`,
			edges: []string{"entry->if.then", "if.then->label.done", "if.done->label.done", "label.done->exit"},
		},
		{
			name: "labeled_break",
			src: `func Nested(n int) int {
	s := 0
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i+j > 4 {
				break outer
			}
			s++
		}
	}
	return s
}`,
			// The labeled break must exit BOTH loops: from the inner
			// body's if.then straight to the outer loop's done block.
			edges: []string{"if.then->for.done"},
		},
		{
			name: "panic_terminates",
			src: `func MustPos(x int) int {
	if x == 0 {
		panic("zero")
	}
	return x
}`,
			edges:  []string{"if.then->exit"},
			absent: []string{"if.then->if.done"},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fset, g := parseFuncCFG(t, tc.src)
			edges := kindEdges(g)
			for _, e := range tc.edges {
				if !edges[e] {
					t.Errorf("missing edge %s\n%s", e, g.Dump(fset))
				}
			}
			for _, e := range tc.absent {
				if edges[e] {
					t.Errorf("unwanted edge %s\n%s", e, g.Dump(fset))
				}
			}
			if got := len(g.Defers); got != tc.defers {
				t.Errorf("got %d deferred calls, want %d", got, tc.defers)
			}

			golden := filepath.Join("testdata", "cfg", tc.name+".golden")
			dump := g.Dump(fset)
			if *updateGolden {
				if err := os.WriteFile(golden, []byte(dump), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (regenerate with -update): %v", err)
			}
			if dump != string(want) {
				t.Errorf("dump differs from %s (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s", golden, dump, want)
			}
		})
	}
}

// TestCFGEntryExitInvariants pins the structural contract every
// analyzer relies on: Blocks[0] is Entry, the last block is Exit,
// Exit holds no nodes and has no successors.
func TestCFGEntryExitInvariants(t *testing.T) {
	_, g := parseFuncCFG(t, `func F(x int) int {
	for i := 0; i < x; i++ {
		if i == 2 {
			return i
		}
	}
	return 0
}`)
	if g.Blocks[0] != g.Entry {
		t.Error("Blocks[0] is not Entry")
	}
	if g.Blocks[len(g.Blocks)-1] != g.Exit {
		t.Error("last block is not Exit")
	}
	if len(g.Exit.Nodes) != 0 || len(g.Exit.Succs) != 0 {
		t.Error("Exit must hold no nodes and have no successors")
	}
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if s.Index < 0 || s.Index >= len(g.Blocks) || g.Blocks[s.Index] != s {
				t.Errorf("b%d has a successor with a dangling index %d", blk.Index, s.Index)
			}
		}
	}
}
