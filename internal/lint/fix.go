package lint

import (
	"fmt"
	"go/format"
	"go/token"
	"os"
	"sort"
)

// TextEdit is one replacement of the source range [Pos, End) with
// NewText. Pos == End inserts.
type TextEdit struct {
	Pos, End token.Pos
	NewText  string
}

// SuggestedFix is a machine-applicable resolution of a finding: a
// message and a set of non-overlapping edits. cmd/iolint -fix
// applies every suggested fix of every finding, refuses overlapping
// edits, and gofmts the result, so applying fixes is idempotent: a
// second run produces zero findings and zero diffs.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// withFix attaches a fix to a diagnostic (constructor helper).
func withFix(d Diagnostic, msg string, edits ...TextEdit) Diagnostic {
	d.Fixes = append(d.Fixes, SuggestedFix{Message: msg, Edits: edits})
	return d
}

// FixResult is the outcome of ApplyFixes: the new gofmt-clean
// content of every file at least one edit touched, and the number of
// fixes folded in.
type FixResult struct {
	// Files maps filename to its fixed, formatted content.
	Files map[string][]byte
	// Applied counts the suggested fixes applied.
	Applied int
}

// ApplyFixes merges the suggested fixes of all diagnostics into
// per-file edit lists, refuses dirty overlaps (two edits touching
// the same bytes — applying either would invalidate the other's
// offsets, so the whole run is rejected rather than guessing), and
// returns the edited files formatted with gofmt. Identical duplicate
// edits (two findings proposing the same insertion) are deduplicated
// rather than refused. readFile defaults to os.ReadFile.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic, readFile func(string) ([]byte, error)) (*FixResult, error) {
	if readFile == nil {
		readFile = os.ReadFile
	}
	type fileEdit struct {
		start, end int
		text       string
	}
	perFile := map[string][]fileEdit{}
	applied := 0
	for _, d := range diags {
		for _, fix := range d.Fixes {
			for _, e := range fix.Edits {
				start := fset.Position(e.Pos)
				end := fset.Position(e.End)
				if start.Filename == "" || start.Filename != end.Filename || end.Offset < start.Offset {
					return nil, fmt.Errorf("lint: invalid edit range for %s fix at %s", d.Check, start)
				}
				perFile[start.Filename] = append(perFile[start.Filename], fileEdit{start: start.Offset, end: end.Offset, text: e.NewText})
			}
			applied++
		}
	}
	if applied == 0 {
		return &FixResult{Files: map[string][]byte{}}, nil
	}
	out := &FixResult{Files: map[string][]byte{}, Applied: applied}
	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, name := range files {
		edits := perFile[name]
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].start != edits[j].start {
				return edits[i].start < edits[j].start
			}
			return edits[i].end < edits[j].end
		})
		// Dedupe identical edits, then refuse any remaining overlap.
		deduped := edits[:0]
		for i, e := range edits {
			if i > 0 && e == edits[i-1] {
				continue
			}
			deduped = append(deduped, e)
		}
		edits = deduped
		for i := 1; i < len(edits); i++ {
			if edits[i].start < edits[i-1].end || (edits[i].start == edits[i-1].start && edits[i-1].start == edits[i-1].end && edits[i].start == edits[i].end) {
				return nil, fmt.Errorf("lint: refusing overlapping fixes in %s (edits at offsets %d and %d); apply one, re-run, repeat",
					name, edits[i-1].start, edits[i].start)
			}
		}
		src, err := readFile(name)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		var buf []byte
		last := 0
		for _, e := range edits {
			if e.end > len(src) {
				return nil, fmt.Errorf("lint: edit past end of %s (offset %d > %d)", name, e.end, len(src))
			}
			buf = append(buf, src[last:e.start]...)
			buf = append(buf, e.text...)
			last = e.end
		}
		buf = append(buf, src[last:]...)
		formatted, err := format.Source(buf)
		if err != nil {
			return nil, fmt.Errorf("lint: fixed %s does not parse (broken fix): %w", name, err)
		}
		out.Files[name] = formatted
	}
	return out, nil
}
