package lint

import (
	"go/ast"
	"go/types"
	"path"
)

// ReqPathCheck is the name of the reqpath analyzer.
const ReqPathCheck = "reqpath"

// reqPathPackages are the layers below the I/O library. The library
// (mpiio) is the application-facing boundary where requests are born,
// so its public surface keeps MPI-style (proc, rank, ...) signatures;
// every layer beneath it must be request-threaded — an exported entry
// point taking a bare *sim.Proc has no span stack, no op class, and
// no fault tags, so its work is invisible to the path profile.
var reqPathPackages = map[string]bool{
	"device": true, "raid": true, "cache": true, "fs": true,
	"nfs": true, "pfs": true, "netsim": true,
}

// ReqPath returns the analyzer enforcing the request-path contract:
// exported entry points of the layers below the I/O library take
// *ioreq.Request instead of *sim.Proc, and any function that opens a
// span (ioreq.Request.Push) also closes it (Pop, usually deferred) —
// an unbalanced push corrupts the span stack for every caller above.
func ReqPath() *Analyzer {
	return &Analyzer{
		Name: ReqPathCheck,
		Doc: "Reports exported functions in the layers below the I/O library " +
			"(device/raid/cache/fs/nfs/pfs/netsim) that take a *sim.Proc " +
			"parameter instead of *ioreq.Request, and functions in any layer " +
			"package that call Request.Push without a matching Request.Pop.",
		Run: reqPathRun,
	}
}

func reqPathRun(p *Package) []Diagnostic {
	base := path.Base(p.Path)
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if reqPathPackages[base] && fd.Name.IsExported() {
				out = append(out, checkProcParams(p, base, fd)...)
			}
			if layerPackages[base] || reqPathPackages[base] {
				out = append(out, checkSpanBalance(p, base, fd)...)
			}
		}
	}
	return out
}

// checkProcParams flags *sim.Proc parameters on an exported layer
// entry point.
func checkProcParams(p *Package, base string, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	for _, field := range fd.Type.Params.List {
		if isProcPtr(p.Info.TypeOf(field.Type)) {
			out = append(out, diag(p, field.Pos(), ReqPathCheck,
				"exported %s.%s takes a *sim.Proc; request-path entry points below the I/O library must take a *ioreq.Request so spans, op class, and fault tags survive the descent",
				base, fd.Name.Name))
		}
	}
	return out
}

// checkSpanBalance flags a function body that pushes a span on an
// ioreq.Request but contains no Pop call at all (deferred Pops inside
// function literals count — that is the usual `defer r.Pop()` shape
// after an early-return guard).
func checkSpanBalance(p *Package, base string, fd *ast.FuncDecl) []Diagnostic {
	if isPushHelper(p, fd) {
		return nil
	}
	pushes, pops := 0, 0
	var firstPush ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isRequestPtr(p.Info.TypeOf(sel.X)) {
			return true
		}
		switch sel.Sel.Name {
		case "Push":
			if firstPush == nil {
				firstPush = call
			}
			pushes++
		case "Pop":
			pops++
		}
		return true
	})
	if pushes > 0 && pops == 0 {
		return []Diagnostic{diag(p, firstPush.Pos(), ReqPathCheck,
			"%s.%s opens a span (Request.Push) but never calls Request.Pop; an unbalanced push corrupts the span stack for every caller above",
			base, fd.Name.Name)}
	}
	return nil
}

// isPushHelper recognizes the span-open helper idiom: a function
// whose entire body is a single Request.Push statement (layers define
// one per component so the level and component name live in one
// place; every caller pairs the helper with `defer r.Pop()`). The
// balance contract binds the helper's callers, which this check
// cannot see through — a helper call without a Pop goes unflagged,
// the price of the idiom.
func isPushHelper(p *Package, fd *ast.FuncDecl) bool {
	if len(fd.Body.List) != 1 {
		return false
	}
	expr, ok := fd.Body.List[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := expr.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Push" && isRequestPtr(p.Info.TypeOf(sel.X))
}

// isProcPtr matches *sim.Proc (by package name, so fixture trees with
// their own sim package conform).
func isProcPtr(t types.Type) bool {
	return isNamedPtr(t, "sim", "Proc")
}

// isRequestPtr matches *ioreq.Request.
func isRequestPtr(t types.Type) bool {
	return isNamedPtr(t, "ioreq", "Request")
}

// isNamedPtr matches a pointer to pkg.Name.
func isNamedPtr(t types.Type, pkg, name string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == pkg
}
