package lint

import (
	"go/ast"
	"go/types"
	"path"
)

// ReqPathCheck is the name of the reqpath analyzer.
const ReqPathCheck = "reqpath"

// reqPathPackages are the layers below the I/O library. The library
// (mpiio) is the application-facing boundary where requests are born,
// so its public surface keeps MPI-style (proc, rank, ...) signatures;
// every layer beneath it must be request-threaded — an exported entry
// point taking a bare *sim.Proc has no span stack, no op class, and
// no fault tags, so its work is invisible to the path profile.
var reqPathPackages = map[string]bool{
	"device": true, "raid": true, "cache": true, "fs": true,
	"nfs": true, "pfs": true, "netsim": true,
}

// ReqPath returns the analyzer enforcing the request-path signature
// contract: exported entry points of the layers below the I/O
// library take *ioreq.Request instead of *sim.Proc. Span begin/end
// balance — formerly a syntactic any-Pop-in-the-body check here — is
// enforced path-sensitively by the spanbalance analyzer.
func ReqPath() *Analyzer {
	return &Analyzer{
		Name: ReqPathCheck,
		Doc: "Reports exported functions in the layers below the I/O library " +
			"(device/raid/cache/fs/nfs/pfs/netsim) that take a *sim.Proc " +
			"parameter instead of *ioreq.Request, losing spans, op class, " +
			"and fault tags for the whole descent.",
		Run: reqPathRun,
	}
}

func reqPathRun(pass *Pass) []Diagnostic {
	p := pass.Package
	base := path.Base(p.Path)
	if !reqPathPackages[base] {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			out = append(out, checkProcParams(p, base, fd)...)
		}
	}
	return out
}

// checkProcParams flags *sim.Proc parameters on an exported layer
// entry point.
func checkProcParams(p *Package, base string, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	for _, field := range fd.Type.Params.List {
		if isProcPtr(p.Info.TypeOf(field.Type)) {
			out = append(out, diag(p, field.Pos(), ReqPathCheck,
				"exported %s.%s takes a *sim.Proc; request-path entry points below the I/O library must take a *ioreq.Request so spans, op class, and fault tags survive the descent",
				base, fd.Name.Name))
		}
	}
	return out
}

// isProcPtr matches *sim.Proc (by package name, so fixture trees with
// their own sim package conform).
func isProcPtr(t types.Type) bool {
	return isNamedPtr(t, "sim", "Proc")
}

// isRequestPtr matches *ioreq.Request.
func isRequestPtr(t types.Type) bool {
	return isNamedPtr(t, "ioreq", "Request")
}

// isRecorderRef matches *telemetry.Recorder.
func isRecorderRef(t types.Type) bool {
	return isNamedPtr(t, "telemetry", "Recorder")
}

// isNamedPtr matches a pointer to pkg.Name.
func isNamedPtr(t types.Type, pkg, name string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == pkg
}
