package lint

import (
	"go/ast"
	"go/types"
)

// ErrCheckCheck is the name of the errcheck analyzer.
const ErrCheckCheck = "errcheck"

// ErrCheck returns the analyzer reporting call statements that
// silently discard an error result. An error swallowed in the
// characterization or report path turns a failed measurement into a
// silently wrong table, so every error is either handled or
// explicitly discarded with `_ =`.
//
// Pragmatic exemptions, documented in DESIGN.md §9: methods on
// *strings.Builder and *bytes.Buffer (defined to never fail),
// fmt.Print* to stdout, fmt.Fprint* into those builders or
// os.Stdout/os.Stderr, and deferred calls (cleanup-path error loss
// is a separate concern from control flow).
func ErrCheck() *Analyzer {
	return &Analyzer{
		Name: ErrCheckCheck,
		Doc: "Reports statements that call a function returning an error and " +
			"drop every result. Handle the error or discard it explicitly " +
			"with `_ =` so the decision is visible.",
		Run: errCheckRun,
	}
}

func errCheckRun(pass *Pass) []Diagnostic {
	p := pass.Package
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(p, call) || exemptCallee(p, call) {
				return true
			}
			out = append(out, diag(p, call.Pos(), ErrCheckCheck,
				"result of %s is an unchecked error; handle it or discard explicitly with `_ =`",
				types.ExprString(call.Fun)))
			return true
		})
	}
	return out
}

// returnsError reports whether any result of the call has type error.
func returnsError(p *Package, call *ast.CallExpr) bool {
	sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	errType := types.Universe.Lookup("error").Type()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errType) {
			return true
		}
	}
	return false
}

// exemptCallee applies the documented exemptions.
func exemptCallee(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Methods on the never-failing writers.
	if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		switch types.TypeString(s.Recv(), nil) {
		case "*strings.Builder", "strings.Builder", "*bytes.Buffer", "bytes.Buffer":
			return true
		}
		return false
	}
	pkgPath, name, ok := packageLevelCallee(p, call)
	if !ok || pkgPath != "fmt" {
		return false
	}
	switch name {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		return len(call.Args) > 0 && exemptWriter(p, call.Args[0])
	}
	return false
}

// exemptWriter reports whether the fmt.Fprint* destination is a
// never-failing builder or a standard stream.
func exemptWriter(p *Package, w ast.Expr) bool {
	switch types.TypeString(p.Info.TypeOf(w), nil) {
	case "*strings.Builder", "*bytes.Buffer":
		return true
	}
	if sel, ok := w.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := p.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "os" {
				return sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr"
			}
		}
	}
	return false
}
