// Package lint is a repo-native static-analysis framework built
// purely on the standard library (go/ast, go/parser, go/types). It
// exists because the methodology's core promise — byte-identical
// characterization tables and sweep reports regardless of worker
// count — rests on invariants (no wall clock or unseeded randomness
// in the simulated stack, no map-iteration order leaking into
// reports, no mutex held across exported calls) that ordinary tests
// can only spot-check. The analyzers in this package machine-check
// them on every build.
//
// A finding can be silenced at the site with a justified directive:
//
//	//lint:ignore <check> <reason>
//
// placed on the flagged line or the line directly above it. A
// directive without a reason is itself reported (check "directive"):
// the suppression policy is that every silenced finding documents why
// the invariant holds anyway.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, anchored to a source position.
type Diagnostic struct {
	// Pos is the resolved file/line/column of the finding.
	Pos token.Position
	// Check names the analyzer that produced the finding; ignore
	// directives match against it.
	Check string
	// Message states the violated invariant and, where possible, the
	// fix.
	Message string
}

// String renders the diagnostic in the conventional
// file:line:col: check: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore
	// directives.
	Name string
	// Doc is a one-paragraph description of the invariant the
	// analyzer protects.
	Doc string
	// AppliesTo, when non-nil, restricts which import paths the
	// runner feeds to Run; a nil filter means every package.
	AppliesTo func(pkgPath string) bool
	// Run inspects one package. Exactly one of Run and RunModule is
	// set.
	Run func(p *Package) []Diagnostic
	// RunModule inspects the whole package set at once, for checks
	// that need a cross-package view (e.g. "is this probe registered
	// anywhere?").
	RunModule func(pkgs []*Package) []Diagnostic
}

// DirectiveCheck is the pseudo-check name under which malformed
// //lint:ignore directives are reported.
const DirectiveCheck = "directive"

// ignorePrefix starts every suppression directive.
const ignorePrefix = "//lint:ignore"

// directive is one parsed //lint:ignore comment.
type directive struct {
	pos    token.Position
	check  string
	reason string
}

// Runner applies a set of analyzers to a set of packages and folds
// suppression directives into the result.
type Runner struct {
	// Analyzers run in order; diagnostics are merged and sorted.
	Analyzers []*Analyzer
}

// Run executes every analyzer over the packages, drops findings
// suppressed by well-formed //lint:ignore directives, reports
// malformed directives, and returns the remainder sorted by position
// then check name — a deterministic order, as this tool preaches.
func (r *Runner) Run(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, az := range r.Analyzers {
		if az.RunModule != nil {
			diags = append(diags, az.RunModule(pkgs)...)
			continue
		}
		for _, p := range pkgs {
			if az.AppliesTo != nil && !az.AppliesTo(p.Path) {
				continue
			}
			diags = append(diags, az.Run(p)...)
		}
	}
	diags = applyDirectives(pkgs, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return diags
}

// applyDirectives filters diags through the packages' ignore
// directives and appends a finding for each malformed directive.
func applyDirectives(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	var valid []directive
	var out []Diagnostic
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := cutDirective(c.Text)
					if !ok {
						continue
					}
					pos := p.Position(c.Pos())
					check, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
					reason = strings.TrimSpace(reason)
					if check == "" || reason == "" {
						out = append(out, Diagnostic{
							Pos:     pos,
							Check:   DirectiveCheck,
							Message: "malformed ignore directive: want //lint:ignore <check> <reason>",
						})
						continue
					}
					valid = append(valid, directive{pos: pos, check: check, reason: reason})
				}
			}
		}
	}
	for _, d := range diags {
		if !suppressed(valid, d) {
			out = append(out, d)
		}
	}
	return out
}

// cutDirective extracts the payload of an ignore directive from a
// comment's raw text, reporting whether the comment is one.
func cutDirective(comment string) (string, bool) {
	rest, ok := strings.CutPrefix(comment, ignorePrefix)
	if !ok {
		return "", false
	}
	// Require an exact "//lint:ignore" token: "//lint:ignorefoo" is
	// not a directive.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return rest, true
}

// suppressed reports whether a directive for the diagnostic's check
// sits on the same line or the line directly above it, in the same
// file.
func suppressed(dirs []directive, d Diagnostic) bool {
	for _, dir := range dirs {
		if dir.check != d.Check || dir.pos.Filename != d.Pos.Filename {
			continue
		}
		if dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}

// diag is the shared constructor analyzers use: it resolves the
// position and formats the message.
func diag(p *Package, pos token.Pos, check, format string, args ...any) Diagnostic {
	return Diagnostic{Pos: p.Position(pos), Check: check, Message: fmt.Sprintf(format, args...)}
}

// funcScopes yields every function body in the file — declarations
// and literals — exactly once each, calling fn with the enclosing
// FuncDecl body (or the literal's own body). Nested function
// literals are visited as their own scopes.
func funcScopes(f *ast.File, fn func(body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Body)
			}
		case *ast.FuncLit:
			fn(n.Body)
		}
		return true
	})
}

// walkScope walks the statements of one function body without
// descending into nested function literals (which run on their own
// schedule and form their own scopes).
func walkScope(body *ast.BlockStmt, fn func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		return fn(n)
	})
}
