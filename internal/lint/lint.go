// Package lint is a repo-native static-analysis framework built
// purely on the standard library (go/ast, go/parser, go/types). It
// exists because the methodology's core promise — byte-identical
// characterization tables and sweep reports regardless of worker
// count — rests on invariants (no wall clock or unseeded randomness
// in the simulated stack, no map-iteration order leaking into
// reports, no mutex held across exported calls, balanced spans on
// every control-flow path) that ordinary tests can only spot-check.
// The analyzers in this package machine-check them on every build.
//
// Since iolint v2 the framework is a small dataflow engine rather
// than a per-statement walker: analyzers can request a per-function
// control-flow graph (Pass.FuncCFG), export facts about a package's
// exported API into a module-wide store (Analyzer.Facts, computed in
// dependency order so callee facts exist before callers are
// analyzed), and attach SuggestedFixes that cmd/iolint -fix applies
// as non-overlapping, gofmt-clean textual edits.
//
// A finding can be silenced at the site with a justified directive:
//
//	//lint:ignore <check> <reason>
//
// A directive on its own line suppresses findings of that check on
// the next line; a directive trailing code suppresses findings on
// its own line only. A directive without a reason is itself reported
// (check "directive"), and a well-formed directive that suppresses
// nothing is reported too (check "directive-unused"): the
// suppression policy is that every silenced finding documents why
// the invariant holds anyway, and stale suppressions rot into
// blind spots.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, anchored to a source position.
type Diagnostic struct {
	// Pos is the resolved file/line/column of the finding.
	Pos token.Position
	// Check names the analyzer that produced the finding; ignore
	// directives match against it.
	Check string
	// Message states the violated invariant and, where possible, the
	// fix.
	Message string
	// Fixes are machine-applicable edits that resolve the finding.
	// Empty when no safe automatic fix exists.
	Fixes []SuggestedFix
}

// String renders the diagnostic in the conventional
// file:line:col: check: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Pass is the per-package view handed to an analyzer run: the parsed
// and type-checked package plus the module-wide fact store and a
// memoized CFG builder.
type Pass struct {
	*Package
	// Facts is the module-wide store. During Analyzer.Facts hooks it
	// is being populated in dependency order (facts of imported
	// packages are already present); during Run it is complete.
	Facts *Facts

	cfgs map[*ast.FuncDecl]*CFG
}

// FuncCFG returns the control-flow graph of a declared function's
// body, memoized per pass. fd.Body must be non-nil.
func (pass *Pass) FuncCFG(fd *ast.FuncDecl) *CFG {
	if pass.cfgs == nil {
		pass.cfgs = map[*ast.FuncDecl]*CFG{}
	}
	if g, ok := pass.cfgs[fd]; ok {
		return g
	}
	g := BuildCFG(funcName(fd), fd.Body)
	pass.cfgs[fd] = g
	return g
}

// funcName renders a FuncDecl's name with its receiver type, e.g.
// "(*Cache).Flush".
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return fmt.Sprintf("(%s).%s", typeText(fd.Recv.List[0].Type), fd.Name.Name)
}

// typeText renders a receiver type expression compactly.
func typeText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return "*" + typeText(e.X)
	case *ast.IndexExpr:
		return typeText(e.X)
	}
	return "?"
}

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore
	// directives.
	Name string
	// Doc is a one-paragraph description of the invariant the
	// analyzer protects.
	Doc string
	// AppliesTo, when non-nil, restricts which import paths the
	// runner feeds to Run and Facts; a nil filter means every package.
	AppliesTo func(pkgPath string) bool
	// Facts, when non-nil, runs over every package in module
	// dependency order before any Run, exporting facts about the
	// package's API into the shared store. A package's hook may read
	// facts its imports exported.
	Facts func(pass *Pass)
	// Run inspects one package. Exactly one of Run and RunModule is
	// set.
	Run func(pass *Pass) []Diagnostic
	// RunModule inspects the whole package set at once, for checks
	// that need a cross-package view (e.g. "is this probe registered
	// anywhere?").
	RunModule func(passes []*Pass) []Diagnostic
}

// DirectiveCheck is the pseudo-check name under which malformed
// //lint:ignore directives are reported.
const DirectiveCheck = "directive"

// DirectiveUnusedCheck is the pseudo-check name under which
// well-formed directives that suppress nothing are reported.
const DirectiveUnusedCheck = "directive-unused"

// ignorePrefix starts every suppression directive.
const ignorePrefix = "//lint:ignore"

// directive is one parsed //lint:ignore comment.
type directive struct {
	pos    token.Position
	check  string
	reason string
	// target is the single line the directive suppresses: its own
	// line when the comment trails code, the next line when the
	// comment stands alone.
	target int
	used   bool
}

// Runner applies a set of analyzers to a set of packages and folds
// suppression directives into the result.
type Runner struct {
	// Analyzers run in order; diagnostics are merged and sorted.
	Analyzers []*Analyzer
	// Facts, when non-nil, is a pre-computed fact store (e.g. cached
	// from a previous run over the same packages). When nil, Run
	// computes facts itself.
	Facts *Facts
}

// Run executes every analyzer over the packages — fact hooks first,
// in module dependency order, then the per-package and module-wide
// runs — drops findings suppressed by well-formed //lint:ignore
// directives, reports malformed and unused directives, and returns
// the remainder sorted by position then check name — a deterministic
// order, as this tool preaches.
func (r *Runner) Run(pkgs []*Package) []Diagnostic {
	facts := r.Facts
	if facts == nil {
		facts = ComputeFacts(pkgs, r.Analyzers)
		// Keep the store for callers that want to inspect it (-facts)
		// or reuse it over the same packages (the warm-cache bench).
		r.Facts = facts
	}
	passes := make([]*Pass, len(pkgs))
	for i, p := range pkgs {
		passes[i] = &Pass{Package: p, Facts: facts}
	}
	var diags []Diagnostic
	for _, az := range r.Analyzers {
		if az.RunModule != nil {
			diags = append(diags, az.RunModule(passes)...)
			continue
		}
		for _, pass := range passes {
			if az.AppliesTo != nil && !az.AppliesTo(pass.Path) {
				continue
			}
			diags = append(diags, az.Run(pass)...)
		}
	}
	active := map[string]bool{DirectiveCheck: true, DirectiveUnusedCheck: true}
	for _, az := range r.Analyzers {
		active[az.Name] = true
	}
	diags = applyDirectives(pkgs, diags, active)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return diags
}

// applyDirectives filters diags through the packages' ignore
// directives, appends a finding for each malformed directive, and
// appends a finding for each well-formed directive that suppressed
// nothing (only for checks the runner actually ran, so a partial
// analyzer set does not misreport suppressions of the others).
func applyDirectives(pkgs []*Package, diags []Diagnostic, active map[string]bool) []Diagnostic {
	var valid []*directive
	var out []Diagnostic
	lines := newLineCache()
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := cutDirective(c.Text)
					if !ok {
						continue
					}
					pos := p.Position(c.Pos())
					check, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
					reason = strings.TrimSpace(reason)
					if check == "" || reason == "" {
						out = append(out, Diagnostic{
							Pos:     pos,
							Check:   DirectiveCheck,
							Message: "malformed ignore directive: want //lint:ignore <check> <reason>",
						})
						continue
					}
					target := pos.Line + 1
					if lines.trailsCode(pos) {
						target = pos.Line
					}
					valid = append(valid, &directive{pos: pos, check: check, reason: reason, target: target})
				}
			}
		}
	}
	for _, d := range diags {
		if !suppressed(valid, d) {
			out = append(out, d)
		}
	}
	for _, dir := range valid {
		if !dir.used && active[dir.check] {
			out = append(out, Diagnostic{
				Pos:   dir.pos,
				Check: DirectiveUnusedCheck,
				Message: fmt.Sprintf("directive suppresses no %s finding on line %d; delete it or fix the check name",
					dir.check, dir.target),
			})
		}
	}
	return out
}

// lineCache lazily reads source files to decide whether a comment
// trails code on its line.
type lineCache struct{ files map[string][]string }

func newLineCache() *lineCache { return &lineCache{files: map[string][]string{}} }

// trailsCode reports whether anything but whitespace precedes the
// given position on its source line. On read failure it reports
// false (the directive is treated as standalone).
func (lc *lineCache) trailsCode(pos token.Position) bool {
	lines, ok := lc.files[pos.Filename]
	if !ok {
		data, err := os.ReadFile(pos.Filename)
		if err != nil {
			lines = nil
		} else {
			lines = strings.Split(string(data), "\n")
		}
		lc.files[pos.Filename] = lines
	}
	if pos.Line-1 >= len(lines) || pos.Line < 1 {
		return false
	}
	prefix := lines[pos.Line-1]
	if pos.Column-1 < len(prefix) {
		prefix = prefix[:pos.Column-1]
	}
	return strings.TrimSpace(prefix) != ""
}

// cutDirective extracts the payload of an ignore directive from a
// comment's raw text, reporting whether the comment is one.
func cutDirective(comment string) (string, bool) {
	rest, ok := strings.CutPrefix(comment, ignorePrefix)
	if !ok {
		return "", false
	}
	// Require an exact "//lint:ignore" token: "//lint:ignorefoo" is
	// not a directive.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return rest, true
}

// suppressed reports whether a directive for the diagnostic's check
// targets the diagnostic's line in the same file, marking the
// directive used.
func suppressed(dirs []*directive, d Diagnostic) bool {
	hit := false
	for _, dir := range dirs {
		if dir.check != d.Check || dir.pos.Filename != d.Pos.Filename {
			continue
		}
		if dir.target == d.Pos.Line {
			dir.used = true
			hit = true
		}
	}
	return hit
}

// diag is the shared constructor analyzers use: it resolves the
// position and formats the message.
func diag(p *Package, pos token.Pos, check, format string, args ...any) Diagnostic {
	return Diagnostic{Pos: p.Position(pos), Check: check, Message: fmt.Sprintf(format, args...)}
}

// funcScopes yields every function body in the file — declarations
// and literals — exactly once each, calling fn with the enclosing
// FuncDecl body (or the literal's own body). Nested function
// literals are visited as their own scopes.
func funcScopes(f *ast.File, fn func(body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Body)
			}
		case *ast.FuncLit:
			fn(n.Body)
		}
		return true
	})
}

// walkScope walks the statements of one function body without
// descending into nested function literals (which run on their own
// schedule and form their own scopes).
func walkScope(body *ast.BlockStmt, fn func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		return fn(n)
	})
}
