package lint

import (
	"go/ast"
	"go/types"
)

// DeterminismCheck is the name of the determinism analyzer.
const DeterminismCheck = "determinism"

// seededRandConstructors are the math/rand package-level functions
// that construct explicitly seeded state rather than drawing from the
// global source.
var seededRandConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// Determinism returns the analyzer enforcing that the simulated
// stack stays a pure function of its inputs: no wall clock
// (time.Now/Since/Until), no draws from the global math/rand source,
// and no map iteration whose order can leak into ordered output
// (appends that are never sorted, direct writes/prints, returns or
// channel sends from inside the loop).
func Determinism() *Analyzer {
	return &Analyzer{
		Name: DeterminismCheck,
		Doc: "Reports wall-clock reads, unseeded global math/rand draws, and " +
			"map iterations whose order can reach report/JSON/text output. " +
			"The sweep and telemetry reports must be byte-identical across " +
			"runs and worker counts (paper §IV); any of these constructs " +
			"silently breaks that.",
		Run: determinismRun,
	}
}

func determinismRun(pass *Pass) []Diagnostic {
	p := pass.Package
	var out []Diagnostic
	for _, f := range p.Files {
		funcScopes(f, func(body *ast.BlockStmt) {
			out = append(out, determinismScope(p, body)...)
		})
	}
	return out
}

// determinismScope checks one function body.
func determinismScope(p *Package, body *ast.BlockStmt) []Diagnostic {
	var out []Diagnostic
	walkScope(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if d, ok := nondeterministicCall(p, n); ok {
				out = append(out, d)
			}
		case *ast.RangeStmt:
			if d, ok := orderSensitiveMapRange(p, body, n); ok {
				out = append(out, d)
			}
		}
		return true
	})
	return out
}

// nondeterministicCall reports calls to the wall clock and to the
// global math/rand source.
func nondeterministicCall(p *Package, call *ast.CallExpr) (Diagnostic, bool) {
	pkgPath, name, ok := packageLevelCallee(p, call)
	if !ok {
		return Diagnostic{}, false
	}
	switch pkgPath {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			return diag(p, call.Pos(), DeterminismCheck,
				"call to time.%s reads the wall clock; simulated code must use the engine clock or an injected clock function", name), true
		}
	case "math/rand", "math/rand/v2":
		if !seededRandConstructors[name] {
			return diag(p, call.Pos(), DeterminismCheck,
				"call to rand.%s draws from the global, unseeded source; inject a seeded *rand.Rand instead", name), true
		}
	}
	return Diagnostic{}, false
}

// packageLevelCallee resolves a call of the form pkg.F and returns
// the package path and function name.
func packageLevelCallee(p *Package, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	if _, isPkg := p.Info.Uses[id].(*types.PkgName); !isPkg {
		return "", "", false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// orderSensitiveMapRange reports a range over a map whose body builds
// ordered output: appending to a slice that is never subsequently
// sorted in the enclosing function, writing/printing directly, or
// returning / sending from inside the loop (a nondeterministic pick).
func orderSensitiveMapRange(p *Package, enclosing *ast.BlockStmt, rng *ast.RangeStmt) (Diagnostic, bool) {
	t := p.Info.TypeOf(rng.X)
	if t == nil {
		return Diagnostic{}, false
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return Diagnostic{}, false
	}
	reason := ""
	walkScope(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				obj := appendTarget(p, n.Lhs[i], rhs)
				if obj == nil {
					continue
				}
				// A slice declared inside the loop body restarts every
				// iteration and cannot accumulate map order.
				if obj.Pos() >= rng.Body.Pos() && obj.Pos() < rng.Body.End() {
					continue
				}
				if !sortedLater(p, enclosing, rng, obj) {
					reason = "appends to a slice that is never sorted afterwards"
				}
			}
		case *ast.CallExpr:
			if isStreamWrite(p, n) {
				reason = "writes output directly from the loop body"
			}
		case *ast.ReturnStmt:
			reason = "returns from inside the loop (a nondeterministic pick)"
		case *ast.SendStmt:
			reason = "sends on a channel from inside the loop"
		}
		return true
	})
	if reason == "" {
		return Diagnostic{}, false
	}
	return diag(p, rng.Pos(), DeterminismCheck,
		"iteration over map %s is order-sensitive (%s); map order is random per run — collect and sort keys first",
		types.ExprString(rng.X), reason), true
}

// appendTarget returns the object of the variable v in statements of
// the form v = append(v, ...), or nil.
func appendTarget(p *Package, lhs ast.Expr, rhs ast.Expr) types.Object {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil
	}
	if _, isBuiltin := p.Info.Uses[fn].(*types.Builtin); !isBuiltin {
		return nil
	}
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

// isStreamWrite reports whether the call prints or writes to a
// stream: fmt.Print*/Fprint* or a method whose name starts with
// "Write" or appends rows to a table ("AddRow").
func isStreamWrite(p *Package, call *ast.CallExpr) bool {
	if pkgPath, name, ok := packageLevelCallee(p, call); ok {
		if pkgPath == "fmt" {
			switch name {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				return true
			}
		}
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s, ok := p.Info.Selections[sel]; !ok || s.Kind() != types.MethodVal {
		return false
	}
	name := sel.Sel.Name
	if len(name) >= 5 && name[:5] == "Write" {
		return true
	}
	return name == "AddRow"
}

// sortedLater reports whether obj is passed (anywhere in an argument
// subtree) to a sort or slices call after the range statement in the
// enclosing function — the "collect keys, then sort" idiom.
func sortedLater(p *Package, enclosing *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	walkScope(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		pkgPath, _, ok := packageLevelCallee(p, call)
		if !ok || (pkgPath != "sort" && pkgPath != "slices") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && p.Info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return true
	})
	return found
}
