package lint

import (
	"path/filepath"
	"testing"
)

// BenchmarkLintModule prices a whole-repo iolint run (everything
// after loading: fact computation, CFG construction, analyzer
// passes, suppression). The facts-cold variant recomputes the
// module-wide fact store every iteration — the cost a fresh CLI run
// pays — while facts-warm reuses a pre-computed store, isolating the
// dataflow passes from the fact fixpoints. The spread between the
// two is the price of the cross-package fact engine.
func BenchmarkLintModule(b *testing.B) {
	loader, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	pkgs, loadErrs := loader.LoadAll()
	if len(loadErrs) > 0 {
		b.Fatalf("load: %v", loadErrs[0])
	}
	if len(pkgs) < 20 {
		b.Fatalf("LoadAll found only %d packages", len(pkgs))
	}

	b.Run("facts-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runner := &Runner{Analyzers: DefaultAnalyzers()}
			if diags := runner.Run(pkgs); len(diags) > 0 {
				b.Fatalf("tree not clean: %d finding(s)", len(diags))
			}
		}
	})

	b.Run("facts-warm", func(b *testing.B) {
		facts := ComputeFacts(pkgs, DefaultAnalyzers())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runner := &Runner{Analyzers: DefaultAnalyzers(), Facts: facts}
			if diags := runner.Run(pkgs); len(diags) > 0 {
				b.Fatalf("tree not clean: %d finding(s)", len(diags))
			}
		}
	})
}
