package lint

import (
	"go/ast"
	"go/types"
	"path"
	"sort"
)

// ProbeConformCheck is the name of the probeconform analyzer.
const ProbeConformCheck = "probeconform"

// layerPackages are the instrumented layers of the simulated I/O
// stack; every telemetry-bearing type they declare must be reachable
// by the report plane.
var layerPackages = map[string]bool{
	"device": true, "raid": true, "cache": true, "fs": true,
	"nfs": true, "pfs": true, "netsim": true, "mpiio": true,
	"fault": true,
}

// ProbeConform returns the module-wide analyzer enforcing the
// telemetry-plane contract: every type in a layer package that holds
// a *telemetry.Recorder must expose it through a
// `Telemetry() *telemetry.Recorder` accessor (the telemetry.Probe
// hookup), and that accessor must be registered with a
// telemetry.Registry somewhere in the module — an unregistered probe
// records counters no report can ever see.
func ProbeConform() *Analyzer {
	return &Analyzer{
		Name: ProbeConformCheck,
		Doc: "Reports layer types (device/raid/cache/fs/nfs/pfs/netsim/mpiio/fault) " +
			"that hold telemetry counters without a Telemetry() accessor, or " +
			"whose accessor is never passed to a Registry.Register call " +
			"anywhere in the module.",
		RunModule: probeConformRun,
	}
}

func probeConformRun(passes []*Pass) []Diagnostic {
	pkgs := make([]*Package, len(passes))
	for i, pass := range passes {
		pkgs[i] = pass.Package
	}
	registered := registeredProbeTypes(pkgs)
	var out []Diagnostic
	for _, p := range pkgs {
		if !layerPackages[path.Base(p.Path)] {
			continue
		}
		scope := p.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok || !holdsRecorder(st) {
				continue
			}
			if !hasTelemetryAccessor(named) {
				out = append(out, diag(p, tn.Pos(), ProbeConformCheck,
					"%s.%s holds a *telemetry.Recorder but has no Telemetry() *telemetry.Recorder accessor, so it cannot join a telemetry.Registry",
					path.Base(p.Path), name))
				continue
			}
			if !registered[tn] {
				out = append(out, diag(p, tn.Pos(), ProbeConformCheck,
					"%s.%s has a Telemetry() accessor that is never passed to a Registry.Register call; its counters are invisible to every report",
					path.Base(p.Path), name))
			}
		}
	}
	return out
}

// holdsRecorder reports whether the struct has a direct field of
// type *telemetry.Recorder.
func holdsRecorder(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if isRecorderPtr(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// isRecorderPtr matches the type *telemetry.Recorder (by package
// name, so fixture trees with their own telemetry package conform).
func isRecorderPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Recorder" && obj.Pkg() != nil && obj.Pkg().Name() == "telemetry"
}

// hasTelemetryAccessor reports whether *T (or T) has a method
// `Telemetry() *telemetry.Recorder`.
func hasTelemetryAccessor(named *types.Named) bool {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), "Telemetry")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	res := fn.Type().(*types.Signature).Results()
	return res.Len() == 1 && isRecorderPtr(res.At(0).Type())
}

// registeredProbeTypes scans every package for calls of the shape
// X.Register(..., Y.Telemetry(), ...) and returns the set of type
// names whose Telemetry accessor reaches a Register call.
func registeredProbeTypes(pkgs []*Package) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Register" {
					return true
				}
				for _, arg := range call.Args {
					argCall, ok := arg.(*ast.CallExpr)
					if !ok {
						continue
					}
					argSel, ok := argCall.Fun.(*ast.SelectorExpr)
					if !ok || argSel.Sel.Name != "Telemetry" {
						continue
					}
					t := p.Info.TypeOf(argSel.X)
					if t == nil {
						continue
					}
					if ptr, ok := t.Underlying().(*types.Pointer); ok {
						t = ptr.Elem()
					}
					if named, ok := t.(*types.Named); ok {
						out[named.Obj()] = true
					}
				}
				return true
			})
		}
	}
	return out
}
