// Package unitsafety exercises the unitsafety analyzer: arithmetic
// and assignments mixing size-unit name suffixes.
package unitsafety

func toBytes(vKiB int64) int64 { return vKiB << 10 }

// Good stays within one unit or converts through a helper whose name
// states the result unit.
func Good(fileBytes, blockBytes, quotaKiB int64) int64 {
	total := fileBytes + blockBytes
	total += toBytes(quotaKiB)
	if blockBytes > fileBytes {
		return fileBytes
	}
	return total
}

// Bad mixes suffixes in comparisons and arithmetic.
func Bad(fileBytes, quotaKiB int64) int64 {
	if fileBytes > quotaKiB { // want unitsafety "mixes"
		return fileBytes - quotaKiB // want unitsafety "mixes"
	}
	return fileBytes
}

// BadAssign smuggles a value across units through an assignment.
func BadAssign(fileBytes int64) int64 {
	sizeMiB := fileBytes // want unitsafety "mixes"
	return sizeMiB
}

// BadDecl does the same through a var declaration.
func BadDecl(fileBytes int64) int64 {
	var sizeKiB = fileBytes // want unitsafety "mixes"
	return sizeKiB
}

// Scaled multiplies by a unitless factor: allowed.
func Scaled(fileBytes int64, replicas int) int64 {
	return fileBytes * int64(replicas)
}
