// Package lockdiscipline exercises the lockdiscipline analyzer:
// defer-scoped releases and exported calls inside critical sections.
package lockdiscipline

import (
	"strconv"
	"sync"
)

// Store is a mutex-guarded counter.
type Store struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// Good locks with a defer-scoped release and calls only unexported
// leaf code: allowed.
func (s *Store) Good() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bump()
}

func (s *Store) bump() int { s.n++; return s.n }

// Reset is public API (it takes the lock itself in real code).
func (s *Store) Reset() { s.n = 0 }

// Manual releases with a plain call instead of a defer.
func (s *Store) Manual() int {
	s.mu.Lock() // want lockdiscipline "plain Unlock"
	n := s.n
	s.mu.Unlock()
	return n
}

// Leak never releases at all.
func (s *Store) Leak() {
	s.mu.Lock() // want lockdiscipline "without a same-function defer"
	s.n++
}

// Reentrant calls exported API while holding the lock.
func (s *Store) Reentrant() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Reset() // want lockdiscipline "exported Reset"
}

// ReadManual mirrors Manual for the read half of an RWMutex.
func (s *Store) ReadManual() int {
	s.rw.RLock() // want lockdiscipline "plain RUnlock"
	n := s.n
	s.rw.RUnlock()
	return n
}

// StdlibWhileLocked calls an exported standard-library function
// inside the critical section: allowed (the invariant is about this
// module's API).
func (s *Store) StdlibWhileLocked() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return strconv.Itoa(s.n)
}
