// Package errcheck exercises the errcheck analyzer: silently dropped
// error results versus handled or explicitly discarded ones.
package errcheck

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

func fallible() error { return nil }

func pair() (int, error) { return 0, nil }

// Bad drops error results on the floor.
func Bad() {
	fallible() // want errcheck "unchecked error"
	pair()     // want errcheck "unchecked error"
}

// ToWriter drops the error of a write to an arbitrary stream.
func ToWriter(w io.Writer) {
	fmt.Fprintln(w, "x") // want errcheck "unchecked error"
}

// Good handles, propagates, or visibly discards every error.
func Good() error {
	if err := fallible(); err != nil {
		return err
	}
	_ = fallible()
	_, _ = pair()
	fmt.Println("ok") // stdout convention: exempt
	var b strings.Builder
	b.WriteString("x")       // never-failing builder: exempt
	fmt.Fprintf(&b, "%d", 1) // builder destination: exempt
	var buf bytes.Buffer
	buf.WriteByte('y')              // never-failing buffer: exempt
	fmt.Fprintln(os.Stderr, "warn") // standard stream: exempt
	return nil
}
