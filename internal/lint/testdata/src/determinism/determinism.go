// Package determinism exercises the determinism analyzer: wall-clock
// reads, global math/rand draws, and order-sensitive map iteration.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano() // want determinism "time.Now"
}

// Elapsed measures against the wall clock.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want determinism "time.Since"
}

// Draw pulls from the global, unseeded source.
func Draw() int {
	return rand.Intn(6) // want determinism "global, unseeded"
}

// SeededDraw constructs explicitly seeded state: allowed.
func SeededDraw(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(6)
}

// Keys leaks map order into the returned slice.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want determinism "never sorted"
		out = append(out, k)
	}
	return out
}

// SortedKeys collects then sorts: allowed.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Dump prints in map order.
func Dump(m map[string]int) {
	for k, v := range m { // want determinism "writes output"
		fmt.Println(k, v)
	}
}

// Any returns a map-order-dependent pick.
func Any(m map[string]int) string {
	for k := range m { // want determinism "nondeterministic pick"
		return k
	}
	return ""
}

// Sum is a commutative fold: allowed.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Rekey writes into another map: allowed (maps are unordered on both
// sides).
func Rekey(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v
	}
	return out
}

// PerEntry appends to a slice declared inside the loop body, which
// restarts each iteration: allowed.
func PerEntry(m map[string][]int) map[string]int {
	out := map[string]int{}
	for k, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		out[k] = len(doubled)
	}
	return out
}
